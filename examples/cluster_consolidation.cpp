// Cluster consolidation study: how request distribution interacts with the
// joint power manager across a small server fleet — the future-work
// direction the paper sketches in Section VI.
//
//   ./examples/cluster_consolidation [servers] [rate_mb_s] [chassis_w]
//
// Compares round-robin, content-partitioned, and workload-unbalancing
// distribution; each server runs the full joint memory+disk pipeline.
#include <cstdio>
#include <cstdlib>

#include "jpm/cluster/cluster.h"
#include "jpm/util/parallel.h"

using namespace jpm;

int main(int argc, char** argv) {
  std::fprintf(stderr, "threads=%u (set JPM_THREADS to override)\n",
               util::default_thread_count());
  const std::uint32_t servers =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 4;
  const double rate_mb = argc > 2 ? std::atof(argv[2]) : 40.0;
  const double chassis_w = argc > 3 ? std::atof(argv[3]) : 150.0;

  workload::SynthesizerConfig workload;
  workload.dataset_bytes = gib(16);
  workload.byte_rate = rate_mb * 1e6;
  workload.popularity = 0.1;
  workload.duration_s = 3000.0;
  workload.page_bytes = 256 * kKiB;
  workload.seed = 21;

  std::printf("cluster of %u servers, %.0f MB/s aggregate, %.0f W chassis "
              "each, joint method per server\n\n",
              servers, rate_mb, chassis_w);
  std::printf("%-12s %12s %12s %12s %9s %10s %8s\n", "distribution",
              "pipeline kJ", "chassis kJ", "total kJ", "balance",
              "latency ms", "cycles");

  const std::pair<const char*, cluster::DistributionPolicy> policies[] = {
      {"round-robin", cluster::DistributionPolicy::kRoundRobin},
      {"partitioned", cluster::DistributionPolicy::kPartitioned},
      {"unbalanced", cluster::DistributionPolicy::kUnbalanced},
  };
  for (const auto& [label, distribution] : policies) {
    cluster::ClusterConfig cfg;
    cfg.server_count = servers;
    cfg.distribution = distribution;
    cfg.engine.prefill_cache = true;
    cfg.engine.warm_up_s = 600.0;
    cfg.partition_pages = 64 * kMiB / workload.page_bytes;
    cfg.chassis_on_w = chassis_w;
    cfg.rate_cap_rps = 150.0;
    cfg.server_off_idle_s = 300.0;

    cluster::ClusterEngine engine(cfg, workload, sim::joint_policy());
    const auto m = engine.run();
    std::uint64_t cycles = 0;
    for (const auto& s : m.servers) cycles += s.power_cycles;
    std::printf("%-12s %12.1f %12.1f %12.1f %9.2f %10.2f %8llu\n", label,
                m.pipeline_energy_j() / 1e3, m.chassis_energy_j() / 1e3,
                m.total_j() / 1e3, m.balance_index(),
                m.mean_latency_s() * 1e3,
                static_cast<unsigned long long>(cycles));
  }
  std::printf("\nper-server request shares for the last policy run above "
              "come from ClusterMetrics::servers[i].requests.\n");
  return 0;
}
