// Policy face-off: run the paper's full 16-method roster on one workload and
// print the complete ledger, sorted by total energy. The default workload,
// engine, and roster are declared in scenarios/policy_faceoff.json; argv
// overrides the workload knobs.
//
//   ./examples/policy_faceoff [dataset_gib] [rate_mb_s] [popularity]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "jpm/sim/runner.h"
#include "jpm/spec/run.h"
#include "jpm/spec/spec.h"
#include "jpm/util/parallel.h"
#include "jpm/util/table.h"

using namespace jpm;

int main(int argc, char** argv) {
  std::fprintf(stderr, "threads=%u (set JPM_THREADS to override)\n",
               util::default_thread_count());
  const spec::Scenario sc =
      spec::load_for_run(spec::scenario_path("policy_faceoff"));
  auto workload = sc.workloads.front().workload;

  const std::uint64_t dataset_gib =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10)
               : workload.dataset_bytes / kGiB;
  const double rate_mb = argc > 2 ? std::atof(argv[2]) : workload.byte_rate / 1e6;
  const double popularity = argc > 3 ? std::atof(argv[3]) : workload.popularity;
  workload.dataset_bytes = gib(dataset_gib);
  workload.byte_rate = rate_mb * 1e6;
  workload.popularity = popularity;

  std::printf("16-method face-off: %llu GiB data set, %.0f MB/s, popularity "
              "%.2f (simulating...)\n",
              static_cast<unsigned long long>(dataset_gib), rate_mb,
              popularity);

  std::vector<std::pair<std::string, workload::SynthesizerConfig>> workloads{
      {"workload", workload}};
  const auto points =
      sim::run_sweep(workloads, sc.roster, sc.engine,
                     [](const std::string& line) {
                       std::fprintf(stderr, "  %s\n", line.c_str());
                     });

  auto outcomes = points[0].outcomes;
  std::sort(outcomes.begin(), outcomes.end(),
            [](const sim::RunOutcome& a, const sim::RunOutcome& b) {
              return a.metrics.total_j() < b.metrics.total_j();
            });

  Table t({"rank", "method", "total %", "memory %", "disk %", "utilization",
           "mean latency", "long-latency/s"});
  int rank = 1;
  for (const auto& o : outcomes) {
    char buf[32];
    t.row().cell(std::to_string(rank++)).cell(o.spec.name);
    std::snprintf(buf, sizeof buf, "%.1f%%", o.normalized.total * 100);
    t.cell(buf);
    std::snprintf(buf, sizeof buf, "%.1f%%", o.normalized.memory * 100);
    t.cell(buf);
    std::snprintf(buf, sizeof buf, "%.1f%%", o.normalized.disk * 100);
    t.cell(buf);
    std::snprintf(buf, sizeof buf, "%.1f%%", o.metrics.utilization() * 100);
    t.cell(buf);
    std::snprintf(buf, sizeof buf, "%.2f ms",
                  o.metrics.mean_latency_s() * 1e3);
    t.cell(buf);
    std::snprintf(buf, sizeof buf, "%.2f", o.metrics.long_latency_per_s());
    t.cell(buf);
  }
  std::printf("\n");
  t.print(std::cout);
  return 0;
}
