// Timeout advisor: the analytical core of the paper without the simulator.
//
// Feed it a stream of observed disk idle-interval lengths (here: sampled
// from a heavy-tailed distribution, as Section IV-C models them), and it
//   1. filters intervals through the aggregation window w,
//   2. fits a Pareto distribution with the paper's moment estimator,
//   3. derives the energy-optimal timeout t_o = alpha * t_be (eq. 5),
//   4. raises it to the performance-constrained bound of eq. 6, and
//   5. reports the expected power, shutdown count, and delayed-request ratio
//      for a 10-minute control period.
//
//   ./examples/timeout_advisor [alpha] [beta_seconds]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "jpm/disk/disk_model.h"
#include "jpm/pareto/pareto.h"
#include "jpm/pareto/timeout_math.h"
#include "jpm/util/rng.h"

using namespace jpm;

int main(int argc, char** argv) {
  const double true_alpha = argc > 1 ? std::atof(argv[1]) : 1.5;
  const double true_beta = argc > 2 ? std::atof(argv[2]) : 0.4;

  const double window_s = 0.1;     // aggregation window w
  const double period_s = 600.0;   // T
  const double delay_limit = 1e-3; // D
  const disk::DiskParams disk_params;
  const auto disk = disk_params.timeout_params();

  // "Observed" idle intervals from the last control period.
  const pareto::ParetoDistribution truth(true_alpha, true_beta);
  Rng rng(2024);
  std::vector<double> observed;
  for (int i = 0; i < 600; ++i) observed.push_back(truth.sample(rng));

  // 1. Aggregation-window filter.
  std::vector<double> usable;
  for (double l : observed) {
    if (l >= window_s) usable.push_back(l);
  }
  std::printf("observed %zu idle intervals, %zu at or above w = %.2f s\n",
              observed.size(), usable.size(), window_s);

  // 2. Moment fit: alpha = mean / (mean - beta), beta = w.
  double mean = 0.0;
  for (double l : usable) mean += l;
  mean /= static_cast<double>(usable.size());
  const auto fit = pareto::fit_from_mean(mean, window_s);
  std::printf("sample mean %.3f s -> fitted alpha %.3f (generator alpha "
              "%.2f, beta %.2f)\n\n",
              mean, fit.alpha(), true_alpha, true_beta);

  // 3-4. Timeout selection.
  const double n_idle = static_cast<double>(usable.size());
  const double n_disk = 4000;         // disk accesses last period
  const double n_cache = 200000;      // disk-cache accesses last period
  const double t_opt = pareto::optimal_timeout(fit, disk);
  const double t_min = pareto::min_timeout_for_delay_constraint(
      fit, n_idle, n_disk, n_cache, period_s, delay_limit, disk);
  const double t_o = std::max(t_opt, t_min);
  std::printf("energy-optimal timeout  t_o = alpha * t_be = %.1f s\n", t_opt);
  std::printf("eq. 6 lower bound for D = %.0e:        %.1f s\n", delay_limit,
              t_min);
  std::printf("chosen timeout:                         %.1f s\n\n", t_o);

  // 5. Expected behaviour over the period.
  std::printf("expected over one %.0f s period:\n", period_s);
  std::printf("  disk off        %7.1f s\n",
              pareto::expected_off_time(fit, n_idle, t_o));
  std::printf("  shutdowns       %7.1f\n",
              pareto::expected_shutdowns(fit, n_idle, t_o));
  std::printf("  p_d-band power  %7.2f W (vs %.2f W if never off)\n",
              pareto::expected_power(fit, n_idle, period_s, t_o, disk),
              disk.static_power_w);
  std::printf("  delayed ratio   %9.2e (limit %.0e)\n",
              pareto::expected_delayed_ratio(fit, n_idle, n_disk, n_cache,
                                             period_s, t_o, disk),
              delay_limit);
  return 0;
}
