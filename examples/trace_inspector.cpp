// Trace inspector: characterize a disk-cache trace and recommend a timeout.
//
//   ./examples/trace_inspector <trace-file> [cache_gib]
//   ./examples/trace_inspector --demo [cache_gib]
//
// Loads a binary (.jpmt) or CSV trace (see workload/trace_io.h), prints the
// measured workload characteristics, derives the idle-interval population a
// given cache size would leave the disk, fits the paper's Pareto model, and
// prints the recommended timeout — the timeout-advisor pipeline applied to a
// real trace instead of synthetic gaps.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>

#include "jpm/disk/disk_model.h"
#include "jpm/pareto/pareto.h"
#include "jpm/pareto/timeout_math.h"
#include "jpm/workload/synthesizer.h"
#include "jpm/workload/trace_io.h"
#include "jpm/workload/trace_stats.h"

using namespace jpm;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <trace.jpmt|trace.csv|--demo> [cache_gib]\n",
                 argv[0]);
    return 1;
  }
  const std::uint64_t page_bytes = 64 * kKiB;
  std::vector<workload::TraceEvent> trace;
  if (std::strcmp(argv[1], "--demo") == 0) {
    workload::SynthesizerConfig cfg;
    cfg.dataset_bytes = gib(4);
    cfg.byte_rate = 20e6;
    cfg.popularity = 0.1;
    cfg.duration_s = 1200.0;
    cfg.page_bytes = page_bytes;
    cfg.seed = 3;
    trace = workload::synthesize(cfg);
    std::puts("(demo trace: 4 GiB data set, 20 MB/s, popularity 0.1)");
  } else {
    trace = workload::load_trace(argv[1]);
  }
  const double cache_gib = argc > 2 ? std::atof(argv[2]) : 1.0;
  const auto cache_pages =
      static_cast<std::uint64_t>(cache_gib * static_cast<double>(kGiB) /
                                 static_cast<double>(page_bytes));

  const auto c = workload::characterize(trace, page_bytes);
  std::printf("\ntrace: %llu events, %llu requests (%llu writes), "
              "%llu distinct pages, %.0f s\n",
              static_cast<unsigned long long>(c.events),
              static_cast<unsigned long long>(c.requests),
              static_cast<unsigned long long>(c.writes),
              static_cast<unsigned long long>(c.distinct_pages),
              c.duration_s);
  std::printf("rates: %.1f req/s, %.2f MB/s page-granular\n",
              c.request_rate_per_s, c.byte_rate_per_s / 1e6);
  std::printf("popularity: hottest %.1f%% of pages receive 90%% of "
              "accesses\n",
              c.hot_page_fraction_90 * 100.0);
  std::printf("reuse: %llu cold accesses; depth histogram (pow-2 pages):",
              static_cast<unsigned long long>(c.cold_accesses));
  for (std::size_t k = 0; k < c.reuse_depth_pow2.size(); ++k) {
    if (c.reuse_depth_pow2[k] > 0) {
      std::printf(" [2^%zu]=%llu", k,
                  static_cast<unsigned long long>(c.reuse_depth_pow2[k]));
    }
  }
  std::puts("");

  const double window_s = 0.1;
  const auto gaps =
      workload::idle_gaps_at_cache_size(trace, cache_pages, window_s);
  std::printf("\nwith a %.1f GiB LRU cache: %zu disk idle intervals >= "
              "%.1f s window\n",
              cache_gib, gaps.size(), window_s);
  if (gaps.size() < 3) {
    std::puts("too few idle intervals to fit; the disk would rarely sleep");
    return 0;
  }
  const double mean =
      std::accumulate(gaps.begin(), gaps.end(), 0.0) /
      static_cast<double>(gaps.size());
  const auto fit = pareto::fit_from_mean(mean, window_s);
  const auto disk = disk::DiskParams{}.timeout_params();
  std::printf("mean idle %.3f s -> Pareto alpha %.2f -> recommended timeout "
              "%.1f s (expected p_d-band power %.2f W vs %.2f W never-off)\n",
              mean, fit.alpha(), pareto::optimal_timeout(fit, disk),
              pareto::expected_power(fit, static_cast<double>(gaps.size()),
                                     c.duration_s,
                                     pareto::optimal_timeout(fit, disk),
                                     disk),
              disk.static_power_w);
  return 0;
}
