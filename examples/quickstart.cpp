// Quickstart: run the joint power manager against one synthetic web-server
// workload and compare it with the always-on baseline.
//
//   ./examples/quickstart
//
// The example builds a 16 GB data set served at 100 MB/s, lets the joint
// method resize the disk cache and re-derive the disk timeout every 10
// minutes, and prints the energy/performance ledger for both methods.
#include <cstdio>

#include "jpm/sim/runner.h"

using namespace jpm;

namespace {

void print_run(const sim::RunMetrics& m) {
  std::printf("%-10s | energy %7.1f kJ (mem %7.1f, disk %6.1f) | "
              "hit %5.1f%% | util %5.1f%% | mean latency %6.2f ms | "
              "long-latency %.2f/s\n",
              m.policy_name.c_str(), m.total_j() / 1e3,
              m.mem_energy.total_j() / 1e3, m.disk_energy.total_j() / 1e3,
              m.hit_ratio() * 100.0, m.utilization() * 100.0,
              m.mean_latency_s() * 1e3, m.long_latency_per_s());
}

}  // namespace

int main() {
  // 1. Describe the workload: data-set size, offered byte rate, popularity
  //    (fraction of bytes receiving 90% of requests), and duration.
  workload::SynthesizerConfig workload;
  workload.dataset_bytes = gib(16);
  workload.byte_rate = 100e6;
  workload.popularity = 0.1;
  workload.duration_s = 3600.0;
  workload.page_bytes = 256 * kKiB;
  workload.seed = 42;

  // 2. Describe the machine: 128 GB of bank-managed RDRAM over one IDE disk,
  //    with the paper's period, window, and performance constraints.
  sim::EngineConfig engine;
  engine.joint.physical_bytes = 128 * kGiB;
  engine.joint.unit_bytes = 16 * kMiB;
  engine.joint.period_s = 600.0;
  engine.joint.util_limit = 0.10;
  engine.joint.delay_limit = 1e-3;
  engine.prefill_cache = true;  // start from a warm server
  engine.warm_up_s = 600.0;     // exclude the first period from metrics

  // 3. Run the joint method and the always-on baseline on the same trace.
  std::puts("simulating (two runs over ~2.2M disk-cache accesses)...\n");
  const auto joint = sim::run_simulation(workload, sim::joint_policy(), engine);
  const auto always_on =
      sim::run_simulation(workload, sim::always_on_policy(), engine);

  print_run(always_on);
  print_run(joint);

  const auto n = sim::normalize_energy(joint, always_on);
  std::printf("\njoint method consumes %.1f%% of the always-on energy "
              "(memory %.1f%%, disk %.1f%%)\n",
              n.total * 100.0, n.memory * 100.0, n.disk * 100.0);

  // 4. Inspect the per-period trail the manager left behind.
  std::puts("\nper-period decisions (memory size, disk timeout):");
  for (const auto& p : joint.periods) {
    std::printf("  t=%5.0f..%5.0f s  memory %6.1f GB  timeout %s  "
                "disk accesses %llu\n",
                p.start_s, p.end_s,
                static_cast<double>(p.memory_units) * 16.0 / 1024.0,
                p.timeout_s > 1e6 ? "never"
                                  : (std::to_string(p.timeout_s) + " s").c_str(),
                static_cast<unsigned long long>(p.disk_accesses));
  }
  return 0;
}
