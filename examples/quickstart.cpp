// Quickstart: run the joint power manager against one synthetic web-server
// workload and compare it with the always-on baseline.
//
//   ./examples/quickstart
//
// The experiment — a 16 GB data set served at 100 MB/s against the paper's
// 128 GB machine — is declared in scenarios/quickstart.json; this example
// shows how to load a scenario file, run the methods it names, and read the
// resulting ledger. Edit the JSON (or point JPM_SCENARIO_DIR at a copy) to
// try different workloads without recompiling.
#include <cstdio>

#include "jpm/sim/runner.h"
#include "jpm/spec/run.h"
#include "jpm/spec/spec.h"

using namespace jpm;

namespace {

void print_run(const sim::RunMetrics& m) {
  std::printf("%-10s | energy %7.1f kJ (mem %7.1f, disk %6.1f) | "
              "hit %5.1f%% | util %5.1f%% | mean latency %6.2f ms | "
              "long-latency %.2f/s\n",
              m.policy_name.c_str(), m.total_j() / 1e3,
              m.mem_energy.total_j() / 1e3, m.disk_energy.total_j() / 1e3,
              m.hit_ratio() * 100.0, m.utilization() * 100.0,
              m.mean_latency_s() * 1e3, m.long_latency_per_s());
}

}  // namespace

int main() {
  // 1. Load the declarative scenario: workload (data-set size, offered byte
  //    rate, popularity, duration), machine (128 GB of bank-managed RDRAM
  //    over one IDE disk, the paper's period and performance constraints),
  //    and the two methods to compare.
  const spec::Scenario sc =
      spec::load_for_run(spec::scenario_path("quickstart"));
  const auto& workload = sc.workloads.front().workload;
  const auto& always_on_spec = sc.roster[0];
  const auto& joint_spec = sc.roster[1];

  // 2. Run the joint method and the always-on baseline on the same trace.
  std::puts("simulating (two runs over ~2.2M disk-cache accesses)...\n");
  const auto joint = sim::run_simulation(workload, joint_spec, sc.engine);
  const auto always_on =
      sim::run_simulation(workload, always_on_spec, sc.engine);

  print_run(always_on);
  print_run(joint);

  const auto n = sim::normalize_energy(joint, always_on);
  std::printf("\njoint method consumes %.1f%% of the always-on energy "
              "(memory %.1f%%, disk %.1f%%)\n",
              n.total * 100.0, n.memory * 100.0, n.disk * 100.0);

  // 3. Inspect the per-period trail the manager left behind.
  std::puts("\nper-period decisions (memory size, disk timeout):");
  for (const auto& p : joint.periods) {
    std::printf("  t=%5.0f..%5.0f s  memory %6.1f GB  timeout %s  "
                "disk accesses %llu\n",
                p.start_s, p.end_s,
                static_cast<double>(p.memory_units) * 16.0 / 1024.0,
                p.timeout_s > 1e6 ? "never"
                                  : (std::to_string(p.timeout_s) + " s").c_str(),
                static_cast<unsigned long long>(p.disk_accesses));
  }
  return 0;
}
