// Capacity planner: for a given workload, sweep fixed disk-cache sizes,
// locate the paper's "break-even memory size" (where extra memory stops
// paying for itself), and compare the best fixed size against the joint
// method.
//
//   ./examples/capacity_planner [dataset_gib] [rate_mb_s] [popularity]
//
// The break-even logic (paper Section V-B.1): caching the whole data set
// saves at most the disk's 6.6 W static power, which pays for about 10 GB of
// nap-mode RDRAM — beyond that, memory costs more than the disk saves.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "jpm/sim/runner.h"

using namespace jpm;

int main(int argc, char** argv) {
  const std::uint64_t dataset_gib = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 16;
  const double rate_mb = argc > 2 ? std::atof(argv[2]) : 50.0;
  const double popularity = argc > 3 ? std::atof(argv[3]) : 0.1;

  workload::SynthesizerConfig workload;
  workload.dataset_bytes = gib(dataset_gib);
  workload.byte_rate = rate_mb * 1e6;
  workload.popularity = popularity;
  workload.duration_s = 3000.0;
  workload.page_bytes = 256 * kKiB;
  workload.seed = 7;

  sim::EngineConfig engine;
  engine.prefill_cache = true;
  engine.warm_up_s = 600.0;

  std::printf("capacity plan for %llu GiB data set, %.0f MB/s, popularity "
              "%.2f\n\n",
              static_cast<unsigned long long>(dataset_gib), rate_mb,
              popularity);
  std::printf("theoretical break-even memory (disk p_d / memory nap power): "
              "%.1f GB\n\n",
              engine.joint.disk.static_power_w() /
                  engine.joint.mem.nap_power_w(kGiB));

  std::printf("%-12s %14s %12s %12s %16s\n", "memory", "total energy",
              "avg power", "utilization", "long-latency/s");
  double best_fixed_j = -1.0;
  std::uint64_t best_fixed_gib = 0;
  for (std::uint64_t g = 2; g <= 128; g *= 2) {
    const auto m = sim::run_simulation(
        workload, sim::fixed_policy(sim::DiskPolicyKind::kTwoCompetitive,
                                    gib(g)),
        engine);
    std::printf("%9llu GB %11.1f kJ %10.1f W %11.1f%% %16.2f\n",
                static_cast<unsigned long long>(g), m.total_j() / 1e3,
                m.total_j() / m.duration_s, m.utilization() * 100.0,
                m.long_latency_per_s());
    if (best_fixed_j < 0.0 || m.total_j() < best_fixed_j) {
      best_fixed_j = m.total_j();
      best_fixed_gib = g;
    }
  }

  const auto joint = sim::run_simulation(workload, sim::joint_policy(), engine);
  std::printf("%-12s %11.1f kJ %10.1f W %11.1f%% %16.2f\n", "joint",
              joint.total_j() / 1e3, joint.total_j() / joint.duration_s,
              joint.utilization() * 100.0, joint.long_latency_per_s());

  std::printf("\nbest fixed size: %llu GB at %.1f kJ; joint reaches %.1f kJ "
              "without knowing the workload in advance (%+.1f%%)\n",
              static_cast<unsigned long long>(best_fixed_gib),
              best_fixed_j / 1e3, joint.total_j() / 1e3,
              (joint.total_j() / best_fixed_j - 1.0) * 100.0);
  return 0;
}
