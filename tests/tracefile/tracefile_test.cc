// jpm::tracefile format suite: round-trip properties, chunking independence,
// windowed synthesis vs the in-memory synthesizer, and the hardened reader's
// position-named rejection of truncated/corrupted/overlong inputs.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "jpm/tracefile/format.h"
#include "jpm/tracefile/reader.h"
#include "jpm/tracefile/writer.h"
#include "jpm/util/hash.h"
#include "jpm/workload/synthesizer.h"
#include "jpm/workload/trace.h"

namespace jpm::tracefile {
namespace {

workload::SynthesizerConfig small_workload() {
  workload::SynthesizerConfig w;
  w.dataset_bytes = 64 * kMiB;
  w.byte_rate = 20e6;
  w.popularity = 0.1;
  w.duration_s = 600.0;
  w.page_bytes = 64 * kKiB;
  w.file_scale = 16.0;
  w.write_fraction = 0.2;  // exercise the write-flag lane
  w.seed = 11;
  return w;
}

// Serializes a trace into an in-memory JPMC image.
std::string encode(const workload::Trace& trace, WriterOptions options = {}) {
  std::ostringstream os(std::ios::binary);
  TraceWriter w(os, trace.page_bytes, trace.total_pages, trace.duration_s,
                options);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    w.append(trace.times[i], trace.pages[i], trace.flags[i]);
  }
  w.finish();
  return os.str();
}

void expect_lanes_equal(const workload::Trace& a, const workload::Trace& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.times, b.times);
  EXPECT_EQ(a.pages, b.pages);
  EXPECT_EQ(a.flags, b.flags);
  EXPECT_EQ(a.page_bytes, b.page_bytes);
  EXPECT_EQ(a.total_pages, b.total_pages);
  EXPECT_EQ(a.duration_s, b.duration_s);
}

// Recomputes every chunk's payload checksum and the trailing index checksum
// so corruption tests can damage a payload and still get past the checksum
// layers to the structural error they target.
void refresh_checksums(std::string& file) {
  std::uint64_t index_offset = 0;
  std::memcpy(&index_offset, file.data() + 48, 8);
  std::uint64_t chunk_count = 0;
  std::memcpy(&chunk_count, file.data() + 16, 8);
  for (std::uint64_t i = 0; i < chunk_count; ++i) {
    const std::size_t desc = index_offset + i * kChunkDescBytes;
    std::uint64_t offset = 0, bytes = 0;
    std::memcpy(&offset, file.data() + desc, 8);
    std::memcpy(&bytes, file.data() + desc + 8, 8);
    const std::uint64_t checksum = util::fnv1a64(file.data() + offset, bytes);
    std::memcpy(file.data() + desc + 40, &checksum, 8);
  }
  const std::uint64_t index_bytes = chunk_count * kChunkDescBytes;
  const std::uint64_t index_checksum =
      util::fnv1a64(file.data() + index_offset, index_bytes);
  std::memcpy(file.data() + index_offset + index_bytes, &index_checksum, 8);
}

std::string error_of(const std::string& image) {
  try {
    TraceReader r(image.data(), image.size(), "t.jpmc");
    ChunkBuffer buf;
    for (std::size_t i = 0; i < r.chunks().size(); ++i) r.decode_chunk(i, buf);
    return "";
  } catch (const TraceFileError& e) {
    return e.what();
  }
}

// ---- encoding primitives ---------------------------------------------------

TEST(TraceFormatTest, TimeBitsOrderPreservingAndLossless) {
  const double samples[] = {0.0, 1e-12, 0.5, 1.0, 1.5, 4800.0, 1e6};
  std::uint64_t prev = 0;
  for (double t : samples) {
    const std::uint64_t bits = time_bits(t);
    EXPECT_EQ(time_from_bits(bits), t);
    EXPECT_GE(bits, prev);  // nonneg doubles order like their bit patterns
    prev = bits;
  }
  // -0.0 normalizes to +0.0: its raw pattern would sort above everything.
  EXPECT_EQ(time_bits(-0.0), time_bits(0.0));
}

TEST(TraceFormatTest, ZigzagRoundTrips) {
  for (std::int64_t v : {std::int64_t{0}, std::int64_t{1}, std::int64_t{-1},
                         std::int64_t{1} << 40, -(std::int64_t{1} << 40),
                         std::numeric_limits<std::int64_t>::max(),
                         std::numeric_limits<std::int64_t>::min()}) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v);
  }
  EXPECT_EQ(zigzag_encode(0), 0u);   // small magnitudes stay small
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
}

TEST(TraceFormatTest, VarintRoundTrips) {
  for (std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{127}, std::uint64_t{128},
        std::uint64_t{1} << 32, ~std::uint64_t{0}}) {
    std::string buf;
    append_varint(buf, v);
    Cursor cur(reinterpret_cast<const std::uint8_t*>(buf.data()), buf.size(),
               "varint");
    EXPECT_EQ(cur.read_varint("value"), v);
    EXPECT_EQ(cur.remaining(), 0u);
  }
}

TEST(TraceFormatTest, CursorNamesTruncationPosition) {
  const std::uint8_t bytes[] = {0x80, 0x80};  // endless continuation
  Cursor cur(bytes, sizeof bytes, "ctx");
  try {
    cur.read_varint("page delta");
    FAIL() << "expected TraceFileError";
  } catch (const TraceFileError& e) {
    EXPECT_NE(std::string(e.what()).find("ctx: page delta varint truncated"),
              std::string::npos)
        << e.what();
  }
}

// ---- round-trip properties -------------------------------------------------

TEST(TraceFileTest, RoundTripsSynthesizedTrace) {
  const workload::Trace trace = workload::synthesize_trace(small_workload());
  ASSERT_GT(trace.size(), 0u);
  const std::string image = encode(trace);
  const TraceReader reader(image.data(), image.size(), "t.jpmc");
  EXPECT_EQ(reader.header().event_count, trace.size());
  EXPECT_EQ(reader.header().page_bytes, trace.page_bytes);
  EXPECT_EQ(reader.header().total_pages, trace.total_pages);
  EXPECT_EQ(reader.header().duration_s, trace.duration_s);
  expect_lanes_equal(reader.read_all(), trace);
  reader.verify_content_hash();
}

TEST(TraceFileTest, ContentHashIsChunkingIndependent) {
  const workload::Trace trace = workload::synthesize_trace(small_workload());
  const std::string a = encode(trace, {.chunk_events = 256});
  const std::string b = encode(trace, {.chunk_events = 1 << 16});
  const TraceReader ra(a.data(), a.size(), "a");
  const TraceReader rb(b.data(), b.size(), "b");
  EXPECT_GT(ra.chunks().size(), rb.chunks().size());
  EXPECT_EQ(ra.header().content_hash, rb.header().content_hash);
  expect_lanes_equal(ra.read_all(), rb.read_all());
}

TEST(TraceFileTest, DeltaEncodingBeatsRawLanes) {
  const workload::Trace trace = workload::synthesize_trace(small_workload());
  const std::string image = encode(trace);
  // Raw SoA lanes cost 17 bytes/event; delta varints should at least halve
  // that on a dense synthesized stream.
  EXPECT_LT(image.size(), trace.size() * 17 / 2);
}

TEST(TraceFileTest, EmptyTraceRoundTrips) {
  workload::Trace trace;
  trace.page_bytes = 4096;
  trace.total_pages = 10;
  trace.duration_s = 1.0;
  const std::string image = encode(trace);
  const TraceReader reader(image.data(), image.size(), "empty");
  EXPECT_EQ(reader.header().event_count, 0u);
  EXPECT_EQ(reader.header().chunk_count, 0u);
  EXPECT_EQ(reader.read_all().size(), 0u);
  reader.verify_content_hash();
}

TEST(TraceFileTest, SynthesizeToFileMatchesSynthesizeTrace) {
  const workload::SynthesizerConfig config = small_workload();
  const workload::Trace reference = workload::synthesize_trace(config);
  std::ostringstream os(std::ios::binary);
  const FileHeader header = synthesize_to_file(os, config);
  const std::string image = os.str();
  EXPECT_EQ(header.event_count, reference.size());
  const TraceReader reader(image.data(), image.size(), "synth");
  expect_lanes_equal(reader.read_all(), reference);
  // ... and windowed synthesis is chunking-independent too.
  std::ostringstream os2(std::ios::binary);
  const FileHeader h2 = synthesize_to_file(os2, config, {.chunk_events = 999});
  EXPECT_EQ(h2.content_hash, header.content_hash);
}

TEST(TraceFileTest, WriterRejectsMalformedAppends) {
  std::ostringstream os(std::ios::binary);
  TraceWriter w(os, 4096, 10, 1.0);
  w.append(1.0, 3, workload::kTraceFlagStart);
  try {
    w.append(0.5, 4, 0);  // time goes backwards
    FAIL() << "expected TraceFileError";
  } catch (const TraceFileError& e) {
    EXPECT_NE(std::string(e.what()).find("event 1"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(w.append(2.0, 4, 0x80), TraceFileError);  // undefined flag bit
  std::ostringstream os2(std::ios::binary);
  TraceWriter w2(os2, 4096, 10, 1.0);
  EXPECT_THROW(w2.append(-1.0, 0, 0), TraceFileError);  // negative time
}

// ---- hardened reader -------------------------------------------------------

class TraceFileCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::Trace trace;
    trace.page_bytes = 4096;
    trace.total_pages = 64;
    trace.duration_s = 2.0;
    for (int i = 0; i < 300; ++i) {
      trace.times.push_back(0.005 * i);
      trace.pages.push_back(static_cast<std::uint64_t>((i * 7) % 64));
      trace.flags.push_back(i % 3 == 0 ? workload::kTraceFlagStart : 0);
    }
    image_ = encode(trace, {.chunk_events = 128});  // 3 chunks
    std::memcpy(&index_offset_, image_.data() + 48, 8);
  }

  std::string image_;
  std::uint64_t index_offset_ = 0;
};

TEST_F(TraceFileCorruptionTest, ValidImageDecodes) {
  EXPECT_EQ(error_of(image_), "");
}

TEST_F(TraceFileCorruptionTest, RejectsTruncatedHeader) {
  EXPECT_NE(error_of(image_.substr(0, 40)).find("header truncated"),
            std::string::npos);
}

TEST_F(TraceFileCorruptionTest, RejectsBadMagic) {
  image_[0] = 'X';
  EXPECT_NE(error_of(image_).find("bad magic"), std::string::npos);
}

TEST_F(TraceFileCorruptionTest, RejectsUnsupportedVersion) {
  image_[4] = 9;
  EXPECT_NE(error_of(image_).find("unsupported JPMC version 9"),
            std::string::npos);
}

TEST_F(TraceFileCorruptionTest, RejectsTruncatedFile) {
  // Cutting mid-payload leaves the index offset pointing past the end.
  EXPECT_NE(error_of(image_.substr(0, index_offset_ - 10))
                .find("outside the file"),
            std::string::npos);
}

TEST_F(TraceFileCorruptionTest, RejectsTruncatedIndex) {
  EXPECT_NE(error_of(image_.substr(0, image_.size() - 1))
                .find("index truncated"),
            std::string::npos);
}

TEST_F(TraceFileCorruptionTest, RejectsIndexCorruption) {
  image_[index_offset_ + 2] ^= 0xff;
  EXPECT_NE(error_of(image_).find("index checksum mismatch"),
            std::string::npos);
}

TEST_F(TraceFileCorruptionTest, RejectsPayloadCorruption) {
  image_[kHeaderBytes + 12] ^= 0xff;  // inside chunk 0's payload
  const std::string error = error_of(image_);
  EXPECT_NE(error.find("chunk 0"), std::string::npos) << error;
  EXPECT_NE(error.find("payload checksum mismatch"), std::string::npos)
      << error;
}

TEST_F(TraceFileCorruptionTest, RejectsEventCountMismatch) {
  std::uint64_t events = 0;
  std::memcpy(&events, image_.data() + 8, 8);
  ++events;
  std::memcpy(image_.data() + 8, &events, 8);
  EXPECT_NE(error_of(image_).find("but chunks hold"), std::string::npos);
}

TEST_F(TraceFileCorruptionTest, RejectsTruncatedVarintWithPosition) {
  // Damage the last byte of chunk 0's times lane: setting its continuation
  // bit makes the final delta run off the end of the lane.
  std::uint32_t times_bytes = 0;
  std::memcpy(&times_bytes, image_.data() + kHeaderBytes, 4);
  image_[kHeaderBytes + 8 + times_bytes - 1] |= 0x80;
  refresh_checksums(image_);
  const std::string error = error_of(image_);
  EXPECT_NE(error.find("chunk 0: times lane"), std::string::npos) << error;
  EXPECT_NE(error.find("varint truncated at byte"), std::string::npos)
      << error;
}

TEST_F(TraceFileCorruptionTest, RejectsLaneSizeMismatch) {
  std::uint32_t times_bytes = 0;
  std::memcpy(&times_bytes, image_.data() + kHeaderBytes, 4);
  ++times_bytes;
  std::memcpy(image_.data() + kHeaderBytes, &times_bytes, 4);
  refresh_checksums(image_);
  EXPECT_NE(error_of(image_).find("do not add up to the payload"),
            std::string::npos);
}

TEST_F(TraceFileCorruptionTest, VerifyContentHashCatchesHeaderTampering) {
  std::uint64_t hash = 0;
  std::memcpy(&hash, image_.data() + 56, 8);
  hash ^= 1;
  std::memcpy(image_.data() + 56, &hash, 8);
  const TraceReader reader(image_.data(), image_.size(), "t.jpmc");
  EXPECT_THROW(reader.verify_content_hash(), TraceFileError);
}

}  // namespace
}  // namespace jpm::tracefile
