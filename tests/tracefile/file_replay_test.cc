// Chunked-vs-in-memory differential suite: a file-backed replay must be
// bit-identical to simulating the same events from RAM — at the engine level
// across policies, at the sweep level across JPM_THREADS, and at the
// scenario level (stdout tables + telemetry report) for golden scenarios —
// while holding only one decoded chunk window in memory.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "jpm/sim/file_replay.h"
#include "jpm/sim/runner.h"
#include "jpm/spec/run.h"
#include "jpm/spec/spec.h"
#include "jpm/telemetry/export.h"
#include "jpm/telemetry/telemetry.h"
#include "jpm/tracefile/reader.h"
#include "jpm/tracefile/writer.h"
#include "jpm/util/json.h"

namespace jpm::sim {
namespace {

workload::SynthesizerConfig replay_workload() {
  workload::SynthesizerConfig w;
  w.dataset_bytes = 128 * kMiB;
  w.byte_rate = 20e6;
  w.popularity = 0.1;
  w.duration_s = 1200.0;
  w.page_bytes = 64 * kKiB;
  w.file_scale = 16.0;
  w.seed = 7;
  return w;
}

EngineConfig replay_engine() {
  EngineConfig e;
  e.joint.physical_bytes = gib(1);
  e.joint.unit_bytes = 16 * kMiB;
  e.joint.page_bytes = 64 * kKiB;
  e.joint.period_s = 300.0;
  e.prefill_cache = true;
  e.warm_up_s = 300.0;
  return e;
}

void expect_bit_identical(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_EQ(a.policy_name, b.policy_name);
  EXPECT_EQ(a.duration_s, b.duration_s);
  EXPECT_EQ(a.mem_energy.static_j, b.mem_energy.static_j);
  EXPECT_EQ(a.mem_energy.dynamic_j, b.mem_energy.dynamic_j);
  EXPECT_EQ(a.disk_energy.standby_base_j, b.disk_energy.standby_base_j);
  EXPECT_EQ(a.disk_energy.static_j, b.disk_energy.static_j);
  EXPECT_EQ(a.disk_energy.transition_j, b.disk_energy.transition_j);
  EXPECT_EQ(a.disk_energy.dynamic_j, b.disk_energy.dynamic_j);
  EXPECT_EQ(a.cache_accesses, b.cache_accesses);
  EXPECT_EQ(a.disk_accesses, b.disk_accesses);
  EXPECT_EQ(a.disk_writes, b.disk_writes);
  EXPECT_EQ(a.readahead_fetches, b.readahead_fetches);
  EXPECT_EQ(a.disk_shutdowns, b.disk_shutdowns);
  EXPECT_EQ(a.spin_ups, b.spin_ups);
  EXPECT_EQ(a.disk_busy_s, b.disk_busy_s);
  EXPECT_EQ(a.total_latency_s, b.total_latency_s);
  EXPECT_EQ(a.long_latency_count, b.long_latency_count);
  ASSERT_EQ(a.periods.size(), b.periods.size());
  for (std::size_t p = 0; p < a.periods.size(); ++p) {
    EXPECT_EQ(a.periods[p].start_s, b.periods[p].start_s);
    EXPECT_EQ(a.periods[p].end_s, b.periods[p].end_s);
    EXPECT_EQ(a.periods[p].cache_accesses, b.periods[p].cache_accesses);
    EXPECT_EQ(a.periods[p].disk_accesses, b.periods[p].disk_accesses);
    EXPECT_EQ(a.periods[p].mean_idle_s, b.periods[p].mean_idle_s);
    EXPECT_EQ(a.periods[p].memory_units, b.periods[p].memory_units);
    EXPECT_EQ(a.periods[p].timeout_s, b.periods[p].timeout_s);
    EXPECT_EQ(a.periods[p].busy_s, b.periods[p].busy_s);
  }
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "jpm_replay_" + name;
}

class EnvVar {
 public:
  EnvVar(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) saved_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~EnvVar() {
    if (had_old_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_old_ = false;
};

// ---- engine-level differential ---------------------------------------------

TEST(FileReplayTest, BitIdenticalToInMemoryAcrossPolicies) {
  const workload::SynthesizerConfig w = replay_workload();
  const EngineConfig e = replay_engine();
  const workload::Trace trace = workload::synthesize_trace(w);
  const std::string path = temp_path("policies.jpmc");
  tracefile::write_trace_file(path, trace, {.chunk_events = 4096});
  const tracefile::TraceReader reader(path);

  const std::vector<PolicySpec> roster = {
      joint_policy(),
      fixed_policy(DiskPolicyKind::kTwoCompetitive, mib(64)),
      fixed_policy(DiskPolicyKind::kAdaptive, mib(128)),
      always_on_policy()};
  for (const PolicySpec& policy : roster) {
    SCOPED_TRACE(policy.name);
    expect_bit_identical(replay_file(reader, policy, e),
                         run_simulation(trace, policy, e));
  }
  std::remove(path.c_str());
}

TEST(FileReplayTest, MetricsAreChunkingInvariant) {
  const workload::Trace trace =
      workload::synthesize_trace(replay_workload());
  const EngineConfig e = replay_engine();
  const std::string coarse = temp_path("coarse.jpmc");
  const std::string fine = temp_path("fine.jpmc");
  tracefile::write_trace_file(coarse, trace);
  tracefile::write_trace_file(fine, trace, {.chunk_events = 512});
  const tracefile::TraceReader rc(coarse);
  const tracefile::TraceReader rf(fine);
  EXPECT_GT(rf.chunks().size(), rc.chunks().size());
  expect_bit_identical(replay_file(rc, joint_policy(), e),
                       replay_file(rf, joint_policy(), e));
  std::remove(coarse.c_str());
  std::remove(fine.c_str());
}

// ---- sweep-level differential ----------------------------------------------

std::vector<SweepPoint> file_backed_sweep(const char* threads,
                                          const std::string& path) {
  workload::SynthesizerConfig w = replay_workload();
  const EnvVar guard("JPM_THREADS", threads);
  return run_sweep({SweepWorkload{"128MB", w, path}},
                   {joint_policy(), always_on_policy(),
                    fixed_policy(DiskPolicyKind::kTwoCompetitive, mib(64))},
                   replay_engine());
}

TEST(FileReplayTest, SweepMatchesInMemoryAtOneAndEightThreads) {
  const workload::SynthesizerConfig w = replay_workload();
  const std::string path = temp_path("sweep.jpmc");
  tracefile::synthesize_to_file(path, w, {.chunk_events = 8192});

  const auto in_memory = file_backed_sweep("1", "");  // synthesizes
  const auto file1 = file_backed_sweep("1", path);
  const auto file8 = file_backed_sweep("8", path);
  ASSERT_EQ(in_memory.size(), 1u);
  ASSERT_EQ(file1[0].outcomes.size(), in_memory[0].outcomes.size());
  for (std::size_t i = 0; i < in_memory[0].outcomes.size(); ++i) {
    SCOPED_TRACE(in_memory[0].outcomes[i].spec.name);
    expect_bit_identical(file1[0].outcomes[i].metrics,
                         in_memory[0].outcomes[i].metrics);
    expect_bit_identical(file8[0].outcomes[i].metrics,
                         in_memory[0].outcomes[i].metrics);
  }
  std::remove(path.c_str());
}

TEST(FileReplayTest, SweepRejectsPageSizeMismatch) {
  workload::SynthesizerConfig w = replay_workload();
  const std::string path = temp_path("mismatch.jpmc");
  tracefile::synthesize_to_file(path, w);
  w.page_bytes = 256 * kKiB;  // scenario geometry disagrees with the file
  const std::vector<SweepWorkload> points = {SweepWorkload{"128MB", w, path}};
  const std::vector<PolicySpec> roster = {joint_policy(), always_on_policy()};
  EXPECT_THROW(run_sweep(points, roster, replay_engine()), CheckError);
  std::remove(path.c_str());
}

// ---- scenario-level differential -------------------------------------------

#ifdef JPM_SCENARIOS_DIR

// Strips the provenance keys that legitimately differ between a file-backed
// and an in-memory run (the scenario embeds the trace paths; the file run
// adds trace_path/trace_hash). Everything else must match byte for byte.
std::string strip_provenance(const std::string& report) {
  using util::json::Object;
  using util::json::Value;
  Value v;
  std::string error;
  EXPECT_TRUE(util::json::parse(report, &v, &error)) << error;
  Object stripped;
  for (const auto& [key, value] : v.as_object().entries()) {
    if (key == "scenario" || key == "scenario_hash" || key == "trace_path" ||
        key == "trace_hash") {
      continue;
    }
    stripped[key] = value;
  }
  return util::json::dump(Value{std::move(stripped)}, 2);
}

struct ScenarioRun {
  std::string stdout_text;
  std::string report;
};

ScenarioRun run_scenario_capture(const spec::Scenario& sc) {
  telemetry::clear_traces();
  telemetry::start({});
  std::ostringstream captured;
  std::streambuf* old = std::cout.rdbuf(captured.rdbuf());
  spec::run_scenario(sc, {});
  std::cout.rdbuf(old);
  ScenarioRun out{captured.str(), telemetry::report_json()};
  telemetry::stop();
  telemetry::clear_scenario();
  telemetry::clear_traces();
  return out;
}

// Golden scenarios replayed from JPMC files must print byte-identical tables
// and produce byte-identical telemetry reports (modulo provenance) at
// JPM_THREADS=1 and 8. Small scenarios keep this differential affordable;
// the fig7-scale equivalent runs in CI via the jpm binary (see cli_test).
TEST(FileReplayScenarioTest, GoldenScenariosAreByteIdenticalFileBacked) {
  const EnvVar fast("JPM_BENCH_FAST", "1");
  const char* names[] = {"ablation_joint", "ext_writes", "ext_drpm"};
  for (const char* name : names) {
    SCOPED_TRACE(name);
    spec::Scenario sc = spec::load_for_run(std::string(JPM_SCENARIOS_DIR) +
                                           "/" + name + ".json");

    spec::Scenario file_sc = sc;
    std::vector<std::string> paths;
    for (std::size_t i = 0; i < sc.workloads.size(); ++i) {
      const std::string path =
          temp_path(std::string(name) + "_p" + std::to_string(i) + ".jpmc");
      tracefile::synthesize_to_file(path, sc.workloads[i].workload);
      file_sc.workloads[i].trace_path = path;
      paths.push_back(path);
    }

    const EnvVar serial("JPM_THREADS", "1");
    const ScenarioRun mem = run_scenario_capture(sc);
    const ScenarioRun file1 = run_scenario_capture(file_sc);
    EXPECT_EQ(file1.stdout_text, mem.stdout_text);
    EXPECT_EQ(strip_provenance(file1.report), strip_provenance(mem.report));
    {
      const EnvVar wide("JPM_THREADS", "8");
      const ScenarioRun file8 = run_scenario_capture(file_sc);
      EXPECT_EQ(file8.stdout_text, mem.stdout_text);
      EXPECT_EQ(strip_provenance(file8.report), strip_provenance(mem.report));
    }
    for (const std::string& path : paths) std::remove(path.c_str());
  }
}

#endif  // JPM_SCENARIOS_DIR

// ---- bounded working set ---------------------------------------------------

// The capped-RSS smoke: a trace much larger than one chunk window is
// written event-at-a-time and replayed end-to-end while writer and reader
// hold O(chunk window) buffers — never the whole trace. ~2M events encode
// to tens of MB on disk but the working set stays under a quarter MB.
TEST(FileReplaySmokeTest, LargeTraceReplaysWithCappedBuffers) {
  constexpr std::size_t kChunkEvents = 4096;
  constexpr std::uint64_t kEvents = 2'000'000;
  // Generous bound: 17 logical bytes/event of SoA lanes plus encode scratch
  // and rounding slack, all per chunk window.
  constexpr std::size_t kBufferCap = 64 * kChunkEvents;

  const std::string path = temp_path("large.jpmc");
  std::uint64_t total_pages = 1 << 14;
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    tracefile::TraceWriter w(os, 64 * kKiB, total_pages, 2000.0,
                             {.chunk_events = kChunkEvents});
    std::uint64_t state = 1;
    for (std::uint64_t i = 0; i < kEvents; ++i) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      w.append(1e-3 * static_cast<double>(i), (state >> 33) % total_pages,
               i % 4 == 0 ? workload::kTraceFlagStart : 0);
    }
    w.finish();
    EXPECT_LE(w.buffered_capacity_bytes(), kBufferCap);
  }

  const tracefile::TraceReader reader(path);
  EXPECT_EQ(reader.header().event_count, kEvents);
  EXPECT_GE(reader.chunks().size(), kEvents / kChunkEvents);

  FileReplay replay(reader, joint_policy(), replay_engine());
  const RunMetrics metrics = replay.run();
  // Accesses are counted after the 300 s warm-up: 1 kHz x 300 s excluded.
  EXPECT_EQ(metrics.cache_accesses + metrics.disk_accesses,
            kEvents - 300'000);
  EXPECT_LE(replay.peak_buffer_bytes(), kBufferCap);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace jpm::sim
