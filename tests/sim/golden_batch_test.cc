// Scenario-level golden differential for the replay batch path: the stdout
// tables and telemetry report of golden scenarios must be byte-identical
// across every batch size (1 / 64 / 256), thread count (JPM_THREADS 1 / 8),
// and scheduler (JPM_SCHED static / steal). Batch mode re-orders prefetches
// and hoists counters but may never change a single reported byte; this is
// the end-to-end check over the engine's batched resolve+descend loop and
// the counter tree under it (see tests/sim/batch_invariance_test.cc for the
// RunMetrics-level version across the full policy roster).
#include <gtest/gtest.h>

#ifdef JPM_SCENARIOS_DIR

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "jpm/spec/run.h"
#include "jpm/spec/spec.h"
#include "jpm/telemetry/export.h"
#include "jpm/telemetry/telemetry.h"
#include "jpm/util/json.h"

namespace jpm::sim {
namespace {

// The report embeds the resolved scenario and its hash, and batch_size is
// part of the scenario — so those two keys legitimately differ between
// batch sizes. Everything else must match byte for byte.
std::string strip_scenario(const std::string& report) {
  using util::json::Object;
  using util::json::Value;
  Value v;
  std::string error;
  EXPECT_TRUE(util::json::parse(report, &v, &error)) << error;
  Object stripped;
  for (const auto& [key, value] : v.as_object().entries()) {
    if (key == "scenario" || key == "scenario_hash") continue;
    stripped[key] = value;
  }
  return util::json::dump(Value{std::move(stripped)}, 2);
}

class EnvVar {
 public:
  EnvVar(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) saved_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~EnvVar() {
    if (had_old_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_old_ = false;
};

struct ScenarioRun {
  std::string stdout_text;
  std::string report;
};

ScenarioRun run_scenario_capture(const spec::Scenario& sc) {
  telemetry::clear_traces();
  telemetry::start({});
  std::ostringstream captured;
  std::streambuf* old = std::cout.rdbuf(captured.rdbuf());
  spec::run_scenario(sc, {});
  std::cout.rdbuf(old);
  ScenarioRun out{captured.str(), telemetry::report_json()};
  telemetry::stop();
  telemetry::clear_scenario();
  telemetry::clear_traces();
  return out;
}

TEST(GoldenBatchTest, ScenariosAreByteIdenticalAcrossBatchThreadsAndSched) {
  const EnvVar fast("JPM_BENCH_FAST", "1");
  const char* names[] = {"ablation_joint", "ext_writes", "ext_drpm"};
  const std::uint32_t batches[] = {1, 64, 256};
  for (const char* name : names) {
    SCOPED_TRACE(name);
    spec::Scenario sc = spec::load_for_run(std::string(JPM_SCENARIOS_DIR) +
                                           "/" + name + ".json");

    // Baseline: classic per-event loop, serial, static scheduler.
    sc.engine.batch_size = 1;
    ScenarioRun base;
    {
      const EnvVar serial("JPM_THREADS", "1");
      const EnvVar sched("JPM_SCHED", "static");
      base = run_scenario_capture(sc);
    }
    ASSERT_FALSE(base.stdout_text.empty());

    for (const std::uint32_t batch : batches) {
      SCOPED_TRACE(testing::Message() << "batch=" << batch);
      sc.engine.batch_size = batch;
      {
        const EnvVar serial("JPM_THREADS", "1");
        const EnvVar sched("JPM_SCHED", "static");
        const ScenarioRun got = run_scenario_capture(sc);
        EXPECT_EQ(got.stdout_text, base.stdout_text);
        EXPECT_EQ(strip_scenario(got.report), strip_scenario(base.report));
      }
      {
        const EnvVar wide("JPM_THREADS", "8");
        const EnvVar sched("JPM_SCHED", "static");
        const ScenarioRun got = run_scenario_capture(sc);
        EXPECT_EQ(got.stdout_text, base.stdout_text);
        EXPECT_EQ(strip_scenario(got.report), strip_scenario(base.report));
      }
      {
        const EnvVar wide("JPM_THREADS", "8");
        const EnvVar sched("JPM_SCHED", "steal");
        const ScenarioRun got = run_scenario_capture(sc);
        EXPECT_EQ(got.stdout_text, base.stdout_text);
        EXPECT_EQ(strip_scenario(got.report), strip_scenario(base.report));
      }
    }
  }
}

}  // namespace
}  // namespace jpm::sim

#endif  // JPM_SCENARIOS_DIR
