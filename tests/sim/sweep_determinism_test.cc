// Determinism suite for the parallel sweep runner: a multi-threaded
// run_sweep must produce bit-identical RunMetrics to the serial legacy path
// (JPM_THREADS=1), and the shared-trace engine overload must be
// bit-identical to the synthesizing one.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "jpm/sim/runner.h"

namespace jpm::sim {
namespace {

workload::SynthesizerConfig point_workload(std::uint64_t dataset_bytes,
                                           std::uint64_t seed) {
  workload::SynthesizerConfig w;
  w.dataset_bytes = dataset_bytes;
  w.byte_rate = 20e6;
  w.popularity = 0.1;
  w.duration_s = 1200.0;
  w.page_bytes = 64 * kKiB;
  w.file_scale = 16.0;
  w.seed = seed;
  return w;
}

EngineConfig sweep_engine() {
  EngineConfig e;
  e.joint.physical_bytes = gib(1);
  e.joint.unit_bytes = 16 * kMiB;
  e.joint.page_bytes = 64 * kKiB;
  e.joint.period_s = 300.0;
  e.prefill_cache = true;
  e.warm_up_s = 300.0;
  return e;
}

// A 6-policy roster spanning every policy family plus the baseline.
std::vector<PolicySpec> six_policy_roster() {
  return {joint_policy(),
          fixed_policy(DiskPolicyKind::kTwoCompetitive, mib(64)),
          fixed_policy(DiskPolicyKind::kAdaptive, mib(128)),
          powerdown_policy(DiskPolicyKind::kTwoCompetitive, gib(1)),
          disable_policy(DiskPolicyKind::kAdaptive, gib(1)),
          always_on_policy()};
}

std::vector<std::pair<std::string, workload::SynthesizerConfig>>
three_point_sweep() {
  return {{"128MB", point_workload(mib(128), 7)},
          {"256MB", point_workload(mib(256), 8)},
          {"512MB", point_workload(mib(512), 9)}};
}

void expect_bit_identical(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_EQ(a.policy_name, b.policy_name);
  EXPECT_EQ(a.duration_s, b.duration_s);
  EXPECT_EQ(a.mem_energy.static_j, b.mem_energy.static_j);
  EXPECT_EQ(a.mem_energy.dynamic_j, b.mem_energy.dynamic_j);
  EXPECT_EQ(a.disk_energy.standby_base_j, b.disk_energy.standby_base_j);
  EXPECT_EQ(a.disk_energy.static_j, b.disk_energy.static_j);
  EXPECT_EQ(a.disk_energy.transition_j, b.disk_energy.transition_j);
  EXPECT_EQ(a.disk_energy.dynamic_j, b.disk_energy.dynamic_j);
  EXPECT_EQ(a.cache_accesses, b.cache_accesses);
  EXPECT_EQ(a.disk_accesses, b.disk_accesses);
  EXPECT_EQ(a.disk_writes, b.disk_writes);
  EXPECT_EQ(a.readahead_fetches, b.readahead_fetches);
  EXPECT_EQ(a.disk_shutdowns, b.disk_shutdowns);
  EXPECT_EQ(a.spin_ups, b.spin_ups);
  EXPECT_EQ(a.disk_busy_s, b.disk_busy_s);
  EXPECT_EQ(a.spindle_count, b.spindle_count);
  EXPECT_EQ(a.total_latency_s, b.total_latency_s);
  EXPECT_EQ(a.long_latency_count, b.long_latency_count);
  EXPECT_EQ(a.reliability.spinup_retries, b.reliability.spinup_retries);
  EXPECT_EQ(a.reliability.retry_delay_s, b.reliability.retry_delay_s);
  EXPECT_EQ(a.reliability.degraded_spindles, b.reliability.degraded_spindles);
  EXPECT_EQ(a.reliability.degraded_time_s, b.reliability.degraded_time_s);
  EXPECT_EQ(a.reliability.rerouted_requests, b.reliability.rerouted_requests);
  EXPECT_EQ(a.reliability.manager_fallbacks, b.reliability.manager_fallbacks);
  EXPECT_EQ(a.reliability.violated_periods, b.reliability.violated_periods);
  EXPECT_EQ(a.reliability.guard_backoffs, b.reliability.guard_backoffs);
  ASSERT_EQ(a.periods.size(), b.periods.size());
  for (std::size_t p = 0; p < a.periods.size(); ++p) {
    EXPECT_EQ(a.periods[p].start_s, b.periods[p].start_s);
    EXPECT_EQ(a.periods[p].end_s, b.periods[p].end_s);
    EXPECT_EQ(a.periods[p].cache_accesses, b.periods[p].cache_accesses);
    EXPECT_EQ(a.periods[p].disk_accesses, b.periods[p].disk_accesses);
    EXPECT_EQ(a.periods[p].mean_idle_s, b.periods[p].mean_idle_s);
    EXPECT_EQ(a.periods[p].memory_units, b.periods[p].memory_units);
    EXPECT_EQ(a.periods[p].timeout_s, b.periods[p].timeout_s);
    EXPECT_EQ(a.periods[p].busy_s, b.periods[p].busy_s);
    EXPECT_EQ(a.periods[p].delayed_requests, b.periods[p].delayed_requests);
  }
}

std::vector<SweepPoint> sweep_with_threads(
    const char* threads,
    const std::vector<std::pair<std::string, workload::SynthesizerConfig>>&
        points_in,
    const EngineConfig& engine) {
  const char* old = std::getenv("JPM_THREADS");
  const std::string saved = old ? old : "";
  const bool had_old = old != nullptr;
  ::setenv("JPM_THREADS", threads, 1);
  auto points = run_sweep(points_in, six_policy_roster(), engine);
  if (had_old) {
    ::setenv("JPM_THREADS", saved.c_str(), 1);
  } else {
    ::unsetenv("JPM_THREADS");
  }
  return points;
}

std::vector<SweepPoint> sweep_with_threads(const char* threads) {
  return sweep_with_threads(threads, three_point_sweep(), sweep_engine());
}

// Fault sweep setup: sparse requests and a short break-even so the disk
// spin-cycles constantly, making the injected spin-up failures (p = 0.5)
// actually fire; the determinism claim must hold under faults too.
workload::SynthesizerConfig sparse_point(std::uint64_t dataset_bytes,
                                         std::uint64_t seed) {
  auto w = point_workload(dataset_bytes, seed);
  w.byte_rate = 0.2e6;
  return w;
}

std::vector<std::pair<std::string, workload::SynthesizerConfig>>
sparse_sweep() {
  return {{"64MB", sparse_point(mib(64), 3)},
          {"128MB", sparse_point(mib(128), 4)}};
}

EngineConfig faulted_sweep_engine() {
  EngineConfig e = sweep_engine();
  e.prefill_cache = false;
  e.warm_up_s = 0.0;
  e.joint.disk.transition_j = 7.75;  // break-even ~1.2 s
  e.fault.enabled = true;
  e.fault.seed = 42;
  e.fault.p_spinup_fail = 0.5;
  e.fault.spinup_degrade_after = 4;
  e.fault.guard.enabled = true;
  return e;
}

void expect_points_bit_identical(const std::vector<SweepPoint>& serial,
                                 const std::vector<SweepPoint>& parallel) {
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(serial[i].label);
    EXPECT_EQ(serial[i].label, parallel[i].label);
    expect_bit_identical(serial[i].baseline, parallel[i].baseline);
    ASSERT_EQ(serial[i].outcomes.size(), parallel[i].outcomes.size());
    for (std::size_t j = 0; j < serial[i].outcomes.size(); ++j) {
      SCOPED_TRACE(serial[i].outcomes[j].spec.name);
      EXPECT_EQ(serial[i].outcomes[j].spec.name,
                parallel[i].outcomes[j].spec.name);
      expect_bit_identical(serial[i].outcomes[j].metrics,
                           parallel[i].outcomes[j].metrics);
      EXPECT_EQ(serial[i].outcomes[j].normalized.total,
                parallel[i].outcomes[j].normalized.total);
      EXPECT_EQ(serial[i].outcomes[j].normalized.disk,
                parallel[i].outcomes[j].normalized.disk);
      EXPECT_EQ(serial[i].outcomes[j].normalized.memory,
                parallel[i].outcomes[j].normalized.memory);
    }
  }
}

TEST(SweepDeterminismTest, EightThreadsMatchSerialBitForBit) {
  const auto serial = sweep_with_threads("1");
  const auto parallel = sweep_with_threads("8");
  expect_points_bit_identical(serial, parallel);
}

TEST(SweepDeterminismTest, FaultInjectedSweepIsThreadCountInvariant) {
  const auto engine = faulted_sweep_engine();
  const auto serial = sweep_with_threads("1", sparse_sweep(), engine);
  const auto parallel = sweep_with_threads("8", sparse_sweep(), engine);
  expect_points_bit_identical(serial, parallel);
  // The plan above must actually exercise the fault paths, otherwise this
  // test degenerates into the fault-free one.
  bool any_reliability = false;
  for (const auto& point : serial) {
    for (const auto& outcome : point.outcomes) {
      any_reliability |= outcome.metrics.reliability.any();
    }
  }
  EXPECT_TRUE(any_reliability);
}

TEST(SweepDeterminismTest, DisabledFaultPlanMatchesNoPlanBitForBit) {
  // A present-but-disabled plan — even with aggressive knobs — must leave
  // every metric bit-identical to an engine config without one.
  EngineConfig with_knobs = sweep_engine();
  with_knobs.fault.enabled = false;
  with_knobs.fault.p_spinup_fail = 0.9;
  with_knobs.fault.server_mtbf_s = 100.0;
  with_knobs.fault.guard.enabled = true;  // inert while enabled == false

  const auto w = point_workload(mib(128), 7);
  for (const auto& policy : six_policy_roster()) {
    SCOPED_TRACE(policy.name);
    const auto plain = run_simulation(w, policy, sweep_engine());
    const auto gated = run_simulation(w, policy, with_knobs);
    expect_bit_identical(plain, gated);
    EXPECT_FALSE(gated.reliability.any());
  }
}

TEST(SweepDeterminismTest, SharedTraceMatchesSynthesizingEngine) {
  const auto w = point_workload(mib(128), 7);
  const auto e = sweep_engine();
  const auto policy = fixed_policy(DiskPolicyKind::kTwoCompetitive, mib(64));

  const auto trace = workload::synthesize_trace(w);
  const auto from_trace = run_simulation(trace, policy, e);
  const auto from_config = run_simulation(w, policy, e);
  expect_bit_identical(from_trace, from_config);
}

TEST(SweepDeterminismTest, SharedTraceSupportsRepeatedReplays) {
  const auto w = point_workload(mib(128), 11);
  const auto e = sweep_engine();
  const auto trace = workload::synthesize_trace(w);
  const auto first = run_simulation(trace, joint_policy(), e);
  const auto second = run_simulation(trace, joint_policy(), e);
  expect_bit_identical(first, second);
}

}  // namespace
}  // namespace jpm::sim
