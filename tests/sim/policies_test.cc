#include "jpm/sim/policies.h"

#include <gtest/gtest.h>

#include <set>

#include "jpm/util/check.h"

namespace jpm::sim {
namespace {

TEST(PoliciesTest, PaperRosterHasSixteenMethods) {
  const auto roster = paper_policies();
  EXPECT_EQ(roster.size(), 16u);
  std::set<std::string> names;
  for (const auto& s : roster) names.insert(s.name);
  EXPECT_EQ(names.size(), 16u) << "names must be unique";
  EXPECT_TRUE(names.contains("Joint"));
  EXPECT_TRUE(names.contains("Always-on"));
  EXPECT_TRUE(names.contains("2TFM-8GB"));
  EXPECT_TRUE(names.contains("2TFM-128GB"));
  EXPECT_TRUE(names.contains("ADFM-64GB"));
  EXPECT_TRUE(names.contains("2TPD-128GB"));
  EXPECT_TRUE(names.contains("ADPD-128GB"));
  EXPECT_TRUE(names.contains("2TDS-128GB"));
  EXPECT_TRUE(names.contains("ADDS-128GB"));
}

TEST(PoliciesTest, ExactlyOneAlwaysOnAndOneJoint) {
  const auto roster = paper_policies();
  int always_on = 0, joint = 0;
  for (const auto& s : roster) {
    always_on += s.disk == DiskPolicyKind::kAlwaysOn;
    joint += s.is_joint();
  }
  EXPECT_EQ(always_on, 1);
  EXPECT_EQ(joint, 1);
}

TEST(PoliciesTest, FixedPolicyCarriesSize) {
  const auto s = fixed_policy(DiskPolicyKind::kTwoCompetitive, gib(32));
  EXPECT_EQ(s.name, "2TFM-32GB");
  EXPECT_EQ(s.fixed_bytes, gib(32));
  EXPECT_EQ(s.mem, MemPolicyKind::kFixed);
}

TEST(PoliciesTest, JointSpecIsSelfConsistent) {
  const auto s = joint_policy();
  EXPECT_TRUE(s.is_joint());
  EXPECT_EQ(s.mem, MemPolicyKind::kJoint);
}

// Regression: is_joint() used to key only on the disk half, so a spec with
// joint memory but a non-joint disk policy bypassed the engine's joint-
// manager gate and silently ran with memory pinned at full size. The halves
// are now queryable separately and is_joint() means both.
TEST(PoliciesTest, JointHalvesAreTrackedSeparately) {
  PolicySpec mem_only;
  mem_only.mem = MemPolicyKind::kJoint;  // disk stays kAlwaysOn
  EXPECT_FALSE(mem_only.joint_disk());
  EXPECT_TRUE(mem_only.joint_memory());
  EXPECT_FALSE(mem_only.is_joint());

  PolicySpec disk_only;
  disk_only.disk = DiskPolicyKind::kJoint;  // mem stays kNapAll
  EXPECT_TRUE(disk_only.joint_disk());
  EXPECT_FALSE(disk_only.joint_memory());
  EXPECT_FALSE(disk_only.is_joint());
}

// drpm_joint_policy() (inert disk timeout, multi-speed disk) must still be
// recognized as joint on both halves so it reaches the manager gate.
TEST(PoliciesTest, DrpmJointIsJointOnBothHalves) {
  const auto s = drpm_joint_policy();
  EXPECT_TRUE(s.joint_disk());
  EXPECT_TRUE(s.joint_memory());
  EXPECT_TRUE(s.is_joint());
  EXPECT_TRUE(s.multi_speed);
}

TEST(PoliciesTest, CustomRosterSizes) {
  const auto roster = paper_policies(gib(64), {4, 64});
  // joint + 2*(2 FM + PD + DS) + always-on = 10
  EXPECT_EQ(roster.size(), 10u);
  bool found = false;
  for (const auto& s : roster) found |= s.name == "2TPD-64GB";
  EXPECT_TRUE(found);
}

TEST(PoliciesTest, RejectsZeroFixedSize) {
  EXPECT_THROW(fixed_policy(DiskPolicyKind::kAdaptive, 0), CheckError);
}

}  // namespace
}  // namespace jpm::sim
