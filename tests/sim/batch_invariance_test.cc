// The replay batch size (EngineConfig::batch_size) is a pure throughput
// knob: every batch size must produce bit-identical RunMetrics to the
// classic per-event loop (batch 1), across every policy family, with
// writes and flushes, with readahead (the re-probing batch mode), on
// multi-disk arrays, and independent of JPM_THREADS.
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "jpm/sim/runner.h"

namespace jpm::sim {
namespace {

workload::SynthesizerConfig batch_workload(std::uint64_t seed) {
  workload::SynthesizerConfig w;
  w.dataset_bytes = mib(128);
  w.byte_rate = 20e6;
  w.popularity = 0.1;
  w.duration_s = 900.0;
  w.page_bytes = 64 * kKiB;
  w.file_scale = 16.0;
  w.write_fraction = 0.25;  // dirty pages: evict writebacks + flush bursts
  w.seed = seed;
  return w;
}

EngineConfig batch_engine(std::uint32_t batch) {
  EngineConfig e;
  e.joint.physical_bytes = gib(1);
  e.joint.unit_bytes = 16 * kMiB;
  e.joint.page_bytes = 64 * kKiB;
  e.joint.period_s = 300.0;
  e.warm_up_s = 300.0;
  e.batch_size = batch;
  return e;
}

std::vector<PolicySpec> six_policy_roster() {
  return {joint_policy(),
          fixed_policy(DiskPolicyKind::kTwoCompetitive, mib(64)),
          fixed_policy(DiskPolicyKind::kAdaptive, mib(128)),
          powerdown_policy(DiskPolicyKind::kTwoCompetitive, gib(1)),
          disable_policy(DiskPolicyKind::kAdaptive, gib(1)),
          always_on_policy()};
}

void expect_bit_identical(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_EQ(a.policy_name, b.policy_name);
  EXPECT_EQ(a.duration_s, b.duration_s);
  EXPECT_EQ(a.mem_energy.static_j, b.mem_energy.static_j);
  EXPECT_EQ(a.mem_energy.dynamic_j, b.mem_energy.dynamic_j);
  EXPECT_EQ(a.disk_energy.standby_base_j, b.disk_energy.standby_base_j);
  EXPECT_EQ(a.disk_energy.static_j, b.disk_energy.static_j);
  EXPECT_EQ(a.disk_energy.transition_j, b.disk_energy.transition_j);
  EXPECT_EQ(a.disk_energy.dynamic_j, b.disk_energy.dynamic_j);
  EXPECT_EQ(a.cache_accesses, b.cache_accesses);
  EXPECT_EQ(a.disk_accesses, b.disk_accesses);
  EXPECT_EQ(a.disk_writes, b.disk_writes);
  EXPECT_EQ(a.readahead_fetches, b.readahead_fetches);
  EXPECT_EQ(a.disk_shutdowns, b.disk_shutdowns);
  EXPECT_EQ(a.spin_ups, b.spin_ups);
  EXPECT_EQ(a.disk_busy_s, b.disk_busy_s);
  EXPECT_EQ(a.spindle_count, b.spindle_count);
  EXPECT_EQ(a.total_latency_s, b.total_latency_s);
  EXPECT_EQ(a.long_latency_count, b.long_latency_count);
  ASSERT_EQ(a.periods.size(), b.periods.size());
  for (std::size_t p = 0; p < a.periods.size(); ++p) {
    EXPECT_EQ(a.periods[p].start_s, b.periods[p].start_s);
    EXPECT_EQ(a.periods[p].end_s, b.periods[p].end_s);
    EXPECT_EQ(a.periods[p].cache_accesses, b.periods[p].cache_accesses);
    EXPECT_EQ(a.periods[p].disk_accesses, b.periods[p].disk_accesses);
    EXPECT_EQ(a.periods[p].mean_idle_s, b.periods[p].mean_idle_s);
    EXPECT_EQ(a.periods[p].memory_units, b.periods[p].memory_units);
    EXPECT_EQ(a.periods[p].timeout_s, b.periods[p].timeout_s);
    EXPECT_EQ(a.periods[p].busy_s, b.periods[p].busy_s);
    EXPECT_EQ(a.periods[p].delayed_requests, b.periods[p].delayed_requests);
  }
}

// Batch sizes straddling the interesting edges: the classic loop, a batch
// that never divides the event count evenly, the default, and one larger
// than most boundary-to-boundary runs.
const std::uint32_t kBatches[] = {1, 7, 64, 256};

TEST(BatchInvarianceTest, SixPoliciesBitIdenticalAcrossBatchSizes) {
  const auto trace = workload::synthesize_trace(batch_workload(7));
  for (const auto& policy : six_policy_roster()) {
    SCOPED_TRACE(policy.name);
    const auto reference = run_simulation(trace, policy, batch_engine(1));
    for (std::uint32_t batch : kBatches) {
      SCOPED_TRACE("batch " + std::to_string(batch));
      expect_bit_identical(reference,
                           run_simulation(trace, policy, batch_engine(batch)));
    }
  }
}

TEST(BatchInvarianceTest, ReadaheadReprobingModeIsBatchInvariant) {
  // readahead > 0 evicts without a live tracker slot, so batches re-probe
  // per event instead of caching entry pointers — still bit-identical.
  const auto trace = workload::synthesize_trace(batch_workload(11));
  const auto policy = fixed_policy(DiskPolicyKind::kTwoCompetitive, mib(64));
  auto reference_engine = batch_engine(1);
  reference_engine.readahead_pages = 2;
  const auto reference = run_simulation(trace, policy, reference_engine);
  for (std::uint32_t batch : kBatches) {
    SCOPED_TRACE("batch " + std::to_string(batch));
    auto engine = batch_engine(batch);
    engine.readahead_pages = 2;
    expect_bit_identical(reference, run_simulation(trace, policy, engine));
  }
}

TEST(BatchInvarianceTest, MultiDiskArrayIsBatchInvariant) {
  const auto trace = workload::synthesize_trace(batch_workload(13));
  auto reference_engine = batch_engine(1);
  reference_engine.disk_count = 4;
  const auto reference =
      run_simulation(trace, joint_policy(), reference_engine);
  for (std::uint32_t batch : kBatches) {
    SCOPED_TRACE("batch " + std::to_string(batch));
    auto engine = batch_engine(batch);
    engine.disk_count = 4;
    expect_bit_identical(reference,
                         run_simulation(trace, joint_policy(), engine));
  }
}

TEST(BatchInvarianceTest, ThreadCountDoesNotInteractWithBatching) {
  const auto points = std::vector<
      std::pair<std::string, workload::SynthesizerConfig>>{
      {"128MB", batch_workload(7)}};
  auto sweep_at = [&](const char* threads, std::uint32_t batch) {
    const char* old = std::getenv("JPM_THREADS");
    const std::string saved = old ? old : "";
    const bool had_old = old != nullptr;
    ::setenv("JPM_THREADS", threads, 1);
    auto out = run_sweep(points, six_policy_roster(), batch_engine(batch));
    if (had_old) {
      ::setenv("JPM_THREADS", saved.c_str(), 1);
    } else {
      ::unsetenv("JPM_THREADS");
    }
    return out;
  };
  const auto serial_classic = sweep_at("1", 1);
  for (const auto* threads : {"1", "8"}) {
    const auto batched = sweep_at(threads, 256);
    ASSERT_EQ(serial_classic.size(), batched.size());
    for (std::size_t i = 0; i < serial_classic.size(); ++i) {
      SCOPED_TRACE(std::string("threads ") + threads);
      expect_bit_identical(serial_classic[i].baseline, batched[i].baseline);
      ASSERT_EQ(serial_classic[i].outcomes.size(), batched[i].outcomes.size());
      for (std::size_t j = 0; j < serial_classic[i].outcomes.size(); ++j) {
        expect_bit_identical(serial_classic[i].outcomes[j].metrics,
                             batched[i].outcomes[j].metrics);
      }
    }
  }
}

TEST(BatchInvarianceTest, BatchSizeIsValidated) {
  const auto w = batch_workload(7);
  EXPECT_THROW(run_simulation(w, always_on_policy(), batch_engine(0)),
               std::invalid_argument);
  EXPECT_THROW(run_simulation(w, always_on_policy(), batch_engine(65537)),
               std::invalid_argument);
  EXPECT_NO_THROW(run_simulation(w, always_on_policy(), batch_engine(65536)));
}

}  // namespace
}  // namespace jpm::sim
