// Integration tests: full trace -> cache -> disk runs on a scaled-down
// configuration (1 GiB physical memory, 256 MiB data set) chosen so every
// policy's distinctive behaviour is visible in a sub-second run.
#include "jpm/sim/engine.h"

#include <gtest/gtest.h>

#include <cmath>

#include "jpm/sim/runner.h"
#include "jpm/util/check.h"

namespace jpm::sim {
namespace {

workload::SynthesizerConfig small_workload() {
  workload::SynthesizerConfig w;
  w.dataset_bytes = mib(256);
  w.byte_rate = 20e6;
  w.popularity = 0.1;
  w.duration_s = 1800.0;
  w.page_bytes = 64 * kKiB;
  w.file_scale = 16.0;
  w.seed = 4;
  return w;
}

EngineConfig small_engine() {
  EngineConfig e;
  e.joint.physical_bytes = gib(1);
  e.joint.unit_bytes = 16 * kMiB;
  e.joint.page_bytes = 64 * kKiB;
  e.joint.period_s = 300.0;
  e.prefill_cache = true;
  e.warm_up_s = 300.0;
  return e;
}

PolicySpec fm(std::uint64_t bytes) {
  return fixed_policy(DiskPolicyKind::kTwoCompetitive, bytes);
}

TEST(EngineTest, DeterministicAcrossRuns) {
  const auto a = run_simulation(small_workload(), fm(mib(128)), small_engine());
  const auto b = run_simulation(small_workload(), fm(mib(128)), small_engine());
  EXPECT_EQ(a.cache_accesses, b.cache_accesses);
  EXPECT_EQ(a.disk_accesses, b.disk_accesses);
  EXPECT_DOUBLE_EQ(a.total_j(), b.total_j());
  EXPECT_DOUBLE_EQ(a.total_latency_s, b.total_latency_s);
}

TEST(EngineTest, AlwaysOnMemoryEnergyIsNapFloor) {
  const auto e = small_engine();
  const auto m = run_simulation(small_workload(), always_on_policy(), e);
  const double expected =
      e.joint.mem.nap_power_w(e.joint.physical_bytes) * m.duration_s;
  // Millions of per-touch integration segments accumulate float noise.
  EXPECT_NEAR(m.mem_energy.static_j, expected, expected * 1e-7);
  EXPECT_EQ(m.disk_shutdowns, 0u);
}

TEST(EngineTest, PrefillEliminatesColdMisses) {
  // Capacity >= data set and a prefilled cache: nothing ever misses.
  const auto m = run_simulation(small_workload(), fm(mib(512)), small_engine());
  EXPECT_EQ(m.disk_accesses, 0u);
  EXPECT_EQ(m.long_latency_count, 0u);
  EXPECT_DOUBLE_EQ(m.utilization(), 0.0);
}

TEST(EngineTest, WithoutPrefillColdMissesAppear) {
  auto e = small_engine();
  e.prefill_cache = false;
  e.warm_up_s = 0.0;
  const auto m = run_simulation(small_workload(), fm(mib(512)), e);
  EXPECT_GT(m.disk_accesses, 0u);
}

TEST(EngineTest, SmallerMemoryNeverMissesLess) {
  const auto big = run_simulation(small_workload(), fm(mib(256)),
                                  small_engine());
  const auto small = run_simulation(small_workload(), fm(mib(64)),
                                    small_engine());
  EXPECT_GE(small.disk_accesses, big.disk_accesses);
  EXPECT_GE(small.utilization(), big.utilization());
  // And the fixed memory sizes show up directly in static energy.
  EXPECT_GT(big.mem_energy.static_j, small.mem_energy.static_j);
}

TEST(EngineTest, WarmUpWindowExcludedFromMetrics) {
  auto e = small_engine();
  const auto m = run_simulation(small_workload(), fm(mib(128)), e);
  EXPECT_DOUBLE_EQ(m.duration_s, 1800.0 - 300.0);
  // Static memory energy reflects the measured window only.
  const double expected =
      e.joint.mem.nap_power_w(mib(128)) * m.duration_s;
  EXPECT_NEAR(m.mem_energy.static_j, expected, expected * 1e-9);
}

TEST(EngineTest, EnergiesAreNonNegativeAndAdditive) {
  for (const auto& spec :
       {joint_policy(), fm(mib(64)),
        powerdown_policy(DiskPolicyKind::kAdaptive, gib(1)),
        disable_policy(DiskPolicyKind::kTwoCompetitive, gib(1)),
        always_on_policy()}) {
    const auto m = run_simulation(small_workload(), spec, small_engine());
    EXPECT_GE(m.mem_energy.static_j, 0.0) << spec.name;
    EXPECT_GE(m.mem_energy.dynamic_j, 0.0) << spec.name;
    EXPECT_GE(m.disk_energy.standby_base_j, 0.0) << spec.name;
    EXPECT_GE(m.disk_energy.static_j, 0.0) << spec.name;
    EXPECT_GE(m.disk_energy.transition_j, 0.0) << spec.name;
    EXPECT_GE(m.disk_energy.dynamic_j, 0.0) << spec.name;
    EXPECT_NEAR(m.total_j(),
                m.mem_energy.total_j() + m.disk_energy.total_j(), 1e-9)
        << spec.name;
  }
}

TEST(EngineTest, PowerDownMemoryBetweenFloorAndNap) {
  const auto e = small_engine();
  const auto pd = run_simulation(
      small_workload(), powerdown_policy(DiskPolicyKind::kTwoCompetitive,
                                         gib(1)), e);
  const double nap = e.joint.mem.nap_power_w(gib(1)) * pd.duration_s;
  EXPECT_LT(pd.mem_energy.static_j, nap);
  EXPECT_GT(pd.mem_energy.static_j, 0.29 * nap);
  // PD retains data: post-prefill it misses exactly as the always-on does.
  const auto ao = run_simulation(small_workload(), always_on_policy(), e);
  EXPECT_EQ(pd.disk_accesses, ao.disk_accesses);
}

TEST(EngineTest, DisablePolicyLosesDataAndAddsDiskAccesses) {
  auto e = small_engine();
  // Shorten the disable timeout and slow the request stream so cool banks go
  // idle long enough to drop, then get re-requested.
  e.joint.mem.disable_timeout_s = 60.0;
  auto w = small_workload();
  w.byte_rate = 0.5e6;
  w.duration_s = 3600.0;
  const auto ds = run_simulation(
      w, disable_policy(DiskPolicyKind::kTwoCompetitive, gib(1)), e);
  const auto ao = run_simulation(w, always_on_policy(), e);
  // Disabled banks forget pages -> strictly more disk traffic than always-on.
  EXPECT_GT(ds.disk_accesses, ao.disk_accesses);
  // But unused banks stop burning nap power.
  EXPECT_LT(ds.mem_energy.static_j, ao.mem_energy.static_j);
}

TEST(EngineTest, JointBeatsAlwaysOnAndMeetsConstraints) {
  const auto e = small_engine();
  const auto joint = run_simulation(small_workload(), joint_policy(), e);
  const auto ao = run_simulation(small_workload(), always_on_policy(), e);
  EXPECT_LT(joint.total_j(), ao.total_j());
  EXPECT_LE(joint.utilization(), e.joint.util_limit + 0.02);
  // Delayed-request ratio within the configured D (plus prediction slack).
  const double delayed_ratio =
      joint.cache_accesses == 0
          ? 0.0
          : static_cast<double>(joint.long_latency_count) /
                static_cast<double>(joint.cache_accesses);
  EXPECT_LE(delayed_ratio, 10 * e.joint.delay_limit);
}

// Regression: a spec pairing joint memory with a non-joint disk policy used
// to slip past the manager gate (is_joint() keyed only on the disk half) and
// silently ran with memory pinned at full size. Both mismatches must now be
// rejected loudly.
TEST(EngineTest, RejectsMismatchedJointHalves) {
  PolicySpec mem_only{"mem-only-joint", DiskPolicyKind::kTwoCompetitive,
                      MemPolicyKind::kJoint, 0};
  EXPECT_THROW(run_simulation(small_workload(), mem_only, small_engine()),
               CheckError);
  PolicySpec disk_only{"disk-only-joint", DiskPolicyKind::kJoint,
                       MemPolicyKind::kNapAll, 0};
  EXPECT_THROW(run_simulation(small_workload(), disk_only, small_engine()),
               CheckError);
}

TEST(EngineTest, PeriodRecordsCoverRun) {
  const auto m = run_simulation(small_workload(), fm(mib(128)),
                                small_engine());
  ASSERT_EQ(m.periods.size(), 6u);  // 1800 s / 300 s
  double t = 0.0;
  std::uint64_t accesses = 0;
  for (const auto& p : m.periods) {
    EXPECT_DOUBLE_EQ(p.start_s, t);
    t = p.end_s;
    accesses += p.cache_accesses;
  }
  EXPECT_DOUBLE_EQ(t, 1800.0);
  EXPECT_GT(accesses, 0u);
}

TEST(EngineTest, RunIsSingleShot) {
  Engine engine(small_workload(), fm(mib(128)), small_engine());
  engine.run();
  EXPECT_THROW(engine.run(), CheckError);
}

TEST(EngineTest, RejectsWarmUpBeyondDuration) {
  auto e = small_engine();
  e.warm_up_s = 1e6;
  EXPECT_THROW(run_simulation(small_workload(), fm(mib(128)), e), CheckError);
}

TEST(EngineTest, MultiDiskArrayServesSameMisses) {
  auto e = small_engine();
  auto single = run_simulation(small_workload(), fm(mib(64)), e);
  e.disk_count = 4;
  e.stripe_bytes = mib(4);
  auto array = run_simulation(small_workload(), fm(mib(64)), e);
  // Same cache, same trace: identical miss counts; four spindles report
  // themselves; per-spindle utilization drops.
  EXPECT_EQ(array.disk_accesses, single.disk_accesses);
  EXPECT_EQ(array.spindle_count, 4u);
  EXPECT_LT(array.utilization(), single.utilization() + 1e-12);
  // Four idle spindles cost more standby-floor energy than one.
  EXPECT_GT(array.disk_energy.standby_base_j,
            3.0 * single.disk_energy.standby_base_j);
}

TEST(EngineTest, MultiDiskJointSharesOneTimeout) {
  auto e = small_engine();
  e.disk_count = 2;
  e.stripe_bytes = mib(4);
  const auto m = run_simulation(small_workload(), joint_policy(), e);
  EXPECT_EQ(m.spindle_count, 2u);
  EXPECT_GT(m.cache_accesses, 0u);
}

TEST(EngineTest, DrpmPolicyAvoidsSpinUpCliff) {
  auto e = small_engine();
  auto w = small_workload();
  w.byte_rate = 2e6;  // sparse misses: spin-down policies wake on demand
  const auto drpm = run_simulation(w, drpm_fixed_policy(mib(64)), e);
  const auto spin = run_simulation(w, fm(mib(64)), e);
  EXPECT_EQ(drpm.disk_accesses, spin.disk_accesses);
  // The multi-speed disk never pays a 10 s wake-up.
  EXPECT_LE(drpm.long_latency_count, spin.long_latency_count);
  EXPECT_LT(drpm.mean_latency_s(), 0.05);
}

TEST(EngineTest, DrpmJointResizesMemory) {
  const auto m = run_simulation(small_workload(), drpm_joint_policy(),
                                small_engine());
  EXPECT_GT(m.cache_accesses, 0u);
  // Joint memory manager still shrinks below physical (1 GiB) on this
  // 256 MiB working set.
  ASSERT_FALSE(m.periods.empty());
  EXPECT_LT(m.periods.back().memory_units, gib(1) / (16 * kMiB));
}

TEST(EngineTest, WriteTrafficGeneratesWritebacks) {
  auto w = small_workload();
  w.write_fraction = 0.3;
  auto e = small_engine();
  e.flush_interval_s = 30.0;
  const auto m = run_simulation(w, fm(mib(512)), e);
  EXPECT_GT(m.disk_writes, 0u);
  // Cache covers the data set and writes allocate without fetch: no reads.
  EXPECT_EQ(m.disk_accesses, 0u);
  // Writebacks consume disk time and energy.
  EXPECT_GT(m.disk_busy_s, 0.0);
  EXPECT_GT(m.disk_energy.dynamic_j, 0.0);
}

TEST(EngineTest, ReadOnlyWorkloadUnaffectedByFlushDaemon) {
  auto e1 = small_engine();
  e1.flush_interval_s = 30.0;
  auto e2 = small_engine();
  e2.flush_interval_s = 0.0;
  const auto a = run_simulation(small_workload(), fm(mib(128)), e1);
  const auto b = run_simulation(small_workload(), fm(mib(128)), e2);
  EXPECT_EQ(a.disk_writes, 0u);
  EXPECT_DOUBLE_EQ(a.total_j(), b.total_j());
}

TEST(EngineTest, DisabledFlushDefersWritebacksToEviction) {
  auto w = small_workload();
  w.write_fraction = 0.3;
  auto flush_on = small_engine();
  flush_on.flush_interval_s = 10.0;
  auto flush_off = small_engine();
  flush_off.flush_interval_s = 0.0;
  const auto on = run_simulation(w, fm(mib(512)), flush_on);
  const auto off = run_simulation(w, fm(mib(512)), flush_off);
  // With the daemon off and a roomy cache, dirty pages coalesce: repeated
  // writes to the same page collapse into one final writeback.
  EXPECT_LT(off.disk_writes, on.disk_writes);
}

TEST(EngineTest, PeriodicFlushKeepsDiskBusierThanWriteCoalescing) {
  auto w = small_workload();
  w.write_fraction = 0.3;
  auto fast_flush = small_engine();
  fast_flush.flush_interval_s = 5.0;
  auto slow_flush = small_engine();
  slow_flush.flush_interval_s = 120.0;
  const auto fast = run_simulation(w, fm(mib(512)), fast_flush);
  const auto slow = run_simulation(w, fm(mib(512)), slow_flush);
  EXPECT_GE(fast.disk_writes, slow.disk_writes);
}

TEST(EngineTest, ReadaheadTradesFetchesForMisses) {
  auto e_plain = small_engine();
  auto e_ra = small_engine();
  e_ra.readahead_pages = 8;
  auto w = small_workload();
  w.file_scale = 64.0;  // bigger files: sequential runs worth prefetching
  const auto plain = run_simulation(w, fm(mib(64)), e_plain);
  const auto ra = run_simulation(w, fm(mib(64)), e_ra);
  EXPECT_GT(ra.readahead_fetches, 0u);
  // Prefetched pages absorb later sequential misses.
  EXPECT_LT(ra.disk_accesses, plain.disk_accesses);
  EXPECT_EQ(plain.readahead_fetches, 0u);
}

TEST(EngineTest, PredictivePolicyRunsAndSleepsDisk) {
  auto w = small_workload();
  // Trickle load: misses arrive roughly a minute apart, so every observed
  // idle interval dwarfs the break-even time and the predictor spins the
  // disk down immediately.
  w.byte_rate = 12e3;
  auto e = small_engine();
  const auto pr = run_simulation(
      w, PolicySpec{"PRFM", DiskPolicyKind::kPredictive, MemPolicyKind::kFixed,
                    mib(64)},
      e);
  const auto ao = run_simulation(
      w, PolicySpec{"NVFM", DiskPolicyKind::kAlwaysOn, MemPolicyKind::kFixed,
                    mib(64)},
      e);
  EXPECT_LT(pr.disk_energy.total_j(), ao.disk_energy.total_j());
}

TEST(EngineTest, ReplayMatchesSynthesizedRun) {
  // Materialize the workload, replay it, and expect the same counters and
  // energies as the generator-driven run.
  const auto w = small_workload();
  const auto e = small_engine();
  const auto direct = run_simulation(w, fm(mib(128)), e);

  workload::TraceGenerator gen(w);
  ReplayTrace trace;
  trace.page_bytes = w.page_bytes;
  trace.total_pages = gen.total_pages();
  trace.duration_s = w.duration_s;
  while (auto ev = gen.next()) trace.events.push_back(*ev);
  const auto replayed = replay_simulation(std::move(trace), fm(mib(128)), e);

  EXPECT_EQ(replayed.cache_accesses, direct.cache_accesses);
  EXPECT_EQ(replayed.disk_accesses, direct.disk_accesses);
  EXPECT_DOUBLE_EQ(replayed.total_j(), direct.total_j());
  EXPECT_DOUBLE_EQ(replayed.total_latency_s, direct.total_latency_s);
}

TEST(EngineTest, ReplayRejectsBadTraces) {
  const auto e = small_engine();
  ReplayTrace empty;
  EXPECT_THROW(replay_simulation(std::move(empty), fm(mib(128)), e),
               CheckError);

  ReplayTrace unsorted;
  unsorted.events = {{2.0, 1, true}, {1.0, 2, true}};
  EXPECT_THROW(replay_simulation(std::move(unsorted), fm(mib(128)), e),
               CheckError);

  ReplayTrace overflow;
  overflow.events = {{1.0, 100, true}};
  overflow.total_pages = 50;  // page 100 out of range
  EXPECT_THROW(replay_simulation(std::move(overflow), fm(mib(128)), e),
               CheckError);
}

TEST(RunnerTest, SweepNormalizesAgainstAlwaysOn) {
  std::vector<std::pair<std::string, workload::SynthesizerConfig>> workloads{
      {"256MB", small_workload()}};
  const std::vector<PolicySpec> roster{joint_policy(), fm(mib(128)),
                                       always_on_policy()};
  const auto points = run_sweep(workloads, roster, small_engine());
  ASSERT_EQ(points.size(), 1u);
  ASSERT_EQ(points[0].outcomes.size(), 3u);
  // Always-on normalizes to 1.0 in every component.
  const auto& ao = points[0].outcomes[2];
  EXPECT_NEAR(ao.normalized.total, 1.0, 1e-12);
  EXPECT_NEAR(ao.normalized.disk, 1.0, 1e-12);
  EXPECT_NEAR(ao.normalized.memory, 1.0, 1e-12);
  // Joint saves energy on this cacheable workload.
  EXPECT_LT(points[0].outcomes[0].normalized.total, 1.0);
}

TEST(RunnerTest, RequiresExactlyOneBaseline) {
  std::vector<std::pair<std::string, workload::SynthesizerConfig>> workloads{
      {"w", small_workload()}};
  EXPECT_THROW(run_sweep(workloads, {joint_policy()}, small_engine()),
               CheckError);
  EXPECT_THROW(run_sweep(workloads,
                         {always_on_policy(), always_on_policy()},
                         small_engine()),
               CheckError);
}

}  // namespace
}  // namespace jpm::sim
