// Parameterized sanity sweep: every method of the paper's roster, run on the
// same small workload, must satisfy a set of universal invariants — energy
// components non-negative and additive, counters consistent, utilization and
// hit ratio within bounds, and the always-on method's energy an upper bound
// on memory energy for every same-memory-size method.
#include <gtest/gtest.h>

#include "jpm/sim/runner.h"

namespace jpm::sim {
namespace {

workload::SynthesizerConfig sweep_workload() {
  workload::SynthesizerConfig w;
  w.dataset_bytes = mib(256);
  w.byte_rate = 15e6;
  w.popularity = 0.1;
  w.duration_s = 1500.0;
  w.page_bytes = 64 * kKiB;
  w.seed = 12;
  return w;
}

EngineConfig sweep_engine() {
  EngineConfig e;
  e.joint.physical_bytes = gib(1);
  e.joint.unit_bytes = 16 * kMiB;
  e.joint.period_s = 300.0;
  e.prefill_cache = true;
  e.warm_up_s = 300.0;
  return e;
}

class PolicySweepTest : public ::testing::TestWithParam<std::size_t> {
 public:
  static std::vector<PolicySpec> roster() {
    // Paper roster scaled to the 1 GiB test machine, plus the extensions.
    std::vector<PolicySpec> specs{joint_policy()};
    for (auto disk :
         {DiskPolicyKind::kTwoCompetitive, DiskPolicyKind::kAdaptive}) {
      for (std::uint64_t mb : {64, 128, 256, 1024}) {
        specs.push_back(fixed_policy(disk, mib(mb)));
      }
      specs.push_back(powerdown_policy(disk, gib(1)));
      specs.push_back(disable_policy(disk, gib(1)));
    }
    specs.push_back(always_on_policy());
    specs.push_back(drpm_fixed_policy(mib(128)));
    specs.push_back(drpm_joint_policy());
    specs.push_back(PolicySpec{"PRFM-128MB", DiskPolicyKind::kPredictive,
                               MemPolicyKind::kFixed, mib(128)});
    return specs;
  }
};

TEST_P(PolicySweepTest, UniversalInvariantsHold) {
  const auto specs = roster();
  ASSERT_LT(GetParam(), specs.size());
  const auto& spec = specs[GetParam()];
  const auto m = run_simulation(sweep_workload(), spec, sweep_engine());

  SCOPED_TRACE(spec.name);
  // Energy sanity.
  EXPECT_GE(m.mem_energy.static_j, 0.0);
  EXPECT_GE(m.mem_energy.dynamic_j, 0.0);
  EXPECT_GE(m.disk_energy.standby_base_j, 0.0);
  EXPECT_GE(m.disk_energy.static_j, 0.0);
  EXPECT_GE(m.disk_energy.transition_j, 0.0);
  EXPECT_GE(m.disk_energy.dynamic_j, 0.0);
  EXPECT_NEAR(m.total_j(),
              m.mem_energy.total_j() + m.disk_energy.total_j(), 1e-9);

  // Counter consistency.
  EXPECT_GT(m.cache_accesses, 0u);
  EXPECT_LE(m.disk_accesses, m.cache_accesses);
  EXPECT_LE(m.spin_ups, m.disk_accesses + m.disk_writes);
  EXPECT_GE(m.hit_ratio(), 0.0);
  EXPECT_LE(m.hit_ratio(), 1.0);
  EXPECT_GE(m.utilization(), 0.0);
  EXPECT_LE(m.utilization(), 1.0);
  EXPECT_DOUBLE_EQ(m.duration_s, 1200.0);

  // The disk never reports less than the standby floor.
  EXPECT_GE(m.disk_energy.total_j(),
            sweep_engine().joint.disk.standby_w * m.duration_s - 1e-6);
  // Memory static energy never exceeds the all-nap ceiling.
  const double nap_ceiling =
      sweep_engine().joint.mem.nap_power_w(gib(1)) * m.duration_s;
  EXPECT_LE(m.mem_energy.static_j, nap_ceiling * (1.0 + 1e-6));

  // Periods tile the run.
  ASSERT_FALSE(m.periods.empty());
  EXPECT_DOUBLE_EQ(m.periods.front().start_s, 0.0);
  EXPECT_DOUBLE_EQ(m.periods.back().end_s, 1500.0);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicySweepTest,
                         ::testing::Range<std::size_t>(0, 17));

TEST(PolicySweepTest, RosterSizeMatchesInstantiation) {
  EXPECT_EQ(PolicySweepTest::roster().size(), 17u);
}

}  // namespace
}  // namespace jpm::sim
