#include "jpm/sim/metrics.h"

#include <gtest/gtest.h>

#include "jpm/util/check.h"

namespace jpm::sim {
namespace {

RunMetrics sample() {
  RunMetrics m;
  m.duration_s = 100.0;
  m.mem_energy.static_j = 600.0;
  m.mem_energy.dynamic_j = 100.0;
  m.disk_energy.standby_base_j = 90.0;
  m.disk_energy.static_j = 200.0;
  m.disk_energy.transition_j = 77.5;
  m.disk_energy.dynamic_j = 32.5;
  m.cache_accesses = 1000;
  m.disk_accesses = 100;
  m.disk_busy_s = 5.0;
  m.total_latency_s = 2.0;
  m.long_latency_count = 4;
  return m;
}

TEST(MetricsTest, DerivedQuantities) {
  const auto m = sample();
  EXPECT_DOUBLE_EQ(m.total_j(), 1100.0);
  EXPECT_DOUBLE_EQ(m.mean_latency_s(), 0.002);
  EXPECT_DOUBLE_EQ(m.utilization(), 0.05);
  EXPECT_DOUBLE_EQ(m.long_latency_per_s(), 0.04);
  EXPECT_DOUBLE_EQ(m.hit_ratio(), 0.9);
}

// Fig. 7d semantics: mean latency averages over ALL disk-cache accesses
// (hits dilute the average), NOT over disk accesses only. The sample has
// 1000 accesses of which 100 are misses carrying 2 s of total latency:
// 2 ms per access, 20 ms per miss — the method must report the former.
TEST(MetricsTest, MeanLatencyAveragesOverAllAccessesNotMisses) {
  const auto m = sample();
  EXPECT_DOUBLE_EQ(m.mean_latency_s(),
                   m.total_latency_s / static_cast<double>(m.cache_accesses));
  EXPECT_NE(m.mean_latency_s(),
            m.total_latency_s / static_cast<double>(m.disk_accesses));
  // Hits-only run: no misses, zero latency sum, well-defined zero mean.
  auto hits_only = sample();
  hits_only.disk_accesses = 0;
  hits_only.total_latency_s = 0.0;
  EXPECT_EQ(hits_only.mean_latency_s(), 0.0);
}

TEST(MetricsTest, ZeroDenominatorsAreSafe) {
  RunMetrics m;
  EXPECT_EQ(m.mean_latency_s(), 0.0);
  EXPECT_EQ(m.utilization(), 0.0);
  EXPECT_EQ(m.long_latency_per_s(), 0.0);
  EXPECT_EQ(m.hit_ratio(), 0.0);
}

TEST(MetricsTest, NormalizationAgainstBaseline) {
  const auto base = sample();
  auto half = sample();
  half.mem_energy.static_j = 250.0;
  half.mem_energy.dynamic_j = 100.0;
  half.disk_energy.static_j = 100.0;
  const auto n = normalize_energy(half, base);
  EXPECT_NEAR(n.memory, 350.0 / 700.0, 1e-12);
  EXPECT_NEAR(n.disk, 300.0 / 400.0, 1e-12);
  EXPECT_NEAR(n.total, 650.0 / 1100.0, 1e-12);
}

TEST(MetricsTest, NormalizationRejectsZeroBaseline) {
  RunMetrics zero;
  EXPECT_THROW(normalize_energy(sample(), zero), CheckError);
}

}  // namespace
}  // namespace jpm::sim
