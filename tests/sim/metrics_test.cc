#include "jpm/sim/metrics.h"

#include <gtest/gtest.h>

#include "jpm/util/check.h"

namespace jpm::sim {
namespace {

RunMetrics sample() {
  RunMetrics m;
  m.duration_s = 100.0;
  m.mem_energy.static_j = 600.0;
  m.mem_energy.dynamic_j = 100.0;
  m.disk_energy.standby_base_j = 90.0;
  m.disk_energy.static_j = 200.0;
  m.disk_energy.transition_j = 77.5;
  m.disk_energy.dynamic_j = 32.5;
  m.cache_accesses = 1000;
  m.disk_accesses = 100;
  m.disk_busy_s = 5.0;
  m.total_latency_s = 2.0;
  m.long_latency_count = 4;
  return m;
}

TEST(MetricsTest, DerivedQuantities) {
  const auto m = sample();
  EXPECT_DOUBLE_EQ(m.total_j(), 1100.0);
  EXPECT_DOUBLE_EQ(m.mean_latency_s(), 0.002);
  EXPECT_DOUBLE_EQ(m.utilization(), 0.05);
  EXPECT_DOUBLE_EQ(m.long_latency_per_s(), 0.04);
  EXPECT_DOUBLE_EQ(m.hit_ratio(), 0.9);
}

TEST(MetricsTest, ZeroDenominatorsAreSafe) {
  RunMetrics m;
  EXPECT_EQ(m.mean_latency_s(), 0.0);
  EXPECT_EQ(m.utilization(), 0.0);
  EXPECT_EQ(m.long_latency_per_s(), 0.0);
  EXPECT_EQ(m.hit_ratio(), 0.0);
}

TEST(MetricsTest, NormalizationAgainstBaseline) {
  const auto base = sample();
  auto half = sample();
  half.mem_energy.static_j = 250.0;
  half.mem_energy.dynamic_j = 100.0;
  half.disk_energy.static_j = 100.0;
  const auto n = normalize_energy(half, base);
  EXPECT_NEAR(n.memory, 350.0 / 700.0, 1e-12);
  EXPECT_NEAR(n.disk, 300.0 / 400.0, 1e-12);
  EXPECT_NEAR(n.total, 650.0 / 1100.0, 1e-12);
}

TEST(MetricsTest, NormalizationRejectsZeroBaseline) {
  RunMetrics zero;
  EXPECT_THROW(normalize_energy(sample(), zero), CheckError);
}

}  // namespace
}  // namespace jpm::sim
