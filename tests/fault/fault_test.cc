#include "jpm/fault/fault.h"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <string>

namespace jpm::fault {
namespace {

FaultPlan disk_fault_plan(double p) {
  FaultPlan plan;
  plan.enabled = true;
  plan.p_spinup_fail = p;
  return plan;
}

TEST(FaultPlanTest, DefaultPlanIsInertAndValid) {
  FaultPlan plan;
  EXPECT_FALSE(plan.enabled);
  EXPECT_FALSE(plan.disk_faults_active());
  EXPECT_FALSE(plan.crashes_active());
  EXPECT_NO_THROW(validate(plan));
}

TEST(FaultPlanTest, ActivationRequiresTheEnabledFlag) {
  FaultPlan plan;
  plan.p_spinup_fail = 1.0;
  plan.server_mtbf_s = 100.0;
  EXPECT_FALSE(plan.disk_faults_active());
  EXPECT_FALSE(plan.crashes_active());
  plan.enabled = true;
  EXPECT_TRUE(plan.disk_faults_active());
  EXPECT_TRUE(plan.crashes_active());
}

TEST(FaultPlanValidateTest, RejectsOutOfRangeKnobs) {
  auto expect_rejected = [](FaultPlan plan, const char* knob) {
    try {
      validate(plan);
      FAIL() << "expected std::invalid_argument naming " << knob;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("FaultPlan"), std::string::npos);
      EXPECT_NE(std::string(e.what()).find(knob), std::string::npos);
    }
  };
  FaultPlan plan;
  plan.p_spinup_fail = -0.1;
  expect_rejected(plan, "p_spinup_fail");
  plan = FaultPlan{};
  plan.p_spinup_fail = 1.5;
  expect_rejected(plan, "p_spinup_fail");
  plan = FaultPlan{};
  plan.spinup_degrade_after = 0;
  expect_rejected(plan, "spinup_degrade_after");
  plan = FaultPlan{};
  plan.spinup_backoff_s = -1.0;
  expect_rejected(plan, "spinup_backoff_s");
  plan = FaultPlan{};
  plan.spinup_backoff_max_s = 0.5 * plan.spinup_backoff_s;
  expect_rejected(plan, "spinup_backoff_max_s");
  plan = FaultPlan{};
  plan.degraded_service_factor = 0.9;
  expect_rejected(plan, "degraded_service_factor");
  plan = FaultPlan{};
  plan.guard.backoff_factor = 0.5;
  expect_rejected(plan, "guard.backoff_factor");
  plan = FaultPlan{};
  plan.guard.relax_factor = 0.0;
  expect_rejected(plan, "guard.relax_factor");
  plan = FaultPlan{};
  plan.guard.max_scale = 0.5;
  expect_rejected(plan, "guard.max_scale");
  plan = FaultPlan{};
  plan.server_mtbf_s = -1.0;
  expect_rejected(plan, "server_mtbf_s");
  plan = FaultPlan{};
  plan.server_outage_s = 0.0;
  expect_rejected(plan, "server_outage_s");
  plan = FaultPlan{};
  plan.p_spinup_fail = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(validate(plan), std::invalid_argument);
}

TEST(StreamSeedTest, AdjacentSaltsDecorrelate) {
  const auto a = stream_seed(1, 0);
  const auto b = stream_seed(1, 1);
  const auto c = stream_seed(2, 0);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(b, c);
  // Deterministic: the same (base, salt) always maps to the same seed.
  EXPECT_EQ(stream_seed(1, 0), a);
}

TEST(SpinUpFaultStreamTest, InactiveDefaultStreamNeverFails) {
  SpinUpFaultStream stream;
  EXPECT_FALSE(stream.active());
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(stream.attempt_fails());
}

TEST(SpinUpFaultStreamTest, DisabledPlanYieldsInactiveStream) {
  FaultPlan plan = disk_fault_plan(1.0);
  plan.enabled = false;
  SpinUpFaultStream stream(plan, 0);
  EXPECT_FALSE(stream.active());
  EXPECT_FALSE(stream.attempt_fails());
}

TEST(SpinUpFaultStreamTest, SameSpindleReplaysIdentically) {
  const auto plan = disk_fault_plan(0.5);
  SpinUpFaultStream a(plan, 3);
  SpinUpFaultStream b(plan, 3);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.attempt_fails(), b.attempt_fails()) << "draw " << i;
  }
}

TEST(SpinUpFaultStreamTest, DifferentSpindlesDecorrelate) {
  const auto plan = disk_fault_plan(0.5);
  SpinUpFaultStream a(plan, 0);
  SpinUpFaultStream b(plan, 1);
  int differing = 0;
  for (int i = 0; i < 200; ++i) {
    differing += a.attempt_fails() != b.attempt_fails();
  }
  EXPECT_GT(differing, 0);
}

TEST(SpinUpFaultStreamTest, FailureRateTracksProbability) {
  const auto plan = disk_fault_plan(0.25);
  SpinUpFaultStream stream(plan, 0);
  int failures = 0;
  for (int i = 0; i < 10000; ++i) failures += stream.attempt_fails();
  EXPECT_NEAR(failures / 10000.0, 0.25, 0.02);
}

TEST(SpinUpFaultStreamTest, BackoffIsBoundedExponential) {
  FaultPlan plan = disk_fault_plan(1.0);
  plan.spinup_backoff_s = 1.0;
  plan.spinup_backoff_max_s = 30.0;
  SpinUpFaultStream stream(plan, 0);
  EXPECT_DOUBLE_EQ(stream.backoff_s(0), 0.0);
  EXPECT_DOUBLE_EQ(stream.backoff_s(1), 1.0);
  EXPECT_DOUBLE_EQ(stream.backoff_s(2), 2.0);
  EXPECT_DOUBLE_EQ(stream.backoff_s(3), 4.0);
  EXPECT_DOUBLE_EQ(stream.backoff_s(6), 30.0);   // 32 capped at 30
  EXPECT_DOUBLE_EQ(stream.backoff_s(40), 30.0);  // stays capped, no overflow
}

TEST(CrashWindowsTest, EmptyWhenDisabled) {
  FaultPlan plan;
  plan.server_mtbf_s = 100.0;  // knob set, but enabled == false
  EXPECT_TRUE(crash_windows(plan, 0, 1e6).empty());
  plan.enabled = true;
  plan.server_mtbf_s = 0.0;  // crash injection off
  EXPECT_TRUE(crash_windows(plan, 0, 1e6).empty());
}

TEST(CrashWindowsTest, WindowsAreSortedDisjointAndSized) {
  FaultPlan plan;
  plan.enabled = true;
  plan.server_mtbf_s = 500.0;
  plan.server_outage_s = 120.0;
  const auto windows = crash_windows(plan, 2, 20000.0);
  ASSERT_FALSE(windows.empty());
  double prev_end = 0.0;
  for (const auto& [start, end] : windows) {
    EXPECT_GE(start, prev_end);
    EXPECT_DOUBLE_EQ(end, start + plan.server_outage_s);
    EXPECT_LT(start, 20000.0);
    prev_end = end;
  }
}

TEST(CrashWindowsTest, DeterministicPerServerAndDecorrelatedAcross) {
  FaultPlan plan;
  plan.enabled = true;
  plan.server_mtbf_s = 500.0;
  const auto a1 = crash_windows(plan, 0, 20000.0);
  const auto a2 = crash_windows(plan, 0, 20000.0);
  EXPECT_EQ(a1, a2);
  const auto b = crash_windows(plan, 1, 20000.0);
  EXPECT_NE(a1, b);
}

TEST(ReliabilityMetricsTest, MergeSumsEveryCounter) {
  ReliabilityMetrics a;
  a.spinup_retries = 1;
  a.retry_delay_s = 2.0;
  a.degraded_spindles = 3;
  a.degraded_time_s = 4.0;
  a.rerouted_requests = 5;
  a.manager_fallbacks = 6;
  a.violated_periods = 7;
  a.guard_backoffs = 8;
  a.server_crashes = 9;
  a.failed_over_requests = 10;
  ReliabilityMetrics b = a;
  b.merge(a);
  EXPECT_EQ(b.spinup_retries, 2u);
  EXPECT_DOUBLE_EQ(b.retry_delay_s, 4.0);
  EXPECT_EQ(b.degraded_spindles, 6u);
  EXPECT_DOUBLE_EQ(b.degraded_time_s, 8.0);
  EXPECT_EQ(b.rerouted_requests, 10u);
  EXPECT_EQ(b.manager_fallbacks, 12u);
  EXPECT_EQ(b.violated_periods, 14u);
  EXPECT_EQ(b.guard_backoffs, 16u);
  EXPECT_EQ(b.server_crashes, 18u);
  EXPECT_EQ(b.failed_over_requests, 20u);
}

TEST(ReliabilityMetricsTest, AnyDetectsEachCounter) {
  EXPECT_FALSE(ReliabilityMetrics{}.any());
  ReliabilityMetrics m;
  m.spinup_retries = 1;
  EXPECT_TRUE(m.any());
  m = ReliabilityMetrics{};
  m.degraded_time_s = 0.5;
  EXPECT_TRUE(m.any());
  m = ReliabilityMetrics{};
  m.manager_fallbacks = 1;
  EXPECT_TRUE(m.any());
  m = ReliabilityMetrics{};
  m.failed_over_requests = 1;
  EXPECT_TRUE(m.any());
}

}  // namespace
}  // namespace jpm::fault
