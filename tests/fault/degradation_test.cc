// Integration tests for the fault-injection subsystem: disk spin-up
// failures and degradation, array failover, the manager's validation
// fallback and closed-loop guard, engine-level determinism, and cluster
// server crashes with request failover.
#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <stdexcept>
#include <string>

#include "jpm/cluster/cluster.h"
#include "jpm/core/joint_power_manager.h"
#include "jpm/disk/disk_array.h"
#include "jpm/disk/disk_queue.h"

namespace jpm {
namespace {

constexpr std::uint64_t kPage = 256 * kKiB;

fault::FaultPlan always_fail_plan(std::uint32_t degrade_after) {
  fault::FaultPlan plan;
  plan.enabled = true;
  plan.p_spinup_fail = 1.0;
  plan.spinup_degrade_after = degrade_after;
  return plan;
}

TEST(DiskDegradationTest, SingleDiskDegradesAndPinsAfterFailures) {
  const disk::DiskParams p;
  disk::FixedTimeout policy(10.0);
  disk::Disk d(p, &policy, 0.0, always_fail_plan(3), /*spindle_index=*/0,
               /*pin_when_degraded=*/true);

  d.read(1.0, 10, kPage);
  d.advance(100.0);
  ASSERT_EQ(d.state(), disk::DiskState::kStandby);
  ASSERT_EQ(d.shutdowns(), 1u);

  // Wake on demand: every attempt fails, so the disk retries with backoff
  // (1 s, 2 s, 4 s) until the third failure degrades it and the final
  // attempt is forced to succeed.
  const auto r = d.read(200.0, 5000, kPage);
  EXPECT_TRUE(r.triggered_spin_up);
  EXPECT_TRUE(d.degraded());
  EXPECT_EQ(d.reliability().spinup_retries, 3u);
  EXPECT_EQ(d.reliability().degraded_spindles, 1u);
  // Each failed attempt wastes a spin-up plus its backoff:
  // (10+1) + (10+2) + (10+4).
  EXPECT_NEAR(d.reliability().retry_delay_s, 37.0, 1e-9);
  // Service starts after the retries plus the final successful spin-up and
  // runs at the degraded service factor.
  EXPECT_NEAR(r.start_s, 200.0 + 37.0 + p.spin_up_s, 1e-9);
  const double svc = disk::ServiceModel(p).service_time_s(kPage, false);
  EXPECT_NEAR(r.finish_s - r.start_s, 1.5 * svc, 1e-12);

  // Pinned: the degraded single disk never spins down again.
  d.advance(10000.0);
  EXPECT_EQ(d.state(), disk::DiskState::kOn);
  EXPECT_EQ(d.shutdowns(), 1u);
  const auto r2 = d.read(20000.0, 99999, kPage);
  EXPECT_FALSE(r2.triggered_spin_up);
  EXPECT_NEAR(r2.latency_s, 1.5 * svc, 1e-12);

  d.finalize(30000.0);
  EXPECT_NEAR(d.reliability().degraded_time_s, 30000.0 - 200.0, 1e-9);
  // Energy books one real round trip plus one transition per failed attempt.
  EXPECT_NEAR(d.energy().transition_j, 4.0 * p.transition_j, 1e-9);
}

TEST(DiskDegradationTest, ArrayReroutesStripesOffDegradedSpindles) {
  disk::DiskArrayConfig cfg;
  cfg.disk_count = 4;
  cfg.stripe_bytes = kPage;  // one page per stripe: disk_of(page) == page % 4
  cfg.page_bytes = kPage;
  cfg.fault = always_fail_plan(2);
  disk::DiskArray array(
      cfg, [] { return std::make_unique<disk::FixedTimeout>(10.0); }, 0.0);

  array.advance(100.0);  // all four spindles idle out and spin down

  // The read that detects the degradation is still served by the home disk.
  const auto r1 = array.read(200.0, 0, kPage);
  EXPECT_TRUE(r1.triggered_spin_up);
  EXPECT_TRUE(array.disk(0).degraded());
  EXPECT_EQ(array.reliability().rerouted_requests, 0u);

  // Subsequent reads of the degraded stripe move to the next survivor in
  // ring order (which, at p = 1, then degrades on its own wake too).
  array.read(300.0, 0, kPage);
  EXPECT_TRUE(array.disk(1).degraded());
  EXPECT_EQ(array.reliability().rerouted_requests, 1u);
  EXPECT_EQ(array.requests_per_disk()[0], 1u);
  EXPECT_EQ(array.requests_per_disk()[1], 1u);

  // Degrade the remaining spindles.
  array.read(400.0, 2, kPage);
  array.read(500.0, 3, kPage);
  EXPECT_TRUE(array.disk(2).degraded());
  EXPECT_TRUE(array.disk(3).degraded());

  // With every spindle degraded the home disk serves anyway.
  const auto rel_before = array.reliability();
  array.read(600.0, 0, kPage);
  const auto rel = array.reliability();
  EXPECT_EQ(rel.rerouted_requests, rel_before.rerouted_requests);
  EXPECT_EQ(array.requests_per_disk()[0], 2u);

  EXPECT_EQ(rel.degraded_spindles, 4u);
  EXPECT_EQ(rel.spinup_retries, 8u);  // 2 failed attempts per spindle
  std::uint64_t total = 0;
  for (auto c : array.requests_per_disk()) total += c;
  EXPECT_EQ(total, 5u);  // every read accounted exactly once
}

core::JointConfig manager_config() {
  core::JointConfig c;
  c.page_bytes = 4 * kMiB;
  c.unit_bytes = 16 * kMiB;
  c.physical_bytes = 160 * kMiB;
  c.period_s = 600.0;
  return c;
}

TEST(ManagerRobustnessTest, InvalidStatsFallBackToConservativePosture) {
  const auto c = manager_config();
  core::JointPowerManager mgr(c);

  core::PeriodStats bad;
  bad.start_s = 0.0;
  bad.end_s = std::numeric_limits<double>::quiet_NaN();
  const auto& d1 = mgr.on_period_end(bad);
  EXPECT_EQ(d1.memory_units, mgr.initial_memory_units());
  EXPECT_DOUBLE_EQ(d1.timeout_s, mgr.initial_timeout_s());
  EXPECT_EQ(mgr.reliability().manager_fallbacks, 1u);

  core::PeriodStats negative_busy;
  negative_busy.start_s = 0.0;
  negative_busy.end_s = 600.0;
  negative_busy.disk_busy_s = -1.0;
  const auto& d2 = mgr.on_period_end(negative_busy);
  EXPECT_EQ(d2.memory_units, mgr.initial_memory_units());
  EXPECT_DOUBLE_EQ(d2.timeout_s, mgr.initial_timeout_s());
  EXPECT_EQ(mgr.reliability().manager_fallbacks, 2u);
}

TEST(ManagerGuardTest, ViolationBacksOffAndRecoversWithinThreePeriods) {
  const auto c = manager_config();
  fault::ManagerGuardConfig guard;
  guard.enabled = true;  // backoff 2, relax 2
  core::JointPowerManager mgr(c, guard);
  core::PeriodStatsCollector collector(c.unit_frames(), c.max_units(), 0.0);

  const auto violated_period = [&](double end_s) {
    for (int i = 0; i < 100; ++i) {
      collector.on_access(end_s - 600.0 + i * 6.0, 1 + (i % 4ull));
    }
    // 10 delayed of 100 accesses: ratio 0.1 >> the paper's D = 0.001.
    for (int i = 0; i < 10; ++i) {
      collector.on_disk_access(0.05, /*delayed=*/true);
    }
    return collector.harvest(end_s);
  };
  const auto clean_period = [&](double end_s) {
    for (int i = 0; i < 100; ++i) {
      collector.on_access(end_s - 600.0 + i * 6.0, 1 + (i % 4ull));
    }
    return collector.harvest(end_s);
  };

  const auto& d1 = mgr.on_period_end(violated_period(600.0));
  EXPECT_DOUBLE_EQ(mgr.guard_scale(), 2.0);
  EXPECT_EQ(d1.memory_units, c.max_units());
  EXPECT_GE(d1.timeout_s, 2.0 * c.disk.break_even_s());

  mgr.on_period_end(violated_period(1200.0));
  EXPECT_DOUBLE_EQ(mgr.guard_scale(), 4.0);

  // Recovery: clean periods relax the scale 4 -> 2 -> 1, i.e. the manager
  // is fully back to the open loop within three periods of the last
  // violation.
  mgr.on_period_end(clean_period(1800.0));
  EXPECT_DOUBLE_EQ(mgr.guard_scale(), 2.0);
  mgr.on_period_end(clean_period(2400.0));
  EXPECT_DOUBLE_EQ(mgr.guard_scale(), 1.0);
  mgr.on_period_end(clean_period(3000.0));
  EXPECT_DOUBLE_EQ(mgr.guard_scale(), 1.0);

  EXPECT_EQ(mgr.reliability().violated_periods, 2u);
  EXPECT_EQ(mgr.reliability().guard_backoffs, 2u);
  EXPECT_EQ(mgr.reliability().manager_fallbacks, 0u);
}

TEST(ManagerGuardTest, ScaleIsCappedAtMaxScale) {
  const auto c = manager_config();
  fault::ManagerGuardConfig guard;
  guard.enabled = true;
  guard.max_scale = 4.0;
  core::JointPowerManager mgr(c, guard);
  core::PeriodStatsCollector collector(c.unit_frames(), c.max_units(), 0.0);

  for (int period = 1; period <= 3; ++period) {
    for (int i = 0; i < 100; ++i) {
      collector.on_access(period * 600.0 - 600.0 + i * 6.0, 1 + (i % 4ull));
    }
    for (int i = 0; i < 10; ++i) collector.on_disk_access(0.05, true);
    mgr.on_period_end(collector.harvest(period * 600.0));
  }
  EXPECT_DOUBLE_EQ(mgr.guard_scale(), 4.0);
  EXPECT_EQ(mgr.reliability().violated_periods, 3u);
  // The third violation found the scale already at the cap: no escalation.
  EXPECT_EQ(mgr.reliability().guard_backoffs, 2u);
}

TEST(ManagerGuardTest, DisabledGuardKeepsOpenLoopCountersZero) {
  const auto c = manager_config();
  core::JointPowerManager mgr(c);  // no guard
  core::PeriodStatsCollector collector(c.unit_frames(), c.max_units(), 0.0);
  for (int i = 0; i < 100; ++i) collector.on_access(i * 6.0, 1 + (i % 4ull));
  for (int i = 0; i < 10; ++i) collector.on_disk_access(0.05, true);
  mgr.on_period_end(collector.harvest(600.0));
  EXPECT_DOUBLE_EQ(mgr.guard_scale(), 1.0);
  EXPECT_FALSE(mgr.reliability().any());
}

workload::SynthesizerConfig sparse_workload() {
  workload::SynthesizerConfig w;
  w.dataset_bytes = mib(64);
  w.byte_rate = 0.2e6;  // sparse requests: long idle gaps between misses
  w.popularity = 0.1;
  w.duration_s = 1200.0;
  w.page_bytes = 64 * kKiB;
  w.seed = 3;
  return w;
}

sim::EngineConfig spin_cycling_engine() {
  sim::EngineConfig e;
  e.joint.physical_bytes = gib(1);
  e.joint.unit_bytes = 16 * kMiB;
  e.joint.period_s = 300.0;
  // Short break-even (7.75 / 6.6 ~ 1.2 s) so the sparse workload's gaps
  // spin the disk down between requests and every miss wakes it.
  e.joint.disk.transition_j = 7.75;
  return e;
}

void expect_same_reliability(const fault::ReliabilityMetrics& a,
                             const fault::ReliabilityMetrics& b) {
  EXPECT_EQ(a.spinup_retries, b.spinup_retries);
  EXPECT_EQ(a.retry_delay_s, b.retry_delay_s);
  EXPECT_EQ(a.degraded_spindles, b.degraded_spindles);
  EXPECT_EQ(a.degraded_time_s, b.degraded_time_s);
  EXPECT_EQ(a.rerouted_requests, b.rerouted_requests);
  EXPECT_EQ(a.manager_fallbacks, b.manager_fallbacks);
  EXPECT_EQ(a.violated_periods, b.violated_periods);
  EXPECT_EQ(a.guard_backoffs, b.guard_backoffs);
  EXPECT_EQ(a.server_crashes, b.server_crashes);
  EXPECT_EQ(a.failed_over_requests, b.failed_over_requests);
}

TEST(EngineFaultTest, SingleDiskRunDegradesDeterministically) {
  auto e = spin_cycling_engine();
  e.fault = always_fail_plan(2);
  e.fault.seed = 9;
  const auto spec =
      sim::fixed_policy(sim::DiskPolicyKind::kTwoCompetitive, mib(16));

  const auto m1 = sim::run_simulation(sparse_workload(), spec, e);
  // The very first wake fails twice, degrades the lone spindle, and pins it.
  EXPECT_EQ(m1.reliability.degraded_spindles, 1u);
  EXPECT_EQ(m1.reliability.spinup_retries, 2u);
  EXPECT_GT(m1.reliability.retry_delay_s, 0.0);
  EXPECT_GT(m1.reliability.degraded_time_s, 0.0);
  EXPECT_EQ(m1.reliability.manager_fallbacks, 0u);

  const auto m2 = sim::run_simulation(sparse_workload(), spec, e);
  expect_same_reliability(m1.reliability, m2.reliability);
  EXPECT_EQ(m1.total_latency_s, m2.total_latency_s);
  EXPECT_EQ(m1.disk_energy.transition_j, m2.disk_energy.transition_j);
}

TEST(EngineFaultTest, ArrayRunReroutesAndStaysDeterministic) {
  auto e = spin_cycling_engine();
  e.disk_count = 4;
  e.stripe_bytes = 64 * kKiB;  // page-sized stripes spread pages across disks
  e.fault = always_fail_plan(2);
  const auto spec =
      sim::fixed_policy(sim::DiskPolicyKind::kTwoCompetitive, mib(16));

  const auto m1 = sim::run_simulation(sparse_workload(), spec, e);
  EXPECT_EQ(m1.reliability.degraded_spindles, 4u);
  EXPECT_EQ(m1.reliability.spinup_retries, 8u);
  EXPECT_GT(m1.reliability.rerouted_requests, 0u);

  const auto m2 = sim::run_simulation(sparse_workload(), spec, e);
  expect_same_reliability(m1.reliability, m2.reliability);
}

TEST(EngineValidationTest, RejectsBadConfigsWithDescriptiveErrors) {
  workload::SynthesizerConfig w;
  w.dataset_bytes = mib(64);
  w.byte_rate = 10e6;
  w.duration_s = 60.0;
  w.page_bytes = 64 * kKiB;
  const auto spec = sim::always_on_policy();
  sim::EngineConfig base;
  base.joint.physical_bytes = gib(1);
  base.joint.unit_bytes = 16 * kMiB;
  base.joint.period_s = 30.0;

  auto e = base;
  e.disk_count = 0;
  try {
    sim::run_simulation(w, spec, e);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& err) {
    EXPECT_NE(std::string(err.what()).find("disk_count"), std::string::npos);
  }

  e = base;
  e.joint.period_s = 0.0;
  EXPECT_THROW(sim::run_simulation(w, spec, e), std::invalid_argument);

  e = base;
  e.joint.util_limit = -0.1;
  EXPECT_THROW(sim::run_simulation(w, spec, e), std::invalid_argument);

  // An enabled fault plan is validated too.
  e = base;
  e.fault.enabled = true;
  e.fault.p_spinup_fail = 2.0;
  try {
    sim::run_simulation(w, spec, e);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& err) {
    EXPECT_NE(std::string(err.what()).find("FaultPlan"), std::string::npos);
  }

  // Corrupt disk parameters surface the break-even consequence.
  e = base;
  e.joint.disk.idle_w = 0.5;  // below standby_w = 0.9
  try {
    sim::run_simulation(w, spec, e);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& err) {
    EXPECT_NE(std::string(err.what()).find("idle_w"), std::string::npos);
    EXPECT_NE(std::string(err.what()).find("break_even"), std::string::npos);
  }
}

cluster::ClusterConfig crash_cluster(std::uint32_t servers) {
  cluster::ClusterConfig c;
  c.server_count = servers;
  c.distribution = cluster::DistributionPolicy::kPartitioned;
  c.engine.joint.physical_bytes = gib(1);
  c.engine.joint.unit_bytes = 16 * kMiB;
  c.engine.joint.period_s = 300.0;
  c.engine.prefill_cache = true;
  c.engine.warm_up_s = 300.0;
  c.partition_pages = 64;
  c.chassis_on_w = 100.0;
  return c;
}

workload::SynthesizerConfig cluster_workload() {
  workload::SynthesizerConfig w;
  w.dataset_bytes = mib(256);
  w.byte_rate = 20e6;
  w.popularity = 0.1;
  w.duration_s = 1200.0;
  w.page_bytes = 64 * kKiB;
  w.seed = 6;
  return w;
}

TEST(ClusterFaultTest, FaultRoutingMovesRequestsOffDownServers) {
  auto cfg = crash_cluster(2);
  const std::vector<workload::TraceEvent> trace = {
      {1.0, 0, true},    // stripe 0 -> server 0 (down at t = 1)
      {1.1, 1, false},   // continuation follows its request
      {2.0, 64, true},   // stripe 1 -> server 1
      {6.0, 0, true},    // stripe 0 again, after the outage
  };
  std::vector<cluster::OutageWindows> outages(2);
  outages[0] = {{0.5, 5.0}};
  const auto fr = cluster::route_requests_with_faults(trace, cfg, outages);
  EXPECT_EQ(fr.routes, (std::vector<std::uint32_t>{1, 1, 1, 0}));
  EXPECT_EQ(fr.failed_over_requests, 1u);

  // Every server down: the home server keeps the request.
  std::vector<cluster::OutageWindows> all_down(2);
  all_down[0] = {{0.0, 10.0}};
  all_down[1] = {{0.0, 10.0}};
  const auto stuck = cluster::route_requests_with_faults(trace, cfg, all_down);
  EXPECT_EQ(stuck.routes, (std::vector<std::uint32_t>{0, 0, 1, 0}));
  EXPECT_EQ(stuck.failed_over_requests, 0u);
}

TEST(ClusterFaultTest, CrashForcesChassisOffAndRestart) {
  // Idle server: powers off at 600, crashes (already off) at 1000, restarts
  // at 1120, idles off again at 1720.
  const auto idle =
      cluster::chassis_usage({}, 10000.0, 600.0, {{1000.0, 1120.0}});
  EXPECT_NEAR(idle.on_s, 1200.0, 1e-9);
  EXPECT_EQ(idle.power_cycles, 3u);

  // Busy server: on except during the outage; the crash is one cycle.
  std::vector<double> busy_times;
  for (int i = 0; i < 1000; ++i) busy_times.push_back(i * 10.0);
  const auto busy =
      cluster::chassis_usage(busy_times, 10000.0, 600.0, {{1000.0, 1120.0}});
  EXPECT_NEAR(busy.on_s, 10000.0 - 120.0, 1e-9);
  EXPECT_EQ(busy.power_cycles, 1u);
}

TEST(ClusterFaultTest, ServerCrashesFailOverAndConserveRequests) {
  auto cfg = crash_cluster(4);
  cfg.engine.fault.enabled = true;
  cfg.engine.fault.server_mtbf_s = 300.0;
  cfg.engine.fault.server_outage_s = 120.0;
  const auto spec =
      sim::fixed_policy(sim::DiskPolicyKind::kTwoCompetitive, mib(256));
  const auto w = cluster_workload();

  cluster::ClusterEngine faulted(cfg, w, spec);
  const auto m = faulted.run();
  EXPECT_GT(m.reliability.server_crashes, 0u);
  EXPECT_GT(m.reliability.failed_over_requests, 0u);

  // Failover re-routes requests but never drops them.
  auto clean_cfg = cfg;
  clean_cfg.engine.fault = fault::FaultPlan{};
  cluster::ClusterEngine clean(clean_cfg, w, spec);
  const auto base = clean.run();
  EXPECT_FALSE(base.reliability.any());
  EXPECT_EQ(m.total_requests(), base.total_requests());

  // Crash schedules and everything downstream replay bit-identically.
  cluster::ClusterEngine repeat(cfg, w, spec);
  const auto m2 = repeat.run();
  expect_same_reliability(m.reliability, m2.reliability);
  EXPECT_EQ(m.total_requests(), m2.total_requests());
  EXPECT_EQ(m.total_j(), m2.total_j());
}

}  // namespace
}  // namespace jpm
