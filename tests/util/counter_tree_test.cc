// CounterTree is the wide-fanout replacement for the Fenwick tree under the
// stack-distance tracker; every count it returns must be exact. The suite
// pins the algebra three ways: small-case unit tests against hand-checked
// values, a randomized differential against FenwickTree over >1M mixed
// operations (including reset_ones_prefix rebuilds, the compaction path),
// and a tracker-level differential against a from-scratch Bennett–Kruskal
// reference built on the Fenwick tree.
#include "jpm/util/counter_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "jpm/cache/stack_distance.h"
#include "jpm/util/fenwick.h"
#include "jpm/util/rng.h"

namespace jpm {
namespace {

TEST(CounterTreeTest, ResetOnesPrefixMatchesDefinition) {
  // Sizes straddling every structural boundary: sub-word, exact words,
  // word+1, one-c1-block edge (4096 slots = 64 words), past it (forces an
  // upper level), and deliberately non-multiples of 64.
  const std::size_t sizes[] = {1, 5, 63, 64, 65, 127, 128, 1000,
                               4095, 4096, 4097, 70000};
  for (std::size_t size : sizes) {
    const std::size_t ones_choices[] = {0, 1, size / 2, size - 1, size};
    for (std::size_t ones : ones_choices) {
      if (ones > size) continue;
      SCOPED_TRACE(testing::Message() << "size=" << size << " ones=" << ones);
      CounterTree t;
      t.reset_ones_prefix(size, ones);
      EXPECT_EQ(t.size(), size);
      EXPECT_EQ(t.total(), ones);
      // Sampled positions, always including the edges.
      for (std::size_t i = 0; i < size; i = i < 70 ? i + 1 : i * 2 + 1) {
        EXPECT_EQ(t.test(i), i < ones);
        EXPECT_EQ(t.prefix_ones(i), std::min<std::uint64_t>(i + 1, ones));
      }
      EXPECT_EQ(t.test(size - 1), size - 1 < ones);
      EXPECT_EQ(t.prefix_ones(size - 1), ones);
    }
  }
}

TEST(CounterTreeTest, SetAndRankAtWordEdges) {
  CounterTree t(256);
  // Bits on both sides of every u64 boundary plus the block edges.
  const std::size_t marks[] = {0, 1, 62, 63, 64, 65, 127, 128, 191, 255};
  for (std::size_t i : marks) t.set(i);
  EXPECT_EQ(t.total(), 10u);
  std::uint64_t expect = 0;
  std::size_t next = 0;
  for (std::size_t i = 0; i < 256; ++i) {
    if (next < 10 && marks[next] == i) {
      ++expect;
      ++next;
    }
    EXPECT_EQ(t.prefix_ones(i), expect) << "i=" << i;
  }
  // rank_and_clear returns the inclusive rank and unmarks.
  EXPECT_EQ(t.rank_and_clear(64), 5u);
  EXPECT_FALSE(t.test(64));
  EXPECT_EQ(t.total(), 9u);
  EXPECT_EQ(t.prefix_ones(64), 4u);
}

TEST(CounterTreeTest, RankMoveEqualsClearPlusSet) {
  Rng rng(11);
  const std::size_t size = 8192;
  CounterTree fused(size);
  CounterTree split(size);
  std::vector<std::size_t> marked;
  for (std::size_t i = 0; i < 512; ++i) {
    fused.set(i);
    split.set(i);
    marked.push_back(i);
  }
  std::size_t append = 512;
  while (append < size) {
    const std::size_t pick = rng.uniform_index(marked.size());
    const std::size_t from = marked[pick];
    const std::size_t to = append++;
    EXPECT_EQ(fused.rank_move(from, to), split.rank_and_clear(from));
    split.set(to);
    marked[pick] = to;
    EXPECT_EQ(fused.total(), split.total());
  }
  for (std::size_t i = 0; i < size; i += 7) {
    ASSERT_EQ(fused.prefix_ones(i), split.prefix_ones(i)) << "i=" << i;
  }
}

TEST(CounterTreeTest, ForEachSetVisitsMarkedAscending) {
  Rng rng(23);
  CounterTree t(10000);
  std::vector<std::size_t> expected;
  for (std::size_t i = 0; i < 10000; ++i) {
    if (rng.chance(0.3)) {
      t.set(i);
      expected.push_back(i);
    }
  }
  std::vector<std::size_t> seen;
  t.for_each_set([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, expected);
}

// The randomized differential: every public mutation and query against the
// Fenwick tree it replaced, in the 0/1-marks regime the tracker uses, with
// periodic reset_ones_prefix rebuilds mimicking compaction. >1M operations.
TEST(CounterTreeTest, MillionOpDifferentialAgainstFenwick) {
  Rng rng(20260808);
  std::size_t size = 32768;
  CounterTree ct(size);
  FenwickTree fen(size);
  std::vector<std::uint32_t> marked;  // positions currently set
  std::size_t append = 0;
  std::uint64_t ops = 0;

  auto rebuild = [&](std::size_t ones) {
    // Compaction: survivors renumbered to a ones-prefix in a fresh tree.
    ct.reset_ones_prefix(size, ones);
    fen.reset_ones_prefix(size, ones);
    marked.clear();
    for (std::size_t i = 0; i < ones; ++i) {
      marked.push_back(static_cast<std::uint32_t>(i));
    }
    append = ones;
  };

  while (ops < 1'200'000) {
    if (append == size) {
      rebuild(marked.size());
      ++ops;
      continue;
    }
    const double roll = rng.uniform();
    if (roll < 0.45 && !marked.empty()) {
      // rank_move: the tracker's re-access (to = append end).
      const std::size_t pick = rng.uniform_index(marked.size());
      const std::size_t from = marked[pick];
      const std::size_t to = append++;
      const std::int64_t expect = fen.prefix_sum(from);
      fen.add(from, -1);
      fen.add(to, +1);
      ASSERT_EQ(ct.rank_move(from, to), static_cast<std::uint64_t>(expect));
      marked[pick] = static_cast<std::uint32_t>(to);
    } else if (roll < 0.6 && !marked.empty()) {
      // rank_and_clear: a mark leaves (eviction-style).
      const std::size_t pick = rng.uniform_index(marked.size());
      const std::size_t at = marked[pick];
      const std::int64_t expect = fen.prefix_sum(at);
      fen.add(at, -1);
      ASSERT_EQ(ct.rank_and_clear(at), static_cast<std::uint64_t>(expect));
      marked[pick] = marked.back();
      marked.pop_back();
    } else if (roll < 0.75) {
      // set: a cold access takes the append slot.
      const std::size_t at = append++;
      ct.set(at);
      fen.add(at, +1);
      marked.push_back(static_cast<std::uint32_t>(at));
    } else if (roll < 0.95) {
      // prefix_ones at a random position (marked or not).
      const std::size_t at = rng.uniform_index(size);
      ASSERT_EQ(ct.prefix_ones(at),
                static_cast<std::uint64_t>(fen.prefix_sum(at)));
    } else {
      // Occasional mid-stream rebuild at a random survivor count.
      rebuild(rng.uniform_index(marked.size() + 1));
    }
    ++ops;
    ASSERT_EQ(ct.total(), static_cast<std::uint64_t>(fen.total()));
  }
  EXPECT_GE(ops, 1'200'000u);
}

// From-scratch Bennett–Kruskal on the Fenwick tree: one slot per access,
// marked slot per live page, depth = live - rank(prev) + 1. Grows without
// compacting (slots sized to the op count), so it shares no code or policy
// with the production tracker beyond the algorithm itself.
class FenwickReferenceTracker {
 public:
  explicit FenwickReferenceTracker(std::size_t max_ops) : fen_(max_ops) {}

  std::uint64_t access(std::uint64_t page) {
    const std::size_t slot = next_slot_++;
    auto [it, inserted] = last_slot_.try_emplace(page, slot);
    if (inserted) {
      fen_.add(slot, +1);
      return cache::kColdAccess;
    }
    const std::size_t prev = it->second;
    const std::uint64_t rank = static_cast<std::uint64_t>(fen_.prefix_sum(prev));
    fen_.add(prev, -1);
    fen_.add(slot, +1);
    it->second = slot;
    return static_cast<std::uint64_t>(last_slot_.size()) - rank + 1;
  }

 private:
  FenwickTree fen_;
  std::unordered_map<std::uint64_t, std::size_t> last_slot_;
  std::size_t next_slot_ = 0;
};

// Tracker-level differential: >1M accesses with a hot set (high slot churn —
// hundreds of internal compactions at the tracker's 1024-slot floor ramping
// up), a mid tier, and an ever-growing cold tail, so compact() runs at many
// different live counts. Every depth must match the reference exactly.
TEST(CounterTreeTest, TrackerMillionOpDifferentialAgainstFenwickReference) {
  constexpr std::size_t kOps = 1'100'000;
  cache::StackDistanceTracker fast;
  FenwickReferenceTracker ref(kOps);
  Rng rng(424242);
  std::uint64_t next_cold = 1 << 20;
  for (std::size_t i = 0; i < kOps; ++i) {
    std::uint64_t page;
    const double roll = rng.uniform();
    if (roll < 0.55) {
      page = rng.uniform_index(64);  // hot: immediate shallow re-access
    } else if (roll < 0.9) {
      page = rng.uniform_index(20000);  // mid: deep re-access
    } else {
      page = next_cold++;  // cold: live set grows between compactions
    }
    ASSERT_EQ(fast.access(page), ref.access(page)) << "op " << i;
  }
  EXPECT_EQ(fast.total_accesses(), kOps);
}

}  // namespace
}  // namespace jpm
