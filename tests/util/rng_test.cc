#include "jpm/util/rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace jpm {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIndexInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) ASSERT_LT(rng.uniform_index(17), 17u);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.5);
  EXPECT_NEAR(sum / n, 3.5, 0.05);
}

TEST(RngTest, NormalMeanAndSpread) {
  Rng rng(17);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(2.0, 1.5);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.02);
  EXPECT_NEAR(std::sqrt(var), 1.5, 0.02);
}

TEST(RngTest, ChanceFrequencyMatchesProbability) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.25);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += parent.next() == child.next();
  EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace jpm
