#include "jpm/util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace jpm::util {
namespace {

// Scoped JPM_THREADS override that restores the previous value on exit.
class ScopedThreadsEnv {
 public:
  explicit ScopedThreadsEnv(const char* value) {
    const char* old = std::getenv("JPM_THREADS");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value) {
      ::setenv("JPM_THREADS", value, 1);
    } else {
      ::unsetenv("JPM_THREADS");
    }
  }
  ~ScopedThreadsEnv() {
    if (had_old_) {
      ::setenv("JPM_THREADS", old_.c_str(), 1);
    } else {
      ::unsetenv("JPM_THREADS");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

TEST(ParallelForTest, EmptyRangeRunsNothing) {
  std::atomic<int> calls{0};
  parallel_for(0, 8, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, SingleWorkerRunsInlineInOrder) {
  std::vector<std::size_t> order;
  const auto caller = std::this_thread::get_id();
  parallel_for(5, 1, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);  // no synchronization needed: inline path
  });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, SingleTaskRunsInlineEvenWithManyWorkers) {
  const auto caller = std::this_thread::get_id();
  int calls = 0;
  parallel_for(1, 8, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(kN, 8, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForTest, EachTaskWritesItsOwnSlot) {
  constexpr std::size_t kN = 257;
  std::vector<std::size_t> out(kN, 0);
  parallel_for(kN, 7, [&](std::size_t i) { out[i] = i * i; });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelForTest, PropagatesExceptionFromWorker) {
  EXPECT_THROW(
      parallel_for(100, 4,
                   [](std::size_t i) {
                     if (i == 37) throw std::runtime_error("task 37 failed");
                   }),
      std::runtime_error);
}

TEST(ParallelForTest, PropagatesExceptionFromInlinePath) {
  EXPECT_THROW(parallel_for(3, 1,
                            [](std::size_t) {
                              throw std::runtime_error("inline failure");
                            }),
               std::runtime_error);
}

TEST(ParallelForTest, SkipsRemainingTasksAfterFailure) {
  // After a worker records a failure the other stripes stop picking up new
  // tasks; with one element per stripe nothing else can even start.
  std::atomic<int> started{0};
  try {
    parallel_for(64, 2, [&](std::size_t i) {
      ++started;
      if (i == 0) throw std::runtime_error("fail fast");
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error&) {
  }
  EXPECT_LE(started.load(), 64);
  EXPECT_GE(started.load(), 1);
}

TEST(DefaultThreadCountTest, HonorsEnvVariable) {
  ScopedThreadsEnv env("3");
  EXPECT_EQ(default_thread_count(), 3u);
}

TEST(DefaultThreadCountTest, OneMeansSerial) {
  ScopedThreadsEnv env("1");
  EXPECT_EQ(default_thread_count(), 1u);
}

TEST(DefaultThreadCountTest, IgnoresInvalidValues) {
  for (const char* bad : {"0", "-2", "bogus", ""}) {
    ScopedThreadsEnv env(bad);
    EXPECT_GE(default_thread_count(), 1u) << bad;
  }
}

TEST(DefaultThreadCountTest, UnsetFallsBackToHardware) {
  ScopedThreadsEnv env(nullptr);
  EXPECT_GE(default_thread_count(), 1u);
}

}  // namespace
}  // namespace jpm::util
