#include "jpm/util/flat_map.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "jpm/util/rng.h"

namespace jpm::util {
namespace {

TEST(FlatMapTest, StartsEmpty) {
  FlatMap<int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.capacity(), 0u);  // no allocation until first insert
  EXPECT_EQ(m.find(42), nullptr);
  EXPECT_FALSE(m.contains(42));
  EXPECT_FALSE(m.erase(42));
}

TEST(FlatMapTest, InsertFindOverwrite) {
  FlatMap<int> m;
  EXPECT_TRUE(m.insert(7, 70));
  EXPECT_TRUE(m.insert(8, 80));
  EXPECT_FALSE(m.insert(7, 71));  // overwrite, not a new key
  EXPECT_EQ(m.size(), 2u);
  ASSERT_NE(m.find(7), nullptr);
  EXPECT_EQ(*m.find(7), 71);
  ASSERT_NE(m.find(8), nullptr);
  EXPECT_EQ(*m.find(8), 80);
  EXPECT_EQ(m.find(9), nullptr);
}

TEST(FlatMapTest, FindOrInsertDefaultConstructsOnce) {
  FlatMap<int> m;
  bool inserted = false;
  int* v = m.find_or_insert(3, &inserted);
  ASSERT_NE(v, nullptr);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(*v, 0);
  *v = 33;
  int* again = m.find_or_insert(3, &inserted);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(again, v);
  EXPECT_EQ(*again, 33);
}

TEST(FlatMapTest, EraseRemovesAndReportsAbsence) {
  FlatMap<int> m;
  m.insert(1, 10);
  m.insert(2, 20);
  EXPECT_TRUE(m.erase(1));
  EXPECT_FALSE(m.erase(1));
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.find(1), nullptr);
  ASSERT_NE(m.find(2), nullptr);
  EXPECT_EQ(*m.find(2), 20);
}

TEST(FlatMapTest, SentinelKeyFullyUsable) {
  // ~0 is the internal empty-slot marker; the map must still serve it.
  constexpr std::uint64_t k = FlatMap<int>::kEmptyKey;
  FlatMap<int> m;
  EXPECT_EQ(m.find(k), nullptr);
  EXPECT_TRUE(m.insert(k, 99));
  EXPECT_EQ(m.size(), 1u);
  ASSERT_NE(m.find(k), nullptr);
  EXPECT_EQ(*m.find(k), 99);
  int visited = 0;
  m.for_each([&](std::uint64_t key, int value) {
    EXPECT_EQ(key, k);
    EXPECT_EQ(value, 99);
    ++visited;
  });
  EXPECT_EQ(visited, 1);
  EXPECT_TRUE(m.erase(k));
  EXPECT_FALSE(m.erase(k));
  EXPECT_TRUE(m.empty());
}

TEST(FlatMapTest, ReserveGivesPointerStability) {
  FlatMap<std::uint64_t> m;
  m.reserve(1000);
  const std::size_t cap = m.capacity();
  EXPECT_GE(cap, 1000u);
  std::vector<std::uint64_t*> ptrs;
  for (std::uint64_t k = 0; k < 1000; ++k) {
    ptrs.push_back(m.find_or_insert(k));
    *ptrs.back() = k * 3;
  }
  EXPECT_EQ(m.capacity(), cap);  // no rehash happened
  for (std::uint64_t k = 0; k < 1000; ++k) {
    EXPECT_EQ(m.find(k), ptrs[k]);
    EXPECT_EQ(*ptrs[k], k * 3);
  }
}

TEST(FlatMapTest, GrowthRehashPreservesEntries) {
  FlatMap<std::uint64_t> m;
  const std::uint64_t n = 10000;  // forces many rehashes from min capacity
  for (std::uint64_t k = 0; k < n; ++k) m.insert(k, ~k);
  EXPECT_EQ(m.size(), n);
  EXPECT_EQ((m.capacity() & (m.capacity() - 1)), 0u);  // power of two
  for (std::uint64_t k = 0; k < n; ++k) {
    ASSERT_NE(m.find(k), nullptr) << "key " << k;
    EXPECT_EQ(*m.find(k), ~k);
  }
}

TEST(FlatMapTest, ClearEmptiesButKeepsCapacity) {
  FlatMap<int> m;
  for (std::uint64_t k = 0; k < 100; ++k) m.insert(k, 1);
  m.insert(FlatMap<int>::kEmptyKey, 2);
  const std::size_t cap = m.capacity();
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.capacity(), cap);
  EXPECT_EQ(m.find(5), nullptr);
  EXPECT_EQ(m.find(FlatMap<int>::kEmptyKey), nullptr);
  m.insert(5, 50);  // usable after clear
  EXPECT_EQ(*m.find(5), 50);
}

TEST(FlatMapTest, ForEachVisitsEveryEntryOnce) {
  FlatMap<std::uint64_t> m;
  for (std::uint64_t k = 0; k < 500; ++k) m.insert(k, k + 1);
  std::vector<bool> seen(500, false);
  m.for_each([&](std::uint64_t key, std::uint64_t value) {
    ASSERT_LT(key, 500u);
    EXPECT_EQ(value, key + 1);
    EXPECT_FALSE(seen[key]);
    seen[key] = true;
  });
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(FlatMapTest, MutableForEachWritesThrough) {
  FlatMap<int> m;
  for (std::uint64_t k = 0; k < 32; ++k) m.insert(k, 0);
  m.for_each([](std::uint64_t, int& v) { v = 9; });
  for (std::uint64_t k = 0; k < 32; ++k) EXPECT_EQ(*m.find(k), 9);
}

// Finds `count` keys whose home slot in a table of `capacity` equals
// `target`, replicating the map's Fibonacci hash. Used to build probe
// clusters deterministically.
std::vector<std::uint64_t> colliding_keys(std::size_t capacity,
                                          std::size_t target,
                                          std::size_t count) {
  unsigned shift = 64;
  for (std::size_t c = capacity; c > 1; c >>= 1) --shift;
  std::vector<std::uint64_t> keys;
  for (std::uint64_t k = 1; keys.size() < count; ++k) {
    if (((k * 0x9e3779b97f4a7c15ull) >> shift) == target) keys.push_back(k);
  }
  return keys;
}

// Regression for backward-shift deletion: erasing from the middle of a
// probe cluster must keep every displaced successor reachable.
TEST(FlatMapTest, EraseInsideProbeClusterKeepsSuccessorsFindable) {
  const auto keys = colliding_keys(16, 3, 8);  // 8 keys, all home slot 3
  for (std::size_t victim = 0; victim < keys.size(); ++victim) {
    FlatMap<std::uint64_t> m;
    m.reserve(8);
    ASSERT_EQ(m.capacity(), 16u);
    for (auto k : keys) m.insert(k, k * 2);
    ASSERT_TRUE(m.erase(keys[victim]));
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (i == victim) {
        EXPECT_EQ(m.find(keys[i]), nullptr);
      } else {
        ASSERT_NE(m.find(keys[i]), nullptr) << "victim " << victim;
        EXPECT_EQ(*m.find(keys[i]), keys[i] * 2);
      }
    }
  }
}

// Same, with the cluster wrapping around the end of the slot array — the
// cyclic movability test in erase() is only exercised by wrapped clusters.
TEST(FlatMapTest, EraseInWrappedProbeClusterKeepsSuccessorsFindable) {
  const auto keys = colliding_keys(16, 15, 6);  // cluster wraps 15 -> 0 -> ...
  for (std::size_t victim = 0; victim < keys.size(); ++victim) {
    FlatMap<std::uint64_t> m;
    m.reserve(8);
    ASSERT_EQ(m.capacity(), 16u);
    for (auto k : keys) m.insert(k, k + 7);
    ASSERT_TRUE(m.erase(keys[victim]));
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (i == victim) continue;
      ASSERT_NE(m.find(keys[i]), nullptr) << "victim " << victim;
      EXPECT_EQ(*m.find(keys[i]), keys[i] + 7);
    }
  }
}

TEST(FlatMapTest, RandomizedDifferentialAgainstUnorderedMap) {
  Rng rng(0xF1A7);
  FlatMap<std::uint64_t> flat;
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  // Small key universe keeps hit/erase rates high; the sentinel key is in
  // the universe so it goes through the out-of-line path too.
  auto pick_key = [&]() -> std::uint64_t {
    const auto r = rng.uniform_index(1024);
    return r == 0 ? FlatMap<std::uint64_t>::kEmptyKey : r;
  };
  for (int op = 0; op < 1'000'000; ++op) {
    const std::uint64_t key = pick_key();
    switch (rng.uniform_index(4)) {
      case 0: {  // insert/overwrite
        const std::uint64_t value = rng.next();
        const bool added = flat.insert(key, value);
        const bool ref_added = ref.insert_or_assign(key, value).second;
        ASSERT_EQ(added, ref_added) << "op " << op;
        break;
      }
      case 1: {  // find_or_insert and mutate through the pointer
        bool inserted = false;
        std::uint64_t* v = flat.find_or_insert(key, &inserted);
        auto [it, ref_inserted] = ref.try_emplace(key, 0);
        ASSERT_EQ(inserted, ref_inserted) << "op " << op;
        ASSERT_EQ(*v, it->second) << "op " << op;
        *v += 1;
        it->second += 1;
        break;
      }
      case 2: {  // erase
        ASSERT_EQ(flat.erase(key), ref.erase(key) > 0) << "op " << op;
        break;
      }
      default: {  // lookup
        const std::uint64_t* v = flat.find(key);
        auto it = ref.find(key);
        if (it == ref.end()) {
          ASSERT_EQ(v, nullptr) << "op " << op;
        } else {
          ASSERT_NE(v, nullptr) << "op " << op;
          ASSERT_EQ(*v, it->second) << "op " << op;
        }
        break;
      }
    }
    ASSERT_EQ(flat.size(), ref.size()) << "op " << op;
  }
  // Full-content sweep at the end: every surviving entry matches.
  std::size_t visited = 0;
  flat.for_each([&](std::uint64_t key, std::uint64_t value) {
    auto it = ref.find(key);
    ASSERT_NE(it, ref.end());
    EXPECT_EQ(value, it->second);
    ++visited;
  });
  EXPECT_EQ(visited, ref.size());
}

}  // namespace
}  // namespace jpm::util
