// Bump arena + allocator adapter (util/arena.h): alignment, block growth,
// release semantics, and the null-arena heap fallback the hot-path
// containers rely on.
#include "jpm/util/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <list>
#include <vector>

namespace jpm::util {
namespace {

TEST(ArenaTest, AllocationsAreAligned) {
  Arena arena(128);
  for (std::size_t align : {1ul, 2ul, 4ul, 8ul, 16ul, 64ul}) {
    void* p = arena.allocate(3, align);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
        << "align " << align;
  }
}

TEST(ArenaTest, BumpsWithinOneBlockForSmallAllocations) {
  Arena arena(1024);
  auto* a = static_cast<std::byte*>(arena.allocate(16, 8));
  auto* b = static_cast<std::byte*>(arena.allocate(16, 8));
  EXPECT_EQ(b, a + 16);  // contiguous: the layout the prefetcher wants
  EXPECT_EQ(arena.block_count(), 1u);
  EXPECT_EQ(arena.allocated_bytes(), 32u);
}

TEST(ArenaTest, GrowsWhenBlockExhausted) {
  Arena arena(64);
  arena.allocate(48, 8);
  EXPECT_EQ(arena.block_count(), 1u);
  arena.allocate(48, 8);  // does not fit the remainder
  EXPECT_EQ(arena.block_count(), 2u);
  EXPECT_EQ(arena.allocated_bytes(), 96u);
}

TEST(ArenaTest, OversizedRequestGetsItsOwnBlock) {
  Arena arena(64);
  void* p = arena.allocate(4096, 8);
  EXPECT_NE(p, nullptr);
  EXPECT_EQ(arena.allocated_bytes(), 4096u);
  // The next small allocation must still work.
  void* q = arena.allocate(8, 8);
  EXPECT_NE(q, nullptr);
}

TEST(ArenaTest, ReleaseFreesEverything) {
  Arena arena(64);
  arena.allocate(1000, 8);
  arena.allocate(8, 8);
  EXPECT_GT(arena.block_count(), 0u);
  arena.release();
  EXPECT_EQ(arena.block_count(), 0u);
  EXPECT_EQ(arena.allocated_bytes(), 0u);
  // The arena is reusable after release.
  EXPECT_NE(arena.allocate(32, 8), nullptr);
}

TEST(ArenaAllocatorTest, NullArenaFallsBackToHeap) {
  ArenaAllocator<int> alloc;  // default: no arena
  EXPECT_EQ(alloc.arena(), nullptr);
  int* p = alloc.allocate(4);
  ASSERT_NE(p, nullptr);
  p[0] = 7;
  alloc.deallocate(p, 4);  // must actually free (ASan would catch a leak)
}

TEST(ArenaAllocatorTest, VectorGrowsThroughArena) {
  Arena arena(256);
  std::vector<std::uint64_t, ArenaAllocator<std::uint64_t>> v{
      ArenaAllocator<std::uint64_t>(&arena)};
  for (std::uint64_t i = 0; i < 1000; ++i) v.push_back(i);
  for (std::uint64_t i = 0; i < 1000; ++i) EXPECT_EQ(v[i], i);
  EXPECT_GT(arena.allocated_bytes(), 1000u * sizeof(std::uint64_t) - 1);
}

TEST(ArenaAllocatorTest, NodeContainerStaysValidAcrossGrowth) {
  // std::list allocates one node at a time — the shape LruCache's node
  // storage takes. Nodes must stay stable while the arena grows blocks.
  Arena arena(128);
  std::list<int, ArenaAllocator<int>> l{ArenaAllocator<int>(&arena)};
  std::vector<const int*> addrs;
  for (int i = 0; i < 500; ++i) {
    l.push_back(i);
    addrs.push_back(&l.back());
  }
  int expected = 0;
  for (const int& x : l) EXPECT_EQ(x, expected++);
  for (int i = 0; i < 500; ++i) EXPECT_EQ(*addrs[i], i);
  EXPECT_GT(arena.block_count(), 1u);
}

TEST(ArenaAllocatorTest, RebindSharesTheArena) {
  Arena arena;
  ArenaAllocator<int> a(&arena);
  ArenaAllocator<double> b(a);  // converting ctor, as containers rebind
  EXPECT_EQ(b.arena(), &arena);
  EXPECT_TRUE((a == ArenaAllocator<int>(b)));
  EXPECT_TRUE((a != ArenaAllocator<int>{}));
}

}  // namespace
}  // namespace jpm::util
