#include "jpm/util/table.h"

#include <gtest/gtest.h>

#include "jpm/util/check.h"

namespace jpm {
namespace {

TEST(TableTest, RendersHeadersAndRows) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(1.5, 1);
  t.row().cell("beta").cell(std::uint64_t{42});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("1.5"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TableTest, PercentFormatting) {
  Table t({"x"});
  t.row().cell_percent(0.427, 1);
  EXPECT_NE(t.to_string().find("42.7%"), std::string::npos);
}

TEST(TableTest, ColumnWidthsFitLongestCell) {
  Table t({"h"});
  t.row().cell("short");
  t.row().cell("a-much-longer-cell");
  const std::string s = t.to_string();
  // Every rendered row has the same width.
  std::size_t first_len = s.find('\n');
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t eol = s.find('\n', pos);
    ASSERT_NE(eol, std::string::npos);
    EXPECT_EQ(eol - pos, first_len);
    pos = eol + 1;
  }
}

TEST(TableTest, RejectsCellBeforeRow) {
  Table t({"a"});
  EXPECT_THROW(t.cell("x"), CheckError);
}

TEST(TableTest, RejectsTooManyCells) {
  Table t({"a"});
  t.row().cell("x");
  EXPECT_THROW(t.cell("y"), CheckError);
}

TEST(TableTest, RejectsEmptyHeaders) {
  EXPECT_THROW(Table({}), CheckError);
}

}  // namespace
}  // namespace jpm
