#include "jpm/util/fenwick.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "jpm/util/rng.h"

namespace jpm {
namespace {

TEST(FenwickTest, EmptyTreeHasZeroTotal) {
  FenwickTree tree(8);
  EXPECT_EQ(tree.total(), 0);
  EXPECT_EQ(tree.size(), 8u);
}

TEST(FenwickTest, SingleAddReflectsInPrefixSums) {
  FenwickTree tree(10);
  tree.add(3, 5);
  EXPECT_EQ(tree.prefix_sum(2), 0);
  EXPECT_EQ(tree.prefix_sum(3), 5);
  EXPECT_EQ(tree.prefix_sum(9), 5);
}

TEST(FenwickTest, RangeSumMatchesDifferences) {
  FenwickTree tree(16);
  for (std::size_t i = 0; i < 16; ++i) tree.add(i, static_cast<int>(i));
  EXPECT_EQ(tree.range_sum(4, 7), 4 + 5 + 6 + 7);
  EXPECT_EQ(tree.range_sum(0, 15), tree.total());
  EXPECT_EQ(tree.range_sum(9, 3), 0);  // inverted range
}

TEST(FenwickTest, NegativeDeltasSupported) {
  FenwickTree tree(4);
  tree.add(1, 10);
  tree.add(1, -4);
  EXPECT_EQ(tree.prefix_sum(1), 6);
}

TEST(FenwickTest, ResetClearsContents) {
  FenwickTree tree(4);
  tree.add(0, 7);
  tree.reset(6);
  EXPECT_EQ(tree.size(), 6u);
  EXPECT_EQ(tree.total(), 0);
}

TEST(FenwickTest, ResetOnesPrefixMatchesExplicitAdds) {
  // The stack-distance compactor rebuilds with this; it must equal `ones`
  // consecutive add(+1) calls for any size, including edges and
  // non-powers-of-two.
  for (std::size_t size : {1u, 2u, 7u, 64u, 257u, 1000u}) {
    for (std::size_t ones : {std::size_t{0}, size / 2, size}) {
      FenwickTree fast;
      fast.reset_ones_prefix(size, ones);
      FenwickTree slow(size);
      for (std::size_t i = 0; i < ones; ++i) slow.add(i, +1);
      ASSERT_EQ(fast.size(), size);
      for (std::size_t q = 0; q < size; ++q) {
        ASSERT_EQ(fast.prefix_sum(q), slow.prefix_sum(q))
            << "size " << size << " ones " << ones << " q " << q;
      }
    }
  }
}

TEST(FenwickTest, ResetOnesPrefixSupportsFurtherUpdates) {
  FenwickTree tree;
  tree.reset_ones_prefix(100, 40);
  tree.add(10, -1);  // unmark
  tree.add(90, +1);  // mark past the prefix
  EXPECT_EQ(tree.prefix_sum(39), 39);
  EXPECT_EQ(tree.prefix_sum(99), 40);
  EXPECT_EQ(tree.total(), 40);
}

TEST(FenwickTest, RandomizedAgainstNaive) {
  Rng rng(42);
  const std::size_t n = 257;  // non-power-of-two
  FenwickTree tree(n);
  std::vector<std::int64_t> naive(n, 0);
  for (int iter = 0; iter < 5000; ++iter) {
    const auto i = static_cast<std::size_t>(rng.uniform_index(n));
    const auto delta = static_cast<std::int64_t>(rng.uniform_index(21)) - 10;
    tree.add(i, delta);
    naive[i] += delta;
    const auto q = static_cast<std::size_t>(rng.uniform_index(n));
    const auto expected =
        std::accumulate(naive.begin(), naive.begin() + static_cast<long>(q) + 1,
                        std::int64_t{0});
    ASSERT_EQ(tree.prefix_sum(q), expected) << "at iter " << iter;
  }
}

}  // namespace
}  // namespace jpm
