#include "jpm/util/stats.h"

#include <gtest/gtest.h>

#include "jpm/util/check.h"

namespace jpm {
namespace {

TEST(StreamingStatsTest, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(StreamingStatsTest, BasicMoments) {
  StreamingStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StreamingStatsTest, MergeEqualsCombinedStream) {
  StreamingStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.37 * i - 3.0;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StreamingStatsTest, MergeWithEmptyIsIdentity) {
  StreamingStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
}

TEST(StreamingStatsTest, ResetClears) {
  StreamingStats s;
  s.add(5.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
}

TEST(HistogramTest, BinningAndTotals) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(1.5);
  h.add(9.99);
  h.add(-3.0);   // clamps to first bin
  h.add(100.0);  // clamps to last bin
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(9), 2u);
}

TEST(HistogramTest, QuantileInterpolates) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.0);
}

TEST(HistogramTest, RejectsDegenerateConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), CheckError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), CheckError);
}

TEST(PercentileTest, ExactValues) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
}

TEST(PercentileTest, RejectsEmpty) {
  EXPECT_THROW(percentile({}, 50), CheckError);
}

TEST(BucketHistogramTest, EmptyIsAllZero) {
  const BucketHistogram h({1.0, 2.0, 4.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.overflow_count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.p50(), 0.0);
  EXPECT_EQ(h.p99(), 0.0);
}

TEST(BucketHistogramTest, SingleSample) {
  BucketHistogram h({1.0, 2.0, 4.0});
  h.add(1.5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.count_in_bucket(0), 0u);
  EXPECT_EQ(h.count_in_bucket(1), 1u);
  EXPECT_EQ(h.overflow_count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 1.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.5);
  EXPECT_DOUBLE_EQ(h.max(), 1.5);
  EXPECT_DOUBLE_EQ(h.mean(), 1.5);
  // Every quantile interpolates inside the single occupied bucket (1, 2].
  EXPECT_GT(h.p50(), 1.0);
  EXPECT_LE(h.p99(), 2.0);
}

TEST(BucketHistogramTest, BoundaryLandsInLowerBucket) {
  BucketHistogram h({1.0, 2.0});
  h.add(1.0);  // x <= bound: the 1.0 bound owns this sample
  EXPECT_EQ(h.count_in_bucket(0), 1u);
  EXPECT_EQ(h.count_in_bucket(1), 0u);
}

TEST(BucketHistogramTest, OverflowBucketAndQuantile) {
  BucketHistogram h({1.0, 2.0});
  h.add(0.5);
  h.add(100.0);
  h.add(200.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.count_in_bucket(0), 1u);
  EXPECT_EQ(h.overflow_count(), 2u);
  // Quantiles landing in the overflow bucket report the largest sample.
  EXPECT_DOUBLE_EQ(h.p99(), 200.0);
  EXPECT_DOUBLE_EQ(h.max(), 200.0);
}

TEST(BucketHistogramTest, MergeMatchesCombinedStream) {
  const std::vector<double> bounds{0.5, 1.0, 2.0, 4.0};
  BucketHistogram a(bounds), b(bounds), all(bounds);
  for (int i = 0; i < 40; ++i) {
    const double x = 0.11 * i;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.overflow_count(), all.overflow_count());
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    EXPECT_EQ(a.count_in_bucket(i), all.count_in_bucket(i));
  }
  EXPECT_DOUBLE_EQ(a.sum(), all.sum());
  EXPECT_DOUBLE_EQ(a.p95(), all.p95());
}

TEST(BucketHistogramTest, MergeRejectsMismatchedBounds) {
  BucketHistogram a({1.0, 2.0});
  const BucketHistogram b({1.0, 3.0});
  EXPECT_THROW(a.merge(b), CheckError);
}

TEST(BucketHistogramTest, RejectsBadBounds) {
  EXPECT_THROW(BucketHistogram({}), CheckError);
  EXPECT_THROW(BucketHistogram({1.0, 1.0}), CheckError);
  EXPECT_THROW(BucketHistogram({2.0, 1.0}), CheckError);
}

TEST(LogBucketBoundsTest, ClosedFormAndCoverage) {
  const auto bounds = log_bucket_bounds(1e-3, 1e4, 4);
  ASSERT_FALSE(bounds.empty());
  EXPECT_DOUBLE_EQ(bounds.front(), 1e-3);
  EXPECT_GE(bounds.back(), 1e4);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_GT(bounds[i], bounds[i - 1]);
  }
  // Closed-form generation: two independent calls are bit-identical.
  EXPECT_EQ(bounds, log_bucket_bounds(1e-3, 1e4, 4));
  EXPECT_THROW(log_bucket_bounds(0.0, 1.0, 4), CheckError);
  EXPECT_THROW(log_bucket_bounds(1.0, 1.0, 4), CheckError);
}

}  // namespace
}  // namespace jpm
