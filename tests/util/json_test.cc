#include "jpm/util/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "jpm/util/check.h"

namespace jpm::util::json {
namespace {

TEST(JsonWriterTest, ScalarsAndCompactContainers) {
  EXPECT_EQ(dump(Value{}), "null");
  EXPECT_EQ(dump(Value{true}), "true");
  EXPECT_EQ(dump(Value{false}), "false");
  EXPECT_EQ(dump(Value{"hi"}), "\"hi\"");
  EXPECT_EQ(dump(Value{Array{}}), "[]");
  EXPECT_EQ(dump(Value{Object{}}), "{}");

  Object o;
  o["a"] = Value{1};
  o["b"] = Value{Array{Value{1}, Value{2}}};
  EXPECT_EQ(dump(Value{std::move(o)}), "{\"a\":1,\"b\":[1,2]}");
}

TEST(JsonWriterTest, ObjectPreservesInsertionOrder) {
  Object o;
  o["zebra"] = Value{1};
  o["alpha"] = Value{2};
  o["mid"] = Value{3};
  o["alpha"] = Value{4};  // update in place, no reordering
  EXPECT_EQ(dump(Value{std::move(o)}), "{\"zebra\":1,\"alpha\":4,\"mid\":3}");
}

TEST(JsonWriterTest, StringEscapes) {
  EXPECT_EQ(dump(Value{"a\"b\\c\nd\te"}), "\"a\\\"b\\\\c\\nd\\te\"");
  EXPECT_EQ(dump(Value{std::string("\x01", 1)}), "\"\\u0001\"");
}

TEST(JsonWriterTest, PrettyPrintIndents) {
  Object inner;
  inner["x"] = Value{1};
  Object o;
  o["k"] = Value{std::move(inner)};
  EXPECT_EQ(dump(Value{std::move(o)}, 2),
            "{\n  \"k\": {\n    \"x\": 1\n  }\n}");
}

TEST(JsonFormatNumberTest, IntegersHaveNoDecimalPoint) {
  EXPECT_EQ(format_number(0.0), "0");
  EXPECT_EQ(format_number(42.0), "42");
  EXPECT_EQ(format_number(-7.0), "-7");
  // Exact integer counters beyond float32 range stay exponent-free.
  EXPECT_EQ(format_number(123456789012.0), "123456789012");
}

TEST(JsonFormatNumberTest, FractionsRoundTrip) {
  for (double d : {0.1, 3.14159, -2.5e-7, 1.7e300}) {
    const std::string s = format_number(d);
    EXPECT_EQ(std::stod(s), d) << s;
  }
}

TEST(JsonFormatNumberTest, RejectsNonFinite) {
  EXPECT_THROW(format_number(std::nan("")), CheckError);
  EXPECT_THROW(format_number(std::numeric_limits<double>::infinity()),
               CheckError);
}

TEST(JsonParserTest, RoundTripsNestedDocument) {
  Object inner;
  inner["pi"] = Value{3.125};
  inner["flag"] = Value{true};
  Object root;
  root["version"] = Value{1};
  root["name"] = Value{"sweep \"A\""};
  root["nested"] = Value{std::move(inner)};
  root["list"] = Value{Array{Value{}, Value{-2}, Value{"x"}}};
  const std::string text = dump(Value{std::move(root)}, 2);

  Value parsed;
  std::string error;
  ASSERT_TRUE(parse(text, &parsed, &error)) << error;
  // The writer is deterministic, so parse-then-dump is the identity.
  EXPECT_EQ(dump(parsed, 2), text);
  EXPECT_EQ(parsed.as_object().find("name")->as_string(), "sweep \"A\"");
  EXPECT_EQ(parsed.as_object().find("nested")->as_object().find("pi")
                ->as_number(),
            3.125);
}

TEST(JsonParserTest, AcceptsWhitespaceAndEmptyContainers) {
  Value v;
  ASSERT_TRUE(parse(" { \"a\" : [ ] , \"b\" : { } } ", &v));
  EXPECT_TRUE(v.as_object().find("a")->as_array().empty());
  EXPECT_EQ(v.as_object().find("b")->as_object().size(), 0u);
}

TEST(JsonParserTest, ReportsErrorsWithByteOffset) {
  Value v;
  std::string error;
  EXPECT_FALSE(parse("", &v, &error));
  EXPECT_NE(error.find("unexpected end"), std::string::npos);

  error.clear();
  EXPECT_FALSE(parse("{\"a\":1", &v, &error));
  EXPECT_NE(error.find("at byte"), std::string::npos);

  error.clear();
  EXPECT_FALSE(parse("[1,2] junk", &v, &error));
  EXPECT_NE(error.find("trailing characters"), std::string::npos);

  error.clear();
  EXPECT_FALSE(parse("{\"a\" 1}", &v, &error));
  EXPECT_FALSE(error.empty());

  error.clear();
  EXPECT_FALSE(parse("1.2.3", &v, &error));
  EXPECT_NE(error.find("malformed number"), std::string::npos);
}

}  // namespace
}  // namespace jpm::util::json
