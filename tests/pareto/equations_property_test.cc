// Monte-Carlo property sweeps for the paper's closed forms (eq. 2-4):
// for a grid of (alpha, beta, timeout) the analytic expectations must match
// direct simulation of the timeout policy over sampled idle intervals.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "jpm/pareto/pareto.h"
#include "jpm/pareto/timeout_math.h"
#include "jpm/util/rng.h"

namespace jpm::pareto {
namespace {

const DiskTimeoutParams kDisk{6.6, 11.7, 10.0};

class EquationSweep
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(EquationSweep, OffTimeAndShutdownsMatchMonteCarlo) {
  const auto [alpha, beta, timeout] = GetParam();
  const ParetoDistribution d(alpha, beta);
  Rng rng(static_cast<std::uint64_t>(alpha * 1000 + beta * 100 + timeout));

  const int n = 400000;
  double off_sum = 0.0;
  double shutdowns = 0.0;
  for (int i = 0; i < n; ++i) {
    const double l = d.sample(rng);
    if (l > timeout) {
      off_sum += l - timeout;
      shutdowns += 1.0;
    }
  }
  const double n_i = 1.0;  // per-interval expectations
  const double mc_off = off_sum / n;
  const double mc_shutdowns = shutdowns / n;
  const double analytic_off = expected_off_time(d, n_i, timeout);
  const double analytic_h = expected_shutdowns(d, n_i, timeout);

  // For alpha < 1.5 the excess has such a heavy tail that a sample mean is
  // dominated by single extreme draws (stable-law convergence); the equality
  // check is only statistically meaningful above that.
  if (alpha >= 1.5) {
    const double rel = alpha < 2.0 ? 0.30 : 0.05;
    EXPECT_NEAR(mc_off, analytic_off, rel * std::max(analytic_off, 0.2))
        << "alpha=" << alpha << " beta=" << beta << " t=" << timeout;
  }
  EXPECT_NEAR(mc_shutdowns, analytic_h, 0.02)
      << "alpha=" << alpha << " beta=" << beta << " t=" << timeout;
}

TEST_P(EquationSweep, PowerIsBetweenSleepFloorAndAlwaysOn) {
  const auto [alpha, beta, timeout] = GetParam();
  const ParetoDistribution d(alpha, beta);
  const double T = 600.0;
  const double n_i = 20.0;
  const double p = expected_power(d, n_i, T, timeout, kDisk);
  EXPECT_GE(p, 0.0);
  // The timeout policy can overshoot p_d only via transition overhead; with
  // eq. 4's clamp the value stays within one break-even of the ceiling.
  EXPECT_LE(p, kDisk.static_power_w *
                   (1.0 + n_i * kDisk.break_even_s / T) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EquationSweep,
    ::testing::Combine(::testing::Values(1.2, 1.5, 2.0, 4.0),
                       ::testing::Values(0.1, 1.0, 5.0),
                       ::testing::Values(2.0, 11.7, 40.0)));

class OptimalTimeoutSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

// eq. 5 is the argmin of eq. 4 for every (alpha, beta) — verified against a
// dense timeout grid.
TEST_P(OptimalTimeoutSweep, ArgminMatchesClosedForm) {
  const auto [alpha, beta] = GetParam();
  const ParetoDistribution d(alpha, beta);
  // Keep n_i * E[L] well under T so the off-time clamp never engages (the
  // derivation of eq. 5 assumes the idle intervals fit in the period).
  const double n_i = 10.0, T = 3600.0;
  ASSERT_LT(n_i * d.mean(), T);
  const double t_star = optimal_timeout(d, kDisk);
  const double p_star = expected_power(d, n_i, T, t_star, kDisk);
  for (double t = beta * 1.01; t < 500.0; t *= 1.07) {
    EXPECT_GE(expected_power(d, n_i, T, t, kDisk) + 1e-9, p_star)
        << "alpha=" << alpha << " beta=" << beta << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, OptimalTimeoutSweep,
                         ::testing::Combine(::testing::Values(1.1, 1.4, 1.8,
                                                              2.5, 3.5),
                                            ::testing::Values(0.1, 0.5, 2.0,
                                                              8.0)));

}  // namespace
}  // namespace jpm::pareto
