#include "jpm/pareto/pareto.h"

#include <gtest/gtest.h>

#include <cmath>

#include "jpm/util/check.h"
#include "jpm/util/rng.h"

namespace jpm::pareto {
namespace {

TEST(ParetoDistributionTest, RejectsInvalidParameters) {
  EXPECT_THROW(ParetoDistribution(1.0, 1.0), CheckError);
  EXPECT_THROW(ParetoDistribution(0.5, 1.0), CheckError);
  EXPECT_THROW(ParetoDistribution(2.0, 0.0), CheckError);
  EXPECT_THROW(ParetoDistribution(2.0, -1.0), CheckError);
}

TEST(ParetoDistributionTest, PdfZeroBelowBeta) {
  ParetoDistribution d(2.0, 1.5);
  EXPECT_EQ(d.pdf(1.0), 0.0);
  EXPECT_EQ(d.pdf(1.5), 0.0);
  EXPECT_GT(d.pdf(2.0), 0.0);
}

TEST(ParetoDistributionTest, CdfSurvivalComplementary) {
  ParetoDistribution d(1.7, 0.3);
  for (double l : {0.1, 0.3, 0.5, 1.0, 10.0, 100.0}) {
    EXPECT_NEAR(d.cdf(l) + d.survival(l), 1.0, 1e-12) << "l=" << l;
  }
}

TEST(ParetoDistributionTest, MeanMatchesClosedForm) {
  ParetoDistribution d(3.0, 2.0);
  EXPECT_DOUBLE_EQ(d.mean(), 3.0);
}

TEST(ParetoDistributionTest, QuantileInvertsCdf) {
  ParetoDistribution d(2.5, 0.7);
  for (double q : {0.0, 0.1, 0.5, 0.9, 0.99}) {
    EXPECT_NEAR(d.cdf(d.quantile(q)), q, 1e-12) << "q=" << q;
  }
}

TEST(ParetoDistributionTest, SampleMeanConvergesToAnalytic) {
  ParetoDistribution d(3.0, 1.0);  // mean 1.5, finite variance
  Rng rng(99);
  double sum = 0.0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) sum += d.sample(rng);
  EXPECT_NEAR(sum / n, d.mean(), 0.01);
}

TEST(ParetoDistributionTest, ExpectedExcessBelowBetaIsMeanMinusThreshold) {
  ParetoDistribution d(2.0, 1.0);  // mean 2
  EXPECT_DOUBLE_EQ(d.expected_excess(0.5), 1.5);
  EXPECT_DOUBLE_EQ(d.expected_excess(1.0), 1.0);
}

TEST(ParetoDistributionTest, ExpectedExcessClosedFormAboveBeta) {
  ParetoDistribution d(2.0, 1.0);
  // (beta/t)^(alpha-1) * beta/(alpha-1) = (1/4) * 1 = 0.25 at t = 4.
  EXPECT_NEAR(d.expected_excess(4.0), 0.25, 1e-12);
}

TEST(ParetoDistributionTest, ExpectedExcessMatchesMonteCarlo) {
  ParetoDistribution d(2.5, 0.4);
  Rng rng(7);
  const double t = 1.1;
  double sum = 0.0;
  const int n = 500000;
  for (int i = 0; i < n; ++i) {
    const double x = d.sample(rng);
    sum += x > t ? x - t : 0.0;
  }
  EXPECT_NEAR(sum / n, d.expected_excess(t), 5e-3);
}

TEST(AlphaEstimationTest, MomentEstimatorInvertsTheMean) {
  // For Pareto(alpha, beta), mean = alpha*beta/(alpha-1); the paper estimates
  // alpha = mean / (mean - beta).
  for (double alpha : {1.2, 1.5, 2.0, 3.0, 10.0}) {
    const ParetoDistribution d(alpha, 0.1);
    EXPECT_NEAR(estimate_alpha_from_mean(d.mean(), 0.1), alpha, 1e-9)
        << "alpha=" << alpha;
  }
}

TEST(AlphaEstimationTest, DegenerateMeanClampsHigh) {
  EXPECT_DOUBLE_EQ(estimate_alpha_from_mean(0.1, 0.1), kMaxAlpha);
  EXPECT_DOUBLE_EQ(estimate_alpha_from_mean(0.05, 0.1), kMaxAlpha);
}

TEST(AlphaEstimationTest, HugeMeanClampsLow) {
  EXPECT_DOUBLE_EQ(estimate_alpha_from_mean(1e18, 0.1), kMinAlpha);
}

TEST(AlphaEstimationTest, MleRecoversAlphaFromSamples) {
  const ParetoDistribution d(2.2, 0.5);
  Rng rng(3);
  std::vector<double> samples;
  for (int i = 0; i < 200000; ++i) samples.push_back(d.sample(rng));
  EXPECT_NEAR(estimate_alpha_mle(samples, 0.5), 2.2, 0.05);
}

TEST(AlphaEstimationTest, MleRejectsEmpty) {
  EXPECT_THROW(estimate_alpha_mle({}, 0.5), CheckError);
}

TEST(FitTest, FitFromMeanRoundTrips) {
  const auto d = fit_from_mean(2.0, 0.5);
  EXPECT_NEAR(d.mean(), 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(d.beta(), 0.5);
}

class ParetoSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(ParetoSweepTest, CdfMonotoneAndNormalized) {
  const double alpha = GetParam();
  ParetoDistribution d(alpha, 0.2);
  double prev = -1.0;
  for (double l = 0.2; l < 50.0; l *= 1.3) {
    const double c = d.cdf(l);
    EXPECT_GE(c, prev);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);  // rounds to exactly 1.0 deep in the tail
    prev = c;
  }
  EXPECT_GT(d.cdf(1e9), 0.999);
}

INSTANTIATE_TEST_SUITE_P(Alphas, ParetoSweepTest,
                         ::testing::Values(1.05, 1.3, 1.7, 2.0, 3.0, 5.0,
                                           10.0));

}  // namespace
}  // namespace jpm::pareto
