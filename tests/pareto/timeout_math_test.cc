#include "jpm/pareto/timeout_math.h"

#include <gtest/gtest.h>

#include <cmath>

#include "jpm/util/rng.h"

namespace jpm::pareto {
namespace {

const DiskTimeoutParams kDisk{6.6, 11.7, 10.0};  // the paper's disk

TEST(ExpectedOffTimeTest, ZeroForNeverTimeout) {
  ParetoDistribution d(2.0, 0.1);
  EXPECT_EQ(expected_off_time(d, 100, kNeverTimeout), 0.0);
}

TEST(ExpectedOffTimeTest, ZeroForNoIntervals) {
  ParetoDistribution d(2.0, 0.1);
  EXPECT_EQ(expected_off_time(d, 0, 5.0), 0.0);
}

TEST(ExpectedOffTimeTest, MatchesEquationTwo) {
  // eq. 2: t_s = n_i * (beta/t_o)^(alpha-1) * beta/(alpha-1)
  ParetoDistribution d(2.0, 1.0);
  const double t_o = 4.0;
  const double expected = 50.0 * std::pow(1.0 / 4.0, 1.0) * 1.0 / 1.0;
  EXPECT_NEAR(expected_off_time(d, 50, t_o), expected, 1e-9);
}

TEST(ExpectedShutdownsTest, MatchesEquationThree) {
  // eq. 3: h = n_i * (beta/t_o)^alpha
  ParetoDistribution d(1.5, 0.5);
  const double t_o = 8.0;
  EXPECT_NEAR(expected_shutdowns(d, 200, t_o),
              200.0 * std::pow(0.5 / 8.0, 1.5), 1e-9);
}

TEST(ExpectedShutdownsTest, AllIntervalsShutDownWhenTimeoutBelowBeta) {
  ParetoDistribution d(2.0, 1.0);
  EXPECT_DOUBLE_EQ(expected_shutdowns(d, 40, 0.5), 40.0);
}

TEST(ExpectedPowerTest, NeverTimeoutGivesStaticPower) {
  ParetoDistribution d(2.0, 0.1);
  EXPECT_DOUBLE_EQ(expected_power(d, 100, 600, kNeverTimeout, kDisk),
                   kDisk.static_power_w);
}

TEST(ExpectedPowerTest, OptimalTimeoutIsAlphaTimesBreakEven) {
  ParetoDistribution d(1.8, 0.1);
  EXPECT_DOUBLE_EQ(optimal_timeout(d, kDisk), 1.8 * 11.7);
}

TEST(ExpectedPowerTest, OptimalTimeoutMinimizesEquationFour) {
  // Scan a dense grid: no timeout should beat alpha * t_be by more than
  // numerical noise (eq. 5 is the analytic argmin of eq. 4).
  for (double alpha : {1.2, 1.6, 2.0, 3.0}) {
    ParetoDistribution d(alpha, 0.1);
    const double t_star = optimal_timeout(d, kDisk);
    const double p_star = expected_power(d, 120, 600.0, t_star, kDisk);
    for (double t = 0.5; t < 400.0; t *= 1.1) {
      EXPECT_GE(expected_power(d, 120, 600.0, t, kDisk) + 1e-9, p_star)
          << "alpha=" << alpha << " t=" << t;
    }
  }
}

TEST(ExpectedPowerTest, MonteCarloAgreement) {
  // Simulate idle intervals drawn from the distribution and apply the
  // timeout policy literally; compare against eq. 4.
  const ParetoDistribution d(1.6, 0.4);
  const double T = 600.0, t_o = 20.0;
  const int n_i = 40;
  Rng rng(11);
  double total = 0.0;
  const int trials = 20000;
  for (int k = 0; k < trials; ++k) {
    double on = T;  // the disk is on except when asleep inside an interval
    double transitions = 0.0;
    for (int i = 0; i < n_i; ++i) {
      const double l = d.sample(rng);
      if (l > t_o) {
        on -= l - t_o;
        transitions += 1.0;
      }
    }
    total += (kDisk.static_power_w * on +
              kDisk.static_power_w * kDisk.break_even_s * transitions) /
             T;
  }
  EXPECT_NEAR(total / trials, expected_power(d, n_i, T, t_o, kDisk), 0.02);
}

TEST(DelayConstraintTest, RatioMatchesEquationSix) {
  ParetoDistribution d(1.5, 0.2);
  const double n_i = 30, n_d = 2000, N = 100000, T = 600, t_o = 15.0;
  const double h = expected_shutdowns(d, n_i, t_o);
  const double expected = h * (10.0 - 0.5) * (n_d / T) / N;
  EXPECT_NEAR(expected_delayed_ratio(d, n_i, n_d, N, T, t_o, kDisk), expected,
              1e-12);
}

TEST(DelayConstraintTest, MinTimeoutSatisfiesTheBoundTightly) {
  ParetoDistribution d(1.4, 0.3);
  const double n_i = 50, n_d = 5000, N = 200000, T = 600, D = 0.001;
  const double t_min =
      min_timeout_for_delay_constraint(d, n_i, n_d, N, T, D, kDisk);
  ASSERT_GT(t_min, 0.0);
  // At t_min the ratio equals D; slightly below it exceeds D.
  EXPECT_NEAR(expected_delayed_ratio(d, n_i, n_d, N, T, t_min, kDisk), D,
              1e-9);
  EXPECT_GT(expected_delayed_ratio(d, n_i, n_d, N, T, t_min * 0.9, kDisk), D);
}

TEST(DelayConstraintTest, ZeroWhenNothingCanBeDelayed) {
  ParetoDistribution d(2.0, 0.1);
  EXPECT_EQ(min_timeout_for_delay_constraint(d, 0, 100, 1000, 600, 1e-3,
                                             kDisk),
            0.0);
  EXPECT_EQ(min_timeout_for_delay_constraint(d, 10, 0, 1000, 600, 1e-3,
                                             kDisk),
            0.0);
}

TEST(DelayConstraintTest, ZeroWhenConstraintLoose) {
  ParetoDistribution d(2.0, 0.1);
  // Tiny traffic, huge allowance: every timeout is fine.
  EXPECT_EQ(min_timeout_for_delay_constraint(d, 1, 1, 1000000, 600, 0.5,
                                             kDisk),
            0.0);
}

TEST(DelayConstraintTest, TighterLimitRaisesTimeout) {
  ParetoDistribution d(1.5, 0.2);
  const double loose =
      min_timeout_for_delay_constraint(d, 50, 5000, 100000, 600, 0.01, kDisk);
  const double tight =
      min_timeout_for_delay_constraint(d, 50, 5000, 100000, 600, 0.0001,
                                       kDisk);
  EXPECT_GT(tight, loose);
}

// Paper Section IV-D: when alpha shrinks (more long intervals), the
// constrained timeout must grow — the opposite of the unconstrained optimum.
TEST(DelayConstraintTest, SmallerAlphaNeedsLargerConstrainedTimeout) {
  const double n_i = 50, n_d = 5000, N = 100000, T = 600, D = 1e-4;
  const double t_small_alpha = min_timeout_for_delay_constraint(
      ParetoDistribution(1.2, 0.2), n_i, n_d, N, T, D, kDisk);
  const double t_large_alpha = min_timeout_for_delay_constraint(
      ParetoDistribution(2.5, 0.2), n_i, n_d, N, T, D, kDisk);
  EXPECT_GT(t_small_alpha, t_large_alpha);
}

}  // namespace
}  // namespace jpm::pareto
