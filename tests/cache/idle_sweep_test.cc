#include "jpm/cache/idle_sweep.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "jpm/cache/miss_curve.h"
#include "jpm/cache/stack_distance.h"
#include "jpm/util/check.h"
#include "jpm/util/rng.h"

namespace jpm::cache {
namespace {

IdleEvent ev(double t, std::uint64_t depth) { return IdleEvent{t, depth}; }
IdleEvent cold(double t) { return IdleEvent{t, kColdAccess}; }

TEST(IdleSweepTest, EmptyPeriodIsOneBigGap) {
  const auto out = sweep_idle_intervals(std::vector<IdleEvent>{}, 0.0, 100.0, 1, 0.1, {1, 2});
  ASSERT_EQ(out.size(), 2u);
  for (const auto& e : out) {
    EXPECT_EQ(e.disk_accesses, 0u);
    EXPECT_EQ(e.idle_intervals, 1u);
    EXPECT_DOUBLE_EQ(e.idle_time_s, 100.0);
    EXPECT_DOUBLE_EQ(e.mean_idle_s, 100.0);
  }
}

TEST(IdleSweepTest, ColdAccessesNeverRemoved) {
  const std::vector<IdleEvent> events{cold(10), cold(50)};
  const auto out = sweep_idle_intervals(events, 0, 100, 1, 0.1, {1000});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].disk_accesses, 2u);
  EXPECT_EQ(out[0].idle_intervals, 3u);  // 0-10, 10-50, 50-100
  EXPECT_DOUBLE_EQ(out[0].idle_time_s, 100.0);
}

TEST(IdleSweepTest, WindowFiltersShortGaps) {
  // Gaps: 1.0, 0.05, 8.95 -> with w = 0.1 only two count.
  const std::vector<IdleEvent> events{cold(1.0), cold(1.05)};
  const auto out = sweep_idle_intervals(events, 0, 10, 1, 0.1, {1});
  EXPECT_EQ(out[0].idle_intervals, 2u);
  EXPECT_NEAR(out[0].idle_time_s, 1.0 + 8.95, 1e-12);
}

TEST(IdleSweepTest, RemovingAccessMergesGaps) {
  // Access at t=5 with depth 1 disappears once memory >= 1 unit; the two
  // 5-second gaps merge into the whole period.
  const std::vector<IdleEvent> events{ev(5.0, 1)};
  const auto out = sweep_idle_intervals(events, 0, 10, 4, 0.1, {0, 1});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].disk_accesses, 1u);
  EXPECT_EQ(out[0].idle_intervals, 2u);
  EXPECT_EQ(out[1].disk_accesses, 0u);
  EXPECT_EQ(out[1].idle_intervals, 1u);
  EXPECT_DOUBLE_EQ(out[1].idle_time_s, 10.0);
}

TEST(IdleSweepTest, MergeOfSubWindowGapsCanCrossWindow) {
  // Two 0.08 s gaps (below w = 0.1) merge into a 0.16 s gap (above w) when
  // the middle access becomes a hit; the boundary gaps (0.05 s) stay below w
  // throughout.
  const std::vector<IdleEvent> events{cold(1.0), ev(1.08, 1), cold(1.16)};
  const auto out = sweep_idle_intervals(events, 0.95, 1.21, 1, 0.1, {0, 1});
  EXPECT_EQ(out[0].idle_intervals, 0u);
  EXPECT_EQ(out[1].idle_intervals, 1u);
  EXPECT_NEAR(out[1].idle_time_s, 0.16, 1e-9);
}

// Paper Fig. 4: accesses (1,2,3,5,2,1,4,6,5,2); with 4-page memory the disk
// idles between the 4th and 7th and between the 8th and 9th accesses; with
// 2 pages the first interval splits; with 5 pages the second one extends.
TEST(IdleSweepTest, PaperFigure4Example) {
  StackDistanceTracker tr;
  const std::vector<std::uint64_t> refs{1, 2, 3, 5, 2, 1, 4, 6, 5, 2};
  std::vector<IdleEvent> events;
  for (std::size_t i = 0; i < refs.size(); ++i) {
    events.push_back(IdleEvent{static_cast<double>(i + 1) * 10.0,
                               tr.access(refs[i])});
  }
  const auto out =
      sweep_idle_intervals(events, 0.0, 110.0, 1, 0.1, {2, 4, 5, 8});

  // m = 2: disk accesses are all but the 5th (depth 3 > 2? no: depth 3 means
  // hit needs >= 3 pages, so at 2 pages accesses 5,6 miss as well) -> only
  // the initial gap 0-10 plus gaps of 10 s between consecutive accesses 1..8
  // and the trailing 100..110 gap remain around accesses; every event is a
  // disk access except none.
  EXPECT_EQ(out[0].disk_accesses, 10u);

  // m = 4 (paper's resident memory): 8 disk accesses, idle I1 = t4..t7
  // (30 s), I2 = t8..t9 (10 s); plus the 10 s gaps between consecutive
  // accesses and the boundary gaps.
  EXPECT_EQ(out[1].disk_accesses, 8u);

  // m = 5: accesses 9 and 10 become hits (depth 5); I2 extends to the end of
  // the period: t8 = 80 .. 110 = 30 s.
  EXPECT_EQ(out[2].disk_accesses, 6u);

  // m = 8: nothing more to absorb (no depths beyond 5).
  EXPECT_EQ(out[3].disk_accesses, 6u);
  EXPECT_EQ(out[3].idle_intervals, out[2].idle_intervals);
}

TEST(IdleSweepTest, DiskAccessCountsMatchMissCurve) {
  Rng rng(13);
  StackDistanceTracker tr;
  MissCurve mc(4, 32);
  std::vector<IdleEvent> events;
  double t = 0.0;
  for (int i = 0; i < 5000; ++i) {
    t += rng.exponential(0.05);
    const std::uint64_t page = rng.chance(0.8) ? rng.uniform_index(20)
                                               : rng.uniform_index(400);
    const auto depth = tr.access(page);
    mc.add(depth);
    events.push_back(IdleEvent{t, depth});
  }
  std::vector<std::uint64_t> candidates{1, 2, 3, 5, 8, 13, 21, 32};
  const auto out =
      sweep_idle_intervals(events, 0.0, t + 1.0, 4, 0.1, candidates);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    EXPECT_EQ(out[i].disk_accesses, mc.misses_at(candidates[i]))
        << "m=" << candidates[i];
  }
}

// Brute-force reference: recompute gaps from scratch at each size.
TEST(IdleSweepTest, RandomizedAgainstBruteForce) {
  Rng rng(21);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<IdleEvent> events;
    double t = 0.0;
    for (int i = 0; i < 200; ++i) {
      t += rng.exponential(0.3);
      const bool is_cold = rng.chance(0.2);
      events.push_back(IdleEvent{
          t, is_cold ? kColdAccess : 1 + rng.uniform_index(40)});
    }
    const double end = t + 2.0;
    const double w = 0.25;
    std::vector<std::uint64_t> candidates{1, 2, 4, 8, 16, 40};
    const auto out =
        sweep_idle_intervals(events, 0.0, end, /*unit_frames=*/1, w,
                             candidates);
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      const std::uint64_t m = candidates[c];
      std::vector<double> times{0.0};
      for (const auto& e : events) {
        if (e.depth_frames == kColdAccess || e.depth_frames > m) {
          times.push_back(e.time_s);
        }
      }
      times.push_back(end);
      std::uint64_t gaps = 0;
      double sum = 0.0;
      for (std::size_t i = 0; i + 1 < times.size(); ++i) {
        const double g = times[i + 1] - times[i];
        if (g >= w && g > 0.0) {
          ++gaps;
          sum += g;
        }
      }
      ASSERT_EQ(out[c].disk_accesses, times.size() - 2) << "m=" << m;
      ASSERT_EQ(out[c].idle_intervals, gaps) << "m=" << m;
      ASSERT_NEAR(out[c].idle_time_s, sum, 1e-9) << "m=" << m;
    }
  }
}

TEST(IdleSweepTest, RejectsUnsortedCandidates) {
  EXPECT_THROW(
      sweep_idle_intervals(std::vector<IdleEvent>{}, 0, 1, 1, 0.1, {3, 1}), CheckError);
}

}  // namespace
}  // namespace jpm::cache
