#include "jpm/cache/stack_distance.h"

#include <gtest/gtest.h>

#include <list>
#include <unordered_map>
#include <vector>

#include "jpm/cache/lru_cache.h"
#include "jpm/util/rng.h"

namespace jpm::cache {
namespace {

TEST(StackDistanceTest, FirstAccessIsCold) {
  StackDistanceTracker t;
  EXPECT_EQ(t.access(42), kColdAccess);
  EXPECT_EQ(t.distinct_pages(), 1u);
}

TEST(StackDistanceTest, ImmediateReaccessHasDepthOne) {
  StackDistanceTracker t;
  t.access(1);
  EXPECT_EQ(t.access(1), 1u);
}

TEST(StackDistanceTest, DepthCountsDistinctIntermediatePages) {
  StackDistanceTracker t;
  t.access(1);
  t.access(2);
  t.access(3);
  t.access(2);            // depth 2 (pages {3} + itself)
  EXPECT_EQ(t.access(1), 3u);  // {2, 3} + itself
}

TEST(StackDistanceTest, RepeatedIntermediateAccessesCountOnce) {
  StackDistanceTracker t;
  t.access(1);
  for (int i = 0; i < 10; ++i) t.access(2);
  EXPECT_EQ(t.access(1), 2u);  // only one distinct page in between
}

// The worked example from paper Fig. 3: accesses (1,2,3,5,2,1,4,6,5,2) give
// depth counters (0,0,1,1,2,0,0,0) — one access at depth 3, one at 4, two
// at 5.
TEST(StackDistanceTest, PaperFigure3Example) {
  StackDistanceTracker t;
  const std::vector<std::uint64_t> refs{1, 2, 3, 5, 2, 1, 4, 6, 5, 2};
  std::vector<std::uint64_t> depths;
  for (auto r : refs) depths.push_back(t.access(r));
  const auto C = kColdAccess;
  const std::vector<std::uint64_t> expected{C, C, C, C, 3, 4, C, C, 5, 5};
  EXPECT_EQ(depths, expected);
}

TEST(StackDistanceTest, SurvivesCompaction) {
  StackDistanceTracker t;
  // Re-access two pages many times: slots churn and force compactions.
  t.access(100);
  t.access(200);
  for (int i = 0; i < 100000; ++i) {
    EXPECT_EQ(t.access(100), 2u);
    EXPECT_EQ(t.access(200), 2u);
  }
  EXPECT_EQ(t.distinct_pages(), 2u);
  EXPECT_EQ(t.total_accesses(), 200002u);
}

// Reference implementation: an explicit LRU stack (O(n) per access).
class NaiveStack {
 public:
  std::uint64_t access(std::uint64_t page) {
    std::uint64_t depth = 1;
    for (auto it = stack_.begin(); it != stack_.end(); ++it, ++depth) {
      if (*it == page) {
        stack_.erase(it);
        stack_.push_front(page);
        return depth;
      }
    }
    stack_.push_front(page);
    return kColdAccess;
  }

 private:
  std::list<std::uint64_t> stack_;
};

TEST(StackDistanceTest, RandomizedAgainstNaiveStack) {
  StackDistanceTracker fast;
  NaiveStack naive;
  Rng rng(77);
  for (int i = 0; i < 20000; ++i) {
    // Mix of hot pages and a long tail so all depths occur.
    const std::uint64_t page = rng.chance(0.6) ? rng.uniform_index(16)
                                               : rng.uniform_index(1000);
    ASSERT_EQ(fast.access(page), naive.access(page)) << "iter " << i;
  }
}

// Compaction-heavy run pinning the live-set invariant: a hot set keeps
// next_slot_ churning (one slot per access against a small live set forces a
// rebuild every few thousand accesses) while a drifting cold tail keeps
// growing the live set mid-stream. Every depth must still match the naive
// stack, and the compact() internal live-count CHECK crashes the test if a
// rebuild ever loses or duplicates a live slot.
TEST(StackDistanceTest, CompactionHeavyChurnMatchesNaive) {
  StackDistanceTracker fast;
  NaiveStack naive;
  Rng rng(4242);
  std::uint64_t next_cold = 1000;
  for (int i = 0; i < 60000; ++i) {
    std::uint64_t page;
    if (rng.chance(0.9)) {
      page = rng.uniform_index(32);  // hot set: high slot churn
    } else {
      page = next_cold++;  // always-new page: live set grows
    }
    ASSERT_EQ(fast.access(page), naive.access(page)) << "iter " << i;
  }
  EXPECT_EQ(fast.distinct_pages(), 32 + (next_cold - 1000));
  EXPECT_EQ(fast.total_accesses(), 60000u);
}

// The engine's fused configuration: one PageTable shared between an LruCache
// and a tracker, with constant evictions vacating the `frame` half of
// entries whose `slot` half stays live. Depths must be unaffected by the
// cache's churn, and compaction must keep treating evicted-but-tracked
// pages as live.
TEST(StackDistanceTest, SharedTableWithEvictingCacheMatchesNaive) {
  PageTable table;
  LruCache cache(LruCacheOptions{/*total_frames=*/64, /*frames_per_bank=*/8,
                                 /*capacity_frames=*/16},
                 &table);
  StackDistanceTracker fast(&table);
  NaiveStack naive;
  Rng rng(99);
  for (int i = 0; i < 50000; ++i) {
    const std::uint64_t page = rng.chance(0.7) ? rng.uniform_index(24)
                                               : rng.uniform_index(2000);
    PageEntry* entry = table.find_or_insert(page);
    ASSERT_EQ(fast.access_at(*entry), naive.access(page)) << "iter " << i;
    // Mirror the engine's hot loop: hit -> touch, miss -> insert (which may
    // physically relocate entries, so re-resolve nothing afterwards).
    if (entry->frame != kNoFrame) {
      cache.touch(entry->frame);
    } else {
      cache.insert(page);
    }
  }
  EXPECT_EQ(cache.size(), 16u);
  // Every resident page's entry must carry both halves.
  std::uint64_t resident = 0;
  table.for_each([&](PageId /*page*/, PageEntry& entry) {
    EXPECT_NE(entry.slot, kNoSlot);  // tracker saw every page
    if (entry.frame != kNoFrame) ++resident;
  });
  EXPECT_EQ(resident, 16u);
}

TEST(StackDistanceTest, SequentialScanDepthsEqualWorkingSetSize) {
  StackDistanceTracker t;
  const std::uint64_t n = 500;
  for (std::uint64_t p = 0; p < n; ++p) t.access(p);
  // Second scan: every page is at depth n.
  for (std::uint64_t p = 0; p < n; ++p) EXPECT_EQ(t.access(p), n);
}

}  // namespace
}  // namespace jpm::cache
