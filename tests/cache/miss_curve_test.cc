#include "jpm/cache/miss_curve.h"

#include <gtest/gtest.h>

#include "jpm/cache/lru_cache.h"
#include "jpm/cache/stack_distance.h"
#include "jpm/util/check.h"
#include "jpm/util/rng.h"

namespace jpm::cache {
namespace {

TEST(MissCurveTest, ColdAccessesAlwaysMiss) {
  MissCurve mc(4, 8);
  mc.add(kColdAccess);
  mc.add(kColdAccess);
  EXPECT_EQ(mc.cold_accesses(), 2u);
  for (std::uint64_t u = 0; u <= 8; ++u) EXPECT_EQ(mc.misses_at(u), 2u);
}

TEST(MissCurveTest, DepthBucketsByUnit) {
  MissCurve mc(/*unit_frames=*/4, /*max_units=*/4);
  mc.add(1);   // unit 0
  mc.add(4);   // unit 0 (depth 4 still fits in 1 unit of 4 frames)
  mc.add(5);   // unit 1
  mc.add(16);  // unit 3
  EXPECT_EQ(mc.counter(0), 2u);
  EXPECT_EQ(mc.counter(1), 1u);
  EXPECT_EQ(mc.counter(2), 0u);
  EXPECT_EQ(mc.counter(3), 1u);
}

TEST(MissCurveTest, MissesMonotoneNonincreasing) {
  MissCurve mc(2, 10);
  for (std::uint64_t d = 1; d <= 20; ++d) mc.add(d);
  std::uint64_t prev = mc.misses_at(0);
  for (std::uint64_t u = 1; u <= 10; ++u) {
    EXPECT_LE(mc.misses_at(u), prev);
    prev = mc.misses_at(u);
  }
}

TEST(MissCurveTest, HitsPlusMissesEqualsTotal) {
  MissCurve mc(3, 5);
  mc.add(kColdAccess);
  for (std::uint64_t d : {1, 2, 7, 9, 14, 15, 100}) mc.add(d);
  for (std::uint64_t u = 0; u <= 5; ++u) {
    EXPECT_EQ(mc.hits_at(u) + mc.misses_at(u), mc.total_accesses());
  }
}

TEST(MissCurveTest, OverflowDepthsNeverBecomeHits) {
  MissCurve mc(2, 3);
  mc.add(100);  // beyond 3 units * 2 frames
  EXPECT_EQ(mc.misses_at(3), 1u);
  EXPECT_EQ(mc.hits_at(3), 0u);
}

// The paper's Fig. 3 worked example with unit = 1 page: counters
// (0,0,1,1,2,0,0,0); 8 disk accesses at 4 pages, 9 at 3, 6 at 5.
TEST(MissCurveTest, PaperFigure3Prediction) {
  StackDistanceTracker t;
  MissCurve mc(1, 8);
  for (std::uint64_t r : {1, 2, 3, 5, 2, 1, 4, 6, 5, 2}) mc.add(t.access(r));
  EXPECT_EQ(mc.counter(0), 0u);
  EXPECT_EQ(mc.counter(1), 0u);
  EXPECT_EQ(mc.counter(2), 1u);
  EXPECT_EQ(mc.counter(3), 1u);
  EXPECT_EQ(mc.counter(4), 2u);
  EXPECT_EQ(mc.counter(5), 0u);
  EXPECT_EQ(mc.misses_at(4), 8u);
  EXPECT_EQ(mc.misses_at(3), 9u);
  EXPECT_EQ(mc.misses_at(5), 6u);
  EXPECT_EQ(mc.misses_at(8), 6u);  // no further reuse beyond depth 5
}

TEST(MissCurveTest, DistinctSizesListsChangePoints) {
  MissCurve mc(2, 6);
  mc.add(3);   // unit 1 -> size 2
  mc.add(9);   // unit 4 -> size 5
  const auto sizes = mc.distinct_sizes();
  EXPECT_EQ(sizes, (std::vector<std::uint64_t>{2, 5, 6}));
}

TEST(MissCurveTest, DistinctSizesAlwaysIncludesMax) {
  MissCurve mc(2, 6);
  EXPECT_EQ(mc.distinct_sizes(), (std::vector<std::uint64_t>{6}));
}

TEST(MissCurveTest, ResetClears) {
  MissCurve mc(2, 4);
  mc.add(1);
  mc.add(kColdAccess);
  mc.reset();
  EXPECT_EQ(mc.total_accesses(), 0u);
  EXPECT_EQ(mc.cold_accesses(), 0u);
  EXPECT_EQ(mc.misses_at(4), 0u);
}

TEST(MissCurveTest, RejectsDegenerateGeometry) {
  EXPECT_THROW(MissCurve(0, 4), CheckError);
  EXPECT_THROW(MissCurve(4, 0), CheckError);
}

// LRU inclusion property end to end: simulating actual LRU caches of sizes m
// must match the curve's predictions exactly for the same reference stream.
TEST(MissCurveTest, PredictionsMatchSimulatedCachesExactly) {
  Rng rng(31);
  std::vector<std::uint64_t> refs;
  for (int i = 0; i < 4000; ++i) {
    refs.push_back(rng.chance(0.7) ? rng.uniform_index(12)
                                   : rng.uniform_index(120));
  }
  StackDistanceTracker t;
  MissCurve mc(1, 64);
  for (auto r : refs) mc.add(t.access(r));

  for (std::uint64_t m : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    LruCache cache(LruCacheOptions{128, 8, m});
    std::uint64_t misses = 0;
    for (auto r : refs) {
      if (!cache.lookup(r)) {
        ++misses;
        cache.insert(r);
      }
    }
    EXPECT_EQ(mc.misses_at(m), misses) << "m=" << m;
  }
}

}  // namespace
}  // namespace jpm::cache
