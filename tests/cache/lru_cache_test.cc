#include "jpm/cache/lru_cache.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "jpm/util/check.h"
#include "jpm/util/rng.h"

namespace jpm::cache {
namespace {

LruCacheOptions small_options(std::uint64_t capacity = 4) {
  return LruCacheOptions{/*total_frames=*/16, /*frames_per_bank=*/4,
                         /*capacity_frames=*/capacity};
}

TEST(LruCacheTest, MissOnEmpty) {
  LruCache c(small_options());
  EXPECT_FALSE(c.lookup(1).has_value());
  EXPECT_EQ(c.size(), 0u);
}

TEST(LruCacheTest, InsertThenHit) {
  LruCache c(small_options());
  c.insert(1);
  const auto r = c.lookup(1);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->hit);
  EXPECT_EQ(c.size(), 1u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache c(small_options(2));
  c.insert(1);
  c.insert(2);
  c.lookup(1);   // 1 becomes MRU
  c.insert(3);   // evicts 2
  EXPECT_TRUE(c.lookup(1).has_value());
  EXPECT_FALSE(c.lookup(2).has_value());
  EXPECT_TRUE(c.lookup(3).has_value());
  EXPECT_EQ(c.size(), 2u);
}

TEST(LruCacheTest, LruOrderReflectsAccesses) {
  LruCache c(small_options());
  c.insert(1);
  c.insert(2);
  c.insert(3);
  c.lookup(1);
  EXPECT_EQ(c.lru_order(), (std::vector<PageId>{1, 3, 2}));
}

TEST(LruCacheTest, ShrinkEvictsTail) {
  LruCache c(small_options(4));
  for (PageId p = 1; p <= 4; ++p) c.insert(p);
  c.set_capacity(2);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_TRUE(c.lookup(4).has_value());
  EXPECT_TRUE(c.lookup(3).has_value());
  EXPECT_FALSE(c.lookup(1).has_value());
  EXPECT_FALSE(c.lookup(2).has_value());
}

TEST(LruCacheTest, GrowKeepsContents) {
  LruCache c(small_options(2));
  c.insert(1);
  c.insert(2);
  c.set_capacity(8);
  EXPECT_TRUE(c.lookup(1).has_value());
  EXPECT_TRUE(c.lookup(2).has_value());
}

TEST(LruCacheTest, InsertAtZeroCapacityThrows) {
  LruCache c(small_options(1));
  c.set_capacity(0);
  EXPECT_THROW(c.insert(9), CheckError);
}

TEST(LruCacheTest, AllocationPrefersWarmBanks) {
  // 4 frames per bank: the first 4 inserts must land in one bank.
  LruCache c(small_options(8));
  std::unordered_set<BankIndex> banks;
  for (PageId p = 0; p < 4; ++p) banks.insert(c.insert(p).bank);
  EXPECT_EQ(banks.size(), 1u);
  // Next insert opens a second bank.
  banks.insert(c.insert(10).bank);
  EXPECT_EQ(banks.size(), 2u);
}

TEST(LruCacheTest, BankPopulationTracksResidency) {
  LruCache c(small_options(8));
  std::vector<BankIndex> b;
  for (PageId p = 0; p < 6; ++p) b.push_back(c.insert(p).bank);
  std::uint64_t total = 0;
  for (BankIndex i = 0; i < c.bank_count(); ++i) total += c.bank_population(i);
  EXPECT_EQ(total, 6u);
}

TEST(LruCacheTest, InvalidateBankDropsItsPagesOnly) {
  LruCache c(small_options(8));
  std::vector<std::pair<PageId, BankIndex>> placed;
  for (PageId p = 0; p < 8; ++p) placed.emplace_back(p, c.insert(p).bank);
  const BankIndex victim = placed[0].second;
  std::uint64_t expected_drop = 0;
  for (auto& [page, bank] : placed) expected_drop += bank == victim;
  EXPECT_EQ(c.invalidate_bank(victim), expected_drop);
  for (auto& [page, bank] : placed) {
    EXPECT_EQ(c.lookup(page).has_value(), bank != victim) << "page " << page;
  }
  EXPECT_EQ(c.bank_population(victim), 0u);
}

TEST(LruCacheTest, ReuseAfterInvalidation) {
  LruCache c(small_options(8));
  for (PageId p = 0; p < 8; ++p) c.insert(p);
  c.invalidate_bank(0);
  // Cache keeps working; freed frames get reused.
  for (PageId p = 100; p < 104; ++p) c.insert(p);
  EXPECT_EQ(c.size(), 8u);
  for (PageId p = 100; p < 104; ++p) EXPECT_TRUE(c.lookup(p).has_value());
}

TEST(LruCacheTest, HitMovesPageWithoutChangingBank) {
  LruCache c(small_options(4));
  const auto placed = c.insert(7);
  for (int i = 0; i < 5; ++i) {
    const auto r = c.lookup(7);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->bank, placed.bank);
  }
}

TEST(LruCacheTest, RejectsBadGeometry) {
  EXPECT_THROW(LruCache(LruCacheOptions{0, 4, 0}), CheckError);
  EXPECT_THROW(LruCache(LruCacheOptions{16, 0, 4}), CheckError);
  EXPECT_THROW(LruCache(LruCacheOptions{16, 4, 32}), CheckError);
  EXPECT_THROW(LruCache(LruCacheOptions{15, 4, 4}), CheckError);  // ragged bank
}

TEST(LruCacheDirtyTest, MarkAndQuery) {
  LruCache c(small_options());
  c.insert(1);
  EXPECT_FALSE(c.is_dirty(1));
  c.mark_dirty(1);
  EXPECT_TRUE(c.is_dirty(1));
  EXPECT_EQ(c.dirty_count(), 1u);
  EXPECT_FALSE(c.is_dirty(99));  // absent page is not dirty
}

TEST(LruCacheDirtyTest, MarkDirtyOnAbsentPageThrows) {
  LruCache c(small_options());
  EXPECT_THROW(c.mark_dirty(5), CheckError);
}

TEST(LruCacheDirtyTest, TakeDirtyReturnsSortedAndClears) {
  LruCache c(small_options(8));
  for (PageId p : {5, 1, 9, 3}) {
    c.insert(p);
    c.mark_dirty(p);
  }
  c.insert(7);  // clean
  std::vector<PageId> dirty;
  c.take_dirty_pages(&dirty);
  EXPECT_EQ(dirty, (std::vector<PageId>{1, 3, 5, 9}));
  EXPECT_EQ(c.dirty_count(), 0u);
  EXPECT_FALSE(c.is_dirty(5));
  // The scratch vector is cleared before refilling, so a second drain with
  // the same buffer comes back empty.
  c.take_dirty_pages(&dirty);
  EXPECT_TRUE(dirty.empty());
}

TEST(LruCacheDirtyTest, DoubleMarkCountsOnce) {
  LruCache c(small_options());
  c.insert(4);
  c.mark_dirty(4);
  c.mark_dirty(4);
  EXPECT_EQ(c.dirty_count(), 1u);
  std::vector<PageId> dirty;
  c.take_dirty_pages(&dirty);
  EXPECT_EQ(dirty.size(), 1u);
}

TEST(LruCacheDirtyTest, EvictionReportsDirtyVictim) {
  LruCache c(small_options(2));
  c.insert(1);
  c.mark_dirty(1);
  c.insert(2);
  const auto out = c.insert(3);  // evicts 1 (LRU), which is dirty
  EXPECT_TRUE(out.evicted);
  EXPECT_EQ(out.evicted_page, 1u);
  EXPECT_TRUE(out.evicted_dirty);
  EXPECT_EQ(c.dirty_count(), 0u);  // the dirty page left the cache
}

TEST(LruCacheDirtyTest, CleanVictimReportedClean) {
  LruCache c(small_options(1));
  c.insert(1);
  const auto out = c.insert(2);
  EXPECT_TRUE(out.evicted);
  EXPECT_FALSE(out.evicted_dirty);
}

TEST(LruCacheDirtyTest, ShrinkCollectsDirtyVictims) {
  LruCache c(small_options(4));
  for (PageId p = 1; p <= 4; ++p) c.insert(p);
  c.mark_dirty(1);
  c.mark_dirty(2);
  std::vector<PageId> dirty;
  c.set_capacity(1, &dirty);  // evicts 1, 2, 3 (LRU order)
  EXPECT_EQ(dirty, (std::vector<PageId>{1, 2}));
}

TEST(LruCacheDirtyTest, InvalidateBankCollectsDirtyVictims) {
  LruCache c(small_options(8));
  std::vector<std::pair<PageId, BankIndex>> placed;
  for (PageId p = 0; p < 8; ++p) placed.emplace_back(p, c.insert(p).bank);
  const BankIndex victim = placed[0].second;
  for (auto& [page, bank] : placed) {
    if (bank == victim) c.mark_dirty(page);
  }
  std::vector<PageId> dirty;
  c.invalidate_bank(victim, &dirty);
  std::uint64_t expected = 0;
  for (auto& [page, bank] : placed) expected += bank == victim;
  EXPECT_EQ(dirty.size(), expected);
}

TEST(LruCacheDirtyTest, RecycledFrameDoesNotResurrectDirtyFlag) {
  LruCache c(small_options(1));
  c.insert(1);
  c.mark_dirty(1);
  c.insert(2);  // evicts dirty 1; frame reused for clean 2
  EXPECT_FALSE(c.is_dirty(2));
  std::vector<PageId> dirty;
  c.take_dirty_pages(&dirty);
  EXPECT_TRUE(dirty.empty());
}

// Property: against a naive reference LRU across random operations.
TEST(LruCacheTest, RandomizedAgainstReference) {
  LruCacheOptions opt{64, 8, 16};
  LruCache c(opt);
  std::vector<PageId> ref;  // front = MRU
  Rng rng(5);
  auto ref_lookup = [&](PageId p) {
    for (std::size_t i = 0; i < ref.size(); ++i) {
      if (ref[i] == p) {
        ref.erase(ref.begin() + static_cast<long>(i));
        ref.insert(ref.begin(), p);
        return true;
      }
    }
    return false;
  };
  std::uint64_t capacity = 16;
  for (int iter = 0; iter < 20000; ++iter) {
    if (rng.chance(0.02)) {
      capacity = 1 + rng.uniform_index(32);
      c.set_capacity(capacity);
      while (ref.size() > capacity) ref.pop_back();
      continue;
    }
    const PageId p = rng.uniform_index(64);
    const bool hit = c.lookup(p).has_value();
    const bool ref_hit = ref_lookup(p);
    ASSERT_EQ(hit, ref_hit) << "iter " << iter;
    if (!hit) {
      if (ref.size() == capacity) ref.pop_back();
      ref.insert(ref.begin(), p);
      c.insert(p);
    }
    ASSERT_EQ(c.size(), ref.size());
    ASSERT_EQ(c.lru_order(), ref);
  }
}

}  // namespace
}  // namespace jpm::cache
