#include "jpm/cache/partitioned_lru.h"

#include <gtest/gtest.h>

#include "jpm/util/check.h"
#include "jpm/util/rng.h"

namespace jpm::cache {
namespace {

// Builds a miss curve whose reuse depths follow the given per-unit hit
// counts (unit_frames = 1 for directness).
MissCurve curve_from_hits(const std::vector<std::uint64_t>& hits_per_unit,
                          std::uint64_t max_units, std::uint64_t cold) {
  MissCurve c(1, max_units);
  for (std::uint64_t u = 0; u < hits_per_unit.size(); ++u) {
    for (std::uint64_t k = 0; k < hits_per_unit[u]; ++k) c.add(u + 1);
  }
  for (std::uint64_t k = 0; k < cold; ++k) c.add(kColdAccess);
  return c;
}

TEST(SolverTest, AllocatesEverythingToTheOnlyPartition) {
  const auto c = curve_from_hits({10, 5, 1}, 8, 0);
  const auto sizes = solve_partition_sizes({&c}, {1.0}, 8);
  EXPECT_EQ(sizes, (std::vector<std::uint64_t>{8}));
}

TEST(SolverTest, SizesSumToTotal) {
  const auto a = curve_from_hits({10, 5, 1}, 12, 3);
  const auto b = curve_from_hits({2, 2, 2, 2}, 12, 1);
  const auto c = curve_from_hits({7}, 12, 0);
  const auto sizes = solve_partition_sizes({&a, &b, &c}, {1.0, 1.0, 1.0}, 12);
  EXPECT_EQ(sizes[0] + sizes[1] + sizes[2], 12u);
  for (auto s : sizes) EXPECT_GE(s, 1u);
}

TEST(SolverTest, ExpensiveMissesAttractMemory) {
  // Identical miss curves; partition 1's misses cost 10x. It must receive
  // at least as much memory.
  const auto a = curve_from_hits({10, 8, 6, 4, 2}, 8, 0);
  const auto b = curve_from_hits({10, 8, 6, 4, 2}, 8, 0);
  const auto sizes = solve_partition_sizes({&a, &b}, {1.0, 10.0}, 8);
  EXPECT_GE(sizes[1], sizes[0]);
}

TEST(SolverTest, SteepCurveAttractsMemory) {
  // Partition 0 gains many hits per unit; partition 1 gains almost none.
  // Memory is scarce (6 units for two 4-unit working sets), so the steep
  // curve must win the contested units.
  const auto steep = curve_from_hits({100, 90, 80, 70}, 8, 0);
  const auto flat = curve_from_hits({1, 1, 1, 1}, 8, 0);
  const auto sizes = solve_partition_sizes({&steep, &flat}, {1.0, 1.0}, 6);
  EXPECT_GT(sizes[0], sizes[1]);
  EXPECT_EQ(sizes[0], 4u);
}

TEST(SolverTest, OptimalAgainstExhaustiveSearch) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<MissCurve> curves;
    std::vector<const MissCurve*> ptrs;
    std::vector<double> costs;
    const std::uint64_t total = 10;
    for (int d = 0; d < 3; ++d) {
      std::vector<std::uint64_t> hits;
      for (std::uint64_t u = 0; u < total; ++u) {
        hits.push_back(rng.uniform_index(20));
      }
      curves.push_back(curve_from_hits(hits, total, rng.uniform_index(5)));
      costs.push_back(0.1 + rng.uniform() * 5.0);
    }
    for (const auto& c : curves) ptrs.push_back(&c);
    const auto sizes = solve_partition_sizes(ptrs, costs, total);

    auto cost_of = [&](std::uint64_t a, std::uint64_t b, std::uint64_t c) {
      return costs[0] * static_cast<double>(curves[0].misses_at(a)) +
             costs[1] * static_cast<double>(curves[1].misses_at(b)) +
             costs[2] * static_cast<double>(curves[2].misses_at(c));
    };
    const double got = cost_of(sizes[0], sizes[1], sizes[2]);
    double best = std::numeric_limits<double>::infinity();
    for (std::uint64_t a = 1; a + 2 <= total; ++a) {
      for (std::uint64_t b = 1; a + b + 1 <= total; ++b) {
        best = std::min(best, cost_of(a, b, total - a - b));
      }
    }
    EXPECT_NEAR(got, best, 1e-9) << "trial " << trial;
  }
}

TEST(SolverTest, RejectsBadInputs) {
  const auto c = curve_from_hits({1}, 4, 0);
  EXPECT_THROW(solve_partition_sizes(std::vector<const MissCurve*>{},
                                     std::vector<double>{}, 4),
               CheckError);
  EXPECT_THROW(solve_partition_sizes({&c}, std::vector<double>{1.0, 2.0}, 4),
               CheckError);
  EXPECT_THROW(solve_partition_sizes({&c, &c, &c},
                                     std::vector<double>{1, 1, 1}, 2),
               CheckError);
}

PartitionedLruOptions small_options() {
  return PartitionedLruOptions{2, 16, 2};  // 8 units of 2 frames
}

TEST(PartitionedLruTest, StartsWithEqualSplit) {
  PartitionedLruCache cache(small_options());
  EXPECT_EQ(cache.partition_units(0), 4u);
  EXPECT_EQ(cache.partition_units(1), 4u);
  EXPECT_EQ(cache.total_units(), 8u);
}

TEST(PartitionedLruTest, PartitionsAreIndependentCaches) {
  PartitionedLruCache cache(small_options());
  EXPECT_FALSE(cache.access(0, 42));  // miss, installs
  EXPECT_TRUE(cache.access(0, 42));   // hit
  EXPECT_FALSE(cache.access(1, 42));  // other partition: its own miss
  EXPECT_EQ(cache.epoch_misses(0), 1u);
  EXPECT_EQ(cache.epoch_misses(1), 1u);
}

TEST(PartitionedLruTest, RebalanceMovesMemoryTowardCostlyPartition) {
  PartitionedLruCache cache(small_options());
  Rng rng(9);
  // Both partitions see a working set of 12 frames (6 units) — too big for
  // the initial 4 units each.
  for (int i = 0; i < 4000; ++i) {
    cache.access(0, rng.uniform_index(12));
    cache.access(1, rng.uniform_index(12));
  }
  cache.rebalance({1.0, 20.0});  // partition 1 misses are 20x costlier
  EXPECT_GT(cache.partition_units(1), cache.partition_units(0));
  EXPECT_EQ(cache.partition_units(0) + cache.partition_units(1), 8u);
  // Epoch stats reset.
  EXPECT_EQ(cache.epoch_misses(0), 0u);
  EXPECT_EQ(cache.epoch_curve(0).total_accesses(), 0u);
}

TEST(PartitionedLruTest, RebalanceImprovesWeightedMisses) {
  // Partition 0's working set fits in 2 units; partition 1 needs 6. Equal
  // split (4/4) starves partition 1; after a rebalance with equal costs the
  // solver should shift units to it and cut its misses.
  PartitionedLruCache cache(small_options());
  Rng rng(11);
  auto drive = [&](int n) {
    std::uint64_t misses = 0;
    for (int i = 0; i < n; ++i) {
      misses += !cache.access(0, rng.uniform_index(4));
      misses += !cache.access(1, rng.uniform_index(12));
    }
    return misses;
  };
  drive(4000);
  const std::uint64_t before = cache.epoch_misses(1);
  cache.rebalance({1.0, 1.0});
  EXPECT_GE(cache.partition_units(1), 5u);
  drive(4000);
  EXPECT_LT(cache.epoch_misses(1), before / 2);
}

TEST(PartitionedLruTest, RejectsBadGeometry) {
  EXPECT_THROW(PartitionedLruCache({0, 16, 2}), CheckError);
  EXPECT_THROW(PartitionedLruCache({2, 15, 2}), CheckError);  // ragged
  EXPECT_THROW(PartitionedLruCache({9, 16, 2}), CheckError);  // > units
  PartitionedLruCache ok(small_options());
  EXPECT_THROW(ok.access(5, 1), CheckError);
}

}  // namespace
}  // namespace jpm::cache
