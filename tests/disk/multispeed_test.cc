#include "jpm/disk/multispeed.h"

#include <gtest/gtest.h>

#include <cmath>

#include "jpm/util/check.h"

namespace jpm::disk {
namespace {

constexpr std::uint64_t kPage = 256 * kKiB;

MultiSpeedParams params() { return drpm_params(DiskParams{}); }

TEST(DrpmParamsTest, PowerLawAndRates) {
  const auto p = params();
  ASSERT_EQ(p.levels.size(), 4u);
  EXPECT_DOUBLE_EQ(p.levels[0].idle_w, DiskParams{}.idle_w);
  // Power above standby strictly decreases; rates scale linearly.
  for (std::size_t i = 1; i < p.levels.size(); ++i) {
    EXPECT_LT(p.levels[i].idle_w, p.levels[i - 1].idle_w);
    EXPECT_LT(p.levels[i].media_rate_bytes_per_s,
              p.levels[i - 1].media_rate_bytes_per_s);
    EXPECT_GT(p.levels[i].rotation_s, p.levels[i - 1].rotation_s);
    EXPECT_GT(p.levels[i].idle_w, DiskParams{}.standby_w);
  }
  // Half speed: (0.5)^2.8 ~ 14% of the manageable idle power.
  EXPECT_NEAR(p.levels[2].idle_w,
              0.9 + (7.5 - 0.9) * std::pow(0.5, 2.8), 1e-9);
}

TEST(DrpmParamsTest, RejectsBadFractions) {
  EXPECT_THROW(drpm_params(DiskParams{}, {0.5}), CheckError);        // != 1.0
  EXPECT_THROW(drpm_params(DiskParams{}, {1.0, 1.0}), CheckError);   // flat
  EXPECT_THROW(drpm_params(DiskParams{}, {1.0, 0.5, 0.7}), CheckError);
  EXPECT_THROW(drpm_params(DiskParams{}, {}), CheckError);
}

TEST(MultiSpeedDiskTest, StepsDownThroughLevelsWhenIdle) {
  MultiSpeedDisk d(params(), 0.0);
  EXPECT_EQ(d.current_level(), 0u);
  d.advance(10.5);  // one step_down_idle_s elapsed (10 s) + step time
  EXPECT_EQ(d.current_level(), 1u);
  d.advance(1000.0);
  EXPECT_EQ(d.current_level(), 3u);  // bottoms out at the lowest level
  EXPECT_EQ(d.shutdowns(), 3u);      // three downshifts
}

TEST(MultiSpeedDiskTest, ServesAtReducedSpeedWithoutCliff) {
  MultiSpeedDisk d(params(), 0.0);
  d.advance(1000.0);  // settle at the lowest level
  const auto r = d.read(1000.0, 77, kPage);
  // Slower than full speed but nowhere near a 10 s spin-up.
  const ServiceModel full(DiskParams{});
  EXPECT_GT(r.latency_s, full.service_time_s(kPage, false));
  EXPECT_LT(r.latency_s, 0.5);
  EXPECT_EQ(d.current_level(), 3u);  // a single request does not force full
}

TEST(MultiSpeedDiskTest, HighUtilizationForcesFullSpeed) {
  auto p = params();
  p.util_high_water = 0.05;
  MultiSpeedDisk d(p, 0.0);
  d.advance(1000.0);
  double t = 1000.0;
  for (int i = 0; i < 200; ++i) {
    d.read(t, static_cast<std::uint64_t>(i) * 10, kPage);
    t += 0.02;
  }
  EXPECT_EQ(d.current_level(), 0u);
  EXPECT_GT(d.total_shifts(), 3u);  // down and back up
}

TEST(MultiSpeedDiskTest, EnergyDropsWithIdlenessButStaysAboveStandby) {
  MultiSpeedDisk idle_disk(params(), 0.0);
  idle_disk.finalize(10000.0);
  const auto idle_e = idle_disk.energy();

  // Never allowed to downshift: an always-full-speed reference.
  MultiSpeedParams full_only = params();
  full_only.levels.resize(1);
  MultiSpeedDisk full_disk(full_only, 0.0);
  full_disk.finalize(10000.0);
  const auto full_e = full_disk.energy();

  EXPECT_LT(idle_e.total_j(), 0.5 * full_e.total_j());
  EXPECT_GT(idle_e.total_j(), DiskParams{}.standby_w * 10000.0);
}

TEST(MultiSpeedDiskTest, EnergyBreakdownComponentsConsistent) {
  MultiSpeedDisk d(params(), 0.0);
  d.read(1.0, 5, kPage);
  d.advance(500.0);
  d.read(500.0, 900, kPage);
  d.finalize(1000.0);
  const auto e = d.energy();
  EXPECT_NEAR(e.standby_base_j, 0.9 * 1000.0, 1e-6);
  EXPECT_GT(e.static_j, 0.0);
  EXPECT_GT(e.transition_j, 0.0);  // downshifts happened between requests
  EXPECT_NEAR(e.dynamic_j, DiskParams{}.dynamic_power_w() * d.busy_time_s(),
              1e-9);
}

TEST(MultiSpeedDiskTest, MidRunSnapshotMonotone) {
  MultiSpeedDisk d(params(), 0.0);
  d.read(1.0, 5, kPage);
  const auto snap = d.energy_through(100.0);
  d.read(200.0, 6, kPage);
  d.finalize(400.0);
  const auto total = d.energy();
  EXPECT_GE(total.total_j(), snap.total_j());
  EXPECT_GE(total.static_j, snap.static_j);
}

TEST(MultiSpeedDiskTest, SequentialDetectionStillWorks) {
  MultiSpeedDisk d(params(), 0.0);
  d.read(1.0, 10, kPage);
  const auto r = d.read(1.1, 11, kPage);
  EXPECT_TRUE(r.sequential);
}

}  // namespace
}  // namespace jpm::disk
