#include "jpm/disk/disk_queue.h"

#include <gtest/gtest.h>

#include <cmath>

namespace jpm::disk {
namespace {

constexpr std::uint64_t kPage = 256 * kKiB;

DiskParams params() { return DiskParams{}; }

TEST(DiskQueueTest, FirstReadPaysPositioning) {
  FixedTimeout policy(11.7);
  Disk d(params(), &policy, 0.0);
  const auto r = d.read(1.0, 1000, kPage);
  EXPECT_FALSE(r.sequential);
  EXPECT_NEAR(r.latency_s, ServiceModel(params()).service_time_s(kPage, false),
              1e-12);
  EXPECT_FALSE(r.triggered_spin_up);
}

TEST(DiskQueueTest, SequentialRunDetected) {
  FixedTimeout policy(11.7);
  Disk d(params(), &policy, 0.0);
  d.read(1.0, 1000, kPage);
  const auto r = d.read(1.1, 1001, kPage);
  EXPECT_TRUE(r.sequential);
  EXPECT_NEAR(r.latency_s, ServiceModel(params()).service_time_s(kPage, true),
              1e-12);
}

TEST(DiskQueueTest, FcfsQueueingDelaysBackToBack) {
  FixedTimeout policy(11.7);
  Disk d(params(), &policy, 0.0);
  const auto a = d.read(1.0, 10, kPage);
  const auto b = d.read(1.0, 9999, kPage);  // arrives while a is in service
  EXPECT_DOUBLE_EQ(b.start_s, a.finish_s);
  EXPECT_GT(b.latency_s, a.latency_s);
}

TEST(DiskQueueTest, SpinsDownAfterTimeout) {
  FixedTimeout policy(10.0);
  Disk d(params(), &policy, 0.0);
  d.read(1.0, 10, kPage);
  d.advance(5.0);
  EXPECT_EQ(d.state(), DiskState::kOn);
  d.advance(50.0);
  EXPECT_EQ(d.state(), DiskState::kStandby);
  EXPECT_EQ(d.shutdowns(), 1u);
}

TEST(DiskQueueTest, SpinDownBackdatedToExpiry) {
  FixedTimeout policy(10.0);
  Disk d(params(), &policy, 0.0);
  const auto r = d.read(1.0, 10, kPage);
  d.advance(1000.0);
  d.finalize(1000.0);
  // On-time: [0, finish + 10s timeout]; everything after is standby.
  EXPECT_NEAR(d.energy().static_j,
              params().static_power_w() * (r.finish_s + 10.0), 1e-6);
}

TEST(DiskQueueTest, WakeOnDemandDelaysBySpinUp) {
  FixedTimeout policy(10.0);
  Disk d(params(), &policy, 0.0);
  const auto first = d.read(1.0, 10, kPage);
  const double t2 = 100.0;
  const auto r = d.read(t2, 2000, kPage);
  EXPECT_TRUE(r.triggered_spin_up);
  EXPECT_NEAR(r.start_s, t2 + params().spin_up_s, 1e-12);
  EXPECT_GT(r.latency_s, params().spin_up_s);
  (void)first;
}

TEST(DiskQueueTest, RequestDuringSpinUpQueuesBehindIt) {
  FixedTimeout policy(10.0);
  Disk d(params(), &policy, 0.0);
  d.read(1.0, 10, kPage);
  const auto a = d.read(100.0, 2000, kPage);  // wakes the disk
  const auto b = d.read(101.0, 3000, kPage);  // arrives mid spin-up
  EXPECT_TRUE(a.triggered_spin_up);
  EXPECT_FALSE(b.triggered_spin_up);
  EXPECT_DOUBLE_EQ(b.start_s, a.finish_s);
  EXPECT_GT(b.latency_s, 0.5);  // a paper-grade "long latency" request
}

TEST(DiskQueueTest, AdaptivePolicyNotifiedOnSpinUp) {
  AdaptiveTimeout policy;  // starts at 10 s
  Disk d(params(), &policy, 0.0);
  d.read(1.0, 10, kPage);
  d.read(100.0, 2000, kPage);  // idle ~99 s, delay 10 s -> ratio > 0.05
  EXPECT_DOUBLE_EQ(policy.timeout_s(), 15.0);
}

TEST(DiskQueueTest, NeverTimeoutKeepsDiskOn) {
  NeverTimeout policy;
  Disk d(params(), &policy, 0.0);
  d.read(1.0, 10, kPage);
  d.advance(1e6);
  EXPECT_EQ(d.state(), DiskState::kOn);
  EXPECT_EQ(d.shutdowns(), 0u);
}

TEST(DiskQueueTest, EnergyAccountingMatchesPaperModel) {
  FixedTimeout policy(10.0);
  DiskParams p = params();
  Disk d(p, &policy, 0.0);
  const auto r1 = d.read(1.0, 10, kPage);
  // Idle 10 s -> spin down at r1.finish + 10. Wake at 500.
  const auto r2 = d.read(500.0, 5000, kPage);
  d.finalize(1000.0);
  const auto e = d.energy();
  EXPECT_NEAR(e.standby_base_j, p.standby_w * 1000.0, 1e-6);
  // Two round trips: after r1's idle timeout and again after r2's.
  EXPECT_NEAR(e.transition_j, 2.0 * p.transition_j, 1e-9);
  const double on_time =
      (r1.finish_s + 10.0 - 0.0) + (r2.finish_s + 10.0 - (500.0 + p.spin_up_s));
  EXPECT_NEAR(e.static_j, p.static_power_w() * on_time, 1e-6);
  EXPECT_NEAR(e.dynamic_j,
              p.dynamic_power_w() * d.busy_time_s(), 1e-9);
}

TEST(DiskQueueTest, MidRunEnergySnapshotIsCumulative) {
  FixedTimeout policy(10.0);
  Disk d(params(), &policy, 0.0);
  d.read(1.0, 10, kPage);
  const auto snap = d.energy_through(100.0);
  d.read(200.0, 99, kPage);
  d.finalize(300.0);
  const auto total = d.energy();
  EXPECT_GT(total.standby_base_j, snap.standby_base_j);
  EXPECT_GE(total.static_j, snap.static_j);
  EXPECT_GE(total.transition_j, snap.transition_j);
}

TEST(DiskQueueTest, UtilizationMatchesBusyFraction) {
  NeverTimeout policy;
  Disk d(params(), &policy, 0.0);
  double t = 0.0;
  for (int i = 0; i < 100; ++i) {
    t += 1.0;
    d.read(t, static_cast<std::uint64_t>(i) * 100, kPage);
  }
  d.finalize(t + 1.0);
  const double expected =
      100.0 * ServiceModel(params()).service_time_s(kPage, false);
  EXPECT_NEAR(d.busy_time_s(), expected, 1e-9);
}

}  // namespace
}  // namespace jpm::disk
