#include "jpm/disk/disk_power.h"

#include <gtest/gtest.h>

#include "jpm/util/check.h"

namespace jpm::disk {
namespace {

TEST(DiskPowerMeterTest, StartsOnWithNoEnergy) {
  DiskPowerMeter m(DiskParams{}, 0.0);
  EXPECT_EQ(m.state(), DiskState::kOn);
  EXPECT_EQ(m.shutdowns(), 0u);
  EXPECT_EQ(m.breakdown().total_j(), 0.0);
}

TEST(DiskPowerMeterTest, FullTransitionCycle) {
  DiskParams p;
  DiskPowerMeter m(p, 0.0);
  m.spin_down(100.0);
  EXPECT_EQ(m.state(), DiskState::kStandby);
  m.begin_spin_up(200.0);
  EXPECT_EQ(m.state(), DiskState::kSpinningUp);
  m.complete_spin_up(210.0);
  EXPECT_EQ(m.state(), DiskState::kOn);
  m.finalize(300.0);

  const auto e = m.breakdown();
  EXPECT_NEAR(e.standby_base_j, p.standby_w * 300.0, 1e-9);
  EXPECT_NEAR(e.static_j, p.static_power_w() * (100.0 + 90.0), 1e-9);
  EXPECT_NEAR(e.transition_j, p.transition_j, 1e-9);
  EXPECT_EQ(m.shutdowns(), 1u);
}

TEST(DiskPowerMeterTest, IllegalTransitionsThrow) {
  DiskPowerMeter m(DiskParams{}, 0.0);
  EXPECT_THROW(m.begin_spin_up(1.0), CheckError);   // not standby
  EXPECT_THROW(m.complete_spin_up(1.0), CheckError);
  m.spin_down(10.0);
  EXPECT_THROW(m.spin_down(20.0), CheckError);      // already standby
}

TEST(DiskPowerMeterTest, BusyTimeDrivesDynamicEnergy) {
  DiskParams p;
  DiskPowerMeter m(p, 0.0);
  m.add_busy_time(12.0);
  m.add_busy_time(3.0);
  m.finalize(100.0);
  EXPECT_NEAR(m.breakdown().dynamic_j, p.dynamic_power_w() * 15.0, 1e-9);
}

TEST(DiskPowerMeterTest, RepeatedFinalizeIsMonotoneIdempotent) {
  DiskParams p;
  DiskPowerMeter m(p, 0.0);
  m.finalize(50.0);
  const double first = m.breakdown().static_j;
  m.finalize(50.0);
  EXPECT_DOUBLE_EQ(m.breakdown().static_j, first);
  m.finalize(80.0);
  EXPECT_NEAR(m.breakdown().static_j - first, p.static_power_w() * 30.0,
              1e-9);
}

TEST(DiskPowerMeterTest, NoStaticEnergyWhileStandby) {
  DiskParams p;
  DiskPowerMeter m(p, 0.0);
  m.spin_down(10.0);
  m.finalize(1000.0);
  EXPECT_NEAR(m.breakdown().static_j, p.static_power_w() * 10.0, 1e-9);
}

}  // namespace
}  // namespace jpm::disk
