#include "jpm/disk/disk_model.h"

#include <gtest/gtest.h>

#include "jpm/util/units.h"

namespace jpm::disk {
namespace {

TEST(DiskParamsTest, PaperDerivedConstants) {
  DiskParams p;
  EXPECT_DOUBLE_EQ(p.static_power_w(), 6.6);   // 7.5 - 0.9
  EXPECT_DOUBLE_EQ(p.dynamic_power_w(), 5.0);  // 12.5 - 7.5
  EXPECT_NEAR(p.break_even_s(), 11.7, 0.05);   // 77.5 / 6.6
}

TEST(DiskParamsTest, TimeoutParamsViewMatches) {
  DiskParams p;
  const auto tp = p.timeout_params();
  EXPECT_DOUBLE_EQ(tp.static_power_w, p.static_power_w());
  EXPECT_DOUBLE_EQ(tp.break_even_s, p.break_even_s());
  EXPECT_DOUBLE_EQ(tp.transition_s, p.spin_up_s);
}

TEST(ServiceModelTest, SequentialSkipsPositioning) {
  DiskParams p;
  ServiceModel svc(p);
  const std::uint64_t bytes = 256 * kKiB;
  const double seq = svc.service_time_s(bytes, true);
  const double rnd = svc.service_time_s(bytes, false);
  EXPECT_NEAR(rnd - seq, p.positioning_s(), 1e-12);
  EXPECT_NEAR(seq, static_cast<double>(bytes) / p.media_rate_bytes_per_s,
              1e-12);
}

TEST(ServiceModelTest, BandwidthGrowsWithRequestSize) {
  // The paper's DiskSim-derived bandwidth table: bigger random requests
  // amortize positioning and approach the media rate.
  ServiceModel svc(DiskParams{});
  double prev = 0.0;
  for (std::uint64_t sz = 4 * kKiB; sz <= 64 * kMiB; sz *= 4) {
    const double bw = svc.bandwidth_bytes_per_s(sz);
    EXPECT_GT(bw, prev);
    prev = bw;
  }
  EXPECT_LT(prev, DiskParams{}.media_rate_bytes_per_s);
}

TEST(ServiceModelTest, RandomAccessRateNearPaperTenMBs) {
  // The paper quotes ~10.4 MB/s average data rate for its access mix; a
  // random read of ~128-256 kB lands in that neighborhood.
  ServiceModel svc(DiskParams{});
  const double bw = svc.bandwidth_bytes_per_s(128 * kKiB);
  EXPECT_GT(bw, 5e6);
  EXPECT_LT(bw, 20e6);
}

}  // namespace
}  // namespace jpm::disk
