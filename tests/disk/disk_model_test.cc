#include "jpm/disk/disk_model.h"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <string>

#include "jpm/util/units.h"

namespace jpm::disk {
namespace {

TEST(DiskParamsTest, PaperDerivedConstants) {
  DiskParams p;
  EXPECT_DOUBLE_EQ(p.static_power_w(), 6.6);   // 7.5 - 0.9
  EXPECT_DOUBLE_EQ(p.dynamic_power_w(), 5.0);  // 12.5 - 7.5
  EXPECT_NEAR(p.break_even_s(), 11.7, 0.05);   // 77.5 / 6.6
}

TEST(DiskParamsTest, TimeoutParamsViewMatches) {
  DiskParams p;
  const auto tp = p.timeout_params();
  EXPECT_DOUBLE_EQ(tp.static_power_w, p.static_power_w());
  EXPECT_DOUBLE_EQ(tp.break_even_s, p.break_even_s());
  EXPECT_DOUBLE_EQ(tp.transition_s, p.spin_up_s);
}

TEST(DiskParamsValidateTest, AcceptsDefaultsAndPresets) {
  EXPECT_NO_THROW(DiskParams{}.validate());
  EXPECT_NO_THROW(presets::server_ide().validate());
  EXPECT_NO_THROW(presets::laptop_25().validate());
  EXPECT_NO_THROW(presets::ssd_like().validate());
}

TEST(DiskParamsValidateTest, RejectsIdleBelowStandbyNamingBreakEven) {
  // idle_w <= standby_w makes the manageable static power nonpositive and
  // break_even_s() divide by zero / go negative — the exact corruption the
  // validation exists to catch.
  DiskParams p;
  p.idle_w = p.standby_w;
  try {
    p.validate();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("idle_w"), std::string::npos);
    EXPECT_NE(what.find("break_even"), std::string::npos);
    // The message echoes the offending parameter set.
    EXPECT_NE(what.find("standby"), std::string::npos);
  }
}

TEST(DiskParamsValidateTest, RejectsOtherCorruptParameters) {
  DiskParams p;
  p.transition_j = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = DiskParams{};
  p.spin_up_s = -1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = DiskParams{};
  p.active_w = p.idle_w - 1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = DiskParams{};
  p.media_rate_bytes_per_s = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = DiskParams{};
  p.avg_seek_s = -1e-3;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = DiskParams{};
  p.idle_w = std::numeric_limits<double>::infinity();
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(ServiceModelTest, SequentialSkipsPositioning) {
  DiskParams p;
  ServiceModel svc(p);
  const std::uint64_t bytes = 256 * kKiB;
  const double seq = svc.service_time_s(bytes, true);
  const double rnd = svc.service_time_s(bytes, false);
  EXPECT_NEAR(rnd - seq, p.positioning_s(), 1e-12);
  EXPECT_NEAR(seq, static_cast<double>(bytes) / p.media_rate_bytes_per_s,
              1e-12);
}

TEST(ServiceModelTest, BandwidthGrowsWithRequestSize) {
  // The paper's DiskSim-derived bandwidth table: bigger random requests
  // amortize positioning and approach the media rate.
  ServiceModel svc(DiskParams{});
  double prev = 0.0;
  for (std::uint64_t sz = 4 * kKiB; sz <= 64 * kMiB; sz *= 4) {
    const double bw = svc.bandwidth_bytes_per_s(sz);
    EXPECT_GT(bw, prev);
    prev = bw;
  }
  EXPECT_LT(prev, DiskParams{}.media_rate_bytes_per_s);
}

TEST(ServiceModelTest, RandomAccessRateNearPaperTenMBs) {
  // The paper quotes ~10.4 MB/s average data rate for its access mix; a
  // random read of ~128-256 kB lands in that neighborhood.
  ServiceModel svc(DiskParams{});
  const double bw = svc.bandwidth_bytes_per_s(128 * kKiB);
  EXPECT_GT(bw, 5e6);
  EXPECT_LT(bw, 20e6);
}

}  // namespace
}  // namespace jpm::disk
