#include "jpm/disk/offline.h"

#include <gtest/gtest.h>

#include <cmath>

#include "jpm/pareto/pareto.h"
#include "jpm/util/check.h"
#include "jpm/util/rng.h"

namespace jpm::disk {
namespace {

const pareto::DiskTimeoutParams kDisk{6.6, 11.7, 10.0};

TEST(OfflineTest, OracleCapsEveryGapAtBreakEven) {
  const std::vector<double> gaps{1.0, 11.7, 100.0};
  const double expected = 6.6 * (1.0 + 11.7 + 11.7);
  EXPECT_NEAR(oracle_energy_j(gaps, kDisk), expected, 1e-9);
}

TEST(OfflineTest, FixedTimeoutShortGapStaysOn) {
  EXPECT_NEAR(fixed_timeout_energy_j({5.0}, 10.0, kDisk), 6.6 * 5.0, 1e-9);
}

TEST(OfflineTest, FixedTimeoutLongGapPaysTimeoutPlusTransition) {
  EXPECT_NEAR(fixed_timeout_energy_j({100.0}, 10.0, kDisk),
              6.6 * (10.0 + 11.7), 1e-9);
}

TEST(OfflineTest, NeverTimeoutPaysFullIdleness) {
  EXPECT_NEAR(fixed_timeout_energy_j({100.0, 3.0}, pareto::kNeverTimeout,
                                     kDisk),
              6.6 * 103.0, 1e-9);
}

// The classical result the paper leans on: timeout = break-even time is
// 2-competitive — never more than twice the oracle, for ANY gap sequence.
TEST(OfflineTest, BreakEvenTimeoutIsTwoCompetitive) {
  Rng rng(33);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> gaps;
    for (int i = 0; i < 500; ++i) {
      // Adversarial-ish mixture: mass right around the break-even time.
      const double g = rng.chance(0.5) ? rng.uniform(0.0, 2.5 * 11.7)
                                       : rng.exponential(20.0);
      gaps.push_back(g);
    }
    const double oracle = oracle_energy_j(gaps, kDisk);
    const double two_t = fixed_timeout_energy_j(gaps, 11.7, kDisk);
    EXPECT_LE(two_t, 2.0 * oracle + 1e-6) << "trial " << trial;
    EXPECT_GE(two_t, oracle - 1e-9);
  }
}

// eq. 5 empirically: over Pareto gaps, alpha * t_be beats every other fixed
// timeout (within sampling noise).
TEST(OfflineTest, ParetoOptimalTimeoutNearBestFixed) {
  const pareto::ParetoDistribution d(1.6, 0.5);
  Rng rng(41);
  std::vector<double> gaps;
  for (int i = 0; i < 200000; ++i) gaps.push_back(d.sample(rng));
  const double t_star = pareto::optimal_timeout(d, kDisk);
  const double e_star = fixed_timeout_energy_j(gaps, t_star, kDisk);
  for (double t = 1.0; t < 300.0; t *= 1.5) {
    EXPECT_GE(fixed_timeout_energy_j(gaps, t, kDisk), e_star * 0.995)
        << "t=" << t;
  }
}

TEST(OfflineTest, AdaptivePolicyBetweenOracleAndNever) {
  const pareto::ParetoDistribution d(1.4, 0.5);
  Rng rng(43);
  std::vector<double> gaps;
  for (int i = 0; i < 50000; ++i) gaps.push_back(d.sample(rng));
  const double oracle = oracle_energy_j(gaps, kDisk);
  const double adaptive =
      adaptive_timeout_energy_j(gaps, AdaptiveTimeoutConfig{}, kDisk);
  const double never =
      fixed_timeout_energy_j(gaps, pareto::kNeverTimeout, kDisk);
  EXPECT_GE(adaptive, oracle);
  EXPECT_LT(adaptive, never);
}

TEST(OfflineTest, PredictiveBeatsFixedOnBimodalGaps) {
  // Alternating sessions: long runs of short gaps, then long runs of long
  // gaps — the regime the session-predictive policy is built for. A fixed
  // 2T timeout pays the timeout on every long gap; the predictor spins down
  // immediately once it has seen a few.
  std::vector<double> gaps;
  for (int session = 0; session < 50; ++session) {
    for (int i = 0; i < 20; ++i) gaps.push_back(1.0);
    for (int i = 0; i < 20; ++i) gaps.push_back(120.0);
  }
  const double predictive = predictive_timeout_energy_j(gaps, kDisk, 0.5);
  const double two_t = fixed_timeout_energy_j(gaps, 11.7, kDisk);
  EXPECT_LT(predictive, two_t);
  EXPECT_GE(predictive, oracle_energy_j(gaps, kDisk));
}

TEST(OfflineTest, RandomizedBeatsTwoCompetitiveOnAdversarialGaps) {
  // Gaps just past the break-even time are the deterministic policy's worst
  // case (cost 2x oracle); the randomized rent-or-buy policy averages
  // e/(e-1) ~ 1.58 there.
  const std::vector<double> gaps(5000, 11.7 * 1.001);
  const double oracle = oracle_energy_j(gaps, kDisk);
  const double two_t = fixed_timeout_energy_j(gaps, 11.7, kDisk);
  const double randomized = randomized_timeout_energy_j(gaps, kDisk, 3);
  EXPECT_NEAR(two_t / oracle, 2.0, 0.01);
  EXPECT_NEAR(randomized / oracle, std::exp(1.0) / (std::exp(1.0) - 1.0),
              0.05);
  EXPECT_LT(randomized, two_t);
}

TEST(OfflineTest, RandomizedStaysWithinItsBoundOnParetoGaps) {
  const pareto::ParetoDistribution d(1.5, 1.0);
  Rng rng(55);
  std::vector<double> gaps;
  for (int i = 0; i < 50000; ++i) gaps.push_back(d.sample(rng));
  const double ratio = competitive_ratio(
      randomized_timeout_energy_j(gaps, kDisk, 4),
      oracle_energy_j(gaps, kDisk));
  EXPECT_LE(ratio, std::exp(1.0) / (std::exp(1.0) - 1.0) + 0.05);
  EXPECT_GE(ratio, 1.0);
}

TEST(OfflineTest, CompetitiveRatioBasics) {
  EXPECT_DOUBLE_EQ(competitive_ratio(20.0, 10.0), 2.0);
  EXPECT_THROW(competitive_ratio(1.0, 0.0), CheckError);
}

TEST(OfflineTest, RejectsNegativeGapAndTimeout) {
  EXPECT_THROW(fixed_timeout_energy_j({1.0}, -1.0, kDisk), CheckError);
  EXPECT_THROW(oracle_energy_j({-1.0}, kDisk), CheckError);
}

}  // namespace
}  // namespace jpm::disk
