#include "jpm/disk/timeout_policy.h"

#include <gtest/gtest.h>

#include <cmath>

#include "jpm/util/check.h"

namespace jpm::disk {
namespace {

TEST(FixedTimeoutTest, HoldsValue) {
  FixedTimeout p(11.7);
  EXPECT_DOUBLE_EQ(p.timeout_s(), 11.7);
  p.on_spin_up(100.0, 10.0);
  EXPECT_DOUBLE_EQ(p.timeout_s(), 11.7);
}

TEST(FixedTimeoutTest, RejectsNegative) {
  EXPECT_THROW(FixedTimeout(-1.0), CheckError);
}

TEST(AdaptiveTimeoutTest, PaperDefaults) {
  AdaptiveTimeout p;
  EXPECT_DOUBLE_EQ(p.timeout_s(), 10.0);
}

TEST(AdaptiveTimeoutTest, CostlySpinUpRaisesTimeout) {
  AdaptiveTimeout p;
  // Spin-up delay 10 s after only 20 s idle: ratio 0.5 > 0.05 -> +5 s.
  p.on_spin_up(20.0, 10.0);
  EXPECT_DOUBLE_EQ(p.timeout_s(), 15.0);
}

TEST(AdaptiveTimeoutTest, CheapSpinUpLowersTimeout) {
  AdaptiveTimeout p;
  // 10 s delay after 1000 s idle: ratio 0.01 <= 0.05 -> -5 s.
  p.on_spin_up(1000.0, 10.0);
  EXPECT_DOUBLE_EQ(p.timeout_s(), 5.0);
}

TEST(AdaptiveTimeoutTest, ClampsToConfiguredRange) {
  AdaptiveTimeout p;
  for (int i = 0; i < 10; ++i) p.on_spin_up(1000.0, 10.0);
  EXPECT_DOUBLE_EQ(p.timeout_s(), 5.0);  // floor
  for (int i = 0; i < 10; ++i) p.on_spin_up(20.0, 10.0);
  EXPECT_DOUBLE_EQ(p.timeout_s(), 30.0);  // ceiling
}

TEST(AdaptiveTimeoutTest, BoundaryRatioDecreases) {
  AdaptiveTimeout p;
  // Exactly 5% is acceptable per the paper ("when the spin-up delay
  // exceeds 0.05 of the idle time ... increases").
  p.on_spin_up(200.0, 10.0);
  EXPECT_DOUBLE_EQ(p.timeout_s(), 5.0);
}

TEST(AdaptiveTimeoutTest, RejectsBadConfig) {
  AdaptiveTimeoutConfig c;
  c.min_s = 0.0;
  EXPECT_THROW(AdaptiveTimeout{c}, CheckError);
  c = {};
  c.initial_s = 100.0;  // above max
  EXPECT_THROW(AdaptiveTimeout{c}, CheckError);
}

TEST(DynamicTimeoutTest, SetAndGet) {
  DynamicTimeout p(11.7);
  EXPECT_DOUBLE_EQ(p.timeout_s(), 11.7);
  p.set_timeout(42.0);
  EXPECT_DOUBLE_EQ(p.timeout_s(), 42.0);
  p.set_timeout(pareto::kNeverTimeout);
  EXPECT_TRUE(std::isinf(p.timeout_s()));
}

TEST(NeverTimeoutTest, Infinite) {
  NeverTimeout p;
  EXPECT_TRUE(std::isinf(p.timeout_s()));
}

TEST(PredictiveTimeoutTest, StartsConservative) {
  PredictiveTimeout p(11.7);
  // No observations yet: prediction 0 <= t_be, so never spin down.
  EXPECT_TRUE(std::isinf(p.timeout_s()));
}

TEST(PredictiveTimeoutTest, LongIdlenessUnlocksImmediateSpinDown) {
  PredictiveTimeout p(11.7, 0.5);
  p.on_idle_end(100.0);
  p.on_idle_end(100.0);
  EXPECT_DOUBLE_EQ(p.timeout_s(), 0.0);
}

TEST(PredictiveTimeoutTest, ShortIdlenessLocksSpinDownOut) {
  PredictiveTimeout p(11.7, 0.5);
  p.on_idle_end(100.0);
  p.on_idle_end(100.0);
  ASSERT_DOUBLE_EQ(p.timeout_s(), 0.0);
  for (int i = 0; i < 10; ++i) p.on_spin_up(1.0, 10.0);
  EXPECT_TRUE(std::isinf(p.timeout_s()));
}

TEST(PredictiveTimeoutTest, EwmaConvergesToObservedMean) {
  PredictiveTimeout p(11.7, 0.25);
  for (int i = 0; i < 100; ++i) p.on_idle_end(40.0);
  EXPECT_NEAR(p.predicted_idle_s(), 40.0, 1e-6);
}

TEST(RandomizedTimeoutTest, DrawsWithinRentOrBuyRange) {
  RandomizedTimeout p(11.7, 5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(p.timeout_s(), 0.0);
    EXPECT_LE(p.timeout_s(), 11.7);
    p.on_idle_end(1.0);  // resample
  }
}

TEST(RandomizedTimeoutTest, ResamplesPerIdleInterval) {
  RandomizedTimeout p(11.7, 7);
  const double first = p.timeout_s();
  EXPECT_DOUBLE_EQ(p.timeout_s(), first);  // stable within an interval
  p.on_spin_up(30.0, 10.0);
  // A fresh draw almost surely differs.
  EXPECT_NE(p.timeout_s(), first);
}

TEST(RandomizedTimeoutTest, DeterministicPerSeed) {
  RandomizedTimeout a(11.7, 9), b(11.7, 9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.timeout_s(), b.timeout_s());
    a.on_idle_end(1.0);
    b.on_idle_end(1.0);
  }
}

TEST(RandomizedTimeoutTest, DensityMatchesRentOrBuyCdf) {
  // F(t) = (e^(t/B) - 1)/(e - 1): check the empirical CDF at the median.
  RandomizedTimeout p(1.0, 11);
  const double t_half = std::log(1.0 + (std::exp(1.0) - 1.0) * 0.5);
  int below = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    below += p.timeout_s() < t_half;
    p.on_idle_end(1.0);
  }
  EXPECT_NEAR(static_cast<double>(below) / n, 0.5, 0.02);
}

TEST(PredictiveTimeoutTest, RejectsBadParameters) {
  EXPECT_THROW(PredictiveTimeout(0.0), CheckError);
  EXPECT_THROW(PredictiveTimeout(11.7, 0.0), CheckError);
  EXPECT_THROW(PredictiveTimeout(11.7, 1.5), CheckError);
}

}  // namespace
}  // namespace jpm::disk
