#include "jpm/disk/disk_array.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "jpm/util/check.h"

namespace jpm::disk {
namespace {

constexpr std::uint64_t kPage = 256 * kKiB;

DiskArrayConfig config(std::uint32_t disks) {
  DiskArrayConfig c;
  c.disk_count = disks;
  c.stripe_bytes = 4 * kPage;  // 4 pages per stripe
  c.page_bytes = kPage;
  return c;
}

DiskArray::PolicyFactory fixed_factory(double timeout) {
  return [timeout] { return std::make_unique<FixedTimeout>(timeout); };
}

TEST(DiskArrayTest, StripeMappingRotates) {
  DiskArray a(config(3), fixed_factory(10.0), 0.0);
  EXPECT_EQ(a.disk_of(0), 0u);
  EXPECT_EQ(a.disk_of(3), 0u);   // same stripe
  EXPECT_EQ(a.disk_of(4), 1u);   // next stripe
  EXPECT_EQ(a.disk_of(8), 2u);
  EXPECT_EQ(a.disk_of(12), 0u);  // wraps
}

TEST(DiskArrayTest, RequestsRouteToMappedDisk) {
  DiskArray a(config(2), fixed_factory(10.0), 0.0);
  a.read(1.0, 0, kPage);   // disk 0
  a.read(1.1, 4, kPage);   // disk 1
  a.read(1.2, 5, kPage);   // disk 1
  EXPECT_EQ(a.requests_per_disk()[0], 1u);
  EXPECT_EQ(a.requests_per_disk()[1], 2u);
}

TEST(DiskArrayTest, SequentialRunsSurviveWithinStripe) {
  DiskArray a(config(2), fixed_factory(10.0), 0.0);
  a.read(1.0, 4, kPage);
  const auto r = a.read(1.1, 5, kPage);  // same stripe, next page
  EXPECT_TRUE(r.sequential);
}

TEST(DiskArrayTest, CrossStripeSameDiskStaysSequentialInLocalSpace) {
  // Pages 0..3 are stripe 0 on disk 0; pages 8..11 are stripe 2, also disk 0
  // with 2 disks. Local addresses are contiguous stripes per disk, so page 8
  // follows page 3 sequentially on disk 0.
  DiskArray a(config(2), fixed_factory(10.0), 0.0);
  a.read(1.0, 3, kPage);
  const auto r = a.read(1.1, 8, kPage);
  EXPECT_TRUE(r.sequential);
}

TEST(DiskArrayTest, IndependentSpinDowns) {
  DiskArray a(config(2), fixed_factory(10.0), 0.0);
  a.read(1.0, 0, kPage);  // only disk 0 sees traffic
  a.advance(1000.0);
  // Both disks spin down (disk 1 was idle from t = 0).
  EXPECT_EQ(a.shutdowns(), 2u);
  EXPECT_EQ(a.disk(0).state(), DiskState::kStandby);
  EXPECT_EQ(a.disk(1).state(), DiskState::kStandby);
}

TEST(DiskArrayTest, EnergyIsSumOfDisks) {
  DiskArray a(config(3), fixed_factory(10.0), 0.0);
  a.read(1.0, 0, kPage);
  a.read(2.0, 4, kPage);
  a.finalize(100.0);
  DiskEnergyBreakdown sum;
  for (std::uint32_t i = 0; i < 3; ++i) {
    const auto e = a.disk(i).energy();
    sum.standby_base_j += e.standby_base_j;
    sum.static_j += e.static_j;
    sum.transition_j += e.transition_j;
    sum.dynamic_j += e.dynamic_j;
  }
  EXPECT_NEAR(a.energy().total_j(), sum.total_j(), 1e-9);
  EXPECT_EQ(a.spindle_count(), 3u);
}

TEST(DiskArrayTest, LoadSpreadsAcrossDisksForStripedScan) {
  DiskArray a(config(4), fixed_factory(10.0), 0.0);
  for (std::uint64_t p = 0; p < 64; ++p) {
    a.read(1.0 + 0.001 * static_cast<double>(p), p, kPage);
  }
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(a.requests_per_disk()[i], 16u) << "disk " << i;
  }
}

TEST(DiskArrayTest, ParallelServiceBeatsSingleDiskOnSpreadLoad) {
  // The same burst of random reads across stripes finishes with lower total
  // queueing on 4 spindles than on 1.
  auto run = [](std::uint32_t disks) {
    DiskArray a(config(disks), fixed_factory(1e9), 0.0);
    double total_latency = 0.0;
    for (int k = 0; k < 40; ++k) {
      const auto r = a.read(1.0, static_cast<std::uint64_t>(k) * 4 + 100,
                            kPage);
      total_latency += r.latency_s;
    }
    return total_latency;
  };
  EXPECT_LT(run(4), 0.5 * run(1));
}

TEST(DiskArrayTest, SharedTimeoutFollowsSource) {
  DynamicTimeout source(11.7);
  SharedTimeout shared(&source);
  EXPECT_DOUBLE_EQ(shared.timeout_s(), 11.7);
  source.set_timeout(42.0);
  EXPECT_DOUBLE_EQ(shared.timeout_s(), 42.0);
}

TEST(DiskArrayTest, RejectsBadGeometry) {
  auto c = config(0);
  EXPECT_THROW(DiskArray(c, fixed_factory(1.0), 0.0), CheckError);
  c = config(2);
  c.stripe_bytes = kPage + 1;  // ragged stripe
  EXPECT_THROW(DiskArray(c, fixed_factory(1.0), 0.0), CheckError);
  c = config(2);
  EXPECT_THROW(DiskArray(c, nullptr, 0.0), CheckError);
}

}  // namespace
}  // namespace jpm::disk
