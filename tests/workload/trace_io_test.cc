#include "jpm/workload/trace_io.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "jpm/util/check.h"
#include "jpm/workload/synthesizer.h"

namespace jpm::workload {
namespace {

std::vector<TraceEvent> sample_trace() {
  return {
      {0.5, 100, true},
      {0.502, 101, false},
      {1.25, 7, true},
      {9.75, 100, true},
  };
}

TEST(TraceIoTest, BinaryRoundTrip) {
  std::stringstream ss;
  write_binary_trace(ss, sample_trace());
  const auto loaded = read_binary_trace(ss);
  const auto original = sample_trace();
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded[i].time_s, original[i].time_s);
    EXPECT_EQ(loaded[i].page, original[i].page);
    EXPECT_EQ(loaded[i].request_start, original[i].request_start);
  }
}

TEST(TraceIoTest, CsvRoundTrip) {
  std::stringstream ss;
  write_csv_trace(ss, sample_trace());
  const auto loaded = read_csv_trace(ss);
  const auto original = sample_trace();
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_NEAR(loaded[i].time_s, original[i].time_s, 1e-6);
    EXPECT_EQ(loaded[i].page, original[i].page);
    EXPECT_EQ(loaded[i].request_start, original[i].request_start);
  }
}

TEST(TraceIoTest, EmptyTraceRoundTrips) {
  std::stringstream bin, csv;
  write_binary_trace(bin, std::vector<TraceEvent>{});
  EXPECT_TRUE(read_binary_trace(bin).empty());
  write_csv_trace(csv, std::vector<TraceEvent>{});
  EXPECT_TRUE(read_csv_trace(csv).empty());
}

TEST(TraceIoTest, RejectsGarbageBinary) {
  std::stringstream ss;
  ss << "definitely not a trace";
  EXPECT_THROW(read_binary_trace(ss), CheckError);
}

TEST(TraceIoTest, RejectsTruncatedBinary) {
  std::stringstream ss;
  write_binary_trace(ss, sample_trace());
  std::string data = ss.str();
  data.resize(data.size() - 10);
  std::stringstream truncated(data);
  EXPECT_THROW(read_binary_trace(truncated), CheckError);
}

TEST(TraceIoTest, RejectsCorruptHeaderCountBeforeAllocating) {
  // Declare an absurd record count over a tiny body: the reader must reject
  // it from the header bounds check (naming both counts), not attempt a
  // multi-gigabyte reserve or a long truncation loop.
  std::stringstream ss;
  write_binary_trace(ss, sample_trace());
  std::string data = ss.str();
  const std::uint64_t huge = 1ull << 60;
  std::memcpy(data.data() + 8, &huge, sizeof huge);  // count field at byte 8
  std::stringstream corrupt(data);
  try {
    read_binary_trace(corrupt);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("corrupt trace header"), std::string::npos);
    EXPECT_NE(what.find(std::to_string(huge)), std::string::npos);
    EXPECT_NE(what.find("only 4 fit"), std::string::npos);
  }
}

// Streams that cannot seek (pipes, sockets) skip the header bounds
// pre-check and rely on the per-record truncation error instead.
struct NonSeekableBuf : std::stringbuf {
  explicit NonSeekableBuf(const std::string& s)
      : std::stringbuf(s, std::ios::in) {}

 protected:
  pos_type seekoff(off_type, std::ios_base::seekdir,
                   std::ios_base::openmode) override {
    return pos_type(off_type(-1));
  }
};

TEST(TraceIoTest, TruncationErrorNamesRecordAndByteOffset) {
  std::stringstream ss;
  write_binary_trace(ss, sample_trace());
  std::string data = ss.str();
  data.resize(16 + 2 * 24 + 5);  // header + 2 whole records + a partial third
  NonSeekableBuf buf(data);
  std::istream truncated(&buf);
  try {
    read_binary_trace(truncated);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("record 2 of 4"), std::string::npos);
    EXPECT_NE(what.find("byte offset 64"), std::string::npos);  // 16 + 2*24
  }
}

TEST(TraceIoTest, RejectsUnsupportedVersionNamingIt) {
  std::stringstream ss;
  write_binary_trace(ss, sample_trace());
  std::string data = ss.str();
  const std::uint32_t bogus = 99;
  std::memcpy(data.data() + 4, &bogus, sizeof bogus);  // version at byte 4
  std::stringstream wrong(data);
  try {
    read_binary_trace(wrong);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("99"), std::string::npos);
  }
}

TEST(TraceIoTest, RejectsMalformedCsv) {
  std::stringstream ss;
  ss << "time_s,page,request_start\n1.0;4;1\n";
  EXPECT_THROW(read_csv_trace(ss), CheckError);
}

TEST(TraceIoTest, RejectsUnsortedTrace) {
  std::stringstream ss;
  ss << "2.0,1,1\n1.0,2,1\n";
  EXPECT_THROW(read_csv_trace(ss), CheckError);
}

TEST(TraceIoTest, CsvHeaderIsOptional) {
  std::stringstream ss;
  ss << "1.0,5,1\n2.0,6,0\n";
  const auto t = read_csv_trace(ss);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0].page, 5u);
  EXPECT_FALSE(t[1].request_start);
}

TEST(TraceIoTest, FileRoundTripBothFormats) {
  namespace fs = std::filesystem;
  const auto dir = fs::temp_directory_path();
  SynthesizerConfig cfg;
  cfg.dataset_bytes = mib(64);
  cfg.byte_rate = 20e6;
  cfg.duration_s = 10.0;
  cfg.page_bytes = 64 * kKiB;
  const auto trace = synthesize(cfg);
  ASSERT_FALSE(trace.empty());

  for (const char* name : {"jpm_trace_test.jpmt", "jpm_trace_test.csv"}) {
    const std::string path = (dir / name).string();
    save_trace(path, trace);
    const auto loaded = load_trace(path);
    ASSERT_EQ(loaded.size(), trace.size()) << path;
    EXPECT_EQ(loaded.front().page, trace.front().page);
    EXPECT_EQ(loaded.back().page, trace.back().page);
    std::remove(path.c_str());
  }
}

TEST(TraceIoTest, MissingFileThrows) {
  EXPECT_THROW(load_trace("/nonexistent/path/trace.jpmt"), CheckError);
}

// ---- format sniffing -------------------------------------------------------
// load_trace routes on leading bytes, never on the file extension.

std::string sniff_error(const std::string& content) {
  std::stringstream ss(content);
  try {
    sniff_trace_format(ss, "t.dat");
    return "";
  } catch (const CheckError& e) {
    return e.what();
  }
}

TEST(TraceIoTest, SniffsEveryKnownFormat) {
  std::stringstream bin;
  write_binary_trace(bin, sample_trace());
  EXPECT_EQ(sniff_trace_format(bin, "t"), TraceFormat::kBinary);
  EXPECT_EQ(read_binary_trace(bin).size(), 4u);  // stream position restored

  std::stringstream chunked("JPMC" + std::string(60, '\0'));
  EXPECT_EQ(sniff_trace_format(chunked, "t"), TraceFormat::kChunked);

  std::stringstream csv("time_s,page,request_start\n0.5,100,1\n");
  EXPECT_EQ(sniff_trace_format(csv, "t"), TraceFormat::kCsv);
  std::stringstream headerless("0.5,100,1\n");
  EXPECT_EQ(sniff_trace_format(headerless, "t"), TraceFormat::kCsv);
}

TEST(TraceIoTest, SniffNamesUnrecognizedAndEmptyInputs) {
  EXPECT_NE(sniff_error(std::string("\xff\xfe garbage", 11))
                .find("unrecognized trace format"),
            std::string::npos);
  EXPECT_NE(sniff_error("").find("empty trace file"), std::string::npos);
}

TEST(TraceIoTest, LoadTraceRefusesChunkedFilesByName) {
  // A JPMC file needs the tracefile reader; load_trace names the right tool
  // instead of misparsing the header as JPMT records.
  const std::string path =
      (std::filesystem::temp_directory_path() / "jpm_sniff.jpmc").string();
  std::ofstream f(path, std::ios::binary);
  f << "JPMC" << std::string(60, '\0');
  f.close();
  try {
    load_trace(path);
    ADD_FAILURE() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("jpm::tracefile::TraceReader"),
              std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace jpm::workload
