#include "jpm/workload/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "jpm/util/check.h"
#include "jpm/workload/synthesizer.h"

namespace jpm::workload {
namespace {

std::vector<TraceEvent> sample_trace() {
  return {
      {0.5, 100, true},
      {0.502, 101, false},
      {1.25, 7, true},
      {9.75, 100, true},
  };
}

TEST(TraceIoTest, BinaryRoundTrip) {
  std::stringstream ss;
  write_binary_trace(ss, sample_trace());
  const auto loaded = read_binary_trace(ss);
  const auto original = sample_trace();
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded[i].time_s, original[i].time_s);
    EXPECT_EQ(loaded[i].page, original[i].page);
    EXPECT_EQ(loaded[i].request_start, original[i].request_start);
  }
}

TEST(TraceIoTest, CsvRoundTrip) {
  std::stringstream ss;
  write_csv_trace(ss, sample_trace());
  const auto loaded = read_csv_trace(ss);
  const auto original = sample_trace();
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_NEAR(loaded[i].time_s, original[i].time_s, 1e-6);
    EXPECT_EQ(loaded[i].page, original[i].page);
    EXPECT_EQ(loaded[i].request_start, original[i].request_start);
  }
}

TEST(TraceIoTest, EmptyTraceRoundTrips) {
  std::stringstream bin, csv;
  write_binary_trace(bin, {});
  EXPECT_TRUE(read_binary_trace(bin).empty());
  write_csv_trace(csv, {});
  EXPECT_TRUE(read_csv_trace(csv).empty());
}

TEST(TraceIoTest, RejectsGarbageBinary) {
  std::stringstream ss;
  ss << "definitely not a trace";
  EXPECT_THROW(read_binary_trace(ss), CheckError);
}

TEST(TraceIoTest, RejectsTruncatedBinary) {
  std::stringstream ss;
  write_binary_trace(ss, sample_trace());
  std::string data = ss.str();
  data.resize(data.size() - 10);
  std::stringstream truncated(data);
  EXPECT_THROW(read_binary_trace(truncated), CheckError);
}

TEST(TraceIoTest, RejectsMalformedCsv) {
  std::stringstream ss;
  ss << "time_s,page,request_start\n1.0;4;1\n";
  EXPECT_THROW(read_csv_trace(ss), CheckError);
}

TEST(TraceIoTest, RejectsUnsortedTrace) {
  std::stringstream ss;
  ss << "2.0,1,1\n1.0,2,1\n";
  EXPECT_THROW(read_csv_trace(ss), CheckError);
}

TEST(TraceIoTest, CsvHeaderIsOptional) {
  std::stringstream ss;
  ss << "1.0,5,1\n2.0,6,0\n";
  const auto t = read_csv_trace(ss);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0].page, 5u);
  EXPECT_FALSE(t[1].request_start);
}

TEST(TraceIoTest, FileRoundTripBothFormats) {
  namespace fs = std::filesystem;
  const auto dir = fs::temp_directory_path();
  SynthesizerConfig cfg;
  cfg.dataset_bytes = mib(64);
  cfg.byte_rate = 20e6;
  cfg.duration_s = 10.0;
  cfg.page_bytes = 64 * kKiB;
  const auto trace = synthesize(cfg);
  ASSERT_FALSE(trace.empty());

  for (const char* name : {"jpm_trace_test.jpmt", "jpm_trace_test.csv"}) {
    const std::string path = (dir / name).string();
    save_trace(path, trace);
    const auto loaded = load_trace(path);
    ASSERT_EQ(loaded.size(), trace.size()) << path;
    EXPECT_EQ(loaded.front().page, trace.front().page);
    EXPECT_EQ(loaded.back().page, trace.back().page);
    std::remove(path.c_str());
  }
}

TEST(TraceIoTest, MissingFileThrows) {
  EXPECT_THROW(load_trace("/nonexistent/path/trace.jpmt"), CheckError);
}

}  // namespace
}  // namespace jpm::workload
