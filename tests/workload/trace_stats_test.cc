#include "jpm/workload/trace_stats.h"

#include <gtest/gtest.h>

#include <numeric>

#include "jpm/util/check.h"
#include "jpm/workload/synthesizer.h"

namespace jpm::workload {
namespace {

TEST(CharacterizeTest, EmptyTraceIsZero) {
  const auto c = characterize({}, 64 * kKiB);
  EXPECT_EQ(c.events, 0u);
  EXPECT_EQ(c.requests, 0u);
  EXPECT_EQ(c.duration_s, 0.0);
}

TEST(CharacterizeTest, CountsAndRates) {
  std::vector<TraceEvent> trace{
      {0.0, 1, true},
      {1.0, 2, true, true},  // a write
      {2.0, 1, true},
      {4.0, 3, true},
  };
  const auto c = characterize(trace, kMiB);
  EXPECT_EQ(c.events, 4u);
  EXPECT_EQ(c.requests, 4u);
  EXPECT_EQ(c.writes, 1u);
  EXPECT_EQ(c.distinct_pages, 3u);
  EXPECT_DOUBLE_EQ(c.duration_s, 4.0);
  EXPECT_DOUBLE_EQ(c.request_rate_per_s, 1.0);
  EXPECT_DOUBLE_EQ(c.byte_rate_per_s, 4.0 * static_cast<double>(kMiB) / 4.0);
  // Gaps 1, 1, 2.
  EXPECT_NEAR(c.mean_interarrival_s, 4.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(c.max_interarrival_s, 2.0);
  EXPECT_EQ(c.cold_accesses, 3u);
}

TEST(CharacterizeTest, ReuseBucketsByDepth) {
  // Page 1 re-accessed immediately (depth 1 -> bucket 0), then after two
  // intervening distinct pages (depth 3 -> bucket 1).
  std::vector<TraceEvent> trace{
      {0.0, 1, true}, {1.0, 1, true}, {2.0, 2, true},
      {3.0, 3, true}, {4.0, 1, true},
  };
  const auto c = characterize(trace, kMiB);
  ASSERT_GE(c.reuse_depth_pow2.size(), 2u);
  EXPECT_EQ(c.reuse_depth_pow2[0], 1u);  // depth 1
  EXPECT_EQ(c.reuse_depth_pow2[1], 1u);  // depth 3
}

TEST(CharacterizeTest, HotFractionDetectsSkew) {
  // 90 accesses to page 0, one access each to pages 1..10.
  std::vector<TraceEvent> trace;
  for (int i = 0; i < 90; ++i) {
    trace.push_back({static_cast<double>(trace.size()), 0, true});
  }
  for (std::uint64_t p = 1; p <= 10; ++p) {
    trace.push_back({static_cast<double>(trace.size()), p, true});
  }
  const auto c = characterize(trace, kMiB);
  // One of eleven pages carries 90% of the mass.
  EXPECT_NEAR(c.hot_page_fraction_90, 1.0 / 11.0, 1e-9);
}

TEST(CharacterizeTest, MatchesSynthesizerConfiguration) {
  SynthesizerConfig cfg;
  cfg.dataset_bytes = mib(256);
  cfg.byte_rate = 10e6;
  cfg.popularity = 0.1;
  cfg.duration_s = 300.0;
  cfg.page_bytes = 64 * kKiB;
  cfg.rate_modulation = 0.0;
  cfg.seed = 8;
  const auto trace = synthesize(cfg);
  const auto c = characterize(trace, cfg.page_bytes, cfg.duration_s);
  TraceGenerator gen(cfg);
  const double expected_rate = cfg.byte_rate / gen.mean_request_bytes();
  EXPECT_NEAR(c.request_rate_per_s / expected_rate, 1.0, 0.15);
  // Measured page-level popularity tracks the configured byte-level knob
  // loosely (pages aggregate small files).
  EXPECT_LT(c.hot_page_fraction_90, 0.5);
}

TEST(IdleGapsTest, GapsBetweenMissesOnly) {
  // Cache of 2 pages; stream: 1, 2 (misses), 1 (hit), 3 (miss at t=9).
  std::vector<TraceEvent> trace{
      {0.0, 1, true}, {1.0, 2, true}, {2.0, 1, true}, {9.0, 3, true},
  };
  const auto gaps = idle_gaps_at_cache_size(trace, 2, 0.0);
  // Misses at 0, 1, 9 -> gaps 1 and 8.
  ASSERT_EQ(gaps.size(), 2u);
  EXPECT_DOUBLE_EQ(gaps[0], 1.0);
  EXPECT_DOUBLE_EQ(gaps[1], 8.0);
}

TEST(IdleGapsTest, WindowFiltersShortGaps) {
  std::vector<TraceEvent> trace{
      {0.0, 1, true}, {1.0, 2, true}, {9.0, 3, true},
  };
  const auto gaps = idle_gaps_at_cache_size(trace, 1, 2.0);
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_DOUBLE_EQ(gaps[0], 8.0);
}

TEST(IdleGapsTest, BiggerCacheLeavesFewerLongerGaps) {
  SynthesizerConfig cfg;
  cfg.dataset_bytes = mib(128);
  cfg.byte_rate = 10e6;
  cfg.duration_s = 120.0;
  cfg.page_bytes = 64 * kKiB;
  cfg.seed = 10;
  const auto trace = synthesize(cfg);
  // Note: a bigger cache can report MORE gaps above the window — dense
  // sub-window gaps merge into countable ones — so the invariants are the
  // mean gap length and the raw miss count, not the filtered gap count.
  const auto small = idle_gaps_at_cache_size(trace, 256, 0.1);
  const auto big = idle_gaps_at_cache_size(trace, 1024, 0.1);
  const auto small_all = idle_gaps_at_cache_size(trace, 256, 0.0);
  const auto big_all = idle_gaps_at_cache_size(trace, 1024, 0.0);
  ASSERT_FALSE(small.empty());
  ASSERT_FALSE(big.empty());
  EXPECT_LT(big_all.size(), small_all.size());  // fewer misses overall
  const double mean_small =
      std::accumulate(small.begin(), small.end(), 0.0) / small.size();
  const double mean_big =
      std::accumulate(big.begin(), big.end(), 0.0) / big.size();
  EXPECT_GT(mean_big, mean_small);
}

TEST(IdleGapsTest, RejectsZeroCache) {
  EXPECT_THROW(idle_gaps_at_cache_size({}, 0, 0.1), CheckError);
}

}  // namespace
}  // namespace jpm::workload
