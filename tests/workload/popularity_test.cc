#include "jpm/workload/popularity.h"

#include <gtest/gtest.h>

#include <numeric>

#include "jpm/util/rng.h"

namespace jpm::workload {
namespace {

FileSet make_files(std::uint64_t dataset = mib(256)) {
  FileSetConfig c;
  c.dataset_bytes = dataset;
  c.base_dataset_bytes = mib(256);
  c.file_scale = 1.0;
  c.seed = 7;
  return FileSet(c);
}

TEST(PopularityTest, ProbabilitiesSumToOne) {
  const auto files = make_files();
  PopularityModel pop(files, PopularityConfig{0.1, 0.9, 1});
  double sum = 0.0;
  for (std::size_t i = 0; i < files.file_count(); ++i) {
    sum += pop.probability(i);
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

class PopularitySolverTest : public ::testing::TestWithParam<double> {};

TEST_P(PopularitySolverTest, SolverHitsTargetHotByteFraction) {
  const double target = GetParam();
  const auto files = make_files();
  PopularityModel pop(files, PopularityConfig{target, 0.9, 1});
  EXPECT_NEAR(pop.achieved_popularity(), target, 0.03) << "target " << target;
}

INSTANTIATE_TEST_SUITE_P(PaperSweep, PopularitySolverTest,
                         ::testing::Values(0.05, 0.1, 0.2, 0.4, 0.6));

TEST(PopularityTest, DenserPopularityMeansHigherExponent) {
  const auto files = make_files();
  PopularityModel dense(files, PopularityConfig{0.05, 0.9, 1});
  PopularityModel sparse(files, PopularityConfig{0.6, 0.9, 1});
  EXPECT_GT(dense.zipf_exponent(), sparse.zipf_exponent());
}

TEST(PopularityTest, SamplerMatchesProbabilities) {
  const auto files = make_files(mib(32));
  PopularityModel pop(files, PopularityConfig{0.2, 0.9, 1});
  Rng rng(17);
  std::vector<std::uint64_t> counts(files.file_count(), 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[pop.sample(rng)];
  // Check the most popular files' empirical frequencies.
  std::size_t top = 0;
  for (std::size_t i = 1; i < counts.size(); ++i) {
    if (pop.probability(i) > pop.probability(top)) top = i;
  }
  EXPECT_NEAR(static_cast<double>(counts[top]) / n, pop.probability(top),
              0.01);
}

TEST(PopularityTest, EmpiricalHotShareMatchesDefinition) {
  // Draw requests and verify the paper's definition: the most popular files
  // covering `popularity` of the bytes absorb ~90% of the draws.
  const auto files = make_files(mib(64));
  const double target = 0.1;
  PopularityModel pop(files, PopularityConfig{target, 0.9, 1});
  Rng rng(23);
  std::vector<std::uint64_t> counts(files.file_count(), 0);
  const int n = 300000;
  for (int i = 0; i < n; ++i) ++counts[pop.sample(rng)];

  // Sort files by probability descending and accumulate bytes until we reach
  // the target byte fraction; sum their draw counts.
  std::vector<std::size_t> order(files.file_count());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return pop.probability(a) > pop.probability(b);
  });
  std::uint64_t bytes = 0, draws = 0;
  const auto budget = static_cast<std::uint64_t>(
      target * static_cast<double>(files.total_bytes()));
  for (std::size_t idx : order) {
    if (bytes >= budget) break;
    bytes += files.file(idx).size_bytes;
    draws += counts[idx];
  }
  EXPECT_NEAR(static_cast<double>(draws) / n, 0.9, 0.04);
}

TEST(PopularityTest, HotByteFractionMonotoneInExponent) {
  const auto files = make_files(mib(32));
  std::vector<std::uint32_t> order(files.file_count());
  std::iota(order.begin(), order.end(), 0u);
  double prev = 1.0;
  for (double s : {0.2, 0.6, 1.0, 1.5, 2.5}) {
    const double frac = hot_byte_fraction(files, order, s, 0.9);
    EXPECT_LE(frac, prev + 1e-12) << "s=" << s;
    prev = frac;
  }
}

TEST(PopularityTest, DeterministicForSeed) {
  const auto files = make_files(mib(32));
  PopularityModel a(files, PopularityConfig{0.1, 0.9, 5});
  PopularityModel b(files, PopularityConfig{0.1, 0.9, 5});
  for (std::size_t i = 0; i < files.file_count(); ++i) {
    EXPECT_EQ(a.probability(i), b.probability(i));
  }
}

}  // namespace
}  // namespace jpm::workload
