#include "jpm/workload/fileset.h"

#include <gtest/gtest.h>

#include <cmath>

namespace jpm::workload {
namespace {

FileSetConfig cfg(std::uint64_t dataset, double file_scale = 1.0) {
  FileSetConfig c;
  c.dataset_bytes = dataset;
  c.base_dataset_bytes = gib(1);
  c.file_scale = file_scale;
  c.seed = 3;
  return c;
}

TEST(FileSetTest, TotalBytesNearTarget) {
  FileSet fs(cfg(gib(1)));
  const double ratio = static_cast<double>(fs.total_bytes()) /
                       static_cast<double>(gib(1));
  EXPECT_NEAR(ratio, 1.0, 0.05);
}

TEST(FileSetTest, OffsetsAreContiguousAndOrdered) {
  FileSet fs(cfg(mib(64)));
  std::uint64_t expected_offset = 0;
  for (std::size_t i = 0; i < fs.file_count(); ++i) {
    EXPECT_EQ(fs.file(i).offset_bytes, expected_offset);
    expected_offset += fs.file(i).size_bytes;
  }
  EXPECT_EQ(expected_offset, fs.total_bytes());
}

TEST(FileSetTest, ClassStructureFollowsSpecWeb99) {
  const auto classes = specweb99_classes(1.0);
  ASSERT_EQ(classes.size(), 4u);
  double share = 0.0;
  for (const auto& c : classes) {
    EXPECT_LT(c.min_bytes, c.max_bytes);
    share += c.request_share;
  }
  EXPECT_NEAR(share, 1.0, 1e-9);
  // Largest class tops out at ~1 MB.
  EXPECT_NEAR(static_cast<double>(classes.back().max_bytes), 1024.0 * 1024,
              1.0);
}

TEST(FileSetTest, FileScaleScalesSizes) {
  const auto small = specweb99_classes(1.0);
  const auto large = specweb99_classes(16.0);
  for (std::size_t i = 0; i < small.size(); ++i) {
    EXPECT_EQ(large[i].max_bytes, 16 * small[i].max_bytes);
  }
}

// The paper's scaling rule: x4 data set => x2 files and x2 file sizes.
TEST(FileSetTest, SqrtScalingRule) {
  FileSet base(cfg(gib(1)));
  FileSet big(cfg(gib(4)));
  const double count_ratio = static_cast<double>(big.file_count()) /
                             static_cast<double>(base.file_count());
  EXPECT_NEAR(count_ratio, 2.0, 0.1);
  const double mean_base = static_cast<double>(base.total_bytes()) /
                           static_cast<double>(base.file_count());
  const double mean_big = static_cast<double>(big.total_bytes()) /
                          static_cast<double>(big.file_count());
  EXPECT_NEAR(mean_big / mean_base, 2.0, 0.1);
}

TEST(FileSetTest, DeterministicForSeed) {
  FileSet a(cfg(mib(256))), b(cfg(mib(256)));
  ASSERT_EQ(a.file_count(), b.file_count());
  for (std::size_t i = 0; i < a.file_count(); ++i) {
    EXPECT_EQ(a.file(i).size_bytes, b.file(i).size_bytes);
    EXPECT_EQ(a.file(i).offset_bytes, b.file(i).offset_bytes);
  }
}

TEST(FileSetTest, PageMathCoversWholeFile) {
  FileSet fs(cfg(mib(64)));
  const std::uint64_t page = 64 * kKiB;
  for (std::size_t i = 0; i < std::min<std::size_t>(fs.file_count(), 500);
       ++i) {
    const auto& f = fs.file(i);
    const auto first = fs.first_page(i, page);
    const auto count = fs.page_count(i, page);
    EXPECT_LE(first * page, f.offset_bytes);
    EXPECT_GE((first + count) * page, f.offset_bytes + f.size_bytes);
    // Never more than one page of slack on either side.
    EXPECT_LE(count, (f.size_bytes / page) + 2);
  }
}

TEST(FileSetTest, ShuffleDecorrelatesClassFromPosition) {
  FileSet fs(cfg(gib(1)));
  // The first 100 files by disk order should span several classes.
  std::uint32_t mask = 0;
  for (std::size_t i = 0; i < 100 && i < fs.file_count(); ++i) {
    mask |= 1u << fs.file(i).file_class;
  }
  EXPECT_GT(__builtin_popcount(mask), 1);
}

}  // namespace
}  // namespace jpm::workload
