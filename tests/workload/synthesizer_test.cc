#include "jpm/workload/synthesizer.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <unordered_set>

namespace jpm::workload {
namespace {

SynthesizerConfig small_cfg() {
  SynthesizerConfig c;
  c.dataset_bytes = mib(256);
  c.byte_rate = 10e6;
  c.popularity = 0.1;
  c.duration_s = 120.0;
  c.page_bytes = 64 * kKiB;
  c.file_scale = 4.0;
  c.rate_modulation = 0.0;
  c.seed = 9;
  return c;
}

TEST(SynthesizerConfigTest, ValidateAcceptsSaneConfigs) {
  EXPECT_NO_THROW(small_cfg().validate());
  EXPECT_NO_THROW(SynthesizerConfig{}.validate());
}

TEST(SynthesizerConfigTest, ValidateNamesTheOffendingKnob) {
  const auto expect_rejected = [](SynthesizerConfig cfg, const char* knob) {
    try {
      cfg.validate();
      FAIL() << "expected std::invalid_argument naming " << knob;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("invalid SynthesizerConfig"),
                std::string::npos);
      EXPECT_NE(std::string(e.what()).find(knob), std::string::npos);
    }
  };
  auto cfg = small_cfg();
  cfg.dataset_bytes = 0;
  expect_rejected(cfg, "dataset_bytes");
  cfg = small_cfg();
  cfg.page_bytes = 0;
  expect_rejected(cfg, "page_bytes");
  cfg = small_cfg();
  cfg.byte_rate = 0.0;
  expect_rejected(cfg, "byte_rate");
  cfg = small_cfg();
  cfg.duration_s = -1.0;
  expect_rejected(cfg, "duration_s");
  cfg = small_cfg();
  cfg.popularity = 1.5;
  expect_rejected(cfg, "popularity");
  cfg = small_cfg();
  cfg.file_scale = 0.0;
  expect_rejected(cfg, "file_scale");
  cfg = small_cfg();
  cfg.temporal_locality = -0.1;
  expect_rejected(cfg, "temporal_locality");
  cfg = small_cfg();
  cfg.write_fraction = 2.0;
  expect_rejected(cfg, "write_fraction");
}

TEST(SynthesizerConfigTest, GeneratorRejectsInvalidConfig) {
  auto cfg = small_cfg();
  cfg.byte_rate = 0.0;
  EXPECT_THROW(TraceGenerator{cfg}, std::invalid_argument);
  EXPECT_THROW(synthesize(cfg), std::invalid_argument);
}

TEST(SynthesizerTest, TimesNondecreasingAndBounded) {
  const auto trace = synthesize(small_cfg());
  ASSERT_FALSE(trace.empty());
  double prev = 0.0;
  for (const auto& e : trace) {
    EXPECT_GE(e.time_s, prev);
    prev = e.time_s;
  }
  EXPECT_LT(trace.front().time_s, 10.0);
}

TEST(SynthesizerTest, RequestRateMatchesOfferedByteRate) {
  // Requests arrive at byte_rate / E[request bytes]; page rounding inflates
  // the raw page-byte volume, so the request count is the honest check.
  const auto cfg = small_cfg();
  TraceGenerator gen(cfg);
  const double expected_requests =
      cfg.byte_rate * cfg.duration_s / gen.mean_request_bytes();
  std::uint64_t requests = 0;
  while (auto e = gen.next()) requests += e->request_start;
  EXPECT_NEAR(static_cast<double>(requests) / expected_requests, 1.0, 0.1);
}

TEST(SynthesizerTest, RequestsAreContiguousPageRuns) {
  const auto trace = synthesize(small_cfg());
  std::uint64_t prev_page = 0;
  bool in_request = false;
  for (const auto& e : trace) {
    if (!e.request_start && in_request) {
      // continuation pages could interleave with other requests in time,
      // but each request's own pages ascend by one; we can't check across
      // interleaving here, so just ensure flags exist.
    }
    in_request = true;
    prev_page = e.page;
  }
  (void)prev_page;
  std::uint64_t starts = 0;
  for (const auto& e : trace) starts += e.request_start;
  EXPECT_GT(starts, 0u);
  EXPECT_LE(starts, trace.size());
}

TEST(SynthesizerTest, PagesWithinDataset) {
  TraceGenerator gen(small_cfg());
  const std::uint64_t total = gen.total_pages();
  while (auto e = gen.next()) EXPECT_LT(e->page, total);
}

TEST(SynthesizerTest, DeterministicForSeed) {
  const auto a = synthesize(small_cfg());
  const auto b = synthesize(small_cfg());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].page, b[i].page);
    EXPECT_DOUBLE_EQ(a[i].time_s, b[i].time_s);
  }
}

TEST(SynthesizerTest, ResetReplaysIdenticalStream) {
  TraceGenerator gen(small_cfg());
  std::vector<TraceEvent> first;
  for (int i = 0; i < 1000; ++i) {
    auto e = gen.next();
    if (!e) break;
    first.push_back(*e);
  }
  gen.reset();
  for (const auto& want : first) {
    auto e = gen.next();
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->page, want.page);
    EXPECT_DOUBLE_EQ(e->time_s, want.time_s);
  }
}

TEST(SynthesizerTest, HigherRateMoreEvents) {
  auto lo = small_cfg();
  auto hi = small_cfg();
  hi.byte_rate = 4 * lo.byte_rate;
  const double ratio = static_cast<double>(synthesize(hi).size()) /
                       static_cast<double>(synthesize(lo).size());
  EXPECT_NEAR(ratio, 4.0, 0.8);
}

TEST(SynthesizerTest, DensePopularityTouchesFewerDistinctPages) {
  auto dense = small_cfg();
  dense.popularity = 0.05;
  auto sparse = small_cfg();
  sparse.popularity = 0.6;
  auto distinct = [](const std::vector<TraceEvent>& t) {
    std::unordered_set<std::uint64_t> pages;
    for (const auto& e : t) pages.insert(e.page);
    return pages.size();
  };
  EXPECT_LT(distinct(synthesize(dense)), distinct(synthesize(sparse)));
}

TEST(SynthesizerTest, RateModulationChangesPerMinuteCounts) {
  auto cfg = small_cfg();
  cfg.duration_s = 600.0;
  cfg.rate_modulation = 0.5;
  cfg.modulation_period_s = 600.0;
  const auto trace = synthesize(cfg);
  // First quarter (rising sine) should carry more traffic than the third
  // quarter (falling below baseline).
  std::uint64_t q1 = 0, q3 = 0;
  for (const auto& e : trace) {
    if (e.time_s < 150.0) ++q1;
    if (e.time_s >= 300.0 && e.time_s < 450.0) ++q3;
  }
  EXPECT_GT(q1, q3);
}

TEST(SynthesizerTest, MeanRequestBytesIsPopularityWeighted) {
  TraceGenerator gen(small_cfg());
  EXPECT_GT(gen.mean_request_bytes(), 0.0);
  EXPECT_LT(gen.mean_request_bytes(),
            static_cast<double>(gen.files().total_bytes()));
}

TEST(SynthesizerTest, TemporalLocalityRaisesReuse) {
  // Sparse popularity keeps baseline short-range reuse rare; a tight
  // locality window forces the locality draws to repeat recent requests.
  auto plain = small_cfg();
  plain.popularity = 0.6;
  auto local = plain;
  local.temporal_locality = 0.8;
  local.locality_window = 256;
  // Fraction of requests whose first page appeared among the previous 256
  // request starts.
  auto short_range_reuse = [](const std::vector<TraceEvent>& t) {
    std::vector<std::uint64_t> recent;
    std::uint64_t repeats = 0, starts = 0;
    for (const auto& e : t) {
      if (!e.request_start) continue;
      ++starts;
      for (std::uint64_t p : recent) {
        if (p == e.page) {
          ++repeats;
          break;
        }
      }
      recent.push_back(e.page);
      if (recent.size() > 256) recent.erase(recent.begin());
    }
    return static_cast<double>(repeats) / static_cast<double>(starts);
  };
  const double with = short_range_reuse(synthesize(local));
  const double without = short_range_reuse(synthesize(plain));
  EXPECT_GT(with, without + 0.3);
}

TEST(SynthesizerTest, TemporalLocalityKeepsDeterminism) {
  auto cfg = small_cfg();
  cfg.temporal_locality = 0.7;
  const auto a = synthesize(cfg);
  const auto b = synthesize(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].page, b[i].page);
}

TEST(SynthesizerTest, ZeroLocalityWindowDisablesReuse) {
  auto cfg = small_cfg();
  cfg.temporal_locality = 0.9;
  cfg.locality_window = 0;
  // Must behave like the plain configuration (no recent buffer to draw
  // from) and, critically, not crash.
  const auto t = synthesize(cfg);
  EXPECT_FALSE(t.empty());
}

TEST(SynthesizerTest, WriteFractionProducesWrites) {
  auto cfg = small_cfg();
  cfg.write_fraction = 0.25;
  const auto trace = synthesize(cfg);
  std::uint64_t write_requests = 0, requests = 0;
  for (const auto& e : trace) {
    if (!e.request_start) continue;
    ++requests;
    write_requests += e.is_write;
  }
  ASSERT_GT(requests, 100u);
  EXPECT_NEAR(static_cast<double>(write_requests) /
                  static_cast<double>(requests),
              0.25, 0.05);
}

TEST(SynthesizerTest, WriteFlagCoversWholeRequest) {
  // At a very low rate requests almost never interleave, so each block from
  // one request_start to the next is a single request whose pages must all
  // carry the same write flag.
  auto cfg = small_cfg();
  cfg.write_fraction = 0.5;
  cfg.byte_rate = 0.2e6;
  cfg.duration_s = 600.0;
  const auto trace = synthesize(cfg);
  bool current = false;
  std::uint64_t continuations = 0, mismatches = 0;
  for (const auto& e : trace) {
    if (e.request_start) {
      current = e.is_write;
    } else {
      ++continuations;
      mismatches += e.is_write != current;
    }
  }
  // Allow a tiny number of mismatches from the rare interleaved request.
  EXPECT_LE(mismatches, continuations / 20 + 1);
}

TEST(SynthesizerTest, ZeroWriteFractionKeepsLegacyStream) {
  // The write extension must not consume RNG draws when disabled, so traces
  // from older configurations stay bit-identical.
  auto cfg = small_cfg();
  const auto a = synthesize(cfg);
  for (const auto& e : a) ASSERT_FALSE(e.is_write);
}

TEST(SummarizeTest, CountsAndDuration) {
  const auto cfg = small_cfg();
  const auto trace = synthesize(cfg);
  const auto s = summarize(trace, cfg.page_bytes);
  EXPECT_EQ(s.events, trace.size());
  EXPECT_GT(s.requests, 0u);
  EXPECT_GT(s.distinct_pages, 0u);
  EXPECT_LE(s.duration_s, cfg.duration_s);
  EXPECT_DOUBLE_EQ(
      s.bytes_accessed,
      static_cast<double>(trace.size()) * static_cast<double>(cfg.page_bytes));
}

}  // namespace
}  // namespace jpm::workload
