// The checked-in scenarios/ corpus: every file must parse, pass semantic
// validation, and be canonical (byte-equal to the serialization of its own
// parse) so the goldens double as format documentation and `jpm print` is a
// no-op on them. Also covers the fast-mode transform and header expansion
// that `jpm run` and the bench harnesses share.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "jpm/spec/run.h"
#include "jpm/spec/spec.h"

namespace jpm::spec {
namespace {

// One scenario per bench harness (21) plus the streaming daemon demo and
// the fleet-scale grid sweep — a new harness or CLI demo adds its scenario
// here.
const std::set<std::string> kScenarioNames = {
    "ablation_joint", "ext_cluster",     "ext_devices",
    "fleet_sweep",
    "ext_drpm",       "ext_multidisk",   "ext_pblru",
    "ext_writes",     "faults",          "fig5_pareto",
    "fig7_dataset",   "fig8_popularity", "fig8_rate",
    "fig9_timeline",  "micro",           "models",
    "policy_faceoff", "quickstart",      "serve_demo",
    "table3_accesses", "table4_period",  "table5_bank",
    "timeout_policies",
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

TEST(ScenarioFilesTest, DirectoryMatchesTheHarnessList) {
  std::set<std::string> on_disk;
  for (const auto& entry :
       std::filesystem::directory_iterator(scenario_dir())) {
    if (entry.path().extension() == ".json") {
      on_disk.insert(entry.path().stem().string());
    }
  }
  EXPECT_EQ(on_disk, kScenarioNames);
}

TEST(ScenarioFilesTest, EveryFileParsesValidatesAndIsCanonical) {
  for (const auto& name : kScenarioNames) {
    SCOPED_TRACE(name);
    const std::string path = scenario_path(name);
    const std::string text = read_file(path);

    Scenario sc;
    ASSERT_NO_THROW(sc = load_scenario_file(path));
    EXPECT_EQ(sc.name, name) << "scenario name must match the file name";
    EXPECT_NO_THROW(validate_scenario(sc));
    EXPECT_EQ(serialize_scenario(sc), text)
        << path << " is not canonical; regenerate with `jpm print`";
  }
}

TEST(ScenarioFilesTest, HashesAreDistinctAcrossTheCorpus) {
  std::set<std::string> hashes;
  for (const auto& name : kScenarioNames) {
    hashes.insert(scenario_hash(load_scenario_file(scenario_path(name))));
  }
  EXPECT_EQ(hashes.size(), kScenarioNames.size());
}

TEST(ScenarioFilesTest, FastModeTransformMatchesHistoricalNumbers) {
  // The harnesses' historical smoke schedule: 1200 s warm-up + 60 min
  // measured becomes 600 s + 15 min. apply_fast_mode halves the warm-up and
  // quarters the measured window of every workload point.
  Scenario sc = load_scenario_file(scenario_path("fig7_dataset"));
  ASSERT_FALSE(sc.workloads.empty());
  EXPECT_EQ(sc.engine.warm_up_s, 1200.0);
  EXPECT_EQ(sc.workloads.front().workload.duration_s, 4800.0);
  EXPECT_EQ(measured_minutes(sc), 60.0);

  apply_fast_mode(sc);
  EXPECT_EQ(sc.engine.warm_up_s, 600.0);
  for (const auto& point : sc.workloads) {
    EXPECT_EQ(point.workload.duration_s, 1500.0);
  }
  EXPECT_EQ(measured_minutes(sc), 15.0);
}

TEST(ScenarioFilesTest, FastModeDoesNotChangeAnythingElse) {
  Scenario full = load_scenario_file(scenario_path("fig8_rate"));
  Scenario fast = full;
  apply_fast_mode(fast);
  // Restoring the schedule restores byte-identical serialization: the
  // transform touches only warm_up_s and the durations.
  fast.engine.warm_up_s = full.engine.warm_up_s;
  for (std::size_t i = 0; i < fast.workloads.size(); ++i) {
    fast.workloads[i].workload.duration_s =
        full.workloads[i].workload.duration_s;
  }
  EXPECT_EQ(serialize_scenario(fast), serialize_scenario(full));
}

TEST(ScenarioFilesTest, HeaderTokenExpandsToMeasuredMinutes) {
  Scenario sc = load_scenario_file(scenario_path("fig7_dataset"));
  EXPECT_NE(sc.output.header.find("{measured_min}"), std::string::npos);
  std::string expanded = expand_header(sc);
  EXPECT_EQ(expanded.find("{measured_min}"), std::string::npos);
  EXPECT_NE(expanded.find("60 min"), std::string::npos) << expanded;

  apply_fast_mode(sc);
  expanded = expand_header(sc);
  EXPECT_NE(expanded.find("15 min"), std::string::npos) << expanded;

  // Headers without the token pass through verbatim.
  sc.output.header = "plain header";
  EXPECT_EQ(expand_header(sc), "plain header");
}

}  // namespace
}  // namespace jpm::spec
