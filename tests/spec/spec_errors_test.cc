// Error contract of jpm::spec: every rejection names the JSON path of the
// offending value, so a typo in a 200-line scenario file points at the exact
// key instead of "parse failed".
#include <gtest/gtest.h>

#include <string>

#include "jpm/sim/policies.h"
#include "jpm/spec/spec.h"
#include "jpm/util/json.h"

namespace jpm::spec {
namespace {

using util::json::Value;

Value parse(const std::string& text) {
  Value v;
  std::string error;
  EXPECT_TRUE(util::json::parse(text, &v, &error)) << error;
  return v;
}

// Runs `fn`, requires a SpecError, and returns its message for substring
// checks (EXPECT_THROW would lose the message).
template <typename Fn>
std::string error_of(Fn fn) {
  try {
    fn();
  } catch (const SpecError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected SpecError";
  return {};
}

TEST(SpecErrorTest, UnknownKeyNamesFullPath) {
  const std::string msg = error_of([] {
    disk_from_json(parse(R"({"idle_watts": 7.5})"), "$.engine.joint.disk");
  });
  EXPECT_EQ(msg, "$.engine.joint.disk.idle_watts: unknown key");
}

TEST(SpecErrorTest, UnknownKeyInNestedObject) {
  const std::string msg = error_of([] {
    engine_from_json(parse(R"({"joint": {"mem": {"bank_byte": 1}}})"), "$");
  });
  EXPECT_EQ(msg, "$.joint.mem.bank_byte: unknown key");
}

TEST(SpecErrorTest, WrongTypeNamesExpectedAndActual) {
  EXPECT_EQ(error_of([] {
              disk_from_json(parse(R"({"idle_w": "high"})"), "$.disk");
            }),
            "$.disk.idle_w: expected number, got string");
  EXPECT_EQ(error_of([] {
              engine_from_json(parse(R"({"prefill_cache": 1})"), "$");
            }),
            "$.prefill_cache: expected boolean, got number");
  EXPECT_EQ(error_of([] { disk_from_json(parse("[]"), "$.disk"); }),
            "$.disk: expected object, got array");
}

TEST(SpecErrorTest, IntegerFieldsRejectFractionsAndNegatives) {
  EXPECT_EQ(error_of([] {
              workload_from_json(parse(R"({"seed": 1.5})"), "$.w");
            }),
            "$.w.seed: expected a nonnegative integer, got 1.5");
  EXPECT_EQ(error_of([] {
              workload_from_json(parse(R"({"dataset_bytes": -1})"), "$.w");
            }),
            "$.w.dataset_bytes: expected a nonnegative integer, got -1");
}

TEST(SpecErrorTest, BadEnumListsEveryValidName) {
  EXPECT_EQ(error_of([] {
              policy_from_json(parse(R"({"disk": "sometimes_on"})"), "$.p");
            }),
            "$.p.disk: unknown value \"sometimes_on\" (expected one of "
            "two_competitive, adaptive, predictive, always_on, joint)");
  EXPECT_EQ(error_of([] {
              policy_from_json(parse(R"({"mem": "off"})"), "$.p");
            }),
            "$.p.mem: unknown value \"off\" (expected one of "
            "fixed, power_down, disable, nap_all, joint)");
}

TEST(SpecErrorTest, UnsupportedVersionRejected) {
  EXPECT_EQ(error_of([] { parse_scenario(R"({"version": 2})"); }),
            "$.version: unsupported scenario version (expected 1)");
}

TEST(SpecErrorTest, MalformedJsonReportsDocumentRoot) {
  const std::string msg = error_of([] { parse_scenario("{\"name\": "); });
  EXPECT_EQ(msg.rfind("$: malformed JSON", 0), 0u) << msg;
}

TEST(SpecErrorTest, RosterPresetErrors) {
  EXPECT_EQ(error_of([] { roster_from_json(parse("{}"), "$.roster"); }),
            "$.roster: missing required key \"preset\"");
  EXPECT_EQ(error_of([] {
              roster_from_json(parse(R"({"preset": "kitchen_sink"})"),
                               "$.roster");
            }),
            "$.roster.preset: unknown value \"kitchen_sink\" "
            "(expected one of paper)");
  EXPECT_EQ(error_of([] {
              roster_from_json(parse(R"({"preset": "paper",
                                         "fm_gib": [8, 2.5]})"),
                               "$.roster");
            }),
            "$.roster.fm_gib[1]: expected a positive integer (GiB)");
}

TEST(SpecErrorTest, WorkloadPointErrors) {
  EXPECT_EQ(error_of([] {
              workloads_from_json(parse(R"([{"workload": {}}])"),
                                  "$.workloads");
            }),
            "$.workloads[0]: missing required key \"label\"");
  EXPECT_EQ(error_of([] {
              workloads_from_json(parse(R"({"base": {}})"), "$.workloads");
            }),
            "$.workloads: missing required key \"points\"");
  EXPECT_EQ(error_of([] {
              workloads_from_json(
                  parse(R"({"points": [{"label": "a", "sed": 3}]})"),
                  "$.workloads");
            }),
            "$.workloads.points[0].sed: unknown key");
}

TEST(SpecErrorTest, GridShapeErrorsNameThePath) {
  EXPECT_EQ(error_of([] {
              workloads_from_json(parse(R"({"grid": {}})"), "$.workloads");
            }),
            "$.workloads.grid: grid needs at least one axis");
  EXPECT_EQ(error_of([] {
              workloads_from_json(parse(R"({"grid": {"seed": []}})"),
                                  "$.workloads");
            }),
            "$.workloads.grid.seed: axis needs at least one value");
  EXPECT_EQ(error_of([] {
              workloads_from_json(parse(R"({"grid": {"seed": 3}})"),
                                  "$.workloads");
            }),
            "$.workloads.grid.seed: expected array, got number");
  EXPECT_EQ(error_of([] {
              workloads_from_json(parse(R"({"grid": {"seed": [1, true]}})"),
                                  "$.workloads");
            }),
            "$.workloads.grid.seed[1]: expected number, got boolean");
}

TEST(SpecErrorTest, GridAxisValuesGoThroughTheWorkloadBinder) {
  // Unknown axis names and per-value range checks fail exactly like the
  // same key would in a workload object, path and all.
  EXPECT_EQ(error_of([] {
              workloads_from_json(parse(R"({"grid": {"sed": [3]}})"),
                                  "$.workloads");
            }),
            "$.workloads.grid.sed: unknown key");
  EXPECT_EQ(error_of([] {
              workloads_from_json(parse(R"({"grid": {"seed": [1.5]}})"),
                                  "$.workloads");
            }),
            "$.workloads.grid.seed: expected a nonnegative integer, got 1.5");
}

TEST(SpecErrorTest, GridAndPointsAreMutuallyExclusive) {
  EXPECT_EQ(error_of([] {
              workloads_from_json(
                  parse(R"({"points": [{"label": "a"}],
                            "grid": {"seed": [1]}})"),
                  "$.workloads");
            }),
            "$.workloads: \"points\" and \"grid\" are mutually exclusive");
}

TEST(SpecErrorTest, GridExpansionIsCapped) {
  WorkloadGrid grid;
  grid.axes.emplace_back("seed", std::vector<double>(400, 1.0));
  grid.axes.emplace_back("byte_rate", std::vector<double>(300, 1e6));
  EXPECT_EQ(error_of([&] { expand_grid(grid, "$.workloads"); }),
            "$.workloads.grid: grid expands past the 100000-point cap");
}

TEST(SpecErrorTest, TraceSourceErrorsNameThePath) {
  EXPECT_EQ(error_of([] {
              workloads_from_json(
                  parse(R"([{"label": "a", "workload": {},
                             "trace": {"path": ""}}])"),
                  "$.workloads");
            }),
            "$.workloads[0].trace.path: trace path must not be empty");
  EXPECT_EQ(error_of([] {
              workloads_from_json(
                  parse(R"([{"label": "a", "workload": {},
                             "trace": {}}])"),
                  "$.workloads");
            }),
            "$.workloads[0].trace.path: trace path must not be empty");
  EXPECT_EQ(error_of([] {
              workloads_from_json(
                  parse(R"([{"label": "a", "workload": {},
                             "trace": {"file": "x.jpmc"}}])"),
                  "$.workloads");
            }),
            "$.workloads[0].trace.file: unknown key");
}

// ---- semantic validation ---------------------------------------------------
// A default-constructed Scenario is valid; each test breaks exactly one rule
// and checks the reported path.

Scenario valid_scenario() {
  Scenario sc;
  sc.name = "errors";
  sc.workloads.push_back({"w", workload::SynthesizerConfig{}, "", {}});
  sc.roster = {sim::always_on_policy(), sim::joint_policy()};
  return sc;
}

TEST(SpecValidateTest, ValidScenarioPasses) {
  EXPECT_NO_THROW(validate_scenario(valid_scenario()));
}

TEST(SpecValidateTest, HalfJointRosterEntryNamesTheEntry) {
  Scenario sc = valid_scenario();
  sc.roster[1].mem = sim::MemPolicyKind::kNapAll;  // joint disk, plain memory
  EXPECT_EQ(error_of([&] { validate_scenario(sc); }),
            "$.roster[1]: joint disk and joint memory policies must be used "
            "together");
}

TEST(SpecValidateTest, FixedMemorySizeBounds) {
  Scenario sc = valid_scenario();
  sc.roster[0] = sim::fixed_policy(sim::DiskPolicyKind::kTwoCompetitive,
                                   gib(8));
  sc.roster[0].fixed_bytes = 0;
  EXPECT_EQ(error_of([&] { validate_scenario(sc); }),
            "$.roster[0].fixed_bytes: fixed memory size must be positive");

  sc.roster[0].fixed_bytes = sc.engine.joint.physical_bytes + 1;
  EXPECT_EQ(error_of([&] { validate_scenario(sc); }),
            "$.roster[0].fixed_bytes: fixed memory size exceeds "
            "physical_bytes");
}

TEST(SpecValidateTest, GeometryErrorsNameEngineKeys) {
  Scenario sc = valid_scenario();
  sc.engine.joint.physical_bytes += 1;  // no longer a whole number of units
  EXPECT_EQ(error_of([&] { validate_scenario(sc); }),
            "$.engine.joint.physical_bytes: physical memory must be a whole "
            "number of units");

  sc = valid_scenario();
  sc.engine.disk_count = 0;
  EXPECT_EQ(error_of([&] { validate_scenario(sc); }),
            "$.engine.disk_count: at least one disk is required");

  sc = valid_scenario();
  sc.workloads[0].workload.page_bytes = 3 * kKiB;  // unit % page != 0
  EXPECT_EQ(error_of([&] { validate_scenario(sc); }),
            "$.workloads[0].workload.page_bytes: engine unit_bytes must be a "
            "whole number of pages");
}

TEST(SpecValidateTest, BatchSizeBoundsNameTheEngineKey) {
  Scenario sc = valid_scenario();
  sc.engine.batch_size = 0;
  EXPECT_EQ(error_of([&] { validate_scenario(sc); }),
            "$.engine.batch_size: batch_size must be in [1, 65536]");

  sc.engine.batch_size = 65537;
  EXPECT_EQ(error_of([&] { validate_scenario(sc); }),
            "$.engine.batch_size: batch_size must be in [1, 65536]");

  sc.engine.batch_size = 65536;
  EXPECT_NO_THROW(validate_scenario(sc));
}

TEST(SpecValidateTest, ComponentValidateMessagesKeepTheirPath) {
  Scenario sc = valid_scenario();
  sc.workloads[0].workload.duration_s = 0.0;
  const std::string msg = error_of([&] { validate_scenario(sc); });
  EXPECT_EQ(msg.rfind("$.workloads[0].workload: ", 0), 0u) << msg;

  sc = valid_scenario();
  sc.engine.joint.disk.idle_w = 0.5;  // below standby_w: invalid power model
  const std::string disk_msg = error_of([&] { validate_scenario(sc); });
  EXPECT_EQ(disk_msg.rfind("$.engine.joint.disk: ", 0), 0u) << disk_msg;
}

TEST(SpecValidateTest, MultiSpeedRequiresSingleDisk) {
  Scenario sc = valid_scenario();
  sc.roster[0] = sim::drpm_fixed_policy(gib(8));
  sc.engine.disk_count = 2;
  EXPECT_EQ(error_of([&] { validate_scenario(sc); }),
            "$.roster[0].multi_speed: multi-speed arrays are not modeled");
}

TEST(SpecErrorTest, LoadScenarioFilePrefixesThePath) {
  const std::string msg = error_of([] {
    load_scenario_file("/nonexistent/jpm_spec_test.json");
  });
  EXPECT_EQ(msg, "/nonexistent/jpm_spec_test.json: cannot open scenario file");
}

}  // namespace
}  // namespace jpm::spec
