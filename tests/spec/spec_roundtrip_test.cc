// Round-trip contract of jpm::spec: every config struct serializes to
// deterministic JSON, parses back to the same struct, and
// serialize(parse(serialize(x))) == serialize(x) byte for byte. The goldens
// here are hand-written JSON strings so a formatting or field-order change
// cannot slip through as "still round-trips".
#include <gtest/gtest.h>

#include <string>

#include "jpm/sim/policies.h"
#include "jpm/spec/spec.h"
#include "jpm/util/json.h"

namespace jpm::spec {
namespace {

using util::json::Value;

std::string dump2(const Value& v) { return util::json::dump(v, 2); }

Value parse(const std::string& text) {
  Value v;
  std::string error;
  EXPECT_TRUE(util::json::parse(text, &v, &error)) << error;
  return v;
}

// ---- byte-identical goldens per struct ------------------------------------
// Field order is bind order; numbers are shortest-round-trip. These literals
// are the format documentation for each section of a scenario file.

TEST(SpecGoldenTest, DiskParamsDefaults) {
  EXPECT_EQ(dump2(to_json(disk::DiskParams{})),
            "{\n"
            "  \"active_w\": 12.5,\n"
            "  \"idle_w\": 7.5,\n"
            "  \"standby_w\": 0.9,\n"
            "  \"transition_j\": 77.5,\n"
            "  \"spin_up_s\": 10,\n"
            "  \"avg_seek_s\": 0.008,\n"
            "  \"avg_rotation_s\": 0.00416,\n"
            "  \"media_rate_bytes_per_s\": 58000000\n"
            "}");
}

TEST(SpecGoldenTest, RdramParamsDefaults) {
  EXPECT_EQ(dump2(to_json(mem::RdramParams{})),
            "{\n"
            "  \"bank_bytes\": 16777216,\n"
            "  \"nap_mw_per_mb\": 0.656,\n"
            "  \"dynamic_mj_per_mb\": 0.809,\n"
            "  \"powerdown_fraction\": 0.3,\n"
            "  \"powerdown_timeout_s\": 0.000129,\n"
            "  \"disable_timeout_s\": 732\n"
            "}");
}

TEST(SpecGoldenTest, PolicySpecJoint) {
  EXPECT_EQ(dump2(to_json(sim::joint_policy())),
            "{\n"
            "  \"name\": \"Joint\",\n"
            "  \"disk\": \"joint\",\n"
            "  \"mem\": \"joint\",\n"
            "  \"fixed_bytes\": 0,\n"
            "  \"multi_speed\": false\n"
            "}");
}

TEST(SpecGoldenTest, WorkloadDefaults) {
  EXPECT_EQ(dump2(to_json(workload::SynthesizerConfig{})),
            "{\n"
            "  \"dataset_bytes\": 17179869184,\n"
            "  \"byte_rate\": 100000000,\n"
            "  \"popularity\": 0.1,\n"
            "  \"duration_s\": 3600,\n"
            "  \"page_bytes\": 262144,\n"
            "  \"file_scale\": 16,\n"
            "  \"rate_modulation\": 0.2,\n"
            "  \"modulation_period_s\": 1800,\n"
            "  \"intra_request_spacing_s\": 0.002,\n"
            "  \"temporal_locality\": 0,\n"
            "  \"write_fraction\": 0,\n"
            "  \"locality_window\": 8192,\n"
            "  \"seed\": 1\n"
            "}");
}

// ---- parse(serialize(x)) == x, proven as byte-stable serialization --------

template <typename T, typename FromFn>
void expect_stable(const T& value, FromFn from_json_fn) {
  const std::string once = dump2(to_json(value));
  const T reparsed = from_json_fn(parse(once), "$");
  EXPECT_EQ(dump2(to_json(reparsed)), once);
}

TEST(SpecRoundTripTest, EveryStructIsByteStable) {
  workload::SynthesizerConfig w;
  w.dataset_bytes = gib(3);
  w.byte_rate = 2e6;
  w.temporal_locality = 0.85;
  w.write_fraction = 0.125;
  w.seed = 99;
  expect_stable(w, workload_from_json);

  mem::RdramParams m;
  m.nap_mw_per_mb = 1.25;
  expect_stable(m, rdram_from_json);

  disk::DiskParams d;
  d.spin_up_s = 6.0;
  d.transition_j = 60.5;
  expect_stable(d, disk_from_json);

  core::JointConfig j;
  j.period_s = 600.0;
  j.alpha_estimator = core::AlphaEstimator::kMle;
  j.timeout_rule = core::TimeoutRule::kExponential;
  expect_stable(j, joint_from_json);

  fault::FaultPlan f;
  f.enabled = true;
  f.p_spinup_fail = 0.05;
  f.guard.enabled = true;
  expect_stable(f, fault_from_json);

  sim::EngineConfig e;
  e.disk_count = 4;
  e.warm_up_s = 1200.0;
  e.fault.enabled = true;
  expect_stable(e, engine_from_json);

  cluster::ClusterConfig c;
  c.server_count = 4;
  c.distribution = cluster::DistributionPolicy::kPartitioned;
  c.chassis_on_w = 150.0;
  expect_stable(c, cluster_from_json);
}

TEST(SpecRoundTripTest, OmittedKeysKeepDefaults) {
  // An empty object is a valid struct body: every field falls back to the
  // C++ default, so serializing the result equals serializing the default.
  const auto d = disk_from_json(parse("{}"), "$");
  EXPECT_EQ(dump2(to_json(d)), dump2(to_json(disk::DiskParams{})));

  const auto e = engine_from_json(parse(R"({"disk_count": 2})"), "$");
  EXPECT_EQ(e.disk_count, 2u);
  EXPECT_EQ(e.joint.period_s, sim::EngineConfig{}.joint.period_s);
}

TEST(SpecRoundTripTest, BatchSizeOmittedAtDefaultRoundTripsOtherwise) {
  // batch_size is a throughput knob with no effect on results, so the
  // default stays out of serialized scenarios (keeping the canonical corpus
  // and scenario hashes stable); a non-default value must round-trip.
  EXPECT_EQ(dump2(to_json(sim::EngineConfig{})).find("batch_size"),
            std::string::npos);

  sim::EngineConfig e;
  e.batch_size = 256;
  const std::string once = dump2(to_json(e));
  EXPECT_NE(once.find("\"batch_size\": 256"), std::string::npos);
  expect_stable(e, engine_from_json);

  const auto parsed = engine_from_json(parse(R"({"batch_size": 7})"), "$");
  EXPECT_EQ(parsed.batch_size, 7u);
  EXPECT_EQ(engine_from_json(parse("{}"), "$").batch_size,
            sim::EngineConfig{}.batch_size);
}

TEST(SpecRoundTripTest, RosterPresetResolvesToPaperRoster) {
  const auto preset = roster_from_json(
      parse(R"({"preset": "paper", "fm_gib": [8, 128]})"), "$");
  const auto direct = sim::paper_policies(128 * kGiB, {8, 128});
  EXPECT_EQ(dump2(to_json(preset)), dump2(to_json(direct)));
}

TEST(SpecRoundTripTest, WorkloadSweepFormResolvesToExplicitPoints) {
  const auto points = workloads_from_json(
      parse(R"({"base": {"duration_s": 100, "seed": 7},
                "points": [{"label": "a"},
                           {"label": "b", "byte_rate": 5000000}]})"),
      "$");
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].label, "a");
  EXPECT_EQ(points[0].workload.duration_s, 100.0);
  EXPECT_EQ(points[0].workload.seed, 7u);
  EXPECT_EQ(points[1].workload.byte_rate, 5e6);
  EXPECT_EQ(points[1].workload.duration_s, 100.0);

  // Serialization always emits the resolved explicit array, which parses
  // back through the array branch to identical bytes.
  const std::string resolved = dump2(to_json(points));
  EXPECT_EQ(dump2(to_json(workloads_from_json(parse(resolved), "$"))),
            resolved);
}

TEST(SpecRoundTripTest, GridFormExpandsFirstAxisOutermost) {
  const auto points = workloads_from_json(
      parse(R"({"base": {"duration_s": 100},
                "grid": {"byte_rate": [2000000, 4000000],
                         "seed": [1, 2, 3]}})"),
      "$.workloads");
  ASSERT_EQ(points.size(), 6u);

  // Labels are the grid coordinates; the first declared axis varies slowest.
  EXPECT_EQ(points[0].label, "byte_rate=2000000,seed=1");
  EXPECT_EQ(points[1].label, "byte_rate=2000000,seed=2");
  EXPECT_EQ(points[2].label, "byte_rate=2000000,seed=3");
  EXPECT_EQ(points[3].label, "byte_rate=4000000,seed=1");
  EXPECT_EQ(points[5].label, "byte_rate=4000000,seed=3");
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(points[i].workload.byte_rate, i < 3 ? 2e6 : 4e6);
    EXPECT_EQ(points[i].workload.seed, i % 3 + 1);
    EXPECT_EQ(points[i].workload.duration_s, 100.0);  // base carries through
  }

  // Axis provenance rides on every point, in declaration order.
  ASSERT_EQ(points[4].axes.size(), 2u);
  EXPECT_EQ(points[4].axes[0],
            (std::pair<std::string, double>{"byte_rate", 4e6}));
  EXPECT_EQ(points[4].axes[1], (std::pair<std::string, double>{"seed", 2.0}));
}

TEST(SpecRoundTripTest, GridScenarioSerializesBackToTheGridForm) {
  const Scenario sc = parse_scenario(
      R"({"name": "grid",
          "workloads": {"base": {"duration_s": 100},
                        "grid": {"seed": [1, 2, 3]}}})");
  ASSERT_TRUE(sc.grid.has_value());
  EXPECT_EQ(sc.workloads.size(), 3u);

  // Serialization re-emits the compact grid form (not the 3-point
  // expansion) and stays canonical through another round trip.
  const std::string once = serialize_scenario(sc);
  EXPECT_NE(once.find("\"grid\""), std::string::npos);
  EXPECT_EQ(once.find("\"points\""), std::string::npos);
  EXPECT_EQ(serialize_scenario(parse_scenario(once)), once);
}

TEST(SpecRoundTripTest, TraceSourceRoundTripsInBothForms) {
  // Array form: the "trace" source names a JPMC file to replay.
  const auto points = workloads_from_json(
      parse(R"([{"label": "a", "workload": {},
                 "trace": {"path": "big.jpmc"}},
                {"label": "b", "workload": {}}])"),
      "$");
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].trace_path, "big.jpmc");
  EXPECT_EQ(points[1].trace_path, "");

  const std::string resolved = dump2(to_json(points));
  EXPECT_NE(resolved.find("\"trace\""), std::string::npos);
  EXPECT_NE(resolved.find("\"path\": \"big.jpmc\""), std::string::npos);
  EXPECT_EQ(dump2(to_json(workloads_from_json(parse(resolved), "$"))),
            resolved);

  // Sweep-point form takes the same source key per point.
  const auto sweep = workloads_from_json(
      parse(R"({"base": {"seed": 3},
                "points": [{"label": "a", "trace": {"path": "p0.jpmc"}}]})"),
      "$");
  ASSERT_EQ(sweep.size(), 1u);
  EXPECT_EQ(sweep[0].trace_path, "p0.jpmc");
  EXPECT_EQ(sweep[0].workload.seed, 3u);
}

TEST(SpecRoundTripTest, ScenarioIsByteStableIncludingCluster) {
  Scenario sc;
  sc.name = "roundtrip";
  sc.description = "unit test";
  sc.workloads.push_back({"16GB", workload::SynthesizerConfig{}, "", {}});
  sc.roster = {sim::always_on_policy(), sim::joint_policy()};
  sc.engine.warm_up_s = 600.0;
  cluster::ClusterConfig cl;
  cl.server_count = 4;
  sc.cluster = cl;
  sc.output.header = "round-trip scenario";
  sc.output.tables.push_back({"total energy", Metric::kTotalPct});

  const std::string once = serialize_scenario(sc);
  const std::string twice = serialize_scenario(parse_scenario(once));
  EXPECT_EQ(twice, once);
  EXPECT_NE(once.find("\"cluster\""), std::string::npos);
  EXPECT_EQ(once.back(), '\n');
}

TEST(SpecRoundTripTest, HashIsFnv1aOfSerialization) {
  // FNV-1a 64 offset basis: the hash of the empty string.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);

  Scenario sc;
  sc.name = "hash";
  char expected[17];
  std::snprintf(expected, sizeof expected, "%016llx",
                static_cast<unsigned long long>(
                    fnv1a64(serialize_scenario(sc))));
  EXPECT_EQ(scenario_hash(sc), expected);
}

TEST(SpecRoundTripTest, HashChangesIffResolvedScenarioChanges) {
  Scenario sc;
  sc.name = "hash";
  sc.workloads.push_back({"w", workload::SynthesizerConfig{}, "", {}});
  const std::string h0 = scenario_hash(sc);

  Scenario same = sc;
  EXPECT_EQ(scenario_hash(same), h0);  // copies hash identically

  Scenario changed = sc;
  changed.workloads[0].workload.seed += 1;
  EXPECT_NE(scenario_hash(changed), h0);

  changed.workloads[0].workload.seed -= 1;
  EXPECT_EQ(scenario_hash(changed), h0);  // reverting restores the hash
}

}  // namespace
}  // namespace jpm::spec
