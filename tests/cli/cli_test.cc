// Subprocess tests for the `jpm` CLI's exit paths: every failure mode must
// exit non-zero with a path-named message on stderr (never an uncaught
// exception), and the happy paths must exit 0. The binary under test comes
// in via JPM_CLI_PATH; the checked-in scenarios via JPM_SCENARIOS_DIR.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <sys/wait.h>

namespace {

const std::string kCli = JPM_CLI_PATH;
const std::string kScenarios = JPM_SCENARIOS_DIR;

struct CmdResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr interleaved
};

CmdResult run_cmd(const std::string& command) {
  CmdResult result;
  FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buf;
  std::size_t n;
  while ((n = std::fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    result.output.append(buf.data(), n);
  }
  const int status = pclose(pipe);
  if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  return result;
}

std::string demo_scenario() { return kScenarios + "/serve_demo.json"; }

std::string write_temp(const std::string& name, const std::string& contents) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path);
  out << contents;
  return path;
}

TEST(CliTest, NoArgumentsPrintsUsageAndExitsNonZero) {
  const auto r = run_cmd(kCli);
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("usage:"), std::string::npos) << r.output;
}

TEST(CliTest, UnknownCommandExitsNonZero) {
  const auto r = run_cmd(kCli + " frobnicate");
  EXPECT_NE(r.exit_code, 0);
}

TEST(CliTest, MissingScenarioFileNamesThePath) {
  const auto r = run_cmd(kCli + " validate /nonexistent/missing.json");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("/nonexistent/missing.json"), std::string::npos)
      << r.output;
}

TEST(CliTest, RunWithMissingFileExitsOneNotUncaught) {
  const auto r = run_cmd(kCli + " run /nonexistent/missing.json");
  EXPECT_EQ(r.exit_code, 1);  // an uncaught exception would abort (134)
  EXPECT_NE(r.output.find("/nonexistent/missing.json"), std::string::npos)
      << r.output;
}

TEST(CliTest, MalformedScenarioNamesPathAndExitsOne) {
  const auto path = write_temp("cli_test_bad.json", "{\"version\": 1,");
  const auto r = run_cmd(kCli + " validate " + path);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find(path), std::string::npos) << r.output;
}

TEST(CliTest, BadStreamSectionNamesTheJsonPath) {
  // An out-of-range stream knob must be rejected at validate time with the
  // $.stream path in the message.
  std::ifstream in(demo_scenario());
  std::stringstream ss;
  ss << in.rdbuf();
  std::string text = ss.str();
  const std::string needle = "\"ring_capacity\": 4096";
  const auto pos = text.find(needle);
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, needle.size(), "\"ring_capacity\": 3");
  const auto path = write_temp("cli_test_bad_stream.json", text);
  const auto r = run_cmd(kCli + " validate " + path);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("$.stream"), std::string::npos) << r.output;
}

TEST(CliTest, ValidateAndHashAcceptTheDemoScenario) {
  const auto v = run_cmd(kCli + " validate " + demo_scenario());
  EXPECT_EQ(v.exit_code, 0) << v.output;
  EXPECT_NE(v.output.find("ok "), std::string::npos);
  const auto h = run_cmd(kCli + " hash " + demo_scenario());
  EXPECT_EQ(h.exit_code, 0);
  EXPECT_EQ(h.output.size(), 17u);  // 16 hex digits + newline
}

TEST(CliTest, PrintReproducesTheCheckedInScenario) {
  const auto r = run_cmd(kCli + " print " + demo_scenario());
  EXPECT_EQ(r.exit_code, 0);
  std::ifstream in(demo_scenario());
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(r.output, ss.str());
}

TEST(CliTest, ServeUnknownPolicyListsTheRoster) {
  const auto r =
      run_cmd(kCli + " serve " + demo_scenario() + " --policy=bogus </dev/null");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("no policy named"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("Always-on"), std::string::npos) << r.output;
}

TEST(CliTest, ServeUnknownFormatExitsNonZero) {
  const auto r =
      run_cmd(kCli + " serve " + demo_scenario() + " --format=csv </dev/null");
  EXPECT_EQ(r.exit_code, 2);
}

TEST(CliTest, ServeEmptyStdinFlushesACompleteReport) {
  const auto r = run_cmd(kCli + " serve " + demo_scenario() + " </dev/null");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("\"kind\": \"serve_report\""), std::string::npos);
  EXPECT_NE(r.output.find("\"interrupted\": false"), std::string::npos);
}

TEST(CliTest, ServeConsumesPipedJsonlEvents) {
  const auto r = run_cmd(
      "printf '{\"t\": 1, \"page\": 0}\\n{\"t\": 2, \"page\": 1}\\n' | " +
      kCli + " serve " + demo_scenario());
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("\"events_processed\": 2"), std::string::npos)
      << r.output;
}

TEST(CliTest, ServeDecodeErrorExitsOneButStillReports) {
  const auto r = run_cmd("printf 'not json\\n' | " + kCli + " serve " +
                         demo_scenario() + " --format=jsonl");
  EXPECT_EQ(r.exit_code, 1);
  // The report is flushed before the error exit, with the position inside.
  EXPECT_NE(r.output.find("\"kind\": \"serve_report\""), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("line 1"), std::string::npos) << r.output;
}

TEST(CliTest, SynthCountEmitsExactlyNEvents) {
  const auto r =
      run_cmd(kCli + " synth " + demo_scenario() + " --count=5");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  std::size_t lines = 0;
  for (char c : r.output) lines += c == '\n';
  EXPECT_EQ(lines, 5u);
}

TEST(CliTest, SynthRejectsAutoFormat) {
  const auto r =
      run_cmd(kCli + " synth " + demo_scenario() + " --format=auto");
  EXPECT_EQ(r.exit_code, 2);
}

TEST(CliTest, SynthPipesIntoServeEndToEnd) {
  const auto r = run_cmd(kCli + " synth " + demo_scenario() +
                         " --count=2000 --format=binary | " + kCli +
                         " serve " + demo_scenario() + " --policy=Joint");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("\"policy\": \"Joint\""), std::string::npos);
  EXPECT_NE(r.output.find("\"wire_format\": \"binary\""), std::string::npos);
  EXPECT_NE(r.output.find("\"events_processed\": 2000"), std::string::npos)
      << r.output;
}

// ---- jpm trace (the JPMC chunked store) ------------------------------------

TEST(CliTest, TraceWithoutSubcommandExitsTwo) {
  EXPECT_EQ(run_cmd(kCli + " trace").exit_code, 2);
  EXPECT_EQ(run_cmd(kCli + " trace frobnicate").exit_code, 2);
}

TEST(CliTest, TraceSynthInfoCatRoundTrip) {
  const std::string file = ::testing::TempDir() + "cli_trace.jpmc";
  const auto synth = run_cmd("JPM_BENCH_FAST=1 " + kCli + " trace synth " +
                             demo_scenario() + " " + file);
  ASSERT_EQ(synth.exit_code, 0) << synth.output;
  EXPECT_NE(synth.output.find("events"), std::string::npos);

  const auto info = run_cmd(kCli + " trace info " + file + " --verify");
  EXPECT_EQ(info.exit_code, 0) << info.output;
  EXPECT_NE(info.output.find("format:       JPMC v1"), std::string::npos);
  EXPECT_NE(info.output.find("content_hash:"), std::string::npos);
  EXPECT_NE(info.output.find("verify:       ok"), std::string::npos);

  const auto cat = run_cmd(kCli + " trace cat " + file + " --limit=2");
  EXPECT_EQ(cat.exit_code, 0) << cat.output;
  EXPECT_NE(cat.output.find("time_s,page,request_start,is_write"),
            std::string::npos);

  const auto jsonl =
      run_cmd(kCli + " trace cat " + file + " --format=jsonl --limit=1");
  EXPECT_EQ(jsonl.exit_code, 0) << jsonl.output;
  EXPECT_NE(jsonl.output.find("{\"t\":"), std::string::npos);
  std::remove(file.c_str());
}

TEST(CliTest, TracePackConvertsCsvCaptures) {
  const auto csv = write_temp("cli_trace.csv",
                              "time_s,page,request_start\n"
                              "0.5,100,1\n0.502,101,0\n1.25,7,1\n");
  const std::string packed = ::testing::TempDir() + "cli_packed.jpmc";
  const auto pack = run_cmd(kCli + " trace pack " + csv + " " + packed);
  EXPECT_EQ(pack.exit_code, 0) << pack.output;
  const auto info = run_cmd(kCli + " trace info " + packed);
  EXPECT_NE(info.output.find("events:       3"), std::string::npos)
      << info.output;
  EXPECT_NE(info.output.find("total_pages:  102"), std::string::npos)
      << info.output;  // max page + 1, derived from the events
  std::remove(packed.c_str());
}

TEST(CliTest, TraceInfoRejectsNonJpmcFilesByName) {
  const auto path = write_temp("cli_not_a_trace.jpmc",
                               std::string(100, 'x'));  // a full header's worth
  const auto r = run_cmd(kCli + " trace info " + path);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("bad magic"), std::string::npos) << r.output;

  const auto tiny = write_temp("cli_tiny.jpmc", "hi");
  const auto rt = run_cmd(kCli + " trace info " + tiny);
  EXPECT_EQ(rt.exit_code, 1);
  EXPECT_NE(rt.output.find("header truncated"), std::string::npos)
      << rt.output;
}

TEST(CliTest, TraceInfoTruncatedFileNamesTheDefect) {
  const std::string file = ::testing::TempDir() + "cli_trunc.jpmc";
  const auto synth = run_cmd("JPM_BENCH_FAST=1 " + kCli + " trace synth " +
                             demo_scenario() + " " + file);
  ASSERT_EQ(synth.exit_code, 0) << synth.output;
  ASSERT_EQ(run_cmd("truncate -s -40 " + file).exit_code, 0);
  const auto r = run_cmd(kCli + " trace info " + file);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find(file), std::string::npos) << r.output;
  std::remove(file.c_str());
}

// The headline contract end-to-end through the shipped binary: a scenario
// replayed from JPMC files prints byte-identical tables to the synthesizing
// run, and its telemetry report carries the trace provenance.
TEST(CliTest, RunFromTraceFilesMatchesInMemoryStdout) {
  const std::string file = ::testing::TempDir() + "cli_run_trace.jpmc";
  ASSERT_EQ(run_cmd("JPM_BENCH_FAST=1 " + kCli + " trace synth " +
                    demo_scenario() + " " + file)
                .exit_code,
            0);

  // Rewrite the scenario's workload point to replay the file.
  std::ifstream in(demo_scenario());
  std::stringstream ss;
  ss << in.rdbuf();
  std::string text = ss.str();
  const std::string needle = "\"workload\": {";
  const auto pos = text.find(needle);
  ASSERT_NE(pos, std::string::npos);
  text.insert(pos, "\"trace\": {\"path\": \"" + file + "\"},\n      ");
  const auto traced = write_temp("cli_run_traced.json", text);

  // Both runs export telemetry to the same base so the stdout log lines
  // match; the report left on disk is the file-backed run's.
  const std::string base = ::testing::TempDir() + "cli_run_trace";
  const auto mem = run_cmd("JPM_BENCH_FAST=1 " + kCli + " run " +
                           demo_scenario() + " --telemetry=" + base);
  const auto file_backed = run_cmd("JPM_BENCH_FAST=1 " + kCli + " run " +
                                   traced + " --telemetry=" + base);
  EXPECT_EQ(mem.exit_code, 0) << mem.output;
  EXPECT_EQ(file_backed.exit_code, 0) << file_backed.output;
  EXPECT_EQ(file_backed.output, mem.output);

  std::ifstream report(base + ".report.json");
  std::stringstream rs;
  rs << report.rdbuf();
  EXPECT_NE(rs.str().find("\"trace_path\": \"" + file + "\""),
            std::string::npos);
  EXPECT_NE(rs.str().find("\"trace_hash\": \""), std::string::npos);
  std::remove(file.c_str());
}

}  // namespace
