// Subprocess tests for the `jpm` CLI's exit paths: every failure mode must
// exit non-zero with a path-named message on stderr (never an uncaught
// exception), and the happy paths must exit 0. The binary under test comes
// in via JPM_CLI_PATH; the checked-in scenarios via JPM_SCENARIOS_DIR.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <sys/wait.h>

namespace {

const std::string kCli = JPM_CLI_PATH;
const std::string kScenarios = JPM_SCENARIOS_DIR;

struct CmdResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr interleaved
};

CmdResult run_cmd(const std::string& command) {
  CmdResult result;
  FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buf;
  std::size_t n;
  while ((n = std::fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    result.output.append(buf.data(), n);
  }
  const int status = pclose(pipe);
  if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  return result;
}

std::string demo_scenario() { return kScenarios + "/serve_demo.json"; }

std::string write_temp(const std::string& name, const std::string& contents) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path);
  out << contents;
  return path;
}

TEST(CliTest, NoArgumentsPrintsUsageAndExitsNonZero) {
  const auto r = run_cmd(kCli);
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("usage:"), std::string::npos) << r.output;
}

TEST(CliTest, UnknownCommandExitsNonZero) {
  const auto r = run_cmd(kCli + " frobnicate");
  EXPECT_NE(r.exit_code, 0);
}

TEST(CliTest, MissingScenarioFileNamesThePath) {
  const auto r = run_cmd(kCli + " validate /nonexistent/missing.json");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("/nonexistent/missing.json"), std::string::npos)
      << r.output;
}

TEST(CliTest, RunWithMissingFileExitsOneNotUncaught) {
  const auto r = run_cmd(kCli + " run /nonexistent/missing.json");
  EXPECT_EQ(r.exit_code, 1);  // an uncaught exception would abort (134)
  EXPECT_NE(r.output.find("/nonexistent/missing.json"), std::string::npos)
      << r.output;
}

TEST(CliTest, MalformedScenarioNamesPathAndExitsOne) {
  const auto path = write_temp("cli_test_bad.json", "{\"version\": 1,");
  const auto r = run_cmd(kCli + " validate " + path);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find(path), std::string::npos) << r.output;
}

TEST(CliTest, BadStreamSectionNamesTheJsonPath) {
  // An out-of-range stream knob must be rejected at validate time with the
  // $.stream path in the message.
  std::ifstream in(demo_scenario());
  std::stringstream ss;
  ss << in.rdbuf();
  std::string text = ss.str();
  const std::string needle = "\"ring_capacity\": 4096";
  const auto pos = text.find(needle);
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, needle.size(), "\"ring_capacity\": 3");
  const auto path = write_temp("cli_test_bad_stream.json", text);
  const auto r = run_cmd(kCli + " validate " + path);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("$.stream"), std::string::npos) << r.output;
}

TEST(CliTest, ValidateAndHashAcceptTheDemoScenario) {
  const auto v = run_cmd(kCli + " validate " + demo_scenario());
  EXPECT_EQ(v.exit_code, 0) << v.output;
  EXPECT_NE(v.output.find("ok "), std::string::npos);
  const auto h = run_cmd(kCli + " hash " + demo_scenario());
  EXPECT_EQ(h.exit_code, 0);
  EXPECT_EQ(h.output.size(), 17u);  // 16 hex digits + newline
}

TEST(CliTest, PrintReproducesTheCheckedInScenario) {
  const auto r = run_cmd(kCli + " print " + demo_scenario());
  EXPECT_EQ(r.exit_code, 0);
  std::ifstream in(demo_scenario());
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(r.output, ss.str());
}

TEST(CliTest, ServeUnknownPolicyListsTheRoster) {
  const auto r =
      run_cmd(kCli + " serve " + demo_scenario() + " --policy=bogus </dev/null");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("no policy named"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("Always-on"), std::string::npos) << r.output;
}

TEST(CliTest, ServeUnknownFormatExitsNonZero) {
  const auto r =
      run_cmd(kCli + " serve " + demo_scenario() + " --format=csv </dev/null");
  EXPECT_EQ(r.exit_code, 2);
}

TEST(CliTest, ServeEmptyStdinFlushesACompleteReport) {
  const auto r = run_cmd(kCli + " serve " + demo_scenario() + " </dev/null");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("\"kind\": \"serve_report\""), std::string::npos);
  EXPECT_NE(r.output.find("\"interrupted\": false"), std::string::npos);
}

TEST(CliTest, ServeConsumesPipedJsonlEvents) {
  const auto r = run_cmd(
      "printf '{\"t\": 1, \"page\": 0}\\n{\"t\": 2, \"page\": 1}\\n' | " +
      kCli + " serve " + demo_scenario());
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("\"events_processed\": 2"), std::string::npos)
      << r.output;
}

TEST(CliTest, ServeDecodeErrorExitsOneButStillReports) {
  const auto r = run_cmd("printf 'not json\\n' | " + kCli + " serve " +
                         demo_scenario() + " --format=jsonl");
  EXPECT_EQ(r.exit_code, 1);
  // The report is flushed before the error exit, with the position inside.
  EXPECT_NE(r.output.find("\"kind\": \"serve_report\""), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("line 1"), std::string::npos) << r.output;
}

TEST(CliTest, SynthCountEmitsExactlyNEvents) {
  const auto r =
      run_cmd(kCli + " synth " + demo_scenario() + " --count=5");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  std::size_t lines = 0;
  for (char c : r.output) lines += c == '\n';
  EXPECT_EQ(lines, 5u);
}

TEST(CliTest, SynthRejectsAutoFormat) {
  const auto r =
      run_cmd(kCli + " synth " + demo_scenario() + " --format=auto");
  EXPECT_EQ(r.exit_code, 2);
}

TEST(CliTest, SynthPipesIntoServeEndToEnd) {
  const auto r = run_cmd(kCli + " synth " + demo_scenario() +
                         " --count=2000 --format=binary | " + kCli +
                         " serve " + demo_scenario() + " --policy=Joint");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("\"policy\": \"Joint\""), std::string::npos);
  EXPECT_NE(r.output.find("\"wire_format\": \"binary\""), std::string::npos);
  EXPECT_NE(r.output.find("\"events_processed\": 2000"), std::string::npos)
      << r.output;
}

}  // namespace
