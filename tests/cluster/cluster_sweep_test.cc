// Fleet-scale cluster execution: the shard-block arena layout and the
// run_cluster_sweep fan-out. The determinism contract is the headline — a
// straggler-heavy, fault-injected cluster sweep (server crashes, spin-up
// failures, a dense point next to a sparse one) must produce bit-identical
// metrics and an identical progress stream at any JPM_THREADS and either
// JPM_SCHED.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "jpm/cluster/cluster.h"

namespace jpm::cluster {
namespace {

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (had_) saved_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_ = false;
  std::string saved_;
};

// ---- ShardLayout ------------------------------------------------------------

TEST(ShardLayoutTest, PartitionsEventsByRouteKeepingTimeOrder) {
  workload::Trace trace;
  trace.push_back({0.0, 10, true, false});   // -> server 0
  trace.push_back({0.1, 11, false, false});  // -> server 1
  trace.push_back({0.2, 12, true, false});   // -> server 0
  trace.push_back({0.3, 13, true, false});   // -> server 2
  trace.push_back({0.4, 14, false, false});  // -> server 0
  trace.push_back({0.5, 15, true, true});    // -> server 1 (write start)
  const std::vector<std::uint32_t> routes = {0, 1, 0, 2, 0, 1};

  const ShardLayout shards = build_shard_layout(trace, routes, 3);
  EXPECT_EQ(shards.server_count(), 3u);
  EXPECT_EQ(shards.event_offsets,
            (std::vector<std::size_t>{0, 3, 5, 6}));
  EXPECT_EQ(shards.events_of(0), 3u);
  EXPECT_EQ(shards.events_of(1), 2u);
  EXPECT_EQ(shards.events_of(2), 1u);

  // Server 0's contiguous block, in original time order.
  EXPECT_EQ(shards.times[0], 0.0);
  EXPECT_EQ(shards.times[1], 0.2);
  EXPECT_EQ(shards.times[2], 0.4);
  EXPECT_EQ(shards.pages[0], 10u);
  EXPECT_EQ(shards.pages[1], 12u);
  EXPECT_EQ(shards.pages[2], 14u);
  // Server 1's block carries the flag bits through.
  EXPECT_EQ(shards.pages[3], 11u);
  EXPECT_EQ(shards.flags[4],
            workload::kTraceFlagStart | workload::kTraceFlagWrite);

  // Arrivals lane: request starts only, per server.
  EXPECT_EQ(shards.arrival_offsets,
            (std::vector<std::size_t>{0, 2, 3, 4}));
  EXPECT_EQ(shards.arrivals[0], 0.0);
  EXPECT_EQ(shards.arrivals[1], 0.2);
  EXPECT_EQ(shards.arrivals[2], 0.5);
  EXPECT_EQ(shards.arrivals[3], 0.3);
  EXPECT_EQ(shards.request_counts,
            (std::vector<std::uint64_t>{2, 1, 1}));
}

TEST(ShardLayoutTest, UntouchedServerOwnsAnEmptySlice) {
  workload::Trace trace;
  trace.push_back({1.0, 0, true, false});
  trace.push_back({2.0, 1, true, false});
  const ShardLayout shards =
      build_shard_layout(trace, {0, 0}, 3);
  EXPECT_EQ(shards.events_of(0), 2u);
  EXPECT_EQ(shards.events_of(1), 0u);
  EXPECT_EQ(shards.events_of(2), 0u);
  EXPECT_EQ(shards.request_counts,
            (std::vector<std::uint64_t>{2, 0, 0}));
}

// ---- sweep determinism ------------------------------------------------------

workload::SynthesizerConfig sweep_point(double byte_rate, std::uint64_t seed) {
  workload::SynthesizerConfig w;
  w.dataset_bytes = mib(128);
  w.byte_rate = byte_rate;
  w.popularity = 0.1;
  w.duration_s = 900.0;
  w.page_bytes = 64 * kKiB;
  w.seed = seed;
  return w;
}

// Straggler-heavy fault-injected fleet: a dense point next to a sparse one
// (wildly uneven job costs), spin-up failures plus server crashes so the
// fault-routing and outage-chassis paths are all live.
ClusterConfig faulted_cluster() {
  ClusterConfig c;
  c.server_count = 4;
  c.distribution = DistributionPolicy::kPartitioned;
  c.partition_pages = 64;
  c.chassis_on_w = 150.0;
  c.server_off_idle_s = 120.0;
  c.engine.joint.physical_bytes = gib(1);
  c.engine.joint.unit_bytes = 16 * kMiB;
  c.engine.joint.page_bytes = 64 * kKiB;
  c.engine.joint.period_s = 300.0;
  c.engine.joint.disk.transition_j = 7.75;  // short break-even: spin cycles
  c.engine.prefill_cache = false;
  c.engine.warm_up_s = 0.0;
  c.engine.fault.enabled = true;
  c.engine.fault.seed = 42;
  c.engine.fault.p_spinup_fail = 0.5;
  c.engine.fault.spinup_degrade_after = 4;
  c.engine.fault.guard.enabled = true;
  c.engine.fault.server_mtbf_s = 400.0;  // ~2 crashes per server per run
  return c;
}

std::vector<sim::SweepWorkload> straggler_workloads() {
  return {
      {"dense", sweep_point(20e6, 3), "", {{"byte_rate", 20e6}}},
      {"sparse", sweep_point(0.2e6, 4), "", {{"byte_rate", 0.2e6}}},
  };
}

std::vector<sim::PolicySpec> sweep_roster() {
  return {sim::joint_policy(),
          sim::fixed_policy(sim::DiskPolicyKind::kTwoCompetitive, mib(64))};
}

std::vector<ClusterSweepPoint> sweep_under(const char* threads,
                                           const char* sched,
                                           std::vector<std::string>* lines) {
  ScopedEnv t("JPM_THREADS", threads);
  ScopedEnv s("JPM_SCHED", sched);
  return run_cluster_sweep(faulted_cluster(), straggler_workloads(),
                           sweep_roster(), [lines](const std::string& line) {
                             lines->push_back(line);
                           });
}

void expect_metrics_bit_identical(const ClusterMetrics& a,
                                  const ClusterMetrics& b) {
  EXPECT_EQ(a.duration_s, b.duration_s);
  ASSERT_EQ(a.servers.size(), b.servers.size());
  for (std::size_t s = 0; s < a.servers.size(); ++s) {
    SCOPED_TRACE("server " + std::to_string(s));
    const ServerOutcome& x = a.servers[s];
    const ServerOutcome& y = b.servers[s];
    EXPECT_EQ(x.requests, y.requests);
    EXPECT_EQ(x.chassis_on_s, y.chassis_on_s);
    EXPECT_EQ(x.chassis_energy_j, y.chassis_energy_j);
    EXPECT_EQ(x.power_cycles, y.power_cycles);
    EXPECT_EQ(x.metrics.mem_energy.static_j, y.metrics.mem_energy.static_j);
    EXPECT_EQ(x.metrics.mem_energy.dynamic_j, y.metrics.mem_energy.dynamic_j);
    EXPECT_EQ(x.metrics.disk_energy.static_j, y.metrics.disk_energy.static_j);
    EXPECT_EQ(x.metrics.disk_energy.transition_j,
              y.metrics.disk_energy.transition_j);
    EXPECT_EQ(x.metrics.disk_energy.dynamic_j,
              y.metrics.disk_energy.dynamic_j);
    EXPECT_EQ(x.metrics.disk_energy.standby_base_j,
              y.metrics.disk_energy.standby_base_j);
    EXPECT_EQ(x.metrics.cache_accesses, y.metrics.cache_accesses);
    EXPECT_EQ(x.metrics.disk_accesses, y.metrics.disk_accesses);
    EXPECT_EQ(x.metrics.disk_shutdowns, y.metrics.disk_shutdowns);
    EXPECT_EQ(x.metrics.spin_ups, y.metrics.spin_ups);
    EXPECT_EQ(x.metrics.total_latency_s, y.metrics.total_latency_s);
    EXPECT_EQ(x.metrics.long_latency_count, y.metrics.long_latency_count);
    EXPECT_EQ(x.metrics.reliability.spinup_retries,
              y.metrics.reliability.spinup_retries);
    EXPECT_EQ(x.metrics.reliability.retry_delay_s,
              y.metrics.reliability.retry_delay_s);
    EXPECT_EQ(x.metrics.reliability.guard_backoffs,
              y.metrics.reliability.guard_backoffs);
  }
  EXPECT_EQ(a.reliability.server_crashes, b.reliability.server_crashes);
  EXPECT_EQ(a.reliability.failed_over_requests,
            b.reliability.failed_over_requests);
  EXPECT_EQ(a.reliability.spinup_retries, b.reliability.spinup_retries);
  EXPECT_EQ(a.pipeline_energy_j(), b.pipeline_energy_j());
  EXPECT_EQ(a.chassis_energy_j(), b.chassis_energy_j());
  EXPECT_EQ(a.balance_index(), b.balance_index());
}

void expect_points_bit_identical(const std::vector<ClusterSweepPoint>& a,
                                 const std::vector<ClusterSweepPoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(a[i].label);
    EXPECT_EQ(a[i].label, b[i].label);
    ASSERT_EQ(a[i].outcomes.size(), b[i].outcomes.size());
    for (std::size_t j = 0; j < a[i].outcomes.size(); ++j) {
      SCOPED_TRACE(a[i].outcomes[j].spec.name);
      EXPECT_EQ(a[i].outcomes[j].spec.name, b[i].outcomes[j].spec.name);
      expect_metrics_bit_identical(a[i].outcomes[j].metrics,
                                   b[i].outcomes[j].metrics);
    }
  }
}

TEST(ClusterSweepDeterminismTest, FaultedStragglerSweepIsScheduleInvariant) {
  std::vector<std::string> serial_lines;
  const auto serial = sweep_under("1", "static", &serial_lines);

  // The fault plan must actually fire, or this degenerates into the
  // fault-free case: crashes routed requests off dead servers.
  bool any_failover = false;
  bool any_reliability = false;
  for (const auto& point : serial) {
    for (const auto& outcome : point.outcomes) {
      any_failover |= outcome.metrics.reliability.failed_over_requests > 0;
      any_reliability |= outcome.metrics.reliability.any();
    }
  }
  EXPECT_TRUE(any_failover);
  EXPECT_TRUE(any_reliability);

  for (const auto& [threads, sched] :
       std::vector<std::pair<const char*, const char*>>{
           {"1", "steal"}, {"4", "steal"}, {"8", "steal"}, {"4", "static"}}) {
    SCOPED_TRACE(std::string("JPM_THREADS=") + threads + " JPM_SCHED=" +
                 sched);
    std::vector<std::string> lines;
    const auto parallel = sweep_under(threads, sched, &lines);
    expect_points_bit_identical(serial, parallel);
    EXPECT_EQ(lines, serial_lines);
  }
}

TEST(ClusterSweepDeterminismTest, ProgressLinesArriveInJobOrder) {
  std::vector<std::string> lines;
  sweep_under("8", "steal", &lines);
  ASSERT_EQ(lines.size(), 4u);  // 2 points x 2 policies, point-major
  EXPECT_EQ(lines[0].rfind("[dense] Joint", 0), 0u) << lines[0];
  EXPECT_EQ(lines[1].rfind("[dense] ", 0), 0u) << lines[1];
  EXPECT_EQ(lines[2].rfind("[sparse] Joint", 0), 0u) << lines[2];
  EXPECT_EQ(lines[3].rfind("[sparse] ", 0), 0u) << lines[3];
}

}  // namespace
}  // namespace jpm::cluster
