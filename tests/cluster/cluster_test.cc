#include "jpm/cluster/cluster.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "jpm/util/check.h"

namespace jpm::cluster {
namespace {

workload::SynthesizerConfig small_workload() {
  workload::SynthesizerConfig w;
  w.dataset_bytes = mib(256);
  w.byte_rate = 20e6;
  w.popularity = 0.1;
  w.duration_s = 1200.0;
  w.page_bytes = 64 * kKiB;
  w.seed = 6;
  return w;
}

ClusterConfig small_cluster(std::uint32_t servers,
                            DistributionPolicy policy) {
  ClusterConfig c;
  c.server_count = servers;
  c.distribution = policy;
  c.engine.joint.physical_bytes = gib(1);
  c.engine.joint.unit_bytes = 16 * kMiB;
  c.engine.joint.period_s = 300.0;
  c.engine.prefill_cache = true;
  c.engine.warm_up_s = 300.0;
  c.partition_pages = 64;
  return c;
}

std::vector<workload::TraceEvent> tiny_trace() {
  return {
      {1.0, 0, true},    // stripe 0
      {1.1, 1, false},
      {2.0, 64, true},   // stripe 1
      {3.0, 128, true},  // stripe 2
      {4.0, 0, true},    // stripe 0 again
  };
}

TEST(RoutingTest, RoundRobinRotatesPerRequest) {
  auto cfg = small_cluster(3, DistributionPolicy::kRoundRobin);
  const auto routes = route_requests(tiny_trace(), cfg);
  EXPECT_EQ(routes, (std::vector<std::uint32_t>{0, 0, 1, 2, 0}));
}

TEST(RoutingTest, ContinuationsFollowTheirRequest) {
  auto cfg = small_cluster(2, DistributionPolicy::kRoundRobin);
  const auto routes = route_requests(tiny_trace(), cfg);
  // Event 1 is a continuation of request 0 -> same server.
  EXPECT_EQ(routes[1], routes[0]);
}

TEST(RoutingTest, PartitionedFollowsContent) {
  auto cfg = small_cluster(2, DistributionPolicy::kPartitioned);
  const auto routes = route_requests(tiny_trace(), cfg);
  EXPECT_EQ(routes[0], 0u);  // stripe 0 -> server 0
  EXPECT_EQ(routes[2], 1u);  // stripe 1 -> server 1
  EXPECT_EQ(routes[3], 0u);  // stripe 2 -> server 0
  EXPECT_EQ(routes[4], 0u);  // same content, same server every time
}

TEST(RoutingTest, UnbalancedConcentratesLightLoad) {
  auto cfg = small_cluster(4, DistributionPolicy::kUnbalanced);
  cfg.rate_cap_rps = 1000.0;  // nothing spills
  std::vector<workload::TraceEvent> trace;
  for (int i = 0; i < 100; ++i) {
    trace.push_back({static_cast<double>(i), static_cast<std::uint64_t>(i),
                     true});
  }
  const auto routes = route_requests(trace, cfg);
  for (auto r : routes) EXPECT_EQ(r, 0u);
}

TEST(RoutingTest, UnbalancedSpillsPastTheCap) {
  auto cfg = small_cluster(4, DistributionPolicy::kUnbalanced);
  cfg.rate_cap_rps = 5.0;
  cfg.rate_ewma_tau_s = 10.0;
  std::vector<workload::TraceEvent> trace;
  for (int i = 0; i < 2000; ++i) {
    trace.push_back({i * 0.01, static_cast<std::uint64_t>(i), true});
  }
  const auto routes = route_requests(trace, cfg);
  std::vector<std::uint64_t> counts(4, 0);
  for (auto r : routes) ++counts[r];
  EXPECT_GT(counts[0], 0u);
  EXPECT_GT(counts[1], 0u);  // 100 req/s >> 5 rps cap -> spills
}

TEST(ChassisUsageTest, AlwaysOnWhenBusy) {
  std::vector<double> times;
  for (int i = 0; i < 100; ++i) times.push_back(i * 10.0);
  const auto u = chassis_usage(times, 1000.0, 600.0);
  EXPECT_NEAR(u.on_s, 1000.0, 1e-9);
  EXPECT_EQ(u.power_cycles, 0u);
}

TEST(ChassisUsageTest, PowersOffAfterIdleTimeout) {
  const auto u = chassis_usage({10.0}, 10000.0, 600.0);
  // On from 0 until 10 + 600, then off for the rest.
  EXPECT_NEAR(u.on_s, 610.0, 1e-9);
  EXPECT_EQ(u.power_cycles, 1u);
}

TEST(ChassisUsageTest, GapInTheMiddleCycles) {
  const auto u = chassis_usage({10.0, 5000.0}, 6000.0, 600.0);
  // [0, 610] + [5000, 5600].
  EXPECT_NEAR(u.on_s, 610.0 + 600.0, 1e-9);
  EXPECT_EQ(u.power_cycles, 2u);
}

TEST(ChassisUsageTest, UntouchedServerPowersOffOnce) {
  const auto u = chassis_usage({}, 10000.0, 600.0);
  EXPECT_NEAR(u.on_s, 600.0, 1e-9);
  EXPECT_EQ(u.power_cycles, 1u);
}

TEST(ClusterEngineTest, ConservesRequestsAcrossServers) {
  ClusterEngine cluster(
      small_cluster(3, DistributionPolicy::kPartitioned), small_workload(),
      sim::fixed_policy(sim::DiskPolicyKind::kTwoCompetitive, mib(256)));
  const auto m = cluster.run();
  ASSERT_EQ(m.servers.size(), 3u);
  EXPECT_GT(m.total_requests(), 0u);
  std::uint64_t accesses = 0;
  for (const auto& s : m.servers) accesses += s.metrics.cache_accesses;
  EXPECT_GT(accesses, 0u);
}

TEST(ClusterEngineTest, PartitioningBeatsRoundRobinOnCacheDuplication) {
  // Round-robin makes every server cache the same hot set; partitioning
  // gives each server a disjoint share, so with small per-server memory the
  // partitioned cluster misses less in aggregate.
  const auto spec =
      sim::fixed_policy(sim::DiskPolicyKind::kTwoCompetitive, mib(64));
  auto run = [&](DistributionPolicy d) {
    auto cfg = small_cluster(4, d);
    cfg.engine.prefill_cache = false;  // duplication shows in miss counts
    cfg.engine.warm_up_s = 0.0;
    ClusterEngine cluster(cfg, small_workload(), spec);
    const auto m = cluster.run();
    std::uint64_t misses = 0;
    for (const auto& s : m.servers) misses += s.metrics.disk_accesses;
    return misses;
  };
  EXPECT_LT(run(DistributionPolicy::kPartitioned),
            run(DistributionPolicy::kRoundRobin));
}

TEST(ClusterEngineTest, UnbalancedSavesChassisEnergy) {
  const auto spec = sim::joint_policy();
  auto w = small_workload();
  w.byte_rate = 5e6;
  auto run = [&](DistributionPolicy d) {
    auto cfg = small_cluster(4, d);
    cfg.chassis_on_w = 150.0;
    cfg.rate_cap_rps = 10000.0;   // everything fits on server 0
    cfg.server_off_idle_s = 120.0;  // idle servers power off quickly
    ClusterEngine cluster(cfg, w, spec);
    return cluster.run();
  };
  const auto unbalanced = run(DistributionPolicy::kUnbalanced);
  const auto round_robin = run(DistributionPolicy::kRoundRobin);
  EXPECT_LT(unbalanced.chassis_energy_j(),
            0.5 * round_robin.chassis_energy_j());
  // Concentration shows in the balance index.
  EXPECT_LT(unbalanced.balance_index(), round_robin.balance_index());
}

TEST(ClusterEngineTest, BalanceIndexBounds) {
  ClusterMetrics m;
  m.servers.resize(4);
  for (auto& s : m.servers) s.requests = 100;
  EXPECT_NEAR(m.balance_index(), 1.0, 1e-12);
  m.servers[0].requests = 400;
  for (std::size_t i = 1; i < 4; ++i) m.servers[i].requests = 0;
  EXPECT_NEAR(m.balance_index(), 0.25, 1e-12);
}

TEST(ClusterEngineTest, RejectsZeroServers) {
  auto cfg = small_cluster(2, DistributionPolicy::kRoundRobin);
  cfg.server_count = 0;
  EXPECT_THROW(
      ClusterEngine(cfg, small_workload(), sim::always_on_policy()),
      std::invalid_argument);
}

TEST(ClusterEngineTest, ConfigValidationNamesTheProblem) {
  auto cfg = small_cluster(2, DistributionPolicy::kRoundRobin);
  cfg.partition_pages = 0;
  try {
    cfg.validate();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("partition_pages"),
              std::string::npos);
  }
  cfg = small_cluster(2, DistributionPolicy::kRoundRobin);
  cfg.server_off_idle_s = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = small_cluster(2, DistributionPolicy::kRoundRobin);
  cfg.chassis_on_w = -1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace jpm::cluster
