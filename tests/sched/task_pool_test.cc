// The work-stealing scheduler's own contract, tested with explicit worker
// counts and SchedMode (parallel_test.cc covers the env-driven parallel_for
// surface): every index runs exactly once under either schedule, exceptions
// propagate and stop scheduling, a straggler's initial range is rebalanced
// onto other workers, and nested parallel_for calls run inline.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "jpm/util/parallel.h"

namespace jpm::util {
namespace {

// Sets (or clears, value == nullptr) one environment variable for the test's
// scope and restores the previous state on destruction.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (had_) saved_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_ = false;
  std::string saved_;
};

// ---- WorkerRange: the packed atomic chunk queue ----------------------------

TEST(WorkerRangeTest, PackRoundTripsBeginAndEnd) {
  const std::uint64_t r = detail::WorkerRange::pack(17, 4200000000u);
  EXPECT_EQ(detail::WorkerRange::begin_of(r), 17u);
  EXPECT_EQ(detail::WorkerRange::end_of(r), 4200000000u);
}

TEST(WorkerRangeTest, OwnerPopsFromTheFrontThiefTakesTheBackHalf) {
  detail::WorkerRange r;
  r.range.store(detail::WorkerRange::pack(0, 10));

  std::uint32_t i = 0;
  ASSERT_TRUE(r.pop_front(&i));
  EXPECT_EQ(i, 0u);

  // Remaining [1, 10): 9 indices, mid = 1 + (9 + 1) / 2 = 6.
  std::uint32_t sb = 0, se = 0;
  ASSERT_TRUE(r.steal_back(&sb, &se));
  EXPECT_EQ(sb, 6u);
  EXPECT_EQ(se, 10u);

  // The owner keeps the front [1, 6) in order.
  for (std::uint32_t want = 1; want < 6; ++want) {
    ASSERT_TRUE(r.pop_front(&i));
    EXPECT_EQ(i, want);
  }
  EXPECT_FALSE(r.pop_front(&i));
}

TEST(WorkerRangeTest, RefusesToStealTheOwnersLastIndex) {
  detail::WorkerRange r;
  r.range.store(detail::WorkerRange::pack(3, 4));
  std::uint32_t sb = 0, se = 0;
  EXPECT_FALSE(r.steal_back(&sb, &se));
  std::uint32_t i = 0;
  ASSERT_TRUE(r.pop_front(&i));
  EXPECT_EQ(i, 3u);
  EXPECT_FALSE(r.pop_front(&i));
  EXPECT_FALSE(r.steal_back(&sb, &se));
}

// ---- exactly-once coverage under both schedules ----------------------------

void expect_exactly_once(std::size_t n, unsigned workers, SchedMode mode) {
  std::vector<std::atomic<int>> counts(n);
  for (auto& c : counts) c.store(0, std::memory_order_relaxed);
  TaskPool::run(n, workers, mode, [&](std::size_t i) {
    counts[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(TaskPoolTest, StealCoversEveryIndexExactlyOnce) {
  expect_exactly_once(1000, 8, SchedMode::kSteal);
  expect_exactly_once(257, 7, SchedMode::kSteal);  // uneven initial split
  expect_exactly_once(2, 2, SchedMode::kSteal);
}

TEST(TaskPoolTest, StaticCoversEveryIndexExactlyOnce) {
  expect_exactly_once(1000, 8, SchedMode::kStatic);
  expect_exactly_once(257, 7, SchedMode::kStatic);
}

TEST(TaskPoolTest, MoreWorkersThanTasksStillCoversAll) {
  // Chunk exhaustion: spread clamps to n, several workers start with empty
  // or single-index slices and must neither double-execute nor hang.
  expect_exactly_once(3, 16, SchedMode::kSteal);
  expect_exactly_once(3, 16, SchedMode::kStatic);
  expect_exactly_once(5, 4, SchedMode::kSteal);
}

TEST(TaskPoolTest, RepeatedSmallRegionsStress) {
  // Many short-lived regions back to back: spawn/join and the steal CAS
  // paths race-hunted under TSan.
  for (int iter = 0; iter < 200; ++iter) {
    expect_exactly_once(33, 5, SchedMode::kSteal);
  }
}

TEST(TaskPoolTest, ZeroTasksNeverInvokeTheBody) {
  bool called = false;
  TaskPool::run(0, 8, SchedMode::kSteal, [&](std::size_t) { called = true; });
  TaskPool::run(0, 8, SchedMode::kStatic, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(TaskPoolTest, SingleTaskRunsInlineOnTheCaller) {
  std::thread::id id;
  TaskPool::run(1, 8, SchedMode::kSteal,
                [&](std::size_t) { id = std::this_thread::get_id(); });
  EXPECT_EQ(id, std::this_thread::get_id());
}

// ---- exception propagation --------------------------------------------------

TEST(TaskPoolTest, StealPropagatesTheWorkerException) {
  try {
    TaskPool::run(100, 4, SchedMode::kSteal, [](std::size_t i) {
      if (i == 7) throw std::runtime_error("boom at 7");
    });
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom at 7");
  }
}

TEST(TaskPoolTest, StaticPropagatesTheWorkerException) {
  EXPECT_THROW(TaskPool::run(100, 4, SchedMode::kStatic,
                             [](std::size_t i) {
                               if (i == 41) throw std::runtime_error("x");
                             }),
               std::runtime_error);
}

TEST(TaskPoolTest, StealStopsSchedulingAfterAFailure) {
  // The caller (worker 0) owns index 0 and throws immediately; the other
  // workers' tasks each burn a little CPU, so they cannot drain the whole
  // region before observing the failed flag. The join must still terminate
  // even though tasks were skipped (the failing task counts as done).
  std::atomic<std::size_t> executed{0};
  const std::size_t n = 20000;
  EXPECT_THROW(TaskPool::run(n, 4, SchedMode::kSteal,
                             [&](std::size_t i) {
                               if (i == 0) throw std::runtime_error("early");
                               std::atomic<int> spin{0};
                               while (spin.fetch_add(1,
                                                     std::memory_order_relaxed) <
                                      50) {
                               }
                               executed.fetch_add(1,
                                                  std::memory_order_relaxed);
                             }),
               std::runtime_error);
  EXPECT_LT(executed.load(), n);
}

// ---- rebalancing and nesting ------------------------------------------------

TEST(TaskPoolTest, StragglersInitialRangeIsStolenByIdleWorkers) {
  // Worker 0 (the caller) sleeps on its first index; its remaining initial
  // slice [1, 16) must be finished by thieves while it sleeps.
  const std::size_t n = 64;
  const unsigned workers = 4;
  std::vector<std::thread::id> ran_on(n);
  TaskPool::run(n, workers, SchedMode::kSteal, [&](std::size_t i) {
    if (i == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    ran_on[i] = std::this_thread::get_id();
  });
  bool any_stolen = false;
  for (std::size_t i = 1; i < n / workers; ++i) {
    any_stolen |= ran_on[i] != ran_on[0];
  }
  EXPECT_TRUE(any_stolen)
      << "no thief took over the straggler's initial range";
}

TEST(TaskPoolTest, NestedParallelForRunsInlineOnTheWorker) {
  // A parallel_for issued from inside a pool task must run serially on that
  // worker: the inner loop appends to an unsynchronized per-outer vector and
  // the recorded order/thread prove no second level of fan-out happened.
  const std::size_t outer_n = 3, inner_n = 5;
  std::vector<std::vector<std::size_t>> order(outer_n);
  std::vector<std::thread::id> outer_id(outer_n);
  std::vector<std::vector<std::thread::id>> inner_id(outer_n);
  ASSERT_FALSE(detail::tl_in_parallel_region);
  TaskPool::run(outer_n, 3, SchedMode::kSteal, [&](std::size_t o) {
    outer_id[o] = std::this_thread::get_id();
    parallel_for(inner_n, 8, [&, o](std::size_t i) {
      order[o].push_back(i);
      inner_id[o].push_back(std::this_thread::get_id());
    });
  });
  EXPECT_FALSE(detail::tl_in_parallel_region);
  for (std::size_t o = 0; o < outer_n; ++o) {
    ASSERT_EQ(order[o].size(), inner_n);
    for (std::size_t i = 0; i < inner_n; ++i) {
      EXPECT_EQ(order[o][i], i);  // serial, in order
      EXPECT_EQ(inner_id[o][i], outer_id[o]);  // on the outer task's thread
    }
  }
}

// ---- environment knobs ------------------------------------------------------

TEST(SchedModeTest, DefaultsToStealAndParsesJpmSched) {
  {
    ScopedEnv e("JPM_SCHED", nullptr);
    EXPECT_EQ(default_sched_mode(), SchedMode::kSteal);
  }
  {
    ScopedEnv e("JPM_SCHED", "static");
    EXPECT_EQ(default_sched_mode(), SchedMode::kStatic);
  }
  {
    ScopedEnv e("JPM_SCHED", "steal");
    EXPECT_EQ(default_sched_mode(), SchedMode::kSteal);
  }
  {
    // Unknown names fall back to the default rather than failing a run.
    ScopedEnv e("JPM_SCHED", "turbo");
    EXPECT_EQ(default_sched_mode(), SchedMode::kSteal);
  }
}

TEST(SchedModeTest, ParallelForHonorsJpmSchedStatic) {
  ScopedEnv e("JPM_SCHED", "static");
  std::vector<std::atomic<int>> counts(100);
  for (auto& c : counts) c.store(0, std::memory_order_relaxed);
  parallel_for(100, 4, [&](std::size_t i) {
    counts[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(counts[i].load(), 1);
}

}  // namespace
}  // namespace jpm::util
