// OrderedProgress: progress lines from concurrently completing jobs reach
// the sink in job order, never completion order — unit tests on the buffer
// itself plus the run_sweep regression that the full progress stream is
// byte-identical between the serial path and a work-stealing fan-out.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "jpm/sim/runner.h"
#include "jpm/util/check.h"

namespace jpm::sim {
namespace {

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (had_) saved_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_ = false;
  std::string saved_;
};

TEST(OrderedProgressTest, BuffersUntilTheContiguousPrefixIsReady) {
  std::vector<std::string> seen;
  OrderedProgress p(4, [&](const std::string& l) { seen.push_back(l); });

  p.emit(2, "c");
  EXPECT_TRUE(seen.empty());  // job 0 and 1 still outstanding
  p.emit(0, "a");
  EXPECT_EQ(seen, (std::vector<std::string>{"a"}));
  p.emit(1, "b");
  EXPECT_EQ(seen, (std::vector<std::string>{"a", "b", "c"}));
  p.emit(3, "d");
  EXPECT_EQ(seen, (std::vector<std::string>{"a", "b", "c", "d"}));
}

TEST(OrderedProgressTest, InOrderEmitsFlushImmediately) {
  std::vector<std::string> seen;
  OrderedProgress p(3, [&](const std::string& l) { seen.push_back(l); });
  p.emit(0, "a");
  p.emit(1, "b");
  p.emit(2, "c");
  EXPECT_EQ(seen, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(OrderedProgressTest, ReverseCompletionFlushesAllAtTheEnd) {
  std::vector<std::string> seen;
  OrderedProgress p(5, [&](const std::string& l) { seen.push_back(l); });
  for (std::size_t job = 4; job > 0; --job) {
    p.emit(job, std::string(1, static_cast<char>('a' + job)));
    EXPECT_TRUE(seen.empty());
  }
  p.emit(0, "a");
  EXPECT_EQ(seen, (std::vector<std::string>{"a", "b", "c", "d", "e"}));
}

TEST(OrderedProgressTest, DoubleEmitIsAContractViolation) {
  OrderedProgress p(2, [](const std::string&) {});
  p.emit(0, "a");
  EXPECT_THROW(p.emit(0, "again"), CheckError);
}

// ---- run_sweep regression ---------------------------------------------------

workload::SynthesizerConfig progress_workload(std::uint64_t seed) {
  workload::SynthesizerConfig w;
  w.dataset_bytes = mib(64);
  w.byte_rate = 20e6;
  w.popularity = 0.1;
  w.duration_s = 600.0;
  w.page_bytes = 64 * kKiB;
  w.seed = seed;
  return w;
}

std::vector<std::string> sweep_progress_lines(const char* threads,
                                              const char* sched) {
  ScopedEnv t("JPM_THREADS", threads);
  ScopedEnv s("JPM_SCHED", sched);
  EngineConfig e;
  e.joint.physical_bytes = gib(1);
  e.joint.unit_bytes = 16 * kMiB;
  e.joint.page_bytes = 64 * kKiB;
  e.joint.period_s = 300.0;
  e.warm_up_s = 300.0;
  const std::vector<std::pair<std::string, workload::SynthesizerConfig>>
      points = {{"A", progress_workload(5)}, {"B", progress_workload(6)}};
  const std::vector<PolicySpec> roster = {always_on_policy(), joint_policy()};
  std::vector<std::string> lines;
  run_sweep(points, roster, e,
            [&](const std::string& line) { lines.push_back(line); });
  return lines;
}

TEST(OrderedProgressTest, SweepProgressIsInPointOrderNotCompletionOrder) {
  // The serial path defines the expected stream: point-major, each point's
  // baseline first. A stolen 8-worker fan-out completes jobs in some other
  // order but must print the very same sequence.
  const auto serial = sweep_progress_lines("1", "steal");
  ASSERT_EQ(serial.size(), 4u);
  EXPECT_EQ(serial[0].rfind("[A] ", 0), 0u) << serial[0];
  EXPECT_EQ(serial[1].rfind("[A] ", 0), 0u) << serial[1];
  EXPECT_EQ(serial[2].rfind("[B] ", 0), 0u) << serial[2];
  EXPECT_EQ(serial[3].rfind("[B] ", 0), 0u) << serial[3];

  EXPECT_EQ(sweep_progress_lines("8", "steal"), serial);
  EXPECT_EQ(sweep_progress_lines("8", "static"), serial);
}

}  // namespace
}  // namespace jpm::sim
