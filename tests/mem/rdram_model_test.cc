#include "jpm/mem/rdram_model.h"

#include <gtest/gtest.h>

namespace jpm::mem {
namespace {

TEST(RdramModelTest, PaperConstants) {
  RdramParams p;
  // 0.656 mW/MB nap power: one 16 MB bank draws 10.5 mW (paper Fig. 1a).
  EXPECT_NEAR(p.nap_power_w(16 * kMiB) * 1e3, 10.5, 0.01);
  // 128 GB in nap draws ~86 W — the paper's always-on memory floor.
  EXPECT_NEAR(p.nap_power_w(128 * kGiB), 86.0, 0.5);
  // Dynamic: 0.809 mJ per MB transferred.
  EXPECT_NEAR(p.dynamic_energy_j(kMiB) * 1e3, 0.809, 1e-6);
}

TEST(RdramModelTest, PowerDownIsThirtyPercentOfNap) {
  RdramParams p;
  EXPECT_NEAR(p.powerdown_power_w(gib(1)) / p.nap_power_w(gib(1)), 0.30,
              1e-12);
}

TEST(RdramModelTest, BreakEvenForDisableMatchesPaper) {
  // 7.7 J to refetch a bank / 10.5 mW nap power = 732 s (paper Section V-A).
  RdramParams p;
  const double reload_j = 7.7;
  EXPECT_NEAR(reload_j / p.nap_power_w(p.bank_bytes), 732.0, 5.0);
  EXPECT_NEAR(p.disable_timeout_s, 732.0, 1e-9);
}

TEST(RdramModelTest, PowerScalesLinearlyWithSize) {
  RdramParams p;
  EXPECT_DOUBLE_EQ(p.nap_power_w(gib(2)), 2.0 * p.nap_power_w(gib(1)));
  EXPECT_DOUBLE_EQ(p.dynamic_energy_j(2 * kMiB),
                   2.0 * p.dynamic_energy_j(kMiB));
  EXPECT_DOUBLE_EQ(p.nap_power_w(0), 0.0);
}

// The paper's "break-even memory size": saving the disk's whole 6.6 W static
// power pays for roughly 10 GB of nap-mode memory.
TEST(RdramModelTest, BreakEvenMemorySizeNearTenGigabytes) {
  RdramParams p;
  const double bytes = 6.6 / p.nap_power_w(1 * kMiB) * kMiB;
  EXPECT_NEAR(bytes / static_cast<double>(kGiB), 9.8, 0.3);
}

}  // namespace
}  // namespace jpm::mem
