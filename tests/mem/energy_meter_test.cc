#include "jpm/mem/energy_meter.h"

#include <gtest/gtest.h>

#include "jpm/util/check.h"

namespace jpm::mem {
namespace {

TEST(MemoryEnergyMeterTest, StaticEnergyIsPowerTimesTime) {
  RdramParams p;
  MemoryEnergyMeter m(p, gib(16));
  m.finalize(3600.0);
  EXPECT_NEAR(m.breakdown().static_j, p.nap_power_w(gib(16)) * 3600.0, 1e-6);
  EXPECT_EQ(m.breakdown().dynamic_j, 0.0);
}

TEST(MemoryEnergyMeterTest, ResizeSplitsIntegration) {
  RdramParams p;
  MemoryEnergyMeter m(p, gib(8));
  m.set_size(gib(32), 100.0);
  m.finalize(300.0);
  const double expected =
      p.nap_power_w(gib(8)) * 100.0 + p.nap_power_w(gib(32)) * 200.0;
  EXPECT_NEAR(m.breakdown().static_j, expected, 1e-6);
  EXPECT_EQ(m.size_bytes(), gib(32));
}

TEST(MemoryEnergyMeterTest, DynamicAccumulatesPerTransfer) {
  RdramParams p;
  MemoryEnergyMeter m(p, 0);
  m.on_transfer(kMiB);
  m.on_transfer(3 * kMiB);
  EXPECT_NEAR(m.breakdown().dynamic_j, p.dynamic_energy_j(4 * kMiB), 1e-12);
}

TEST(MemoryEnergyMeterTest, ZeroSizeCostsNothingStatic) {
  RdramParams p;
  MemoryEnergyMeter m(p, 0);
  m.finalize(1e6);
  EXPECT_EQ(m.breakdown().static_j, 0.0);
}

TEST(MemoryEnergyMeterTest, RejectsTimeGoingBackwards) {
  RdramParams p;
  MemoryEnergyMeter m(p, gib(1));
  m.finalize(10.0);
  EXPECT_THROW(m.finalize(5.0), CheckError);
}

TEST(MemoryEnergyMeterTest, MidRunSnapshotsAreCumulative) {
  RdramParams p;
  MemoryEnergyMeter m(p, gib(4));
  m.finalize(50.0);
  const double first = m.breakdown().static_j;
  m.finalize(150.0);
  EXPECT_NEAR(m.breakdown().static_j - first, p.nap_power_w(gib(4)) * 100.0,
              1e-9);
}

}  // namespace
}  // namespace jpm::mem
