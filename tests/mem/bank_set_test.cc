#include "jpm/mem/bank_set.h"

#include <gtest/gtest.h>

#include "jpm/util/check.h"

namespace jpm::mem {
namespace {

RdramParams test_params() {
  RdramParams p;
  p.bank_bytes = 16 * kMiB;  // 10.5 mW nap
  return p;
}

TEST(BankSetTest, NapOnlyIntegratesConstantPower) {
  const auto p = test_params();
  BankSet banks(4, p, BankPolicy::kNapOnly);
  banks.finalize(100.0);
  EXPECT_NEAR(banks.static_energy_j(),
              4 * p.nap_power_w(p.bank_bytes) * 100.0, 1e-9);
}

TEST(BankSetTest, PowerDownDropsAfterTimeout) {
  auto p = test_params();
  p.powerdown_timeout_s = 10.0;  // exaggerated for visibility
  BankSet banks(1, p, BankPolicy::kPowerDown);
  banks.finalize(100.0);
  const double nap_w = p.nap_power_w(p.bank_bytes);
  const double expected = nap_w * 10.0 + 0.3 * nap_w * 90.0;
  EXPECT_NEAR(banks.static_energy_j(), expected, 1e-9);
}

TEST(BankSetTest, TouchRestartsPowerDownTimer) {
  auto p = test_params();
  p.powerdown_timeout_s = 10.0;
  BankSet banks(1, p, BankPolicy::kPowerDown);
  banks.touch(0, 50.0);  // was: nap 10, pd 40; now restarts
  banks.finalize(100.0);
  const double nap_w = p.nap_power_w(p.bank_bytes);
  // [0,10] nap, [10,50] pd, [50,60] nap, [60,100] pd.
  const double expected = nap_w * 20.0 + 0.3 * nap_w * 80.0;
  EXPECT_NEAR(banks.static_energy_j(), expected, 1e-9);
}

TEST(BankSetTest, DisableFiresAfterTimeout) {
  auto p = test_params();
  p.disable_timeout_s = 30.0;
  BankSet banks(2, p, BankPolicy::kDisable);
  banks.touch(0, 5.0);
  auto fired = banks.take_due_disables(40.0);
  // Bank 1 (never touched) fires at 30; bank 0 fires at 35.
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0].bank, 1u);
  EXPECT_NEAR(fired[0].time_s, 30.0, 1e-12);
  EXPECT_EQ(fired[1].bank, 0u);
  EXPECT_NEAR(fired[1].time_s, 35.0, 1e-12);
  EXPECT_TRUE(banks.is_disabled(0));
  EXPECT_TRUE(banks.is_disabled(1));
  EXPECT_EQ(banks.disable_count(), 2u);
}

TEST(BankSetTest, TouchCancelsPendingDisable) {
  auto p = test_params();
  p.disable_timeout_s = 30.0;
  BankSet banks(1, p, BankPolicy::kDisable);
  banks.touch(0, 20.0);
  banks.touch(0, 45.0);
  EXPECT_TRUE(banks.take_due_disables(50.0).empty());
  auto fired = banks.take_due_disables(80.0);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_NEAR(fired[0].time_s, 75.0, 1e-12);
}

TEST(BankSetTest, DisabledBankConsumesNothing) {
  auto p = test_params();
  p.disable_timeout_s = 10.0;
  BankSet banks(1, p, BankPolicy::kDisable);
  banks.take_due_disables(10.0);
  banks.finalize(1000.0);
  const double nap_w = p.nap_power_w(p.bank_bytes);
  EXPECT_NEAR(banks.static_energy_j(), nap_w * 10.0, 1e-9);
}

TEST(BankSetTest, ReenabledBankResumesNap) {
  auto p = test_params();
  p.disable_timeout_s = 10.0;
  BankSet banks(1, p, BankPolicy::kDisable);
  banks.take_due_disables(10.0);
  ASSERT_TRUE(banks.is_disabled(0));
  banks.touch(0, 100.0);  // reactivation
  EXPECT_FALSE(banks.is_disabled(0));
  banks.finalize(105.0);
  const double nap_w = p.nap_power_w(p.bank_bytes);
  // nap [0,10], off [10,100], nap [100,105].
  EXPECT_NEAR(banks.static_energy_j(), nap_w * 15.0, 1e-9);
}

TEST(BankSetTest, LazyIntegrationMatchesEagerFinalize) {
  // Touching in several steps must integrate the same energy as one finalize.
  auto p = test_params();
  p.powerdown_timeout_s = 5.0;
  BankSet lazy(3, p, BankPolicy::kPowerDown);
  lazy.touch(1, 7.0);
  lazy.touch(1, 8.0);
  lazy.touch(2, 30.0);
  lazy.finalize(60.0);

  const double nap_w = p.nap_power_w(p.bank_bytes);
  const double pd_w = 0.3 * nap_w;
  // Bank 0: nap 5, pd 55. Bank 1: nap 5 + pd 2 + nap 1 + nap 5 + pd 47.
  // Bank 2: nap 5 + pd 25 + nap 5 + pd 25.
  const double b0 = nap_w * 5 + pd_w * 55;
  const double b1 = nap_w * 5 + pd_w * 2 + nap_w * 1 + nap_w * 5 + pd_w * 47;
  const double b2 = nap_w * 5 + pd_w * 25 + nap_w * 5 + pd_w * 25;
  EXPECT_NEAR(lazy.static_energy_j(), b0 + b1 + b2, 1e-9);
}

TEST(BankSetTest, NoDisablesFromNonDisablePolicies) {
  BankSet banks(2, test_params(), BankPolicy::kPowerDown);
  EXPECT_TRUE(banks.take_due_disables(1e9).empty());
}

TEST(BankSetTest, RejectsOutOfRangeBank) {
  BankSet banks(2, test_params(), BankPolicy::kNapOnly);
  EXPECT_THROW(banks.touch(2, 1.0), CheckError);
  EXPECT_THROW(banks.is_disabled(5), CheckError);
}

TEST(BankSetTest, RejectsZeroBanks) {
  EXPECT_THROW(BankSet(0, test_params(), BankPolicy::kNapOnly), CheckError);
}

}  // namespace
}  // namespace jpm::mem
