// Randomized multi-producer stress for the MPSC ring, written to run under
// TSan (the CI thread-sanitizer job runs the `stream` label): N producer
// threads push tagged events through a deliberately small ring while one
// consumer drains it. Checks that every accepted event is consumed exactly
// once and that per-producer FIFO order holds — the two guarantees the
// Vyukov sequence protocol is supposed to give us.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "jpm/stream/ring.h"

namespace jpm::stream {
namespace {

struct StressResult {
  std::vector<std::uint64_t> pushed;    // per producer: events accepted
  std::vector<std::uint64_t> consumed;  // per producer: events popped
  std::uint64_t order_violations = 0;
  std::uint64_t duplicates = 0;
};

// Each event's page encodes (producer << 32) | per-producer sequence, so the
// consumer can verify per-producer FIFO without any side channel.
StressResult run_stress(std::size_t producers, std::size_t ring_capacity,
                        std::uint64_t events_per_producer, std::uint32_t seed) {
  EventRing ring(ring_capacity);
  StressResult result;
  result.pushed.assign(producers, 0);
  result.consumed.assign(producers, 0);

  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      std::mt19937 rng(seed + static_cast<std::uint32_t>(p));
      std::uniform_int_distribution<int> burst(1, 7);
      std::uint64_t seq = 0;
      while (seq < events_per_producer) {
        // Bursty arrivals: push a random run, then yield, so producers
        // interleave differently on every run.
        for (int b = burst(rng); b > 0 && seq < events_per_producer; --b) {
          StreamEvent e;
          e.time_s = static_cast<double>(seq);
          e.page = (static_cast<std::uint64_t>(p) << 32) | seq;
          if (!ring.try_push(e)) {
            std::this_thread::yield();
            continue;  // full ring: retry the same sequence number
          }
          ++seq;
        }
        std::this_thread::yield();
      }
      result.pushed[p] = seq;
    });
  }

  std::atomic<bool> producers_done{false};
  std::thread closer([&] {
    for (auto& t : threads) t.join();
    ring.close();
    producers_done.store(true, std::memory_order_release);
  });

  std::vector<std::uint64_t> next_expected(producers, 0);
  std::vector<StreamEvent> chunk(64);
  while (!ring.drained()) {
    const std::size_t n = ring.pop_chunk(chunk.data(), chunk.size());
    if (n == 0) {
      std::this_thread::yield();
      continue;
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t p = static_cast<std::size_t>(chunk[i].page >> 32);
      const std::uint64_t seq = chunk[i].page & 0xffffffffull;
      EXPECT_LT(p, producers);
      if (p >= producers) continue;  // corrupt event; already flagged above
      if (seq < next_expected[p]) {
        ++result.duplicates;
      } else if (seq != next_expected[p]) {
        ++result.order_violations;
      }
      next_expected[p] = seq + 1;
      ++result.consumed[p];
    }
  }
  closer.join();
  EXPECT_TRUE(producers_done.load(std::memory_order_acquire));
  return result;
}

TEST(RingStressTest, FourProducersSmallRingNothingLostNothingReordered) {
  const auto r = run_stress(/*producers=*/4, /*ring_capacity=*/64,
                            /*events_per_producer=*/20000, /*seed=*/1);
  EXPECT_EQ(r.order_violations, 0u);
  EXPECT_EQ(r.duplicates, 0u);
  for (std::size_t p = 0; p < r.pushed.size(); ++p) {
    EXPECT_EQ(r.consumed[p], r.pushed[p]) << "producer " << p;
  }
}

TEST(RingStressTest, ManyProducersTinyRingStaysCorrect) {
  // 8 producers against a 8-slot ring maximizes contention on each slot's
  // sequence word — the configuration most likely to trip a memory-order
  // bug under TSan.
  const auto r = run_stress(/*producers=*/8, /*ring_capacity=*/8,
                            /*events_per_producer=*/5000, /*seed=*/7);
  EXPECT_EQ(r.order_violations, 0u);
  EXPECT_EQ(r.duplicates, 0u);
  for (std::size_t p = 0; p < r.pushed.size(); ++p) {
    EXPECT_EQ(r.consumed[p], r.pushed[p]) << "producer " << p;
  }
}

TEST(RingStressTest, CapacityOneUnderContention) {
  const auto r = run_stress(/*producers=*/3, /*ring_capacity=*/1,
                            /*events_per_producer=*/2000, /*seed=*/13);
  EXPECT_EQ(r.order_violations, 0u);
  EXPECT_EQ(r.duplicates, 0u);
  for (std::size_t p = 0; p < r.pushed.size(); ++p) {
    EXPECT_EQ(r.consumed[p], r.pushed[p]) << "producer " << p;
  }
}

}  // namespace
}  // namespace jpm::stream
