// Wire-format tests: JSONL and binary round-trips through write_event /
// EventReader, auto-detection, skip rules, forward-compatible binary
// records, and position-naming decode errors.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "jpm/stream/wire.h"
#include "jpm/workload/trace.h"

namespace jpm::stream {
namespace {

StreamEvent ev(double t, std::uint64_t page, std::uint8_t flags = 0) {
  StreamEvent e;
  e.time_s = t;
  e.page = page;
  e.flags = flags;
  return e;
}

std::vector<StreamEvent> read_all(std::istream& in, WireFormat format,
                                  std::string* error = nullptr) {
  EventReader reader(in, format);
  std::vector<StreamEvent> events;
  StreamEvent e;
  for (;;) {
    const auto status = reader.next(&e);
    if (status == EventReader::Status::kEvent) {
      events.push_back(e);
      continue;
    }
    if (status == EventReader::Status::kError && error != nullptr) {
      *error = reader.error();
    }
    return events;
  }
}

void expect_round_trip(WireFormat format) {
  const std::vector<StreamEvent> in = {
      ev(0.0, 0), ev(1.25, 42, workload::kTraceFlagWrite),
      ev(1.25, 7), ev(1e6, (1ull << 40) + 3)};
  std::stringstream buf;
  for (const auto& e : in) write_event(buf, e, format);
  const auto out = read_all(buf, format);
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i].time_s, in[i].time_s) << i;
    EXPECT_EQ(out[i].page, in[i].page) << i;
    EXPECT_EQ(out[i].flags, in[i].flags) << i;
  }
}

TEST(WireTest, JsonlRoundTripIsExact) { expect_round_trip(WireFormat::kJsonl); }

TEST(WireTest, BinaryRoundTripIsExact) {
  expect_round_trip(WireFormat::kBinary);
}

TEST(WireTest, AutoDetectsJsonlFromLeadingBrace) {
  std::stringstream buf;
  write_event(buf, ev(2.0, 5), WireFormat::kJsonl);
  EventReader reader(buf, WireFormat::kAuto);
  StreamEvent e;
  ASSERT_EQ(reader.next(&e), EventReader::Status::kEvent);
  EXPECT_EQ(reader.format(), WireFormat::kJsonl);
  EXPECT_EQ(e.page, 5u);
}

TEST(WireTest, AutoDetectsBinaryFromLengthPrefix) {
  std::stringstream buf;
  write_event(buf, ev(2.0, 5), WireFormat::kBinary);
  EventReader reader(buf, WireFormat::kAuto);
  StreamEvent e;
  ASSERT_EQ(reader.next(&e), EventReader::Status::kEvent);
  EXPECT_EQ(reader.format(), WireFormat::kBinary);
  EXPECT_EQ(e.page, 5u);
}

TEST(WireTest, JsonlSkipsBlankAndCommentLines) {
  std::stringstream buf("\n# synthetic trace\n{\"t\": 1, \"page\": 2}\n\n");
  const auto events = read_all(buf, WireFormat::kJsonl);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].time_s, 1.0);
  EXPECT_EQ(events[0].page, 2u);
}

TEST(WireTest, JsonlWriteFlagMapsToTraceFlagBit) {
  std::stringstream buf("{\"t\": 1, \"page\": 2, \"write\": true}\n");
  const auto events = read_all(buf, WireFormat::kJsonl);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].flags & workload::kTraceFlagWrite,
            workload::kTraceFlagWrite);
}

TEST(WireTest, JsonlErrorNamesTheLine) {
  std::stringstream buf("{\"t\": 1, \"page\": 2}\n{\"t\": oops}\n");
  std::string error;
  const auto events = read_all(buf, WireFormat::kJsonl, &error);
  EXPECT_EQ(events.size(), 1u);
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

TEST(WireTest, JsonlRejectsNegativeTime) {
  std::stringstream buf("{\"t\": -1, \"page\": 2}\n");
  std::string error;
  const auto events = read_all(buf, WireFormat::kJsonl, &error);
  EXPECT_TRUE(events.empty());
  EXPECT_FALSE(error.empty());
}

TEST(WireTest, BinaryReaderSkipsRecordExtensionBytes) {
  // A future writer may append payload fields; a 17-byte reader must
  // consume the length it was given and keep decoding.
  std::stringstream buf;
  write_event(buf, ev(1.0, 1), WireFormat::kBinary);
  // Splice 4 extension bytes into the second record by patching its length.
  std::string rec;
  {
    std::stringstream one;
    write_event(one, ev(2.0, 2), WireFormat::kBinary);
    rec = one.str();
  }
  rec[0] = static_cast<char>(static_cast<unsigned char>(rec[0]) + 4);
  rec += std::string("\xde\xad\xbe\xef", 4);
  buf << rec;
  write_event(buf, ev(3.0, 3), WireFormat::kBinary);

  const auto events = read_all(buf, WireFormat::kBinary);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[1].page, 2u);
  EXPECT_EQ(events[2].page, 3u);
}

TEST(WireTest, BinaryErrorNamesTheRecord) {
  std::stringstream buf;
  write_event(buf, ev(1.0, 1), WireFormat::kBinary);
  buf << std::string("\x01\x00\x00\x00", 4);  // length 1 < the 17-byte floor
  std::string error;
  const auto events = read_all(buf, WireFormat::kBinary, &error);
  EXPECT_EQ(events.size(), 1u);
  EXPECT_NE(error.find("record 2"), std::string::npos) << error;
}

TEST(WireTest, TruncatedBinaryPayloadIsAnError) {
  std::stringstream buf;
  std::string rec;
  {
    std::stringstream one;
    write_event(one, ev(1.0, 1), WireFormat::kBinary);
    rec = one.str();
  }
  buf << rec.substr(0, rec.size() - 3);  // cut mid-payload
  std::string error;
  const auto events = read_all(buf, WireFormat::kBinary, &error);
  EXPECT_TRUE(events.empty());
  EXPECT_FALSE(error.empty());
}

TEST(WireTest, FormatNamesRoundTrip) {
  WireFormat f = WireFormat::kAuto;
  EXPECT_TRUE(wire_format_from_name("jsonl", &f));
  EXPECT_EQ(f, WireFormat::kJsonl);
  EXPECT_TRUE(wire_format_from_name("binary", &f));
  EXPECT_EQ(f, WireFormat::kBinary);
  EXPECT_TRUE(wire_format_from_name("auto", &f));
  EXPECT_EQ(f, WireFormat::kAuto);
  EXPECT_FALSE(wire_format_from_name("csv", &f));
  EXPECT_STREQ(wire_format_name(WireFormat::kJsonl), "jsonl");
  EXPECT_STREQ(wire_format_name(WireFormat::kBinary), "binary");
}

}  // namespace
}  // namespace jpm::stream
