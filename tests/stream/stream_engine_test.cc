// StreamEngine tests.
//
// The two headline claims of the streaming core, checked exactly:
//
//   * Differential: pushing a synthesized trace through the push-mode path
//     (offer -> ring -> pump -> Engine::push_chunk) yields RunMetrics
//     bit-identical to replaying the same trace, when nothing is shed.
//   * Determinism: driven lock-step from one thread, every overload outcome
//     (shed counters, degraded period flags, watchdog closes, forced
//     fallbacks) is an exact number, bit-identical between JPM_THREADS=1
//     and JPM_THREADS=8.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "jpm/stream/stream_engine.h"
#include "jpm/workload/synthesizer.h"

namespace jpm::stream {
namespace {

using sim::EngineConfig;
using sim::RunMetrics;

workload::SynthesizerConfig stream_workload(double duration_s,
                                            std::uint64_t seed) {
  workload::SynthesizerConfig w;
  w.dataset_bytes = mib(128);
  w.byte_rate = 20e6;
  w.popularity = 0.1;
  w.duration_s = duration_s;
  w.page_bytes = 64 * kKiB;
  w.file_scale = 16.0;
  w.seed = seed;
  return w;
}

EngineConfig stream_engine_config(double period_s = 60.0) {
  EngineConfig e;
  e.joint.physical_bytes = gib(1);
  e.joint.unit_bytes = 16 * kMiB;
  e.joint.page_bytes = 64 * kKiB;
  e.joint.period_s = period_s;
  return e;
}

sim::LiveSource live_source_for(const workload::Trace& trace) {
  sim::LiveSource src;
  src.page_bytes = trace.page_bytes;
  src.total_pages = trace.total_pages;
  src.duration_hint_s = trace.duration_s;
  return src;
}

StreamEvent trace_event(const workload::Trace& trace, std::size_t i) {
  StreamEvent e;
  e.time_s = trace.times[i];
  e.page = trace.pages[i];
  e.flags = trace.flags[i];
  return e;
}

void expect_bit_identical(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_EQ(a.policy_name, b.policy_name);
  EXPECT_EQ(a.duration_s, b.duration_s);
  EXPECT_EQ(a.mem_energy.static_j, b.mem_energy.static_j);
  EXPECT_EQ(a.mem_energy.dynamic_j, b.mem_energy.dynamic_j);
  EXPECT_EQ(a.disk_energy.standby_base_j, b.disk_energy.standby_base_j);
  EXPECT_EQ(a.disk_energy.static_j, b.disk_energy.static_j);
  EXPECT_EQ(a.disk_energy.transition_j, b.disk_energy.transition_j);
  EXPECT_EQ(a.disk_energy.dynamic_j, b.disk_energy.dynamic_j);
  EXPECT_EQ(a.cache_accesses, b.cache_accesses);
  EXPECT_EQ(a.disk_accesses, b.disk_accesses);
  EXPECT_EQ(a.disk_writes, b.disk_writes);
  EXPECT_EQ(a.readahead_fetches, b.readahead_fetches);
  EXPECT_EQ(a.disk_shutdowns, b.disk_shutdowns);
  EXPECT_EQ(a.spin_ups, b.spin_ups);
  EXPECT_EQ(a.disk_busy_s, b.disk_busy_s);
  EXPECT_EQ(a.total_latency_s, b.total_latency_s);
  EXPECT_EQ(a.long_latency_count, b.long_latency_count);
  EXPECT_EQ(a.reliability.manager_fallbacks, b.reliability.manager_fallbacks);
  EXPECT_EQ(a.reliability.forced_fallbacks, b.reliability.forced_fallbacks);
  ASSERT_EQ(a.periods.size(), b.periods.size());
  for (std::size_t p = 0; p < a.periods.size(); ++p) {
    EXPECT_EQ(a.periods[p].start_s, b.periods[p].start_s);
    EXPECT_EQ(a.periods[p].end_s, b.periods[p].end_s);
    EXPECT_EQ(a.periods[p].cache_accesses, b.periods[p].cache_accesses);
    EXPECT_EQ(a.periods[p].disk_accesses, b.periods[p].disk_accesses);
    EXPECT_EQ(a.periods[p].memory_units, b.periods[p].memory_units);
    EXPECT_EQ(a.periods[p].timeout_s, b.periods[p].timeout_s);
    EXPECT_EQ(a.periods[p].busy_s, b.periods[p].busy_s);
    EXPECT_EQ(a.periods[p].shed_events, b.periods[p].shed_events);
    EXPECT_EQ(a.periods[p].degraded, b.periods[p].degraded);
  }
}

// Runs `fn` with JPM_THREADS set to `threads`, restoring the prior value.
template <typename Fn>
auto with_threads(const char* threads, Fn&& fn) {
  const char* old = std::getenv("JPM_THREADS");
  const std::string saved = old ? old : "";
  const bool had_old = old != nullptr;
  ::setenv("JPM_THREADS", threads, 1);
  auto result = fn();
  if (had_old) {
    ::setenv("JPM_THREADS", saved.c_str(), 1);
  } else {
    ::unsetenv("JPM_THREADS");
  }
  return result;
}

// ---- differential: streaming == replay ------------------------------------

// Offers the whole trace in lock-step chunks small enough that nothing is
// ever shed, then finishes at the trace duration — the streaming twin of
// run_simulation(trace, ...).
RunMetrics stream_whole_trace(const workload::Trace& trace,
                              const sim::PolicySpec& policy,
                              const EngineConfig& engine_config) {
  StreamConfig cfg;
  cfg.ring_capacity = 4096;
  cfg.overload = OverloadPolicy::kShed;  // would shed loudly if mis-sized
  cfg.watchdog_timeout_s = 0.0;
  cfg.max_batch = 256;
  StreamEngine se(live_source_for(trace), policy, engine_config, cfg);
  const std::size_t n = trace.size();
  std::size_t i = 0;
  while (i < n) {
    const std::size_t stop = std::min(n, i + 2048);
    for (; i < stop; ++i) {
      EXPECT_TRUE(se.offer(trace_event(trace, i)));
    }
    while (se.pump() > 0) {
    }
  }
  se.close();
  // Close at the declared duration, exactly as Engine::run does for a
  // replay (the synthesizer may emit its final event a hair past it).
  RunMetrics m = se.finish_at(trace.duration_s);
  const StreamStats s = se.stats();
  EXPECT_EQ(s.shed_reads + s.shed_writes, 0u);
  EXPECT_EQ(s.events_processed, n);
  return m;
}

TEST(StreamEngineTest, StreamingMatchesReplayBitForBit) {
  const auto w = stream_workload(1200.0, 7);
  const auto trace = workload::synthesize_trace(w);
  auto engine_config = stream_engine_config(300.0);
  engine_config.prefill_cache = true;
  engine_config.warm_up_s = 300.0;

  const std::vector<sim::PolicySpec> roster = {
      sim::joint_policy(),
      sim::fixed_policy(sim::DiskPolicyKind::kTwoCompetitive, mib(64)),
      sim::always_on_policy()};
  for (const auto& policy : roster) {
    SCOPED_TRACE(policy.name);
    const auto replayed = sim::run_simulation(trace, policy, engine_config);
    const auto streamed = stream_whole_trace(trace, policy, engine_config);
    expect_bit_identical(replayed, streamed);
    // A pure replay must never carry overload markings.
    for (const auto& p : streamed.periods) {
      EXPECT_EQ(p.shed_events, 0u);
      EXPECT_FALSE(p.degraded);
    }
  }
}

TEST(StreamEngineTest, ChunkingDoesNotChangeMetrics) {
  // Same stream offered one event at a time vs. big bursts: identical runs.
  const auto w = stream_workload(300.0, 11);
  const auto trace = workload::synthesize_trace(w);
  const auto engine_config = stream_engine_config();
  const auto policy = sim::joint_policy();

  StreamConfig cfg;
  cfg.ring_capacity = 4096;
  cfg.watchdog_timeout_s = 0.0;
  cfg.max_batch = 1;  // per-event engine pushes
  StreamEngine one(live_source_for(trace), policy, engine_config, cfg);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    ASSERT_TRUE(one.offer(trace_event(trace, i)));
    while (one.pump() > 0) {
    }
  }
  one.close();
  const auto per_event = one.finish();

  const auto batched = stream_whole_trace(trace, policy, engine_config);
  expect_bit_identical(per_event, batched);
}

// ---- overload policies, lock-step deterministic ---------------------------

struct StreamOutcome {
  RunMetrics metrics;
  StreamStats stats;
};

void expect_same_outcome(const StreamOutcome& a, const StreamOutcome& b) {
  expect_bit_identical(a.metrics, b.metrics);
  EXPECT_EQ(a.stats.events_offered, b.stats.events_offered);
  EXPECT_EQ(a.stats.events_accepted, b.stats.events_accepted);
  EXPECT_EQ(a.stats.events_processed, b.stats.events_processed);
  EXPECT_EQ(a.stats.shed_reads, b.stats.shed_reads);
  EXPECT_EQ(a.stats.shed_writes, b.stats.shed_writes);
  EXPECT_EQ(a.stats.degrade_engagements, b.stats.degrade_engagements);
  EXPECT_EQ(a.stats.watchdog_closes, b.stats.watchdog_closes);
  EXPECT_EQ(a.stats.clamped_timestamps, b.stats.clamped_timestamps);
  EXPECT_EQ(a.stats.max_occupancy, b.stats.max_occupancy);
}

// Bursts of 20 offers against an 8-slot ring with drop-newest shedding:
// every burst accepts 8 and sheds 12, all in lock-step, so the outcome is
// an exact function of the trace.
StreamOutcome run_shed_scenario() {
  const auto w = stream_workload(600.0, 3);
  const auto trace = workload::synthesize_trace(w);
  StreamConfig cfg;
  cfg.ring_capacity = 8;
  cfg.overload = OverloadPolicy::kShed;
  cfg.watchdog_timeout_s = 0.0;
  cfg.max_batch = 64;
  StreamEngine se(live_source_for(trace), sim::joint_policy(),
                  stream_engine_config(), cfg);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    se.offer(trace_event(trace, i));
    if ((i + 1) % 20 == 0) {
      while (se.pump() > 0) {
      }
    }
  }
  se.close();
  while (se.pump() > 0) {
  }
  StreamOutcome out;
  out.metrics = se.finish();
  out.stats = se.stats();
  return out;
}

TEST(StreamEngineTest, ShedPolicyCountsAndFlagsExactly) {
  const auto out = run_shed_scenario();
  const auto& s = out.stats;

  // Exact shed arithmetic: 8 of every 20-burst fit the ring.
  const std::uint64_t n = s.events_offered;
  const std::uint64_t full_bursts = n / 20;
  const std::uint64_t tail = n % 20;
  const std::uint64_t expected_accepted =
      full_bursts * 8 + std::min<std::uint64_t>(tail, 8);
  EXPECT_EQ(s.events_accepted, expected_accepted);
  EXPECT_EQ(s.shed_reads + s.shed_writes, n - expected_accepted);
  EXPECT_EQ(s.events_processed, expected_accepted);
  EXPECT_EQ(s.max_occupancy, 8u);

  // Every shed event is charged to exactly one period, and a period that
  // shed is flagged degraded-accuracy.
  std::uint64_t charged = 0;
  for (const auto& p : out.metrics.periods) {
    charged += p.shed_events;
    EXPECT_EQ(p.degraded, p.shed_events > 0);
  }
  EXPECT_EQ(charged, s.shed_reads + s.shed_writes);
  EXPECT_GT(charged, 0u);
}

TEST(StreamEngineTest, ShedOutcomeIsThreadCountInvariant) {
  const auto serial = with_threads("1", run_shed_scenario);
  const auto parallel = with_threads("8", run_shed_scenario);
  expect_same_outcome(serial, parallel);
}

// Degrade: saturating the ring past the high watermark pins the manager to
// its conservative fallback posture; periods closed while pinned are
// flagged; draining past the low watermark releases it.
StreamOutcome run_degrade_scenario() {
  const auto w = stream_workload(600.0, 5);
  const auto trace = workload::synthesize_trace(w);
  StreamConfig cfg;
  cfg.ring_capacity = 8;
  cfg.overload = OverloadPolicy::kDegrade;
  cfg.high_watermark = 0.75;
  cfg.low_watermark = 0.25;
  cfg.block_timeout_s = 0.0;  // a full ring sheds immediately: no wall clock
  cfg.watchdog_timeout_s = 0.0;
  cfg.max_batch = 8;  // one pump drains one full ring
  StreamEngine se(live_source_for(trace), sim::joint_policy(),
                  stream_engine_config(), cfg);
  // Fill the ring to capacity (occupancy 1.0 >= 0.75); the single pump sees
  // the saturation, engages the fallback, and drains everything.
  std::size_t i = 0;
  for (; i < 8; ++i) se.offer(trace_event(trace, i));
  se.pump();
  // Close a period while pinned: the decision must be the O(1) fallback.
  se.force_period_close();
  // A pump on the (now empty) ring sits at occupancy 0 <= 0.25: released.
  se.pump();
  // Stream the rest in half-ring bursts: occupancy 0.5 sits inside the
  // hysteresis band, so the fallback never re-engages.
  for (; i < trace.size(); ++i) {
    se.offer(trace_event(trace, i));
    if ((i + 1) % 4 == 0) se.pump();
  }
  se.close();
  while (se.pump() > 0) {
  }
  StreamOutcome out;
  out.metrics = se.finish();
  out.stats = se.stats();
  return out;
}

TEST(StreamEngineTest, DegradePolicyPinsAndReleasesTheManager) {
  const auto out = run_degrade_scenario();
  EXPECT_EQ(out.stats.degrade_engagements, 1u);
  EXPECT_EQ(out.stats.watchdog_closes, 1u);  // the explicit forced close
  EXPECT_GE(out.metrics.reliability.forced_fallbacks, 1u);
  ASSERT_FALSE(out.metrics.periods.empty());
  // The period closed while pinned is flagged even though nothing was shed
  // inside it; later clean periods are not.
  EXPECT_TRUE(out.metrics.periods.front().degraded);
  EXPECT_FALSE(out.metrics.periods.back().degraded);
}

TEST(StreamEngineTest, DegradeOutcomeIsThreadCountInvariant) {
  const auto serial = with_threads("1", run_degrade_scenario);
  const auto parallel = with_threads("8", run_degrade_scenario);
  expect_same_outcome(serial, parallel);
}

TEST(StreamEngineTest, ForcedPeriodCloseProducesCleanBoundaries) {
  sim::LiveSource src;
  src.page_bytes = 64 * kKiB;
  src.total_pages = 1024;
  StreamConfig cfg;
  cfg.ring_capacity = 64;
  cfg.watchdog_timeout_s = 0.0;
  StreamEngine se(src, sim::joint_policy(), stream_engine_config(), cfg);

  StreamEvent e;
  e.time_s = 10.0;
  e.page = 1;
  e.flags = workload::kTraceFlagStart;
  ASSERT_TRUE(se.offer(e));
  while (se.pump() > 0) {
  }
  // Two watchdog-style closes with no further events: the half-open period
  // ends exactly at its boundary, then an empty period follows.
  se.force_period_close();
  se.force_period_close();
  se.close();
  const auto m = se.finish();
  const auto s = se.stats();
  EXPECT_EQ(s.watchdog_closes, 2u);
  ASSERT_GE(m.periods.size(), 2u);
  EXPECT_EQ(m.periods[0].end_s, 60.0);
  EXPECT_EQ(m.periods[0].cache_accesses, 1u);
  EXPECT_EQ(m.periods[1].end_s, 120.0);
  EXPECT_EQ(m.periods[1].cache_accesses, 0u);
  EXPECT_EQ(m.duration_s, 120.0);
}

TEST(StreamEngineTest, BlockPolicyWithZeroTimeoutShedsDeterministically) {
  sim::LiveSource src;
  src.page_bytes = 64 * kKiB;
  src.total_pages = 1024;
  StreamConfig cfg;
  cfg.ring_capacity = 1;
  cfg.overload = OverloadPolicy::kBlock;
  cfg.block_timeout_s = 0.0;
  cfg.watchdog_timeout_s = 0.0;
  StreamEngine se(src, sim::always_on_policy(), stream_engine_config(), cfg);

  StreamEvent e;
  e.time_s = 1.0;
  e.page = 1;
  EXPECT_TRUE(se.offer(e));
  e.page = 2;
  e.flags = workload::kTraceFlagWrite;
  EXPECT_FALSE(se.offer(e));  // full ring, zero wait budget
  const auto s = se.stats();
  EXPECT_EQ(s.block_waits, 1u);
  EXPECT_EQ(s.block_timeouts, 1u);
  EXPECT_EQ(s.shed_writes, 1u);
  EXPECT_EQ(s.shed_reads, 0u);
  se.close();
  while (se.pump() > 0) {
  }
  (void)se.finish();
}

TEST(StreamEngineTest, NonMonotonicTimestampsAreClampedAndCounted) {
  sim::LiveSource src;
  src.page_bytes = 64 * kKiB;
  src.total_pages = 1024;
  StreamConfig cfg;
  cfg.ring_capacity = 64;
  cfg.watchdog_timeout_s = 0.0;
  StreamEngine se(src, sim::always_on_policy(), stream_engine_config(), cfg);

  const double times[] = {5.0, 3.0, 7.0, 2.0};
  for (std::uint64_t i = 0; i < 4; ++i) {
    StreamEvent e;
    e.time_s = times[i];
    e.page = i;
    ASSERT_TRUE(se.offer(e));
  }
  se.close();
  while (se.pump() > 0) {
  }
  EXPECT_EQ(se.stats().clamped_timestamps, 2u);
  EXPECT_EQ(se.last_time_s(), 7.0);
  (void)se.finish();
}

TEST(StreamEngineTest, ConcurrentProducerSmoke) {
  // Real two-thread operation (the TSan job's target): one producer racing
  // the consumer. Counters are racy in the middle but must reconcile at
  // the end: offered == accepted + shed, processed == accepted.
  const auto w = stream_workload(120.0, 9);
  const auto trace = workload::synthesize_trace(w);
  StreamConfig cfg;
  cfg.ring_capacity = 1024;
  cfg.overload = OverloadPolicy::kBlock;
  cfg.block_timeout_s = 5.0;
  cfg.watchdog_timeout_s = 0.0;
  StreamEngine se(live_source_for(trace), sim::always_on_policy(),
                  stream_engine_config(), cfg);
  std::thread producer([&] {
    for (std::size_t i = 0; i < trace.size(); ++i) {
      se.offer(trace_event(trace, i));
    }
    se.close();
  });
  se.run_until_closed();
  producer.join();
  const auto m = se.finish();
  const auto s = se.stats();
  EXPECT_EQ(s.events_offered, trace.size());
  EXPECT_EQ(s.events_accepted + s.shed_reads + s.shed_writes,
            s.events_offered);
  EXPECT_EQ(s.events_processed, s.events_accepted);
  EXPECT_EQ(m.cache_accesses, s.events_processed);
}

TEST(StreamConfigTest, ValidateRejectsBadKnobs) {
  const StreamConfig good;
  EXPECT_NO_THROW(validate(good));

  StreamConfig c = good;
  c.ring_capacity = 3;
  EXPECT_THROW(validate(c), std::invalid_argument);
  c = good;
  c.ring_capacity = 1ull << 31;
  EXPECT_THROW(validate(c), std::invalid_argument);
  c = good;
  c.high_watermark = 1.5;
  EXPECT_THROW(validate(c), std::invalid_argument);
  c = good;
  c.low_watermark = 0.9;
  c.high_watermark = 0.5;
  EXPECT_THROW(validate(c), std::invalid_argument);
  c = good;
  c.block_timeout_s = -1.0;
  EXPECT_THROW(validate(c), std::invalid_argument);
  c = good;
  c.max_batch = 0;
  EXPECT_THROW(validate(c), std::invalid_argument);
}

}  // namespace
}  // namespace jpm::stream
