// EventRing unit tests: boundary conditions the MPSC ring must get right —
// wrap-around reuse of slots, full/empty edges, the degenerate capacity-1
// ring, chunked pops, and close()/drained() end-of-stream semantics.
#include <gtest/gtest.h>

#include <vector>

#include "jpm/stream/ring.h"

namespace jpm::stream {
namespace {

StreamEvent ev(double t, std::uint64_t page, std::uint8_t flags = 0) {
  StreamEvent e;
  e.time_s = t;
  e.page = page;
  e.flags = flags;
  return e;
}

TEST(EventRingTest, EmptyRingPopsNothing) {
  EventRing ring(8);
  StreamEvent out;
  EXPECT_FALSE(ring.try_pop(&out));
  EXPECT_EQ(ring.size_approx(), 0u);
  EXPECT_FALSE(ring.closed());
  EXPECT_FALSE(ring.drained());
}

TEST(EventRingTest, PushPopRoundTripsTheEvent) {
  EventRing ring(8);
  ASSERT_TRUE(ring.try_push(ev(1.5, 42, 2)));
  EXPECT_EQ(ring.size_approx(), 1u);
  StreamEvent out;
  ASSERT_TRUE(ring.try_pop(&out));
  EXPECT_EQ(out.time_s, 1.5);
  EXPECT_EQ(out.page, 42u);
  EXPECT_EQ(out.flags, 2u);
  EXPECT_EQ(ring.size_approx(), 0u);
}

TEST(EventRingTest, FullRingRejectsPushWithoutBlocking) {
  EventRing ring(4);
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_push(ev(0.0, i)));
  }
  EXPECT_FALSE(ring.try_push(ev(0.0, 99)));
  EXPECT_EQ(ring.size_approx(), 4u);
  // One pop frees exactly one slot.
  StreamEvent out;
  ASSERT_TRUE(ring.try_pop(&out));
  EXPECT_EQ(out.page, 0u);
  EXPECT_TRUE(ring.try_push(ev(0.0, 99)));
  EXPECT_FALSE(ring.try_push(ev(0.0, 100)));
}

TEST(EventRingTest, FifoOrderSurvivesManyWrapArounds) {
  // 8-slot ring, 1000 events: every slot is reused 125 times, so a stale
  // sequence number or bad mask shows up as a reorder or a lost event.
  EventRing ring(8);
  std::uint64_t next_push = 0;
  std::uint64_t next_pop = 0;
  StreamEvent out;
  while (next_pop < 1000) {
    while (next_push < 1000 && ring.try_push(ev(0.0, next_push))) ++next_push;
    // Drain in uneven chunks so head and tail move at different strides.
    for (int i = 0; i < 3 && ring.try_pop(&out); ++i) {
      EXPECT_EQ(out.page, next_pop);
      ++next_pop;
    }
  }
  EXPECT_EQ(ring.size_approx(), 0u);
}

TEST(EventRingTest, CapacityOneAlternatesPushAndPop) {
  EventRing ring(1);
  EXPECT_EQ(ring.capacity(), 1u);
  StreamEvent out;
  for (std::uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(ring.try_push(ev(0.0, i)));
    EXPECT_FALSE(ring.try_push(ev(0.0, i + 1000)));  // full at one
    ASSERT_TRUE(ring.try_pop(&out));
    EXPECT_EQ(out.page, i);
    EXPECT_FALSE(ring.try_pop(&out));  // empty again
  }
}

TEST(EventRingTest, PopChunkDrainsInOrderAndStopsAtEmpty) {
  EventRing ring(16);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(ring.try_push(ev(0.0, i)));
  }
  std::vector<StreamEvent> chunk(16);
  EXPECT_EQ(ring.pop_chunk(chunk.data(), 4), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(chunk[i].page, i);
  EXPECT_EQ(ring.pop_chunk(chunk.data(), 16), 6u);
  for (std::uint64_t i = 0; i < 6; ++i) EXPECT_EQ(chunk[i].page, i + 4);
  EXPECT_EQ(ring.pop_chunk(chunk.data(), 16), 0u);
}

TEST(EventRingTest, CloseIsIdempotentAndKeepsPublishedEventsPoppable) {
  EventRing ring(4);
  ASSERT_TRUE(ring.try_push(ev(0.0, 7)));
  ring.close();
  ring.close();
  EXPECT_TRUE(ring.closed());
  EXPECT_FALSE(ring.drained());  // one event still queued
  StreamEvent out;
  ASSERT_TRUE(ring.try_pop(&out));
  EXPECT_EQ(out.page, 7u);
  EXPECT_TRUE(ring.drained());
}

TEST(EventRingTest, IsPowerOfTwoClassifiesEdges) {
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(2));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_TRUE(is_power_of_two(1ull << 30));
  EXPECT_FALSE(is_power_of_two((1ull << 30) + 1));
}

}  // namespace
}  // namespace jpm::stream
