// The telemetry determinism contract (ISSUE/DESIGN): the JSON run report
// and the periods CSV are byte-identical across JPM_THREADS settings,
// because they contain only simulated time and structural stream order. And
// enabling telemetry must not change what the simulator computes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "jpm/sim/runner.h"
#include "jpm/telemetry/export.h"
#include "jpm/telemetry/registry.h"
#include "jpm/telemetry/telemetry.h"
#include "jpm/util/json.h"

namespace jpm::telemetry {
namespace {

workload::SynthesizerConfig point_workload(std::uint64_t dataset_bytes,
                                           std::uint64_t seed) {
  workload::SynthesizerConfig w;
  w.dataset_bytes = dataset_bytes;
  w.byte_rate = 20e6;
  w.popularity = 0.1;
  w.duration_s = 1200.0;
  w.page_bytes = 64 * kKiB;
  w.file_scale = 16.0;
  w.seed = seed;
  return w;
}

sim::EngineConfig sweep_engine() {
  sim::EngineConfig e;
  e.joint.physical_bytes = gib(1);
  e.joint.unit_bytes = 16 * kMiB;
  e.joint.page_bytes = 64 * kKiB;
  e.joint.period_s = 300.0;
  e.prefill_cache = true;
  e.warm_up_s = 300.0;
  return e;
}

std::vector<sim::PolicySpec> four_policy_roster() {
  return {sim::joint_policy(),
          sim::fixed_policy(sim::DiskPolicyKind::kTwoCompetitive, mib(64)),
          sim::powerdown_policy(sim::DiskPolicyKind::kAdaptive, gib(1)),
          sim::always_on_policy()};
}

std::vector<std::pair<std::string, workload::SynthesizerConfig>>
three_point_sweep() {
  return {{"128MB", point_workload(mib(128), 7)},
          {"256MB", point_workload(mib(256), 8)},
          {"512MB", point_workload(mib(512), 9)}};
}

struct SweepArtifacts {
  std::string report;
  std::string csv;
  std::vector<sim::SweepPoint> points;
};

// Runs the sweep under a fresh telemetry session with JPM_THREADS forced,
// snapshots the deterministic artifacts, and tears the session down.
SweepArtifacts sweep_with_threads(const char* threads) {
  const char* old = std::getenv("JPM_THREADS");
  const std::string saved = old ? old : "";
  const bool had_old = old != nullptr;
  ::setenv("JPM_THREADS", threads, 1);

  start({});
  SweepArtifacts out;
  out.points =
      sim::run_sweep(three_point_sweep(), four_policy_roster(), sweep_engine());
  out.report = report_json();
  out.csv = periods_csv();
  stop();

  if (had_old) {
    ::setenv("JPM_THREADS", saved.c_str(), 1);
  } else {
    ::unsetenv("JPM_THREADS");
  }
  return out;
}

TEST(TelemetryDeterminismTest, ReportAndCsvAreThreadCountInvariant) {
  const auto serial = sweep_with_threads("1");
  const auto parallel = sweep_with_threads("8");

  // Byte-for-byte: any scheduling leak into the report shows up here.
  EXPECT_EQ(serial.report, parallel.report);
  EXPECT_EQ(serial.csv, parallel.csv);

  // And the artifacts are substantive, not vacuously equal: one stream per
  // (point, policy) in structural order, with a populated period timeline.
  util::json::Value report;
  std::string error;
  ASSERT_TRUE(util::json::parse(serial.report, &report, &error)) << error;
  const auto& runs = report.as_object().find("runs")->as_array();
  ASSERT_EQ(runs.size(), 12u);  // 3 points x 4 policies
  EXPECT_EQ(runs[0].as_object().find("name")->as_string(), "128MB/Joint");
  EXPECT_EQ(runs[0].as_object().find("stream")->as_number(), 0.0);
  for (const auto& run : runs) {
    const auto& tables = run.as_object().find("tables")->as_object();
    ASSERT_TRUE(tables.contains("periods"));
    EXPECT_FALSE(
        tables.find("periods")->as_object().find("rows")->as_array().empty());
  }
  EXPECT_GT(serial.csv.size(), 100u);
}

// Back-to-back identical sweeps in one process must produce byte-identical
// artifacts: the engine's page tables, slot compaction, and scratch buffers
// hold no state that leaks across runs.
TEST(TelemetryDeterminismTest, RepeatedSweepIsByteStable) {
  const auto first = sweep_with_threads("1");
  const auto second = sweep_with_threads("1");
  EXPECT_EQ(first.report, second.report);
  EXPECT_EQ(first.csv, second.csv);
}

TEST(TelemetryDeterminismTest, EnablingTelemetryDoesNotChangeMetrics) {
  const auto w = point_workload(mib(128), 7);
  const auto e = sweep_engine();

  for (const auto& policy : four_policy_roster()) {
    SCOPED_TRACE(policy.name);
    const auto off = sim::run_simulation(w, policy, e);

    start({});
    RunRecorder* rec = begin_run("metrics_check");
    const sim::RunMetrics on = [&] {
      const ScopedRun scope(rec);
      return sim::run_simulation(w, policy, e);
    }();
    stop();

    // Counts must match exactly; energies may differ only at ulp level from
    // the mid-run energy snapshots the instrumentation takes.
    EXPECT_EQ(on.cache_accesses, off.cache_accesses);
    EXPECT_EQ(on.disk_accesses, off.disk_accesses);
    EXPECT_EQ(on.disk_writes, off.disk_writes);
    EXPECT_EQ(on.spin_ups, off.spin_ups);
    EXPECT_EQ(on.disk_shutdowns, off.disk_shutdowns);
    EXPECT_EQ(on.long_latency_count, off.long_latency_count);
    EXPECT_EQ(on.periods.size(), off.periods.size());
    EXPECT_EQ(on.total_latency_s, off.total_latency_s);
    EXPECT_EQ(on.disk_busy_s, off.disk_busy_s);
    EXPECT_NEAR(on.total_j(), off.total_j(),
                1e-9 * std::max(1.0, off.total_j()));
  }
}

}  // namespace
}  // namespace jpm::telemetry
