// Tier-1 smoke test for the telemetry pipeline end to end: runs a real
// bench harness as a subprocess with --telemetry, then validates the
// emitted report against the checked-in schema using a small subset-JSON-
// Schema validator built on the in-repo parser (no third-party deps).
//
// Build wiring (tests/CMakeLists.txt) provides:
//   JPM_SMOKE_BENCH_PATH  — $<TARGET_FILE:bench_models>
//   JPM_SCHEMA_PATH       — tests/telemetry/telemetry_report.schema.json
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "jpm/sim/runner.h"
#include "jpm/telemetry/export.h"
#include "jpm/telemetry/telemetry.h"
#include "jpm/util/json.h"

namespace jpm::telemetry {
namespace {

using util::json::Value;

// ---- subset JSON Schema validator -----------------------------------------
// Supports exactly the keywords the checked-in schema uses: type (string or
// array of type names), required, properties, additionalProperties (schema
// for unlisted members), items, enum, minimum. Unknown keywords are ignored,
// as JSON Schema prescribes.

bool type_matches(const std::string& name, const Value& v) {
  if (name == "object") return v.is_object();
  if (name == "array") return v.is_array();
  if (name == "string") return v.is_string();
  if (name == "number") return v.is_number();
  if (name == "boolean") return v.is_bool();
  if (name == "null") return v.is_null();
  return false;
}

void validate(const Value& schema, const Value& v, const std::string& path,
              std::vector<std::string>* errors) {
  const auto& s = schema.as_object();

  if (const Value* type = s.find("type")) {
    bool ok = false;
    if (type->is_string()) {
      ok = type_matches(type->as_string(), v);
    } else {
      for (const auto& t : type->as_array()) {
        ok = ok || type_matches(t.as_string(), v);
      }
    }
    if (!ok) {
      errors->push_back(path + ": type mismatch");
      return;  // further keywords assume the right shape
    }
  }

  if (const Value* allowed = s.find("enum")) {
    bool ok = false;
    for (const auto& candidate : allowed->as_array()) {
      if (candidate.is_string() && v.is_string() &&
          candidate.as_string() == v.as_string()) {
        ok = true;
      }
      if (candidate.is_number() && v.is_number() &&
          candidate.as_number() == v.as_number()) {
        ok = true;
      }
    }
    if (!ok) errors->push_back(path + ": value not in enum");
  }

  if (const Value* minimum = s.find("minimum")) {
    if (v.is_number() && v.as_number() < minimum->as_number()) {
      errors->push_back(path + ": below minimum");
    }
  }

  if (const Value* required = s.find("required"); required && v.is_object()) {
    for (const auto& key : required->as_array()) {
      if (!v.as_object().contains(key.as_string())) {
        errors->push_back(path + ": missing required member \"" +
                          key.as_string() + "\"");
      }
    }
  }

  const Value* properties = s.find("properties");
  const Value* additional = s.find("additionalProperties");
  if (v.is_object() && (properties != nullptr || additional != nullptr)) {
    for (const auto& [key, member] : v.as_object().entries()) {
      const Value* sub =
          properties ? properties->as_object().find(key) : nullptr;
      if (sub == nullptr) sub = additional;
      if (sub != nullptr) {
        validate(*sub, member, path + "." + key, errors);
      }
    }
  }

  if (const Value* items = s.find("items"); items && v.is_array()) {
    for (std::size_t i = 0; i < v.as_array().size(); ++i) {
      validate(*items, v.as_array()[i], path + "[" + std::to_string(i) + "]",
               errors);
    }
  }
}

std::vector<std::string> validate_report(const std::string& report_text) {
  Value schema, report;
  std::string error;
  std::ifstream f(JPM_SCHEMA_PATH);
  std::ostringstream schema_text;
  schema_text << f.rdbuf();
  EXPECT_TRUE(f.good()) << "cannot read schema " << JPM_SCHEMA_PATH;
  EXPECT_TRUE(util::json::parse(schema_text.str(), &schema, &error)) << error;
  EXPECT_TRUE(util::json::parse(report_text, &report, &error)) << error;
  std::vector<std::string> errors;
  validate(schema, report, "$", &errors);
  return errors;
}

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream out;
  out << f.rdbuf();
  EXPECT_TRUE(f.good()) << "cannot read " << path;
  return out.str();
}

// The validator itself must not be vacuous: hand it documents that break
// each keyword it claims to implement.
TEST(ReportSchemaValidatorTest, CatchesViolations) {
  EXPECT_FALSE(validate_report("[]").empty());            // type
  EXPECT_FALSE(validate_report("{}").empty());            // required
  EXPECT_FALSE(validate_report(R"({"version": 0, "generator": "jpm-telemetry",
      "categories": 1, "ring_capacity": 1, "runs": [],
      "orphan_events": []})")
                   .empty());                             // minimum
  EXPECT_FALSE(validate_report(R"({"version": 1, "generator": "other",
      "categories": 1, "ring_capacity": 1, "runs": [],
      "orphan_events": []})")
                   .empty());                             // enum
  EXPECT_FALSE(validate_report(R"({"version": 1, "generator": "jpm-telemetry",
      "categories": 1, "ring_capacity": 1, "runs": ["not a run"],
      "orphan_events": []})")
                   .empty());                             // items
}

// An in-process sweep exercises every report section (counters, gauges,
// histograms, tables, events) against the schema.
TEST(ReportSchemaTest, PopulatedInProcessReportValidates) {
  workload::SynthesizerConfig w;
  w.dataset_bytes = mib(128);
  w.byte_rate = 20e6;
  w.popularity = 0.1;
  w.duration_s = 1200.0;
  w.page_bytes = 64 * kKiB;
  w.file_scale = 16.0;
  w.seed = 7;

  sim::EngineConfig e;
  e.joint.physical_bytes = gib(1);
  e.joint.unit_bytes = 16 * kMiB;
  e.joint.page_bytes = 64 * kKiB;
  e.joint.period_s = 300.0;
  e.prefill_cache = true;
  e.warm_up_s = 300.0;

  start({});
  sim::run_sweep({sim::SweepWorkload{"128MB", w}},
                 {sim::joint_policy(), sim::always_on_policy()}, e);
  const std::string report = report_json();
  stop();

  const auto errors = validate_report(report);
  EXPECT_TRUE(errors.empty()) << errors.front() << " (+" << errors.size() - 1
                              << " more)";
}

// Scenario provenance: when a resolved scenario has been published, the
// report embeds it verbatim plus its content hash; when cleared, both fields
// disappear. Either shape must validate against the schema.
TEST(ReportSchemaTest, ScenarioProvenanceAppearsInReport) {
  const std::string scenario =
      R"({"version": 1, "name": "prov", "description": "",
          "workloads": [], "roster": [], "engine": {},
          "output": {"header": "", "tables": []}})";
  set_scenario(scenario, "00000000deadbeef");
  start({});
  sim::run_sweep({sim::SweepWorkload{"64MB", [] {
                     workload::SynthesizerConfig w;
                     w.dataset_bytes = mib(64);
                     w.byte_rate = 20e6;
                     w.duration_s = 300.0;
                     w.page_bytes = 64 * kKiB;
                     return w;
                   }()}},
                 {sim::always_on_policy()}, [] {
                   sim::EngineConfig e;
                   e.joint.physical_bytes = gib(1);
                   e.joint.unit_bytes = 16 * kMiB;
                   e.joint.page_bytes = 64 * kKiB;
                   return e;
                 }());
  const std::string with_provenance = report_json();
  clear_scenario();
  const std::string without_provenance = report_json();
  stop();

  EXPECT_TRUE(validate_report(with_provenance).empty());
  EXPECT_TRUE(validate_report(without_provenance).empty());

  Value report;
  std::string error;
  ASSERT_TRUE(util::json::parse(with_provenance, &report, &error)) << error;
  const Value* embedded = report.as_object().find("scenario");
  ASSERT_NE(embedded, nullptr);
  EXPECT_EQ(embedded->as_object().find("name")->as_string(), "prov");
  const Value* hash = report.as_object().find("scenario_hash");
  ASSERT_NE(hash, nullptr);
  EXPECT_EQ(hash->as_string(), "00000000deadbeef");

  ASSERT_TRUE(
      util::json::parse(without_provenance, &report, &error)) << error;
  EXPECT_EQ(report.as_object().find("scenario"), nullptr);
  EXPECT_EQ(report.as_object().find("scenario_hash"), nullptr);
}

// Trace provenance: file-backed sweeps register every replayed JPMC file and
// its content hash; the report joins them with ";" in sweep-point order.
// Either shape (with or without the fields) must validate.
TEST(ReportSchemaTest, TraceProvenanceAppearsInReport) {
  start({});
  add_trace("a.jpmc", "00000000000000aa");
  add_trace("b.jpmc", "00000000000000bb");
  const std::string with_traces = report_json();
  clear_traces();
  const std::string without_traces = report_json();
  stop();

  EXPECT_TRUE(validate_report(with_traces).empty());
  EXPECT_TRUE(validate_report(without_traces).empty());

  Value report;
  std::string error;
  ASSERT_TRUE(util::json::parse(with_traces, &report, &error)) << error;
  const Value* path = report.as_object().find("trace_path");
  ASSERT_NE(path, nullptr);
  EXPECT_EQ(path->as_string(), "a.jpmc;b.jpmc");
  const Value* hash = report.as_object().find("trace_hash");
  ASSERT_NE(hash, nullptr);
  EXPECT_EQ(hash->as_string(), "00000000000000aa;00000000000000bb");

  ASSERT_TRUE(util::json::parse(without_traces, &report, &error)) << error;
  EXPECT_EQ(report.as_object().find("trace_path"), nullptr);
  EXPECT_EQ(report.as_object().find("trace_hash"), nullptr);
}

// The zero-to-artifact path a user actually takes: run a bench harness with
// --telemetry and validate what lands on disk. Also checks the "telemetry
// never touches stdout" contract by diffing against a telemetry-off run.
TEST(ReportSchemaTest, BenchHarnessSubprocessReportValidates) {
  const std::string bench = JPM_SMOKE_BENCH_PATH;
  const std::string base = testing::TempDir() + "jpm_schema_smoke";
  const std::string with_out = base + ".stdout";
  const std::string without_out = base + ".stdout_off";

  const std::string run_with = "JPM_BENCH_FAST=1 '" + bench +
                               "' '--telemetry=" + base + "' > '" + with_out +
                               "' 2>/dev/null";
  const std::string run_without = "JPM_BENCH_FAST=1 '" + bench + "' > '" +
                                  without_out + "' 2>/dev/null";
  ASSERT_EQ(std::system(run_with.c_str()), 0) << run_with;
  ASSERT_EQ(std::system(run_without.c_str()), 0) << run_without;

  const std::string report_text = read_file(base + ".report.json");
  const auto errors = validate_report(report_text);
  EXPECT_TRUE(errors.empty()) << errors.front() << " (+" << errors.size() - 1
                              << " more)";

  // The harness loads its scenario through bench::load_scenario, so the
  // report must carry the resolved scenario and its content hash.
  {
    Value report;
    std::string parse_error;
    ASSERT_TRUE(util::json::parse(report_text, &report, &parse_error))
        << parse_error;
    const Value* scenario = report.as_object().find("scenario");
    ASSERT_NE(scenario, nullptr) << "report lacks scenario provenance";
    EXPECT_EQ(scenario->as_object().find("name")->as_string(), "models");
    const Value* hash = report.as_object().find("scenario_hash");
    ASSERT_NE(hash, nullptr);
    EXPECT_EQ(hash->as_string().size(), 16u);
  }

  // trace.json must parse; periods.csv exists (possibly empty for harnesses
  // that run no simulation).
  Value trace;
  std::string error;
  EXPECT_TRUE(
      util::json::parse(read_file(base + ".trace.json"), &trace, &error))
      << error;
  std::ifstream csv(base + ".periods.csv");
  EXPECT_TRUE(csv.good());

  EXPECT_EQ(read_file(with_out), read_file(without_out));

  for (const char* suffix : {".report.json", ".trace.json", ".periods.csv"}) {
    std::remove((base + suffix).c_str());
  }
  std::remove(with_out.c_str());
  std::remove(without_out.c_str());
}

}  // namespace
}  // namespace jpm::telemetry
