// Unit tests for the telemetry session, registries, and exporters, plus a
// multi-threaded emitter test sized for TSan (the per-thread ring claims to
// be data-race free; -DJPM_SANITIZE=thread checks the claim).
#include "jpm/telemetry/telemetry.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "jpm/telemetry/export.h"
#include "jpm/telemetry/registry.h"
#include "jpm/util/check.h"
#include "jpm/util/json.h"

namespace jpm::telemetry {
namespace {

// Every test tears the global session down even on assertion failure.
struct SessionGuard {
  explicit SessionGuard(const Options& options = {}) { start(options); }
  ~SessionGuard() {
    if (session_active()) stop();
  }
};

TEST(TelemetryCategoryTest, NamesAndMaskRoundTrip) {
  EXPECT_STREQ(category_name(Category::kEngine), "engine");
  EXPECT_STREQ(category_name(Category::kDisk), "disk");
  EXPECT_EQ(category_mask_from_string(""), 0xffffffffu);
  EXPECT_EQ(category_mask_from_string("all"), 0xffffffffu);
  EXPECT_EQ(category_mask_from_string("disk"),
            static_cast<std::uint32_t>(Category::kDisk));
  EXPECT_EQ(category_mask_from_string("engine,manager"),
            static_cast<std::uint32_t>(Category::kEngine) |
                static_cast<std::uint32_t>(Category::kManager));
  // Unknown names are ignored rather than rejected.
  EXPECT_EQ(category_mask_from_string("nonsense,disk"),
            static_cast<std::uint32_t>(Category::kDisk));
}

TEST(TelemetrySessionTest, DisabledByDefault) {
  EXPECT_FALSE(session_active());
  EXPECT_FALSE(enabled());
  EXPECT_EQ(begin_run("x"), nullptr);
  EXPECT_EQ(current_run(), nullptr);
  // Emitting without a session is a cheap no-op, not an error.
  TELEM_EVENT(kEngine, "noop", 1.0, {"v", 2.0});
  EXPECT_EQ(report_json(), "{}");
  EXPECT_FALSE(export_files("/tmp/jpm_telem_should_not_exist"));
}

TEST(TelemetrySessionTest, StartStopLifecycle) {
  {
    SessionGuard session;
    EXPECT_TRUE(session_active());
    EXPECT_TRUE(enabled());
    EXPECT_TRUE(category_enabled(Category::kDisk));
    EXPECT_THROW(start({}), CheckError);  // restart without stop is a bug
  }
  EXPECT_FALSE(session_active());
  EXPECT_FALSE(enabled());
}

TEST(TelemetrySessionTest, RuntimeCategoryMaskGatesEvents) {
  SessionGuard session(
      {.categories = static_cast<std::uint32_t>(Category::kDisk)});
  EXPECT_TRUE(category_enabled(Category::kDisk));
  EXPECT_FALSE(category_enabled(Category::kEngine));

  RunRecorder* rec = begin_run("gated");
  ASSERT_NE(rec, nullptr);
  {
    const ScopedRun scope(rec);
    TELEM_EVENT(kEngine, "masked_out", 1.0, {"v", 1.0});
    TELEM_EVENT(kDisk, "kept", 2.0, {"wait_s", 0.5});
  }
  ASSERT_EQ(rec->events().size(), 1u);
  EXPECT_STREQ(rec->events()[0].name, "kept");
  EXPECT_EQ(rec->events()[0].sim_time_s, 2.0);
  ASSERT_EQ(rec->events()[0].arg_count, 1);
  EXPECT_STREQ(rec->events()[0].args[0].key, "wait_s");
  EXPECT_EQ(rec->events()[0].args[0].value, 0.5);
}

TEST(TelemetrySessionTest, StreamsNumberInRegistrationOrder) {
  SessionGuard session;
  RunRecorder* a = begin_run("first");
  RunRecorder* b = begin_run("second");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->stream(), 0u);
  EXPECT_EQ(b->stream(), 1u);
  EXPECT_EQ(a->name(), "first");
}

TEST(TelemetrySessionTest, ScopedRunNestsAndFlushesInOrder) {
  SessionGuard session;
  RunRecorder* outer = begin_run("outer");
  RunRecorder* inner = begin_run("inner");
  {
    const ScopedRun s1(outer);
    EXPECT_EQ(current_run(), outer);
    TELEM_EVENT(kEngine, "o1", 1.0, {"v", 1.0});
    {
      const ScopedRun s2(inner);
      EXPECT_EQ(current_run(), inner);
      TELEM_EVENT(kEngine, "i1", 2.0, {"v", 2.0});
    }
    EXPECT_EQ(current_run(), outer);
    TELEM_EVENT(kEngine, "o2", 3.0, {"v", 3.0});
  }
  EXPECT_EQ(current_run(), nullptr);
  ASSERT_EQ(outer->events().size(), 2u);
  EXPECT_STREQ(outer->events()[0].name, "o1");
  EXPECT_STREQ(outer->events()[1].name, "o2");
  ASSERT_EQ(inner->events().size(), 1u);
  EXPECT_STREQ(inner->events()[0].name, "i1");
}

TEST(TelemetrySessionTest, RingKeepsTailAndCountsDrops) {
  SessionGuard session({.ring_capacity = 4});
  RunRecorder* rec = begin_run("small_ring");
  {
    const ScopedRun scope(rec);
    for (int i = 0; i < 10; ++i) {
      TELEM_EVENT(kEngine, "tick", static_cast<double>(i), {"i", 1.0});
    }
  }
  ASSERT_EQ(rec->events().size(), 4u);
  EXPECT_EQ(rec->dropped_events(), 6u);
  // The *last* four events survive, in emission order.
  EXPECT_EQ(rec->events()[0].sim_time_s, 6.0);
  EXPECT_EQ(rec->events()[3].sim_time_s, 9.0);
}

TEST(TelemetrySessionTest, EventsOutsideAnyRunBecomeOrphans) {
  SessionGuard session;
  TELEM_EVENT(kSweep, "setup_note", 0.0, {"points", 3.0});

  util::json::Value report;
  std::string error;
  ASSERT_TRUE(util::json::parse(report_json(), &report, &error)) << error;
  const auto* orphans = report.as_object().find("orphan_events");
  ASSERT_NE(orphans, nullptr);
  ASSERT_EQ(orphans->as_array().size(), 1u);
  const auto& ev = orphans->as_array()[0].as_object();
  EXPECT_EQ(ev.find("name")->as_string(), "setup_note");
  EXPECT_EQ(ev.find("category")->as_string(), "sweep");
}

TEST(TelemetryRegistryTest, CountersGaugesTablesAccumulate) {
  SessionGuard session;
  RunRecorder* rec = begin_run("registry");
  rec->counter("spin_ups").add();
  rec->counter("spin_ups").add(4);
  rec->gauge("memory_units").set(8.0);
  rec->gauge("memory_units").set(2.0);
  rec->gauge("memory_units").set(5.0);
  auto& table = rec->table("periods", {"start_s", "end_s"});
  table.add_row({0.0, 300.0});
  table.add_row({300.0, 600.0});
  auto& hist = rec->histogram("idle_interval_s", buckets::idle_seconds());
  hist.add(0.5);

  EXPECT_EQ(rec->counter("spin_ups").value, 5u);
  EXPECT_EQ(rec->gauge("memory_units").value, 5.0);
  EXPECT_EQ(rec->gauge("memory_units").min, 2.0);
  EXPECT_EQ(rec->gauge("memory_units").max, 8.0);
  EXPECT_EQ(rec->gauge("memory_units").samples, 3u);
  EXPECT_EQ(rec->table("periods", {}).rows().size(), 2u);
  EXPECT_EQ(rec->histogram("idle_interval_s", buckets::idle_seconds()).count(),
            1u);
  // get-or-create returns stable pointers — the hot-path caching contract.
  EXPECT_EQ(&rec->counter("spin_ups"), &rec->counter("spin_ups"));
}

TEST(TelemetryRegistryTest, BucketPresetsAreWellFormed) {
  for (const auto& bounds : {buckets::idle_seconds(),
                             buckets::latency_seconds(),
                             buckets::spinup_seconds()}) {
    ASSERT_GE(bounds.size(), 2u);
    for (std::size_t i = 1; i < bounds.size(); ++i) {
      EXPECT_GT(bounds[i], bounds[i - 1]);
    }
  }
  // Closed-form layouts: independently computed bounds are identical, so
  // histograms merged across runs/threads always agree on shape.
  EXPECT_EQ(buckets::idle_seconds(), buckets::idle_seconds());
}

TEST(TelemetryExportTest, ReportContainsRegisteredStructure) {
  SessionGuard session;
  RunRecorder* rec = begin_run("export_run");
  {
    const ScopedRun scope(rec);
    rec->counter("requests").add(7);
    rec->gauge("depth").set(3.0);
    rec->histogram("lat", buckets::latency_seconds()).add(0.01);
    rec->table("periods", {"start_s", "end_s"}).add_row({0.0, 1.0});
    TELEM_EVENT(kEngine, "marker", 0.5, {"k", 1.0});
  }

  util::json::Value report;
  std::string error;
  ASSERT_TRUE(util::json::parse(report_json(), &report, &error)) << error;
  const auto& root = report.as_object();
  EXPECT_EQ(root.find("version")->as_number(), 1.0);
  const auto& runs = root.find("runs")->as_array();
  ASSERT_EQ(runs.size(), 1u);
  const auto& run = runs[0].as_object();
  EXPECT_EQ(run.find("name")->as_string(), "export_run");
  EXPECT_EQ(run.find("counters")->as_object().find("requests")->as_number(),
            7.0);
  EXPECT_EQ(run.find("gauges")->as_object().find("depth")->as_object()
                .find("last")->as_number(),
            3.0);
  EXPECT_TRUE(run.find("histograms")->as_object().contains("lat"));
  EXPECT_TRUE(run.find("tables")->as_object().contains("periods"));
  ASSERT_EQ(run.find("events")->as_array().size(), 1u);

  const std::string csv = periods_csv();
  EXPECT_NE(csv.find("run,start_s,end_s"), std::string::npos);
  EXPECT_NE(csv.find("export_run,0,1"), std::string::npos);

  // The Chrome trace is valid JSON with the required envelope.
  util::json::Value trace;
  ASSERT_TRUE(util::json::parse(trace_json(), &trace, &error)) << error;
  EXPECT_TRUE(trace.as_object().contains("traceEvents"));
}

// Many threads emitting into distinct streams concurrently: the ordering
// guarantee is per-stream, and under TSan this is the proof the hot path is
// race-free. Streams are registered serially first, as the runner does.
TEST(TelemetryConcurrencyTest, ParallelEmittersKeepPerStreamOrder) {
  constexpr int kThreads = 8;
  constexpr int kEvents = 5000;
  SessionGuard session({.ring_capacity = 2 * kEvents});

  std::vector<RunRecorder*> recs;
  for (int i = 0; i < kThreads; ++i) {
    recs.push_back(begin_run("worker" + std::to_string(i)));
  }
  std::vector<std::thread> workers;
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back([rec = recs[i]] {
      const ScopedRun scope(rec);
      for (int e = 0; e < kEvents; ++e) {
        TELEM_EVENT(kEngine, "work", static_cast<double>(e), {"n", 1.0});
        rec->counter("emitted").add();
      }
    });
  }
  for (auto& w : workers) w.join();

  for (int i = 0; i < kThreads; ++i) {
    ASSERT_EQ(recs[i]->events().size(), static_cast<std::size_t>(kEvents));
    EXPECT_EQ(recs[i]->dropped_events(), 0u);
    EXPECT_EQ(recs[i]->counter("emitted").value,
              static_cast<std::uint64_t>(kEvents));
    for (int e = 0; e < kEvents; ++e) {
      ASSERT_EQ(recs[i]->events()[e].sim_time_s, static_cast<double>(e));
    }
  }
}

}  // namespace
}  // namespace jpm::telemetry
