#include "jpm/core/joint_power_manager.h"

#include <gtest/gtest.h>

#include "jpm/util/check.h"

namespace jpm::core {
namespace {

JointConfig small_config() {
  JointConfig c;
  c.page_bytes = 4 * kMiB;
  c.unit_bytes = 16 * kMiB;
  c.physical_bytes = 160 * kMiB;
  c.period_s = 600.0;
  return c;
}

TEST(JointPowerManagerTest, InitialPostureIsConservative) {
  JointPowerManager mgr(small_config());
  EXPECT_EQ(mgr.initial_memory_units(), 10u);
  EXPECT_NEAR(mgr.initial_timeout_s(), 11.7, 0.1);
}

TEST(JointPowerManagerTest, DecisionsAccumulate) {
  const auto c = small_config();
  JointPowerManager mgr(c);
  PeriodStatsCollector collector(c.unit_frames(), c.max_units(), 0.0);
  for (int i = 0; i < 100; ++i) {
    collector.on_access(i * 6.0, 1 + (i % 4ull));
  }
  const auto& d1 = mgr.on_period_end(collector.harvest(600.0));
  EXPECT_DOUBLE_EQ(d1.at_s, 600.0);
  EXPECT_EQ(d1.memory_bytes, d1.memory_units * c.unit_bytes);
  const auto& d2 = mgr.on_period_end(collector.harvest(1200.0));
  EXPECT_DOUBLE_EQ(d2.at_s, 1200.0);
  EXPECT_EQ(mgr.decisions().size(), 2u);
}

TEST(JointPowerManagerTest, HotPeriodShrinksMemory) {
  const auto c = small_config();
  JointPowerManager mgr(c);
  PeriodStatsCollector collector(c.unit_frames(), c.max_units(), 0.0);
  for (int i = 0; i < 600; ++i) collector.on_access(i * 1.0, 1 + (i % 4ull));
  const auto& d = mgr.on_period_end(collector.harvest(600.0));
  EXPECT_LT(d.memory_units, mgr.initial_memory_units());
}

TEST(JointPowerManagerTest, RejectsMisalignedGeometry) {
  auto c = small_config();
  c.unit_bytes = 10 * kMiB;  // not a multiple of 4 MiB pages? It is; make
  c.page_bytes = 3 * kMiB;   // pages that do not divide the unit instead.
  EXPECT_THROW(JointPowerManager{c}, CheckError);
  c = small_config();
  c.physical_bytes = 24 * kMiB;  // not a whole number of units
  EXPECT_THROW(JointPowerManager{c}, CheckError);
}

}  // namespace
}  // namespace jpm::core
