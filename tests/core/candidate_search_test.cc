#include "jpm/core/candidate_search.h"

#include <gtest/gtest.h>

#include <cmath>

#include "jpm/pareto/timeout_math.h"

namespace jpm::core {
namespace {

// Small geometry: 4 MiB pages, 16 MiB units (4 frames), 10 units physical.
JointConfig small_config() {
  JointConfig c;
  c.page_bytes = 4 * kMiB;
  c.unit_bytes = 16 * kMiB;
  c.physical_bytes = 160 * kMiB;
  c.period_s = 600.0;
  c.window_s = 0.1;
  return c;
}

PeriodStats make_stats(const JointConfig& c,
                       const std::vector<cache::IdleEvent>& events) {
  PeriodStats s;
  s.start_s = 0.0;
  s.end_s = c.period_s;
  s.curve = cache::MissCurve(c.unit_frames(), c.max_units());
  for (const auto& e : events) {
    s.events.push_back(e);
    s.curve.add(e.depth_frames);
    ++s.cache_accesses;
    if (e.depth_frames == cache::kColdAccess) ++s.cold_accesses;
  }
  return s;
}

constexpr double kFallbackService = 0.013;

TEST(CandidateSearchTest, HotWorkloadShrinksMemoryAndSleepsDisk) {
  const auto c = small_config();
  // 600 accesses, one per second, all hitting within one unit (depth <= 4).
  std::vector<cache::IdleEvent> events;
  for (int i = 0; i < 600; ++i) {
    events.push_back({static_cast<double>(i), 1 + (i % 4ull)});
  }
  const auto r = search_candidates(make_stats(c, events), c,
                                   kFallbackService);
  EXPECT_TRUE(r.any_feasible);
  EXPECT_EQ(r.chosen.memory_units, 1u);
  EXPECT_EQ(r.chosen.disk_accesses, 0u);
  EXPECT_EQ(r.chosen.predicted_util, 0.0);
  // With no disk accesses predicted, the disk can sleep through the period.
  EXPECT_LT(r.chosen.timeout_s, pareto::kNeverTimeout);
}

TEST(CandidateSearchTest, UtilizationConstraintForcesLargerMemory) {
  const auto c = small_config();
  // Depth in unit 2 => hits only with >= 2 units. 10 accesses/s would
  // sustain util = 10 * 0.013 = 13% > 10% at one unit.
  std::vector<cache::IdleEvent> events;
  for (int i = 0; i < 6000; ++i) {
    events.push_back({i * 0.1, 5});  // depth 5 frames -> unit 2
  }
  const auto r = search_candidates(make_stats(c, events), c,
                                   kFallbackService);
  EXPECT_TRUE(r.any_feasible);
  EXPECT_GE(r.chosen.memory_units, 2u);
  // The one-unit candidate must have been evaluated and rejected.
  ASSERT_FALSE(r.candidates.empty());
  EXPECT_EQ(r.candidates.front().memory_units, 1u);
  EXPECT_FALSE(r.candidates.front().feasible);
  EXPECT_GT(r.candidates.front().predicted_util, c.util_limit);
}

TEST(CandidateSearchTest, InfeasibleFallbackMinimizesUtilThenEnergy) {
  const auto c = small_config();
  // Cold misses cannot be absorbed by any memory size; 20/s of them keep
  // utilization above the limit everywhere. With utilization flat across
  // sizes, the fallback picks the cheapest (smallest) memory.
  std::vector<cache::IdleEvent> events;
  for (int i = 0; i < 12000; ++i) {
    events.push_back({i * 0.05, cache::kColdAccess});
  }
  const auto r = search_candidates(make_stats(c, events), c,
                                   kFallbackService);
  EXPECT_FALSE(r.any_feasible);
  EXPECT_GT(r.chosen.predicted_util, c.util_limit);
  EXPECT_EQ(r.chosen.memory_units, 1u);
}

TEST(CandidateSearchTest, InfeasibleFallbackPrefersLowerUtilization) {
  const auto c = small_config();
  // Heavy capacity-miss traffic in unit 1 plus cold misses: at >= 2 units
  // utilization drops (still above the limit), so the fallback must move to
  // the larger size even though it costs more memory energy.
  std::vector<cache::IdleEvent> events;
  for (int i = 0; i < 12000; ++i) {
    events.push_back({i * 0.05, cache::kColdAccess});
    events.push_back({i * 0.05 + 0.02, 5});  // unit 2
  }
  const auto r = search_candidates(make_stats(c, events), c,
                                   kFallbackService);
  EXPECT_FALSE(r.any_feasible);
  EXPECT_GE(r.chosen.memory_units, 2u);
}

TEST(CandidateSearchTest, NoUsableIdlenessKeepsDiskOn) {
  const auto c = small_config();
  // Cold misses spaced below the aggregation window across the whole period:
  // no idle interval survives the filter, so spinning down never pays.
  std::vector<cache::IdleEvent> events;
  for (int i = 0; i < 12000; ++i) {
    events.push_back({i * 0.05, cache::kColdAccess});
  }
  const auto r = search_candidates(make_stats(c, events), c,
                                   kFallbackService);
  EXPECT_TRUE(std::isinf(r.chosen.timeout_s));
  EXPECT_EQ(r.chosen.predicted_delay_ratio, 0.0);
}

TEST(CandidateSearchTest, ChosenIsMinimumEnergyAmongFeasible) {
  const auto c = small_config();
  std::vector<cache::IdleEvent> events;
  for (int i = 0; i < 300; ++i) {
    events.push_back({i * 2.0, 1 + (i % 8ull)});  // spans 2 units
  }
  const auto r = search_candidates(make_stats(c, events), c,
                                   kFallbackService);
  ASSERT_TRUE(r.any_feasible);
  for (const auto& cand : r.candidates) {
    if (cand.feasible) {
      EXPECT_LE(r.chosen.predicted_energy_j, cand.predicted_energy_j + 1e-9);
    }
  }
}

TEST(CandidateSearchTest, CandidatesAscendAndCoverBounds) {
  const auto c = small_config();
  std::vector<cache::IdleEvent> events;
  for (int i = 0; i < 100; ++i) {
    events.push_back({i * 5.0, 1 + (i % 20ull)});  // depths across 5 units
  }
  const auto r = search_candidates(make_stats(c, events), c,
                                   kFallbackService);
  ASSERT_GE(r.candidates.size(), 2u);
  EXPECT_EQ(r.candidates.front().memory_units, 1u);
  EXPECT_EQ(r.candidates.back().memory_units, c.max_units());
  for (std::size_t i = 1; i < r.candidates.size(); ++i) {
    EXPECT_GT(r.candidates[i].memory_units,
              r.candidates[i - 1].memory_units);
    // More memory never predicts more disk accesses (LRU inclusion).
    EXPECT_LE(r.candidates[i].disk_accesses,
              r.candidates[i - 1].disk_accesses);
  }
}

TEST(CandidateSearchTest, TimeoutRespectsDelayConstraintBound) {
  const auto c = small_config();
  // Bursty misses in unit 3 with sizeable idle gaps: the disk wants to sleep
  // but eq. 6 bounds how aggressively.
  std::vector<cache::IdleEvent> events;
  double t = 0.0;
  for (int burst = 0; burst < 60; ++burst) {
    for (int k = 0; k < 40; ++k) {
      events.push_back({t, 9});  // unit 3
      t += 0.01;
    }
    t += 9.6;  // idle gap
  }
  const auto r = search_candidates(make_stats(c, events), c,
                                   kFallbackService);
  for (const auto& cand : r.candidates) {
    EXPECT_LE(cand.predicted_delay_ratio, c.delay_limit + 1e-12)
        << "m=" << cand.memory_units;
  }
}

TEST(CandidateSearchTest, MeasuredServiceTimeOverridesFallback) {
  const auto c = small_config();
  std::vector<cache::IdleEvent> events;
  for (int i = 0; i < 6000; ++i) events.push_back({i * 0.1, 5});
  auto stats = make_stats(c, events);
  // Pretend the disk measured far faster service than the fallback: one unit
  // then satisfies the utilization limit.
  stats.actual_disk_accesses = 1000;
  stats.disk_busy_s = 1.0;  // 1 ms per access
  const auto r = search_candidates(stats, c, kFallbackService);
  EXPECT_TRUE(r.candidates.front().feasible);
}

TEST(CandidateSearchTest, MleEstimatorProducesValidAlpha) {
  auto c = small_config();
  c.alpha_estimator = AlphaEstimator::kMle;
  std::vector<cache::IdleEvent> events;
  for (int i = 0; i < 300; ++i) events.push_back({i * 2.0, 1 + (i % 8ull)});
  const auto r = search_candidates(make_stats(c, events), c,
                                   kFallbackService);
  for (const auto& cand : r.candidates) {
    if (cand.idle_intervals > 0) {
      EXPECT_GT(cand.alpha, 1.0) << "m=" << cand.memory_units;
    }
  }
}

TEST(CandidateSearchTest, ExponentialRuleSpinsImmediatelyOnLongIdleness) {
  auto c = small_config();
  c.timeout_rule = TimeoutRule::kExponential;
  // Sparse accesses: mean idle far above break-even.
  std::vector<cache::IdleEvent> events;
  for (int i = 0; i < 10; ++i) events.push_back({i * 60.0, 1});
  const auto r = search_candidates(make_stats(c, events), c,
                                   kFallbackService);
  // At 1 unit everything hits; idle = whole period -> immediate spin-down
  // (possibly raised by eq. 6, but with no disk accesses that bound is 0).
  EXPECT_EQ(r.chosen.memory_units, 1u);
  EXPECT_DOUBLE_EQ(r.chosen.timeout_s, 0.0);
}

TEST(CandidateSearchTest, ExponentialRuleNeverSpinsOnShortIdleness) {
  auto c = small_config();
  c.timeout_rule = TimeoutRule::kExponential;
  // Constant cold misses with ~5 s gaps: mean idle < t_be = 11.7 s.
  std::vector<cache::IdleEvent> events;
  for (int i = 0; i < 120; ++i) events.push_back({i * 5.0, cache::kColdAccess});
  const auto r = search_candidates(make_stats(c, events), c,
                                   kFallbackService);
  EXPECT_TRUE(std::isinf(r.chosen.timeout_s));
}

TEST(CandidateSearchTest, TwoCompetitiveRuleUsesBreakEven) {
  auto c = small_config();
  c.timeout_rule = TimeoutRule::kTwoCompetitive;
  std::vector<cache::IdleEvent> events;
  for (int i = 0; i < 20; ++i) events.push_back({i * 30.0, 1});
  const auto r = search_candidates(make_stats(c, events), c,
                                   kFallbackService);
  EXPECT_NEAR(r.chosen.timeout_s, c.disk.break_even_s(), 1e-9);
}

TEST(CandidateSearchTest, RejectsBadInputs) {
  const auto c = small_config();
  const auto stats = make_stats(c, {});
  EXPECT_THROW(search_candidates(stats, c, 0.0), CheckError);
  auto bad = c;
  bad.period_s = 0.0;
  EXPECT_THROW(search_candidates(stats, bad, kFallbackService), CheckError);
}

}  // namespace
}  // namespace jpm::core
