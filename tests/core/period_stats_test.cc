#include "jpm/core/period_stats.h"

#include <gtest/gtest.h>

namespace jpm::core {
namespace {

TEST(PeriodStatsCollectorTest, CollectsAccesses) {
  PeriodStatsCollector c(4, 16, 0.0);
  c.on_access(1.0, cache::kColdAccess);
  c.on_access(2.0, 5);
  c.on_disk_access(0.01);
  const auto s = c.harvest(10.0);
  EXPECT_EQ(s.cache_accesses, 2u);
  EXPECT_EQ(s.cold_accesses, 1u);
  EXPECT_EQ(s.actual_disk_accesses, 1u);
  EXPECT_DOUBLE_EQ(s.disk_busy_s, 0.01);
  EXPECT_DOUBLE_EQ(s.start_s, 0.0);
  EXPECT_DOUBLE_EQ(s.end_s, 10.0);
  ASSERT_EQ(s.events.size(), 2u);
  EXPECT_EQ(s.events[1].depth_frames, 5u);
  EXPECT_EQ(s.curve.total_accesses(), 2u);
}

TEST(PeriodStatsCollectorTest, HarvestRestartsCollection) {
  PeriodStatsCollector c(4, 16, 0.0);
  c.on_access(1.0, 3);
  c.harvest(5.0);
  c.on_access(6.0, 7);
  const auto s = c.harvest(10.0);
  EXPECT_EQ(s.cache_accesses, 1u);
  EXPECT_DOUBLE_EQ(s.start_s, 5.0);
  EXPECT_EQ(s.events[0].depth_frames, 7u);
}

TEST(PeriodStatsTest, MeanServiceHandlesZeroAccesses) {
  PeriodStats s;
  EXPECT_EQ(s.mean_service_s(), 0.0);
  s.actual_disk_accesses = 4;
  s.disk_busy_s = 0.08;
  EXPECT_DOUBLE_EQ(s.mean_service_s(), 0.02);
}

TEST(PeriodStatsCollectorTest, EmptyPeriodHarvests) {
  PeriodStatsCollector c(4, 16, 0.0);
  const auto s = c.harvest(10.0);
  EXPECT_EQ(s.cache_accesses, 0u);
  EXPECT_TRUE(s.events.empty());
  EXPECT_DOUBLE_EQ(s.duration_s(), 10.0);
}

}  // namespace
}  // namespace jpm::core
