// Reproduces paper Table IV: the joint method's sensitivity to the period
// length T (5/10/20/30 minutes; 16 GB data set at 100 MB/s). The paper finds
// energy and long-latency counts vary only slightly because the extended LRU
// list is never reset between periods. Workload, engine, and the method pair
// come from scenarios/table4_period.json; the per-row period overrides stay
// here because they are the experiment.
#include <algorithm>

#include "bench_common.h"

using namespace jpm;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  const auto sc = bench::load_scenario("table4_period");
  const auto& workload = sc.workloads.front().workload;
  const auto& joint_spec = sc.roster[0];
  const auto& always_on_spec = sc.roster[1];
  std::cout << spec::expand_header(sc) << "\n";

  auto base_engine = sc.engine;
  base_engine.joint.period_s = 1800.0;  // warm-up stays period-aligned below
  const auto baseline =
      sim::run_simulation(workload, always_on_spec, base_engine);

  // Energy compared as average power: warm-up scales with the period (the
  // joint method starts at full memory, and that startup posture must not
  // leak into the measured window for long periods), so the measured
  // durations differ across rows.
  auto power = [](const sim::RunMetrics& m) {
    return m.total_j() / m.duration_s;
  };
  auto disk_power = [](const sim::RunMetrics& m) {
    return m.disk_energy.total_j() / m.duration_s;
  };
  auto mem_power = [](const sim::RunMetrics& m) {
    return m.mem_energy.total_j() / m.duration_s;
  };

  Table t({"period", "total energy %", "disk energy %", "memory energy %",
           "long-latency req/s"});
  for (double minutes : {5.0, 10.0, 20.0, 30.0}) {
    auto engine = sc.engine;
    engine.joint.period_s = minutes * 60.0;
    // Two full periods of warm-up so the joint method's full-memory startup
    // posture never leaks into the measured window; the scenario's 14400 s
    // duration leaves a measured window even under JPM_BENCH_FAST.
    engine.warm_up_s = std::max(sc.engine.warm_up_s, 2.0 * engine.joint.period_s);
    const auto m = sim::run_simulation(workload, joint_spec, engine);
    t.row()
        .cell(bench::num(minutes, 0) + " min")
        .cell(bench::pct(power(m) / power(baseline)))
        .cell(bench::pct(disk_power(m) / disk_power(baseline)))
        .cell(bench::pct(mem_power(m) / mem_power(baseline)))
        .cell(bench::num(m.long_latency_per_s()));
    bench::progress_line("T=" + bench::num(minutes, 0) + "min done");
  }
  std::cout << t.to_string();
  return 0;
}
