// Reproduces paper Table V: the joint method's sensitivity to the memory
// bank size — the granularity at which memory is resized — for 16, 64, 256,
// and 1024 MB banks (16 GB data set, 100 MB/s). The paper finds total energy
// and long-latency counts nearly constant, with slightly more memory energy
// and slightly less disk energy at coarser banks (more memory stays on, the
// disk sleeps more). Workload, engine, and the method pair come from
// scenarios/table5_bank.json; the bank-size overrides stay here.
#include "bench_common.h"

using namespace jpm;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  const auto sc = bench::load_scenario("table5_bank");
  const auto& workload = sc.workloads.front().workload;
  std::cout << spec::expand_header(sc) << "\n";

  const auto baseline =
      sim::run_simulation(workload, sc.roster[1], sc.engine);

  Table t({"bank size", "total energy %", "disk energy %", "memory energy %",
           "long-latency req/s"});
  for (std::uint64_t mb : {16, 64, 256, 1024}) {
    auto engine = sc.engine;
    engine.joint.unit_bytes = mib(mb);
    engine.joint.mem.bank_bytes = mib(mb);
    const auto m = sim::run_simulation(workload, sc.roster[0], engine);
    const auto n = sim::normalize_energy(m, baseline);
    t.row()
        .cell(std::to_string(mb) + " MB")
        .cell(bench::pct(n.total))
        .cell(bench::pct(n.disk))
        .cell(bench::pct(n.memory))
        .cell(bench::num(m.long_latency_per_s()));
    bench::progress_line("bank=" + std::to_string(mb) + "MB done");
  }
  std::cout << t.to_string();
  return 0;
}
