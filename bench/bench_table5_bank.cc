// Reproduces paper Table V: the joint method's sensitivity to the memory
// bank size — the granularity at which memory is resized — for 16, 64, 256,
// and 1024 MB banks (16 GB data set, 100 MB/s). The paper finds total energy
// and long-latency counts nearly constant, with slightly more memory energy
// and slightly less disk energy at coarser banks (more memory stays on, the
// disk sleeps more).
#include "bench_common.h"

using namespace jpm;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  const auto workload = bench::paper_workload(gib(16), 100e6, 0.1);
  std::cout << "Table V — joint method vs bank (resize-unit) size "
               "(16 GB, 100 MB/s)\n";

  auto base_engine = bench::paper_engine();
  const auto baseline =
      sim::run_simulation(workload, sim::always_on_policy(), base_engine);

  Table t({"bank size", "total energy %", "disk energy %", "memory energy %",
           "long-latency req/s"});
  for (std::uint64_t mb : {16, 64, 256, 1024}) {
    auto engine = bench::paper_engine();
    engine.joint.unit_bytes = mib(mb);
    engine.joint.mem.bank_bytes = mib(mb);
    const auto m = sim::run_simulation(workload, sim::joint_policy(), engine);
    const auto n = sim::normalize_energy(m, baseline);
    t.row()
        .cell(std::to_string(mb) + " MB")
        .cell(bench::pct(n.total))
        .cell(bench::pct(n.disk))
        .cell(bench::pct(n.memory))
        .cell(bench::num(m.long_latency_per_s()));
    bench::progress_line("bank=" + std::to_string(mb) + "MB done");
  }
  std::cout << t.to_string();
  return 0;
}
