// Ablation study of the joint method's design choices (DESIGN.md):
//  1. performance constraints on/off — without eq. 6 and the utilization
//     limit the search chases pure energy and degrades latency;
//  2. the idle-aggregation window w (Table II uses 0.1 s) — too small floods
//     the Pareto fit with unusable micro-gaps, too large discards real
//     opportunities;
//  3. the delayed-request limit D — tightening it forces longer timeouts and
//     trades energy for latency.
// Workload (16 GB data set at 25 MB/s, popularity 0.1 — busy enough that
// the constraints bind, idle enough that spin-down matters), the paper
// engine, and the method pair come from scenarios/ablation_joint.json; each
// section then overrides the knob under study.
#include "bench_common.h"

using namespace jpm;

namespace {

void report_row(Table& t, const std::string& label,
                const sim::RunMetrics& m, const sim::RunMetrics& base) {
  const auto n = sim::normalize_energy(m, base);
  t.row()
      .cell(label)
      .cell(bench::pct(n.total))
      .cell(bench::pct(m.utilization()))
      .cell(bench::num(m.long_latency_per_s()))
      .cell(bench::ms(m.mean_latency_s()));
}

}  // namespace

int main(int argc, char** argv) {
  bench::init(argc, argv);
  const auto sc = bench::load_scenario("ablation_joint");
  const auto& workload = sc.workloads.front().workload;
  const auto& joint_spec = sc.roster[0];
  const auto baseline =
      sim::run_simulation(workload, sc.roster[1], sc.engine);
  std::cout << spec::expand_header(sc) << "\n";

  {
    Table t({"constraints", "total energy %", "utilization",
             "long-latency req/s", "mean latency ms"});
    auto engine = sc.engine;
    report_row(t, "U=10%, D=0.001 (paper)",
               sim::run_simulation(workload, joint_spec, engine),
               baseline);
    engine.joint.util_limit = 1e9;
    engine.joint.delay_limit = 1e9;
    report_row(t, "constraints disabled",
               sim::run_simulation(workload, joint_spec, engine),
               baseline);
    std::cout << "\n== (1) performance constraints ==\n" << t.to_string();
  }

  {
    Table t({"window w", "total energy %", "utilization",
             "long-latency req/s", "mean latency ms"});
    for (double w : {0.01, 0.1, 1.0, 10.0}) {
      auto engine = sc.engine;
      engine.joint.window_s = w;
      report_row(t, bench::num(w, 2) + " s",
                 sim::run_simulation(workload, joint_spec, engine),
                 baseline);
      bench::progress_line("w=" + bench::num(w, 2) + "s done");
    }
    std::cout << "\n== (2) idle-aggregation window ==\n" << t.to_string();
  }

  {
    Table t({"delay limit D", "total energy %", "utilization",
             "long-latency req/s", "mean latency ms"});
    for (double d_lim : {1e-4, 1e-3, 1e-2}) {
      auto engine = sc.engine;
      engine.joint.delay_limit = d_lim;
      report_row(t, bench::num(d_lim, 4),
                 sim::run_simulation(workload, joint_spec, engine),
                 baseline);
      bench::progress_line("D=" + bench::num(d_lim, 4) + " done");
    }
    std::cout << "\n== (3) delayed-request limit ==\n" << t.to_string();
  }

  {
    Table t({"timeout rule", "total energy %", "utilization",
             "long-latency req/s", "mean latency ms"});
    const std::pair<const char*, core::TimeoutRule> rules[] = {
        {"Pareto eq.5 (paper)", core::TimeoutRule::kPareto},
        {"exponential (memoryless)", core::TimeoutRule::kExponential},
        {"2-competitive t_be", core::TimeoutRule::kTwoCompetitive},
    };
    for (const auto& [label, rule] : rules) {
      auto engine = sc.engine;
      engine.joint.timeout_rule = rule;
      report_row(t, label,
                 sim::run_simulation(workload, joint_spec, engine),
                 baseline);
      bench::progress_line(std::string(label) + " done");
    }
    std::cout << "\n== (4) timeout derivation rule ==\n" << t.to_string();
  }

  {
    Table t({"alpha estimator", "total energy %", "utilization",
             "long-latency req/s", "mean latency ms"});
    const std::pair<const char*, core::AlphaEstimator> estimators[] = {
        {"moment (paper)", core::AlphaEstimator::kMoment},
        {"maximum likelihood", core::AlphaEstimator::kMle},
    };
    for (const auto& [label, est] : estimators) {
      auto engine = sc.engine;
      engine.joint.alpha_estimator = est;
      report_row(t, label,
                 sim::run_simulation(workload, joint_spec, engine),
                 baseline);
      bench::progress_line(std::string(label) + " done");
    }
    std::cout << "\n== (5) Pareto shape estimator ==\n" << t.to_string();
  }
  return 0;
}
