// Reproduces paper Fig. 5: cumulative probability of two Pareto idle-length
// distributions — one short-tailed (large alpha, small beta), one heavy-
// tailed (small alpha, larger beta) — and the timeout guidance each implies:
// the energy-optimal timeout t_o = alpha * t_be (eq. 5) shrinks as the tail
// gets heavier, while the performance-constrained lower bound (eq. 6) grows.
// The disk's timeout parameters come from scenarios/fig5_pareto.json.
#include "bench_common.h"
#include "jpm/pareto/pareto.h"
#include "jpm/pareto/timeout_math.h"

using namespace jpm;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  const auto sc = bench::load_scenario("fig5_pareto");
  // alpha1 > alpha2, beta1 < beta2: the paper's two illustrative curves.
  const pareto::ParetoDistribution d1(2.5, 0.5);
  const pareto::ParetoDistribution d2(1.2, 2.0);
  const pareto::DiskTimeoutParams disk =
      sc.engine.joint.disk.timeout_params();

  std::cout << spec::expand_header(sc) << "\n";
  Table t({"idle length (s)", "CDF (a=2.5, b=0.5)", "CDF (a=1.2, b=2.0)"});
  for (double l : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0}) {
    t.row()
        .cell(bench::num(l, 1))
        .cell(bench::num(d1.cdf(l), 4))
        .cell(bench::num(d2.cdf(l), 4));
  }
  std::cout << t.to_string();

  Table s({"distribution", "mean idle (s)", "optimal timeout a*t_be (s)",
           "expected power at optimum (W)", "power if never off (W)"});
  for (const auto* d : {&d1, &d2}) {
    const double t_opt = pareto::optimal_timeout(*d, disk);
    s.row()
        .cell("alpha=" + bench::num(d->alpha(), 2) +
              " beta=" + bench::num(d->beta(), 2))
        .cell(bench::num(d->mean(), 2))
        .cell(bench::num(t_opt, 1))
        .cell(bench::num(pareto::expected_power(*d, 60, 600.0, t_opt, disk),
                         2))
        .cell(bench::num(disk.static_power_w, 2));
  }
  std::cout << "\n== timeout guidance (60 idle intervals per 10-min period) =="
            << "\n"
            << s.to_string();
  return 0;
}
