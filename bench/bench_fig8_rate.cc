// Reproduces paper Fig. 8(a)-(b): energy and long-latency requests as the
// data rate varies from 5 to 200 MB/s on a 16 GB data set (popularity 0.1).
//
// Expected shapes (paper Section V-B.2): methods with memory >= 32 GB hold
// constant, expensive energy at every rate; 2TFM/ADFM-8GB match the joint
// method at low rates but fall apart (energy and >100 long-latency
// requests/s) at 150-200 MB/s; the joint method tracks the minimum and keeps
// long-latency requests below ~3/s throughout.
#include "bench_common.h"

using namespace jpm;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  const auto engine = bench::paper_engine();
  const auto roster = sim::paper_policies();

  std::vector<std::pair<std::string, workload::SynthesizerConfig>> workloads;
  for (int mbps : {5, 50, 100, 150, 200}) {
    workloads.emplace_back(std::to_string(mbps) + "MB/s",
                           bench::paper_workload(gib(16), mbps * 1e6, 0.1));
  }

  std::cout << "Fig. 8(a,b) — data-rate sweep (16 GB data set, popularity "
               "0.1)\n";
  const auto points =
      sim::run_sweep(workloads, roster, engine, bench::progress_line);

  bench::print_metric_table(
      "(a) total energy, % of always-on", points,
      [](const sim::RunOutcome& o) { return bench::pct(o.normalized.total); });
  bench::print_metric_table(
      "(b) requests with >0.5 s latency, per second", points,
      [](const sim::RunOutcome& o) {
        return bench::num(o.metrics.long_latency_per_s());
      });
  return 0;
}
