// Reproduces paper Fig. 8(a)-(b): energy and long-latency requests as the
// data rate varies from 5 to 200 MB/s on a 16 GB data set (popularity 0.1).
// The experiment is declared in scenarios/fig8_rate.json.
//
// Expected shapes (paper Section V-B.2): methods with memory >= 32 GB hold
// constant, expensive energy at every rate; 2TFM/ADFM-8GB match the joint
// method at low rates but fall apart (energy and >100 long-latency
// requests/s) at 150-200 MB/s; the joint method tracks the minimum and keeps
// long-latency requests below ~3/s throughout.
#include "bench_common.h"

using namespace jpm;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  const auto sc = bench::load_scenario("fig8_rate");
  spec::RunOptions options;
  options.progress = bench::progress_line;
  spec::run_scenario(sc, options);
  return 0;
}
