// Extension (paper Section II-A / VI): DRPM-style multi-speed disk versus
// the spin-down disk, both with fixed memory and under joint memory
// management. The paper argues spin-down policies suffer when idle intervals
// are short (frequent accesses) because of the spin-up cliff; DRPM trades a
// power floor for the absence of that cliff. The rate sweep, the five-method
// roster, and the engine come from scenarios/ext_drpm.json.
//
// Expected shape: at low rates (long idleness) the spin-down disk wins on
// energy; as the rate grows and idle intervals shrink below the break-even
// time, the multi-speed disk closes the gap and dominates the latency
// columns throughout.
#include "bench_common.h"

using namespace jpm;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  const auto sc = bench::load_scenario("ext_drpm");

  std::cout << spec::expand_header(sc) << "\n";
  Table t({"rate", "method", "total energy %", "disk energy (kJ)",
           "mean latency ms", "long-latency req/s", "shifts/spin-downs"});
  for (const auto& point : sc.workloads) {
    std::vector<std::pair<std::string, workload::SynthesizerConfig>> wl{
        {point.label, point.workload}};
    const auto points = sim::run_sweep(wl, sc.roster, sc.engine,
                                       bench::progress_line);
    for (const auto& o : points[0].outcomes) {
      t.row()
          .cell(point.label)
          .cell(o.spec.name)
          .cell(bench::pct(o.normalized.total))
          .cell(bench::num(o.metrics.disk_energy.total_j() / 1e3, 1))
          .cell(bench::ms(o.metrics.mean_latency_s()))
          .cell(bench::num(o.metrics.long_latency_per_s()))
          .cell(o.metrics.disk_shutdowns);
    }
  }
  std::cout << t.to_string();
  return 0;
}
