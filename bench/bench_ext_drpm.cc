// Extension (paper Section II-A / VI): DRPM-style multi-speed disk versus
// the spin-down disk, both with fixed memory and under joint memory
// management. The paper argues spin-down policies suffer when idle intervals
// are short (frequent accesses) because of the spin-up cliff; DRPM trades a
// power floor for the absence of that cliff.
//
// Expected shape: at low rates (long idleness) the spin-down disk wins on
// energy; as the rate grows and idle intervals shrink below the break-even
// time, the multi-speed disk closes the gap and dominates the latency
// columns throughout.
#include "bench_common.h"

using namespace jpm;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  const auto engine = bench::paper_engine();
  const std::vector<sim::PolicySpec> roster{
      sim::joint_policy(),
      sim::drpm_joint_policy(),
      sim::fixed_policy(sim::DiskPolicyKind::kTwoCompetitive, gib(8)),
      sim::drpm_fixed_policy(gib(8)),
      sim::always_on_policy(),
  };

  std::cout << "Multi-speed (DRPM) disk vs spin-down (16 GB data set, "
               "popularity 0.1)\n";
  Table t({"rate", "method", "total energy %", "disk energy (kJ)",
           "mean latency ms", "long-latency req/s", "shifts/spin-downs"});
  for (int mbps : {5, 25, 100}) {
    std::vector<std::pair<std::string, workload::SynthesizerConfig>> wl{
        {std::to_string(mbps) + "MB/s",
         bench::paper_workload(gib(16), mbps * 1e6, 0.1)}};
    const auto points = sim::run_sweep(wl, roster, engine,
                                       bench::progress_line);
    for (const auto& o : points[0].outcomes) {
      t.row()
          .cell(wl[0].first)
          .cell(o.spec.name)
          .cell(bench::pct(o.normalized.total))
          .cell(bench::num(o.metrics.disk_energy.total_j() / 1e3, 1))
          .cell(bench::ms(o.metrics.mean_latency_s()))
          .cell(bench::num(o.metrics.long_latency_per_s()))
          .cell(o.metrics.disk_shutdowns);
    }
  }
  std::cout << t.to_string();
  return 0;
}
