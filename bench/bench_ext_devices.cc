// Extension: the joint method across device classes. The paper targets a
// 2005 server IDE drive (t_be = 11.7 s, 10 s spin-up); this harness re-runs
// the same workload against a 2.5" laptop drive and an SSD-like device to
// locate where joint memory+disk management still matters:
//   * server IDE — the paper's regime: both knobs matter;
//   * laptop — cheap transitions: spin-down nearly always wins, the joint
//     method's timeout converges to small values;
//   * SSD-like — static power ~0: there is nothing left for the disk knob
//     to save, and the method's value collapses onto memory sizing (the
//     calibration note's "spin-down largely obsolete" made quantitative).
#include "bench_common.h"

using namespace jpm;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  const auto workload = bench::paper_workload(gib(16), 25e6, 0.1);
  std::cout << "Joint power management across device classes "
               "(16 GB data set, 25 MB/s)\n";

  Table t({"device", "method", "total energy (kJ)", "disk energy (kJ)",
           "memory energy (kJ)", "t_be (s)", "spin-downs",
           "long-latency req/s"});
  const std::pair<const char*, disk::DiskParams> devices[] = {
      {"server IDE", disk::presets::server_ide()},
      {"laptop 2.5\"", disk::presets::laptop_25()},
      {"SSD-like", disk::presets::ssd_like()},
  };
  for (const auto& [label, params] : devices) {
    auto engine = bench::paper_engine();
    engine.joint.disk = params;
    for (const auto& spec :
         {sim::joint_policy(),
          sim::fixed_policy(sim::DiskPolicyKind::kTwoCompetitive, gib(16)),
          sim::always_on_policy()}) {
      const auto m = sim::run_simulation(workload, spec, engine);
      t.row()
          .cell(label)
          .cell(spec.name)
          .cell(bench::num(m.total_j() / 1e3, 1))
          .cell(bench::num(m.disk_energy.total_j() / 1e3, 2))
          .cell(bench::num(m.mem_energy.total_j() / 1e3, 1))
          .cell(bench::num(params.break_even_s(), 1))
          .cell(m.disk_shutdowns)
          .cell(bench::num(m.long_latency_per_s()));
      bench::progress_line(std::string(label) + " " + spec.name + " done");
    }
  }
  std::cout << t.to_string();
  std::cout << "\nNote: the 2T baseline uses each device's own break-even "
               "time as its timeout.\n";
  return 0;
}
