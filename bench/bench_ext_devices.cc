// Extension: the joint method across device classes. The paper targets a
// 2005 server IDE drive (t_be = 11.7 s, 10 s spin-up); this harness re-runs
// the same workload against a 2.5" laptop drive and an SSD-like device to
// locate where joint memory+disk management still matters:
//   * server IDE — the paper's regime: both knobs matter;
//   * laptop — cheap transitions: spin-down nearly always wins, the joint
//     method's timeout converges to small values;
//   * SSD-like — static power ~0: there is nothing left for the disk knob
//     to save, and the method's value collapses onto memory sizing (the
//     calibration note's "spin-down largely obsolete" made quantitative).
// Workload, engine, and the three-method roster come from
// scenarios/ext_devices.json; the device presets are the experiment.
#include "bench_common.h"

using namespace jpm;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  const auto sc = bench::load_scenario("ext_devices");
  const auto& workload = sc.workloads.front().workload;
  std::cout << spec::expand_header(sc) << "\n";

  Table t({"device", "method", "total energy (kJ)", "disk energy (kJ)",
           "memory energy (kJ)", "t_be (s)", "spin-downs",
           "long-latency req/s"});
  const std::pair<const char*, disk::DiskParams> devices[] = {
      {"server IDE", disk::presets::server_ide()},
      {"laptop 2.5\"", disk::presets::laptop_25()},
      {"SSD-like", disk::presets::ssd_like()},
  };
  for (const auto& [label, params] : devices) {
    auto engine = sc.engine;
    engine.joint.disk = params;
    for (const auto& policy : sc.roster) {
      const auto m = sim::run_simulation(workload, policy, engine);
      t.row()
          .cell(label)
          .cell(policy.name)
          .cell(bench::num(m.total_j() / 1e3, 1))
          .cell(bench::num(m.disk_energy.total_j() / 1e3, 2))
          .cell(bench::num(m.mem_energy.total_j() / 1e3, 1))
          .cell(bench::num(params.break_even_s(), 1))
          .cell(m.disk_shutdowns)
          .cell(bench::num(m.long_latency_per_s()));
      bench::progress_line(std::string(label) + " " + policy.name + " done");
    }
  }
  std::cout << t.to_string();
  std::cout << "\nNote: the 2T baseline uses each device's own break-even "
               "time as its timeout.\n";
  return 0;
}
