// Google-benchmark microbenches for the simulator's hot kernels: page-table
// probes (util::FlatMap vs the std::unordered_map it replaced), LRU cache
// operations, the Fenwick stack-distance tracker, the idle-interval sweep,
// Pareto fitting, trace synthesis throughput, single-policy engine replay —
// the perf baseline for the sweep hot loop — the TaskPool scheduler under
// uniform and straggler task mixes (static vs steal), JPMC trace-file
// encode/decode and file-backed replay (jpm::tracefile), and scenario-file
// parse/serialize throughput for the jpm::spec layer.
//
// Beyond the stock google-benchmark flags, the custom main() accepts
//   --snapshot=<file>   write a machine-readable BENCH_micro.json
//   --compare=<file>    exit non-zero if any benchmark's items/s fell below
//                       baseline/tolerance (the CI perf-smoke gate)
//   --tolerance=<x>     slack factor for --compare (default 2.0)
#include <benchmark/benchmark.h>

#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "jpm/cache/idle_sweep.h"
#include "jpm/cache/lru_cache.h"
#include "jpm/cache/stack_distance.h"
#include "jpm/util/arena.h"
#include "jpm/util/flat_map.h"
#include "jpm/util/json.h"
#include "jpm/pareto/pareto.h"
#include "jpm/sim/engine.h"
#include "jpm/sim/policies.h"
#include "jpm/spec/run.h"
#include "jpm/spec/spec.h"
#include "jpm/sim/file_replay.h"
#include "jpm/telemetry/registry.h"
#include "jpm/telemetry/telemetry.h"
#include "jpm/tracefile/reader.h"
#include "jpm/tracefile/writer.h"
#include "jpm/util/parallel.h"
#include "jpm/util/rng.h"
#include "jpm/workload/synthesizer.h"
#include "jpm/workload/trace.h"

namespace jpm {
namespace {

// Distinct keys (odd multiplier is injective mod 2^64), inserted in
// generation order but *visited* in an unrelated shuffled order. The
// decorrelation matters: visiting in insertion order would let a node-based
// map serve its nodes from the hardware prefetcher (they were allocated
// sequentially), which no real page-access pattern provides.
std::vector<std::uint64_t> map_bench_keys(std::size_t n) {
  std::vector<std::uint64_t> keys(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = i * 0x2545f4914f6cdd1dull + 1;
  }
  return keys;
}

std::vector<std::uint32_t> map_bench_visit_order(std::size_t n) {
  std::vector<std::uint32_t> visit(n);
  for (std::size_t i = 0; i < n; ++i) visit[i] = static_cast<std::uint32_t>(i);
  Rng rng(7);
  for (std::size_t i = n; i > 1; --i) {
    std::swap(visit[i - 1], visit[rng.uniform_index(i)]);
  }
  return visit;
}

// Point lookups at steady state: every probe hits. This is the page-table
// operation the engine pays once per trace event.
void BM_FlatMapLookup(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto keys = map_bench_keys(n);
  const auto visit = map_bench_visit_order(n);
  util::FlatMap<std::uint32_t> map;
  for (std::size_t i = 0; i < n; ++i) {
    *map.find_or_insert(keys[i]) = static_cast<std::uint32_t>(i);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.find(keys[visit[i]]));
    if (++i == n) i = 0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlatMapLookup)->Arg(1 << 20);

void BM_UnorderedMapLookup(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto keys = map_bench_keys(n);
  const auto visit = map_bench_visit_order(n);
  std::unordered_map<std::uint64_t, std::uint32_t> map;
  map.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    map[keys[i]] = static_cast<std::uint32_t>(i);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.find(keys[visit[i]]));
    if (++i == n) i = 0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UnorderedMapLookup)->Arg(1 << 20);

// Insert+erase churn at full occupancy: a sliding window over the key
// universe, the pattern a standalone (non-joint) cache's table sees when
// every miss inserts a page and evicts another.
void BM_FlatMapChurn(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::FlatMap<std::uint32_t> map;
  map.reserve(n);
  std::uint64_t head = 0;
  for (; head < n; ++head) {
    *map.find_or_insert(head * 0x2545f4914f6cdd1dull + 1) = 0;
  }
  std::uint64_t tail = 0;
  for (auto _ : state) {
    *map.find_or_insert(head * 0x2545f4914f6cdd1dull + 1) = 0;
    map.erase(tail * 0x2545f4914f6cdd1dull + 1);
    ++head;
    ++tail;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlatMapChurn)->Arg(1 << 20);

void BM_UnorderedMapChurn(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::unordered_map<std::uint64_t, std::uint32_t> map;
  map.reserve(n);
  std::uint64_t head = 0;
  for (; head < n; ++head) {
    map[head * 0x2545f4914f6cdd1dull + 1] = 0;
  }
  std::uint64_t tail = 0;
  for (auto _ : state) {
    map[head * 0x2545f4914f6cdd1dull + 1] = 0;
    map.erase(tail * 0x2545f4914f6cdd1dull + 1);
    ++head;
    ++tail;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UnorderedMapChurn)->Arg(1 << 20);

// LRU single-operation baselines bracketing BM_LruCacheAccess's mix: a pure
// resident-page hit (one probe + list splice) and a pure miss at capacity
// (probe + evict + insert).
void BM_LruLookupHit(benchmark::State& state) {
  cache::LruCache cache(cache::LruCacheOptions{1 << 16, 64, 1 << 14});
  for (std::uint64_t p = 0; p < (1 << 14); ++p) cache.insert(p);
  Rng rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(rng.uniform_index(1 << 14)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruLookupHit);

void BM_LruInsertEvict(benchmark::State& state) {
  cache::LruCache cache(cache::LruCacheOptions{1 << 16, 64, 1 << 14});
  std::uint64_t next = 0;
  for (; next < (1 << 14); ++next) cache.insert(next);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.insert(next++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruInsertEvict);

void BM_LruCacheAccess(benchmark::State& state) {
  cache::LruCache cache(cache::LruCacheOptions{1 << 16, 64, 1 << 14});
  Rng rng(1);
  for (auto _ : state) {
    const std::uint64_t page = rng.uniform_index(1 << 15);
    if (!cache.lookup(page)) cache.insert(page);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruCacheAccess);

// Same access mix with the frame-node array placed on a bump arena (how the
// engine now builds its cache) instead of the global heap — isolates what
// arena placement is worth outside the full replay pipeline.
void BM_LruCacheAccessArena(benchmark::State& state) {
  util::Arena arena;
  cache::LruCacheOptions opts{1 << 16, 64, 1 << 14};
  opts.arena = &arena;
  cache::LruCache cache(opts);
  Rng rng(1);
  for (auto _ : state) {
    const std::uint64_t page = rng.uniform_index(1 << 15);
    if (!cache.lookup(page)) cache.insert(page);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruCacheAccessArena);

void BM_StackDistance(benchmark::State& state) {
  cache::StackDistanceTracker tracker;
  Rng rng(2);
  const std::uint64_t span = state.range(0);
  // Streaming harness mirroring the engine's batch replay: page ids are
  // drawn a fixed distance ahead and their table-probe / tree lines hinted
  // in, so what's measured includes the miss overlap a real replay gets
  // rather than one fully serialized probe chain per event. The access
  // sequence is identical to the unpipelined form — same draws, same order.
  constexpr std::size_t kAhead = 8;
  std::uint64_t ring[kAhead];
  for (std::size_t i = 0; i < kAhead; ++i) ring[i] = rng.uniform_index(span);
  std::size_t head = 0;
  for (auto _ : state) {
    const std::uint64_t page = ring[head];
    const std::uint64_t incoming = rng.uniform_index(span);
    ring[head] = incoming;
    head = (head + 1) & (kAhead - 1);
    tracker.prefetch_page(incoming, kAhead);
    benchmark::DoNotOptimize(tracker.access(page));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StackDistance)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_IdleSweep(benchmark::State& state) {
  Rng rng(3);
  std::vector<cache::IdleEvent> events;
  double t = 0.0;
  for (int i = 0; i < 100000; ++i) {
    t += rng.exponential(0.006);
    events.push_back({t, 1 + rng.uniform_index(8192 * 64)});
  }
  std::vector<std::uint64_t> candidates;
  for (std::uint64_t u = 1; u <= 8192; u += 32) candidates.push_back(u);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache::sweep_idle_intervals(
        events, 0.0, t + 1.0, 64, 0.1, candidates));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(events.size()));
}
BENCHMARK(BM_IdleSweep);

void BM_ParetoFitAndTimeout(benchmark::State& state) {
  Rng rng(4);
  for (auto _ : state) {
    const double mean = 0.1 + rng.uniform() * 100.0;
    const auto d = pareto::fit_from_mean(mean, 0.1);
    benchmark::DoNotOptimize(d.alpha() * 11.7);
  }
  // One fit+timeout evaluation per iteration; without this the snapshot
  // records items_per_second: 0 and the CI compare gate skips the entry.
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ParetoFitAndTimeout);

void BM_TraceSynthesis(benchmark::State& state) {
  workload::SynthesizerConfig cfg;
  cfg.dataset_bytes = gib(1);
  cfg.byte_rate = 50e6;
  cfg.duration_s = 60.0;
  cfg.page_bytes = 256 * kKiB;
  cfg.seed = 5;
  std::uint64_t events = 0;
  for (auto _ : state) {
    workload::TraceGenerator gen(cfg);
    std::uint64_t n = 0;
    while (gen.next()) ++n;
    benchmark::DoNotOptimize(n);
    events += n;
  }
  // events/s: the synthesis throughput run_sweep pays once per sweep point.
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_TraceSynthesis);

// Materializes a trace once and replays it through a single policy's full
// pipeline per iteration — exactly one unit of run_sweep's fan-out, and the
// perf baseline for the engine hot loop (items = trace events). Arg 0 picks
// the policy (0 = fixed FM/2C, 1 = joint), arg 1 the replay batch size:
// batch 1 is the classic per-event loop, 64/256 exercise the batched
// resolve+prefetch path. Results are bit-identical across batch sizes; only
// throughput moves.
void BM_EngineReplay(benchmark::State& state) {
  workload::SynthesizerConfig cfg;
  cfg.dataset_bytes = mib(256);
  cfg.byte_rate = 20e6;
  cfg.duration_s = 600.0;
  cfg.page_bytes = 64 * kKiB;
  cfg.seed = 6;
  const auto trace = workload::synthesize_trace(cfg);

  sim::EngineConfig e;
  e.joint.physical_bytes = gib(1);
  e.joint.unit_bytes = 16 * kMiB;
  e.joint.page_bytes = 64 * kKiB;
  e.joint.period_s = 300.0;
  e.batch_size = static_cast<std::uint32_t>(state.range(1));
  const auto policy = state.range(0) == 0
                          ? sim::fixed_policy(
                                sim::DiskPolicyKind::kTwoCompetitive, mib(128))
                          : sim::joint_policy();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_simulation(trace, policy, e));
  }
  state.SetItemsProcessed(
      state.iterations() * static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_EngineReplay)
    ->Args({0, 1})
    ->Args({0, 64})
    ->Args({0, 256})
    ->Args({1, 1})
    ->Args({1, 64})
    ->Args({1, 256});

// Work whose cost the optimizer cannot collapse: a multiply-add chain with a
// loop-carried dependence, `rounds` deep.
std::uint64_t spin_work(std::uint64_t x, std::uint32_t rounds) {
  for (std::uint32_t r = 0; r < rounds; ++r) {
    x = x * 0x9e3779b97f4a7c15ull + r;
  }
  return x;
}

// The TaskPool scheduler baselines behind every sweep fan-out: 2048 tasks on
// 4 workers, uniform cost vs a straggler mix (every 4th task is 40x heavier
// — the adversarial shape for static striping, where all heavy tasks land in
// one worker's stripe; total work is the same in both shapes). items/s =
// tasks/s. On a 4+ core machine steal ~= static on the uniform mix and
// >= 1.3x static on the straggler mix (the stolen back-halves spread the
// heavy stripe); on fewer cores the gap narrows toward scheduler overhead.
void BM_SchedulerFanOut(benchmark::State& state) {
  const bool straggler = state.range(0) != 0;
  const auto mode = state.range(1) == 0 ? util::SchedMode::kStatic
                                        : util::SchedMode::kSteal;
  const unsigned workers = 4;
  const std::size_t n = 2048;
  std::vector<std::uint64_t> out(n);
  for (auto _ : state) {
    util::TaskPool::run(n, workers, mode, [&](std::size_t i) {
      const std::uint32_t rounds =
          straggler ? (i % workers == 0 ? 2000 : 50) : 538;
      out[i] = spin_work(i, rounds);
    });
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SchedulerFanOut)
    ->ArgNames({"straggler", "steal"})
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({1, 1})
    ->UseRealTime();

// The spec layer's cost of admission: parsing a checked-in scenario file
// (the 21 scenarios are all within ~4x of micro.json's size) and emitting
// its canonical serialization. bytes/s is what `jpm validate scenarios/*`
// and every bench startup pay.
std::string micro_scenario_text() {
  std::ifstream in(spec::scenario_path("micro"), std::ios::binary);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

void BM_ScenarioParse(benchmark::State& state) {
  const std::string text = micro_scenario_text();
  for (auto _ : state) {
    benchmark::DoNotOptimize(spec::parse_scenario(text));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(text.size()));
  // Scenarios per second alongside bytes: the compare gate keys off
  // items_per_second, which SetBytesProcessed alone leaves at zero.
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScenarioParse);

void BM_ScenarioSerialize(benchmark::State& state) {
  const auto sc = spec::parse_scenario(micro_scenario_text());
  std::size_t bytes = 0;
  for (auto _ : state) {
    const std::string out = spec::serialize_scenario(sc);
    bytes = out.size();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScenarioSerialize);

// ---- jpm::tracefile (the JPMC chunked trace store) -------------------------
// One shared fixture trace (~230k events) round-trips through the encoder
// and the mmap-style reader; bytes are the logical 17-byte-per-event stream,
// so MB/s here compares directly against raw SoA memcpy.

const workload::Trace& tracefile_fixture() {
  static const workload::Trace trace = [] {
    workload::SynthesizerConfig cfg;
    cfg.dataset_bytes = mib(256);
    cfg.byte_rate = 20e6;
    cfg.duration_s = 600.0;
    cfg.page_bytes = 64 * kKiB;
    cfg.write_fraction = 0.2;
    cfg.seed = 6;
    return workload::synthesize_trace(cfg);
  }();
  return trace;
}

std::string tracefile_image(const workload::Trace& trace) {
  std::ostringstream os(std::ios::binary);
  tracefile::TraceWriter w(os, trace.page_bytes, trace.total_pages,
                           trace.duration_s, {});
  for (std::size_t i = 0; i < trace.size(); ++i) {
    w.append(trace.times[i], trace.pages[i], trace.flags[i]);
  }
  w.finish();
  return os.str();
}

void BM_TraceFileEncode(benchmark::State& state) {
  const workload::Trace& trace = tracefile_fixture();
  for (auto _ : state) {
    const std::string image = tracefile_image(trace);
    benchmark::DoNotOptimize(image.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.size()));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.size() * 17));
}
BENCHMARK(BM_TraceFileEncode);

void BM_TraceFileDecode(benchmark::State& state) {
  const workload::Trace& trace = tracefile_fixture();
  const std::string image = tracefile_image(trace);
  const tracefile::TraceReader reader(image.data(), image.size(), "bench");
  tracefile::ChunkBuffer buf;
  for (auto _ : state) {
    for (std::size_t i = 0; i < reader.chunks().size(); ++i) {
      reader.decode_chunk(i, buf);
      benchmark::DoNotOptimize(buf.times.data());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.size()));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.size() * 17));
}
BENCHMARK(BM_TraceFileDecode);

// File-backed replay vs BM_EngineReplay/1/256: the same engine hot loop fed
// from decoded chunk windows instead of a materialized trace. The gap
// between the two is the whole cost of the chunked store on the sweep path.
void BM_FileBackedReplay(benchmark::State& state) {
  const workload::Trace& trace = tracefile_fixture();
  const std::string image = tracefile_image(trace);
  const tracefile::TraceReader reader(image.data(), image.size(), "bench");

  sim::EngineConfig e;
  e.joint.physical_bytes = gib(1);
  e.joint.unit_bytes = 16 * kMiB;
  e.joint.page_bytes = 64 * kKiB;
  e.joint.period_s = 300.0;
  const auto policy = sim::joint_policy();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::replay_file(reader, policy, e));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_FileBackedReplay);

// The disabled-tracer fast path: no session, so TELEM_EVENT is one relaxed
// atomic load and a not-taken branch. ns/event here is the whole overhead
// instrumented hot loops pay when telemetry is off.
void BM_TelemetryEventDisabled(benchmark::State& state) {
  double t = 0.0;
  for (auto _ : state) {
    t += 1.0;
    TELEM_EVENT(kEngine, "bench_event", t, {"value", t});
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TelemetryEventDisabled);

// The enabled path: session active, event copied into the per-thread ring.
// items/s is the sustained event rate one thread can absorb.
void BM_TelemetryEventEnabled(benchmark::State& state) {
  telemetry::start({});
  telemetry::RunRecorder* rec = telemetry::begin_run("bench_micro");
  {
    const telemetry::ScopedRun scope(rec);
    double t = 0.0;
    for (auto _ : state) {
      t += 1.0;
      TELEM_EVENT(kEngine, "bench_event", t, {"value", t});
      benchmark::DoNotOptimize(t);
    }
  }
  telemetry::stop();  // leaves no session behind for later benchmarks
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TelemetryEventEnabled);

}  // namespace

// One benchmark's distilled result: what the snapshot stores and the
// compare gate checks. items/s is the stable cross-run metric (real time
// per iteration scales with machine load far more).
struct BenchResult {
  std::string name;
  double items_per_second = 0.0;
  double real_time_per_iter_ns = 0.0;
};

// Forwards everything to the normal console reporter while collecting the
// per-iteration runs for the snapshot/compare paths.
class SnapshotReporter : public benchmark::BenchmarkReporter {
 public:
  explicit SnapshotReporter(benchmark::BenchmarkReporter* inner)
      : inner_(inner) {}

  bool ReportContext(const Context& context) override {
    return inner_->ReportContext(context);
  }

  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& run : report) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      BenchResult r;
      r.name = run.benchmark_name();
      if (run.iterations > 0) {
        r.real_time_per_iter_ns =
            run.real_accumulated_time / static_cast<double>(run.iterations) *
            1e9;
      }
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) r.items_per_second = it->second;
      results_.push_back(std::move(r));
    }
    inner_->ReportRuns(report);
  }

  void Finalize() override { inner_->Finalize(); }

  const std::vector<BenchResult>& results() const { return results_; }

 private:
  benchmark::BenchmarkReporter* inner_;
  std::vector<BenchResult> results_;
};

bool write_snapshot(const std::string& path,
                    const std::vector<BenchResult>& results) {
  util::json::Object root;
  root["schema"] = "jpm-bench-micro/1";
  util::json::Array benches;
  for (const BenchResult& r : results) {
    util::json::Object b;
    b["name"] = r.name;
    b["items_per_second"] = r.items_per_second;
    b["real_time_per_iter_ns"] = r.real_time_per_iter_ns;
    benches.push_back(util::json::Value(std::move(b)));
  }
  root["benchmarks"] = util::json::Value(std::move(benches));
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::cerr << "bench_micro: cannot write snapshot to " << path << "\n";
    return false;
  }
  out << util::json::dump(util::json::Value(std::move(root)), 2) << "\n";
  return out.good();
}

// Returns true when every benchmark present in both the baseline and this
// run kept items/s >= baseline/tolerance. Benchmarks missing on either side
// are reported but never fail the gate (the suite may grow or shrink).
bool compare_to_baseline(const std::string& path, double tolerance,
                         const std::vector<BenchResult>& results) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "bench_micro: cannot read baseline " << path << "\n";
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  util::json::Value root;
  std::string error;
  if (!util::json::parse(text.str(), &root, &error) || !root.is_object()) {
    std::cerr << "bench_micro: bad baseline JSON: " << error << "\n";
    return false;
  }
  const util::json::Value* benches = root.as_object().find("benchmarks");
  if (benches == nullptr || !benches->is_array()) {
    std::cerr << "bench_micro: baseline has no benchmarks array\n";
    return false;
  }
  bool ok = true;
  for (const util::json::Value& b : benches->as_array()) {
    if (!b.is_object()) continue;
    const util::json::Value* name = b.as_object().find("name");
    const util::json::Value* ips = b.as_object().find("items_per_second");
    if (name == nullptr || !name->is_string() || ips == nullptr ||
        !ips->is_number() || ips->as_number() <= 0.0) {
      continue;  // rate-less benchmarks carry no stable metric to gate on
    }
    const BenchResult* current = nullptr;
    for (const BenchResult& r : results) {
      if (r.name == name->as_string()) {
        current = &r;
        break;
      }
    }
    if (current == nullptr) {
      std::cerr << "perf-smoke: " << name->as_string()
                << " missing from this run (skipped)\n";
      continue;
    }
    const double floor = ips->as_number() / tolerance;
    const char* verdict = current->items_per_second >= floor ? "ok" : "SLOW";
    std::cerr << "perf-smoke: " << name->as_string() << " "
              << current->items_per_second << " items/s vs baseline "
              << ips->as_number() << " (floor " << floor << "): " << verdict
              << "\n";
    if (current->items_per_second < floor) ok = false;
  }
  return ok;
}

}  // namespace jpm

int main(int argc, char** argv) {
  std::string snapshot_path;
  std::string baseline_path;
  double tolerance = 2.0;
  // Consume our flags before google-benchmark sees (and rejects) them.
  int out_argc = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--snapshot=", 11) == 0) {
      snapshot_path = arg + 11;
    } else if (std::strncmp(arg, "--compare=", 10) == 0) {
      baseline_path = arg + 10;
    } else if (std::strncmp(arg, "--tolerance=", 12) == 0) {
      tolerance = std::stod(arg + 12);
    } else {
      argv[out_argc++] = argv[i];
    }
  }
  argc = out_argc;

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  std::unique_ptr<benchmark::BenchmarkReporter> display(
      benchmark::CreateDefaultDisplayReporter());
  jpm::SnapshotReporter reporter(display.get());
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  int rc = 0;
  if (!snapshot_path.empty() &&
      !jpm::write_snapshot(snapshot_path, reporter.results())) {
    rc = 1;
  }
  if (!baseline_path.empty() &&
      !jpm::compare_to_baseline(baseline_path, tolerance,
                                reporter.results())) {
    rc = 1;
  }
  return rc;
}
