// Google-benchmark microbenches for the simulator's hot kernels: LRU cache
// operations, the Fenwick stack-distance tracker, the idle-interval sweep,
// Pareto fitting, trace synthesis throughput, single-policy engine replay —
// the perf baseline for the sweep hot loop — and scenario-file parse/
// serialize throughput for the jpm::spec layer.
#include <benchmark/benchmark.h>

#include <fstream>
#include <sstream>
#include <string>

#include "jpm/cache/idle_sweep.h"
#include "jpm/cache/lru_cache.h"
#include "jpm/cache/stack_distance.h"
#include "jpm/pareto/pareto.h"
#include "jpm/sim/engine.h"
#include "jpm/sim/policies.h"
#include "jpm/spec/run.h"
#include "jpm/spec/spec.h"
#include "jpm/telemetry/registry.h"
#include "jpm/telemetry/telemetry.h"
#include "jpm/util/rng.h"
#include "jpm/workload/synthesizer.h"

namespace jpm {
namespace {

void BM_LruCacheAccess(benchmark::State& state) {
  cache::LruCache cache(cache::LruCacheOptions{1 << 16, 64, 1 << 14});
  Rng rng(1);
  for (auto _ : state) {
    const std::uint64_t page = rng.uniform_index(1 << 15);
    if (!cache.lookup(page)) cache.insert(page);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruCacheAccess);

void BM_StackDistance(benchmark::State& state) {
  cache::StackDistanceTracker tracker;
  Rng rng(2);
  const std::uint64_t span = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tracker.access(rng.uniform_index(span)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StackDistance)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_IdleSweep(benchmark::State& state) {
  Rng rng(3);
  std::vector<cache::IdleEvent> events;
  double t = 0.0;
  for (int i = 0; i < 100000; ++i) {
    t += rng.exponential(0.006);
    events.push_back({t, 1 + rng.uniform_index(8192 * 64)});
  }
  std::vector<std::uint64_t> candidates;
  for (std::uint64_t u = 1; u <= 8192; u += 32) candidates.push_back(u);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache::sweep_idle_intervals(
        events, 0.0, t + 1.0, 64, 0.1, candidates));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(events.size()));
}
BENCHMARK(BM_IdleSweep);

void BM_ParetoFitAndTimeout(benchmark::State& state) {
  Rng rng(4);
  for (auto _ : state) {
    const double mean = 0.1 + rng.uniform() * 100.0;
    const auto d = pareto::fit_from_mean(mean, 0.1);
    benchmark::DoNotOptimize(d.alpha() * 11.7);
  }
}
BENCHMARK(BM_ParetoFitAndTimeout);

void BM_TraceSynthesis(benchmark::State& state) {
  workload::SynthesizerConfig cfg;
  cfg.dataset_bytes = gib(1);
  cfg.byte_rate = 50e6;
  cfg.duration_s = 60.0;
  cfg.page_bytes = 256 * kKiB;
  cfg.seed = 5;
  std::uint64_t events = 0;
  for (auto _ : state) {
    workload::TraceGenerator gen(cfg);
    std::uint64_t n = 0;
    while (gen.next()) ++n;
    benchmark::DoNotOptimize(n);
    events += n;
  }
  // events/s: the synthesis throughput run_sweep pays once per sweep point.
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_TraceSynthesis);

// Materializes a trace once and replays it through a single policy's full
// pipeline per iteration — exactly one unit of run_sweep's fan-out, and the
// perf baseline for future engine hot-loop work (items = trace events).
void BM_EngineReplay(benchmark::State& state) {
  workload::SynthesizerConfig cfg;
  cfg.dataset_bytes = mib(256);
  cfg.byte_rate = 20e6;
  cfg.duration_s = 600.0;
  cfg.page_bytes = 64 * kKiB;
  cfg.seed = 6;
  const auto trace = workload::synthesize_trace(cfg);

  sim::EngineConfig e;
  e.joint.physical_bytes = gib(1);
  e.joint.unit_bytes = 16 * kMiB;
  e.joint.page_bytes = 64 * kKiB;
  e.joint.period_s = 300.0;
  const auto policy = state.range(0) == 0
                          ? sim::fixed_policy(
                                sim::DiskPolicyKind::kTwoCompetitive, mib(128))
                          : sim::joint_policy();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_simulation(trace, policy, e));
  }
  state.SetItemsProcessed(
      state.iterations() * static_cast<std::int64_t>(trace.events.size()));
}
BENCHMARK(BM_EngineReplay)->Arg(0)->Arg(1);

// The spec layer's cost of admission: parsing a checked-in scenario file
// (the 21 scenarios are all within ~4x of micro.json's size) and emitting
// its canonical serialization. bytes/s is what `jpm validate scenarios/*`
// and every bench startup pay.
std::string micro_scenario_text() {
  std::ifstream in(spec::scenario_path("micro"), std::ios::binary);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

void BM_ScenarioParse(benchmark::State& state) {
  const std::string text = micro_scenario_text();
  for (auto _ : state) {
    benchmark::DoNotOptimize(spec::parse_scenario(text));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_ScenarioParse);

void BM_ScenarioSerialize(benchmark::State& state) {
  const auto sc = spec::parse_scenario(micro_scenario_text());
  std::size_t bytes = 0;
  for (auto _ : state) {
    const std::string out = spec::serialize_scenario(sc);
    bytes = out.size();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_ScenarioSerialize);

// The disabled-tracer fast path: no session, so TELEM_EVENT is one relaxed
// atomic load and a not-taken branch. ns/event here is the whole overhead
// instrumented hot loops pay when telemetry is off.
void BM_TelemetryEventDisabled(benchmark::State& state) {
  double t = 0.0;
  for (auto _ : state) {
    t += 1.0;
    TELEM_EVENT(kEngine, "bench_event", t, {"value", t});
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TelemetryEventDisabled);

// The enabled path: session active, event copied into the per-thread ring.
// items/s is the sustained event rate one thread can absorb.
void BM_TelemetryEventEnabled(benchmark::State& state) {
  telemetry::start({});
  telemetry::RunRecorder* rec = telemetry::begin_run("bench_micro");
  {
    const telemetry::ScopedRun scope(rec);
    double t = 0.0;
    for (auto _ : state) {
      t += 1.0;
      TELEM_EVENT(kEngine, "bench_event", t, {"value", t});
      benchmark::DoNotOptimize(t);
    }
  }
  telemetry::stop();  // leaves no session behind for later benchmarks
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TelemetryEventEnabled);

}  // namespace
}  // namespace jpm

BENCHMARK_MAIN();
