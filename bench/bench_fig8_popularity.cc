// Reproduces paper Fig. 8(c)-(d): energy and long-latency requests as data
// popularity varies from 0.05 (dense: 5% of bytes get 90% of requests) to
// 0.6 (sparse) on a 16 GB data set at 5 MB/s — the low rate keeps the disk
// idle enough that popularity, not bandwidth, decides the outcome. The
// experiment is declared in scenarios/fig8_popularity.json.
//
// The popularity crossover hinges on small-file random IO throttling the
// disk (~1.3 MB/s effective at 16 kB transfers): at 5 MB/s offered load the
// trace is short enough to afford spec-faithful SPECWeb99 file sizes and
// fine pages instead of the coarse granularity the high-rate sweeps use
// (the scenario's 16 kB pages, file_scale 4, temporal_locality 0.85).
//
// Expected shapes (paper Section V-B.3): the joint method wins at dense
// popularity (0.05-0.2) by caching only the hot set and sleeping the disk,
// saving 13-21% versus >= 32 GB methods; at sparse popularity it adds memory
// and adjusts the timeout; small fixed memories degrade sharply once the hot
// set outgrows them (0.6 * 16 GB > 8 GB); DS latency worsens with sparsity.
#include "bench_common.h"

using namespace jpm;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  const auto sc = bench::load_scenario("fig8_popularity");
  spec::RunOptions options;
  options.progress = bench::progress_line;
  spec::run_scenario(sc, options);
  return 0;
}
