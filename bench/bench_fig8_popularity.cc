// Reproduces paper Fig. 8(c)-(d): energy and long-latency requests as data
// popularity varies from 0.05 (dense: 5% of bytes get 90% of requests) to
// 0.6 (sparse) on a 16 GB data set at 5 MB/s — the low rate keeps the disk
// idle enough that popularity, not bandwidth, decides the outcome.
//
// Expected shapes (paper Section V-B.3): the joint method wins at dense
// popularity (0.05-0.2) by caching only the hot set and sleeping the disk,
// saving 13-21% versus >= 32 GB methods; at sparse popularity it adds memory
// and adjusts the timeout; small fixed memories degrade sharply once the hot
// set outgrows them (0.6 * 16 GB > 8 GB); DS latency worsens with sparsity.
#include "bench_common.h"

using namespace jpm;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  // The popularity crossover hinges on small-file random IO throttling the
  // disk (~1.3 MB/s effective at 16 kB transfers): at 5 MB/s offered load
  // the trace is short enough to afford spec-faithful SPECWeb99 file sizes
  // and fine pages instead of the coarse granularity the high-rate sweeps
  // use. Short-term reuse (temporal_locality) mirrors the captured trace's
  // behaviour — without it, every access outside the hot set is a
  // compulsory miss and no method could honor U <= 10% with a small memory.
  auto engine = bench::paper_engine();
  engine.joint.page_bytes = 16 * kKiB;
  const auto roster = sim::paper_policies();

  std::vector<std::pair<std::string, workload::SynthesizerConfig>> workloads;
  for (double pop : {0.05, 0.1, 0.2, 0.4, 0.6}) {
    auto w = bench::paper_workload(gib(16), 5e6, pop);
    w.page_bytes = 16 * kKiB;
    w.file_scale = 4.0;
    w.temporal_locality = 0.85;
    w.locality_window = 16384;
    workloads.emplace_back(bench::num(pop, 2), w);
  }

  std::cout << "Fig. 8(c,d) — popularity sweep (16 GB data set, 5 MB/s)\n";
  const auto points =
      sim::run_sweep(workloads, roster, engine, bench::progress_line);

  bench::print_metric_table(
      "(c) total energy, % of always-on", points,
      [](const sim::RunOutcome& o) { return bench::pct(o.normalized.total); });
  bench::print_metric_table(
      "(d) requests with >0.5 s latency, per second", points,
      [](const sim::RunOutcome& o) {
        return bench::num(o.metrics.long_latency_per_s());
      });
  return 0;
}
