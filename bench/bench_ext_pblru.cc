// Extension: PB-LRU-style energy-aware cache partitioning (paper ref. [36])
// against a single global LRU, over a 4-disk array serving two data classes:
//   * disks 0-1: a hot, skewed 8 GB set at 40 MB/s;
//   * disks 2-3: a near-uniform 3 GB archive at 2 MB/s whose reuse distance
//     is its whole footprint — cacheable outright, or not at all.
// A global LRU allocates by recency, so the hot class crowds the archive out
// and its disks field a steady miss stream; the energy-aware partitioner
// prices each partition by what its misses do to its disk's power state and
// shields the archive — Zhu et al.'s observation that "lower miss rates do
// not necessarily save more disk energy", made concrete as a ~15x cut in
// archive-class misses at the cost of extra (free: those disks are pinned
// awake anyway) hot-class misses. At this trace scale even the reduced
// archive trickle stays above the ~0.09/s per-disk rate that would let a
// spindle sleep, so the redistribution — not the final joules — is the
// result to look at. The two workload classes and the warm-up cutoff come
// from scenarios/ext_pblru.json ("hot" and "archive" points).
#include <map>

#include "bench_common.h"
#include "jpm/cache/partitioned_lru.h"
#include "jpm/disk/disk_array.h"

using namespace jpm;

namespace {

struct MergedEvent {
  double time_s;
  std::uint64_t page;
  std::uint32_t disk;     // 0-3
  std::uint32_t klass;    // 0 = hot, 1 = archive
};

std::vector<MergedEvent> build_trace(const spec::Scenario& sc) {
  // Hot class: skewed 8 GB set. Archive: near-uniform 3 GB set whose reuse
  // distance is the whole set — cacheable outright, or not at all.
  const auto hot = workload::synthesize(sc.workloads[0].workload);
  const auto archive = workload::synthesize(sc.workloads[1].workload);
  const std::uint64_t offset =
      sc.workloads[0].workload.dataset_bytes / (256 * kKiB) + 64;

  std::vector<MergedEvent> merged;
  merged.reserve(hot.size() + archive.size());
  std::size_t i = 0, j = 0;
  while (i < hot.size() || j < archive.size()) {
    const bool take_hot =
        j >= archive.size() ||
        (i < hot.size() && hot[i].time_s <= archive[j].time_s);
    if (take_hot) {
      merged.push_back({hot[i].time_s, hot[i].page,
                        static_cast<std::uint32_t>(hot[i].page / 256 % 2), 0});
      ++i;
    } else {
      merged.push_back({archive[j].time_s, archive[j].page + offset,
                        static_cast<std::uint32_t>(2 + archive[j].page / 256 % 2),
                        1});
      ++j;
    }
  }
  return merged;
}

struct Outcome {
  double disk_energy_kj = 0.0;
  std::uint64_t misses_hot = 0;
  std::uint64_t misses_archive = 0;
  std::uint64_t spin_downs = 0;
};

}  // namespace

int main(int argc, char** argv) {
  bench::init(argc, argv);
  const auto sc = bench::load_scenario("ext_pblru");
  const double duration_s = sc.workloads[0].workload.duration_s;
  const double warm_up_s = sc.engine.warm_up_s;
  const std::uint64_t page_bytes = 256 * kKiB;
  const std::uint64_t cache_frames = gib(5) / page_bytes;
  const std::uint64_t unit_frames = mib(256) / page_bytes;
  const double epoch_s = 600.0;
  const auto trace = build_trace(sc);

  disk::DiskArrayConfig array_cfg;
  array_cfg.disk_count = 4;
  array_cfg.stripe_bytes = 256 * page_bytes;
  array_cfg.page_bytes = page_bytes;
  const auto disk_params = array_cfg.params.timeout_params();

  auto run = [&](bool partitioned) {
    disk::DiskArray disks(array_cfg, [&] {
      return std::make_unique<disk::FixedTimeout>(
          array_cfg.params.break_even_s());
    }, 0.0);

    cache::LruCache global(
        cache::LruCacheOptions{cache_frames, unit_frames, cache_frames});
    cache::PartitionedLruCache pblru(
        cache::PartitionedLruOptions{4, cache_frames, unit_frames});

    // Warm start (as in the engine benches): stream the page universe
    // through the caches before t = 0 so compulsory misses do not blur the
    // capacity story.
    {
      std::map<std::uint64_t, std::uint32_t> universe;
      for (const auto& e : trace) universe.emplace(e.page, e.disk);
      for (const auto& [page, d] : universe) {
        if (partitioned) {
          pblru.access(d, page);
        } else if (!global.lookup(page)) {
          global.insert(page);
        }
      }
      pblru.reset_epoch();  // prefill's compulsory misses are not workload
    }

    std::vector<std::uint64_t> epoch_misses(4, 0);
    double next_epoch = epoch_s;
    Outcome out;
    for (const auto& e : trace) {
      if (partitioned && e.time_s >= next_epoch) {
        // Per-partition energy as a function of its predicted miss count
        // (the PB-LRU insight): misses sparse enough to let the disk sleep
        // cost one wake cycle each; anything denser pins the disk awake for
        // the whole epoch.
        const auto energy_model = [&](std::size_t, std::uint64_t misses) {
          if (misses == 0) return 0.0;
          const double gap = epoch_s / static_cast<double>(misses);
          if (gap > disk_params.break_even_s) {
            return static_cast<double>(misses) * disk_params.static_power_w *
                   2.0 * disk_params.break_even_s;
          }
          return disk_params.static_power_w * epoch_s;
        };
        pblru.rebalance(energy_model);
        epoch_misses.assign(4, 0);
        next_epoch += epoch_s;
      }
      disks.advance(e.time_s);
      bool hit;
      if (partitioned) {
        hit = pblru.access(e.disk, e.page);
      } else {
        hit = global.lookup(e.page).has_value();
        if (!hit) global.insert(e.page);
      }
      if (!hit) {
        disks.read(e.time_s, e.page, page_bytes);
        ++epoch_misses[e.disk];
        if (e.time_s >= warm_up_s) {
          if (e.klass == 0) {
            ++out.misses_hot;
          } else {
            ++out.misses_archive;
          }
        }
      }
    }
    const auto warm = disks.energy_through(warm_up_s);
    disks.finalize(duration_s);
    out.disk_energy_kj = (disks.energy().total_j() - warm.total_j()) / 1e3;
    out.spin_downs = disks.shutdowns();
    return out;
  };

  std::cout << spec::expand_header(sc) << "\n";
  Table t({"cache policy", "disk energy (kJ)", "hot-class misses",
           "archive misses", "spin-downs"});
  for (bool partitioned : {false, true}) {
    const auto o = run(partitioned);
    t.row()
        .cell(partitioned ? "PB-LRU (energy-aware)" : "global LRU")
        .cell(bench::num(o.disk_energy_kj, 1))
        .cell(o.misses_hot)
        .cell(o.misses_archive)
        .cell(o.spin_downs);
    bench::progress_line(partitioned ? "PB-LRU done" : "global LRU done");
  }
  std::cout << t.to_string();
  return 0;
}
