// Extension (paper Section VI): the joint method inside a server cluster,
// crossed with the request-distribution schemes of the related work
// (Section II-B). Four servers, each with the paper's 128 GB/one-disk
// configuration plus a 150 W chassis; the data set is cluster-scale. The
// workload, per-server engine, cluster geometry, and the joint policy come
// from scenarios/ext_cluster.json; the distribution sweep stays here.
//
// Expected shapes:
//   * unbalanced distribution concentrates load, powers idle servers off,
//     and wins on chassis + pipeline energy at light load;
//   * content partitioning avoids caching the working set four times, so it
//     needs the least aggregate disk traffic;
//   * round-robin balances perfectly (balance index ~1) but pays for four
//     warm caches and four spinning disks.
#include "bench_common.h"
#include "jpm/cluster/cluster.h"

using namespace jpm;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  const auto sc = bench::load_scenario("ext_cluster");
  const auto& workload = sc.workloads.front().workload;

  std::cout << spec::expand_header(sc) << "\n";
  Table t({"distribution", "pipeline energy (kJ)", "chassis energy (kJ)",
           "total (kJ)", "balance index", "mean latency ms",
           "long-latency req/s", "power cycles"});

  const std::pair<const char*, cluster::DistributionPolicy> policies[] = {
      {"round-robin", cluster::DistributionPolicy::kRoundRobin},
      {"partitioned", cluster::DistributionPolicy::kPartitioned},
      {"unbalanced", cluster::DistributionPolicy::kUnbalanced},
  };
  for (const auto& [label, distribution] : policies) {
    cluster::ClusterConfig cfg = spec::cluster_config(sc);
    cfg.distribution = distribution;

    cluster::ClusterEngine engine(cfg, workload, sc.roster[0]);
    const auto m = engine.run();
    std::uint64_t cycles = 0;
    for (const auto& s : m.servers) cycles += s.power_cycles;
    t.row()
        .cell(label)
        .cell(bench::num(m.pipeline_energy_j() / 1e3, 1))
        .cell(bench::num(m.chassis_energy_j() / 1e3, 1))
        .cell(bench::num(m.total_j() / 1e3, 1))
        .cell(bench::num(m.balance_index(), 2))
        .cell(bench::ms(m.mean_latency_s()))
        .cell(bench::num(m.long_latency_per_s()))
        .cell(cycles);
    bench::progress_line(std::string(label) + " done");
  }
  std::cout << t.to_string();
  return 0;
}
