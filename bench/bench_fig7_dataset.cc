// Reproduces paper Fig. 7(a)-(f): energy consumption and performance of the
// 16 power-management methods as the data-set size varies from 4 to 64 GB.
// Workload: 100 MB/s, popularity 0.1 (hottest 10% of bytes get 90% of
// requests). Energy is normalized to the always-on method, as in the paper.
//
// Expected shapes (paper Section V-B.1):
//  * the joint method sits at or near the minimum total energy at every size
//    while keeping utilization < 10% and few long-latency requests;
//  * 2TFM/ADFM-8GB blow up in utilization and long-latency requests once the
//    data set outgrows them (the paper omits their bars at 64 GB because
//    demand exceeds disk bandwidth);
//  * 2TPD/ADPD show minimal disk energy but >30% memory energy;
//  * 2TDS/ADDS trail the joint method with several times its long-latency
//    request rate.
#include "bench_common.h"

using namespace jpm;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  const auto engine = bench::paper_engine();
  const auto roster = sim::paper_policies();

  std::vector<std::pair<std::string, workload::SynthesizerConfig>> workloads;
  for (std::uint64_t g : {4, 8, 16, 32, 64}) {
    workloads.emplace_back(std::to_string(g) + "GB",
                           bench::paper_workload(gib(g), 100e6, 0.1));
  }

  std::cout << "Fig. 7 — data-set size sweep (100 MB/s, popularity 0.1, "
            << bench::measured_duration_s() / 60.0 << " min measured)\n";
  const auto points =
      sim::run_sweep(workloads, roster, engine, bench::progress_line);

  bench::print_metric_table(
      "(a) total energy, % of always-on", points,
      [](const sim::RunOutcome& o) { return bench::pct(o.normalized.total); });
  bench::print_metric_table(
      "(b) disk energy, % of always-on disk", points,
      [](const sim::RunOutcome& o) { return bench::pct(o.normalized.disk); });
  bench::print_metric_table(
      "(c) memory energy, % of always-on memory", points,
      [](const sim::RunOutcome& o) { return bench::pct(o.normalized.memory); });
  bench::print_metric_table(
      "(d) mean request latency, ms", points, [](const sim::RunOutcome& o) {
        return bench::ms(o.metrics.mean_latency_s());
      });
  bench::print_metric_table(
      "(e) disk bandwidth utilization", points, [](const sim::RunOutcome& o) {
        return bench::pct(o.metrics.utilization());
      });
  bench::print_metric_table(
      "(f) requests with >0.5 s latency, per second", points,
      [](const sim::RunOutcome& o) {
        return bench::num(o.metrics.long_latency_per_s());
      });
  return 0;
}
