// Reproduces paper Fig. 7(a)-(f): energy consumption and performance of the
// 16 power-management methods as the data-set size varies from 4 to 64 GB.
// Workload: 100 MB/s, popularity 0.1 (hottest 10% of bytes get 90% of
// requests). Energy is normalized to the always-on method, as in the paper.
//
// The whole experiment — workloads, roster, engine, and result tables — is
// declared in scenarios/fig7_dataset.json; `jpm run` on that file prints the
// same tables.
//
// Expected shapes (paper Section V-B.1):
//  * the joint method sits at or near the minimum total energy at every size
//    while keeping utilization < 10% and few long-latency requests;
//  * 2TFM/ADFM-8GB blow up in utilization and long-latency requests once the
//    data set outgrows them (the paper omits their bars at 64 GB because
//    demand exceeds disk bandwidth);
//  * 2TPD/ADPD show minimal disk energy but >30% memory energy;
//  * 2TDS/ADDS trail the joint method with several times its long-latency
//    request rate.
#include "bench_common.h"

using namespace jpm;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  const auto sc = bench::load_scenario("fig7_dataset");
  spec::RunOptions options;
  options.progress = bench::progress_line;
  spec::run_scenario(sc, options);
  return 0;
}
