// Prints the power models of paper Fig. 1 (RDRAM chip and Seagate IDE disk)
// together with every derived constant of Table II, and replays the paper's
// Fig. 3 extended-LRU worked example. The model parameters are read from
// scenarios/models.json (whose engine carries the paper defaults).
#include "bench_common.h"
#include "jpm/cache/miss_curve.h"
#include "jpm/cache/stack_distance.h"
#include "jpm/disk/disk_model.h"
#include "jpm/mem/rdram_model.h"

using namespace jpm;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  const auto sc = bench::load_scenario("models");
  const mem::RdramParams m = sc.engine.joint.mem;
  const disk::DiskParams d = sc.engine.joint.disk;

  std::cout << spec::expand_header(sc) << "\n";
  Table mt({"memory parameter", "value"});
  mt.row().cell("bank size").cell(bench::num(to_mib(m.bank_bytes), 0) + " MB");
  mt.row().cell("nap (static) power").cell(
      bench::num(m.nap_mw_per_mb, 3) + " mW/MB");
  mt.row().cell("dynamic energy").cell(bench::num(m.dynamic_mj_per_mb, 3) +
                                       " mJ/MB");
  mt.row().cell("power-down power / nap").cell(
      bench::num(m.powerdown_fraction, 2));
  mt.row().cell("power-down timeout").cell(
      bench::num(m.powerdown_timeout_s * 1e6, 0) + " us");
  mt.row().cell("disable timeout (break-even)").cell(
      bench::num(m.disable_timeout_s, 0) + " s");
  mt.row().cell("128 GB nap power").cell(
      bench::num(m.nap_power_w(128 * kGiB), 1) + " W");
  std::cout << mt.to_string();

  Table dt({"disk parameter", "value"});
  dt.row().cell("active power").cell(bench::num(d.active_w, 1) + " W");
  dt.row().cell("idle power").cell(bench::num(d.idle_w, 1) + " W");
  dt.row().cell("standby power").cell(bench::num(d.standby_w, 1) + " W");
  dt.row().cell("static (manageable) power p_d").cell(
      bench::num(d.static_power_w(), 1) + " W");
  dt.row().cell("dynamic peak power").cell(
      bench::num(d.dynamic_power_w(), 1) + " W");
  dt.row().cell("round-trip transition energy").cell(
      bench::num(d.transition_j, 1) + " J");
  dt.row().cell("break-even time t_be").cell(bench::num(d.break_even_s(), 1) +
                                             " s");
  dt.row().cell("spin-up time t_tr").cell(bench::num(d.spin_up_s, 0) + " s");
  std::cout << "\n" << dt.to_string();

  const disk::ServiceModel svc(d);
  Table bw({"request size", "bandwidth (MB/s)"});
  for (std::uint64_t kb : {4, 16, 64, 128, 256, 1024, 4096, 16384}) {
    bw.row()
        .cell(std::to_string(kb) + " kB")
        .cell(bench::num(svc.bandwidth_bytes_per_s(kb * kKiB) / 1e6, 1));
  }
  std::cout << "\n== bandwidth table (random requests; the paper derives the "
               "same table from DiskSim) ==\n"
            << bw.to_string();

  // Fig. 3: the extended LRU list on the example reference string.
  std::cout << "\nFig. 3 — extended-LRU worked example, accesses "
               "(1,2,3,5,2,1,4,6,5,2)\n";
  cache::StackDistanceTracker tracker;
  cache::MissCurve curve(1, 8);
  for (std::uint64_t r : {1, 2, 3, 5, 2, 1, 4, 6, 5, 2}) {
    curve.add(tracker.access(r));
  }
  Table lru({"LRU position", "counter"});
  for (std::uint64_t u = 0; u < 8; ++u) {
    lru.row().cell(std::to_string(u + 1)).cell(curve.counter(u));
  }
  std::cout << lru.to_string();
  Table pred({"memory size (pages)", "predicted disk accesses"});
  for (std::uint64_t s : {3, 4, 5, 8}) {
    pred.row().cell(std::to_string(s)).cell(curve.misses_at(s));
  }
  std::cout << "\n" << pred.to_string();
  return 0;
}
