// Reproduces paper Table III: disk accesses per method and memory (disk-
// cache) accesses per data-set size, for the joint method, the 2TFM ladder,
// 2TPD, 2TDS, and the always-on baseline. Methods sharing a memory policy
// report identical disk-access counts regardless of the disk timeout — the
// paper makes the same observation about 2T vs AD. The sweep and the first
// table are declared in scenarios/table3_accesses.json; the memory-access
// column is computed here from the sweep's baseline runs.
#include "bench_common.h"

using namespace jpm;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  const auto sc = bench::load_scenario("table3_accesses");
  spec::RunOptions options;
  options.progress = bench::progress_line;
  const auto points = spec::run_scenario(sc, options);

  // Memory accesses depend only on the workload (same for every method).
  Table t({"data set", "memory accesses (millions)"});
  for (const auto& p : points) {
    t.row().cell(p.label).cell(bench::num(
        static_cast<double>(p.baseline.cache_accesses) / 1e6, 2));
  }
  std::cout << "\n== memory (disk-cache) accesses ==\n" << t.to_string();
  return 0;
}
