// Reproduces paper Table III: disk accesses per method and memory (disk-
// cache) accesses per data-set size, for the joint method, the 2TFM ladder,
// 2TPD, 2TDS, and the always-on baseline. Methods sharing a memory policy
// report identical disk-access counts regardless of the disk timeout — the
// paper makes the same observation about 2T vs AD.
#include "bench_common.h"

using namespace jpm;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  const auto engine = bench::paper_engine();
  std::vector<sim::PolicySpec> roster{sim::joint_policy()};
  for (std::uint64_t g : {8, 16, 32, 64, 128}) {
    roster.push_back(
        sim::fixed_policy(sim::DiskPolicyKind::kTwoCompetitive, gib(g)));
  }
  roster.push_back(
      sim::powerdown_policy(sim::DiskPolicyKind::kTwoCompetitive, 128 * kGiB));
  roster.push_back(
      sim::disable_policy(sim::DiskPolicyKind::kTwoCompetitive, 128 * kGiB));
  roster.push_back(sim::always_on_policy());

  std::vector<std::pair<std::string, workload::SynthesizerConfig>> workloads;
  for (std::uint64_t g : {4, 8, 16, 32, 64}) {
    workloads.emplace_back(std::to_string(g) + "GB",
                           bench::paper_workload(gib(g), 100e6, 0.1));
  }

  std::cout << "Table III — disk and memory accesses under different data "
               "sets (100 MB/s, popularity 0.1)\n";
  const auto points =
      sim::run_sweep(workloads, roster, engine, bench::progress_line);

  bench::print_metric_table(
      "disk accesses (millions)", points, [](const sim::RunOutcome& o) {
        return bench::num(static_cast<double>(o.metrics.disk_accesses) / 1e6,
                          3);
      });

  // Memory accesses depend only on the workload (same for every method).
  Table t({"data set", "memory accesses (millions)"});
  for (const auto& p : points) {
    t.row().cell(p.label).cell(bench::num(
        static_cast<double>(p.baseline.cache_accesses) / 1e6, 2));
  }
  std::cout << "\n== memory (disk-cache) accesses ==\n" << t.to_string();
  return 0;
}
