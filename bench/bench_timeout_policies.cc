// Timeout-policy comparison against the offline oracle (the methodology of
// Lu et al. [16], which the paper uses to justify building on the timeout
// family). For idle-gap populations of varying tail weight we report the
// p_d-band energy of: the offline oracle, the 2-competitive timeout, the
// Douglis adaptive timeout, the Pareto-optimal timeout of eq. 5 (fitted from
// the sample mean, i.e. what the joint manager would pick), and never
// spinning down. The disk's timeout parameters come from
// scenarios/timeout_policies.json.
//
// Expected shape: every policy sits between the oracle and "never"; the 2T
// policy stays below 2x oracle everywhere; the eq. 5 timeout tracks or beats
// 2T and AD when gaps really are heavy-tailed.
#include "bench_common.h"
#include "jpm/disk/offline.h"
#include "jpm/pareto/pareto.h"

using namespace jpm;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  const auto sc = bench::load_scenario("timeout_policies");
  const auto disk = sc.engine.joint.disk.timeout_params();
  std::cout << spec::expand_header(sc) << "\n";

  Table t({"gap distribution", "oracle", "2T (t_be)", "randomized",
           "adaptive", "predictive", "Pareto eq.5", "never off",
           "2T/oracle"});
  Rng rng(77);
  for (double alpha : {1.1, 1.3, 1.6, 2.0, 3.0, 6.0}) {
    for (double beta : {0.5, 4.0}) {
      const pareto::ParetoDistribution d(alpha, beta);
      std::vector<double> gaps;
      gaps.reserve(10000);
      double mean = 0.0;
      for (int i = 0; i < 10000; ++i) {
        gaps.push_back(d.sample(rng));
        mean += gaps.back();
      }
      mean /= static_cast<double>(gaps.size());

      const double oracle = disk::oracle_energy_j(gaps, disk);
      const double two_t =
          disk::fixed_timeout_energy_j(gaps, disk.break_even_s, disk);
      const double randomized =
          disk::randomized_timeout_energy_j(gaps, disk, 9);
      const double adaptive = disk::adaptive_timeout_energy_j(
          gaps, disk::AdaptiveTimeoutConfig{}, disk);
      const double predictive =
          disk::predictive_timeout_energy_j(gaps, disk);
      const auto fit = pareto::fit_from_mean(mean, beta);
      const double eq5 = disk::fixed_timeout_energy_j(
          gaps, pareto::optimal_timeout(fit, disk), disk);
      const double never = disk::fixed_timeout_energy_j(
          gaps, pareto::kNeverTimeout, disk);

      t.row()
          .cell("alpha=" + bench::num(alpha, 1) + " beta=" +
                bench::num(beta, 1))
          .cell(bench::num(oracle / 1e3, 1))
          .cell(bench::num(two_t / 1e3, 1))
          .cell(bench::num(randomized / 1e3, 1))
          .cell(bench::num(adaptive / 1e3, 1))
          .cell(bench::num(predictive / 1e3, 1))
          .cell(bench::num(eq5 / 1e3, 1))
          .cell(bench::num(never / 1e3, 1))
          .cell(bench::num(disk::competitive_ratio(two_t, oracle), 2));
    }
  }
  std::cout << t.to_string();
  return 0;
}
