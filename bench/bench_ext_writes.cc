// Extension: write traffic and the flush daemon. The paper's trace is
// read-dominated; real servers also write, and background writebacks wake a
// sleeping disk — the exact failure mode the related work on energy-aware
// prefetching/buffering (Papathanasiou & Scott; Heath et al.) attacks by
// batching IO. This harness quantifies it:
//   (a) growing the write fraction at a fixed 30 s flush interval, and
//   (b) stretching the flush interval at a fixed write fraction —
// longer intervals coalesce more writes per burst and leave longer idle
// stretches between bursts, recovering most of the spin-down savings.
// The base workload (modest rate so the disk has idleness worth protecting),
// engine, and method pair come from scenarios/ext_writes.json.
#include "bench_common.h"

using namespace jpm;

namespace {

void report(Table& t, const std::string& label, const sim::RunMetrics& m,
            const sim::RunMetrics& base) {
  t.row()
      .cell(label)
      .cell(bench::pct(m.total_j() / base.total_j()))
      .cell(bench::num(m.disk_energy.total_j() / 1e3, 1))
      .cell(m.disk_writes)
      .cell(m.disk_shutdowns)
      .cell(bench::num(m.long_latency_per_s()));
}

}  // namespace

int main(int argc, char** argv) {
  bench::init(argc, argv);
  const auto sc = bench::load_scenario("ext_writes");
  const auto& base_workload = sc.workloads.front().workload;
  const auto& joint_spec = sc.roster[0];
  const auto baseline =
      sim::run_simulation(base_workload, sc.roster[1], sc.engine);
  std::cout << spec::expand_header(sc) << "\n";

  {
    Table t({"write fraction", "total energy %", "disk energy (kJ)",
             "disk writes", "spin-downs", "long-latency req/s"});
    for (double wf : {0.0, 0.1, 0.3, 0.5}) {
      auto w = base_workload;
      w.write_fraction = wf;
      const auto m = sim::run_simulation(w, joint_spec, sc.engine);
      report(t, bench::num(wf, 1), m, baseline);
      bench::progress_line("write fraction " + bench::num(wf, 1) + " done");
    }
    std::cout << "\n== (a) write fraction (flush every 30 s) ==\n"
              << t.to_string();
  }

  {
    auto w = base_workload;
    w.write_fraction = 0.3;
    Table t({"flush interval", "total energy %", "disk energy (kJ)",
             "disk writes", "spin-downs", "long-latency req/s"});
    for (double interval : {5.0, 30.0, 120.0, 600.0}) {
      auto e = sc.engine;
      e.flush_interval_s = interval;
      const auto m = sim::run_simulation(w, joint_spec, e);
      report(t, bench::num(interval, 0) + " s", m, baseline);
      bench::progress_line("flush " + bench::num(interval, 0) + "s done");
    }
    std::cout << "\n== (b) flush interval (write fraction 0.3) ==\n"
              << t.to_string();
  }
  return 0;
}
