// Extension (paper Section VI future work): the joint method over a striped
// multi-disk array. One joint decision sets the memory size and a shared
// timeout for every spindle; each spindle still spins down independently
// when its own stripe set goes quiet. Workload, roster, and the 64 MiB-
// stripe engine come from scenarios/ext_multidisk.json; the spindle-count
// sweep stays here.
//
// Expected shape: adding spindles multiplies the disk's standby/static floor,
// so always-on disk energy grows with the array while the joint method keeps
// most spindles asleep; per-spindle utilization falls roughly linearly with
// the spindle count.
#include "bench_common.h"

using namespace jpm;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  const auto sc = bench::load_scenario("ext_multidisk");
  const auto& workload = sc.workloads.front().workload;

  std::cout << spec::expand_header(sc) << "\n";
  Table t({"disks", "method", "total energy (kJ)", "disk energy (kJ)",
           "per-spindle util", "long-latency req/s", "spin-downs"});
  for (std::uint32_t disks : {1u, 2u, 4u}) {
    auto engine = sc.engine;
    engine.disk_count = disks;
    for (const auto& policy : sc.roster) {
      const auto m = sim::run_simulation(workload, policy, engine);
      t.row()
          .cell(std::to_string(disks))
          .cell(policy.name)
          .cell(bench::num(m.total_j() / 1e3, 1))
          .cell(bench::num(m.disk_energy.total_j() / 1e3, 1))
          .cell(bench::pct(m.utilization()))
          .cell(bench::num(m.long_latency_per_s()))
          .cell(m.disk_shutdowns);
      bench::progress_line(std::to_string(disks) + " disks: " + policy.name +
                           " done");
    }
  }
  std::cout << t.to_string();
  return 0;
}
