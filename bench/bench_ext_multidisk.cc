// Extension (paper Section VI future work): the joint method over a striped
// multi-disk array. One joint decision sets the memory size and a shared
// timeout for every spindle; each spindle still spins down independently
// when its own stripe set goes quiet.
//
// Expected shape: adding spindles multiplies the disk's standby/static floor,
// so always-on disk energy grows with the array while the joint method keeps
// most spindles asleep; per-spindle utilization falls roughly linearly with
// the spindle count.
#include "bench_common.h"

using namespace jpm;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  auto workload = bench::paper_workload(gib(32), 100e6, 0.1);
  const std::vector<sim::PolicySpec> roster{
      sim::joint_policy(),
      sim::fixed_policy(sim::DiskPolicyKind::kTwoCompetitive, gib(16)),
      sim::fixed_policy(sim::DiskPolicyKind::kAdaptive, gib(32)),
      sim::always_on_policy(),
  };

  std::cout << "Joint power management over striped disk arrays "
               "(32 GB data set, 100 MB/s)\n";
  Table t({"disks", "method", "total energy (kJ)", "disk energy (kJ)",
           "per-spindle util", "long-latency req/s", "spin-downs"});
  for (std::uint32_t disks : {1u, 2u, 4u}) {
    auto engine = bench::paper_engine();
    engine.disk_count = disks;
    engine.stripe_bytes = 64 * kMiB;
    for (const auto& spec : roster) {
      const auto m = sim::run_simulation(workload, spec, engine);
      t.row()
          .cell(std::to_string(disks))
          .cell(spec.name)
          .cell(bench::num(m.total_j() / 1e3, 1))
          .cell(bench::num(m.disk_energy.total_j() / 1e3, 1))
          .cell(bench::pct(m.utilization()))
          .cell(bench::num(m.long_latency_per_s()))
          .cell(m.disk_shutdowns);
      bench::progress_line(std::to_string(disks) + " disks: " + spec.name +
                           " done");
    }
  }
  std::cout << t.to_string();
  return 0;
}
