// Shared configuration for the paper-reproduction harnesses.
//
// Every bench binary prints the rows/series of one table or figure from
// "Joint Power Management of Memory and Disk Under Performance Constraints"
// (Cai, Pettis, Lu — TCAD'06; extension of the DATE'05 paper). The default
// scale matches the paper (128 GB physical memory, 16 MB banks, 10-minute
// periods); the trace granularity (256 kB pages, 16x SPECWeb99 file sizes)
// bounds trace length so a full 16-policy sweep runs in seconds per point.
//
// Environment knobs, honored by every bench binary:
//   JPM_BENCH_FAST=1  quarters the simulated duration for smoke runs.
//   JPM_THREADS=N     worker threads for the sweep fan-out (run_sweep
//                     synthesizes each point's trace once and replays it
//                     across N workers; 1 = the exact serial path, default =
//                     hardware concurrency). Tables on stdout are
//                     byte-identical for every N; only wall-clock changes.
//   --telemetry=<base> (or JPM_TELEMETRY=<base>) starts a telemetry session
//                     and writes <base>.report.json, <base>.trace.json, and
//                     <base>.periods.csv at exit. JPM_TELEMETRY_CATEGORIES
//                     narrows the runtime categories ("engine,disk,...").
//                     Telemetry never touches stdout: tables stay
//                     byte-identical whether it is on or off.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "jpm/sim/runner.h"
#include "jpm/spec/run.h"
#include "jpm/spec/spec.h"
#include "jpm/telemetry/export.h"
#include "jpm/telemetry/telemetry.h"
#include "jpm/util/parallel.h"
#include "jpm/util/table.h"

namespace jpm::bench {

inline bool fast_mode() { return spec::fast_mode(); }

// Loads the harness's checked-in scenario (scenarios/<name>.json, or
// $JPM_SCENARIO_DIR/<name>.json), validates it, applies the fast-mode
// schedule when JPM_BENCH_FAST=1, and publishes it to telemetry provenance.
// The migrated harnesses draw workloads/roster/engine/cluster from the
// returned Scenario instead of hand-assembling configs.
inline spec::Scenario load_scenario(const std::string& name) {
  spec::Scenario sc = spec::load_for_run(spec::scenario_path(name));
  spec::publish_provenance(sc);
  return sc;
}

// One hour measured after a 20-minute warm-up (quarter scale in fast mode).
inline double measured_duration_s() { return fast_mode() ? 900.0 : 3600.0; }
inline double warm_up_s() { return fast_mode() ? 600.0 : 1200.0; }

// One stderr line recording the knobs in effect, so saved bench logs say how
// they were produced; stdout (the tables) stays byte-identical across knob
// settings.
inline void print_run_banner() {
  std::cerr << "jpm-bench: threads=" << util::default_thread_count()
            << (fast_mode() ? ", fast mode (JPM_BENCH_FAST=1)" : "") << "\n";
}

// Harness entry point: prints the banner and, when --telemetry=<base> or
// JPM_TELEMETRY=<base> is given, starts a telemetry session whose artifacts
// are exported at normal process exit. Everything goes to stderr / files;
// stdout tables are unaffected. Unknown arguments are ignored so harnesses
// stay forgiving about how they are invoked.
inline void init(int argc, char** argv) {
  print_run_banner();
  std::string base;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--telemetry=", 12) == 0) base = a + 12;
  }
  if (base.empty()) {
    if (const char* env = std::getenv("JPM_TELEMETRY")) base = env;
  }
  if (base.empty()) return;

  telemetry::Options options;
  if (const char* cats = std::getenv("JPM_TELEMETRY_CATEGORIES")) {
    options.categories = telemetry::category_mask_from_string(cats);
  }
  telemetry::start(options);
  std::cerr << "jpm-bench: telemetry -> " << base
            << ".{report.json,trace.json,periods.csv}\n";
  static std::string exit_base;  // owned past main() for the atexit hook
  exit_base = base;
  std::atexit([] {
    std::string error;
    if (!telemetry::export_files(exit_base, &error)) {
      std::cerr << "jpm-bench: telemetry export failed: " << error << "\n";
    }
    telemetry::stop();
  });
}

inline workload::SynthesizerConfig paper_workload(std::uint64_t dataset_bytes,
                                                  double byte_rate,
                                                  double popularity,
                                                  std::uint64_t seed = 1) {
  workload::SynthesizerConfig w;
  w.dataset_bytes = dataset_bytes;
  w.byte_rate = byte_rate;
  w.popularity = popularity;
  w.duration_s = warm_up_s() + measured_duration_s();
  w.page_bytes = 256 * kKiB;
  w.file_scale = 16.0;
  // Gentle load variation across periods (paper Fig. 9 reports <5% average
  // period-to-period change with occasional 15-25% spikes).
  w.rate_modulation = 0.12;
  w.modulation_period_s = 3600.0;
  w.seed = seed;
  return w;
}

inline sim::EngineConfig paper_engine() {
  sim::EngineConfig e;
  e.joint.physical_bytes = 128 * kGiB;
  e.joint.unit_bytes = 16 * kMiB;
  e.joint.page_bytes = 256 * kKiB;
  e.joint.period_s = 600.0;
  e.joint.window_s = 0.1;
  e.joint.util_limit = 0.10;
  e.joint.delay_limit = 1e-3;
  e.prefill_cache = true;
  e.warm_up_s = warm_up_s();
  return e;
}

// Renders one metric across the sweep: rows = policies, columns = points.
template <typename Fn>
void print_metric_table(const std::string& title,
                        const std::vector<sim::SweepPoint>& points, Fn metric) {
  std::vector<std::string> headers{"method"};
  for (const auto& p : points) headers.push_back(p.label);
  Table t(headers);
  const std::size_t n_policies = points.front().outcomes.size();
  for (std::size_t i = 0; i < n_policies; ++i) {
    t.row().cell(points.front().outcomes[i].spec.name);
    for (const auto& p : points) t.cell(metric(p.outcomes[i]));
  }
  std::cout << "\n== " << title << " ==\n" << t.to_string();
}

// Formatting delegates to the spec layer so the tables a migrated harness
// prints match `jpm run` on the same scenario byte for byte.
inline std::string pct(double fraction) { return spec::pct(fraction); }
inline std::string ms(double seconds) { return spec::ms(seconds); }
inline std::string num(double v, int precision = 2) {
  return spec::num(v, precision);
}

inline void progress_line(const std::string& line) {
  std::cerr << "  " << line << "\n";
}

}  // namespace jpm::bench
