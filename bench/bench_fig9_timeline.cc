// Reproduces paper Fig. 9: per-period disk request counts and mean idle-
// interval lengths over time at constant memory sizes of 8 and 16 GB (32 GB
// data set). The paper uses this series to justify last-period -> next-period
// prediction: consecutive-period variation is usually below 5%, with
// occasional 15-25% spikes. The long-horizon workload, the zero warm-up
// engine (the paper plots every period, transient included), and the two
// fixed-memory methods come from scenarios/fig9_timeline.json.
#include <cmath>

#include "bench_common.h"

using namespace jpm;

namespace {

void print_timeline(const std::string& label, const sim::RunMetrics& m) {
  Table t({"period", "disk accesses", "mean idle (ms)", "Δ vs prev"});
  std::uint64_t prev = 0;
  bool have_prev = false;
  for (std::size_t i = 0; i < m.periods.size(); ++i) {
    const auto& p = m.periods[i];
    std::string delta = "-";
    if (have_prev && prev > 0) {
      const double d = std::abs(static_cast<double>(p.disk_accesses) -
                                static_cast<double>(prev)) /
                       static_cast<double>(prev);
      delta = bench::pct(d);
    }
    t.row()
        .cell(std::to_string(i + 1))
        .cell(p.disk_accesses)
        .cell(bench::num(p.mean_idle_s * 1e3, 1))
        .cell(delta);
    prev = p.disk_accesses;
    have_prev = true;
  }
  std::cout << "\n== " << label << " ==\n" << t.to_string();
}

}  // namespace

int main(int argc, char** argv) {
  bench::init(argc, argv);
  const auto sc = bench::load_scenario("fig9_timeline");
  const auto& workload = sc.workloads.front().workload;
  std::cout << spec::expand_header(sc) << "\n";
  for (const auto& policy : sc.roster) {
    const auto m = sim::run_simulation(workload, policy, sc.engine);
    const std::string gb =
        std::to_string(policy.fixed_bytes / kGiB) + "GB";
    print_timeline(gb + " memory", m);
    bench::progress_line(gb + " run done");
  }
  return 0;
}
