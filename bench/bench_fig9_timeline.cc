// Reproduces paper Fig. 9: per-period disk request counts and mean idle-
// interval lengths over time at constant memory sizes of 8 and 16 GB (32 GB
// data set). The paper uses this series to justify last-period -> next-period
// prediction: consecutive-period variation is usually below 5%, with
// occasional 15-25% spikes.
#include <cmath>

#include "bench_common.h"

using namespace jpm;

namespace {

void print_timeline(const char* label, const sim::RunMetrics& m) {
  Table t({"period", "disk accesses", "mean idle (ms)", "Δ vs prev"});
  std::uint64_t prev = 0;
  bool have_prev = false;
  for (std::size_t i = 0; i < m.periods.size(); ++i) {
    const auto& p = m.periods[i];
    std::string delta = "-";
    if (have_prev && prev > 0) {
      const double d = std::abs(static_cast<double>(p.disk_accesses) -
                                static_cast<double>(prev)) /
                       static_cast<double>(prev);
      delta = bench::pct(d);
    }
    t.row()
        .cell(std::to_string(i + 1))
        .cell(p.disk_accesses)
        .cell(bench::num(p.mean_idle_s * 1e3, 1))
        .cell(delta);
    prev = p.disk_accesses;
    have_prev = true;
  }
  std::cout << "\n== " << label << " ==\n" << t.to_string();
}

}  // namespace

int main(int argc, char** argv) {
  bench::init(argc, argv);
  // Longer run than the other benches: the timeline itself is the result.
  auto workload = bench::paper_workload(gib(32), 100e6, 0.1);
  workload.duration_s = bench::fast_mode() ? 3600.0 : 4.0 * 3600.0;
  auto engine = bench::paper_engine();
  engine.warm_up_s = 0.0;  // the paper plots every period, transient included

  std::cout << "Fig. 9 — disk requests and idleness across time "
               "(32 GB data set, 100 MB/s)\n";
  for (std::uint64_t g : {8, 16}) {
    const auto m = sim::run_simulation(
        workload, sim::fixed_policy(sim::DiskPolicyKind::kTwoCompetitive,
                                    gib(g)),
        engine);
    print_timeline((std::to_string(g) + "GB memory").c_str(), m);
    bench::progress_line(std::to_string(g) + "GB run done");
  }
  return 0;
}
