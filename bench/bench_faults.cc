// Robustness extension: the joint method under injected faults. The two
// workload classes ("spinup", "cluster"), the base engine, and the cluster
// geometry come from scenarios/faults.json; the fault plans and the
// section-specific engine overrides are the experiment and stay here.
//
// Section 1 sweeps the spin-up failure probability on the paper's server
// configuration widened to a 4-disk striped array: failed spin-up attempts
// burn transition energy and retry delay, and spindles that keep failing
// degrade (their stripes re-route to survivors, served at elevated
// latency). The closed-loop manager guard is enabled, so observed
// constraint violations back the timeout off until periods come back clean.
//
// Section 2 crashes servers of a 4-server partitioned cluster (Poisson
// arrivals per server); a dead server's requests fail over to survivors for
// the outage, then it restarts — the chassis books the forced power cycle.
//
// Expected shapes: energy and latency climb smoothly with the failure
// probability (graceful degradation, no cliffs); the zero-fault rows match
// a run without any fault plan bit-for-bit; every row is deterministic in
// (plan seed, config) regardless of JPM_THREADS.
#include "bench_common.h"
#include "jpm/cluster/cluster.h"

using namespace jpm;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  const auto sc = bench::load_scenario("faults");
  const auto& joint_spec = sc.roster[0];

  {
    // Sparse requests over a cold 4-disk array with a short break-even
    // (transition_j = 7.75 J -> ~1.2 s), so the disks spin-cycle constantly
    // and injected spin-up failures actually fire.
    const auto& workload = sc.workloads[0].workload;
    std::cout << spec::expand_header(sc) << "\n";
    Table t({"p(spinup fail)", "total energy (kJ)", "mean latency ms",
             "spin-up retries", "retry delay s", "degraded spindles",
             "rerouted req", "violated periods", "guard backoffs"});
    for (const double p : {0.0, 0.05, 0.2, 0.5}) {
      auto engine = sc.engine;
      engine.joint.physical_bytes = gib(1);
      engine.joint.disk.transition_j = 7.75;
      engine.disk_count = 4;
      engine.stripe_bytes = workload.page_bytes;
      engine.prefill_cache = false;
      engine.warm_up_s = 0.0;
      if (p > 0.0) {
        engine.fault.enabled = true;
        engine.fault.seed = 7;
        engine.fault.p_spinup_fail = p;
        engine.fault.guard.enabled = true;
      }
      const auto m = sim::run_simulation(workload, joint_spec, engine);
      const auto& r = m.reliability;
      t.row()
          .cell(bench::num(p, 2))
          .cell(bench::num(m.total_j() / 1e3, 1))
          .cell(bench::ms(m.mean_latency_s()))
          .cell(r.spinup_retries)
          .cell(bench::num(r.retry_delay_s, 1))
          .cell(static_cast<std::uint64_t>(r.degraded_spindles))
          .cell(r.rerouted_requests)
          .cell(r.violated_periods)
          .cell(r.guard_backoffs);
      bench::progress_line("p=" + bench::num(p, 2) + " done");
    }
    std::cout << t.to_string();
  }

  {
    const auto& workload = sc.workloads[1].workload;
    std::cout << "\nServer crash injection, 4-server partitioned cluster "
                 "(8 GB data set, 40 MB/s, 150 W chassis, 2-minute outages)\n";
    Table t({"server MTBF", "crashes", "failed-over req", "power cycles",
             "total energy (kJ)", "mean latency ms", "balance index"});
    const std::pair<const char*, double> mtbfs[] = {
        {"none", 0.0},
        {"2 h", 7200.0},
        {"30 min", 1800.0},
    };
    for (const auto& [label, mtbf] : mtbfs) {
      cluster::ClusterConfig cfg = spec::cluster_config(sc);
      if (mtbf > 0.0) {
        cfg.engine.fault.enabled = true;
        cfg.engine.fault.seed = 11;
        cfg.engine.fault.server_mtbf_s = mtbf;
        cfg.engine.fault.server_outage_s = 120.0;
      }
      cluster::ClusterEngine engine(cfg, workload, joint_spec);
      const auto m = engine.run();
      std::uint64_t cycles = 0;
      for (const auto& s : m.servers) cycles += s.power_cycles;
      t.row()
          .cell(label)
          .cell(m.reliability.server_crashes)
          .cell(m.reliability.failed_over_requests)
          .cell(cycles)
          .cell(bench::num(m.total_j() / 1e3, 1))
          .cell(bench::ms(m.mean_latency_s()))
          .cell(bench::num(m.balance_index(), 2));
      bench::progress_line(std::string("mtbf ") + label + " done");
    }
    std::cout << t.to_string();
  }
  return 0;
}
