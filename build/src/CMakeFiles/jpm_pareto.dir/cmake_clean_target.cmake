file(REMOVE_RECURSE
  "libjpm_pareto.a"
)
