# Empty compiler generated dependencies file for jpm_pareto.
# This may be replaced when dependencies are built.
