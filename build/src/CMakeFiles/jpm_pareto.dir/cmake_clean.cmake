file(REMOVE_RECURSE
  "CMakeFiles/jpm_pareto.dir/jpm/pareto/pareto.cc.o"
  "CMakeFiles/jpm_pareto.dir/jpm/pareto/pareto.cc.o.d"
  "CMakeFiles/jpm_pareto.dir/jpm/pareto/timeout_math.cc.o"
  "CMakeFiles/jpm_pareto.dir/jpm/pareto/timeout_math.cc.o.d"
  "libjpm_pareto.a"
  "libjpm_pareto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jpm_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
