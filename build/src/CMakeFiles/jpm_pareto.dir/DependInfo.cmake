
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jpm/pareto/pareto.cc" "src/CMakeFiles/jpm_pareto.dir/jpm/pareto/pareto.cc.o" "gcc" "src/CMakeFiles/jpm_pareto.dir/jpm/pareto/pareto.cc.o.d"
  "/root/repo/src/jpm/pareto/timeout_math.cc" "src/CMakeFiles/jpm_pareto.dir/jpm/pareto/timeout_math.cc.o" "gcc" "src/CMakeFiles/jpm_pareto.dir/jpm/pareto/timeout_math.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/jpm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
