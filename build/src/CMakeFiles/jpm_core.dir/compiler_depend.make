# Empty compiler generated dependencies file for jpm_core.
# This may be replaced when dependencies are built.
