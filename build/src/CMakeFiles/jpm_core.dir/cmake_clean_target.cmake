file(REMOVE_RECURSE
  "libjpm_core.a"
)
