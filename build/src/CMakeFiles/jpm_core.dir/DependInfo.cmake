
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jpm/core/candidate_search.cc" "src/CMakeFiles/jpm_core.dir/jpm/core/candidate_search.cc.o" "gcc" "src/CMakeFiles/jpm_core.dir/jpm/core/candidate_search.cc.o.d"
  "/root/repo/src/jpm/core/joint_power_manager.cc" "src/CMakeFiles/jpm_core.dir/jpm/core/joint_power_manager.cc.o" "gcc" "src/CMakeFiles/jpm_core.dir/jpm/core/joint_power_manager.cc.o.d"
  "/root/repo/src/jpm/core/period_stats.cc" "src/CMakeFiles/jpm_core.dir/jpm/core/period_stats.cc.o" "gcc" "src/CMakeFiles/jpm_core.dir/jpm/core/period_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/jpm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jpm_pareto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jpm_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jpm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jpm_disk.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
