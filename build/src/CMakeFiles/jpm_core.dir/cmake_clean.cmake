file(REMOVE_RECURSE
  "CMakeFiles/jpm_core.dir/jpm/core/candidate_search.cc.o"
  "CMakeFiles/jpm_core.dir/jpm/core/candidate_search.cc.o.d"
  "CMakeFiles/jpm_core.dir/jpm/core/joint_power_manager.cc.o"
  "CMakeFiles/jpm_core.dir/jpm/core/joint_power_manager.cc.o.d"
  "CMakeFiles/jpm_core.dir/jpm/core/period_stats.cc.o"
  "CMakeFiles/jpm_core.dir/jpm/core/period_stats.cc.o.d"
  "libjpm_core.a"
  "libjpm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jpm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
