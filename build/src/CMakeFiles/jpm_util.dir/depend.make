# Empty dependencies file for jpm_util.
# This may be replaced when dependencies are built.
