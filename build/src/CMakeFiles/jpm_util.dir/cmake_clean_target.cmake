file(REMOVE_RECURSE
  "libjpm_util.a"
)
