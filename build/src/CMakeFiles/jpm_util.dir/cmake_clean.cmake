file(REMOVE_RECURSE
  "CMakeFiles/jpm_util.dir/jpm/util/rng.cc.o"
  "CMakeFiles/jpm_util.dir/jpm/util/rng.cc.o.d"
  "CMakeFiles/jpm_util.dir/jpm/util/stats.cc.o"
  "CMakeFiles/jpm_util.dir/jpm/util/stats.cc.o.d"
  "CMakeFiles/jpm_util.dir/jpm/util/table.cc.o"
  "CMakeFiles/jpm_util.dir/jpm/util/table.cc.o.d"
  "libjpm_util.a"
  "libjpm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jpm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
