file(REMOVE_RECURSE
  "CMakeFiles/jpm_cluster.dir/jpm/cluster/cluster.cc.o"
  "CMakeFiles/jpm_cluster.dir/jpm/cluster/cluster.cc.o.d"
  "libjpm_cluster.a"
  "libjpm_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jpm_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
