# Empty compiler generated dependencies file for jpm_cluster.
# This may be replaced when dependencies are built.
