file(REMOVE_RECURSE
  "libjpm_cluster.a"
)
