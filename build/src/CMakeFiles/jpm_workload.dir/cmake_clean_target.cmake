file(REMOVE_RECURSE
  "libjpm_workload.a"
)
