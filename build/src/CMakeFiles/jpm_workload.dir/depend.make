# Empty dependencies file for jpm_workload.
# This may be replaced when dependencies are built.
