
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jpm/workload/fileset.cc" "src/CMakeFiles/jpm_workload.dir/jpm/workload/fileset.cc.o" "gcc" "src/CMakeFiles/jpm_workload.dir/jpm/workload/fileset.cc.o.d"
  "/root/repo/src/jpm/workload/popularity.cc" "src/CMakeFiles/jpm_workload.dir/jpm/workload/popularity.cc.o" "gcc" "src/CMakeFiles/jpm_workload.dir/jpm/workload/popularity.cc.o.d"
  "/root/repo/src/jpm/workload/synthesizer.cc" "src/CMakeFiles/jpm_workload.dir/jpm/workload/synthesizer.cc.o" "gcc" "src/CMakeFiles/jpm_workload.dir/jpm/workload/synthesizer.cc.o.d"
  "/root/repo/src/jpm/workload/trace.cc" "src/CMakeFiles/jpm_workload.dir/jpm/workload/trace.cc.o" "gcc" "src/CMakeFiles/jpm_workload.dir/jpm/workload/trace.cc.o.d"
  "/root/repo/src/jpm/workload/trace_io.cc" "src/CMakeFiles/jpm_workload.dir/jpm/workload/trace_io.cc.o" "gcc" "src/CMakeFiles/jpm_workload.dir/jpm/workload/trace_io.cc.o.d"
  "/root/repo/src/jpm/workload/trace_stats.cc" "src/CMakeFiles/jpm_workload.dir/jpm/workload/trace_stats.cc.o" "gcc" "src/CMakeFiles/jpm_workload.dir/jpm/workload/trace_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/jpm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jpm_cache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
