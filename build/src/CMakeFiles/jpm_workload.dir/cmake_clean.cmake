file(REMOVE_RECURSE
  "CMakeFiles/jpm_workload.dir/jpm/workload/fileset.cc.o"
  "CMakeFiles/jpm_workload.dir/jpm/workload/fileset.cc.o.d"
  "CMakeFiles/jpm_workload.dir/jpm/workload/popularity.cc.o"
  "CMakeFiles/jpm_workload.dir/jpm/workload/popularity.cc.o.d"
  "CMakeFiles/jpm_workload.dir/jpm/workload/synthesizer.cc.o"
  "CMakeFiles/jpm_workload.dir/jpm/workload/synthesizer.cc.o.d"
  "CMakeFiles/jpm_workload.dir/jpm/workload/trace.cc.o"
  "CMakeFiles/jpm_workload.dir/jpm/workload/trace.cc.o.d"
  "CMakeFiles/jpm_workload.dir/jpm/workload/trace_io.cc.o"
  "CMakeFiles/jpm_workload.dir/jpm/workload/trace_io.cc.o.d"
  "CMakeFiles/jpm_workload.dir/jpm/workload/trace_stats.cc.o"
  "CMakeFiles/jpm_workload.dir/jpm/workload/trace_stats.cc.o.d"
  "libjpm_workload.a"
  "libjpm_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jpm_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
