file(REMOVE_RECURSE
  "CMakeFiles/jpm_cache.dir/jpm/cache/idle_sweep.cc.o"
  "CMakeFiles/jpm_cache.dir/jpm/cache/idle_sweep.cc.o.d"
  "CMakeFiles/jpm_cache.dir/jpm/cache/lru_cache.cc.o"
  "CMakeFiles/jpm_cache.dir/jpm/cache/lru_cache.cc.o.d"
  "CMakeFiles/jpm_cache.dir/jpm/cache/miss_curve.cc.o"
  "CMakeFiles/jpm_cache.dir/jpm/cache/miss_curve.cc.o.d"
  "CMakeFiles/jpm_cache.dir/jpm/cache/partitioned_lru.cc.o"
  "CMakeFiles/jpm_cache.dir/jpm/cache/partitioned_lru.cc.o.d"
  "CMakeFiles/jpm_cache.dir/jpm/cache/stack_distance.cc.o"
  "CMakeFiles/jpm_cache.dir/jpm/cache/stack_distance.cc.o.d"
  "libjpm_cache.a"
  "libjpm_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jpm_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
