
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jpm/cache/idle_sweep.cc" "src/CMakeFiles/jpm_cache.dir/jpm/cache/idle_sweep.cc.o" "gcc" "src/CMakeFiles/jpm_cache.dir/jpm/cache/idle_sweep.cc.o.d"
  "/root/repo/src/jpm/cache/lru_cache.cc" "src/CMakeFiles/jpm_cache.dir/jpm/cache/lru_cache.cc.o" "gcc" "src/CMakeFiles/jpm_cache.dir/jpm/cache/lru_cache.cc.o.d"
  "/root/repo/src/jpm/cache/miss_curve.cc" "src/CMakeFiles/jpm_cache.dir/jpm/cache/miss_curve.cc.o" "gcc" "src/CMakeFiles/jpm_cache.dir/jpm/cache/miss_curve.cc.o.d"
  "/root/repo/src/jpm/cache/partitioned_lru.cc" "src/CMakeFiles/jpm_cache.dir/jpm/cache/partitioned_lru.cc.o" "gcc" "src/CMakeFiles/jpm_cache.dir/jpm/cache/partitioned_lru.cc.o.d"
  "/root/repo/src/jpm/cache/stack_distance.cc" "src/CMakeFiles/jpm_cache.dir/jpm/cache/stack_distance.cc.o" "gcc" "src/CMakeFiles/jpm_cache.dir/jpm/cache/stack_distance.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/jpm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
