# Empty compiler generated dependencies file for jpm_cache.
# This may be replaced when dependencies are built.
