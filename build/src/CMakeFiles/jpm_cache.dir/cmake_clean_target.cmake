file(REMOVE_RECURSE
  "libjpm_cache.a"
)
