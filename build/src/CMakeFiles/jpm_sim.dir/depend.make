# Empty dependencies file for jpm_sim.
# This may be replaced when dependencies are built.
