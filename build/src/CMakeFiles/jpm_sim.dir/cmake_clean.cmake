file(REMOVE_RECURSE
  "CMakeFiles/jpm_sim.dir/jpm/sim/engine.cc.o"
  "CMakeFiles/jpm_sim.dir/jpm/sim/engine.cc.o.d"
  "CMakeFiles/jpm_sim.dir/jpm/sim/metrics.cc.o"
  "CMakeFiles/jpm_sim.dir/jpm/sim/metrics.cc.o.d"
  "CMakeFiles/jpm_sim.dir/jpm/sim/policies.cc.o"
  "CMakeFiles/jpm_sim.dir/jpm/sim/policies.cc.o.d"
  "CMakeFiles/jpm_sim.dir/jpm/sim/runner.cc.o"
  "CMakeFiles/jpm_sim.dir/jpm/sim/runner.cc.o.d"
  "libjpm_sim.a"
  "libjpm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jpm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
