file(REMOVE_RECURSE
  "libjpm_sim.a"
)
