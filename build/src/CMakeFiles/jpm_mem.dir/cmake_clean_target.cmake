file(REMOVE_RECURSE
  "libjpm_mem.a"
)
