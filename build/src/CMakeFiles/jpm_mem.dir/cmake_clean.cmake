file(REMOVE_RECURSE
  "CMakeFiles/jpm_mem.dir/jpm/mem/bank_set.cc.o"
  "CMakeFiles/jpm_mem.dir/jpm/mem/bank_set.cc.o.d"
  "CMakeFiles/jpm_mem.dir/jpm/mem/energy_meter.cc.o"
  "CMakeFiles/jpm_mem.dir/jpm/mem/energy_meter.cc.o.d"
  "CMakeFiles/jpm_mem.dir/jpm/mem/rdram_model.cc.o"
  "CMakeFiles/jpm_mem.dir/jpm/mem/rdram_model.cc.o.d"
  "libjpm_mem.a"
  "libjpm_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jpm_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
