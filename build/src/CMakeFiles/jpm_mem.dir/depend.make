# Empty dependencies file for jpm_mem.
# This may be replaced when dependencies are built.
