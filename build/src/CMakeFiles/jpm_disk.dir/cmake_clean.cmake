file(REMOVE_RECURSE
  "CMakeFiles/jpm_disk.dir/jpm/disk/disk_array.cc.o"
  "CMakeFiles/jpm_disk.dir/jpm/disk/disk_array.cc.o.d"
  "CMakeFiles/jpm_disk.dir/jpm/disk/disk_model.cc.o"
  "CMakeFiles/jpm_disk.dir/jpm/disk/disk_model.cc.o.d"
  "CMakeFiles/jpm_disk.dir/jpm/disk/disk_power.cc.o"
  "CMakeFiles/jpm_disk.dir/jpm/disk/disk_power.cc.o.d"
  "CMakeFiles/jpm_disk.dir/jpm/disk/disk_queue.cc.o"
  "CMakeFiles/jpm_disk.dir/jpm/disk/disk_queue.cc.o.d"
  "CMakeFiles/jpm_disk.dir/jpm/disk/multispeed.cc.o"
  "CMakeFiles/jpm_disk.dir/jpm/disk/multispeed.cc.o.d"
  "CMakeFiles/jpm_disk.dir/jpm/disk/offline.cc.o"
  "CMakeFiles/jpm_disk.dir/jpm/disk/offline.cc.o.d"
  "CMakeFiles/jpm_disk.dir/jpm/disk/timeout_policy.cc.o"
  "CMakeFiles/jpm_disk.dir/jpm/disk/timeout_policy.cc.o.d"
  "libjpm_disk.a"
  "libjpm_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jpm_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
