# Empty compiler generated dependencies file for jpm_disk.
# This may be replaced when dependencies are built.
