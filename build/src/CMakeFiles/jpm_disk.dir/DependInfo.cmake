
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jpm/disk/disk_array.cc" "src/CMakeFiles/jpm_disk.dir/jpm/disk/disk_array.cc.o" "gcc" "src/CMakeFiles/jpm_disk.dir/jpm/disk/disk_array.cc.o.d"
  "/root/repo/src/jpm/disk/disk_model.cc" "src/CMakeFiles/jpm_disk.dir/jpm/disk/disk_model.cc.o" "gcc" "src/CMakeFiles/jpm_disk.dir/jpm/disk/disk_model.cc.o.d"
  "/root/repo/src/jpm/disk/disk_power.cc" "src/CMakeFiles/jpm_disk.dir/jpm/disk/disk_power.cc.o" "gcc" "src/CMakeFiles/jpm_disk.dir/jpm/disk/disk_power.cc.o.d"
  "/root/repo/src/jpm/disk/disk_queue.cc" "src/CMakeFiles/jpm_disk.dir/jpm/disk/disk_queue.cc.o" "gcc" "src/CMakeFiles/jpm_disk.dir/jpm/disk/disk_queue.cc.o.d"
  "/root/repo/src/jpm/disk/multispeed.cc" "src/CMakeFiles/jpm_disk.dir/jpm/disk/multispeed.cc.o" "gcc" "src/CMakeFiles/jpm_disk.dir/jpm/disk/multispeed.cc.o.d"
  "/root/repo/src/jpm/disk/offline.cc" "src/CMakeFiles/jpm_disk.dir/jpm/disk/offline.cc.o" "gcc" "src/CMakeFiles/jpm_disk.dir/jpm/disk/offline.cc.o.d"
  "/root/repo/src/jpm/disk/timeout_policy.cc" "src/CMakeFiles/jpm_disk.dir/jpm/disk/timeout_policy.cc.o" "gcc" "src/CMakeFiles/jpm_disk.dir/jpm/disk/timeout_policy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/jpm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jpm_pareto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
