file(REMOVE_RECURSE
  "libjpm_disk.a"
)
