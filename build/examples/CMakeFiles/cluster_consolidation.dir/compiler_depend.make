# Empty compiler generated dependencies file for cluster_consolidation.
# This may be replaced when dependencies are built.
