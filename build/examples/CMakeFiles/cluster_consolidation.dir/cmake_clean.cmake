file(REMOVE_RECURSE
  "CMakeFiles/cluster_consolidation.dir/cluster_consolidation.cpp.o"
  "CMakeFiles/cluster_consolidation.dir/cluster_consolidation.cpp.o.d"
  "cluster_consolidation"
  "cluster_consolidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_consolidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
