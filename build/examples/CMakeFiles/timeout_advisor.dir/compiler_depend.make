# Empty compiler generated dependencies file for timeout_advisor.
# This may be replaced when dependencies are built.
