file(REMOVE_RECURSE
  "CMakeFiles/timeout_advisor.dir/timeout_advisor.cpp.o"
  "CMakeFiles/timeout_advisor.dir/timeout_advisor.cpp.o.d"
  "timeout_advisor"
  "timeout_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timeout_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
