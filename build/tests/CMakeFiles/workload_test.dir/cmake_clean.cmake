file(REMOVE_RECURSE
  "CMakeFiles/workload_test.dir/workload/fileset_test.cc.o"
  "CMakeFiles/workload_test.dir/workload/fileset_test.cc.o.d"
  "CMakeFiles/workload_test.dir/workload/popularity_test.cc.o"
  "CMakeFiles/workload_test.dir/workload/popularity_test.cc.o.d"
  "CMakeFiles/workload_test.dir/workload/synthesizer_test.cc.o"
  "CMakeFiles/workload_test.dir/workload/synthesizer_test.cc.o.d"
  "CMakeFiles/workload_test.dir/workload/trace_io_test.cc.o"
  "CMakeFiles/workload_test.dir/workload/trace_io_test.cc.o.d"
  "CMakeFiles/workload_test.dir/workload/trace_stats_test.cc.o"
  "CMakeFiles/workload_test.dir/workload/trace_stats_test.cc.o.d"
  "workload_test"
  "workload_test.pdb"
  "workload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
