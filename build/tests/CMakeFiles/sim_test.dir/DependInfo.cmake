
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/engine_test.cc" "tests/CMakeFiles/sim_test.dir/sim/engine_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/engine_test.cc.o.d"
  "/root/repo/tests/sim/metrics_test.cc" "tests/CMakeFiles/sim_test.dir/sim/metrics_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/metrics_test.cc.o.d"
  "/root/repo/tests/sim/policies_test.cc" "tests/CMakeFiles/sim_test.dir/sim/policies_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/policies_test.cc.o.d"
  "/root/repo/tests/sim/policy_property_test.cc" "tests/CMakeFiles/sim_test.dir/sim/policy_property_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/policy_property_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/jpm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jpm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jpm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jpm_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jpm_pareto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jpm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jpm_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jpm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
