
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/disk/disk_array_test.cc" "tests/CMakeFiles/disk_test.dir/disk/disk_array_test.cc.o" "gcc" "tests/CMakeFiles/disk_test.dir/disk/disk_array_test.cc.o.d"
  "/root/repo/tests/disk/disk_model_test.cc" "tests/CMakeFiles/disk_test.dir/disk/disk_model_test.cc.o" "gcc" "tests/CMakeFiles/disk_test.dir/disk/disk_model_test.cc.o.d"
  "/root/repo/tests/disk/disk_power_test.cc" "tests/CMakeFiles/disk_test.dir/disk/disk_power_test.cc.o" "gcc" "tests/CMakeFiles/disk_test.dir/disk/disk_power_test.cc.o.d"
  "/root/repo/tests/disk/disk_queue_test.cc" "tests/CMakeFiles/disk_test.dir/disk/disk_queue_test.cc.o" "gcc" "tests/CMakeFiles/disk_test.dir/disk/disk_queue_test.cc.o.d"
  "/root/repo/tests/disk/multispeed_test.cc" "tests/CMakeFiles/disk_test.dir/disk/multispeed_test.cc.o" "gcc" "tests/CMakeFiles/disk_test.dir/disk/multispeed_test.cc.o.d"
  "/root/repo/tests/disk/offline_test.cc" "tests/CMakeFiles/disk_test.dir/disk/offline_test.cc.o" "gcc" "tests/CMakeFiles/disk_test.dir/disk/offline_test.cc.o.d"
  "/root/repo/tests/disk/timeout_policy_test.cc" "tests/CMakeFiles/disk_test.dir/disk/timeout_policy_test.cc.o" "gcc" "tests/CMakeFiles/disk_test.dir/disk/timeout_policy_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/jpm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jpm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jpm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jpm_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jpm_pareto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jpm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jpm_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jpm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
