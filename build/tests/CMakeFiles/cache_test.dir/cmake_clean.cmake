file(REMOVE_RECURSE
  "CMakeFiles/cache_test.dir/cache/idle_sweep_test.cc.o"
  "CMakeFiles/cache_test.dir/cache/idle_sweep_test.cc.o.d"
  "CMakeFiles/cache_test.dir/cache/lru_cache_test.cc.o"
  "CMakeFiles/cache_test.dir/cache/lru_cache_test.cc.o.d"
  "CMakeFiles/cache_test.dir/cache/miss_curve_test.cc.o"
  "CMakeFiles/cache_test.dir/cache/miss_curve_test.cc.o.d"
  "CMakeFiles/cache_test.dir/cache/partitioned_lru_test.cc.o"
  "CMakeFiles/cache_test.dir/cache/partitioned_lru_test.cc.o.d"
  "CMakeFiles/cache_test.dir/cache/stack_distance_test.cc.o"
  "CMakeFiles/cache_test.dir/cache/stack_distance_test.cc.o.d"
  "cache_test"
  "cache_test.pdb"
  "cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
