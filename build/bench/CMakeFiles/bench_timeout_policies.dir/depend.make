# Empty dependencies file for bench_timeout_policies.
# This may be replaced when dependencies are built.
