file(REMOVE_RECURSE
  "CMakeFiles/bench_timeout_policies.dir/bench_timeout_policies.cc.o"
  "CMakeFiles/bench_timeout_policies.dir/bench_timeout_policies.cc.o.d"
  "bench_timeout_policies"
  "bench_timeout_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_timeout_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
