# Empty dependencies file for bench_fig7_dataset.
# This may be replaced when dependencies are built.
