file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_dataset.dir/bench_fig7_dataset.cc.o"
  "CMakeFiles/bench_fig7_dataset.dir/bench_fig7_dataset.cc.o.d"
  "bench_fig7_dataset"
  "bench_fig7_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
