file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_drpm.dir/bench_ext_drpm.cc.o"
  "CMakeFiles/bench_ext_drpm.dir/bench_ext_drpm.cc.o.d"
  "bench_ext_drpm"
  "bench_ext_drpm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_drpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
