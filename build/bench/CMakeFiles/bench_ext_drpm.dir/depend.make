# Empty dependencies file for bench_ext_drpm.
# This may be replaced when dependencies are built.
