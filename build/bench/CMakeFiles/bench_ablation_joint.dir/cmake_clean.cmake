file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_joint.dir/bench_ablation_joint.cc.o"
  "CMakeFiles/bench_ablation_joint.dir/bench_ablation_joint.cc.o.d"
  "bench_ablation_joint"
  "bench_ablation_joint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_joint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
