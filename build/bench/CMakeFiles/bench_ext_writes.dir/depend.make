# Empty dependencies file for bench_ext_writes.
# This may be replaced when dependencies are built.
