file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_writes.dir/bench_ext_writes.cc.o"
  "CMakeFiles/bench_ext_writes.dir/bench_ext_writes.cc.o.d"
  "bench_ext_writes"
  "bench_ext_writes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_writes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
