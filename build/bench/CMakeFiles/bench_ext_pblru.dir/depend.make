# Empty dependencies file for bench_ext_pblru.
# This may be replaced when dependencies are built.
