file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_pblru.dir/bench_ext_pblru.cc.o"
  "CMakeFiles/bench_ext_pblru.dir/bench_ext_pblru.cc.o.d"
  "bench_ext_pblru"
  "bench_ext_pblru.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_pblru.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
