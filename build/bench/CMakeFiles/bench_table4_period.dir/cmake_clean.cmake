file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_period.dir/bench_table4_period.cc.o"
  "CMakeFiles/bench_table4_period.dir/bench_table4_period.cc.o.d"
  "bench_table4_period"
  "bench_table4_period.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_period.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
