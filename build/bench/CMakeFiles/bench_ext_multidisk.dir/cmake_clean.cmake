file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_multidisk.dir/bench_ext_multidisk.cc.o"
  "CMakeFiles/bench_ext_multidisk.dir/bench_ext_multidisk.cc.o.d"
  "bench_ext_multidisk"
  "bench_ext_multidisk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_multidisk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
