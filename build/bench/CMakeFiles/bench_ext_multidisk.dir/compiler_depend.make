# Empty compiler generated dependencies file for bench_ext_multidisk.
# This may be replaced when dependencies are built.
