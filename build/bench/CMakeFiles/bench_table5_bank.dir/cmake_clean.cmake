file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_bank.dir/bench_table5_bank.cc.o"
  "CMakeFiles/bench_table5_bank.dir/bench_table5_bank.cc.o.d"
  "bench_table5_bank"
  "bench_table5_bank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_bank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
