# Empty dependencies file for bench_table5_bank.
# This may be replaced when dependencies are built.
