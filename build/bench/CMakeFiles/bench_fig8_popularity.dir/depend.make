# Empty dependencies file for bench_fig8_popularity.
# This may be replaced when dependencies are built.
