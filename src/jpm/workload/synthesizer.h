// Workload synthesizer (paper Section V-A).
//
// Produces page-granular disk-cache access traces with three independently
// controllable characteristics — exactly the knobs the paper sweeps:
//   * data-set size   (files scaled per the paper's sqrt rule),
//   * data rate       (bytes/s offered to the disk cache),
//   * popularity      (fraction of bytes receiving 90% of requests).
//
// Requests arrive as a Poisson process whose rate is slowly modulated
// (sinusoid + per-minute noise) so consecutive 10-minute periods differ the
// way Fig. 9 of the paper shows; each request reads one whole file (pages in
// on-disk order, the first flagged `request_start`).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "jpm/util/rng.h"
#include "jpm/util/units.h"
#include "jpm/workload/fileset.h"
#include "jpm/workload/popularity.h"
#include "jpm/workload/trace.h"

namespace jpm::workload {

struct SynthesizerConfig {
  std::uint64_t dataset_bytes = gib(16);
  double byte_rate = 100e6;     // offered load, bytes/s (paper: 5-200 MB/s)
  double popularity = 0.1;      // paper: 0.05-0.6
  double duration_s = 3600.0;
  std::uint64_t page_bytes = 256 * kKiB;
  double file_scale = 16.0;     // see FileSetConfig::file_scale
  // Sinusoidal rate modulation amplitude (fraction of byte_rate) and period;
  // 0 disables modulation.
  double rate_modulation = 0.2;
  double modulation_period_s = 1800.0;
  // Spacing between consecutive page accesses of one request.
  double intra_request_spacing_s = 2e-3;
  // Probability that a request repeats a recently requested file
  // (recency-biased) instead of drawing fresh from the popularity
  // distribution. Real server traces carry such short-term reuse on top of
  // static popularity; 0 disables it.
  double temporal_locality = 0.0;
  // Fraction of requests that are writes (uploads, logs): the request's
  // pages are overwritten in the cache and flushed to disk later.
  double write_fraction = 0.0;
  // Number of recent requests the locality draw can repeat from.
  std::size_t locality_window = 8192;
  std::uint64_t seed = 1;

  // Rejects unusable workload knobs (zero page_bytes/dataset/duration,
  // probabilities outside [0, 1], negative rates) with a descriptive
  // std::invalid_argument. TraceGenerator calls it on construction.
  void validate() const;
};

class TraceGenerator {
 public:
  explicit TraceGenerator(const SynthesizerConfig& config);
  ~TraceGenerator();
  TraceGenerator(TraceGenerator&&) noexcept;
  TraceGenerator& operator=(TraceGenerator&&) noexcept;

  // Next event in nondecreasing time order; nullopt once duration elapsed.
  std::optional<TraceEvent> next();

  // Restarts the stream from t = 0 with the identical pseudo-random sequence.
  void reset();

  const FileSet& files() const;
  const PopularityModel& popularity() const;
  const SynthesizerConfig& config() const;
  // Popularity-weighted expected bytes per request.
  double mean_request_bytes() const;
  // Total pages in the data set (linear layout).
  std::uint64_t total_pages() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// Materializes a whole trace (convenience for tests and small runs).
std::vector<TraceEvent> synthesize(const SynthesizerConfig& config);

// Materializes the configured workload once into an immutable Trace with all
// derived fields (total_pages, duration) filled from the generator, so the
// result can be replayed by any number of engine runs — concurrently and
// without copying — with metrics bit-identical to generator-driven runs.
Trace synthesize_trace(const SynthesizerConfig& config);

}  // namespace jpm::workload
