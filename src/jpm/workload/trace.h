// Disk-cache access trace: the stream every power-management method consumes.
#pragma once

#include <cstdint>
#include <vector>

namespace jpm::workload {

// One page-granular access to the disk cache.
struct TraceEvent {
  double time_s = 0.0;
  std::uint64_t page = 0;
  // True for the first page of a request: a disk read for this page pays seek
  // and rotation; subsequent pages of the same request are sequential.
  bool request_start = false;
  // Write access: the page is overwritten in the cache (no disk read) and
  // becomes dirty; a flush daemon writes it back later.
  bool is_write = false;
};

// Materialized trace plus summary properties used by harness reporting.
struct TraceSummary {
  std::uint64_t events = 0;
  std::uint64_t requests = 0;
  std::uint64_t writes = 0;
  std::uint64_t distinct_pages = 0;
  double duration_s = 0.0;
  double bytes_accessed = 0.0;  // events * page_bytes
};

TraceSummary summarize(const std::vector<TraceEvent>& trace,
                       std::uint64_t page_bytes);

}  // namespace jpm::workload
