// Disk-cache access trace: the stream every power-management method consumes.
#pragma once

#include <cstdint>
#include <vector>

namespace jpm::workload {

// One page-granular access to the disk cache.
struct TraceEvent {
  double time_s = 0.0;
  std::uint64_t page = 0;
  // True for the first page of a request: a disk read for this page pays seek
  // and rotation; subsequent pages of the same request are sequential.
  bool request_start = false;
  // Write access: the page is overwritten in the cache (no disk read) and
  // becomes dirty; a flush daemon writes it back later.
  bool is_write = false;
};

// A fully materialized, immutable trace: synthesized (or loaded) once and
// then shared read-only by any number of concurrent engine replays. The
// derived fields are filled by synthesize_trace (synthesizer.h) so a replay
// is bit-identical to a generator-driven run of the same config.
struct Trace {
  std::vector<TraceEvent> events;  // time-sorted
  std::uint64_t page_bytes = 0;
  std::uint64_t total_pages = 0;   // data-set size in pages (linear layout)
  double duration_s = 0.0;         // simulated duration
};

// Materialized trace plus summary properties used by harness reporting.
struct TraceSummary {
  std::uint64_t events = 0;
  std::uint64_t requests = 0;
  std::uint64_t writes = 0;
  std::uint64_t distinct_pages = 0;
  double duration_s = 0.0;
  double bytes_accessed = 0.0;  // events * page_bytes
};

TraceSummary summarize(const std::vector<TraceEvent>& trace,
                       std::uint64_t page_bytes);

}  // namespace jpm::workload
