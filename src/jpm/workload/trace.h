// Disk-cache access trace: the stream every power-management method consumes.
#pragma once

#include <cstdint>
#include <vector>

namespace jpm::workload {

// One page-granular access to the disk cache.
struct TraceEvent {
  double time_s = 0.0;
  std::uint64_t page = 0;
  // True for the first page of a request: a disk read for this page pays seek
  // and rotation; subsequent pages of the same request are sequential.
  bool request_start = false;
  // Write access: the page is overwritten in the cache (no disk read) and
  // becomes dirty; a flush daemon writes it back later.
  bool is_write = false;
};

// Flag bits of Trace::flags (matching the binary trace format's flag byte).
inline constexpr std::uint8_t kTraceFlagStart = 1u << 0;
inline constexpr std::uint8_t kTraceFlagWrite = 1u << 1;

// A fully materialized, immutable trace: synthesized (or loaded) once and
// then shared read-only by any number of concurrent engine replays. The
// derived fields are filled by synthesize_trace (synthesizer.h) so a replay
// is bit-identical to a generator-driven run of the same config.
//
// Events are stored structure-of-arrays: the replay hot loop streams
// timestamps, page ids, and op flags as independent densely packed lanes
// (the batched engine reads a run of each per batch), instead of striding
// through 24-byte AoS records for fields it may not need. All three lanes
// always have equal length and share one index.
struct Trace {
  std::vector<double> times;          // time-sorted
  std::vector<std::uint64_t> pages;
  std::vector<std::uint8_t> flags;    // kTraceFlagStart | kTraceFlagWrite
  std::uint64_t page_bytes = 0;
  std::uint64_t total_pages = 0;   // data-set size in pages (linear layout)
  double duration_s = 0.0;         // simulated duration

  std::size_t size() const { return times.size(); }
  bool empty() const { return times.empty(); }
  void reserve(std::size_t n) {
    times.reserve(n);
    pages.reserve(n);
    flags.reserve(n);
  }
  void push_back(const TraceEvent& e) {
    times.push_back(e.time_s);
    pages.push_back(e.page);
    flags.push_back(
        static_cast<std::uint8_t>((e.request_start ? kTraceFlagStart : 0) |
                                  (e.is_write ? kTraceFlagWrite : 0)));
  }
  // By-value event view for callers indexing the AoS way.
  TraceEvent event(std::size_t i) const {
    return TraceEvent{times[i], pages[i], (flags[i] & kTraceFlagStart) != 0,
                      (flags[i] & kTraceFlagWrite) != 0};
  }
  // AoS materialization (persistence, interop with vector<TraceEvent> APIs).
  std::vector<TraceEvent> to_events() const;
};

// Builds a Trace from an AoS event vector plus the derived fields.
Trace trace_from_events(const std::vector<TraceEvent>& events,
                        std::uint64_t page_bytes, std::uint64_t total_pages,
                        double duration_s);

// Materialized trace plus summary properties used by harness reporting.
struct TraceSummary {
  std::uint64_t events = 0;
  std::uint64_t requests = 0;
  std::uint64_t writes = 0;
  std::uint64_t distinct_pages = 0;
  double duration_s = 0.0;
  double bytes_accessed = 0.0;  // events * page_bytes
};

TraceSummary summarize(const std::vector<TraceEvent>& trace,
                       std::uint64_t page_bytes);
TraceSummary summarize(const Trace& trace);

}  // namespace jpm::workload
