#include "jpm/workload/synthesizer.h"

#include <cmath>
#include <queue>
#include <stdexcept>
#include <string>

#include "jpm/util/check.h"

namespace jpm::workload {

void SynthesizerConfig::validate() const {
  const auto bad = [](const std::string& why) {
    throw std::invalid_argument("invalid SynthesizerConfig: " + why);
  };
  if (dataset_bytes == 0) bad("dataset_bytes must be positive");
  if (page_bytes == 0) bad("page_bytes must be positive");
  if (!(byte_rate > 0.0) || !std::isfinite(byte_rate)) {
    bad("byte_rate must be positive and finite");
  }
  if (!(duration_s > 0.0) || !std::isfinite(duration_s)) {
    bad("duration_s must be positive and finite");
  }
  if (popularity < 0.0 || popularity > 1.0) {
    bad("popularity must lie in [0, 1]");
  }
  if (!(file_scale > 0.0)) bad("file_scale must be positive");
  if (rate_modulation < 0.0) bad("rate_modulation must be nonnegative");
  if (modulation_period_s < 0.0) {
    bad("modulation_period_s must be nonnegative (0 disables)");
  }
  if (intra_request_spacing_s < 0.0) {
    bad("intra_request_spacing_s must be nonnegative");
  }
  if (temporal_locality < 0.0 || temporal_locality > 1.0) {
    bad("temporal_locality must lie in [0, 1]");
  }
  if (write_fraction < 0.0 || write_fraction > 1.0) {
    bad("write_fraction must lie in [0, 1]");
  }
}

namespace {

// A page access waiting to be emitted; requests overlap, so a min-heap on
// time interleaves them into one nondecreasing stream.
struct Pending {
  double time;
  std::uint64_t page;
  std::uint32_t pages_left;  // further pages after this one
  bool request_start;
  bool is_write;
};
struct PendingLater {
  bool operator()(const Pending& a, const Pending& b) const {
    return a.time > b.time;
  }
};

}  // namespace

struct TraceGenerator::Impl {
  SynthesizerConfig config;
  FileSet files;
  PopularityModel popularity;
  Rng rng;
  double mean_request_bytes = 0.0;

  std::priority_queue<Pending, std::vector<Pending>, PendingLater> heap;
  double next_arrival = 0.0;
  bool arrivals_done = false;
  // Ring buffer of recent request file indices for the temporal-locality
  // draw (duplicates intended: repetition compounds recency weight).
  std::vector<std::uint32_t> recent;
  std::size_t recent_next = 0;

  explicit Impl(const SynthesizerConfig& cfg)
      : config((cfg.validate(), cfg)),
        files(FileSetConfig{cfg.dataset_bytes, gib(4), cfg.file_scale,
                            cfg.seed}),
        popularity(files, PopularityConfig{cfg.popularity, 0.9, cfg.seed}),
        rng(cfg.seed * 0x2545f4914f6cdd1dull + 0x9e37) {
    for (std::size_t i = 0; i < files.file_count(); ++i) {
      mean_request_bytes += popularity.probability(i) *
                            static_cast<double>(files.file(i).size_bytes);
    }
    JPM_CHECK(mean_request_bytes > 0.0);
    advance_arrival();
  }

  double instant_rate(double t) const {
    double rate = config.byte_rate;
    if (config.rate_modulation > 0.0 && config.modulation_period_s > 0.0) {
      rate *= 1.0 + config.rate_modulation *
                        std::sin(2.0 * 3.14159265358979323846 * t /
                                 config.modulation_period_s);
    }
    return rate;
  }

  void advance_arrival() {
    if (arrivals_done) return;
    const double mean_gap = mean_request_bytes / instant_rate(next_arrival);
    next_arrival += rng.exponential(mean_gap);
    if (next_arrival >= config.duration_s) arrivals_done = true;
  }

  std::size_t draw_file() {
    if (!recent.empty() && rng.chance(config.temporal_locality)) {
      // Quadratic bias toward the most recent entries.
      const double u = rng.uniform();
      const auto back = static_cast<std::size_t>(
          u * u * static_cast<double>(recent.size()));
      const std::size_t pos =
          (recent_next + recent.size() - 1 - back) % recent.size();
      return recent[pos];
    }
    return popularity.sample(rng);
  }

  void remember_file(std::size_t fi) {
    if (config.temporal_locality <= 0.0 || config.locality_window == 0) return;
    if (recent.size() < config.locality_window) {
      recent.push_back(static_cast<std::uint32_t>(fi));
      recent_next = recent.size() % config.locality_window;
    } else {
      recent[recent_next] = static_cast<std::uint32_t>(fi);
      recent_next = (recent_next + 1) % recent.size();
    }
  }

  void admit_request() {
    const std::size_t fi = draw_file();
    remember_file(fi);
    const auto count = static_cast<std::uint32_t>(
        files.page_count(fi, config.page_bytes));
    // Skip the draw entirely at 0 so read-only configs keep the exact
    // pseudo-random stream they had before the write extension existed.
    const bool is_write =
        config.write_fraction > 0.0 && rng.chance(config.write_fraction);
    heap.push(Pending{next_arrival, files.first_page(fi, config.page_bytes),
                      count - 1, true, is_write});
    advance_arrival();
  }

  std::optional<TraceEvent> next() {
    // Admit every request that arrives before the earliest pending page so
    // emission order is globally nondecreasing in time.
    while (!arrivals_done && (heap.empty() || next_arrival <= heap.top().time)) {
      admit_request();
    }
    if (heap.empty()) return std::nullopt;
    const Pending p = heap.top();
    heap.pop();
    if (p.pages_left > 0) {
      heap.push(Pending{p.time + config.intra_request_spacing_s, p.page + 1,
                        p.pages_left - 1, false, p.is_write});
    }
    return TraceEvent{p.time, p.page, p.request_start, p.is_write};
  }
};

TraceGenerator::TraceGenerator(const SynthesizerConfig& config)
    : impl_(std::make_unique<Impl>(config)) {}
TraceGenerator::~TraceGenerator() = default;
TraceGenerator::TraceGenerator(TraceGenerator&&) noexcept = default;
TraceGenerator& TraceGenerator::operator=(TraceGenerator&&) noexcept = default;

std::optional<TraceEvent> TraceGenerator::next() { return impl_->next(); }

void TraceGenerator::reset() {
  auto cfg = impl_->config;
  impl_ = std::make_unique<Impl>(cfg);
}

const FileSet& TraceGenerator::files() const { return impl_->files; }
const PopularityModel& TraceGenerator::popularity() const {
  return impl_->popularity;
}
const SynthesizerConfig& TraceGenerator::config() const {
  return impl_->config;
}
double TraceGenerator::mean_request_bytes() const {
  return impl_->mean_request_bytes;
}
std::uint64_t TraceGenerator::total_pages() const {
  return ceil_div(impl_->files.total_bytes(), impl_->config.page_bytes);
}

std::vector<TraceEvent> synthesize(const SynthesizerConfig& config) {
  TraceGenerator gen(config);
  std::vector<TraceEvent> out;
  while (auto e = gen.next()) out.push_back(*e);
  return out;
}

Trace synthesize_trace(const SynthesizerConfig& config) {
  TraceGenerator gen(config);
  Trace trace;
  trace.page_bytes = config.page_bytes;
  // Matches the generator-driven engine path: total pages from the file set
  // (not max accessed page) and the configured duration (not the last event).
  trace.total_pages = gen.total_pages();
  trace.duration_s = config.duration_s;
  while (auto e = gen.next()) trace.push_back(*e);
  return trace;
}

}  // namespace jpm::workload
