#include "jpm/workload/trace_io.h"

#include <cstring>
#include <fstream>
#include <sstream>

#include "jpm/util/check.h"

namespace jpm::workload {
namespace {

constexpr char kMagic[4] = {'J', 'P', 'M', 'T'};
// v1: flags byte held only request_start (0/1). v2: bit 0 = request_start,
// bit 1 = is_write. v1 files read fine under the v2 interpretation.
constexpr std::uint32_t kVersion = 2;

struct PackedEvent {
  double time_s;
  std::uint64_t page;
  std::uint8_t flags;
  std::uint8_t pad[7] = {};
};
static_assert(sizeof(PackedEvent) == 24);

constexpr std::uint8_t kFlagStart = 1u << 0;
constexpr std::uint8_t kFlagWrite = 1u << 1;

void check_monotonic(const std::vector<TraceEvent>& trace) {
  double prev = -1.0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    JPM_CHECK_MSG(trace[i].time_s >= prev,
                  "trace timestamps must be nondecreasing (record "
                      << i << " goes backwards)");
    prev = trace[i].time_s;
  }
}

}  // namespace

void write_binary_trace(std::ostream& os,
                        const std::vector<TraceEvent>& trace) {
  os.write(kMagic, sizeof kMagic);
  const std::uint32_t version = kVersion;
  const std::uint64_t count = trace.size();
  os.write(reinterpret_cast<const char*>(&version), sizeof version);
  os.write(reinterpret_cast<const char*>(&count), sizeof count);
  for (const auto& e : trace) {
    const std::uint8_t flags =
        static_cast<std::uint8_t>((e.request_start ? kFlagStart : 0) |
                                  (e.is_write ? kFlagWrite : 0));
    PackedEvent p{e.time_s, e.page, flags, {}};
    os.write(reinterpret_cast<const char*>(&p), sizeof p);
  }
  JPM_CHECK_MSG(os.good(), "trace write failed");
}

void write_binary_trace(std::ostream& os, const Trace& trace) {
  os.write(kMagic, sizeof kMagic);
  const std::uint32_t version = kVersion;
  const std::uint64_t count = trace.size();
  os.write(reinterpret_cast<const char*>(&version), sizeof version);
  os.write(reinterpret_cast<const char*>(&count), sizeof count);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto flags =
        static_cast<std::uint8_t>(trace.flags[i] & (kFlagStart | kFlagWrite));
    PackedEvent p{trace.times[i], trace.pages[i], flags, {}};
    os.write(reinterpret_cast<const char*>(&p), sizeof p);
  }
  JPM_CHECK_MSG(os.good(), "trace write failed");
}

std::vector<TraceEvent> read_binary_trace(std::istream& is) {
  char magic[4];
  is.read(magic, sizeof magic);
  JPM_CHECK_MSG(is.good() && std::memcmp(magic, kMagic, 4) == 0,
                "not a JPMT trace");
  std::uint32_t version = 0;
  std::uint64_t count = 0;
  is.read(reinterpret_cast<char*>(&version), sizeof version);
  is.read(reinterpret_cast<char*>(&count), sizeof count);
  JPM_CHECK_MSG(is.good(), "trace header truncated");
  JPM_CHECK_MSG(version == 1 || version == kVersion,
                "unsupported trace version " << version);

  // Bounds-check the declared record count against the remaining stream
  // before allocating: a corrupt or hostile header must not drive a
  // multi-gigabyte reserve (or a long truncation loop). Non-seekable
  // streams skip the pre-check and rely on the per-record one below.
  const std::istream::pos_type body_start = is.tellg();
  if (body_start != std::istream::pos_type(-1)) {
    is.seekg(0, std::ios::end);
    const std::istream::pos_type end_pos = is.tellg();
    is.seekg(body_start);
    if (end_pos != std::istream::pos_type(-1) && end_pos >= body_start) {
      const auto available =
          static_cast<std::uint64_t>(end_pos - body_start);
      JPM_CHECK_MSG(
          count <= available / sizeof(PackedEvent),
          "corrupt trace header: " << count << " records declared but only "
                                   << available / sizeof(PackedEvent)
                                   << " fit in the remaining " << available
                                   << " bytes");
    }
  }

  std::vector<TraceEvent> trace;
  trace.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    PackedEvent p;
    is.read(reinterpret_cast<char*>(&p), sizeof p);
    JPM_CHECK_MSG(is.good(), "trace truncated at record "
                                 << i << " of " << count << " (byte offset "
                                 << 16 + i * sizeof(PackedEvent) << ")");
    trace.push_back(TraceEvent{p.time_s, p.page, (p.flags & kFlagStart) != 0,
                               (p.flags & kFlagWrite) != 0});
  }
  check_monotonic(trace);
  return trace;
}

void read_binary_trace(std::istream& is, Trace& out) {
  const std::vector<TraceEvent> events = read_binary_trace(is);
  out.times.clear();
  out.pages.clear();
  out.flags.clear();
  out.reserve(events.size());
  for (const auto& e : events) out.push_back(e);
}

void write_csv_trace(std::ostream& os, const std::vector<TraceEvent>& trace) {
  os << "time_s,page,request_start,is_write\n";
  os.precision(9);
  for (const auto& e : trace) {
    os << std::fixed << e.time_s << ',' << e.page << ','
       << (e.request_start ? 1 : 0) << ',' << (e.is_write ? 1 : 0) << '\n';
  }
  JPM_CHECK_MSG(os.good(), "trace write failed");
}

std::vector<TraceEvent> read_csv_trace(std::istream& is) {
  std::vector<TraceEvent> trace;
  std::string line;
  bool first = true;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (first) {
      first = false;
      if (line.rfind("time_s", 0) == 0) continue;  // header
    }
    std::istringstream row(line);
    TraceEvent e;
    char comma1 = 0, comma2 = 0;
    int start = 0;
    row >> e.time_s >> comma1 >> e.page >> comma2 >> start;
    JPM_CHECK_MSG(!row.fail() && comma1 == ',' && comma2 == ',',
                  "malformed CSV trace line: " + line);
    e.request_start = start != 0;
    // Optional 4th column (write flag); traces without it are read-only.
    char comma3 = 0;
    int write = 0;
    if (row >> comma3 >> write) {
      JPM_CHECK_MSG(comma3 == ',', "malformed CSV trace line: " + line);
      e.is_write = write != 0;
    }
    trace.push_back(e);
  }
  check_monotonic(trace);
  return trace;
}

void save_trace(const std::string& path,
                const std::vector<TraceEvent>& trace) {
  const bool csv = path.size() >= 4 && path.substr(path.size() - 4) == ".csv";
  std::ofstream os(path, csv ? std::ios::out : std::ios::out | std::ios::binary);
  JPM_CHECK_MSG(os.is_open(), "cannot open for writing: " + path);
  if (csv) {
    write_csv_trace(os, trace);
  } else {
    write_binary_trace(os, trace);
  }
}

TraceFormat sniff_trace_format(std::istream& is, const std::string& name) {
  const std::istream::pos_type start = is.tellg();
  char head[4] = {};
  is.read(head, sizeof head);
  const std::streamsize got = is.gcount();
  is.clear();
  is.seekg(start);
  JPM_CHECK_MSG(got > 0, name + ": empty trace file");
  if (got == 4 && std::memcmp(head, "JPMT", 4) == 0) {
    return TraceFormat::kBinary;
  }
  if (got == 4 && std::memcmp(head, "JPMC", 4) == 0) {
    return TraceFormat::kChunked;
  }
  // CSV starts with a header line or a bare timestamp — printable text
  // either way. Anything else is a truncated or misnamed binary file.
  bool text = true;
  for (std::streamsize i = 0; i < got; ++i) {
    const unsigned char c = static_cast<unsigned char>(head[i]);
    if (c != '\t' && c != '\n' && c != '\r' && (c < 0x20 || c > 0x7e)) {
      text = false;
    }
  }
  JPM_CHECK_MSG(text, name +
                          ": unrecognized trace format (no JPMT/JPMC magic "
                          "and not CSV text)");
  return TraceFormat::kCsv;
}

std::vector<TraceEvent> load_trace(const std::string& path) {
  std::ifstream is(path, std::ios::in | std::ios::binary);
  JPM_CHECK_MSG(is.is_open(), "cannot open for reading: " + path);
  switch (sniff_trace_format(is, path)) {
    case TraceFormat::kBinary:
      return read_binary_trace(is);
    case TraceFormat::kCsv:
      return read_csv_trace(is);
    case TraceFormat::kChunked:
      JPM_CHECK_MSG(false,
                    path + ": JPMC chunked trace — decode it with "
                           "jpm::tracefile::TraceReader (CLI: jpm trace cat)");
  }
  return {};
}

}  // namespace jpm::workload
