#include "jpm/workload/trace_stats.h"

#include <algorithm>
#include <unordered_map>

#include "jpm/cache/lru_cache.h"
#include "jpm/cache/stack_distance.h"
#include "jpm/util/check.h"

namespace jpm::workload {

TraceCharacterization characterize(const std::vector<TraceEvent>& trace,
                                   std::uint64_t page_bytes,
                                   double duration_s) {
  JPM_CHECK(page_bytes > 0);
  TraceCharacterization c;
  c.events = trace.size();
  if (trace.empty()) return c;

  std::unordered_map<std::uint64_t, std::uint64_t> page_counts;
  cache::StackDistanceTracker tracker;
  double prev_request = -1.0;
  double gap_sum = 0.0;
  std::uint64_t gaps = 0;

  for (const auto& e : trace) {
    if (e.request_start) {
      ++c.requests;
      if (prev_request >= 0.0) {
        const double gap = e.time_s - prev_request;
        gap_sum += gap;
        ++gaps;
        c.max_interarrival_s = std::max(c.max_interarrival_s, gap);
      }
      prev_request = e.time_s;
    }
    if (e.is_write) ++c.writes;
    ++page_counts[e.page];

    const auto depth = tracker.access(e.page);
    if (depth == cache::kColdAccess) {
      ++c.cold_accesses;
    } else {
      std::size_t bucket = 0;
      for (std::uint64_t d = depth; d > 1; d >>= 1) ++bucket;
      if (c.reuse_depth_pow2.size() <= bucket) {
        c.reuse_depth_pow2.resize(bucket + 1, 0);
      }
      ++c.reuse_depth_pow2[bucket];
    }
  }

  c.distinct_pages = page_counts.size();
  c.duration_s = duration_s > 0.0 ? duration_s : trace.back().time_s;
  if (c.duration_s > 0.0) {
    c.request_rate_per_s = static_cast<double>(c.requests) / c.duration_s;
    c.byte_rate_per_s = static_cast<double>(c.events) *
                        static_cast<double>(page_bytes) / c.duration_s;
  }
  if (gaps > 0) c.mean_interarrival_s = gap_sum / static_cast<double>(gaps);

  // Hot-page fraction: smallest share of distinct pages absorbing 90% of
  // accesses.
  std::vector<std::uint64_t> counts;
  counts.reserve(page_counts.size());
  for (const auto& [page, n] : page_counts) counts.push_back(n);
  std::sort(counts.begin(), counts.end(), std::greater<>());
  const double target = 0.9 * static_cast<double>(c.events);
  double mass = 0.0;
  std::size_t hot = 0;
  for (; hot < counts.size() && mass < target; ++hot) {
    mass += static_cast<double>(counts[hot]);
  }
  c.hot_page_fraction_90 =
      static_cast<double>(hot) / static_cast<double>(counts.size());
  return c;
}

std::vector<double> idle_gaps_at_cache_size(
    const std::vector<TraceEvent>& trace, std::uint64_t cache_pages,
    double window_s) {
  JPM_CHECK(cache_pages > 0);
  JPM_CHECK(window_s >= 0.0);
  // Bank structure is irrelevant here; one big bank keeps it simple.
  cache::LruCache cache(
      cache::LruCacheOptions{cache_pages, cache_pages, cache_pages});
  std::vector<double> gaps;
  double last_miss = -1.0;
  for (const auto& e : trace) {
    if (cache.lookup(e.page)) continue;
    cache.insert(e.page);
    if (last_miss >= 0.0) {
      const double gap = e.time_s - last_miss;
      if (gap >= window_s && gap > 0.0) gaps.push_back(gap);
    }
    last_miss = e.time_s;
  }
  return gaps;
}

}  // namespace jpm::workload
