#include "jpm/workload/fileset.h"

#include <algorithm>
#include <cmath>

#include "jpm/util/check.h"

namespace jpm::workload {

std::vector<FileClass> specweb99_classes(double file_scale) {
  JPM_CHECK(file_scale > 0.0);
  auto scaled = [file_scale](double bytes) {
    return static_cast<std::uint64_t>(bytes * file_scale);
  };
  // SPECWeb99 class structure: 35% of requests to files < 1 KB, 50% to
  // 1-10 KB, 14% to 10-100 KB, 1% to 100 KB - 1 MB.
  return {
      {scaled(102.0), scaled(1.0 * 1024), 0.35},
      {scaled(1.0 * 1024), scaled(10.0 * 1024), 0.50},
      {scaled(10.0 * 1024), scaled(100.0 * 1024), 0.14},
      {scaled(100.0 * 1024), scaled(1024.0 * 1024), 0.01},
  };
}

FileSet::FileSet(const FileSetConfig& config) : config_(config) {
  JPM_CHECK(config.dataset_bytes > 0);
  JPM_CHECK(config.base_dataset_bytes > 0);

  // Paper's scaling rule: data set x F => file count x sqrt(F), sizes x sqrt(F).
  const double factor = static_cast<double>(config.dataset_bytes) /
                        static_cast<double>(config.base_dataset_bytes);
  const double size_scale = std::sqrt(factor);

  const auto classes = specweb99_classes(config.file_scale * size_scale);

  // Per-class mean file size, used to apportion the byte budget so each class
  // ends up with a file count proportional to its request share.
  double mean_weighted = 0.0;
  for (const auto& c : classes) {
    mean_weighted +=
        c.request_share * 0.5 *
        static_cast<double>(c.min_bytes + c.max_bytes);
  }
  JPM_CHECK(mean_weighted > 0.0);

  Rng rng(config.seed * 0x51ed2701u + 7);
  const double target_files =
      static_cast<double>(config.dataset_bytes) / mean_weighted;

  files_.clear();
  for (std::uint32_t ci = 0; ci < classes.size(); ++ci) {
    const auto& c = classes[ci];
    const auto count = static_cast<std::uint64_t>(
        std::max(1.0, std::round(target_files * c.request_share)));
    for (std::uint64_t k = 0; k < count; ++k) {
      const double span = static_cast<double>(c.max_bytes - c.min_bytes);
      const auto size = c.min_bytes +
                        static_cast<std::uint64_t>(rng.uniform() * span);
      files_.push_back(FileInfo{0, std::max<std::uint64_t>(size, 1), ci});
    }
  }

  // Shuffle on-disk order (Fisher-Yates) so class and popularity structure do
  // not correlate with disk position, then assign contiguous offsets.
  for (std::size_t i = files_.size(); i > 1; --i) {
    std::swap(files_[i - 1], files_[rng.uniform_index(i)]);
  }
  std::uint64_t offset = 0;
  for (auto& f : files_) {
    f.offset_bytes = offset;
    offset += f.size_bytes;
  }
  total_bytes_ = offset;
}

std::uint64_t FileSet::first_page(std::size_t i,
                                  std::uint64_t page_bytes) const {
  JPM_CHECK(i < files_.size());
  JPM_CHECK(page_bytes > 0);
  return files_[i].offset_bytes / page_bytes;
}

std::uint64_t FileSet::page_count(std::size_t i,
                                  std::uint64_t page_bytes) const {
  JPM_CHECK(i < files_.size());
  JPM_CHECK(page_bytes > 0);
  const auto& f = files_[i];
  const std::uint64_t first = f.offset_bytes / page_bytes;
  const std::uint64_t last = (f.offset_bytes + f.size_bytes - 1) / page_bytes;
  return last - first + 1;
}

}  // namespace jpm::workload
