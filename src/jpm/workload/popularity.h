// Popularity assignment with the paper's knob.
//
// The paper defines popularity as "the ratio between the size of the most
// popular data receiving 90% of total accesses and the size of the total data
// set" — e.g. popularity 0.1 means the hottest 10% of bytes receive 90% of
// requests. We realize this with a Zipf(s) weight over a random permutation of
// files and solve for the exponent s (binary search; concentration is
// monotone in s) so that the measured hot-byte fraction equals the requested
// popularity.
#pragma once

#include <cstdint>
#include <vector>

#include "jpm/util/rng.h"
#include "jpm/workload/fileset.h"

namespace jpm::workload {

struct PopularityConfig {
  // Fraction of data-set bytes that should receive `hot_share` of requests.
  double popularity = 0.1;
  // Request mass concentrated on the hot bytes (paper fixes this at 90%).
  double hot_share = 0.9;
  std::uint64_t seed = 1;
};

// Per-file request probabilities plus a sampler.
class PopularityModel {
 public:
  PopularityModel(const FileSet& files, const PopularityConfig& config);

  // Probability that a request targets file i.
  double probability(std::size_t i) const { return prob_[i]; }
  // Draws a file index with the modeled distribution (O(log n)).
  std::size_t sample(Rng& rng) const;

  // The Zipf exponent the solver converged to.
  double zipf_exponent() const { return exponent_; }
  // The achieved popularity (hot-byte fraction receiving hot_share of
  // requests) — should match the config within solver tolerance.
  double achieved_popularity() const { return achieved_; }

 private:
  std::vector<double> prob_;  // by file index
  std::vector<double> cdf_;   // cumulative, by file index
  double exponent_ = 0.0;
  double achieved_ = 0.0;
};

// Computes the byte fraction of the most-requested files that together absorb
// `hot_share` of request mass, for Zipf exponent s over files in `rank_order`
// (rank_order[r] = file index of popularity rank r). Exposed for testing.
double hot_byte_fraction(const FileSet& files,
                         const std::vector<std::uint32_t>& rank_order,
                         double exponent, double hot_share);

}  // namespace jpm::workload
