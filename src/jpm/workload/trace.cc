#include "jpm/workload/trace.h"

#include <unordered_set>

namespace jpm::workload {

TraceSummary summarize(const std::vector<TraceEvent>& trace,
                       std::uint64_t page_bytes) {
  TraceSummary s;
  std::unordered_set<std::uint64_t> pages;
  pages.reserve(trace.size() / 4 + 1);
  for (const auto& e : trace) {
    ++s.events;
    if (e.request_start) ++s.requests;
    if (e.is_write) ++s.writes;
    pages.insert(e.page);
  }
  s.distinct_pages = pages.size();
  if (!trace.empty()) s.duration_s = trace.back().time_s - trace.front().time_s;
  s.bytes_accessed =
      static_cast<double>(s.events) * static_cast<double>(page_bytes);
  return s;
}

}  // namespace jpm::workload
