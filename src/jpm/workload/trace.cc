#include "jpm/workload/trace.h"

#include <unordered_set>

namespace jpm::workload {

std::vector<TraceEvent> Trace::to_events() const {
  std::vector<TraceEvent> out;
  out.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) out.push_back(event(i));
  return out;
}

Trace trace_from_events(const std::vector<TraceEvent>& events,
                        std::uint64_t page_bytes, std::uint64_t total_pages,
                        double duration_s) {
  Trace t;
  t.reserve(events.size());
  for (const auto& e : events) t.push_back(e);
  t.page_bytes = page_bytes;
  t.total_pages = total_pages;
  t.duration_s = duration_s;
  return t;
}

TraceSummary summarize(const std::vector<TraceEvent>& trace,
                       std::uint64_t page_bytes) {
  TraceSummary s;
  std::unordered_set<std::uint64_t> pages;
  pages.reserve(trace.size() / 4 + 1);
  for (const auto& e : trace) {
    ++s.events;
    if (e.request_start) ++s.requests;
    if (e.is_write) ++s.writes;
    pages.insert(e.page);
  }
  s.distinct_pages = pages.size();
  if (!trace.empty()) s.duration_s = trace.back().time_s - trace.front().time_s;
  s.bytes_accessed =
      static_cast<double>(s.events) * static_cast<double>(page_bytes);
  return s;
}

TraceSummary summarize(const Trace& trace) {
  TraceSummary s;
  std::unordered_set<std::uint64_t> pages;
  pages.reserve(trace.size() / 4 + 1);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    ++s.events;
    if (trace.flags[i] & kTraceFlagStart) ++s.requests;
    if (trace.flags[i] & kTraceFlagWrite) ++s.writes;
    pages.insert(trace.pages[i]);
  }
  s.distinct_pages = pages.size();
  if (!trace.empty()) s.duration_s = trace.times.back() - trace.times.front();
  s.bytes_accessed =
      static_cast<double>(s.events) * static_cast<double>(trace.page_bytes);
  return s;
}

}  // namespace jpm::workload
