#include "jpm/workload/popularity.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "jpm/util/check.h"

namespace jpm::workload {
namespace {

// Zipf weights 1/(r+1)^s for ranks r = 0..n-1, normalized to sum 1.
std::vector<double> zipf_weights(std::size_t n, double exponent) {
  std::vector<double> w(n);
  double sum = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    w[r] = 1.0 / std::pow(static_cast<double>(r + 1), exponent);
    sum += w[r];
  }
  for (auto& x : w) x /= sum;
  return w;
}

}  // namespace

double hot_byte_fraction(const FileSet& files,
                         const std::vector<std::uint32_t>& rank_order,
                         double exponent, double hot_share) {
  JPM_CHECK(rank_order.size() == files.file_count());
  JPM_CHECK(hot_share > 0.0 && hot_share < 1.0);
  const auto w = zipf_weights(rank_order.size(), exponent);
  double mass = 0.0;
  std::uint64_t bytes = 0;
  for (std::size_t r = 0; r < rank_order.size(); ++r) {
    mass += w[r];
    bytes += files.file(rank_order[r]).size_bytes;
    if (mass >= hot_share) break;
  }
  return static_cast<double>(bytes) / static_cast<double>(files.total_bytes());
}

PopularityModel::PopularityModel(const FileSet& files,
                                 const PopularityConfig& config) {
  JPM_CHECK(config.popularity > 0.0 && config.popularity <= 1.0);
  JPM_CHECK(files.file_count() > 0);
  const std::size_t n = files.file_count();

  // Random popularity ranking, independent of on-disk order and class.
  std::vector<std::uint32_t> rank_order(n);
  std::iota(rank_order.begin(), rank_order.end(), 0u);
  Rng rng(config.seed * 0xb5297a4du + 13);
  for (std::size_t i = n; i > 1; --i) {
    std::swap(rank_order[i - 1], rank_order[rng.uniform_index(i)]);
  }

  // Larger exponent => more concentration => smaller hot-byte fraction.
  // Binary search the exponent whose hot-byte fraction equals the target.
  double lo = 0.0, hi = 8.0;
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const double frac = hot_byte_fraction(files, rank_order, mid,
                                          config.hot_share);
    if (frac > config.popularity) {
      lo = mid;  // not concentrated enough
    } else {
      hi = mid;
    }
  }
  exponent_ = 0.5 * (lo + hi);
  achieved_ = hot_byte_fraction(files, rank_order, exponent_, config.hot_share);

  const auto w = zipf_weights(n, exponent_);
  prob_.assign(n, 0.0);
  for (std::size_t r = 0; r < n; ++r) prob_[rank_order[r]] = w[r];

  cdf_.resize(n);
  double cum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    cum += prob_[i];
    cdf_[i] = cum;
  }
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t PopularityModel::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace jpm::workload
