// SPECWeb99-style file set with a linear on-disk layout.
//
// The paper captures one SPECWeb99 trace and synthesizes variants from it by
// scaling three knobs: data-set size, byte rate, and popularity. We build the
// file population directly from the SPECWeb99 class structure (four size
// classes with fixed request shares) and apply the paper's data-set scaling
// rule: enlarging the data set by a factor F multiplies both the number of
// files and each file's size by sqrt(F) ("if the data set is enlarged by a
// factor of 4, the synthesizer doubles the number of files and the size of
// each file").
//
// Files are laid out contiguously on a linear disk address space, so a cache
// page (fixed span of disk addresses) can hold several small files — exactly
// how an OS page/buffer cache over a block device behaves.
#pragma once

#include <cstdint>
#include <vector>

#include "jpm/util/rng.h"
#include "jpm/util/units.h"

namespace jpm::workload {

// One SPECWeb99 size class: files sized uniformly in [min_bytes, max_bytes],
// receiving `request_share` of all requests in aggregate.
struct FileClass {
  std::uint64_t min_bytes;
  std::uint64_t max_bytes;
  double request_share;
};

// The four SPECWeb99 classes, scaled by `file_scale` (see FileSetConfig).
std::vector<FileClass> specweb99_classes(double file_scale);

struct FileSetConfig {
  // Target total bytes across all files (the paper's "data set size").
  std::uint64_t dataset_bytes = gib(16);
  // Data-set size at which the sqrt-scaling rule is the identity.
  std::uint64_t base_dataset_bytes = gib(4);
  // Multiplier applied to the SPECWeb99 class size ranges before data-set
  // scaling. The default of 16 keeps synthetic traces short enough to sweep
  // 16 policies on one core while preserving the class structure; tests use
  // 1 for spec-faithful sizes.
  double file_scale = 16.0;
  std::uint64_t seed = 1;
};

struct FileInfo {
  std::uint64_t offset_bytes;  // position in the linear disk layout
  std::uint64_t size_bytes;
  std::uint32_t file_class;
};

// Immutable file population. Construction draws file sizes class by class
// (counts proportional to request share) until the byte budget is met, then
// shuffles the on-disk order so popularity rank and disk position are
// uncorrelated (popularity is assigned separately, see popularity.h).
class FileSet {
 public:
  explicit FileSet(const FileSetConfig& config);

  std::size_t file_count() const { return files_.size(); }
  const FileInfo& file(std::size_t i) const { return files_[i]; }
  std::uint64_t total_bytes() const { return total_bytes_; }
  const FileSetConfig& config() const { return config_; }

  // First and one-past-last page touched when reading file i whole.
  std::uint64_t first_page(std::size_t i, std::uint64_t page_bytes) const;
  std::uint64_t page_count(std::size_t i, std::uint64_t page_bytes) const;

 private:
  FileSetConfig config_;
  std::vector<FileInfo> files_;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace jpm::workload
