// Trace characterization: measures, on any disk-cache trace (synthetic or
// captured), exactly the quantities the paper's method keys on — request
// rates, popularity concentration, reuse distances, and the idle-interval
// structure a given memory size would leave the disk.
//
// Use this to sanity-check a captured trace before replaying it, or to
// verify a synthesized trace matches its configuration.
#pragma once

#include <cstdint>
#include <vector>

#include "jpm/workload/trace.h"

namespace jpm::workload {

struct TraceCharacterization {
  // Volume.
  std::uint64_t events = 0;
  std::uint64_t requests = 0;
  std::uint64_t writes = 0;
  std::uint64_t distinct_pages = 0;
  double duration_s = 0.0;
  double request_rate_per_s = 0.0;
  double byte_rate_per_s = 0.0;  // page-granular

  // Popularity: fraction of distinct pages receiving 90% of the accesses
  // (the paper's popularity knob, measured on pages).
  double hot_page_fraction_90 = 0.0;

  // Reuse: fraction of accesses whose LRU stack depth (in pages) falls
  // within each power-of-two bucket; cold accesses excluded.
  std::vector<std::uint64_t> reuse_depth_pow2;  // [k] = depths in [2^k,2^{k+1})
  std::uint64_t cold_accesses = 0;

  // Inter-request gaps.
  double mean_interarrival_s = 0.0;
  double max_interarrival_s = 0.0;
};

TraceCharacterization characterize(const std::vector<TraceEvent>& trace,
                                   std::uint64_t page_bytes,
                                   double duration_s = 0.0);

// Idle-interval lengths the disk would see with an LRU cache of
// `cache_pages` (gaps between consecutive misses, aggregation window
// applied). Useful to feed the Pareto fitting utilities directly.
std::vector<double> idle_gaps_at_cache_size(
    const std::vector<TraceEvent>& trace, std::uint64_t cache_pages,
    double window_s);

}  // namespace jpm::workload
