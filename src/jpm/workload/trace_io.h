// Trace persistence: save synthesized traces and load captured ones.
//
// Two formats live here:
//   * binary ("JPMT" header + packed records) — compact, lossless round trip;
//   * CSV ("time_s,page,request_start") — for interchange with external
//     tooling and hand-captured disk-cache traces.
// (The chunked, mmap-able "JPMC" format for large traces lives in
// jpm/tracefile/; load_trace recognizes its magic and points there.)
// Loading sniffs the format from the leading bytes — never the file
// extension — so a misnamed file fails with a named format error instead of
// a garbage parse, and validates monotonic timestamps, so a corrupted or
// unsorted trace fails fast instead of corrupting a simulation.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "jpm/workload/trace.h"

namespace jpm::workload {

void write_binary_trace(std::ostream& os, const std::vector<TraceEvent>& trace);
std::vector<TraceEvent> read_binary_trace(std::istream& is);

// SoA-lane forms: stream Trace lanes to/from the same binary format without
// materializing an AoS copy. read_binary_trace(is, out) replaces out's event
// lanes; the derived fields (page_bytes/total_pages/duration_s) are the
// caller's to set — the trace format does not carry them.
void write_binary_trace(std::ostream& os, const Trace& trace);
void read_binary_trace(std::istream& is, Trace& out);

void write_csv_trace(std::ostream& os, const std::vector<TraceEvent>& trace);
std::vector<TraceEvent> read_csv_trace(std::istream& is);

// On-disk trace flavors distinguishable from their leading bytes.
enum class TraceFormat {
  kBinary,   // "JPMT" magic (trace_io)
  kChunked,  // "JPMC" magic (jpm/tracefile)
  kCsv,      // printable text (header line or bare numbers)
};

// Peeks at the stream's first bytes and classifies them, restoring the read
// position. Throws CheckError naming `name` when the bytes match no known
// format (e.g. a truncated or misnamed binary file).
TraceFormat sniff_trace_format(std::istream& is, const std::string& name);

// File-path conveniences. Saving picks the format by extension (".csv" =
// CSV, anything else = JPMT binary); loading sniffs the content instead and
// rejects JPMC files with a pointer to jpm::tracefile (which owns the
// chunked reader). Throw CheckError on IO failure or format mismatch.
void save_trace(const std::string& path, const std::vector<TraceEvent>& trace);
std::vector<TraceEvent> load_trace(const std::string& path);

}  // namespace jpm::workload
