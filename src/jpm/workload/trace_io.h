// Trace persistence: save synthesized traces and load captured ones.
//
// Two formats:
//   * binary ("JPMT" header + packed records) — compact, lossless round trip;
//   * CSV ("time_s,page,request_start") — for interchange with external
//     tooling and hand-captured disk-cache traces.
// Loading validates monotonic timestamps, so a corrupted or unsorted trace
// fails fast instead of corrupting a simulation.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "jpm/workload/trace.h"

namespace jpm::workload {

void write_binary_trace(std::ostream& os, const std::vector<TraceEvent>& trace);
std::vector<TraceEvent> read_binary_trace(std::istream& is);

void write_csv_trace(std::ostream& os, const std::vector<TraceEvent>& trace);
std::vector<TraceEvent> read_csv_trace(std::istream& is);

// File-path conveniences; format picked by extension (".csv" vs anything
// else = binary). Throw CheckError on IO failure.
void save_trace(const std::string& path, const std::vector<TraceEvent>& trace);
std::vector<TraceEvent> load_trace(const std::string& path);

}  // namespace jpm::workload
