// Trace persistence: save synthesized traces and load captured ones.
//
// Two formats:
//   * binary ("JPMT" header + packed records) — compact, lossless round trip;
//   * CSV ("time_s,page,request_start") — for interchange with external
//     tooling and hand-captured disk-cache traces.
// Loading validates monotonic timestamps, so a corrupted or unsorted trace
// fails fast instead of corrupting a simulation.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "jpm/workload/trace.h"

namespace jpm::workload {

void write_binary_trace(std::ostream& os, const std::vector<TraceEvent>& trace);
std::vector<TraceEvent> read_binary_trace(std::istream& is);

// SoA-lane forms: stream Trace lanes to/from the same binary format without
// materializing an AoS copy. read_binary_trace(is, out) replaces out's event
// lanes; the derived fields (page_bytes/total_pages/duration_s) are the
// caller's to set — the trace format does not carry them.
void write_binary_trace(std::ostream& os, const Trace& trace);
void read_binary_trace(std::istream& is, Trace& out);

void write_csv_trace(std::ostream& os, const std::vector<TraceEvent>& trace);
std::vector<TraceEvent> read_csv_trace(std::istream& is);

// File-path conveniences; format picked by extension (".csv" vs anything
// else = binary). Throw CheckError on IO failure.
void save_trace(const std::string& path, const std::vector<TraceEvent>& trace);
std::vector<TraceEvent> load_trace(const std::string& path);

}  // namespace jpm::workload
