// The unified `jpm` CLI: executes, validates, and canonicalizes declarative
// scenario files (see src/jpm/spec/spec.h and scenarios/).
//
//   jpm run <scenario.json> [--telemetry=<base>]
//       Executes the scenario's sweep and prints its result tables —
//       byte-identical to the bench harness the scenario was extracted
//       from. JPM_BENCH_FAST=1 applies the smoke-run schedule, JPM_THREADS
//       controls the fan-out (tables are identical for any value).
//       --telemetry exports <base>.{report.json,trace.json,periods.csv}
//       with the resolved scenario + content hash embedded in the report.
//   jpm validate <scenario.json>...
//       Parses and semantically validates each file; prints one line per
//       file ("ok <file> sha=<hash>") or the path-named error.
//   jpm print <scenario.json> [--resolved]
//       Prints the canonical, fully resolved serialization (defaults filled
//       in, preset rosters and sweep axes expanded). A checked-in scenario
//       is canonical iff `jpm print` reproduces it byte-for-byte.
//   jpm hash <scenario.json>
//       Prints the scenario's provenance hash (FNV-1a 64, 16 hex digits).
//   jpm serve <scenario.json> [--policy=<name>] [--format=auto|jsonl|binary]
//             [--telemetry=<base>]
//       The streaming daemon: reads live events from stdin (JSONL or
//       length-prefixed binary; see src/jpm/stream/wire.h), pushes them
//       through the scenario's engine with the configured overload policy,
//       and prints a JSON run report on exit. SIGINT or EOF drains the ring,
//       closes the final period, and always flushes the report.
//   jpm synth <scenario.json> [--format=jsonl|binary] [--count=N]
//       Emits the scenario's first workload point as an event stream on
//       stdout — the producer half of a serve demo:
//         jpm synth demo.json | jpm serve demo.json
//   jpm trace synth|pack|info|cat
//       The chunked on-disk trace store (JPMC; see src/jpm/tracefile/):
//       synth writes a scenario workload point to a trace file with bounded
//       RSS, pack converts legacy JPMT/CSV captures, info prints the header,
//       index, and content hash, cat decodes back to CSV or JSONL. A
//       scenario workload point replays such a file via
//       "trace": {"path": "big.jpmc"}.
#include <algorithm>
#include <csignal>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "jpm/spec/run.h"
#include "jpm/spec/spec.h"
#include "jpm/stream/stream_engine.h"
#include "jpm/stream/wire.h"
#include "jpm/telemetry/export.h"
#include "jpm/telemetry/telemetry.h"
#include "jpm/tracefile/reader.h"
#include "jpm/tracefile/writer.h"
#include "jpm/util/hash.h"
#include "jpm/util/json.h"
#include "jpm/util/parallel.h"
#include "jpm/util/units.h"
#include "jpm/workload/synthesizer.h"
#include "jpm/workload/trace.h"

namespace {

int usage(std::ostream& os, int code) {
  os << "usage: jpm <command> [args]\n"
        "  jpm run <scenario.json> [--telemetry=<base>]   execute the sweep\n"
        "  jpm validate <scenario.json>...                parse + validate\n"
        "  jpm print <scenario.json> [--resolved]         canonical form\n"
        "  jpm hash <scenario.json>                       provenance hash\n"
        "  jpm serve <scenario.json> [--policy=<name>] [--format=<fmt>]\n"
        "            [--telemetry=<base>]     stream events from stdin\n"
        "  jpm synth <scenario.json> [--format=<fmt>] [--count=N]\n"
        "                                     emit an event stream on stdout\n"
        "  jpm trace synth <scenario.json> <out.jpmc> [--point=N]\n"
        "            [--chunk-events=N]       synthesize to a chunked file\n"
        "  jpm trace pack <in> <out.jpmc> [--page-bytes=N] [--total-pages=N]\n"
        "            [--duration=S] [--chunk-events=N]\n"
        "                                     convert JPMT/CSV to chunked\n"
        "  jpm trace info <file.jpmc> [--chunks] [--verify]\n"
        "                                     header, index, content hash\n"
        "  jpm trace cat <file.jpmc> [--format=csv|jsonl] [--limit=N]\n"
        "                                     decode to CSV/JSONL on stdout\n"
        "environment: JPM_BENCH_FAST=1 (smoke schedule), JPM_THREADS=N,\n"
        "             JPM_SCENARIO_DIR (default scenario directory)\n";
  return code;
}

int cmd_run(const std::vector<std::string>& args) {
  std::string file;
  std::string telemetry_base;
  for (const auto& a : args) {
    if (a.rfind("--telemetry=", 0) == 0) {
      telemetry_base = a.substr(std::strlen("--telemetry="));
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "jpm run: unknown option " << a << "\n";
      return 2;
    } else if (file.empty()) {
      file = a;
    } else {
      std::cerr << "jpm run: expected one scenario file\n";
      return 2;
    }
  }
  if (file.empty()) {
    std::cerr << "jpm run: missing scenario file\n";
    return 2;
  }

  const auto sc = jpm::spec::load_for_run(file);
  std::cerr << "jpm: threads=" << jpm::util::default_thread_count()
            << (jpm::spec::fast_mode() ? ", fast mode (JPM_BENCH_FAST=1)" : "")
            << "\n";
  if (!telemetry_base.empty()) {
    jpm::telemetry::start();
    std::cerr << "jpm: telemetry -> " << telemetry_base
              << ".{report.json,trace.json,periods.csv}\n";
  }

  jpm::spec::RunOptions options;
  options.progress = [](const std::string& line) {
    std::cerr << "  " << line << "\n";
  };
  jpm::spec::run_scenario(sc, options);

  if (!telemetry_base.empty()) {
    std::string error;
    if (!jpm::telemetry::export_files(telemetry_base, &error)) {
      std::cerr << "jpm: telemetry export failed: " << error << "\n";
      jpm::telemetry::stop();
      return 1;
    }
    jpm::telemetry::stop();
  }
  return 0;
}

int cmd_validate(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::cerr << "jpm validate: missing scenario file\n";
    return 2;
  }
  int failures = 0;
  for (const auto& file : args) {
    try {
      const auto sc = jpm::spec::load_scenario_file(file);
      jpm::spec::validate_scenario(sc);
      std::cout << "ok " << file << " sha=" << jpm::spec::scenario_hash(sc)
                << "\n";
    } catch (const jpm::spec::SpecError& e) {
      std::cerr << "error: " << e.what() << "\n";
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

int cmd_print(const std::vector<std::string>& args) {
  std::string file;
  for (const auto& a : args) {
    if (a == "--resolved") continue;  // printing is always fully resolved
    if (!a.empty() && a[0] == '-') {
      std::cerr << "jpm print: unknown option " << a << "\n";
      return 2;
    }
    if (!file.empty()) {
      std::cerr << "jpm print: expected one scenario file\n";
      return 2;
    }
    file = a;
  }
  if (file.empty()) {
    std::cerr << "jpm print: missing scenario file\n";
    return 2;
  }
  const auto sc = jpm::spec::load_scenario_file(file);
  jpm::spec::validate_scenario(sc);
  std::cout << jpm::spec::serialize_scenario(sc);
  return 0;
}

int cmd_hash(const std::vector<std::string>& args) {
  if (args.size() != 1) {
    std::cerr << "jpm hash: expected one scenario file\n";
    return 2;
  }
  const auto sc = jpm::spec::load_scenario_file(args[0]);
  std::cout << jpm::spec::scenario_hash(sc) << "\n";
  return 0;
}

// ---- serve / synth ---------------------------------------------------------

// SIGINT closes stdin: the blocked producer read returns EOF, the producer
// closes the ring, and the normal drain-and-report shutdown path runs. Only
// async-signal-safe calls are allowed here.
volatile std::sig_atomic_t g_interrupted = 0;
void on_sigint(int) {
  g_interrupted = 1;
  close(0);
}

// The roster entry to serve: --policy=<name>, defaulting to the first.
const jpm::sim::PolicySpec& pick_policy(const jpm::spec::Scenario& sc,
                                        const std::string& name) {
  if (sc.roster.empty()) {
    throw jpm::spec::SpecError("$.roster: scenario has no policies");
  }
  if (name.empty()) return sc.roster.front();
  for (const auto& p : sc.roster) {
    if (p.name == name) return p;
  }
  std::string names;
  for (const auto& p : sc.roster) {
    names += names.empty() ? p.name : ", " + p.name;
  }
  throw jpm::spec::SpecError("$.roster: no policy named \"" + name +
                             "\" (available: " + names + ")");
}

// Live-source geometry of the scenario's first workload point, matching
// what a synthesized trace of the same point would declare.
jpm::sim::LiveSource live_source(const jpm::spec::Scenario& sc) {
  if (sc.workloads.empty()) {
    throw jpm::spec::SpecError("$.workloads: scenario has no workload points");
  }
  const auto& w = sc.workloads.front().workload;
  jpm::sim::LiveSource source;
  source.page_bytes = w.page_bytes;
  source.total_pages = jpm::workload::TraceGenerator(w).total_pages();
  source.duration_hint_s = w.duration_s;
  return source;
}

jpm::util::json::Value stats_json(const jpm::stream::StreamStats& s,
                                  std::uint64_t ring_capacity) {
  jpm::util::json::Object o;
  o["ring_capacity"] = jpm::util::json::Value{ring_capacity};
  o["events_offered"] = jpm::util::json::Value{s.events_offered};
  o["events_accepted"] = jpm::util::json::Value{s.events_accepted};
  o["events_processed"] = jpm::util::json::Value{s.events_processed};
  o["shed_reads"] = jpm::util::json::Value{s.shed_reads};
  o["shed_writes"] = jpm::util::json::Value{s.shed_writes};
  o["block_waits"] = jpm::util::json::Value{s.block_waits};
  o["block_timeouts"] = jpm::util::json::Value{s.block_timeouts};
  o["blocked_s"] = jpm::util::json::Value{s.blocked_s};
  o["degrade_engagements"] = jpm::util::json::Value{s.degrade_engagements};
  o["watchdog_closes"] = jpm::util::json::Value{s.watchdog_closes};
  o["clamped_timestamps"] = jpm::util::json::Value{s.clamped_timestamps};
  o["max_occupancy"] = jpm::util::json::Value{s.max_occupancy};
  return jpm::util::json::Value{std::move(o)};
}

jpm::util::json::Value metrics_json(const jpm::sim::RunMetrics& m) {
  std::uint64_t shed_events = 0;
  std::uint64_t degraded_periods = 0;
  for (const auto& p : m.periods) {
    shed_events += p.shed_events;
    if (p.degraded) ++degraded_periods;
  }
  jpm::util::json::Object o;
  o["duration_s"] = jpm::util::json::Value{m.duration_s};
  o["total_j"] = jpm::util::json::Value{m.total_j()};
  o["memory_j"] = jpm::util::json::Value{m.mem_energy.total_j()};
  o["disk_j"] = jpm::util::json::Value{m.disk_energy.total_j()};
  o["cache_accesses"] = jpm::util::json::Value{m.cache_accesses};
  o["disk_accesses"] = jpm::util::json::Value{m.disk_accesses};
  o["hit_pct"] = jpm::util::json::Value{m.hit_ratio() * 100.0};
  o["mean_latency_ms"] = jpm::util::json::Value{m.mean_latency_s() * 1e3};
  o["disk_shutdowns"] = jpm::util::json::Value{m.disk_shutdowns};
  o["spin_ups"] = jpm::util::json::Value{m.spin_ups};
  o["periods"] =
      jpm::util::json::Value{static_cast<std::uint64_t>(m.periods.size())};
  o["degraded_periods"] = jpm::util::json::Value{degraded_periods};
  o["shed_events"] = jpm::util::json::Value{shed_events};
  o["manager_fallbacks"] =
      jpm::util::json::Value{m.reliability.manager_fallbacks};
  o["forced_fallbacks"] =
      jpm::util::json::Value{m.reliability.forced_fallbacks};
  return jpm::util::json::Value{std::move(o)};
}

int cmd_serve(const std::vector<std::string>& args) {
  std::string file;
  std::string policy_name;
  std::string telemetry_base;
  jpm::stream::WireFormat format = jpm::stream::WireFormat::kAuto;
  for (const auto& a : args) {
    if (a.rfind("--policy=", 0) == 0) {
      policy_name = a.substr(std::strlen("--policy="));
    } else if (a.rfind("--format=", 0) == 0) {
      const std::string f = a.substr(std::strlen("--format="));
      if (!jpm::stream::wire_format_from_name(f, &format)) {
        std::cerr << "jpm serve: unknown format \"" << f
                  << "\" (expected auto, jsonl, or binary)\n";
        return 2;
      }
    } else if (a.rfind("--telemetry=", 0) == 0) {
      telemetry_base = a.substr(std::strlen("--telemetry="));
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "jpm serve: unknown option " << a << "\n";
      return 2;
    } else if (file.empty()) {
      file = a;
    } else {
      std::cerr << "jpm serve: expected one scenario file\n";
      return 2;
    }
  }
  if (file.empty()) {
    std::cerr << "jpm serve: missing scenario file\n";
    return 2;
  }

  const auto sc = jpm::spec::load_scenario_file(file);
  jpm::spec::validate_scenario(sc);
  const jpm::sim::PolicySpec& policy = pick_policy(sc, policy_name);
  const jpm::stream::StreamConfig stream_config =
      sc.stream.value_or(jpm::stream::StreamConfig{});
  try {
    jpm::stream::validate(stream_config);
  } catch (const std::invalid_argument& e) {
    throw jpm::spec::SpecError(file + ": $.stream: " + std::string(e.what()));
  }

  jpm::telemetry::RunRecorder* rec = nullptr;
  if (!telemetry_base.empty()) {
    jpm::telemetry::start();
    jpm::spec::publish_provenance(sc);
    rec = jpm::telemetry::begin_run(sc.name + "/" + policy.name);
  }

  jpm::stream::StreamEngine engine(live_source(sc), policy, sc.engine,
                                   stream_config);
  std::cerr << "jpm serve: scenario=" << sc.name << " policy=" << policy.name
            << " overload="
            << jpm::stream::overload_policy_name(stream_config.overload)
            << " ring=" << stream_config.ring_capacity << "\n";

  std::signal(SIGINT, on_sigint);

  // Consumer thread: pump the ring into the engine until EOF drains it,
  // then close the run. Telemetry binds here (single-writer recorder).
  jpm::sim::RunMetrics metrics;
  std::thread consumer([&] {
    jpm::telemetry::ScopedRun scope(rec);
    engine.run_until_closed();
    metrics = engine.finish();
  });

  // Producer: this thread decodes stdin and offers into the ring.
  jpm::stream::EventReader reader(std::cin, format);
  std::string decode_error;
  jpm::stream::StreamEvent event;
  for (;;) {
    const auto status = reader.next(&event);
    if (status == jpm::stream::EventReader::Status::kEndOfStream) break;
    if (status == jpm::stream::EventReader::Status::kError) {
      // SIGINT closes stdin out from under the reader; a record truncated
      // by that close is shutdown, not corrupt input.
      if (g_interrupted) break;
      decode_error = "<stdin>: " + reader.error();
      break;
    }
    engine.offer(event);
  }
  engine.close();
  consumer.join();

  const bool interrupted = g_interrupted != 0;
  const jpm::stream::StreamStats stats = engine.stats();

  jpm::util::json::Object report;
  report["version"] = jpm::util::json::Value{1};
  report["kind"] = jpm::util::json::Value{"serve_report"};
  report["scenario"] = jpm::util::json::Value{sc.name};
  report["scenario_hash"] = jpm::util::json::Value{jpm::spec::scenario_hash(sc)};
  report["policy"] = jpm::util::json::Value{policy.name};
  report["overload_policy"] = jpm::util::json::Value{
      jpm::stream::overload_policy_name(stream_config.overload)};
  report["wire_format"] =
      jpm::util::json::Value{jpm::stream::wire_format_name(reader.format())};
  report["interrupted"] = jpm::util::json::Value{interrupted};
  report["decode_error"] = jpm::util::json::Value{decode_error};
  report["stream"] = stats_json(stats, stream_config.ring_capacity);
  report["metrics"] = metrics_json(metrics);
  std::cout << jpm::util::json::dump(
                   jpm::util::json::Value{std::move(report)}, 2)
            << "\n";

  if (!telemetry_base.empty()) {
    std::string error;
    if (!jpm::telemetry::export_files(telemetry_base, &error)) {
      std::cerr << "jpm serve: telemetry export failed: " << error << "\n";
      jpm::telemetry::stop();
      return 1;
    }
    jpm::telemetry::stop();
  }
  if (!decode_error.empty()) {
    std::cerr << "error: " << decode_error << "\n";
    return 1;
  }
  return 0;
}

int cmd_synth(const std::vector<std::string>& args) {
  std::string file;
  std::uint64_t count = 0;  // 0 = the whole workload
  jpm::stream::WireFormat format = jpm::stream::WireFormat::kJsonl;
  for (const auto& a : args) {
    if (a.rfind("--format=", 0) == 0) {
      const std::string f = a.substr(std::strlen("--format="));
      if (!jpm::stream::wire_format_from_name(f, &format) ||
          format == jpm::stream::WireFormat::kAuto) {
        std::cerr << "jpm synth: unknown format \"" << f
                  << "\" (expected jsonl or binary)\n";
        return 2;
      }
    } else if (a.rfind("--count=", 0) == 0) {
      try {
        count = std::stoull(a.substr(std::strlen("--count=")));
      } catch (const std::exception&) {
        std::cerr << "jpm synth: bad --count value\n";
        return 2;
      }
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "jpm synth: unknown option " << a << "\n";
      return 2;
    } else if (file.empty()) {
      file = a;
    } else {
      std::cerr << "jpm synth: expected one scenario file\n";
      return 2;
    }
  }
  if (file.empty()) {
    std::cerr << "jpm synth: missing scenario file\n";
    return 2;
  }

  const auto sc = jpm::spec::load_for_run(file);
  if (sc.workloads.empty()) {
    throw jpm::spec::SpecError(file +
                               ": $.workloads: scenario has no workload points");
  }
  // A consumer that exits early closes the pipe; take the write failure as
  // end of stream instead of dying on SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);
  jpm::workload::TraceGenerator gen(sc.workloads.front().workload);
  std::uint64_t emitted = 0;
  while (auto e = gen.next()) {
    jpm::stream::StreamEvent event;
    event.time_s = e->time_s;
    event.page = e->page;
    event.flags = static_cast<std::uint8_t>(
        (e->request_start ? jpm::workload::kTraceFlagStart : 0) |
        (e->is_write ? jpm::workload::kTraceFlagWrite : 0));
    jpm::stream::write_event(std::cout, event, format);
    if (!std::cout) {
      // Downstream pipe closed (consumer exited): a clean end of stream.
      break;
    }
    if (count != 0 && ++emitted >= count) break;
  }
  return 0;
}

// ---- trace (the JPMC chunked trace store) ----------------------------------

bool parse_u64_flag(const std::string& arg, const char* prefix,
                    std::uint64_t* out) {
  try {
    *out = std::stoull(arg.substr(std::strlen(prefix)));
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

int cmd_trace_synth(const std::vector<std::string>& args) {
  std::string scenario_file;
  std::string out_file;
  std::uint64_t point = 0;
  jpm::tracefile::WriterOptions options;
  for (const auto& a : args) {
    if (a.rfind("--point=", 0) == 0) {
      if (!parse_u64_flag(a, "--point=", &point)) {
        std::cerr << "jpm trace synth: bad --point value\n";
        return 2;
      }
    } else if (a.rfind("--chunk-events=", 0) == 0) {
      std::uint64_t n = 0;
      if (!parse_u64_flag(a, "--chunk-events=", &n) || n == 0) {
        std::cerr << "jpm trace synth: bad --chunk-events value\n";
        return 2;
      }
      options.chunk_events = n;
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "jpm trace synth: unknown option " << a << "\n";
      return 2;
    } else if (scenario_file.empty()) {
      scenario_file = a;
    } else if (out_file.empty()) {
      out_file = a;
    } else {
      std::cerr << "jpm trace synth: expected <scenario.json> <out.jpmc>\n";
      return 2;
    }
  }
  if (scenario_file.empty() || out_file.empty()) {
    std::cerr << "jpm trace synth: expected <scenario.json> <out.jpmc>\n";
    return 2;
  }
  // load_for_run applies fast mode, so a file synthesized under
  // JPM_BENCH_FAST=1 matches what `jpm run` would synthesize in-memory under
  // the same environment — the byte-identical replay contract.
  const auto sc = jpm::spec::load_for_run(scenario_file);
  if (point >= sc.workloads.size()) {
    std::cerr << "jpm trace synth: --point=" << point << " out of range ("
              << sc.workloads.size() << " workload points)\n";
    return 2;
  }
  const auto& wp = sc.workloads[point];
  const auto header = jpm::tracefile::synthesize_to_file(
      out_file, wp.workload, options);
  std::cerr << "jpm trace synth: " << out_file << " [" << wp.label << "] "
            << header.event_count << " events, " << header.chunk_count
            << " chunks, hash " << jpm::util::hex16(header.content_hash)
            << "\n";
  return 0;
}

int cmd_trace_pack(const std::vector<std::string>& args) {
  std::string in_file;
  std::string out_file;
  std::uint64_t page_bytes = 0;
  std::uint64_t total_pages = 0;
  double duration_s = 0.0;
  jpm::tracefile::WriterOptions options;
  for (const auto& a : args) {
    if (a.rfind("--page-bytes=", 0) == 0) {
      if (!parse_u64_flag(a, "--page-bytes=", &page_bytes)) {
        std::cerr << "jpm trace pack: bad --page-bytes value\n";
        return 2;
      }
    } else if (a.rfind("--total-pages=", 0) == 0) {
      if (!parse_u64_flag(a, "--total-pages=", &total_pages)) {
        std::cerr << "jpm trace pack: bad --total-pages value\n";
        return 2;
      }
    } else if (a.rfind("--duration=", 0) == 0) {
      try {
        duration_s = std::stod(a.substr(std::strlen("--duration=")));
      } catch (const std::exception&) {
        std::cerr << "jpm trace pack: bad --duration value\n";
        return 2;
      }
    } else if (a.rfind("--chunk-events=", 0) == 0) {
      std::uint64_t n = 0;
      if (!parse_u64_flag(a, "--chunk-events=", &n) || n == 0) {
        std::cerr << "jpm trace pack: bad --chunk-events value\n";
        return 2;
      }
      options.chunk_events = n;
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "jpm trace pack: unknown option " << a << "\n";
      return 2;
    } else if (in_file.empty()) {
      in_file = a;
    } else if (out_file.empty()) {
      out_file = a;
    } else {
      std::cerr << "jpm trace pack: expected <in> <out.jpmc>\n";
      return 2;
    }
  }
  if (in_file.empty() || out_file.empty()) {
    std::cerr << "jpm trace pack: expected <in> <out.jpmc>\n";
    return 2;
  }
  jpm::workload::Trace trace = jpm::tracefile::load_any_trace(in_file);
  // Legacy formats carry no geometry: default the page size, derive the
  // data-set size and duration from the events (the ReplayTrace rules),
  // unless flags pin them down.
  if (page_bytes != 0) trace.page_bytes = page_bytes;
  if (trace.page_bytes == 0) trace.page_bytes = 256 * jpm::kKiB;
  if (total_pages != 0) trace.total_pages = total_pages;
  if (trace.total_pages == 0) {
    for (const auto page : trace.pages) {
      trace.total_pages = std::max(trace.total_pages, page + 1);
    }
  }
  if (duration_s != 0.0) trace.duration_s = duration_s;
  if (trace.duration_s == 0.0 && !trace.empty()) {
    trace.duration_s = trace.times.back();
  }
  const auto header =
      jpm::tracefile::write_trace_file(out_file, trace, options);
  std::cerr << "jpm trace pack: " << out_file << " " << header.event_count
            << " events, " << header.chunk_count << " chunks, hash "
            << jpm::util::hex16(header.content_hash) << "\n";
  return 0;
}

int cmd_trace_info(const std::vector<std::string>& args) {
  std::string file;
  bool list_chunks = false;
  bool verify = false;
  for (const auto& a : args) {
    if (a == "--chunks") {
      list_chunks = true;
    } else if (a == "--verify") {
      verify = true;
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "jpm trace info: unknown option " << a << "\n";
      return 2;
    } else if (file.empty()) {
      file = a;
    } else {
      std::cerr << "jpm trace info: expected one trace file\n";
      return 2;
    }
  }
  if (file.empty()) {
    std::cerr << "jpm trace info: missing trace file\n";
    return 2;
  }
  const jpm::tracefile::TraceReader reader(file);
  const auto& h = reader.header();
  std::cout << "file:         " << file << "\n"
            << "format:       JPMC v" << h.version << "\n"
            << "events:       " << h.event_count << "\n"
            << "chunks:       " << h.chunk_count << "\n"
            << "page_bytes:   " << h.page_bytes << "\n"
            << "total_pages:  " << h.total_pages << "\n"
            << "duration_s:   " << h.duration_s << "\n"
            << "content_hash: " << jpm::util::hex16(h.content_hash) << "\n";
  if (list_chunks) {
    std::cout << "chunk  events      bytes  t_first       t_last\n";
    for (std::size_t i = 0; i < reader.chunks().size(); ++i) {
      const auto& c = reader.chunks()[i];
      std::cout << i << "  " << c.event_count << "  " << c.encoded_bytes
                << "  " << c.t_first << "  " << c.t_last << "\n";
    }
  }
  if (verify) {
    reader.verify_content_hash();
    std::cout << "verify:       ok (" << h.chunk_count
              << " chunks decoded, content hash matches)\n";
  }
  return 0;
}

int cmd_trace_cat(const std::vector<std::string>& args) {
  std::string file;
  std::string format = "csv";
  std::uint64_t limit = 0;  // 0 = everything
  for (const auto& a : args) {
    if (a.rfind("--format=", 0) == 0) {
      format = a.substr(std::strlen("--format="));
      if (format != "csv" && format != "jsonl") {
        std::cerr << "jpm trace cat: unknown format \"" << format
                  << "\" (expected csv or jsonl)\n";
        return 2;
      }
    } else if (a.rfind("--limit=", 0) == 0) {
      if (!parse_u64_flag(a, "--limit=", &limit)) {
        std::cerr << "jpm trace cat: bad --limit value\n";
        return 2;
      }
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "jpm trace cat: unknown option " << a << "\n";
      return 2;
    } else if (file.empty()) {
      file = a;
    } else {
      std::cerr << "jpm trace cat: expected one trace file\n";
      return 2;
    }
  }
  if (file.empty()) {
    std::cerr << "jpm trace cat: missing trace file\n";
    return 2;
  }
  std::signal(SIGPIPE, SIG_IGN);  // a consumer exiting early is end of stream
  const jpm::tracefile::TraceReader reader(file);
  const bool csv = format == "csv";
  if (csv) {
    std::cout << "time_s,page,request_start,is_write\n";
    std::cout.precision(9);
  }
  jpm::tracefile::ChunkBuffer buf;
  std::uint64_t emitted = 0;
  for (std::size_t i = 0; i < reader.chunks().size() && std::cout; ++i) {
    reader.decode_chunk(i, buf);
    for (std::size_t k = 0; k < buf.size() && std::cout; ++k) {
      const bool start =
          (buf.flags[k] & jpm::workload::kTraceFlagStart) != 0;
      const bool write =
          (buf.flags[k] & jpm::workload::kTraceFlagWrite) != 0;
      if (csv) {
        std::cout << std::fixed << buf.times[k] << ',' << buf.pages[k] << ','
                  << (start ? 1 : 0) << ',' << (write ? 1 : 0) << '\n';
      } else {
        jpm::util::json::Object obj;
        obj["t"] = jpm::util::json::Value{buf.times[k]};
        obj["page"] = jpm::util::json::Value{buf.pages[k]};
        if (start) obj["start"] = jpm::util::json::Value{true};
        if (write) obj["write"] = jpm::util::json::Value{true};
        std::cout << jpm::util::json::dump(
                         jpm::util::json::Value{std::move(obj)})
                  << '\n';
      }
      if (limit != 0 && ++emitted >= limit) return 0;
    }
  }
  return 0;
}

int cmd_trace(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::cerr << "jpm trace: expected a subcommand "
                 "(synth, pack, info, cat)\n";
    return 2;
  }
  const std::string sub = args.front();
  const std::vector<std::string> rest(args.begin() + 1, args.end());
  if (sub == "synth") return cmd_trace_synth(rest);
  if (sub == "pack") return cmd_trace_pack(rest);
  if (sub == "info") return cmd_trace_info(rest);
  if (sub == "cat") return cmd_trace_cat(rest);
  std::cerr << "jpm trace: unknown subcommand \"" << sub
            << "\" (expected synth, pack, info, or cat)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(std::cerr, 2);
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (command == "run") return cmd_run(args);
    if (command == "validate") return cmd_validate(args);
    if (command == "print") return cmd_print(args);
    if (command == "hash") return cmd_hash(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "synth") return cmd_synth(args);
    if (command == "trace") return cmd_trace(args);
    if (command == "help" || command == "--help" || command == "-h") {
      return usage(std::cout, 0);
    }
  } catch (const jpm::spec::SpecError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    // No exception escapes as a crash: anything unexpected (engine checks,
    // bad_alloc, ...) still exits with a named error and a nonzero status.
    std::cerr << "error: " << command << ": " << e.what() << "\n";
    return 1;
  }
  std::cerr << "jpm: unknown command \"" << command << "\"\n";
  return usage(std::cerr, 2);
}
