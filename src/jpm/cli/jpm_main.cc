// The unified `jpm` CLI: executes, validates, and canonicalizes declarative
// scenario files (see src/jpm/spec/spec.h and scenarios/).
//
//   jpm run <scenario.json> [--telemetry=<base>]
//       Executes the scenario's sweep and prints its result tables —
//       byte-identical to the bench harness the scenario was extracted
//       from. JPM_BENCH_FAST=1 applies the smoke-run schedule, JPM_THREADS
//       controls the fan-out (tables are identical for any value).
//       --telemetry exports <base>.{report.json,trace.json,periods.csv}
//       with the resolved scenario + content hash embedded in the report.
//   jpm validate <scenario.json>...
//       Parses and semantically validates each file; prints one line per
//       file ("ok <file> sha=<hash>") or the path-named error.
//   jpm print <scenario.json> [--resolved]
//       Prints the canonical, fully resolved serialization (defaults filled
//       in, preset rosters and sweep axes expanded). A checked-in scenario
//       is canonical iff `jpm print` reproduces it byte-for-byte.
//   jpm hash <scenario.json>
//       Prints the scenario's provenance hash (FNV-1a 64, 16 hex digits).
//   jpm serve <scenario.json> [--policy=<name>] [--format=auto|jsonl|binary]
//             [--telemetry=<base>]
//       The streaming daemon: reads live events from stdin (JSONL or
//       length-prefixed binary; see src/jpm/stream/wire.h), pushes them
//       through the scenario's engine with the configured overload policy,
//       and prints a JSON run report on exit. SIGINT or EOF drains the ring,
//       closes the final period, and always flushes the report.
//   jpm synth <scenario.json> [--format=jsonl|binary] [--count=N]
//       Emits the scenario's first workload point as an event stream on
//       stdout — the producer half of a serve demo:
//         jpm synth demo.json | jpm serve demo.json
#include <csignal>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "jpm/spec/run.h"
#include "jpm/spec/spec.h"
#include "jpm/stream/stream_engine.h"
#include "jpm/stream/wire.h"
#include "jpm/telemetry/export.h"
#include "jpm/telemetry/telemetry.h"
#include "jpm/util/parallel.h"
#include "jpm/workload/synthesizer.h"

namespace {

int usage(std::ostream& os, int code) {
  os << "usage: jpm <command> [args]\n"
        "  jpm run <scenario.json> [--telemetry=<base>]   execute the sweep\n"
        "  jpm validate <scenario.json>...                parse + validate\n"
        "  jpm print <scenario.json> [--resolved]         canonical form\n"
        "  jpm hash <scenario.json>                       provenance hash\n"
        "  jpm serve <scenario.json> [--policy=<name>] [--format=<fmt>]\n"
        "            [--telemetry=<base>]     stream events from stdin\n"
        "  jpm synth <scenario.json> [--format=<fmt>] [--count=N]\n"
        "                                     emit an event stream on stdout\n"
        "environment: JPM_BENCH_FAST=1 (smoke schedule), JPM_THREADS=N,\n"
        "             JPM_SCENARIO_DIR (default scenario directory)\n";
  return code;
}

int cmd_run(const std::vector<std::string>& args) {
  std::string file;
  std::string telemetry_base;
  for (const auto& a : args) {
    if (a.rfind("--telemetry=", 0) == 0) {
      telemetry_base = a.substr(std::strlen("--telemetry="));
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "jpm run: unknown option " << a << "\n";
      return 2;
    } else if (file.empty()) {
      file = a;
    } else {
      std::cerr << "jpm run: expected one scenario file\n";
      return 2;
    }
  }
  if (file.empty()) {
    std::cerr << "jpm run: missing scenario file\n";
    return 2;
  }

  const auto sc = jpm::spec::load_for_run(file);
  std::cerr << "jpm: threads=" << jpm::util::default_thread_count()
            << (jpm::spec::fast_mode() ? ", fast mode (JPM_BENCH_FAST=1)" : "")
            << "\n";
  if (!telemetry_base.empty()) {
    jpm::telemetry::start();
    std::cerr << "jpm: telemetry -> " << telemetry_base
              << ".{report.json,trace.json,periods.csv}\n";
  }

  jpm::spec::RunOptions options;
  options.progress = [](const std::string& line) {
    std::cerr << "  " << line << "\n";
  };
  jpm::spec::run_scenario(sc, options);

  if (!telemetry_base.empty()) {
    std::string error;
    if (!jpm::telemetry::export_files(telemetry_base, &error)) {
      std::cerr << "jpm: telemetry export failed: " << error << "\n";
      jpm::telemetry::stop();
      return 1;
    }
    jpm::telemetry::stop();
  }
  return 0;
}

int cmd_validate(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::cerr << "jpm validate: missing scenario file\n";
    return 2;
  }
  int failures = 0;
  for (const auto& file : args) {
    try {
      const auto sc = jpm::spec::load_scenario_file(file);
      jpm::spec::validate_scenario(sc);
      std::cout << "ok " << file << " sha=" << jpm::spec::scenario_hash(sc)
                << "\n";
    } catch (const jpm::spec::SpecError& e) {
      std::cerr << "error: " << e.what() << "\n";
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

int cmd_print(const std::vector<std::string>& args) {
  std::string file;
  for (const auto& a : args) {
    if (a == "--resolved") continue;  // printing is always fully resolved
    if (!a.empty() && a[0] == '-') {
      std::cerr << "jpm print: unknown option " << a << "\n";
      return 2;
    }
    if (!file.empty()) {
      std::cerr << "jpm print: expected one scenario file\n";
      return 2;
    }
    file = a;
  }
  if (file.empty()) {
    std::cerr << "jpm print: missing scenario file\n";
    return 2;
  }
  const auto sc = jpm::spec::load_scenario_file(file);
  jpm::spec::validate_scenario(sc);
  std::cout << jpm::spec::serialize_scenario(sc);
  return 0;
}

int cmd_hash(const std::vector<std::string>& args) {
  if (args.size() != 1) {
    std::cerr << "jpm hash: expected one scenario file\n";
    return 2;
  }
  const auto sc = jpm::spec::load_scenario_file(args[0]);
  std::cout << jpm::spec::scenario_hash(sc) << "\n";
  return 0;
}

// ---- serve / synth ---------------------------------------------------------

// SIGINT closes stdin: the blocked producer read returns EOF, the producer
// closes the ring, and the normal drain-and-report shutdown path runs. Only
// async-signal-safe calls are allowed here.
volatile std::sig_atomic_t g_interrupted = 0;
void on_sigint(int) {
  g_interrupted = 1;
  close(0);
}

// The roster entry to serve: --policy=<name>, defaulting to the first.
const jpm::sim::PolicySpec& pick_policy(const jpm::spec::Scenario& sc,
                                        const std::string& name) {
  if (sc.roster.empty()) {
    throw jpm::spec::SpecError("$.roster: scenario has no policies");
  }
  if (name.empty()) return sc.roster.front();
  for (const auto& p : sc.roster) {
    if (p.name == name) return p;
  }
  std::string names;
  for (const auto& p : sc.roster) {
    names += names.empty() ? p.name : ", " + p.name;
  }
  throw jpm::spec::SpecError("$.roster: no policy named \"" + name +
                             "\" (available: " + names + ")");
}

// Live-source geometry of the scenario's first workload point, matching
// what a synthesized trace of the same point would declare.
jpm::sim::LiveSource live_source(const jpm::spec::Scenario& sc) {
  if (sc.workloads.empty()) {
    throw jpm::spec::SpecError("$.workloads: scenario has no workload points");
  }
  const auto& w = sc.workloads.front().workload;
  jpm::sim::LiveSource source;
  source.page_bytes = w.page_bytes;
  source.total_pages = jpm::workload::TraceGenerator(w).total_pages();
  source.duration_hint_s = w.duration_s;
  return source;
}

jpm::util::json::Value stats_json(const jpm::stream::StreamStats& s,
                                  std::uint64_t ring_capacity) {
  jpm::util::json::Object o;
  o["ring_capacity"] = jpm::util::json::Value{ring_capacity};
  o["events_offered"] = jpm::util::json::Value{s.events_offered};
  o["events_accepted"] = jpm::util::json::Value{s.events_accepted};
  o["events_processed"] = jpm::util::json::Value{s.events_processed};
  o["shed_reads"] = jpm::util::json::Value{s.shed_reads};
  o["shed_writes"] = jpm::util::json::Value{s.shed_writes};
  o["block_waits"] = jpm::util::json::Value{s.block_waits};
  o["block_timeouts"] = jpm::util::json::Value{s.block_timeouts};
  o["blocked_s"] = jpm::util::json::Value{s.blocked_s};
  o["degrade_engagements"] = jpm::util::json::Value{s.degrade_engagements};
  o["watchdog_closes"] = jpm::util::json::Value{s.watchdog_closes};
  o["clamped_timestamps"] = jpm::util::json::Value{s.clamped_timestamps};
  o["max_occupancy"] = jpm::util::json::Value{s.max_occupancy};
  return jpm::util::json::Value{std::move(o)};
}

jpm::util::json::Value metrics_json(const jpm::sim::RunMetrics& m) {
  std::uint64_t shed_events = 0;
  std::uint64_t degraded_periods = 0;
  for (const auto& p : m.periods) {
    shed_events += p.shed_events;
    if (p.degraded) ++degraded_periods;
  }
  jpm::util::json::Object o;
  o["duration_s"] = jpm::util::json::Value{m.duration_s};
  o["total_j"] = jpm::util::json::Value{m.total_j()};
  o["memory_j"] = jpm::util::json::Value{m.mem_energy.total_j()};
  o["disk_j"] = jpm::util::json::Value{m.disk_energy.total_j()};
  o["cache_accesses"] = jpm::util::json::Value{m.cache_accesses};
  o["disk_accesses"] = jpm::util::json::Value{m.disk_accesses};
  o["hit_pct"] = jpm::util::json::Value{m.hit_ratio() * 100.0};
  o["mean_latency_ms"] = jpm::util::json::Value{m.mean_latency_s() * 1e3};
  o["disk_shutdowns"] = jpm::util::json::Value{m.disk_shutdowns};
  o["spin_ups"] = jpm::util::json::Value{m.spin_ups};
  o["periods"] =
      jpm::util::json::Value{static_cast<std::uint64_t>(m.periods.size())};
  o["degraded_periods"] = jpm::util::json::Value{degraded_periods};
  o["shed_events"] = jpm::util::json::Value{shed_events};
  o["manager_fallbacks"] =
      jpm::util::json::Value{m.reliability.manager_fallbacks};
  o["forced_fallbacks"] =
      jpm::util::json::Value{m.reliability.forced_fallbacks};
  return jpm::util::json::Value{std::move(o)};
}

int cmd_serve(const std::vector<std::string>& args) {
  std::string file;
  std::string policy_name;
  std::string telemetry_base;
  jpm::stream::WireFormat format = jpm::stream::WireFormat::kAuto;
  for (const auto& a : args) {
    if (a.rfind("--policy=", 0) == 0) {
      policy_name = a.substr(std::strlen("--policy="));
    } else if (a.rfind("--format=", 0) == 0) {
      const std::string f = a.substr(std::strlen("--format="));
      if (!jpm::stream::wire_format_from_name(f, &format)) {
        std::cerr << "jpm serve: unknown format \"" << f
                  << "\" (expected auto, jsonl, or binary)\n";
        return 2;
      }
    } else if (a.rfind("--telemetry=", 0) == 0) {
      telemetry_base = a.substr(std::strlen("--telemetry="));
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "jpm serve: unknown option " << a << "\n";
      return 2;
    } else if (file.empty()) {
      file = a;
    } else {
      std::cerr << "jpm serve: expected one scenario file\n";
      return 2;
    }
  }
  if (file.empty()) {
    std::cerr << "jpm serve: missing scenario file\n";
    return 2;
  }

  const auto sc = jpm::spec::load_scenario_file(file);
  jpm::spec::validate_scenario(sc);
  const jpm::sim::PolicySpec& policy = pick_policy(sc, policy_name);
  const jpm::stream::StreamConfig stream_config =
      sc.stream.value_or(jpm::stream::StreamConfig{});
  try {
    jpm::stream::validate(stream_config);
  } catch (const std::invalid_argument& e) {
    throw jpm::spec::SpecError(file + ": $.stream: " + std::string(e.what()));
  }

  jpm::telemetry::RunRecorder* rec = nullptr;
  if (!telemetry_base.empty()) {
    jpm::telemetry::start();
    jpm::spec::publish_provenance(sc);
    rec = jpm::telemetry::begin_run(sc.name + "/" + policy.name);
  }

  jpm::stream::StreamEngine engine(live_source(sc), policy, sc.engine,
                                   stream_config);
  std::cerr << "jpm serve: scenario=" << sc.name << " policy=" << policy.name
            << " overload="
            << jpm::stream::overload_policy_name(stream_config.overload)
            << " ring=" << stream_config.ring_capacity << "\n";

  std::signal(SIGINT, on_sigint);

  // Consumer thread: pump the ring into the engine until EOF drains it,
  // then close the run. Telemetry binds here (single-writer recorder).
  jpm::sim::RunMetrics metrics;
  std::thread consumer([&] {
    jpm::telemetry::ScopedRun scope(rec);
    engine.run_until_closed();
    metrics = engine.finish();
  });

  // Producer: this thread decodes stdin and offers into the ring.
  jpm::stream::EventReader reader(std::cin, format);
  std::string decode_error;
  jpm::stream::StreamEvent event;
  for (;;) {
    const auto status = reader.next(&event);
    if (status == jpm::stream::EventReader::Status::kEndOfStream) break;
    if (status == jpm::stream::EventReader::Status::kError) {
      // SIGINT closes stdin out from under the reader; a record truncated
      // by that close is shutdown, not corrupt input.
      if (g_interrupted) break;
      decode_error = "<stdin>: " + reader.error();
      break;
    }
    engine.offer(event);
  }
  engine.close();
  consumer.join();

  const bool interrupted = g_interrupted != 0;
  const jpm::stream::StreamStats stats = engine.stats();

  jpm::util::json::Object report;
  report["version"] = jpm::util::json::Value{1};
  report["kind"] = jpm::util::json::Value{"serve_report"};
  report["scenario"] = jpm::util::json::Value{sc.name};
  report["scenario_hash"] = jpm::util::json::Value{jpm::spec::scenario_hash(sc)};
  report["policy"] = jpm::util::json::Value{policy.name};
  report["overload_policy"] = jpm::util::json::Value{
      jpm::stream::overload_policy_name(stream_config.overload)};
  report["wire_format"] =
      jpm::util::json::Value{jpm::stream::wire_format_name(reader.format())};
  report["interrupted"] = jpm::util::json::Value{interrupted};
  report["decode_error"] = jpm::util::json::Value{decode_error};
  report["stream"] = stats_json(stats, stream_config.ring_capacity);
  report["metrics"] = metrics_json(metrics);
  std::cout << jpm::util::json::dump(
                   jpm::util::json::Value{std::move(report)}, 2)
            << "\n";

  if (!telemetry_base.empty()) {
    std::string error;
    if (!jpm::telemetry::export_files(telemetry_base, &error)) {
      std::cerr << "jpm serve: telemetry export failed: " << error << "\n";
      jpm::telemetry::stop();
      return 1;
    }
    jpm::telemetry::stop();
  }
  if (!decode_error.empty()) {
    std::cerr << "error: " << decode_error << "\n";
    return 1;
  }
  return 0;
}

int cmd_synth(const std::vector<std::string>& args) {
  std::string file;
  std::uint64_t count = 0;  // 0 = the whole workload
  jpm::stream::WireFormat format = jpm::stream::WireFormat::kJsonl;
  for (const auto& a : args) {
    if (a.rfind("--format=", 0) == 0) {
      const std::string f = a.substr(std::strlen("--format="));
      if (!jpm::stream::wire_format_from_name(f, &format) ||
          format == jpm::stream::WireFormat::kAuto) {
        std::cerr << "jpm synth: unknown format \"" << f
                  << "\" (expected jsonl or binary)\n";
        return 2;
      }
    } else if (a.rfind("--count=", 0) == 0) {
      try {
        count = std::stoull(a.substr(std::strlen("--count=")));
      } catch (const std::exception&) {
        std::cerr << "jpm synth: bad --count value\n";
        return 2;
      }
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "jpm synth: unknown option " << a << "\n";
      return 2;
    } else if (file.empty()) {
      file = a;
    } else {
      std::cerr << "jpm synth: expected one scenario file\n";
      return 2;
    }
  }
  if (file.empty()) {
    std::cerr << "jpm synth: missing scenario file\n";
    return 2;
  }

  const auto sc = jpm::spec::load_for_run(file);
  if (sc.workloads.empty()) {
    throw jpm::spec::SpecError(file +
                               ": $.workloads: scenario has no workload points");
  }
  // A consumer that exits early closes the pipe; take the write failure as
  // end of stream instead of dying on SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);
  jpm::workload::TraceGenerator gen(sc.workloads.front().workload);
  std::uint64_t emitted = 0;
  while (auto e = gen.next()) {
    jpm::stream::StreamEvent event;
    event.time_s = e->time_s;
    event.page = e->page;
    event.flags = static_cast<std::uint8_t>(
        (e->request_start ? jpm::workload::kTraceFlagStart : 0) |
        (e->is_write ? jpm::workload::kTraceFlagWrite : 0));
    jpm::stream::write_event(std::cout, event, format);
    if (!std::cout) {
      // Downstream pipe closed (consumer exited): a clean end of stream.
      break;
    }
    if (count != 0 && ++emitted >= count) break;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(std::cerr, 2);
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (command == "run") return cmd_run(args);
    if (command == "validate") return cmd_validate(args);
    if (command == "print") return cmd_print(args);
    if (command == "hash") return cmd_hash(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "synth") return cmd_synth(args);
    if (command == "help" || command == "--help" || command == "-h") {
      return usage(std::cout, 0);
    }
  } catch (const jpm::spec::SpecError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    // No exception escapes as a crash: anything unexpected (engine checks,
    // bad_alloc, ...) still exits with a named error and a nonzero status.
    std::cerr << "error: " << command << ": " << e.what() << "\n";
    return 1;
  }
  std::cerr << "jpm: unknown command \"" << command << "\"\n";
  return usage(std::cerr, 2);
}
