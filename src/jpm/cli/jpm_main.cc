// The unified `jpm` CLI: executes, validates, and canonicalizes declarative
// scenario files (see src/jpm/spec/spec.h and scenarios/).
//
//   jpm run <scenario.json> [--telemetry=<base>]
//       Executes the scenario's sweep and prints its result tables —
//       byte-identical to the bench harness the scenario was extracted
//       from. JPM_BENCH_FAST=1 applies the smoke-run schedule, JPM_THREADS
//       controls the fan-out (tables are identical for any value).
//       --telemetry exports <base>.{report.json,trace.json,periods.csv}
//       with the resolved scenario + content hash embedded in the report.
//   jpm validate <scenario.json>...
//       Parses and semantically validates each file; prints one line per
//       file ("ok <file> sha=<hash>") or the path-named error.
//   jpm print <scenario.json> [--resolved]
//       Prints the canonical, fully resolved serialization (defaults filled
//       in, preset rosters and sweep axes expanded). A checked-in scenario
//       is canonical iff `jpm print` reproduces it byte-for-byte.
//   jpm hash <scenario.json>
//       Prints the scenario's provenance hash (FNV-1a 64, 16 hex digits).
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "jpm/spec/run.h"
#include "jpm/spec/spec.h"
#include "jpm/telemetry/export.h"
#include "jpm/telemetry/telemetry.h"
#include "jpm/util/parallel.h"

namespace {

int usage(std::ostream& os, int code) {
  os << "usage: jpm <command> [args]\n"
        "  jpm run <scenario.json> [--telemetry=<base>]   execute the sweep\n"
        "  jpm validate <scenario.json>...                parse + validate\n"
        "  jpm print <scenario.json> [--resolved]         canonical form\n"
        "  jpm hash <scenario.json>                       provenance hash\n"
        "environment: JPM_BENCH_FAST=1 (smoke schedule), JPM_THREADS=N,\n"
        "             JPM_SCENARIO_DIR (default scenario directory)\n";
  return code;
}

int cmd_run(const std::vector<std::string>& args) {
  std::string file;
  std::string telemetry_base;
  for (const auto& a : args) {
    if (a.rfind("--telemetry=", 0) == 0) {
      telemetry_base = a.substr(std::strlen("--telemetry="));
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "jpm run: unknown option " << a << "\n";
      return 2;
    } else if (file.empty()) {
      file = a;
    } else {
      std::cerr << "jpm run: expected one scenario file\n";
      return 2;
    }
  }
  if (file.empty()) {
    std::cerr << "jpm run: missing scenario file\n";
    return 2;
  }

  const auto sc = jpm::spec::load_for_run(file);
  std::cerr << "jpm: threads=" << jpm::util::default_thread_count()
            << (jpm::spec::fast_mode() ? ", fast mode (JPM_BENCH_FAST=1)" : "")
            << "\n";
  if (!telemetry_base.empty()) {
    jpm::telemetry::start();
    std::cerr << "jpm: telemetry -> " << telemetry_base
              << ".{report.json,trace.json,periods.csv}\n";
  }

  jpm::spec::RunOptions options;
  options.progress = [](const std::string& line) {
    std::cerr << "  " << line << "\n";
  };
  jpm::spec::run_scenario(sc, options);

  if (!telemetry_base.empty()) {
    std::string error;
    if (!jpm::telemetry::export_files(telemetry_base, &error)) {
      std::cerr << "jpm: telemetry export failed: " << error << "\n";
      jpm::telemetry::stop();
      return 1;
    }
    jpm::telemetry::stop();
  }
  return 0;
}

int cmd_validate(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::cerr << "jpm validate: missing scenario file\n";
    return 2;
  }
  int failures = 0;
  for (const auto& file : args) {
    try {
      const auto sc = jpm::spec::load_scenario_file(file);
      jpm::spec::validate_scenario(sc);
      std::cout << "ok " << file << " sha=" << jpm::spec::scenario_hash(sc)
                << "\n";
    } catch (const jpm::spec::SpecError& e) {
      std::cerr << "error: " << e.what() << "\n";
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

int cmd_print(const std::vector<std::string>& args) {
  std::string file;
  for (const auto& a : args) {
    if (a == "--resolved") continue;  // printing is always fully resolved
    if (!a.empty() && a[0] == '-') {
      std::cerr << "jpm print: unknown option " << a << "\n";
      return 2;
    }
    if (!file.empty()) {
      std::cerr << "jpm print: expected one scenario file\n";
      return 2;
    }
    file = a;
  }
  if (file.empty()) {
    std::cerr << "jpm print: missing scenario file\n";
    return 2;
  }
  const auto sc = jpm::spec::load_scenario_file(file);
  jpm::spec::validate_scenario(sc);
  std::cout << jpm::spec::serialize_scenario(sc);
  return 0;
}

int cmd_hash(const std::vector<std::string>& args) {
  if (args.size() != 1) {
    std::cerr << "jpm hash: expected one scenario file\n";
    return 2;
  }
  const auto sc = jpm::spec::load_scenario_file(args[0]);
  std::cout << jpm::spec::scenario_hash(sc) << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(std::cerr, 2);
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (command == "run") return cmd_run(args);
    if (command == "validate") return cmd_validate(args);
    if (command == "print") return cmd_print(args);
    if (command == "hash") return cmd_hash(args);
    if (command == "help" || command == "--help" || command == "-h") {
      return usage(std::cout, 0);
    }
  } catch (const jpm::spec::SpecError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  std::cerr << "jpm: unknown command \"" << command << "\"\n";
  return usage(std::cerr, 2);
}
