// Fault injection and graceful degradation (jpm::fault).
//
// A FaultPlan is a seeded, declarative description of the faults to inject
// into a run. Every stream of fault decisions is derived deterministically
// from the plan's seed plus a structural index (spindle number, server
// number), never from wall-clock time or scheduling, so a faulted run is
// replayable bit-identically under any JPM_THREADS and across repeats.
//
// Three degradation paths consume the plan:
//   * Disk (disk/disk_queue.cc): spin-up attempts fail with probability
//     p_spinup_fail and are retried with bounded exponential backoff; each
//     failed attempt costs one transition energy plus the retry delay. After
//     spinup_degrade_after consecutive failures the spindle is degraded:
//     a single disk is pinned always-on and serves with elevated latency,
//     an array member stops receiving stripes (DiskArray re-routes).
//   * Manager (core/joint_power_manager.cc): period statistics and search
//     results are validated; non-finite inputs or a failed search fall back
//     to the conservative posture (all memory, 2-competitive timeout). The
//     closed-loop guard additionally watches *observed* utilization and
//     delayed-request ratio and backs the timeout off multiplicatively when
//     the previous period violated them, relaxing again on clean periods.
//   * Cluster (cluster/cluster.cc): servers crash as a Poisson process with
//     mean time between failures server_mtbf_s; a crashed server's partition
//     re-routes to survivors for server_outage_s, then the server restarts.
//
// With plan.enabled == false every consumer takes its pre-fault code path
// and output stays bit-identical to a build without fault injection.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "jpm/util/rng.h"

namespace jpm::fault {

// Closed-loop constraint guard for the joint power manager. Disabled by
// default so directly-constructed managers keep the paper's open-loop
// behavior; fault-injected engines enable it through FaultPlan::guard.
struct ManagerGuardConfig {
  bool enabled = false;
  // Timeout scale multiplier applied after a period that violated the
  // observed utilization or delayed-ratio limit.
  double backoff_factor = 2.0;
  // Scale divisor applied after a clean period (recovery toward open loop).
  double relax_factor = 2.0;
  // Ceiling on the scale so recovery takes a bounded number of periods.
  double max_scale = 64.0;
};

struct FaultPlan {
  bool enabled = false;
  std::uint64_t seed = 1;

  // --- disk spin-up faults ---
  // Probability that one spin-up attempt fails.
  double p_spinup_fail = 0.0;
  // Consecutive failures before the spindle is marked degraded.
  std::uint32_t spinup_degrade_after = 3;
  // Retry backoff: initial delay, doubled per attempt, bounded by the max.
  double spinup_backoff_s = 1.0;
  double spinup_backoff_max_s = 30.0;
  // Service-time multiplier of a degraded spindle (elevated latency).
  double degraded_service_factor = 1.5;

  // --- manager guard ---
  ManagerGuardConfig guard;

  // --- cluster server crashes ---
  // Mean time between failures per server; 0 disables crash injection.
  double server_mtbf_s = 0.0;
  // Outage length: the crashed server restarts this long after the crash.
  double server_outage_s = 120.0;

  bool disk_faults_active() const { return enabled && p_spinup_fail > 0.0; }
  bool crashes_active() const { return enabled && server_mtbf_s > 0.0; }
};

// Throws std::invalid_argument with a descriptive message on out-of-range
// knobs (probabilities outside [0, 1], non-positive thresholds, ...).
void validate(const FaultPlan& plan);

// Counters describing how a run degraded and recovered; threaded through
// RunMetrics and ClusterMetrics. All-zero on a fault-free run.
struct ReliabilityMetrics {
  // Disk path.
  std::uint64_t spinup_retries = 0;    // failed spin-up attempts
  double retry_delay_s = 0.0;          // total delay spent retrying
  std::uint32_t degraded_spindles = 0;
  double degraded_time_s = 0.0;        // summed per degraded spindle
  std::uint64_t rerouted_requests = 0; // array reads moved off degraded disks
  // Manager path.
  std::uint64_t manager_fallbacks = 0; // invalid input / failed search
  std::uint64_t forced_fallbacks = 0;  // stream overload degrade posture
  std::uint64_t violated_periods = 0;  // observed U or D violations
  std::uint64_t guard_backoffs = 0;    // guard escalations
  // Cluster path.
  std::uint64_t server_crashes = 0;
  std::uint64_t failed_over_requests = 0;  // requests re-routed off a dead server

  void merge(const ReliabilityMetrics& other);
  bool any() const;
};

// Deterministic Bernoulli stream of spin-up failures for one spindle. The
// stream depends only on (plan.seed, spindle_index) and the order of
// attempts, so replays are bit-identical regardless of thread count.
class SpinUpFaultStream {
 public:
  // Inactive stream: attempt_fails() is always false, no RNG is consumed.
  SpinUpFaultStream() = default;
  SpinUpFaultStream(const FaultPlan& plan, std::uint32_t spindle_index);

  bool active() const { return active_; }
  // Draws the next attempt outcome (true = the spin-up attempt fails).
  bool attempt_fails();
  // Backoff before retry number `failed_attempts` (1-based), bounded
  // exponential: initial * 2^(n-1), capped at the plan's max.
  double backoff_s(std::uint32_t failed_attempts) const;
  const FaultPlan& plan() const { return plan_; }

 private:
  FaultPlan plan_;
  Rng rng_;
  bool active_ = false;
};

// Crash outage windows [crash, crash + outage) for one server over a run,
// drawn as a Poisson process (exponential gaps of mean server_mtbf_s) from
// a stream derived from (plan.seed, server_index). Empty when crashes are
// disabled. Windows are disjoint and sorted.
std::vector<std::pair<double, double>> crash_windows(const FaultPlan& plan,
                                                     std::uint32_t server_index,
                                                     double duration_s);

// Derives an independent deterministic seed for a structural sub-stream
// (per spindle, per server) from the plan seed.
std::uint64_t stream_seed(std::uint64_t base_seed, std::uint64_t salt);

}  // namespace jpm::fault
