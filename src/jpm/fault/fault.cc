#include "jpm/fault/fault.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "jpm/telemetry/telemetry.h"

namespace jpm::fault {
namespace {

void reject(const std::string& what) { throw std::invalid_argument(what); }

void require(bool ok, const char* msg) {
  if (!ok) reject(std::string("FaultPlan: ") + msg);
}

}  // namespace

void validate(const FaultPlan& plan) {
  require(plan.p_spinup_fail >= 0.0 && plan.p_spinup_fail <= 1.0,
          "p_spinup_fail must lie in [0, 1]");
  require(plan.spinup_degrade_after >= 1,
          "spinup_degrade_after must be at least 1");
  require(plan.spinup_backoff_s >= 0.0,
          "spinup_backoff_s must be nonnegative");
  require(plan.spinup_backoff_max_s >= plan.spinup_backoff_s,
          "spinup_backoff_max_s must be at least spinup_backoff_s");
  require(plan.degraded_service_factor >= 1.0,
          "degraded_service_factor must be at least 1");
  require(plan.guard.backoff_factor >= 1.0,
          "guard.backoff_factor must be at least 1");
  require(plan.guard.relax_factor >= 1.0,
          "guard.relax_factor must be at least 1");
  require(plan.guard.max_scale >= 1.0, "guard.max_scale must be at least 1");
  require(plan.server_mtbf_s >= 0.0, "server_mtbf_s must be nonnegative");
  require(plan.server_outage_s > 0.0, "server_outage_s must be positive");
  require(std::isfinite(plan.p_spinup_fail) &&
              std::isfinite(plan.spinup_backoff_s) &&
              std::isfinite(plan.spinup_backoff_max_s) &&
              std::isfinite(plan.degraded_service_factor) &&
              std::isfinite(plan.server_mtbf_s) &&
              std::isfinite(plan.server_outage_s),
          "fault knobs must be finite");
}

void ReliabilityMetrics::merge(const ReliabilityMetrics& other) {
  spinup_retries += other.spinup_retries;
  retry_delay_s += other.retry_delay_s;
  degraded_spindles += other.degraded_spindles;
  degraded_time_s += other.degraded_time_s;
  rerouted_requests += other.rerouted_requests;
  manager_fallbacks += other.manager_fallbacks;
  forced_fallbacks += other.forced_fallbacks;
  violated_periods += other.violated_periods;
  guard_backoffs += other.guard_backoffs;
  server_crashes += other.server_crashes;
  failed_over_requests += other.failed_over_requests;
}

bool ReliabilityMetrics::any() const {
  return spinup_retries != 0 || retry_delay_s != 0.0 ||
         degraded_spindles != 0 || degraded_time_s != 0.0 ||
         rerouted_requests != 0 || manager_fallbacks != 0 ||
         forced_fallbacks != 0 || violated_periods != 0 || guard_backoffs != 0 ||
         server_crashes != 0 || failed_over_requests != 0;
}

std::uint64_t stream_seed(std::uint64_t base_seed, std::uint64_t salt) {
  // splitmix64-style mix keeps sub-streams decorrelated even for adjacent
  // salts; the Rng constructor mixes once more.
  std::uint64_t z = base_seed + (salt + 1) * 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

SpinUpFaultStream::SpinUpFaultStream(const FaultPlan& plan,
                                     std::uint32_t spindle_index)
    : plan_(plan), rng_(stream_seed(plan.seed, spindle_index)),
      active_(plan.disk_faults_active()) {}

bool SpinUpFaultStream::attempt_fails() {
  if (!active_) return false;
  return rng_.chance(plan_.p_spinup_fail);
}

double SpinUpFaultStream::backoff_s(std::uint32_t failed_attempts) const {
  if (failed_attempts == 0) return 0.0;
  double backoff = plan_.spinup_backoff_s;
  for (std::uint32_t i = 1; i < failed_attempts; ++i) {
    backoff *= 2.0;
    if (backoff >= plan_.spinup_backoff_max_s) break;
  }
  return std::min(backoff, plan_.spinup_backoff_max_s);
}

std::vector<std::pair<double, double>> crash_windows(
    const FaultPlan& plan, std::uint32_t server_index, double duration_s) {
  std::vector<std::pair<double, double>> windows;
  if (!plan.crashes_active() || duration_s <= 0.0) return windows;
  // Server sub-streams are salted past the spindle range so a config using
  // both disk faults and crashes never correlates the two.
  Rng rng(stream_seed(plan.seed, 0x1000000ull + server_index));
  double t = rng.exponential(plan.server_mtbf_s);
  while (t < duration_s) {
    const double end = t + plan.server_outage_s;
    windows.emplace_back(t, end);
    // The next failure clock starts after the restart.
    t = end + rng.exponential(plan.server_mtbf_s);
  }
  // Setup-time annotation (usually an orphan event — drawn before any run
  // stream is bound): how much outage the plan injected into this server.
  TELEM_EVENT(kFault, "crash_windows_drawn", 0.0,
              {"server", static_cast<double>(server_index)},
              {"windows", static_cast<double>(windows.size())});
  return windows;
}

}  // namespace jpm::fault
