#include "jpm/stream/wire.h"

#include <cmath>
#include <cstring>
#include <istream>
#include <ostream>

#include "jpm/util/check.h"
#include "jpm/util/json.h"
#include "jpm/workload/trace.h"

namespace jpm::stream {

namespace {

constexpr std::size_t kBinaryPayloadBytes = 17;  // f64 + u64 + u8

// The wire is little-endian; encode/decode bytewise so the codec is
// host-endianness independent.
void put_u32(unsigned char* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<unsigned char>(v >> (8 * i));
}
void put_u64(unsigned char* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<unsigned char>(v >> (8 * i));
}
std::uint32_t get_u32(const unsigned char* in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(in[i]) << (8 * i);
  return v;
}
std::uint64_t get_u64(const unsigned char* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  return v;
}

}  // namespace

bool wire_format_from_name(const std::string& name, WireFormat* out) {
  if (name == "auto") *out = WireFormat::kAuto;
  else if (name == "jsonl") *out = WireFormat::kJsonl;
  else if (name == "binary") *out = WireFormat::kBinary;
  else return false;
  return true;
}

const char* wire_format_name(WireFormat format) {
  switch (format) {
    case WireFormat::kAuto: return "auto";
    case WireFormat::kJsonl: return "jsonl";
    case WireFormat::kBinary: return "binary";
  }
  return "?";
}

EventReader::EventReader(std::istream& in, WireFormat format)
    : in_(in), format_(format) {}

EventReader::Status EventReader::fail(const std::string& message) {
  error_ = message;
  return Status::kError;
}

EventReader::Status EventReader::next(StreamEvent* out) {
  if (!error_.empty()) return Status::kError;
  if (format_ == WireFormat::kAuto) {
    const int first = in_.peek();
    if (first == std::istream::traits_type::eof()) return Status::kEndOfStream;
    const char c = static_cast<char>(first);
    format_ = (c == '{' || c == '#' || c == ' ' || c == '\t' || c == '\r' ||
               c == '\n')
                  ? WireFormat::kJsonl
                  : WireFormat::kBinary;
  }
  return format_ == WireFormat::kJsonl ? next_jsonl(out) : next_binary(out);
}

EventReader::Status EventReader::next_jsonl(StreamEvent* out) {
  std::string line;
  for (;;) {
    if (!std::getline(in_, line)) return Status::kEndOfStream;
    ++line_;
    // Strip a trailing CR (pipes fed from CRLF producers).
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::size_t start = 0;
    while (start < line.size() &&
           (line[start] == ' ' || line[start] == '\t')) {
      ++start;
    }
    if (start == line.size() || line[start] == '#') continue;  // skip

    util::json::Value v;
    std::string err;
    if (!util::json::parse(line, &v, &err)) {
      return fail("line " + std::to_string(line_) + ": " + err);
    }
    if (!v.is_object()) {
      return fail("line " + std::to_string(line_) +
                  ": event must be a JSON object");
    }
    const util::json::Object& obj = v.as_object();
    const util::json::Value* t = obj.find("t");
    const util::json::Value* page = obj.find("page");
    if (t == nullptr || !t->is_number()) {
      return fail("line " + std::to_string(line_) +
                  ": missing numeric field \"t\"");
    }
    if (page == nullptr || !page->is_number()) {
      return fail("line " + std::to_string(line_) +
                  ": missing numeric field \"page\"");
    }
    if (!std::isfinite(t->as_number()) || t->as_number() < 0.0) {
      return fail("line " + std::to_string(line_) +
                  ": \"t\" must be finite and non-negative");
    }
    if (page->as_number() < 0.0) {
      return fail("line " + std::to_string(line_) +
                  ": \"page\" must be non-negative");
    }
    bool write = false;
    if (const util::json::Value* w = obj.find("write")) {
      if (!w->is_bool()) {
        return fail("line " + std::to_string(line_) +
                    ": \"write\" must be a boolean");
      }
      write = w->as_bool();
    }
    out->time_s = t->as_number();
    out->page = static_cast<std::uint64_t>(page->as_number());
    out->flags = write ? workload::kTraceFlagWrite : 0;
    return Status::kEvent;
  }
}

EventReader::Status EventReader::next_binary(StreamEvent* out) {
  unsigned char header[4];
  in_.read(reinterpret_cast<char*>(header), sizeof(header));
  if (in_.gcount() == 0 && in_.eof()) return Status::kEndOfStream;
  if (in_.gcount() != sizeof(header)) {
    return fail("record " + std::to_string(record_ + 1) +
                ": truncated length prefix");
  }
  const std::uint32_t len = get_u32(header);
  if (len < kBinaryPayloadBytes || len > (1u << 20)) {
    return fail("record " + std::to_string(record_ + 1) +
                ": implausible payload length " + std::to_string(len));
  }
  unsigned char payload[kBinaryPayloadBytes];
  in_.read(reinterpret_cast<char*>(payload), sizeof(payload));
  if (in_.gcount() != static_cast<std::streamsize>(sizeof(payload))) {
    return fail("record " + std::to_string(record_ + 1) +
                ": truncated payload");
  }
  // Skip any extension bytes a newer writer appended.
  for (std::uint32_t skip = len - kBinaryPayloadBytes; skip > 0; --skip) {
    if (in_.get() == std::istream::traits_type::eof()) {
      return fail("record " + std::to_string(record_ + 1) +
                  ": truncated payload");
    }
  }
  ++record_;
  const std::uint64_t time_bits = get_u64(payload);
  double t;
  static_assert(sizeof(t) == sizeof(time_bits));
  std::memcpy(&t, &time_bits, sizeof(t));
  if (!std::isfinite(t) || t < 0.0) {
    return fail("record " + std::to_string(record_) +
                ": time must be finite and non-negative");
  }
  out->time_s = t;
  out->page = get_u64(payload + 8);
  out->flags = payload[16];
  return Status::kEvent;
}

void write_event(std::ostream& out, const StreamEvent& event,
                 WireFormat format) {
  JPM_CHECK_MSG(format != WireFormat::kAuto,
                "write_event needs a concrete wire format");
  if (format == WireFormat::kJsonl) {
    util::json::Object obj;
    obj["t"] = event.time_s;
    obj["page"] = event.page;
    if ((event.flags & workload::kTraceFlagWrite) != 0) obj["write"] = true;
    out << util::json::dump(util::json::Value(std::move(obj))) << '\n';
    return;
  }
  unsigned char buf[4 + kBinaryPayloadBytes];
  put_u32(buf, kBinaryPayloadBytes);
  std::uint64_t time_bits;
  std::memcpy(&time_bits, &event.time_s, sizeof(time_bits));
  put_u64(buf + 4, time_bits);
  put_u64(buf + 12, event.page);
  buf[20] = event.flags;
  out.write(reinterpret_cast<const char*>(buf), sizeof(buf));
}

}  // namespace jpm::stream
