// Event wire formats for the streaming daemon (jpm serve).
//
// Two self-describing encodings of the same StreamEvent record:
//
//   * JSONL — one JSON object per line, human-writable:
//       {"t": 12.5, "page": 42, "write": false}
//     "t" (seconds) and "page" are required; "write" defaults to false.
//     Blank lines and lines starting with '#' are skipped.
//
//   * Binary — length-prefixed little-endian records for high-rate pipes:
//       u32 payload_len (>= 17) | f64 time_s | u64 page | u8 flags | ...
//     Readers consume the first 17 payload bytes and skip the rest, so the
//     record can grow without breaking old readers. `flags` uses the trace
//     flag bits (workload::kTraceFlagWrite).
//
// EventReader auto-detects the format from the first byte of the stream
// ('{', '#', or whitespace means JSONL) unless one is forced. Decoding
// errors are reported with a byte/line position, never thrown: the CLI
// turns them into a path-named non-zero exit.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "jpm/stream/ring.h"

namespace jpm::stream {

enum class WireFormat { kAuto, kJsonl, kBinary };

// Parses "auto" / "jsonl" / "binary"; returns false on an unknown name.
bool wire_format_from_name(const std::string& name, WireFormat* out);
const char* wire_format_name(WireFormat format);

class EventReader {
 public:
  enum class Status { kEvent, kEndOfStream, kError };

  explicit EventReader(std::istream& in, WireFormat format = WireFormat::kAuto);

  // Reads the next event. kError leaves a position-naming message in
  // error(); the reader is then spent (further calls keep returning kError).
  Status next(StreamEvent* out);
  const std::string& error() const { return error_; }
  // Format in effect after auto-detection (kAuto until the first byte).
  WireFormat format() const { return format_; }

 private:
  Status fail(const std::string& message);
  Status next_jsonl(StreamEvent* out);
  Status next_binary(StreamEvent* out);

  std::istream& in_;
  WireFormat format_;
  std::uint64_t line_ = 0;    // JSONL lines consumed
  std::uint64_t record_ = 0;  // binary records consumed
  std::string error_;
};

// Appends one event in the given concrete format (kAuto is an error).
void write_event(std::ostream& out, const StreamEvent& event,
                 WireFormat format);

}  // namespace jpm::stream
