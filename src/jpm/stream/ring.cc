#include "jpm/stream/ring.h"

#include "jpm/util/check.h"

namespace jpm::stream {

EventRing::EventRing(std::size_t capacity)
    : capacity_(capacity),
      mask_(capacity - 1),
      slots_(new Slot[capacity]) {
  JPM_CHECK_MSG(is_power_of_two(capacity) && capacity <= (1u << 30),
                "ring capacity must be a power of two in [1, 2^30]");
  for (std::size_t i = 0; i < capacity_; ++i) {
    slots_[i].sequence.store(2 * i, std::memory_order_relaxed);
  }
}

// Slot sequence encoding: 2*ticket = free for the producer holding `ticket`,
// 2*ticket + 1 = published by that producer and awaiting the consumer. The
// parity split keeps the two states disjoint for every capacity — the
// classic `seq = ticket + 1` publish value collides with the *next*
// producer ticket's free state when capacity == 1.

bool EventRing::try_push(const StreamEvent& event) {
  std::uint64_t ticket = tail_.load(std::memory_order_relaxed);
  for (;;) {
    Slot& slot = slots_[ticket & mask_];
    const std::uint64_t seq = slot.sequence.load(std::memory_order_acquire);
    const std::int64_t dif =
        static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(2 * ticket);
    if (dif == 0) {
      // The slot is free for this ticket; claim it. A failed CAS means
      // another producer took the ticket — reload and retry with theirs.
      if (tail_.compare_exchange_weak(ticket, ticket + 1,
                                      std::memory_order_relaxed)) {
        slot.event = event;
        slot.sequence.store(2 * ticket + 1, std::memory_order_release);
        return true;
      }
    } else if (dif < 0) {
      // The slot still holds the event of `ticket - capacity`: ring full.
      return false;
    } else {
      // Another producer is ahead; chase the current tail.
      ticket = tail_.load(std::memory_order_relaxed);
    }
  }
}

bool EventRing::try_pop(StreamEvent* out) {
  const std::uint64_t ticket = head_.load(std::memory_order_relaxed);
  Slot& slot = slots_[ticket & mask_];
  const std::uint64_t seq = slot.sequence.load(std::memory_order_acquire);
  const std::int64_t dif = static_cast<std::int64_t>(seq) -
                           static_cast<std::int64_t>(2 * ticket + 1);
  if (dif < 0) return false;  // next event not published yet
  // Single consumer: nobody else touches head_, a plain ordered store
  // suffices (relaxed — producers never read head_).
  *out = slot.event;
  head_.store(ticket + 1, std::memory_order_relaxed);
  // Recycle the slot for the producer `capacity` tickets ahead.
  slot.sequence.store(2 * (ticket + capacity_), std::memory_order_release);
  return true;
}

std::size_t EventRing::pop_chunk(StreamEvent* out, std::size_t max) {
  std::size_t n = 0;
  while (n < max && try_pop(out + n)) ++n;
  return n;
}

std::size_t EventRing::size_approx() const {
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
  if (tail <= head) return 0;
  const std::uint64_t n = tail - head;
  return n > capacity_ ? capacity_ : static_cast<std::size_t>(n);
}

}  // namespace jpm::stream
