// Push-mode streaming engine (jpm::stream).
//
// StreamEngine is the daemon core: producer threads offer() live events into
// a bounded MPSC EventRing, a single consumer thread pump()s them into a
// push-mode sim::Engine that makes the paper's T-period joint decisions as
// the stream arrives. What happens when producers outrun the consumer is an
// explicit, spec-configurable policy:
//
//   * block   — a full ring back-pressures the producer: offer() waits up to
//               block_timeout_s for space, then sheds the event (counted as
//               a block timeout AND a shed).
//   * shed    — drop-newest: a full ring sheds immediately, with per-class
//               (read/write) shed counters. Shed events are charged to the
//               simulated period that was current when the consumer noticed
//               them, which closes flagged degraded-accuracy.
//   * degrade — offers behave like block, and additionally while ring
//               occupancy sits above high_watermark the joint manager is
//               pinned to its conservative fallback posture (all memory,
//               2-competitive timeout, no candidate search) so each period
//               boundary costs O(1); occupancy below low_watermark releases
//               it. Affected periods are flagged degraded.
//
// A watchdog in run_until_closed() detects a stalled stream (no events for
// watchdog_timeout_s of wall time) and forces a clean close of the current
// simulated period, so reports never hang on a half-open period. Timestamps
// are clamped monotonic (live producers race; simulated time cannot go
// backwards) with a counter recording how often.
//
// Threading contract: offer()/close() from any number of threads;
// pump()/run_until_closed()/force_period_close()/finish*() from exactly one
// consumer thread. Driven lock-step from a single thread (as the overload
// tests do), every counter and metric is deterministic.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "jpm/sim/engine.h"
#include "jpm/stream/ring.h"

namespace jpm::stream {

enum class OverloadPolicy { kBlock, kShed, kDegrade };

const char* overload_policy_name(OverloadPolicy policy);
// Parses "block" / "shed" / "degrade"; returns false on an unknown name.
bool overload_policy_from_name(const std::string& name, OverloadPolicy* out);

struct StreamConfig {
  // Ring slots; power of two in [1, 2^30].
  std::uint64_t ring_capacity = 1024;
  OverloadPolicy overload = OverloadPolicy::kBlock;
  // Degrade policy watermarks, as occupancy fractions of ring_capacity:
  // engage the conservative fallback at >= high, release at <= low.
  double high_watermark = 0.875;
  double low_watermark = 0.5;
  // Longest a blocked offer() waits for ring space before shedding.
  double block_timeout_s = 1.0;
  // Wall-clock silence after which the watchdog forces a period close;
  // 0 disables the watchdog.
  double watchdog_timeout_s = 5.0;
  // Events drained per pump() into one engine chunk (SoA hot path).
  std::uint32_t max_batch = 256;

  friend bool operator==(const StreamConfig&, const StreamConfig&) = default;
};

// Throws std::invalid_argument naming the offending knob.
void validate(const StreamConfig& config);

// Point-in-time counters; exact once producers have stopped.
struct StreamStats {
  std::uint64_t events_offered = 0;    // offer() calls
  std::uint64_t events_accepted = 0;   // made it into the ring
  std::uint64_t events_processed = 0;  // reached the engine
  std::uint64_t shed_reads = 0;
  std::uint64_t shed_writes = 0;
  std::uint64_t block_waits = 0;     // offers that waited at least once
  std::uint64_t block_timeouts = 0;  // waits that expired (event shed)
  double blocked_s = 0.0;            // producer wall time spent waiting
  std::uint64_t degrade_engagements = 0;
  std::uint64_t watchdog_closes = 0;
  std::uint64_t clamped_timestamps = 0;  // non-monotonic arrivals clamped
  std::uint64_t max_occupancy = 0;       // high-water mark of ring occupancy
};

class StreamEngine {
 public:
  StreamEngine(const sim::LiveSource& source, const sim::PolicySpec& policy,
               const sim::EngineConfig& engine_config,
               const StreamConfig& stream_config);

  // ---- producer side (any thread) ----------------------------------------
  // Applies the overload policy; returns true iff the event entered the
  // ring (false = shed, after any configured blocking wait).
  bool offer(const StreamEvent& event);
  // EOF: no further offers; the consumer drains what remains.
  void close() { ring_.close(); }

  // ---- consumer side (one thread) ----------------------------------------
  // Drains up to max_batch events into the engine; returns the count.
  std::size_t pump();
  // Pumps until close() + a drained ring, with the watchdog forcing period
  // closes across wall-clock stalls. Returns with the ring drained.
  void run_until_closed();
  // Advances simulated time to the next period boundary without an access —
  // the watchdog's action, callable directly for deterministic tests.
  void force_period_close();
  bool drained() const { return ring_.drained(); }

  // Ends the run: drains any pending shed accounting, publishes stream
  // telemetry, and closes the engine. finish() picks the end time as the
  // latest of the last event, the source's duration hint, and one period
  // past warm-up (a run must outlast its warm-up).
  sim::RunMetrics finish();
  sim::RunMetrics finish_at(double end_s);

  StreamStats stats() const;
  const StreamConfig& config() const { return config_; }
  std::size_t ring_occupancy() const { return ring_.size_approx(); }
  double last_time_s() const { return last_time_; }

 private:
  bool offer_blocking(const StreamEvent& event);
  void shed(const StreamEvent& event);
  void drain_pending_shed();
  void update_degrade(std::size_t occupancy);
  void publish_telemetry(double end_s);

  StreamConfig config_;
  EventRing ring_;
  sim::Engine engine_;
  double warm_up_s_;
  double duration_hint_s_;

  // Producer-shared counters (consumer reads them in stats()/drain).
  std::atomic<std::uint64_t> events_offered_{0};
  std::atomic<std::uint64_t> events_accepted_{0};
  std::atomic<std::uint64_t> shed_reads_{0};
  std::atomic<std::uint64_t> shed_writes_{0};
  std::atomic<std::uint64_t> pending_shed_{0};  // not yet charged to a period
  std::atomic<std::uint64_t> block_waits_{0};
  std::atomic<std::uint64_t> block_timeouts_{0};
  std::atomic<std::uint64_t> blocked_ns_{0};

  // Consumer-only state.
  std::uint64_t events_processed_ = 0;
  std::uint64_t degrade_engagements_ = 0;
  std::uint64_t watchdog_closes_ = 0;
  std::uint64_t clamped_timestamps_ = 0;
  std::uint64_t max_occupancy_ = 0;
  bool degrade_engaged_ = false;
  bool finished_ = false;
  double last_time_ = 0.0;  // simulated clock high-water mark
  std::vector<StreamEvent> scratch_;
  std::vector<double> times_;
  std::vector<std::uint64_t> pages_;
  std::vector<std::uint8_t> flags_;
};

}  // namespace jpm::stream
