#include "jpm/stream/stream_engine.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "jpm/telemetry/registry.h"
#include "jpm/telemetry/telemetry.h"
#include "jpm/util/check.h"
#include "jpm/workload/trace.h"

namespace jpm::stream {

namespace {
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}
}  // namespace

const char* overload_policy_name(OverloadPolicy policy) {
  switch (policy) {
    case OverloadPolicy::kBlock: return "block";
    case OverloadPolicy::kShed: return "shed";
    case OverloadPolicy::kDegrade: return "degrade";
  }
  return "?";
}

bool overload_policy_from_name(const std::string& name, OverloadPolicy* out) {
  if (name == "block") *out = OverloadPolicy::kBlock;
  else if (name == "shed") *out = OverloadPolicy::kShed;
  else if (name == "degrade") *out = OverloadPolicy::kDegrade;
  else return false;
  return true;
}

void validate(const StreamConfig& config) {
  if (!is_power_of_two(config.ring_capacity) ||
      config.ring_capacity > (1ull << 30)) {
    throw std::invalid_argument(
        "ring_capacity must be a power of two in [1, 2^30]");
  }
  if (!(config.low_watermark >= 0.0 && config.low_watermark <= 1.0) ||
      !(config.high_watermark >= 0.0 && config.high_watermark <= 1.0)) {
    throw std::invalid_argument("watermarks must lie in [0, 1]");
  }
  if (config.low_watermark > config.high_watermark) {
    throw std::invalid_argument(
        "low_watermark must not exceed high_watermark");
  }
  if (!(config.block_timeout_s >= 0.0)) {
    throw std::invalid_argument("block_timeout_s must be >= 0");
  }
  if (!(config.watchdog_timeout_s >= 0.0)) {
    throw std::invalid_argument("watchdog_timeout_s must be >= 0");
  }
  if (config.max_batch == 0 || config.max_batch > 65536) {
    throw std::invalid_argument("max_batch must be in [1, 65536]");
  }
}

StreamEngine::StreamEngine(const sim::LiveSource& source,
                           const sim::PolicySpec& policy,
                           const sim::EngineConfig& engine_config,
                           const StreamConfig& stream_config)
    : config_(stream_config),
      ring_(static_cast<std::size_t>(stream_config.ring_capacity)),
      engine_(source, policy, engine_config),
      warm_up_s_(engine_config.warm_up_s),
      duration_hint_s_(source.duration_hint_s) {
  validate(stream_config);
  scratch_.resize(config_.max_batch);
  times_.resize(config_.max_batch);
  pages_.resize(config_.max_batch);
  flags_.resize(config_.max_batch);
}

bool StreamEngine::offer(const StreamEvent& event) {
  events_offered_.fetch_add(1, std::memory_order_relaxed);
  if (ring_.try_push(event)) {
    events_accepted_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  if (config_.overload == OverloadPolicy::kShed) {
    shed(event);
    return false;
  }
  // block and degrade both back-pressure the producer on a full ring;
  // degrade additionally pins the manager via the consumer's watermarks.
  return offer_blocking(event);
}

bool StreamEngine::offer_blocking(const StreamEvent& event) {
  block_waits_.fetch_add(1, std::memory_order_relaxed);
  const Clock::time_point start = Clock::now();
  for (;;) {
    if (seconds_since(start) >= config_.block_timeout_s) break;
    std::this_thread::sleep_for(std::chrono::microseconds(50));
    if (ring_.try_push(event)) {
      blocked_ns_.fetch_add(
          static_cast<std::uint64_t>(seconds_since(start) * 1e9),
          std::memory_order_relaxed);
      events_accepted_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  blocked_ns_.fetch_add(
      static_cast<std::uint64_t>(seconds_since(start) * 1e9),
      std::memory_order_relaxed);
  block_timeouts_.fetch_add(1, std::memory_order_relaxed);
  shed(event);
  return false;
}

void StreamEngine::shed(const StreamEvent& event) {
  if ((event.flags & workload::kTraceFlagWrite) != 0) {
    shed_writes_.fetch_add(1, std::memory_order_relaxed);
  } else {
    shed_reads_.fetch_add(1, std::memory_order_relaxed);
  }
  pending_shed_.fetch_add(1, std::memory_order_relaxed);
}

void StreamEngine::drain_pending_shed() {
  const std::uint64_t n = pending_shed_.exchange(0, std::memory_order_relaxed);
  if (n != 0) engine_.note_shed(n);
}

void StreamEngine::update_degrade(std::size_t occupancy) {
  if (config_.overload != OverloadPolicy::kDegrade) return;
  const double frac = static_cast<double>(occupancy) /
                      static_cast<double>(ring_.capacity());
  if (!degrade_engaged_ && frac >= config_.high_watermark) {
    degrade_engaged_ = true;
    ++degrade_engagements_;
    engine_.set_forced_fallback(true);
    TELEM_EVENT(kStream, "degrade_engage", last_time_,
                {"occupancy", static_cast<double>(occupancy)});
  } else if (degrade_engaged_ && frac <= config_.low_watermark) {
    degrade_engaged_ = false;
    engine_.set_forced_fallback(false);
    TELEM_EVENT(kStream, "degrade_release", last_time_,
                {"occupancy", static_cast<double>(occupancy)});
  }
}

std::size_t StreamEngine::pump() {
  JPM_CHECK_MSG(!finished_, "pump after finish");
  const std::size_t occupancy = ring_.size_approx();
  max_occupancy_ = std::max<std::uint64_t>(max_occupancy_, occupancy);
  // Engage/release the degrade posture on the pre-drain occupancy so a
  // saturated ring is seen even when one pump() would empty it.
  update_degrade(occupancy);

  const std::size_t n = ring_.pop_chunk(scratch_.data(), scratch_.size());
  if (n == 0) return 0;
  for (std::size_t i = 0; i < n; ++i) {
    double t = scratch_[i].time_s;
    if (t < last_time_) {
      t = last_time_;
      ++clamped_timestamps_;
    }
    last_time_ = t;
    times_[i] = t;
    pages_[i] = scratch_[i].page;
    flags_[i] = scratch_[i].flags;
  }
  // Charge sheds noticed so far to the period that is current *before*
  // these events advance simulated time.
  drain_pending_shed();
  engine_.push_chunk(times_.data(), pages_.data(), flags_.data(), n);
  events_processed_ += n;
  if (telemetry::enabled()) {
    if (telemetry::RunRecorder* rec = telemetry::current_run()) {
      rec->gauge("ring_occupancy").set(static_cast<double>(occupancy));
    }
  }
  return n;
}

void StreamEngine::run_until_closed() {
  Clock::time_point last_progress = Clock::now();
  while (!ring_.drained()) {
    if (pump() > 0) {
      last_progress = Clock::now();
      continue;
    }
    if (config_.watchdog_timeout_s > 0.0 &&
        seconds_since(last_progress) >= config_.watchdog_timeout_s) {
      force_period_close();
      last_progress = Clock::now();
      continue;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

void StreamEngine::force_period_close() {
  JPM_CHECK_MSG(!finished_, "period close after finish");
  const double boundary = engine_.next_boundary_s();
  drain_pending_shed();
  engine_.advance_to(boundary);
  last_time_ = std::max(last_time_, boundary);
  ++watchdog_closes_;
  TELEM_EVENT(kStream, "watchdog_close", boundary,
              {"occupancy", static_cast<double>(ring_.size_approx())});
}

sim::RunMetrics StreamEngine::finish() {
  // A run must strictly outlast its warm-up; pad an empty or short stream
  // out to one period past the warm-up boundary.
  const double min_end = warm_up_s_ + engine_.period_s();
  return finish_at(std::max({last_time_, duration_hint_s_, min_end}));
}

sim::RunMetrics StreamEngine::finish_at(double end_s) {
  JPM_CHECK_MSG(!finished_, "StreamEngine::finish is single-shot");
  finished_ = true;
  drain_pending_shed();
  publish_telemetry(end_s);
  return engine_.finish(end_s);
}

StreamStats StreamEngine::stats() const {
  StreamStats s;
  s.events_offered = events_offered_.load(std::memory_order_relaxed);
  s.events_accepted = events_accepted_.load(std::memory_order_relaxed);
  s.events_processed = events_processed_;
  s.shed_reads = shed_reads_.load(std::memory_order_relaxed);
  s.shed_writes = shed_writes_.load(std::memory_order_relaxed);
  s.block_waits = block_waits_.load(std::memory_order_relaxed);
  s.block_timeouts = block_timeouts_.load(std::memory_order_relaxed);
  s.blocked_s =
      static_cast<double>(blocked_ns_.load(std::memory_order_relaxed)) * 1e-9;
  s.degrade_engagements = degrade_engagements_;
  s.watchdog_closes = watchdog_closes_;
  s.clamped_timestamps = clamped_timestamps_;
  s.max_occupancy = max_occupancy_;
  return s;
}

void StreamEngine::publish_telemetry(double end_s) {
  const StreamStats s = stats();
  TELEM_EVENT(kStream, "stream_finish", end_s,
              {"accepted", static_cast<double>(s.events_accepted)},
              {"shed", static_cast<double>(s.shed_reads + s.shed_writes)},
              {"watchdog_closes", static_cast<double>(s.watchdog_closes)});
  if (!telemetry::enabled()) return;
  telemetry::RunRecorder* rec = telemetry::current_run();
  if (rec == nullptr) return;
  rec->counter("stream_events_offered").add(s.events_offered);
  rec->counter("stream_events_accepted").add(s.events_accepted);
  rec->counter("stream_events_processed").add(s.events_processed);
  rec->counter("stream_shed_reads").add(s.shed_reads);
  rec->counter("stream_shed_writes").add(s.shed_writes);
  rec->counter("stream_block_waits").add(s.block_waits);
  rec->counter("stream_block_timeouts").add(s.block_timeouts);
  rec->counter("stream_degrade_engagements").add(s.degrade_engagements);
  rec->counter("stream_watchdog_closes").add(s.watchdog_closes);
  rec->counter("stream_clamped_timestamps").add(s.clamped_timestamps);
  rec->gauge("ring_occupancy_max").set(static_cast<double>(s.max_occupancy));
}

}  // namespace jpm::stream
