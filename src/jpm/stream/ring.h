// Bounded lock-free MPSC event ring (jpm::stream).
//
// The daemon-side ingress queue: any number of producer threads publish
// StreamEvents with try_push, exactly one consumer thread drains them with
// try_pop / pop_chunk. The implementation is the classic bounded
// sequence-number queue (Vyukov) restricted to a single consumer:
//
//   * Capacity is a power of two; slot index = ticket & (capacity - 1).
//   * Each slot carries a sequence counter in a doubled ticket space
//     (2*ticket = free, 2*ticket + 1 = published, disjoint states for every
//     capacity including 1). A producer claims a ticket with a CAS on
//     `tail_`, writes the event, then *publishes* it by storing the odd
//     sequence with release order; the consumer's acquire load of the
//     sequence is the only synchronization an event needs. No locks, no
//     unbounded spinning: a full ring fails the push immediately and the
//     caller applies its overload policy.
//   * Slots are cache-line padded so two producers publishing neighboring
//     tickets never write the same line; head_, tail_, and the closed flag
//     live on their own lines for the same reason.
//
// try_push never blocks and never spuriously fails when space is available;
// try_pop never blocks and consumes events in ticket (publication) order,
// which for a single producer is its push order (per-producer FIFO holds in
// general). close() is the producer-side EOF: consumers observe
// closed() && a drained ring as end-of-stream.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace jpm::stream {

// One live cache access entering the daemon. `flags` uses the trace flag
// bits (workload::kTraceFlagStart / kTraceFlagWrite).
struct StreamEvent {
  double time_s = 0.0;
  std::uint64_t page = 0;
  std::uint8_t flags = 0;
};

class EventRing {
 public:
  // Capacity must be a power of two in [1, 2^30].
  explicit EventRing(std::size_t capacity);
  EventRing(const EventRing&) = delete;
  EventRing& operator=(const EventRing&) = delete;

  // Producer side (any thread). Returns false when the ring is full; the
  // event is not enqueued and the caller decides (block, shed, degrade).
  bool try_push(const StreamEvent& event);

  // Consumer side (exactly one thread). Returns false when no published
  // event is available.
  bool try_pop(StreamEvent* out);
  // Pops up to `max` events into `out`; returns the count (possibly 0).
  std::size_t pop_chunk(StreamEvent* out, std::size_t max);

  // Producer-side EOF marker. Idempotent; events already published remain
  // poppable (drain before treating the stream as finished).
  void close() { closed_.store(true, std::memory_order_release); }
  bool closed() const { return closed_.load(std::memory_order_acquire); }
  // End-of-stream: closed and every published event consumed. Consumer-side
  // check (a racing producer may still be mid-push before close()).
  bool drained() const { return closed() && size_approx() == 0; }

  std::size_t capacity() const { return capacity_; }
  // Published-but-unconsumed count; exact when producers are quiescent,
  // otherwise a point-in-time approximation (clamped to [0, capacity]).
  std::size_t size_approx() const;

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> sequence;
    StreamEvent event;
  };

  const std::size_t capacity_;
  const std::uint64_t mask_;
  std::unique_ptr<Slot[]> slots_;
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // next producer ticket
  alignas(64) std::atomic<std::uint64_t> head_{0};  // next consumer ticket
  alignas(64) std::atomic<bool> closed_{false};
};

// True iff n is a power of two (and nonzero).
constexpr bool is_power_of_two(std::uint64_t n) {
  return n != 0 && (n & (n - 1)) == 0;
}

}  // namespace jpm::stream
