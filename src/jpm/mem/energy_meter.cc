#include "jpm/mem/energy_meter.h"

#include "jpm/util/check.h"

namespace jpm::mem {

MemoryEnergyMeter::MemoryEnergyMeter(const RdramParams& params,
                                     std::uint64_t initial_bytes,
                                     double start_time_s)
    : params_(params), size_bytes_(initial_bytes),
      integrated_to_(start_time_s) {}

void MemoryEnergyMeter::set_size(std::uint64_t bytes, double t) {
  finalize(t);
  size_bytes_ = bytes;
}

void MemoryEnergyMeter::finalize(double t) {
  JPM_CHECK_MSG(t >= integrated_to_, "time must be nondecreasing");
  energy_.static_j += params_.nap_power_w(size_bytes_) * (t - integrated_to_);
  integrated_to_ = t;
}

}  // namespace jpm::mem
