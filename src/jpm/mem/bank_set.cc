#include "jpm/mem/bank_set.h"

#include <algorithm>
#include <limits>

#include "jpm/util/check.h"

namespace jpm::mem {

BankSet::BankSet(std::uint32_t bank_count, const RdramParams& params,
                 BankPolicy policy, double start_time_s)
    : params_(params),
      policy_(policy),
      bank_nap_w_(params.nap_power_w(params.bank_bytes)),
      bank_pd_w_(params.powerdown_power_w(params.bank_bytes)),
      last_access_(bank_count, start_time_s),
      integrated_to_(bank_count, start_time_s),
      generation_(bank_count, 0),
      disabled_(bank_count, false) {
  JPM_CHECK(bank_count > 0);
  if (policy_ == BankPolicy::kDisable) {
    for (std::uint32_t b = 0; b < bank_count; ++b) {
      timers_.push(Timer{start_time_s + params_.disable_timeout_s, b, 0});
    }
  }
}

void BankSet::integrate(std::uint32_t bank, double t) {
  const double from = integrated_to_[bank];
  if (t <= from) return;

  double timeout;
  double low_w;
  switch (policy_) {
    case BankPolicy::kNapOnly:
      timeout = std::numeric_limits<double>::infinity();
      low_w = bank_nap_w_;
      break;
    case BankPolicy::kPowerDown:
      timeout = params_.powerdown_timeout_s;
      low_w = bank_pd_w_;
      break;
    case BankPolicy::kDisable:
      timeout = params_.disable_timeout_s;
      low_w = 0.0;  // disabled banks consume nothing
      break;
    default:
      JPM_CHECK_MSG(false, "unknown bank policy");
      return;
  }

  const double cutoff = last_access_[bank] + timeout;
  const double nap_dt = std::clamp(cutoff - from, 0.0, t - from);
  const double low_dt = (t - from) - nap_dt;
  static_energy_j_ += bank_nap_w_ * nap_dt + low_w * low_dt;
  integrated_to_[bank] = t;
}

void BankSet::touch(std::uint32_t bank, double t) {
  JPM_CHECK(bank < bank_count());
  integrate(bank, t);
  disabled_[bank] = false;
  last_access_[bank] = t;
  const std::uint64_t gen = ++generation_[bank];
  if (policy_ == BankPolicy::kDisable) {
    timers_.push(Timer{t + params_.disable_timeout_s, bank, gen});
  }
}

std::vector<BankDisable> BankSet::take_due_disables(double t) {
  std::vector<BankDisable> fired;
  while (!timers_.empty() && timers_.top().fire_at <= t) {
    const Timer timer = timers_.top();
    timers_.pop();
    if (timer.generation != generation_[timer.bank]) continue;  // re-touched
    if (disabled_[timer.bank]) continue;
    integrate(timer.bank, timer.fire_at);
    disabled_[timer.bank] = true;
    ++disable_count_;
    fired.push_back(BankDisable{timer.bank, timer.fire_at});
  }
  return fired;
}

void BankSet::finalize(double t) {
  for (std::uint32_t b = 0; b < bank_count(); ++b) integrate(b, t);
}

bool BankSet::is_disabled(std::uint32_t bank) const {
  JPM_CHECK(bank < bank_count());
  return disabled_[bank];
}

}  // namespace jpm::mem
