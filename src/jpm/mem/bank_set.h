// Per-bank memory power management for the PD (timeout power-down) and DS
// (timeout disable) baseline policies.
//
// Both policies run a 2-competitive timeout per bank: after
// `powerdown_timeout_s` (PD) or `disable_timeout_s` (DS) of bank idleness the
// bank drops to its low-power mode. PD retains data (no behavioural effect,
// only energy); DS loses the bank's contents, so the engine must invalidate
// the bank's cached pages at the moment the disable fires — take_due_disables
// surfaces those moments exactly, in time order.
//
// Energy is integrated lazily per bank (on touch and at finalize), so the
// per-access cost is O(1) for PD and O(log banks) for DS (timer heap).
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "jpm/mem/rdram_model.h"

namespace jpm::mem {

enum class BankPolicy {
  kNapOnly,    // always-on: banks sit in nap forever
  kPowerDown,  // drop to power-down after powerdown_timeout_s
  kDisable,    // disable (lose data) after disable_timeout_s
};

struct BankDisable {
  std::uint32_t bank;
  double time_s;  // when the disable fired
};

class BankSet {
 public:
  BankSet(std::uint32_t bank_count, const RdramParams& params,
          BankPolicy policy, double start_time_s = 0.0);

  // Marks an access to the bank at time t (t must be nondecreasing across
  // calls). Re-enables a disabled bank.
  void touch(std::uint32_t bank, double t);

  // Disables that fired at or before t, in nondecreasing time order. The
  // caller invalidates the corresponding cache contents. Empty unless the
  // policy is kDisable.
  std::vector<BankDisable> take_due_disables(double t);

  // Integrates all banks' energy up to t (end of run or period boundary).
  void finalize(double t);

  // Static energy accumulated so far (through the last touch/finalize).
  double static_energy_j() const { return static_energy_j_; }
  std::uint32_t bank_count() const {
    return static_cast<std::uint32_t>(last_access_.size());
  }
  bool is_disabled(std::uint32_t bank) const;
  std::uint64_t disable_count() const { return disable_count_; }

 private:
  struct Timer {
    double fire_at;
    std::uint32_t bank;
    std::uint64_t generation;
    bool operator>(const Timer& o) const { return fire_at > o.fire_at; }
  };

  void integrate(std::uint32_t bank, double t);

  RdramParams params_;
  BankPolicy policy_;
  double bank_nap_w_;
  double bank_pd_w_;
  std::vector<double> last_access_;      // last touch (or start) per bank
  std::vector<double> integrated_to_;    // energy accounted through this time
  std::vector<std::uint64_t> generation_;
  std::vector<bool> disabled_;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>> timers_;
  double static_energy_j_ = 0.0;
  std::uint64_t disable_count_ = 0;
};

}  // namespace jpm::mem
