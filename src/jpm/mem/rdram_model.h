// RDRAM power model (paper Section III and Fig. 1a).
//
// Constants follow the 128-Mb (16 MB) RDRAM chip the paper models:
//   * banks stay in the nap mode between accesses (best energy/performance
//     tradeoff per the paper): 10.5 mW per 16 MB bank = 0.656 mW/MB;
//   * dynamic energy from peak power at peak bandwidth:
//     1325 mW / 1.6 GB/s = 0.809 mJ/MB transferred;
//   * the power-down mode retains data at 30% of nap power; the paper's
//     2-competitive timeout for entering it is 129 us;
//   * the disable mode loses data and consumes nothing; its break-even time
//     against re-fetching a 16 MB bank from disk is 7.7 J / 10.5 mW = 732 s.
#pragma once

#include <cstdint>

#include "jpm/util/units.h"

namespace jpm::mem {

struct RdramParams {
  std::uint64_t bank_bytes = 16 * kMiB;
  double nap_mw_per_mb = 0.656;
  double dynamic_mj_per_mb = 0.809;
  double powerdown_fraction = 0.30;  // power-down power / nap power
  double powerdown_timeout_s = 129e-6;
  double disable_timeout_s = 732.0;

  // Static (nap) power of `bytes` of memory, watts.
  double nap_power_w(std::uint64_t bytes) const {
    return nap_mw_per_mb * 1e-3 * to_mib(bytes);
  }
  // Power-down power of `bytes` of memory, watts.
  double powerdown_power_w(std::uint64_t bytes) const {
    return nap_power_w(bytes) * powerdown_fraction;
  }
  // Dynamic energy to transfer `bytes` through the memory, joules.
  double dynamic_energy_j(std::uint64_t bytes) const {
    return dynamic_mj_per_mb * 1e-3 * to_mib(bytes);
  }
};

}  // namespace jpm::mem
