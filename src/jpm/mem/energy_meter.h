// Capacity-based memory energy accounting for the fixed-size and joint
// methods: the configured disk-cache size sits in the nap mode between
// accesses (paper Section III), so static energy is nap power x size,
// integrated across resizes; dynamic energy is per-byte transferred.
#pragma once

#include <cstdint>

#include "jpm/mem/rdram_model.h"

namespace jpm::mem {

struct MemoryEnergyBreakdown {
  double static_j = 0.0;
  double dynamic_j = 0.0;
  double total_j() const { return static_j + dynamic_j; }
};

class MemoryEnergyMeter {
 public:
  MemoryEnergyMeter(const RdramParams& params, std::uint64_t initial_bytes,
                    double start_time_s = 0.0);

  // Resizes the powered memory at time t (integrates the old size first).
  void set_size(std::uint64_t bytes, double t);
  // Accounts a transfer of `bytes` through memory (cache hit read, or page
  // fill plus read on a miss). Inline: this is one multiply-add on the
  // engine's per-event path, not worth a call.
  void on_transfer(std::uint64_t bytes) {
    energy_.dynamic_j += params_.dynamic_energy_j(bytes);
  }
  // Integrates static energy through t.
  void finalize(double t);

  std::uint64_t size_bytes() const { return size_bytes_; }
  MemoryEnergyBreakdown breakdown() const { return energy_; }

 private:
  RdramParams params_;
  std::uint64_t size_bytes_;
  double integrated_to_;
  MemoryEnergyBreakdown energy_;
};

}  // namespace jpm::mem
