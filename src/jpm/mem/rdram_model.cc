// Intentionally header-only today; this TU anchors the library target and
// keeps room for table-driven chip parameter sets.
#include "jpm/mem/rdram_model.h"
