#include "jpm/tracefile/writer.h"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "jpm/util/check.h"

namespace jpm::tracefile {
namespace {

std::string encode_header(const FileHeader& h) {
  std::string out;
  out.reserve(kHeaderBytes);
  out.append(kMagic, sizeof kMagic);
  append_raw(out, h.version);
  append_raw(out, h.event_count);
  append_raw(out, h.chunk_count);
  append_raw(out, h.page_bytes);
  append_raw(out, h.total_pages);
  append_raw(out, h.duration_s);
  append_raw(out, h.index_offset);
  append_raw(out, h.content_hash);
  JPM_CHECK(out.size() == kHeaderBytes);
  return out;
}

}  // namespace

TraceWriter::TraceWriter(std::ostream& os, std::uint64_t page_bytes,
                         std::uint64_t total_pages, double duration_s,
                         WriterOptions options)
    : os_(os), options_(options) {
  JPM_CHECK_MSG(options_.chunk_events > 0, "chunk_events must be positive");
  header_.page_bytes = page_bytes;
  header_.total_pages = total_pages;
  header_.duration_s = duration_s;
  times_.reserve(options_.chunk_events);
  pages_.reserve(options_.chunk_events);
  flags_.reserve(options_.chunk_events);
  // Placeholder header; finish() seeks back and patches the final one.
  const std::string placeholder = encode_header(header_);
  os_.write(placeholder.data(),
            static_cast<std::streamsize>(placeholder.size()));
  write_offset_ = kHeaderBytes;
}

TraceWriter::~TraceWriter() = default;

void TraceWriter::append(double t, std::uint64_t page, std::uint8_t flags) {
  JPM_CHECK_MSG(!finished_, "append() after finish()");
  if (!(t >= 0.0)) {
    throw TraceFileError("event " + std::to_string(event_index_) +
                         ": timestamp must be nonnegative");
  }
  if (event_index_ > 0 && t < last_time_) {
    throw TraceFileError("event " + std::to_string(event_index_) +
                         ": timestamp goes backwards");
  }
  if ((flags & ~(workload::kTraceFlagStart | workload::kTraceFlagWrite)) !=
      0) {
    throw TraceFileError("event " + std::to_string(event_index_) +
                         ": undefined flag bits set");
  }
  last_time_ = t;
  times_.push_back(t);
  pages_.push_back(page);
  flags_.push_back(flags);
  // Content hash over the logical event: chunking-independent provenance.
  char record[17];
  const std::uint64_t bits = time_bits(t);
  std::memcpy(record, &bits, 8);
  std::memcpy(record + 8, &page, 8);
  record[16] = static_cast<char>(flags);
  content_hash_.update(record, sizeof record);
  ++event_index_;
  if (times_.size() >= options_.chunk_events) flush_chunk();
}

void TraceWriter::append(const workload::TraceEvent& e) {
  append(e.time_s, e.page,
         static_cast<std::uint8_t>(
             (e.request_start ? workload::kTraceFlagStart : 0) |
             (e.is_write ? workload::kTraceFlagWrite : 0)));
}

void TraceWriter::flush_chunk() {
  if (times_.empty()) return;
  const std::size_t n = times_.size();

  // Encode the three lanes into the reusable payload scratch.
  std::string times_lane;
  times_lane.reserve(n * 3);
  std::uint64_t prev_bits = time_bits(times_[0]);
  append_raw(times_lane, prev_bits);
  for (std::size_t i = 1; i < n; ++i) {
    const std::uint64_t bits = time_bits(times_[i]);
    append_varint(times_lane, bits - prev_bits);
    prev_bits = bits;
  }

  std::string pages_lane;
  pages_lane.reserve(n * 2);
  append_varint(pages_lane, pages_[0]);
  for (std::size_t i = 1; i < n; ++i) {
    append_varint(pages_lane, zigzag_encode(static_cast<std::int64_t>(
                                  pages_[i] - pages_[i - 1])));
  }

  payload_.clear();
  append_raw(payload_, static_cast<std::uint32_t>(times_lane.size()));
  append_raw(payload_, static_cast<std::uint32_t>(pages_lane.size()));
  payload_ += times_lane;
  payload_ += pages_lane;
  for (std::size_t i = 0; i < n; i += 4) {
    std::uint8_t packed = 0;
    for (std::size_t j = 0; j < 4 && i + j < n; ++j) {
      packed |= static_cast<std::uint8_t>(flags_[i + j] << (2 * j));
    }
    payload_.push_back(static_cast<char>(packed));
  }

  ChunkDesc desc;
  desc.offset = write_offset_;
  desc.encoded_bytes = payload_.size();
  desc.event_count = n;
  desc.t_first = times_.front();
  desc.t_last = times_.back();
  desc.checksum = util::fnv1a64(payload_.data(), payload_.size());
  index_.push_back(desc);

  os_.write(payload_.data(), static_cast<std::streamsize>(payload_.size()));
  JPM_CHECK_MSG(os_.good(), "trace file write failed (chunk "
                                << (index_.size() - 1) << ")");
  write_offset_ += payload_.size();

  peak_buffered_ = std::max(peak_buffered_, buffered_capacity_bytes());
  times_.clear();
  pages_.clear();
  flags_.clear();
}

std::size_t TraceWriter::buffered_capacity_bytes() const {
  return std::max(peak_buffered_,
                  times_.capacity() * sizeof(double) +
                      pages_.capacity() * sizeof(std::uint64_t) +
                      flags_.capacity() + payload_.capacity());
}

FileHeader TraceWriter::finish() {
  JPM_CHECK_MSG(!finished_, "finish() is single-shot");
  finished_ = true;
  flush_chunk();

  header_.event_count = event_index_;
  header_.chunk_count = index_.size();
  header_.index_offset = write_offset_;
  header_.content_hash = content_hash_.digest();

  std::string index_bytes;
  index_bytes.reserve(index_.size() * kChunkDescBytes + 8);
  for (const ChunkDesc& d : index_) {
    append_raw(index_bytes, d.offset);
    append_raw(index_bytes, d.encoded_bytes);
    append_raw(index_bytes, d.event_count);
    append_raw(index_bytes, d.t_first);
    append_raw(index_bytes, d.t_last);
    append_raw(index_bytes, d.checksum);
  }
  JPM_CHECK(index_bytes.size() == index_.size() * kChunkDescBytes);
  append_raw(index_bytes, util::fnv1a64(index_bytes.data(),
                                        index_bytes.size()));
  os_.write(index_bytes.data(),
            static_cast<std::streamsize>(index_bytes.size()));

  const std::string final_header = encode_header(header_);
  os_.seekp(0);
  os_.write(final_header.data(),
            static_cast<std::streamsize>(final_header.size()));
  os_.seekp(0, std::ios::end);
  os_.flush();
  JPM_CHECK_MSG(os_.good(), "trace file write failed (finish)");
  return header_;
}

FileHeader write_trace_file(const std::string& path,
                            const workload::Trace& trace,
                            WriterOptions options) {
  std::ofstream os(path, std::ios::out | std::ios::binary);
  JPM_CHECK_MSG(os.is_open(), "cannot open for writing: " + path);
  TraceWriter writer(os, trace.page_bytes, trace.total_pages,
                     trace.duration_s, options);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    writer.append(trace.times[i], trace.pages[i], trace.flags[i]);
  }
  return writer.finish();
}

FileHeader synthesize_to_file(std::ostream& os,
                              const workload::SynthesizerConfig& config,
                              WriterOptions options) {
  workload::TraceGenerator gen(config);
  // Same derived fields as workload::synthesize_trace: page size and
  // duration from the config, total pages from the file set.
  TraceWriter writer(os, config.page_bytes, gen.total_pages(),
                     config.duration_s, options);
  while (auto e = gen.next()) writer.append(*e);
  return writer.finish();
}

FileHeader synthesize_to_file(const std::string& path,
                              const workload::SynthesizerConfig& config,
                              WriterOptions options) {
  std::ofstream os(path, std::ios::out | std::ios::binary);
  JPM_CHECK_MSG(os.is_open(), "cannot open for writing: " + path);
  return synthesize_to_file(os, config, options);
}

}  // namespace jpm::tracefile
