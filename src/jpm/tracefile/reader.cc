#include "jpm/tracefile/reader.h"

#include <cstring>
#include <fstream>
#include <utility>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "jpm/util/check.h"
#include "jpm/util/hash.h"
#include "jpm/workload/trace_io.h"

namespace jpm::tracefile {

// ---- MappedFile ------------------------------------------------------------

MappedFile::MappedFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw TraceFileError(path + ": cannot open trace file");
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw TraceFileError(path + ": cannot stat trace file");
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ > 0) {
    void* p = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (p == MAP_FAILED) {
      ::close(fd);
      throw TraceFileError(path + ": mmap failed");
    }
    data_ = static_cast<const std::uint8_t*>(p);
  }
  ::close(fd);  // the mapping outlives the descriptor
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
  }
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(const_cast<std::uint8_t*>(data_), size_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

// ---- TraceReader -----------------------------------------------------------

void TraceReader::fail(const std::string& why) const {
  throw TraceFileError(name_ + ": " + why);
}

TraceReader::TraceReader(const std::string& path) : name_(path) {
  map_.push_back(MappedFile(path));
  parse(map_.back().data(), map_.back().size());
}

TraceReader::TraceReader(const void* data, std::size_t size, std::string name)
    : name_(std::move(name)) {
  parse(static_cast<const std::uint8_t*>(data), size);
}

void TraceReader::parse(const std::uint8_t* data, std::size_t size) {
  data_ = data;
  size_ = size;
  if (size_ < kHeaderBytes) {
    fail("header truncated (" + std::to_string(size_) + " of " +
         std::to_string(kHeaderBytes) + " bytes)");
  }
  if (std::memcmp(data_, kMagic, sizeof kMagic) != 0) {
    fail("not a JPMC chunked trace (bad magic)");
  }
  Cursor cur(data_ + sizeof kMagic, kHeaderBytes - sizeof kMagic,
             name_ + ": header");
  header_.version = cur.read_raw<std::uint32_t>("version");
  if (header_.version != kFormatVersion) {
    fail("unsupported JPMC version " + std::to_string(header_.version) +
         " (expected " + std::to_string(kFormatVersion) + ")");
  }
  header_.event_count = cur.read_raw<std::uint64_t>("event_count");
  header_.chunk_count = cur.read_raw<std::uint64_t>("chunk_count");
  header_.page_bytes = cur.read_raw<std::uint64_t>("page_bytes");
  header_.total_pages = cur.read_raw<std::uint64_t>("total_pages");
  header_.duration_s = cur.read_raw<double>("duration_s");
  header_.index_offset = cur.read_raw<std::uint64_t>("index_offset");
  header_.content_hash = cur.read_raw<std::uint64_t>("content_hash");

  // Index bounds: descriptors + trailing checksum must fill the file
  // exactly. Guard the multiply against a hostile chunk_count.
  if (header_.index_offset < kHeaderBytes || header_.index_offset > size_) {
    fail("index offset " + std::to_string(header_.index_offset) +
         " outside the file (" + std::to_string(size_) + " bytes)");
  }
  const std::uint64_t index_room = size_ - header_.index_offset;
  if (header_.chunk_count > (index_room / kChunkDescBytes)) {
    fail("corrupt header: " + std::to_string(header_.chunk_count) +
         " chunks declared but only " +
         std::to_string(index_room / kChunkDescBytes) +
         " descriptors fit in the remaining " + std::to_string(index_room) +
         " bytes");
  }
  const std::uint64_t index_bytes = header_.chunk_count * kChunkDescBytes;
  if (index_bytes + 8 != index_room) {
    fail("index truncated or trailing garbage: " +
         std::to_string(index_room) + " bytes after index offset, expected " +
         std::to_string(index_bytes + 8));
  }
  const std::uint8_t* index_start = data_ + header_.index_offset;
  std::uint64_t stored_index_checksum = 0;
  std::memcpy(&stored_index_checksum, index_start + index_bytes, 8);
  if (util::fnv1a64(index_start, index_bytes) != stored_index_checksum) {
    fail("index checksum mismatch (file corrupt)");
  }

  index_.reserve(header_.chunk_count);
  Cursor icur(index_start, index_bytes, name_ + ": index");
  std::uint64_t events_seen = 0;
  std::uint64_t expected_offset = kHeaderBytes;
  double prev_t_last = 0.0;
  for (std::uint64_t i = 0; i < header_.chunk_count; ++i) {
    ChunkDesc d;
    d.offset = icur.read_raw<std::uint64_t>("chunk offset");
    d.encoded_bytes = icur.read_raw<std::uint64_t>("chunk size");
    d.event_count = icur.read_raw<std::uint64_t>("chunk event count");
    d.t_first = icur.read_raw<double>("chunk t_first");
    d.t_last = icur.read_raw<double>("chunk t_last");
    d.checksum = icur.read_raw<std::uint64_t>("chunk checksum");
    const std::string at = "chunk " + std::to_string(i);
    if (d.offset != expected_offset) {
      fail(at + ": payload offset " + std::to_string(d.offset) +
           " breaks contiguity (expected " + std::to_string(expected_offset) +
           ")");
    }
    if (d.encoded_bytes > header_.index_offset - d.offset) {
      fail(at + ": payload (" + std::to_string(d.encoded_bytes) +
           " bytes at " + std::to_string(d.offset) + ") overruns the index");
    }
    if (d.event_count == 0) fail(at + ": empty chunk");
    if (!(d.t_first >= (i == 0 ? 0.0 : prev_t_last)) ||
        !(d.t_last >= d.t_first)) {
      fail(at + ": time range goes backwards");
    }
    prev_t_last = d.t_last;
    events_seen += d.event_count;
    expected_offset = d.offset + d.encoded_bytes;
    index_.push_back(d);
  }
  if (expected_offset != header_.index_offset) {
    fail("chunk payloads end at " + std::to_string(expected_offset) +
         " but the index starts at " + std::to_string(header_.index_offset));
  }
  if (events_seen != header_.event_count) {
    fail("header declares " + std::to_string(header_.event_count) +
         " events but chunks hold " + std::to_string(events_seen));
  }
}

const std::uint8_t* TraceReader::chunk_data(std::size_t i) const {
  JPM_CHECK_MSG(i < index_.size(), "chunk index out of range");
  return data_ + index_[i].offset;
}

void TraceReader::decode_chunk(std::size_t i, ChunkBuffer& out) const {
  JPM_CHECK_MSG(i < index_.size(), "chunk index out of range");
  const ChunkDesc& d = index_[i];
  const std::string at = name_ + ": chunk " + std::to_string(i);
  const std::uint8_t* payload = data_ + d.offset;
  if (util::fnv1a64(payload, d.encoded_bytes) != d.checksum) {
    throw TraceFileError(at + ": payload checksum mismatch (file corrupt)");
  }

  Cursor cur(payload, d.encoded_bytes, at);
  const auto times_bytes = cur.read_raw<std::uint32_t>("times lane size");
  const auto pages_bytes = cur.read_raw<std::uint32_t>("pages lane size");
  const std::uint64_t n = d.event_count;
  const std::uint64_t flags_bytes = (n + 3) / 4;
  if (8ull + times_bytes + pages_bytes + flags_bytes != d.encoded_bytes) {
    throw TraceFileError(at + ": lane sizes (" + std::to_string(times_bytes) +
                         " + " + std::to_string(pages_bytes) + " + " +
                         std::to_string(flags_bytes) +
                         " flag bytes) do not add up to the payload (" +
                         std::to_string(d.encoded_bytes) + " bytes)");
  }

  out.times.clear();
  out.pages.clear();
  out.flags.clear();
  out.times.reserve(n);
  out.pages.reserve(n);
  out.flags.reserve(n);

  {
    Cursor tc(payload + 8, times_bytes, at + ": times lane");
    std::uint64_t bits = tc.read_raw<std::uint64_t>("first timestamp");
    out.times.push_back(time_from_bits(bits));
    for (std::uint64_t k = 1; k < n; ++k) {
      const std::uint64_t delta = tc.read_varint("timestamp delta");
      if (delta > ~std::uint64_t{0} - bits) {
        throw TraceFileError(at + ": timestamp delta overflows at event " +
                             std::to_string(k));
      }
      bits += delta;
      out.times.push_back(time_from_bits(bits));
    }
    if (tc.remaining() != 0) {
      throw TraceFileError(at + ": " + std::to_string(tc.remaining()) +
                           " stray bytes after the times lane");
    }
  }
  {
    Cursor pc(payload + 8 + times_bytes, pages_bytes, at + ": pages lane");
    std::uint64_t page = pc.read_varint("first page");
    out.pages.push_back(page);
    for (std::uint64_t k = 1; k < n; ++k) {
      page += static_cast<std::uint64_t>(
          zigzag_decode(pc.read_varint("page delta")));
      out.pages.push_back(page);
    }
    if (pc.remaining() != 0) {
      throw TraceFileError(at + ": " + std::to_string(pc.remaining()) +
                           " stray bytes after the pages lane");
    }
  }
  {
    const std::uint8_t* fb = payload + 8 + times_bytes + pages_bytes;
    for (std::uint64_t k = 0; k < n; ++k) {
      out.flags.push_back(
          static_cast<std::uint8_t>((fb[k / 4] >> (2 * (k % 4))) & 0x3));
    }
  }

  // Cross-check the decode against the descriptor: first/last timestamps
  // must match bit for bit (the delta coding guarantees nondecreasing order
  // in between).
  if (time_bits(out.times.front()) != time_bits(d.t_first) ||
      time_bits(out.times.back()) != time_bits(d.t_last)) {
    throw TraceFileError(at +
                         ": decoded time range disagrees with the index");
  }
  if (!(out.times.front() >= 0.0)) {
    throw TraceFileError(at + ": negative timestamp");
  }
}

workload::Trace TraceReader::read_all() const {
  workload::Trace trace;
  trace.page_bytes = header_.page_bytes;
  trace.total_pages = header_.total_pages;
  trace.duration_s = header_.duration_s;
  trace.reserve(header_.event_count);
  ChunkBuffer buf;
  for (std::size_t i = 0; i < index_.size(); ++i) {
    decode_chunk(i, buf);
    trace.times.insert(trace.times.end(), buf.times.begin(), buf.times.end());
    trace.pages.insert(trace.pages.end(), buf.pages.begin(), buf.pages.end());
    trace.flags.insert(trace.flags.end(), buf.flags.begin(), buf.flags.end());
  }
  return trace;
}

void TraceReader::verify_content_hash() const {
  util::Fnv1a64 hash;
  ChunkBuffer buf;
  for (std::size_t i = 0; i < index_.size(); ++i) {
    decode_chunk(i, buf);
    char record[17];
    for (std::size_t k = 0; k < buf.size(); ++k) {
      const std::uint64_t bits = time_bits(buf.times[k]);
      std::memcpy(record, &bits, 8);
      std::memcpy(record + 8, &buf.pages[k], 8);
      record[16] = static_cast<char>(buf.flags[k]);
      hash.update(record, sizeof record);
    }
  }
  if (hash.digest() != header_.content_hash) {
    fail("content hash mismatch: decoded events hash to " +
         util::hex16(hash.digest()) + " but the header declares " +
         util::hex16(header_.content_hash));
  }
}

workload::Trace load_any_trace(const std::string& path) {
  {
    std::ifstream is(path, std::ios::in | std::ios::binary);
    JPM_CHECK_MSG(is.is_open(), "cannot open for reading: " + path);
    if (workload::sniff_trace_format(is, path) ==
        workload::TraceFormat::kChunked) {
      return TraceReader(path).read_all();
    }
  }
  // Legacy JPMT / CSV: the hardened workload reader sniffs and validates;
  // neither format carries geometry, so the derived fields stay zero.
  const std::vector<workload::TraceEvent> events =
      workload::load_trace(path);
  return workload::trace_from_events(events, 0, 0, 0.0);
}

}  // namespace jpm::tracefile
