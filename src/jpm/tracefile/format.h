// JPMC — the chunked on-disk trace format ("JPM Chunked").
//
// Layout (all integers little-endian, the repo's binary-trace convention):
//
//   [ header, 64 bytes ]
//   [ chunk 0 payload ][ chunk 1 payload ] ...
//   [ index: chunk_count x 48-byte ChunkDesc ][ u64 index FNV-1a checksum ]
//
// Header (64 bytes):
//   0  magic "JPMC"            4  u32 version (=1)
//   8  u64 event_count        16  u64 chunk_count
//   24 u64 page_bytes         32  u64 total_pages
//   40 f64 duration_s         48  u64 index_offset
//   56 u64 content_hash
//
// ChunkDesc (48 bytes): u64 payload offset, u64 payload bytes,
//   u64 event_count, f64 t_first, f64 t_last, u64 payload FNV-1a checksum.
//
// Chunk payload — three delta-encoded lanes, self-contained so any chunk
// decodes without its neighbors (parallel sweep threads share the mmap):
//   u32 times_bytes, u32 pages_bytes
//   times: raw u64 bit pattern of the first timestamp, then LEB128 varint
//     deltas of successive bit patterns. Timestamps are nonnegative and
//     nondecreasing, and the IEEE-754 bit patterns of nonnegative doubles
//     order the same way the values do, so the deltas are nonnegative —
//     encoding is lossless AND a decoded chunk is nondecreasing by
//     construction. Dense event streams (microsecond steps) cost 2-4 bytes
//     per timestamp instead of 8.
//   pages: LEB128 varint of the first page id, then zigzag varint deltas
//     (sequential pages of one request cost 1 byte each).
//   flags: 2 bits per event (kTraceFlagStart | kTraceFlagWrite), 4 events
//     per byte, zero-padded.
//
// content_hash is FNV-1a 64 over the *logical* event stream — per event the
// 8-byte timestamp bit pattern, 8-byte page id, and flag byte — so it is
// independent of the chunking and equals the hash of the same events written
// with any chunk window. `jpm trace info` prints it and file-backed runs
// publish it into telemetry reports as "trace_hash".
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>

namespace jpm::tracefile {

// Malformed, truncated, or corrupted trace file. Messages name the file (when
// known), the chunk, and the byte position of the defect.
class TraceFileError : public std::runtime_error {
 public:
  explicit TraceFileError(const std::string& message)
      : std::runtime_error(message) {}
};

inline constexpr char kMagic[4] = {'J', 'P', 'M', 'C'};
inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr std::size_t kHeaderBytes = 64;
inline constexpr std::size_t kChunkDescBytes = 48;
// Default chunk window (events per chunk). Bounds writer and reader working
// memory at ~24 bytes/event regardless of the file's total event count.
inline constexpr std::size_t kDefaultChunkEvents = std::size_t{1} << 16;

struct FileHeader {
  std::uint32_t version = kFormatVersion;
  std::uint64_t event_count = 0;
  std::uint64_t chunk_count = 0;
  std::uint64_t page_bytes = 0;
  std::uint64_t total_pages = 0;
  double duration_s = 0.0;
  std::uint64_t index_offset = 0;
  std::uint64_t content_hash = 0;
};

struct ChunkDesc {
  std::uint64_t offset = 0;         // payload start, bytes from file start
  std::uint64_t encoded_bytes = 0;  // payload length
  std::uint64_t event_count = 0;
  double t_first = 0.0;
  double t_last = 0.0;
  std::uint64_t checksum = 0;       // FNV-1a 64 of the payload bytes
};

// ---- primitive encoding helpers (shared by writer, reader, and tests) ------

// Order-preserving u64 image of a nonnegative double. -0.0 normalizes to
// +0.0 first (its bit pattern would sort above every positive value).
inline std::uint64_t time_bits(double t) {
  const double normalized = t + 0.0;
  std::uint64_t bits;
  std::memcpy(&bits, &normalized, sizeof bits);
  return bits;
}

inline double time_from_bits(std::uint64_t bits) {
  double t;
  std::memcpy(&t, &bits, sizeof t);
  return t;
}

inline std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

// LEB128: 7 payload bits per byte, high bit = continuation; <= 10 bytes.
inline void append_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

template <typename T>
void append_raw(std::string& out, T v) {
  char buf[sizeof v];
  std::memcpy(buf, &v, sizeof v);
  out.append(buf, sizeof v);
}

// Bounds-checked decode cursor over a byte range. `context` prefixes every
// error ("file.jpmc: chunk 3"); positions are relative to the range start.
class Cursor {
 public:
  Cursor(const std::uint8_t* data, std::size_t size, std::string context)
      : data_(data), size_(size), context_(std::move(context)) {}

  std::size_t position() const { return pos_; }
  std::size_t remaining() const { return size_ - pos_; }

  template <typename T>
  T read_raw(const char* what) {
    if (remaining() < sizeof(T)) {
      throw TraceFileError(context_ + ": " + what + " truncated at byte " +
                           std::to_string(pos_) + " (" +
                           std::to_string(remaining()) + " of " +
                           std::to_string(sizeof(T)) + " bytes left)");
    }
    T v;
    std::memcpy(&v, data_ + pos_, sizeof v);
    pos_ += sizeof v;
    return v;
  }

  std::uint64_t read_varint(const char* what) {
    std::uint64_t v = 0;
    int shift = 0;
    const std::size_t start = pos_;
    for (;;) {
      if (pos_ >= size_) {
        throw TraceFileError(context_ + ": " + what +
                             " varint truncated at byte " +
                             std::to_string(start));
      }
      const std::uint8_t byte = data_[pos_++];
      if (shift == 63 && byte > 1) {
        throw TraceFileError(context_ + ": " + what +
                             " varint overflows 64 bits at byte " +
                             std::to_string(start));
      }
      v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return v;
      shift += 7;
      if (shift > 63) {
        throw TraceFileError(context_ + ": " + what +
                             " varint longer than 10 bytes at byte " +
                             std::to_string(start));
      }
    }
  }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::string context_;
};

}  // namespace jpm::tracefile
