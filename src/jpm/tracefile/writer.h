// Streaming JPMC writer: append events in time order, get a chunked,
// delta-encoded, checksummed trace file. Working memory is one chunk window
// (~24 bytes x chunk_events) no matter how many events are written, so
// synthesize_to_file produces billion-event traces with bounded RSS.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "jpm/tracefile/format.h"
#include "jpm/util/hash.h"
#include "jpm/workload/synthesizer.h"
#include "jpm/workload/trace.h"

namespace jpm::tracefile {

struct WriterOptions {
  // Events per chunk window. Smaller chunks mean finer-grained streaming and
  // lower peak RSS; larger chunks amortize per-chunk overhead (18 bytes of
  // lane headers + 48 bytes of index). The content hash is chunking-
  // independent: any window size yields the same logical trace.
  std::size_t chunk_events = kDefaultChunkEvents;
};

class TraceWriter {
 public:
  // The stream must be seekable (the header is patched on finish) and opened
  // in binary mode. page_bytes/total_pages/duration_s land in the header —
  // the replay geometry, matching workload::Trace's derived fields.
  TraceWriter(std::ostream& os, std::uint64_t page_bytes,
              std::uint64_t total_pages, double duration_s,
              WriterOptions options = {});
  ~TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  // Events must arrive with nondecreasing nonnegative timestamps and flags
  // within the defined bits; violations throw TraceFileError naming the
  // event index.
  void append(double t, std::uint64_t page, std::uint8_t flags);
  void append(const workload::TraceEvent& e);

  // Flushes the last chunk, writes the index, patches the header, and
  // returns it. Must be called exactly once; append() is invalid after.
  FileHeader finish();

  std::uint64_t events_written() const { return event_index_; }
  // Peak capacity of the chunk-window buffers — the writer's working-set
  // bound, asserted O(chunk_events) by the capped-RSS smoke test.
  std::size_t buffered_capacity_bytes() const;

 private:
  void flush_chunk();

  std::ostream& os_;
  WriterOptions options_;
  FileHeader header_;
  std::vector<ChunkDesc> index_;
  util::Fnv1a64 content_hash_;

  std::vector<double> times_;
  std::vector<std::uint64_t> pages_;
  std::vector<std::uint8_t> flags_;
  std::string payload_;  // encode scratch, reused across chunks

  std::uint64_t event_index_ = 0;
  double last_time_ = 0.0;
  std::uint64_t write_offset_ = 0;
  std::size_t peak_buffered_ = 0;
  bool finished_ = false;
};

// Writes a materialized trace to `path` (convenience for tests, benches, and
// `jpm trace pack`). Returns the final header.
FileHeader write_trace_file(const std::string& path,
                            const workload::Trace& trace,
                            WriterOptions options = {});

// Windowed synthesis: streams TraceGenerator output straight into a
// TraceWriter, one chunk window at a time. The resulting file decodes to
// lanes bit-identical to workload::synthesize_trace(config) — same derived
// fields (page_bytes, total_pages from the file set, configured duration) —
// without ever materializing the whole trace.
FileHeader synthesize_to_file(const std::string& path,
                              const workload::SynthesizerConfig& config,
                              WriterOptions options = {});
FileHeader synthesize_to_file(std::ostream& os,
                              const workload::SynthesizerConfig& config,
                              WriterOptions options = {});

}  // namespace jpm::tracefile
