// mmap-backed JPMC reader: the whole file is mapped read-only once, the
// header and index are validated up front, and chunks decode on demand into
// caller-owned SoA buffers. One TraceReader may be shared by any number of
// sweep threads — every accessor is const and decoding touches only the
// caller's ChunkBuffer — so a multi-gigabyte trace costs one mapping, not
// one copy per policy run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "jpm/tracefile/format.h"
#include "jpm/workload/trace.h"

namespace jpm::tracefile {

// Read-only memory-mapped file (RAII). Move-only.
class MappedFile {
 public:
  explicit MappedFile(const std::string& path);
  ~MappedFile();
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;

  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

// Reusable SoA decode buffer: one chunk window of lanes. Reusing one buffer
// across decode_chunk calls keeps a file-backed replay's working set at
// O(chunk window) — capacity_bytes() is what the capped-RSS test asserts on.
struct ChunkBuffer {
  std::vector<double> times;
  std::vector<std::uint64_t> pages;
  std::vector<std::uint8_t> flags;

  std::size_t size() const { return times.size(); }
  std::size_t capacity_bytes() const {
    return times.capacity() * sizeof(double) +
           pages.capacity() * sizeof(std::uint64_t) + flags.capacity();
  }
};

class TraceReader {
 public:
  // Maps `path` and validates the header, index checksum, and every chunk
  // descriptor (bounds, counts, time-range ordering). Payloads are verified
  // lazily, per chunk, on decode.
  explicit TraceReader(const std::string& path);
  // Borrows an in-memory image (tests, benches); `data` must outlive the
  // reader. `name` labels error messages.
  TraceReader(const void* data, std::size_t size, std::string name = "<mem>");

  const FileHeader& header() const { return header_; }
  const std::vector<ChunkDesc>& chunks() const { return index_; }
  const std::string& name() const { return name_; }

  // Zero-copy view of chunk i's encoded payload inside the mapping.
  const std::uint8_t* chunk_data(std::size_t i) const;

  // Decodes chunk i into `out` (lanes replaced, capacity reused), verifying
  // the payload checksum first. Errors name the file, chunk, and position.
  void decode_chunk(std::size_t i, ChunkBuffer& out) const;

  // Decodes the whole file into a materialized Trace with the header's
  // derived fields — the bridge back to the in-RAM world (`jpm trace cat`,
  // format conversion, small files).
  workload::Trace read_all() const;

  // Re-hashes every decoded event and compares against the header's content
  // hash (`jpm trace info --verify`). Throws TraceFileError on mismatch.
  void verify_content_hash() const;

 private:
  void parse(const std::uint8_t* data, std::size_t size);
  [[noreturn]] void fail(const std::string& why) const;

  std::vector<MappedFile> map_;  // empty for borrowed-memory readers
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::string name_;
  FileHeader header_;
  std::vector<ChunkDesc> index_;
};

// Loads any trace file the repo knows — JPMC (chunked), JPMT (legacy
// binary), or CSV — into a materialized Trace, sniffing the format from the
// leading bytes. Legacy formats carry no geometry, so page_bytes/
// total_pages/duration_s are zero and the caller's to fill (JPMC files carry
// theirs). The ingestion path for `jpm trace pack`.
workload::Trace load_any_trace(const std::string& path);

}  // namespace jpm::tracefile
