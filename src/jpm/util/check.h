// Lightweight precondition / invariant checking.
//
// JPM_CHECK is always on (simulation correctness beats the last few percent of
// throughput); JPM_DCHECK compiles out in NDEBUG builds and is meant for
// per-access hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace jpm {

// Thrown when a JPM_CHECK fails. Derives from logic_error: a failed check is a
// programming or configuration error, never an expected runtime condition.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "JPM_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace jpm

// Inlining override for per-event hot-path leaves whose call overhead and
// scheduling opacity the optimizer's heuristics get wrong (measured, not
// assumed — see DESIGN.md on the counter-tree descent).
#if defined(__GNUC__) || defined(__clang__)
#define JPM_FORCE_INLINE inline __attribute__((always_inline))
#else
#define JPM_FORCE_INLINE inline
#endif

#define JPM_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr)) ::jpm::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define JPM_CHECK_MSG(expr, msg)                                     \
  do {                                                               \
    if (!(expr)) {                                                   \
      std::ostringstream jpm_check_os;                               \
      jpm_check_os << msg;                                           \
      ::jpm::detail::check_failed(#expr, __FILE__, __LINE__,         \
                                  jpm_check_os.str());               \
    }                                                                \
  } while (0)

#ifdef NDEBUG
#define JPM_DCHECK(expr) ((void)0)
#else
#define JPM_DCHECK(expr) JPM_CHECK(expr)
#endif
