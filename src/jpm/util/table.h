// ASCII table printer for the benchmark harnesses: every bench binary prints
// the rows/series the paper's corresponding table or figure reports.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace jpm {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Starts a new row; subsequent add_* calls fill it left to right.
  Table& row();
  Table& cell(const std::string& text);
  Table& cell(double value, int precision = 2);
  Table& cell(std::uint64_t value);
  Table& cell_percent(double fraction, int precision = 1);  // 0.42 -> "42.0%"

  // Renders with column widths fit to content.
  void print(std::ostream& os) const;
  std::string to_string() const;

  std::size_t rows() const { return cells_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> cells_;
};

}  // namespace jpm
