#include "jpm/util/parallel.h"

#include <cstdlib>
#include <cstring>
#include <thread>

namespace jpm::util {

namespace detail {
thread_local bool tl_in_parallel_region = false;
}  // namespace detail

unsigned default_thread_count() {
  if (const char* v = std::getenv("JPM_THREADS")) {
    char* end = nullptr;
    const long n = std::strtol(v, &end, 10);
    if (end != v && n >= 1) return static_cast<unsigned>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

SchedMode default_sched_mode() {
  if (const char* v = std::getenv("JPM_SCHED")) {
    if (std::strcmp(v, "static") == 0) return SchedMode::kStatic;
    if (std::strcmp(v, "steal") == 0) return SchedMode::kSteal;
  }
  return SchedMode::kSteal;
}

void parallel_for(std::size_t n, unsigned workers,
                  const std::function<void(std::size_t)>& body) {
  TaskPool::run(n, workers, default_sched_mode(),
                [&body](std::size_t i) { body(i); });
}

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  parallel_for(n, default_thread_count(), body);
}

}  // namespace jpm::util
