#include "jpm/util/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace jpm::util {

unsigned default_thread_count() {
  if (const char* v = std::getenv("JPM_THREADS")) {
    char* end = nullptr;
    const long n = std::strtol(v, &end, 10);
    if (end != v && n >= 1) return static_cast<unsigned>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void parallel_for(std::size_t n, unsigned workers,
                  const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t stripe =
      std::min<std::size_t>(std::max(workers, 1u), n);
  if (stripe <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;
  const auto run_stripe = [&](std::size_t w) {
    for (std::size_t i = w; i < n; i += stripe) {
      if (failed.load(std::memory_order_relaxed)) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(stripe - 1);
  for (std::size_t w = 1; w < stripe; ++w) pool.emplace_back(run_stripe, w);
  run_stripe(0);  // the caller is worker 0
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  parallel_for(n, default_thread_count(), body);
}

}  // namespace jpm::util
