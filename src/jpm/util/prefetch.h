// Software-prefetch hint, compiled out on toolchains without the builtin.
//
// The batched replay loop (sim/engine.cc) resolves a batch of page-table
// probes ahead of applying them; issuing prefetches for the upcoming slots
// overlaps the Fibonacci-hash pointer chases that otherwise serialize the
// per-event hot path. A hint never changes observable behavior, so callers
// are free to prefetch speculative addresses (e.g. a predicted Fenwick slot
// that a compaction may move).
#pragma once

namespace jpm::util {

// The empty volatile asm pins the address as a side effect. Without it,
// GCC's interprocedural pure/const pass classifies helpers whose only body
// is a prefetch as pure functions and deletes every call to them — the
// hints silently vanish from the hot loops they were measured into
// (observed with GCC 12: a prefetch-then-call function compiled to a bare
// tail jump). The asm costs nothing: the address is already in a register
// for the prefetch itself.
inline void prefetch_read(const void* addr) {
#if defined(__GNUC__) || defined(__clang__)
  asm volatile("" : : "r"(addr));
  __builtin_prefetch(addr, /*rw=*/0, /*locality=*/3);
#else
  (void)addr;
#endif
}

inline void prefetch_write(const void* addr) {
#if defined(__GNUC__) || defined(__clang__)
  asm volatile("" : : "r"(addr));
  __builtin_prefetch(addr, /*rw=*/1, /*locality=*/3);
#else
  (void)addr;
#endif
}

}  // namespace jpm::util
