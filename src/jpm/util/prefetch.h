// Software-prefetch hint, compiled out on toolchains without the builtin.
//
// The batched replay loop (sim/engine.cc) resolves a batch of page-table
// probes ahead of applying them; issuing prefetches for the upcoming slots
// overlaps the Fibonacci-hash pointer chases that otherwise serialize the
// per-event hot path. A hint never changes observable behavior, so callers
// are free to prefetch speculative addresses (e.g. a predicted Fenwick slot
// that a compaction may move).
#pragma once

namespace jpm::util {

inline void prefetch_read(const void* addr) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(addr, /*rw=*/0, /*locality=*/3);
#else
  (void)addr;
#endif
}

inline void prefetch_write(const void* addr) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(addr, /*rw=*/1, /*locality=*/3);
#else
  (void)addr;
#endif
}

}  // namespace jpm::util
