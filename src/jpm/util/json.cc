#include "jpm/util/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "jpm/util/check.h"

namespace jpm::util::json {

Value& Object::operator[](const std::string& key) {
  for (auto& [k, v] : entries_) {
    if (k == key) return v;
  }
  entries_.emplace_back(key, Value{});
  return entries_.back().second;
}

const Value* Object::find(const std::string& key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const char* Value::kind_name(Kind k) {
  switch (k) {
    case Kind::kNull: return "null";
    case Kind::kBool: return "boolean";
    case Kind::kNumber: return "number";
    case Kind::kString: return "string";
    case Kind::kArray: return "array";
    case Kind::kObject: return "object";
  }
  return "?";
}

std::string format_number(double d) {
  JPM_CHECK_MSG(std::isfinite(d), "JSON cannot represent NaN or infinity");
  // Integers within the double-exact range print without an exponent or
  // trailing ".0" — counters stay readable and stable.
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", d);
    return buf;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, d);
  JPM_CHECK(res.ec == std::errc());
  return std::string(buf, res.ptr);
}

namespace {

void append_escaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void dump_to(const Value& v, int indent, int depth, std::string* out) {
  const bool pretty = indent >= 0;
  const auto newline_pad = [&](int d) {
    if (!pretty) return;
    out->push_back('\n');
    out->append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (v.kind()) {
    case Value::Kind::kNull: *out += "null"; break;
    case Value::Kind::kBool: *out += v.as_bool() ? "true" : "false"; break;
    case Value::Kind::kNumber: *out += format_number(v.as_number()); break;
    case Value::Kind::kString: append_escaped(v.as_string(), out); break;
    case Value::Kind::kArray: {
      const auto& a = v.as_array();
      if (a.empty()) {
        *out += "[]";
        break;
      }
      out->push_back('[');
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (i) out->push_back(',');
        newline_pad(depth + 1);
        dump_to(a[i], indent, depth + 1, out);
      }
      newline_pad(depth);
      out->push_back(']');
      break;
    }
    case Value::Kind::kObject: {
      const auto& o = v.as_object();
      if (o.size() == 0) {
        *out += "{}";
        break;
      }
      out->push_back('{');
      bool first = true;
      for (const auto& [k, val] : o.entries()) {
        if (!first) out->push_back(',');
        first = false;
        newline_pad(depth + 1);
        append_escaped(k, out);
        *out += pretty ? ": " : ":";
        dump_to(val, indent, depth + 1, out);
      }
      newline_pad(depth);
      out->push_back('}');
      break;
    }
  }
}

// ---- parser ---------------------------------------------------------------

struct Parser {
  const std::string& text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& why) {
    if (error.empty()) {
      error = why + " at byte " + std::to_string(pos);
    }
    return false;
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return fail(std::string("expected '") + c + "'");
  }

  bool parse_literal(const char* lit, Value v, Value* out) {
    for (const char* p = lit; *p; ++p, ++pos) {
      if (pos >= text.size() || text[pos] != *p) {
        return fail(std::string("bad literal, expected ") + lit);
      }
    }
    *out = std::move(v);
    return true;
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) return false;
    std::string s;
    while (pos < text.size() && text[pos] != '"') {
      char c = text[pos++];
      if (c == '\\') {
        if (pos >= text.size()) return fail("unterminated escape");
        const char e = text[pos++];
        switch (e) {
          case '"': s.push_back('"'); break;
          case '\\': s.push_back('\\'); break;
          case '/': s.push_back('/'); break;
          case 'n': s.push_back('\n'); break;
          case 't': s.push_back('\t'); break;
          case 'r': s.push_back('\r'); break;
          case 'b': s.push_back('\b'); break;
          case 'f': s.push_back('\f'); break;
          case 'u': {
            // Pass the escape through verbatim; the telemetry reports only
            // contain ASCII, so decoding is unnecessary.
            if (pos + 4 > text.size()) return fail("truncated \\u escape");
            s += "\\u" + text.substr(pos, 4);
            pos += 4;
            break;
          }
          default: return fail("unknown escape");
        }
      } else {
        s.push_back(c);
      }
    }
    if (!consume('"')) return fail("unterminated string");
    *out = std::move(s);
    return true;
  }

  bool parse_value(Value* out) {
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == 'n') return parse_literal("null", Value{}, out);
    if (c == 't') return parse_literal("true", Value{true}, out);
    if (c == 'f') return parse_literal("false", Value{false}, out);
    if (c == '"') {
      std::string s;
      if (!parse_string(&s)) return false;
      *out = Value{std::move(s)};
      return true;
    }
    if (c == '[') {
      ++pos;
      Array a;
      skip_ws();
      if (pos < text.size() && text[pos] == ']') {
        ++pos;
        *out = Value{std::move(a)};
        return true;
      }
      while (true) {
        Value v;
        if (!parse_value(&v)) return false;
        a.push_back(std::move(v));
        skip_ws();
        if (pos < text.size() && text[pos] == ',') {
          ++pos;
          continue;
        }
        break;
      }
      if (!consume(']')) return false;
      *out = Value{std::move(a)};
      return true;
    }
    if (c == '{') {
      ++pos;
      Object o;
      skip_ws();
      if (pos < text.size() && text[pos] == '}') {
        ++pos;
        *out = Value{std::move(o)};
        return true;
      }
      while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(&key)) return false;
        skip_ws();
        if (!consume(':')) return false;
        Value v;
        if (!parse_value(&v)) return false;
        o[key] = std::move(v);
        skip_ws();
        if (pos < text.size() && text[pos] == ',') {
          ++pos;
          continue;
        }
        break;
      }
      if (!consume('}')) return false;
      *out = Value{std::move(o)};
      return true;
    }
    // Number.
    const std::size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '-' || text[pos] == '+')) {
      ++pos;
    }
    if (pos == start) return fail("unexpected character");
    const std::string num = text.substr(start, pos - start);
    char* end = nullptr;
    const double d = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) return fail("malformed number");
    *out = Value{d};
    return true;
  }
};

}  // namespace

std::string dump(const Value& v, int indent) {
  std::string out;
  dump_to(v, indent, 0, &out);
  return out;
}

bool parse(const std::string& text, Value* out, std::string* error) {
  Parser p{text, 0, {}};
  if (!p.parse_value(out)) {
    if (error) *error = p.error;
    return false;
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    if (error) {
      *error = "trailing characters at byte " + std::to_string(p.pos);
    }
    return false;
  }
  return true;
}

}  // namespace jpm::util::json
