// Fenwick (binary indexed) tree over a fixed-size array of integer counts.
//
// Used by the LRU stack-distance tracker (Bennett–Kruskal algorithm): one slot
// per access timestamp, prefix sums give "number of distinct pages referenced
// since time t" in O(log n).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "jpm/util/arena.h"
#include "jpm/util/check.h"
#include "jpm/util/prefetch.h"

namespace jpm {

class FenwickTree {
 public:
  FenwickTree() = default;
  explicit FenwickTree(std::size_t size) : tree_(size + 1, 0) {}
  // Arena-backed node storage (util/arena.h): the tree then lives next to
  // the rest of the hot-path working set. Capacity only ever grows, so the
  // arena waste from resizes is geometrically bounded.
  FenwickTree(std::size_t size, util::Arena* arena)
      : tree_(size + 1, 0, util::ArenaAllocator<std::int64_t>(arena)) {}

  std::size_t size() const { return tree_.empty() ? 0 : tree_.size() - 1; }

  void reset(std::size_t size) { tree_.assign(size + 1, 0); }

  // Resets to `size` positions with positions [0, ones) holding 1 and the
  // rest 0 — the state after `ones` consecutive add(i, +1) calls, built in
  // O(size) instead of O(ones log size). Node k (1-indexed) covers the
  // (k & -k) positions ending at k, so its value is the overlap of that
  // range with the ones-prefix.
  void reset_ones_prefix(std::size_t size, std::size_t ones) {
    JPM_DCHECK(ones <= size);
    tree_.resize(size + 1);
    tree_[0] = 0;
    for (std::size_t k = 1; k <= size; ++k) {
      const std::size_t lo = k - (k & (~k + 1));  // range is (lo, k]
      const std::size_t hi_ones = k < ones ? k : ones;
      tree_[k] = lo < hi_ones ? static_cast<std::int64_t>(hi_ones - lo) : 0;
    }
  }

  // Hints the first nodes of position i's add/prefix chains into cache.
  // Advisory only; out-of-range positions are ignored, so callers may pass
  // predicted future positions.
  void prefetch(std::size_t i) const {
    const std::size_t k = i + 1;
    if (k >= tree_.size()) return;
    util::prefetch_read(&tree_[k]);
    // Second chain level: the add chain ascends to k + (k & -k), the prefix
    // chain descends to k - (k & -k); one covers the other's line often
    // enough that hinting both low levels is what pays.
    const std::size_t up = k + (k & (~k + 1));
    if (up < tree_.size()) util::prefetch_read(&tree_[up]);
  }

  // Adds delta at 0-based position i.
  void add(std::size_t i, std::int64_t delta) {
    JPM_DCHECK(i < size());
    for (std::size_t k = i + 1; k < tree_.size(); k += k & (~k + 1)) {
      tree_[k] += delta;
    }
  }

  // Sum of positions [0, i] (0-based, inclusive).
  std::int64_t prefix_sum(std::size_t i) const {
    JPM_DCHECK(i < size());
    std::int64_t s = 0;
    for (std::size_t k = i + 1; k > 0; k -= k & (~k + 1)) s += tree_[k];
    return s;
  }

  // Sum over [lo, hi] inclusive; lo > hi yields 0.
  std::int64_t range_sum(std::size_t lo, std::size_t hi) const {
    if (lo > hi) return 0;
    std::int64_t s = prefix_sum(hi);
    if (lo > 0) s -= prefix_sum(lo - 1);
    return s;
  }

  std::int64_t total() const { return size() == 0 ? 0 : prefix_sum(size() - 1); }

 private:
  std::vector<std::int64_t, util::ArenaAllocator<std::int64_t>> tree_;
};

}  // namespace jpm
