// Wide-fanout counter tree over a fixed-size array of 0/1 marks.
//
// The LRU stack-distance tracker (Bennett–Kruskal algorithm) marks one slot
// per access and needs, per event, the count of marked slots at or before a
// position (a rank query) plus two point updates (clear the old mark, set
// the new one). A binary Fenwick tree answers that in O(log n) but walks
// ~log2(n) nodes scattered across an 8-byte-per-slot array — at a million
// slots that is ~20 cache lines touched per traversal, and the traversals
// dominate joint-replay time.
//
// This structure instead stores the marks as a flat bitmap and stacks
// 64-ary counter levels on top:
//
//   words   u64 bitmap, one bit per slot                (8 B / 64 slots)
//   c1      u8 per word: popcount of that word          (1 B / 64 slots)
//   upper0  u32 per 64 words (4096 slots)               and so on, /64 each
//   upper1  u32 per 64^2 words ...                      until <= 64 counters
//
// rank(i) = popcount of the masked leaf word, plus a prefix sum of at most
// 63 sibling counters per level — every address computable from i alone (no
// pointer chasing), at most one potentially-cold cache line per level, and
// 3-4 levels total for a million slots. The c1 level is one byte per
// counter, so a node's 64 siblings are exactly one 64-byte cache line and
// the partial sum is four masked psadbw reductions on SSE2 (baseline on
// x86-64), branch-free. Updates touch exactly the lines the fused query
// just walked. A 4M-slot tree is ~576 KB (bitmap + c1) instead of the
// Fenwick's 32 MB, so it stays cache-resident under the page table's
// traffic.
//
// All counts are exact: this is a drop-in replacement for the Fenwick tree
// in the 0/1-marks special case, and the tracker's outputs stay
// byte-identical (see tests/util/counter_tree_test.cc for the randomized
// differential against the Fenwick reference).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "jpm/util/arena.h"
#include "jpm/util/check.h"
#include "jpm/util/prefetch.h"

namespace jpm {

namespace counter_tree_detail {

// Portable single-word popcount: one instruction where the ISA is enabled
// at build time, a short branchless SWAR sequence otherwise (the default
// x86-64 baseline would turn __builtin_popcountll into a libgcc call).
inline std::uint64_t popcount64(std::uint64_t x) {
#if defined(__POPCNT__)
  return static_cast<std::uint64_t>(__builtin_popcountll(x));
#else
  x -= (x >> 1) & 0x5555555555555555ull;
  x = (x & 0x3333333333333333ull) + ((x >> 2) & 0x3333333333333333ull);
  x = (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0full;
  return (x * 0x0101010101010101ull) >> 56;
#endif
}

// Index of the lowest set bit; x must be non-zero. BSF is in the x86-64
// baseline, so this is one instruction even without -march flags.
inline int trailing_zeros(std::uint64_t x) {
  JPM_DCHECK(x != 0);
  return __builtin_ctzll(x);
}

#if defined(__SSE2__)
// Sliding prefix mask for a whole 64-entry counter block: a 64-byte window
// starting at offset 64-n holds exactly n 0xff bytes followed by zeros, so
// the four 16-byte chunk masks of a prefix are four consecutive unaligned
// loads from one table — no per-chunk length arithmetic at all.
alignas(16) inline constexpr unsigned char kBlockPrefixMask[128] = {
    0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,  //
    0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,  //
    0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,  //
    0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,  //
    0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,  //
    0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,  //
    0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,  //
    0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,  //
    0,    0,    0,    0,    0,    0,    0,    0,     //
    0,    0,    0,    0,    0,    0,    0,    0,     //
    0,    0,    0,    0,    0,    0,    0,    0,     //
    0,    0,    0,    0,    0,    0,    0,    0,     //
    0,    0,    0,    0,    0,    0,    0,    0,     //
    0,    0,    0,    0,    0,    0,    0,    0,     //
    0,    0,    0,    0,    0,    0,    0,    0,     //
    0,    0,    0,    0,    0,    0,    0,    0,     //
};
#endif

// Sum of block[0..n) for n <= 63 plus the per-byte counts packed in
// `extra` (any u64 whose 8 bytes each hold a small count — the SWAR
// byte-popcount of a leaf word feeds in here so its final horizontal sum
// rides the same psadbw reduction instead of paying its own multiply).
// `block` is the 64-byte-aligned start of a full 64-entry counter block
// (the tail past n is allocated and readable). On SSE2 this is four
// hand-unrolled masked psadbw reductions with masks taken from one sliding
// table — branch-free and loop-free regardless of n.
inline std::uint64_t sum_block_prefix_with(std::uint64_t extra,
                                           const unsigned char* block,
                                           std::size_t n) {
#if defined(__SSE2__)
  const __m128i zero = _mm_setzero_si128();
  const unsigned char* mask = kBlockPrefixMask + (64 - n);
  const auto chunk = [&](std::size_t lo) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + lo));
    const __m128i m =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(mask + lo));
    return _mm_sad_epu8(_mm_and_si128(v, m), zero);
  };
  __m128i acc =
      _mm_sad_epu8(_mm_cvtsi64_si128(static_cast<long long>(extra)), zero);
  acc = _mm_add_epi64(acc, _mm_add_epi64(chunk(0), chunk(16)));
  acc = _mm_add_epi64(acc, _mm_add_epi64(chunk(32), chunk(48)));
  acc = _mm_add_epi64(acc, _mm_srli_si128(acc, 8));
  return static_cast<std::uint64_t>(_mm_cvtsi128_si64(acc));
#else
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    s0 += block[j];
    s1 += block[j + 1];
    s2 += block[j + 2];
    s3 += block[j + 3];
  }
  for (; j < n; ++j) s0 += block[j];
  return (s0 + s1) + (s2 + s3) + ((extra * 0x0101010101010101ull) >> 56);
#endif
}

inline std::uint64_t sum_block_prefix(const unsigned char* block,
                                      std::size_t n) {
  return sum_block_prefix_with(0, block, n);
}

// Per-byte popcounts of x, packed one count per byte (the first three SWAR
// steps, without the final horizontal multiply — sum_block_prefix_with
// folds these bytes via psadbw).
inline std::uint64_t byte_popcounts(std::uint64_t x) {
  x -= (x >> 1) & 0x5555555555555555ull;
  x = (x & 0x3333333333333333ull) + ((x >> 2) & 0x3333333333333333ull);
  return (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0full;
}

// Sum of p[0..n) for n <= 64. Four independent accumulators keep the adds
// off one serial dependency chain; gcc vectorizes this shape at -O2.
template <typename T>
inline std::uint64_t sum_prefix(const T* p, std::size_t n) {
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    s0 += p[j];
    s1 += p[j + 1];
    s2 += p[j + 2];
    s3 += p[j + 3];
  }
  for (; j < n; ++j) s0 += p[j];
  return (s0 + s1) + (s2 + s3);
}

#if defined(__SSE2__)
// u32 overload for the tree's upper levels: paddd over 4-lane chunks, then
// one zero-extend to 64-bit lanes for the horizontal fold. Exact as long as
// each lane's running sum stays below 2^32 — counters at one level count
// disjoint subtrees, so any subset sums to at most the tree's total marks,
// and CounterTree::reset_ones_prefix bounds size (hence total) below 2^32.
inline std::uint64_t sum_prefix(const std::uint32_t* p, std::size_t n) {
  __m128i acc = _mm_setzero_si128();
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    acc = _mm_add_epi32(
        acc, _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + j)));
  }
  std::uint64_t tail = 0;
  for (; j < n; ++j) tail += p[j];
  const __m128i zero = _mm_setzero_si128();
  __m128i wide = _mm_add_epi64(_mm_unpacklo_epi32(acc, zero),
                               _mm_unpackhi_epi32(acc, zero));
  wide = _mm_add_epi64(wide, _mm_srli_si128(wide, 8));
  return tail + static_cast<std::uint64_t>(_mm_cvtsi128_si64(wide));
}
#endif

}  // namespace counter_tree_detail

class CounterTree {
 public:
  CounterTree() = default;
  explicit CounterTree(std::size_t size) { reset(size); }
  // Arena-backed storage (util/arena.h): the tree then lives next to the
  // rest of the hot-path working set. Capacity only ever grows, so arena
  // waste from resizes is geometrically bounded.
  CounterTree(std::size_t size, util::Arena* arena)
      : words_(util::ArenaAllocator<std::uint64_t>(arena)),
        c1_store_(util::ArenaAllocator<std::uint64_t>(arena)),
        arena_(arena) {
    reset(size);
  }

  std::size_t size() const { return size_; }
  // Number of marked slots.
  std::uint64_t total() const { return total_; }

  // Clears to `size` positions, all unmarked.
  void reset(std::size_t size) { reset_ones_prefix(size, 0); }

  // Resets to `size` positions with positions [0, ones) marked and the rest
  // clear — the state after `ones` consecutive set() calls, built in O(size).
  void reset_ones_prefix(std::size_t size, std::size_t ones) {
    JPM_DCHECK(ones <= size);
    // Upper-level counters are u32 (and the SSE2 prefix sum accumulates in
    // u32 lanes), so the tree tops out below 2^32 slots — 512 MiB of leaf
    // words alone, far past any tracker sizing.
    JPM_DCHECK(static_cast<std::uint64_t>(size) <= 0xffffffffull);
    size_ = size;
    total_ = ones;
    const std::size_t words = (size + 63) / 64;
    words_.assign(words, 0);
    // c1 lives in u64 storage so a 64-counter block is one cache line:
    // blocks of 64 bytes, rounded up, plus slack to 64-byte-align the base.
    // assign() zeroes the tail padding, which no query ever sums (the mask
    // covers only in-range counters) but SSE2 chunk loads may touch.
    const std::size_t blocks = (words + 63) / 64;
    c1_store_.assign(blocks * 8 + 8, 0);
    c1_off_ = static_cast<std::size_t>(
        (64 - reinterpret_cast<std::uintptr_t>(c1_store_.data()) % 64) % 64);
    unsigned char* c1 = c1_base();
    const std::size_t full_words = ones / 64;
    for (std::size_t w = 0; w < full_words; ++w) {
      words_[w] = ~std::uint64_t{0};
      c1[w] = 64;
    }
    if (const std::size_t rem = ones % 64; rem != 0) {
      words_[full_words] = (std::uint64_t{1} << rem) - 1;
      c1[full_words] = static_cast<unsigned char>(rem);
    }
    // Counter levels above c1, fanout 64, until one node covers everything.
    // Level k's counter j covers `span` slots starting at j*span. Existing
    // level storage is reused across resets (compactions).
    std::size_t levels = 0;
    std::size_t count = words;
    std::uint64_t span = 64 * 64;
    while (count > 64) {
      count = (count + 63) / 64;
      if (levels == upper_.size()) {
        upper_.emplace_back(util::ArenaAllocator<std::uint32_t>(arena_));
      }
      auto& level = upper_[levels];
      level.assign(count, 0);
      for (std::size_t j = 0; j < count; ++j) {
        const std::uint64_t lo = j * span;
        const std::uint64_t covered =
            ones > lo ? (ones - lo < span ? ones - lo : span) : 0;
        level[j] = static_cast<std::uint32_t>(covered);
      }
      span *= 64;
      ++levels;
    }
    upper_.resize(levels);
  }

  // Hints the lines rank/set/clear at position i will touch: the leaf word
  // and its c1 block (exactly one line each). Upper levels are a few
  // hundred bytes and stay cached. Advisory; out-of-range positions are
  // ignored, so callers may pass predicted future positions.
  void prefetch(std::size_t i) const {
    const std::size_t w = i >> 6;
    if (w >= words_.size()) return;
    util::prefetch_read(&words_[w]);
    util::prefetch_read(c1_base() + (w & ~std::size_t{63}));
  }

  // Marks position i (must be clear).
  JPM_FORCE_INLINE void set(std::size_t i) {
    JPM_DCHECK(i < size_ && !test(i));
    const std::size_t w = i >> 6;
    words_[w] |= std::uint64_t{1} << (i & 63);
    ++c1_base()[w];
    std::size_t idx = w >> 6;
    for (auto& level : upper_) {
      ++level[idx];
      idx >>= 6;
    }
    ++total_;
  }

  // Count of marked positions in [0, i], then unmark i (must be marked) —
  // the tracker's fused per-event operation. The prefix sums at each level
  // read strictly-lower siblings, so the decrements never feed them.
  JPM_FORCE_INLINE std::uint64_t rank_and_clear(std::size_t i) {
    JPM_DCHECK(i < size_ && test(i));
    using counter_tree_detail::byte_popcounts;
    using counter_tree_detail::sum_block_prefix_with;
    using counter_tree_detail::sum_prefix;
    const std::size_t w = i >> 6;
    const std::uint64_t bit = std::uint64_t{1} << (i & 63);
    const std::uint64_t masked = words_[w] & (bit | (bit - 1));
    words_[w] &= ~bit;
    // Sum before update: the prefix covers strictly-lower siblings only, so
    // w's own counter never feeds it — and summing first keeps the wide
    // chunk loads from landing on a just-stored byte of the same line (a
    // narrow-store/wide-load forward the CPU resolves with a stall).
    unsigned char* c1 = c1_base();
    std::uint64_t r = sum_block_prefix_with(
        byte_popcounts(masked), c1 + (w & ~std::size_t{63}), w & 63);
    --c1[w];
    std::size_t idx = w >> 6;
    for (auto& level : upper_) {
      r += sum_prefix(level.data() + (idx & ~std::size_t{63}), idx & 63);
      --level[idx];
      idx >>= 6;
    }
    --total_;
    return r;
  }

  // Fused rank_and_clear(from) + set(to) for to > from — the tracker's
  // re-access operation (the new slot is always the append end, past every
  // marked slot). One walk updates both positions at every level, halving
  // the loop and call overhead of the sequential pair; with `to` strictly
  // above `from`, the increment can never land among the strictly-lower
  // siblings the rank sums, so the result matches the sequential pair
  // exactly. total() is unchanged (one mark moved).
  JPM_FORCE_INLINE std::uint64_t rank_move(std::size_t from, std::size_t to) {
    JPM_DCHECK(from < to && to < size_ && test(from) && !test(to));
    using counter_tree_detail::byte_popcounts;
    using counter_tree_detail::sum_block_prefix_with;
    using counter_tree_detail::sum_prefix;
    const std::size_t fw = from >> 6;
    const std::size_t tw = to >> 6;
    const std::uint64_t fbit = std::uint64_t{1} << (from & 63);
    const std::uint64_t masked = words_[fw] & (fbit | (fbit - 1));
    words_[fw] &= ~fbit;
    words_[tw] |= std::uint64_t{1} << (to & 63);
    // Sum before updates: the prefix covers strictly-lower siblings of
    // `from` only, and `to` sits at or above `from` at every level, so
    // neither counter change feeds the sum — and summing first keeps the
    // wide chunk loads from landing on a just-stored byte of the same line
    // (a narrow-store/wide-load forward the CPU resolves with a stall).
    unsigned char* c1 = c1_base();
    std::uint64_t r = sum_block_prefix_with(
        byte_popcounts(masked), c1 + (fw & ~std::size_t{63}), fw & 63);
    --c1[fw];
    ++c1[tw];
    std::size_t fi = fw >> 6;
    std::size_t ti = tw >> 6;
    for (auto& level : upper_) {
      r += sum_prefix(level.data() + (fi & ~std::size_t{63}), fi & 63);
      --level[fi];
      ++level[ti];
      fi >>= 6;
      ti >>= 6;
    }
    return r;
  }

  // Count of marked positions in [0, i] (inclusive), without mutation.
  std::uint64_t prefix_ones(std::size_t i) const {
    JPM_DCHECK(i < size_);
    using counter_tree_detail::byte_popcounts;
    using counter_tree_detail::sum_block_prefix_with;
    using counter_tree_detail::sum_prefix;
    const std::size_t w = i >> 6;
    const std::uint64_t bit = std::uint64_t{1} << (i & 63);
    std::uint64_t r = sum_block_prefix_with(
        byte_popcounts(words_[w] & (bit | (bit - 1))),
        c1_base() + (w & ~std::size_t{63}), w & 63);
    std::size_t idx = w >> 6;
    for (const auto& level : upper_) {
      r += sum_prefix(level.data() + (idx & ~std::size_t{63}), idx & 63);
      idx >>= 6;
    }
    return r;
  }

  bool test(std::size_t i) const {
    JPM_DCHECK(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  // Visits every marked position in ascending order. Streams the leaf
  // bitmap only — one word per 64 positions — so callers that need the
  // marked set (compaction) pay O(size/64 + marks) instead of scanning a
  // side array of every position.
  template <typename F>
  void for_each_set(F&& f) const {
    const std::size_t nwords = (size_ + 63) >> 6;
    for (std::size_t w = 0; w < nwords; ++w) {
      std::uint64_t bits = words_[w];
      while (bits != 0) {
        const std::size_t b =
            static_cast<std::size_t>(counter_tree_detail::trailing_zeros(bits));
        bits &= bits - 1;
        f((w << 6) | b);
      }
    }
  }

 private:
  template <typename T>
  using Vec = std::vector<T, util::ArenaAllocator<T>>;

  // 64-byte-aligned start of the c1 byte lane inside c1_store_. Recomputed
  // from the offset on every use (not cached as a pointer) so copies and
  // reallocations can never leave a dangling base.
  unsigned char* c1_base() {
    return reinterpret_cast<unsigned char*>(c1_store_.data()) + c1_off_;
  }
  const unsigned char* c1_base() const {
    return reinterpret_cast<const unsigned char*>(c1_store_.data()) + c1_off_;
  }

  Vec<std::uint64_t> words_;
  Vec<std::uint64_t> c1_store_;  // u8 counters, one 64 B line per 64 words
  std::size_t c1_off_ = 0;       // bytes from data() to the aligned base
  // Upper counter levels, bottom-up; each entry covers 64x the level below.
  // At most 4 levels for 2^32 slots, usually 0-2; kept in plain vectors
  // (the outer vector is cold — only the per-level arrays are hot).
  std::vector<Vec<std::uint32_t>> upper_;
  util::Arena* arena_ = nullptr;
  std::size_t size_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace jpm
