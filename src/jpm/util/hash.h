// FNV-1a 64-bit hashing, shared by scenario provenance (jpm::spec) and the
// chunked trace format's content/checksum hashes (jpm::tracefile). One
// implementation means the hash printed by `jpm hash`, `jpm trace info`, and
// the telemetry report provenance fields all agree byte for byte.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace jpm::util {

inline constexpr std::uint64_t kFnv1a64Offset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnv1a64Prime = 0x100000001b3ull;

// Incremental FNV-1a 64: feed byte ranges in order; digest() at any point is
// the hash of everything fed so far. Splitting one buffer into any sequence
// of update() calls yields the same digest.
class Fnv1a64 {
 public:
  void update(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint64_t h = state_;
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= kFnv1a64Prime;
    }
    state_ = h;
  }
  std::uint64_t digest() const { return state_; }

 private:
  std::uint64_t state_ = kFnv1a64Offset;
};

inline std::uint64_t fnv1a64(std::string_view bytes) {
  Fnv1a64 h;
  h.update(bytes.data(), bytes.size());
  return h.digest();
}

inline std::uint64_t fnv1a64(const void* data, std::size_t n) {
  Fnv1a64 h;
  h.update(data, n);
  return h.digest();
}

// 16 lowercase hex digits — the provenance spelling used everywhere a hash
// reaches a report or the CLI.
inline std::string hex16(std::uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace jpm::util
