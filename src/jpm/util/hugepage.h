// Transparent-huge-page hint for large hot-path allocations.
//
// The simulator's big arrays — the page table's slot vector, arena blocks,
// per-period event lanes — are tens of megabytes probed at random. On 4 KiB
// pages that working set overflows the dTLB, so nearly every probe adds a
// page walk on top of its cache miss. Most distros ship THP in `madvise`
// mode, where the kernel only uses 2 MiB pages for ranges that ask; this
// helper is that ask. Purely advisory: results, determinism, and portability
// are unaffected (non-Linux builds compile it away), and callers may pass
// any heap range — the hint is applied to the whole-page subrange.
#pragma once

#include <cstddef>
#include <cstdint>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace jpm::util {

// Worth asking only for ranges that span multiple 2 MiB pages.
inline constexpr std::size_t kHugepageAdviseMinBytes = std::size_t{4} << 20;

inline void advise_hugepages(void* p, std::size_t bytes) {
#if defined(__linux__) && defined(MADV_HUGEPAGE)
  if (p == nullptr || bytes < kHugepageAdviseMinBytes) return;
  constexpr std::uintptr_t kPage = 4096;
  const std::uintptr_t base = reinterpret_cast<std::uintptr_t>(p);
  const std::uintptr_t lo = (base + kPage - 1) & ~(kPage - 1);
  const std::uintptr_t hi = (base + bytes) & ~(kPage - 1);
  if (hi > lo) {
    // Best-effort: EINVAL/ENOMEM just means no huge pages here.
    (void)madvise(reinterpret_cast<void*>(lo), hi - lo, MADV_HUGEPAGE);
  }
#else
  (void)p;
  (void)bytes;
#endif
}

}  // namespace jpm::util
