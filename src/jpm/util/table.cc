#include "jpm/util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "jpm/util/check.h"

namespace jpm {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  JPM_CHECK(!headers_.empty());
}

Table& Table::row() {
  cells_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& text) {
  JPM_CHECK_MSG(!cells_.empty(), "call row() before cell()");
  JPM_CHECK_MSG(cells_.back().size() < headers_.size(), "row has too many cells");
  cells_.back().push_back(text);
  return *this;
}

Table& Table::cell(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return cell(os.str());
}

Table& Table::cell(std::uint64_t value) { return cell(std::to_string(value)); }

Table& Table::cell_percent(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << "%";
  return cell(os.str());
}

void Table::print(std::ostream& os) const { os << to_string(); }

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : cells_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto line = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << '+' << std::string(widths[c] + 2, '-');
    }
    os << "+\n";
  };
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& text = c < row.size() ? row[c] : std::string{};
      os << "| " << std::left << std::setw(static_cast<int>(widths[c])) << text
         << ' ';
    }
    os << "|\n";
  };

  line();
  emit(headers_);
  line();
  for (const auto& row : cells_) emit(row);
  line();
  return os.str();
}

}  // namespace jpm
