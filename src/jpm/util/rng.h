// Deterministic random number generation for reproducible simulation runs.
//
// xoshiro256** (Blackman & Vigna) seeded via splitmix64: fast, high quality,
// and stable across platforms — unlike std::default_random_engine, every run
// with the same seed produces the same trace everywhere.
#pragma once

#include <cstdint>

namespace jpm {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  // Uniform double in [0, 1).
  double uniform();
  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n);
  // Exponential with the given mean (> 0).
  double exponential(double mean);
  // Standard normal via Box–Muller (no state carried between calls).
  double normal(double mean, double stddev);
  // Bernoulli trial.
  bool chance(double p);

  // Derives an independent stream (for per-component RNGs from one seed).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace jpm
