// Minimal JSON value, parser, and deterministic writer.
//
// Used by the telemetry exporters (report writing) and the schema tests
// (report validation) — no third-party JSON dependency. The writer is
// deterministic: object members serialize in insertion order, and doubles
// use the shortest round-trip representation, so two structurally identical
// documents serialize byte-identically. Not a general-purpose JSON library:
// no \uXXXX escape decoding beyond pass-through, no NaN/Inf (rejected at
// write time — encode such values before storing them).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace jpm::util::json {

class Value;
using Array = std::vector<Value>;

// Object preserving insertion order (deterministic serialization that still
// reads naturally: "version" first, payload after).
class Object {
 public:
  Value& operator[](const std::string& key);           // insert or fetch
  const Value* find(const std::string& key) const;     // nullptr if absent
  bool contains(const std::string& key) const { return find(key) != nullptr; }
  std::size_t size() const { return entries_.size(); }
  const std::vector<std::pair<std::string, Value>>& entries() const {
    return entries_;
  }

 private:
  std::vector<std::pair<std::string, Value>> entries_;
};

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() : kind_(Kind::kNull) {}
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  Value(double d) : kind_(Kind::kNumber), number_(d) {}
  Value(int i) : kind_(Kind::kNumber), number_(i) {}
  Value(std::int64_t i)
      : kind_(Kind::kNumber), number_(static_cast<double>(i)) {}
  Value(std::uint64_t u)
      : kind_(Kind::kNumber), number_(static_cast<double>(u)) {}
  Value(const char* s) : kind_(Kind::kString), string_(s) {}
  Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  Value(Array a) : kind_(Kind::kArray), array_(std::move(a)) {}
  Value(Object o) : kind_(Kind::kObject), object_(std::move(o)) {}

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const Array& as_array() const { return array_; }
  Array& as_array() { return array_; }
  const Object& as_object() const { return object_; }
  Object& as_object() { return object_; }

  static const char* kind_name(Kind k);

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

// Serializes a double exactly the way the writer does (shortest round-trip);
// exposed so CSV export and tests format numbers identically to the report.
std::string format_number(double d);

// Deterministic serialization. indent < 0 emits compact one-line JSON;
// indent >= 0 pretty-prints with that many spaces per level.
std::string dump(const Value& v, int indent = -1);

// Parses `text`; on failure returns nullopt-like null Value and fills
// `error` (when non-null) with a message naming the byte offset.
bool parse(const std::string& text, Value* out, std::string* error = nullptr);

}  // namespace jpm::util::json
