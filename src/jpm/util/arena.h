// Bump arena + std::allocator adapter for the simulator's hot-path storage.
//
// The engine's per-event working set — LRU list nodes, the stack-distance
// Fenwick tree — is allocated once (or a geometrically bounded number of
// times) and lives for the whole run. Carving it out of one arena keeps
// those arrays adjacent in memory instead of scattered across the heap, so
// batch-adjacent entries land on adjacent cache lines and page-in together.
//
// The arena only bumps: individual deallocation is a no-op and memory is
// reclaimed when the arena is destroyed (or release()d). That fits the
// engine's containers, which grow to a high-water mark and never shrink;
// the waste from container growth is bounded by the usual geometric factor.
// ArenaAllocator with a null arena falls back to the global heap, so the
// same container type serves both arena-backed and standalone uses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "jpm/util/check.h"
#include "jpm/util/hugepage.h"

namespace jpm::util {

class Arena {
 public:
  // Blocks grow geometrically from `first_block_bytes`; a request larger
  // than the current block size gets a dedicated block of its exact size.
  explicit Arena(std::size_t first_block_bytes = 64 * 1024)
      : next_block_bytes_(first_block_bytes) {
    JPM_CHECK(first_block_bytes > 0);
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void* allocate(std::size_t bytes, std::size_t align) {
    JPM_DCHECK(align > 0 && (align & (align - 1)) == 0);
    const std::uintptr_t cur = reinterpret_cast<std::uintptr_t>(cursor_);
    const std::uintptr_t aligned = (cur + (align - 1)) & ~(align - 1ull);
    const std::size_t pad = static_cast<std::size_t>(aligned - cur);
    if (cursor_ == nullptr || pad + bytes > remaining_) {
      grow(bytes, align);
      return allocate(bytes, align);
    }
    cursor_ += pad;
    remaining_ -= pad;
    void* out = cursor_;
    cursor_ += bytes;
    remaining_ -= bytes;
    allocated_bytes_ += bytes;
    return out;
  }

  // Frees every block. All memory handed out becomes invalid.
  void release() {
    blocks_.clear();
    cursor_ = nullptr;
    remaining_ = 0;
    allocated_bytes_ = 0;
  }

  std::size_t allocated_bytes() const { return allocated_bytes_; }
  std::size_t block_count() const { return blocks_.size(); }

 private:
  void grow(std::size_t bytes, std::size_t align) {
    // Worst case the aligned allocation needs bytes + align - 1.
    std::size_t want = bytes + align;
    if (want < next_block_bytes_) want = next_block_bytes_;
    // Uninitialized block (callers construct what they carve out), with the
    // huge-page hint applied before first touch — madvise after the pages
    // have faulted in at 4 KiB would leave them there.
    auto block = std::make_unique_for_overwrite<std::byte[]>(want);
    advise_hugepages(block.get(), want);
    blocks_.push_back(std::move(block));
    cursor_ = blocks_.back().get();
    remaining_ = want;
    if (next_block_bytes_ < (std::size_t{1} << 30)) next_block_bytes_ *= 2;
  }

  std::vector<std::unique_ptr<std::byte[]>> blocks_;
  std::byte* cursor_ = nullptr;
  std::size_t remaining_ = 0;
  std::size_t next_block_bytes_;
  std::size_t allocated_bytes_ = 0;
};

// std::allocator-compatible adapter. A null arena uses the global heap
// (and frees normally); a non-null arena bumps and never frees. Containers
// holding this allocator must not outlive the arena.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;

  ArenaAllocator() = default;
  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    if (arena_ == nullptr) {
      return static_cast<T*>(::operator new(n * sizeof(T)));
    }
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }

  void deallocate(T* p, std::size_t) {
    if (arena_ == nullptr) ::operator delete(p);
  }

  Arena* arena() const { return arena_; }

  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ == b.arena_;
  }
  friend bool operator!=(const ArenaAllocator& a, const ArenaAllocator& b) {
    return !(a == b);
  }

 private:
  Arena* arena_ = nullptr;
};

}  // namespace jpm::util
