#include "jpm/util/stats.h"

#include <algorithm>
#include <cmath>

#include "jpm/util/check.h"

namespace jpm {

void StreamingStats::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void StreamingStats::merge(const StreamingStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void StreamingStats::reset() { *this = StreamingStats{}; }

double StreamingStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  JPM_CHECK(hi > lo);
  JPM_CHECK(bins > 0);
}

void Histogram::add(double x) {
  std::size_t i;
  if (x < lo_) {
    i = 0;
  } else if (x >= hi_) {
    i = counts_.size() - 1;
  } else {
    i = static_cast<std::size_t>((x - lo_) / width_);
    i = std::min(i, counts_.size() - 1);
  }
  ++counts_[i];
  ++total_;
}

std::uint64_t Histogram::bin_count(std::size_t i) const {
  JPM_CHECK(i < counts_.size());
  return counts_[i];
}

double Histogram::bin_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
double Histogram::bin_hi(std::size_t i) const { return bin_lo(i) + width_; }

double Histogram::quantile(double q) const {
  JPM_CHECK(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double frac = counts_[i] == 0
                              ? 0.0
                              : (target - cum) / static_cast<double>(counts_[i]);
      return bin_lo(i) + frac * width_;
    }
    cum = next;
  }
  return hi_;
}

BucketHistogram::BucketHistogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size(), 0) {
  JPM_CHECK_MSG(!bounds_.empty(), "BucketHistogram needs at least one bucket");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    JPM_CHECK_MSG(bounds_[i] > bounds_[i - 1],
                  "bucket bounds must be strictly increasing");
  }
}

void BucketHistogram::add(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  if (it == bounds_.end()) {
    ++overflow_;
  } else {
    ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  }
  ++count_;
  sum_ += x;
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void BucketHistogram::merge(const BucketHistogram& other) {
  JPM_CHECK_MSG(bounds_ == other.bounds_,
                "cannot merge histograms with different bucket bounds");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  overflow_ += other.overflow_;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double BucketHistogram::upper_bound(std::size_t i) const {
  JPM_CHECK(i < bounds_.size());
  return bounds_[i];
}

std::uint64_t BucketHistogram::count_in_bucket(std::size_t i) const {
  JPM_CHECK(i < counts_.size());
  return counts_[i];
}

double BucketHistogram::quantile(double q) const {
  JPM_CHECK(q >= 0.0 && q <= 1.0);
  if (count_ == 0) return 0.0;
  const double target = q * static_cast<double>(count_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double lo = i == 0 ? std::min(0.0, bounds_[0]) : bounds_[i - 1];
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return lo + frac * (bounds_[i] - lo);
    }
    cum = next;
  }
  // The quantile lands in the overflow bucket: the best bounded answer is
  // the largest sample seen.
  return max();
}

std::vector<double> log_bucket_bounds(double lo, double hi, int per_decade) {
  JPM_CHECK_MSG(lo > 0.0 && hi > lo, "log buckets need 0 < lo < hi");
  JPM_CHECK(per_decade > 0);
  std::vector<double> bounds;
  const double step = std::pow(10.0, 1.0 / static_cast<double>(per_decade));
  // Generate each bound directly from its integer index so the sequence is
  // identical regardless of accumulated rounding at call sites.
  for (int k = 0;; ++k) {
    const double b = lo * std::pow(step, static_cast<double>(k));
    bounds.push_back(b);
    if (b >= hi) break;
  }
  return bounds;
}

double percentile(std::vector<double> values, double pct) {
  JPM_CHECK(!values.empty());
  JPM_CHECK(pct >= 0.0 && pct <= 100.0);
  std::sort(values.begin(), values.end());
  const double rank = pct / 100.0 * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace jpm
