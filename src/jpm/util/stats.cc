#include "jpm/util/stats.h"

#include <algorithm>
#include <cmath>

#include "jpm/util/check.h"

namespace jpm {

void StreamingStats::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void StreamingStats::merge(const StreamingStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void StreamingStats::reset() { *this = StreamingStats{}; }

double StreamingStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  JPM_CHECK(hi > lo);
  JPM_CHECK(bins > 0);
}

void Histogram::add(double x) {
  std::size_t i;
  if (x < lo_) {
    i = 0;
  } else if (x >= hi_) {
    i = counts_.size() - 1;
  } else {
    i = static_cast<std::size_t>((x - lo_) / width_);
    i = std::min(i, counts_.size() - 1);
  }
  ++counts_[i];
  ++total_;
}

std::uint64_t Histogram::bin_count(std::size_t i) const {
  JPM_CHECK(i < counts_.size());
  return counts_[i];
}

double Histogram::bin_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
double Histogram::bin_hi(std::size_t i) const { return bin_lo(i) + width_; }

double Histogram::quantile(double q) const {
  JPM_CHECK(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double frac = counts_[i] == 0
                              ? 0.0
                              : (target - cum) / static_cast<double>(counts_[i]);
      return bin_lo(i) + frac * width_;
    }
    cum = next;
  }
  return hi_;
}

double percentile(std::vector<double> values, double pct) {
  JPM_CHECK(!values.empty());
  JPM_CHECK(pct >= 0.0 && pct <= 100.0);
  std::sort(values.begin(), values.end());
  const double rank = pct / 100.0 * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace jpm
