// Streaming statistics and histogram utilities used by the metrics layer and
// the joint power manager's period bookkeeping.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace jpm {

// Welford-style streaming mean/variance plus min/max and sum.
class StreamingStats {
 public:
  void add(double x);
  void merge(const StreamingStats& other);
  void reset();

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double variance() const;  // population variance; 0 if count < 2
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Fixed-width linear histogram over [lo, hi); out-of-range samples land in the
// first/last bin. Used for latency breakdowns in metrics reports.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::uint64_t bin_count(std::size_t i) const;
  std::size_t bins() const { return counts_.size(); }
  std::uint64_t total() const { return total_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  // Value below which the given fraction of samples fall (linear
  // interpolation within the bin). quantile in [0,1].
  double quantile(double q) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

// Streaming histogram over explicit, strictly increasing bucket upper
// bounds, with a dedicated overflow bucket. A sample x lands in the first
// bucket whose upper bound satisfies x <= bound; samples above the last
// bound land in the overflow bucket. Counting is O(log buckets) and the
// state is a fixed vector of integers, so two histograms built from the same
// bounds over the same sample sequence are bit-identical — the property the
// telemetry registries' determinism guarantee rests on.
class BucketHistogram {
 public:
  explicit BucketHistogram(std::vector<double> upper_bounds);

  void add(double x);
  void merge(const BucketHistogram& other);  // bounds must match exactly

  std::size_t bucket_count() const { return bounds_.size(); }
  double upper_bound(std::size_t i) const;
  std::uint64_t count_in_bucket(std::size_t i) const;
  std::uint64_t overflow_count() const { return overflow_; }
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  const std::vector<double>& upper_bounds() const { return bounds_; }

  // Value below which fraction q of the samples fall, interpolated linearly
  // inside the winning bucket (the first bucket's lower edge is 0 for
  // nonnegative bounds, otherwise the bound itself). Returns 0 when empty;
  // quantiles that land in the overflow bucket return max().
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t overflow_ = 0;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// `per_decade` logarithmically spaced bucket bounds covering [lo, hi]
// (inclusive of a final bound >= hi). lo must be positive. The generation is
// closed-form from (lo, hi, per_decade), so call sites across threads build
// bit-identical bucket layouts.
std::vector<double> log_bucket_bounds(double lo, double hi, int per_decade);

// Exact percentile of a sample vector (copies + sorts; for tests/reports).
double percentile(std::vector<double> values, double pct);

}  // namespace jpm
