// Streaming statistics and histogram utilities used by the metrics layer and
// the joint power manager's period bookkeeping.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace jpm {

// Welford-style streaming mean/variance plus min/max and sum.
class StreamingStats {
 public:
  void add(double x);
  void merge(const StreamingStats& other);
  void reset();

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double variance() const;  // population variance; 0 if count < 2
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Fixed-width linear histogram over [lo, hi); out-of-range samples land in the
// first/last bin. Used for latency breakdowns in metrics reports.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::uint64_t bin_count(std::size_t i) const;
  std::size_t bins() const { return counts_.size(); }
  std::uint64_t total() const { return total_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  // Value below which the given fraction of samples fall (linear
  // interpolation within the bin). quantile in [0,1].
  double quantile(double q) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

// Exact percentile of a sample vector (copies + sorts; for tests/reports).
double percentile(std::vector<double> values, double pct);

}  // namespace jpm
