// Byte / time / power unit helpers shared across the library.
//
// Convention: sizes are bytes in uint64_t (or MB in double where a model is
// naturally per-MB, e.g. RDRAM static power), times are seconds in double,
// power is watts, energy is joules.
#pragma once

#include <cstdint>

namespace jpm {

inline constexpr std::uint64_t kKiB = 1024ull;
inline constexpr std::uint64_t kMiB = 1024ull * kKiB;
inline constexpr std::uint64_t kGiB = 1024ull * kMiB;

constexpr std::uint64_t mib(std::uint64_t n) { return n * kMiB; }
constexpr std::uint64_t gib(std::uint64_t n) { return n * kGiB; }

constexpr double to_mib(std::uint64_t bytes) {
  return static_cast<double>(bytes) / static_cast<double>(kMiB);
}
constexpr double to_gib(std::uint64_t bytes) {
  return static_cast<double>(bytes) / static_cast<double>(kGiB);
}

constexpr double minutes(double m) { return m * 60.0; }
constexpr double hours(double h) { return h * 3600.0; }

// Integer ceiling division for sizing (pages per file, banks per size, ...).
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

}  // namespace jpm
