// Open-addressing hash map for the simulator's page tables.
//
// The per-event hot loop pays one hash lookup per access in every page
// table it touches; std::unordered_map's node-based buckets turn each of
// those into a pointer chase through cold memory plus an allocation per
// insert. FlatMap stores key/value pairs inline in one power-of-two array
// (16 bytes per slot for the engine's PageEntry — four slots per cache
// line), probes linearly from a Fibonacci-hashed start index, and erases
// with backward shifting, so the table never accumulates tombstones and a
// lookup touches exactly one contiguous run of slots.
//
// Keys are u64; values must be trivially copyable (slots are relocated with
// plain assignment during growth and backward-shift erase). One key value
// (~0) is reserved internally as the empty-slot marker and handled out of
// line, so the full u64 key space remains usable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "jpm/util/check.h"
#include "jpm/util/hugepage.h"
#include "jpm/util/prefetch.h"

namespace jpm::util {

// Growth knobs: the map rehashes to the next power of two once
// size() * 100 > capacity() * max_load_percent. Small tables (the common
// case for standalone caches in tests) start at min_capacity.
struct FlatMapGrowth {
  unsigned max_load_percent = 75;  // in (0, 90]
  std::size_t min_capacity = 16;   // power of two, >= 2
};

template <typename V>
class FlatMap {
  static_assert(std::is_trivially_copyable_v<V>,
                "FlatMap slots are relocated with plain assignment");

 public:
  static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};

  explicit FlatMap(FlatMapGrowth growth = {}) : growth_(growth) {
    JPM_CHECK(growth_.max_load_percent > 0 && growth_.max_load_percent <= 90);
    JPM_CHECK(growth_.min_capacity >= 2 &&
              (growth_.min_capacity & (growth_.min_capacity - 1)) == 0);
  }

  std::size_t size() const { return size_ + (sentinel_used_ ? 1 : 0); }
  bool empty() const { return size() == 0; }
  // Slot-array capacity (0 until the first insert or reserve).
  std::size_t capacity() const { return slots_.size(); }

  // Pre-sizes the table so `n` keys fit without rehashing.
  void reserve(std::size_t n) {
    std::size_t want = growth_.min_capacity;
    while (n * 100 > want * growth_.max_load_percent) want <<= 1;
    if (want > slots_.size()) rehash(want);
  }

  void clear() {
    for (auto& s : slots_) s.key = kEmptyKey;
    size_ = 0;
    sentinel_used_ = false;
  }

  V* find(std::uint64_t key) {
    return const_cast<V*>(std::as_const(*this).find(key));
  }

  const V* find(std::uint64_t key) const {
    if (key == kEmptyKey) return sentinel_used_ ? &sentinel_value_ : nullptr;
    if (slots_.empty()) return nullptr;
    std::size_t i = home(key);
    while (slots_[i].key != kEmptyKey) {
      if (slots_[i].key == key) return &slots_[i].value;
      i = (i + 1) & mask_;
    }
    return nullptr;
  }

  bool contains(std::uint64_t key) const { return find(key) != nullptr; }

  // Hints the key's home slot into cache ahead of a find/find_or_insert.
  // Purely advisory: never changes observable state, safe on absent keys.
  void prefetch(std::uint64_t key) const {
    if (key == kEmptyKey || slots_.empty()) return;
    prefetch_read(&slots_[home(key)]);
  }

  // Returns the value for `key`, default-constructing it when absent.
  // `inserted` (optional) reports whether a new entry was created. The
  // returned pointer is valid until the next insert, erase, or rehash.
  V* find_or_insert(std::uint64_t key, bool* inserted = nullptr) {
    if (inserted != nullptr) *inserted = false;
    if (key == kEmptyKey) {
      if (!sentinel_used_) {
        sentinel_used_ = true;
        sentinel_value_ = V{};
        if (inserted != nullptr) *inserted = true;
      }
      return &sentinel_value_;
    }
    if (slots_.empty()) rehash(growth_.min_capacity);
    std::size_t i = home(key);
    while (slots_[i].key != kEmptyKey) {
      if (slots_[i].key == key) return &slots_[i].value;
      i = (i + 1) & mask_;
    }
    if ((size_ + 1) * 100 > slots_.size() * growth_.max_load_percent) {
      rehash(slots_.size() * 2);
      i = home(key);
      while (slots_[i].key != kEmptyKey) i = (i + 1) & mask_;
    }
    slots_[i].key = key;
    slots_[i].value = V{};
    ++size_;
    if (inserted != nullptr) *inserted = true;
    return &slots_[i].value;
  }

  // Inserts or overwrites; returns true when the key was new.
  bool insert(std::uint64_t key, const V& value) {
    bool added = false;
    *find_or_insert(key, &added) = value;
    return added;
  }

  // Removes the key with backward-shift deletion (no tombstones): every
  // displaced successor in the probe cluster moves one step toward its home
  // slot, preserving the linear-probe invariant. Returns false when absent.
  bool erase(std::uint64_t key) {
    if (key == kEmptyKey) {
      const bool had = sentinel_used_;
      sentinel_used_ = false;
      return had;
    }
    if (slots_.empty()) return false;
    std::size_t i = home(key);
    while (slots_[i].key != key) {
      if (slots_[i].key == kEmptyKey) return false;
      i = (i + 1) & mask_;
    }
    std::size_t j = i;
    while (true) {
      j = (j + 1) & mask_;
      const std::uint64_t moved = slots_[j].key;
      if (moved == kEmptyKey) break;
      const std::size_t h = home(moved);
      // Shift j back into the hole at i only if its home position lies at
      // or cyclically before i — otherwise the element is already as close
      // to home as the probe order allows.
      const bool movable = (j > i) ? (h <= i || h > j) : (h <= i && h > j);
      if (movable) {
        slots_[i] = slots_[j];
        i = j;
      }
    }
    slots_[i].key = kEmptyKey;
    --size_;
    return true;
  }

  // Visits every (key, value) pair in unspecified order. Callers that need
  // determinism must sort what they collect (see
  // StackDistanceTracker::compact).
  template <typename F>
  void for_each(F&& f) const {
    if (sentinel_used_) f(kEmptyKey, sentinel_value_);
    for (const auto& s : slots_) {
      if (s.key != kEmptyKey) f(s.key, s.value);
    }
  }

  template <typename F>
  void for_each(F&& f) {
    if (sentinel_used_) f(kEmptyKey, sentinel_value_);
    for (auto& s : slots_) {
      if (s.key != kEmptyKey) f(s.key, s.value);
    }
  }

 private:
  struct Slot {
    std::uint64_t key = kEmptyKey;
    V value;
  };

  // Fibonacci hashing: multiply by 2^64/phi and keep the top bits. Spreads
  // the sequential page ids the simulator generates across the table far
  // better than masking the low bits would.
  std::size_t home(std::uint64_t key) const {
    return static_cast<std::size_t>((key * 0x9e3779b97f4a7c15ull) >> shift_);
  }

  void rehash(std::size_t new_capacity) {
    JPM_DCHECK((new_capacity & (new_capacity - 1)) == 0);
    std::vector<Slot> old = std::move(slots_);
    // Large tables are probed at random; huge pages keep those probes from
    // each adding a dTLB page walk to their cache miss. reserve() gets the
    // hint in before the fill below faults the pages at 4 KiB.
    slots_ = std::vector<Slot>();
    slots_.reserve(new_capacity);
    advise_hugepages(slots_.data(), new_capacity * sizeof(Slot));
    slots_.assign(new_capacity, Slot{});
    mask_ = new_capacity - 1;
    shift_ = 64;
    for (std::size_t c = new_capacity; c > 1; c >>= 1) --shift_;
    for (const auto& s : old) {
      if (s.key == kEmptyKey) continue;
      std::size_t i = home(s.key);
      while (slots_[i].key != kEmptyKey) i = (i + 1) & mask_;
      slots_[i] = s;
    }
  }

  FlatMapGrowth growth_;
  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  unsigned shift_ = 64;
  std::size_t size_ = 0;  // non-sentinel entries
  bool sentinel_used_ = false;
  V sentinel_value_{};
};

}  // namespace jpm::util
