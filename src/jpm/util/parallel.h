// Fork-join parallelism for the simulator's embarrassingly parallel loops
// (policy sweeps, per-server cluster pipelines, per-point trace synthesis).
//
// Two schedulers share one contract:
//
//   * kStatic — worker w executes indices w, w + W, w + 2W, … with no work
//     stealing. The task -> thread mapping is fixed; wall-clock suffers when
//     per-task costs are skewed (one stripe drags the join).
//   * kSteal — the default. Each worker starts with a contiguous slice of
//     [0, n) held in a per-worker atomic range (the chunk queue); the owner
//     pops indices from the front, and a worker whose slice runs dry steals
//     the back half of a victim's remaining range. Straggler-heavy mixes
//     (fault-injected runs, skewed sweep grids) rebalance automatically.
//
// Determinism never depends on which scheduler ran: every task writes only
// its own preallocated output slot and reductions happen in fixed index
// order after the join, so results are bit-identical at any JPM_THREADS and
// either JPM_SCHED. Only wall-clock differs.
//
// The body is a template parameter — no per-task std::function dispatch on
// the hot path. A thin std::function overload remains for call sites that
// need type erasure.
//
// Knobs (environment):
//   JPM_THREADS  worker count; 1 = the exact serial legacy path, run inline
//                on the caller; unset = std::thread::hardware_concurrency().
//   JPM_SCHED    "steal" (default) or "static" — the escape hatch back to
//                fixed striping.
//
// Nested parallelism: a parallel_for issued from inside a pool task runs
// inline on that worker (serial). This keeps e.g. a cluster-sweep outer loop
// from multiplying its workers by every inner per-server fan-out, and keeps
// the inner loop's slot-writing determinism trivially intact.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "jpm/util/check.h"

namespace jpm::util {

// Worker count for the parallel_for overloads that do not take one:
// JPM_THREADS when set to a positive integer, else hardware concurrency
// (falling back to 1 when that is unknown).
unsigned default_thread_count();

enum class SchedMode { kStatic, kSteal };

// JPM_SCHED when set to a known name ("static", "steal"), else kSteal.
SchedMode default_sched_mode();

namespace detail {

// Set while the current thread is executing tasks inside a TaskPool region;
// nested parallel_for calls observe it and run inline.
extern thread_local bool tl_in_parallel_region;

// Shared error slot: the first exception (in worker-observation order) wins;
// once `failed` is set, workers stop starting new tasks.
struct ErrorSlot {
  std::atomic<bool> failed{false};
  std::exception_ptr first;
  std::mutex mu;

  template <typename Fn>
  bool run_guarded(Fn&& fn) {
    try {
      fn();
      return true;
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mu);
      if (!first) first = std::current_exception();
      failed.store(true, std::memory_order_relaxed);
      return false;
    }
  }
};

// One worker's chunk queue: a half-open index range packed into a single
// atomic word (begin in the high 32 bits, end in the low 32). The owner
// pops from the front, thieves carve off the back half; both go through a
// CAS on the same word, so every index is claimed exactly once. Ranges only
// ever shrink, which rules out ABA.
struct alignas(64) WorkerRange {
  std::atomic<std::uint64_t> range{0};

  static constexpr std::uint64_t pack(std::uint32_t begin, std::uint32_t end) {
    return (static_cast<std::uint64_t>(begin) << 32) | end;
  }
  static constexpr std::uint32_t begin_of(std::uint64_t r) {
    return static_cast<std::uint32_t>(r >> 32);
  }
  static constexpr std::uint32_t end_of(std::uint64_t r) {
    return static_cast<std::uint32_t>(r);
  }

  // Claims the front index of the local range; false when empty.
  bool pop_front(std::uint32_t* out) {
    std::uint64_t r = range.load(std::memory_order_acquire);
    while (begin_of(r) < end_of(r)) {
      const std::uint64_t next = pack(begin_of(r) + 1, end_of(r));
      if (range.compare_exchange_weak(r, next, std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        *out = begin_of(r);
        return true;
      }
    }
    return false;
  }

  // Steals the back half of the victim's remaining range; false when there
  // is nothing (or only the index the owner is about to take) to steal.
  bool steal_back(std::uint32_t* steal_begin, std::uint32_t* steal_end) {
    std::uint64_t r = range.load(std::memory_order_acquire);
    for (;;) {
      const std::uint32_t b = begin_of(r), e = end_of(r);
      if (e - b < 2) return false;  // leave the owner its current index
      const std::uint32_t mid = b + (e - b + 1) / 2;
      if (range.compare_exchange_weak(r, pack(b, mid),
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        *steal_begin = mid;
        *steal_end = e;
        return true;
      }
    }
  }
};

}  // namespace detail

// The fork-join execution engine behind parallel_for. One run() call is one
// region: workers are spawned, execute body(i) for every i in [0, n)
// exactly once, and join before run() returns. Exposed (rather than hidden
// in parallel_for) so the scheduler itself is unit-testable with an explicit
// worker count and mode.
class TaskPool {
 public:
  // Blocks until every task finished. If tasks throw, the first exception
  // (in worker-observation order) is rethrown on the caller after all
  // workers have stopped; tasks not yet started are skipped. With
  // workers <= 1, n <= 1, or from inside another pool region, the loop runs
  // inline on the calling thread (the serial path).
  template <typename Body>
  static void run(std::size_t n, unsigned workers, SchedMode mode,
                  Body&& body) {
    if (n == 0) return;
    const std::size_t spread = std::min<std::size_t>(
        workers == 0 ? 1 : workers, n);
    if (spread <= 1 || detail::tl_in_parallel_region) {
      run_inline(n, body);
      return;
    }
    if (mode == SchedMode::kSteal) {
      run_steal(n, static_cast<unsigned>(spread), body);
    } else {
      run_static(n, static_cast<unsigned>(spread), body);
    }
  }

 private:
  template <typename Body>
  static void run_inline(std::size_t n, Body& body) {
    for (std::size_t i = 0; i < n; ++i) body(i);
  }

  // The legacy fixed-stripe schedule (JPM_SCHED=static).
  template <typename Body>
  static void run_static(std::size_t n, unsigned workers, Body& body) {
    detail::ErrorSlot errors;
    const auto run_stripe = [&](std::size_t w) {
      detail::tl_in_parallel_region = true;
      for (std::size_t i = w; i < n; i += workers) {
        if (errors.failed.load(std::memory_order_relaxed)) break;
        if (!errors.run_guarded([&] { body(i); })) break;
      }
      detail::tl_in_parallel_region = false;
    };
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (unsigned w = 1; w < workers; ++w) pool.emplace_back(run_stripe, w);
    run_stripe(0);  // the caller is worker 0
    for (auto& t : pool) t.join();
    if (errors.first) std::rethrow_exception(errors.first);
  }

  // The chunk-queue/work-stealing schedule (JPM_SCHED=steal, the default).
  template <typename Body>
  static void run_steal(std::size_t n, unsigned workers, Body& body) {
    JPM_CHECK_MSG(n <= 0xffffffffull,
                  "parallel_for supports at most 2^32 - 1 tasks");
    const auto n32 = static_cast<std::uint32_t>(n);

    // Initial even split of [0, n) into per-worker contiguous slices.
    std::vector<detail::WorkerRange> ranges(workers);
    for (unsigned w = 0; w < workers; ++w) {
      const auto b = static_cast<std::uint32_t>(
          (static_cast<std::uint64_t>(n32) * w) / workers);
      const auto e = static_cast<std::uint32_t>(
          (static_cast<std::uint64_t>(n32) * (w + 1)) / workers);
      ranges[w].range.store(detail::WorkerRange::pack(b, e),
                            std::memory_order_relaxed);
    }
    std::atomic<std::size_t> remaining{n};
    detail::ErrorSlot errors;

    const auto run_worker = [&](unsigned self) {
      detail::tl_in_parallel_region = true;
      const auto execute = [&](std::uint32_t i) {
        if (errors.run_guarded([&] { body(static_cast<std::size_t>(i)); })) {
          remaining.fetch_sub(1, std::memory_order_acq_rel);
        } else {
          // A failed region stops scheduling; the join below must not wait
          // for tasks nobody will run, so the failing task still counts.
          remaining.fetch_sub(1, std::memory_order_acq_rel);
        }
      };
      std::uint32_t i = 0;
      while (!errors.failed.load(std::memory_order_relaxed)) {
        // Drain the local queue first.
        if (ranges[self].pop_front(&i)) {
          execute(i);
          continue;
        }
        // Local queue dry: steal the back half of the fullest victim.
        unsigned victim = workers;
        std::uint32_t best = 1;  // require at least 2 remaining to steal
        for (unsigned step = 1; step < workers; ++step) {
          const unsigned v = (self + step) % workers;
          const std::uint64_t r =
              ranges[v].range.load(std::memory_order_acquire);
          const std::uint32_t len = detail::WorkerRange::end_of(r) -
                                    detail::WorkerRange::begin_of(r);
          if (len > best) {
            best = len;
            victim = v;
          }
        }
        std::uint32_t sb = 0, se = 0;
        if (victim < workers && ranges[victim].steal_back(&sb, &se)) {
          ranges[self].range.store(detail::WorkerRange::pack(sb, se),
                                   std::memory_order_release);
          continue;
        }
        // Nothing stealable. Tasks may still be in flight on other workers
        // (whose final splits could become stealable); yield until the
        // region drains rather than exiting early.
        if (remaining.load(std::memory_order_acquire) == 0) break;
        std::this_thread::yield();
      }
      detail::tl_in_parallel_region = false;
    };

    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (unsigned w = 1; w < workers; ++w) pool.emplace_back(run_worker, w);
    run_worker(0);  // the caller is worker 0
    for (auto& t : pool) t.join();
    if (errors.first) std::rethrow_exception(errors.first);
  }
};

// Runs body(i) for every i in [0, n) across `workers` threads under `mode`
// (see TaskPool::run for the contract).
template <typename Body>
void parallel_for(std::size_t n, unsigned workers, Body&& body) {
  TaskPool::run(n, workers, default_sched_mode(), std::forward<Body>(body));
}

// Same, with workers = default_thread_count().
template <typename Body>
void parallel_for(std::size_t n, Body&& body) {
  TaskPool::run(n, default_thread_count(), default_sched_mode(),
                std::forward<Body>(body));
}

// Type-erased compatibility shim (non-template call sites, e.g. across a
// stable ABI boundary). Prefer the template: it avoids one indirect call per
// task.
void parallel_for(std::size_t n, unsigned workers,
                  const std::function<void(std::size_t)>& body);
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

}  // namespace jpm::util
