// Fixed fork-join parallelism for embarrassingly parallel loops (policy
// sweeps, per-server cluster pipelines, per-point trace synthesis).
//
// Work is striped statically — worker w executes indices w, w + W, w + 2W, …
// with no work stealing — so the task -> thread mapping is deterministic and
// every task writes only its own preallocated output slot. Determinism of
// results therefore never depends on scheduling; only wall-clock does.
//
// The worker count comes from the JPM_THREADS environment variable when set
// (1 = the exact serial legacy path, run inline on the caller), otherwise
// from std::thread::hardware_concurrency().
#pragma once

#include <cstddef>
#include <functional>

namespace jpm::util {

// Worker count for the parallel_for overload that does not take one:
// JPM_THREADS when set to a positive integer, else hardware concurrency
// (falling back to 1 when that is unknown).
unsigned default_thread_count();

// Runs body(i) for every i in [0, n) across `workers` threads (statically
// striped, see above). With workers <= 1 or n <= 1 the loop runs inline on
// the calling thread. Blocks until every task finished. If tasks throw, the
// first exception (in worker-observation order) is rethrown on the caller
// after all workers have stopped; tasks not yet started are skipped.
void parallel_for(std::size_t n, unsigned workers,
                  const std::function<void(std::size_t)>& body);

// Same, with workers = default_thread_count().
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

}  // namespace jpm::util
