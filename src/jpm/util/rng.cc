#include "jpm/util/rng.h"

#include <cmath>

#include "jpm/util/check.h"

namespace jpm {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  std::uint64_t z = (x += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random bits → double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  JPM_DCHECK(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  JPM_DCHECK(n > 0);
  // Lemire-style rejection-free mapping is fine here: bias is < 2^-53 for the
  // trace sizes we draw.
  return static_cast<std::uint64_t>(uniform() * static_cast<double>(n)) % n;
}

double Rng::exponential(double mean) {
  JPM_DCHECK(mean > 0.0);
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * 3.14159265358979323846 * u2);
  return mean + stddev * z;
}

bool Rng::chance(double p) { return uniform() < p; }

Rng Rng::split() {
  Rng child(0);
  std::uint64_t x = next();
  for (auto& s : child.s_) s = splitmix64(x);
  return child;
}

}  // namespace jpm
