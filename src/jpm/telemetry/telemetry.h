// jpm::telemetry — deterministic structured tracing for the simulator.
//
// Design goals, in order:
//   1. Zero overhead when disabled. TELEM_EVENT compiles away entirely for
//      categories masked out at build time (JPM_TELEM_COMPILED_CATEGORIES),
//      and costs one relaxed atomic load + branch when compiled in but no
//      session is active.
//   2. Deterministic output. Events are buffered in a lock-free per-thread
//      ring and attributed to *streams* (one per simulation run), which are
//      registered in structural order — point-major, roster order — before
//      any parallel fan-out. The exported event order is (stream, emission
//      index), which depends only on the simulated work, never on
//      JPM_THREADS or scheduling. Simulated time, not wall clock, is the
//      event timestamp; wall clock exists only in the Chrome trace spans.
//   3. No locks on the hot path. A ring buffer is owned by exactly one
//      thread; flushing into the owning RunRecorder happens on that same
//      thread at scope boundaries. Only stream registration, orphan events,
//      and span capture take a mutex (all rare).
//
// Usage:
//   telemetry::start();                       // or bench --telemetry=<path>
//   auto* rec = telemetry::begin_run("16GB/Joint");
//   { telemetry::ScopedRun scope(rec);        // makes rec the thread's sink
//     TELEM_EVENT(kDisk, "spin_up", t, {"wait_s", 10.0});
//     rec->counter("flush_bursts").add();
//   }
//   telemetry::export_files("out/run");       // report/trace/periods files
//   telemetry::stop();
//
// The engine and sweep runner do all of this automatically when a session
// is active; instrument new code with TELEM_EVENT and current_run().
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <string>

// Compile-time category filter: a bitmask of Category values. Categories
// outside the mask compile to nothing — no load, no branch. Defaults to
// everything; override with -DJPM_TELEM_COMPILED_CATEGORIES=0x... (see the
// JPM_TELEM_CATEGORIES CMake cache variable).
#ifndef JPM_TELEM_COMPILED_CATEGORIES
#define JPM_TELEM_COMPILED_CATEGORIES 0xffffffffu
#endif

namespace jpm::telemetry {

enum class Category : std::uint32_t {
  kEngine = 1u << 0,   // simulation engine: periods, flushes, snapshots
  kCache = 1u << 1,    // cache layer
  kDisk = 1u << 2,     // disk front-end: spin-ups, shutdowns
  kManager = 1u << 3,  // joint power manager decisions and searches
  kCluster = 1u << 4,  // cluster routing, crashes, fail-over
  kFault = 1u << 5,    // fault injection outcomes
  kSweep = 1u << 6,    // sweep runner lifecycle
  kBench = 1u << 7,    // bench harness annotations
  kStream = 1u << 8,   // streaming daemon: overload, watchdog, shutdown
};

const char* category_name(Category c);
// Parses a comma-separated list of category names ("engine,disk,manager")
// into a mask; "all" or "" yields everything. Unknown names are ignored.
std::uint32_t category_mask_from_string(const std::string& spec);

// One key/value pair attached to an event; keys must be string literals
// (the tracer stores the pointer, not a copy).
struct EventArg {
  const char* key;
  double value;
};

inline constexpr int kMaxEventArgs = 6;

// A point event. `name` and arg keys must be string literals. `sim_time_s`
// is simulated time.
struct Event {
  const char* name = nullptr;
  Category category = Category::kEngine;
  double sim_time_s = 0.0;
  int arg_count = 0;
  EventArg args[kMaxEventArgs];
};

struct Options {
  // Runtime category mask; events outside it are skipped at the gate.
  std::uint32_t categories = 0xffffffffu;
  // Events retained per stream (ring capacity). The ring keeps the *last*
  // `ring_capacity` events of a stream and counts the dropped prefix, which
  // is deterministic per stream for a deterministic workload.
  std::size_t ring_capacity = 4096;
  // Capture wall-clock spans for the Chrome trace exporter.
  bool capture_spans = true;
};

class RunRecorder;  // registry.h

namespace detail {
// Runtime gate: 0 when no session is active, so the disabled fast path is a
// single relaxed load and branch.
extern std::atomic<std::uint32_t> g_runtime_mask;
}  // namespace detail

inline bool category_enabled(Category c) {
  return (detail::g_runtime_mask.load(std::memory_order_relaxed) &
          static_cast<std::uint32_t>(c)) != 0;
}
inline bool enabled() {
  return detail::g_runtime_mask.load(std::memory_order_relaxed) != 0;
}

// ---- provenance -------------------------------------------------------------
// The resolved scenario this process is running (serialized by jpm::spec)
// plus its content hash (16 hex digits, FNV-1a 64 of the serialization).
// Stored independently of the session lifecycle — harnesses publish whenever
// the scenario is loaded, before or after start() — and embedded by
// report_json() as "scenario" / "scenario_hash" so any report can be re-run
// from its own spec. `resolved_json` must be a JSON object document.
void set_scenario(const std::string& resolved_json,
                  const std::string& hash_hex);
void clear_scenario();
// Empty strings when no scenario has been published.
std::string scenario_json();
std::string scenario_hash_hex();

// File-backed trace provenance: every distinct JPMC trace file the run
// replays (registered by sim::run_sweep when it maps the file), as the path
// plus the file's content hash (16 hex digits, FNV-1a 64 of the logical
// event stream — see jpm/tracefile/format.h). Embedded by report_json() as
// "trace_path" / "trace_hash"; runs over several files join the entries with
// ";" in sweep-point order. Re-registering a path updates its hash.
void add_trace(const std::string& path, const std::string& hash_hex);
void clear_traces();
// ";"-joined registered paths/hashes; empty strings when none.
std::string trace_paths();
std::string trace_hashes();

// Starts the global session. Restarting an active session is an error
// (JPM_CHECK); stop() first. Thread-compatible: call with no concurrent
// emitters.
void start(const Options& options = {});
// Tears the session down and discards unexported data. Any emitter still
// running concurrently is a data race — join your workers first.
void stop();
bool session_active();
const Options& session_options();  // JPM_CHECK(session_active())

// Registers a new stream + recorder (in call order — register streams
// before fanning work out so the order is structural, not scheduled).
// Returns nullptr when no session is active. The recorder stays owned by
// the session and is valid until stop().
RunRecorder* begin_run(std::string name);

// The recorder events on this thread currently flow into (nullptr when the
// thread is outside every ScopedRun or telemetry is off).
RunRecorder* current_run();

// Binds a recorder to the current thread for the scope's lifetime. Nesting
// is allowed (the previous binding is restored); the ring is flushed into
// the outgoing recorder at every transition, preserving per-stream order.
class ScopedRun {
 public:
  explicit ScopedRun(RunRecorder* run);
  ~ScopedRun();
  ScopedRun(const ScopedRun&) = delete;
  ScopedRun& operator=(const ScopedRun&) = delete;

 private:
  RunRecorder* prev_;
};

// Emits one event (the macro's backend; callable directly when the category
// is only known at runtime). Events emitted outside any ScopedRun land in
// the session-level "orphan" list (mutex-protected; fine for setup/teardown
// annotations, not for hot loops).
void emit(Category c, const char* name, double sim_time_s,
          std::initializer_list<EventArg> args);

// Wall-clock span for the Chrome trace exporter (runner tasks, synthesis,
// cluster servers). Records on destruction; no-op when the session is gone
// or spans are disabled. Never part of the deterministic report.
class SpanTimer {
 public:
  SpanTimer(std::string name, std::string arg_label = {});
  ~SpanTimer();
  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

 private:
  std::string name_;
  std::string label_;
  std::uint64_t start_ns_ = 0;
  std::uint64_t epoch_ = 0;
  bool armed_ = false;
};

}  // namespace jpm::telemetry

// Structured trace event with compile-time category filtering.
//   TELEM_EVENT(kDisk, "spin_up", t, {"wait_s", w}, {"spindle", 0.0});
// `cat` is a bare Category enumerator name; `name` and arg keys must be
// string literals; arg values convert to double. Up to kMaxEventArgs args.
#define TELEM_EVENT(cat, name, sim_time_s, ...)                               \
  do {                                                                        \
    if constexpr ((static_cast<std::uint32_t>(                                \
                       ::jpm::telemetry::Category::cat) &                     \
                   (JPM_TELEM_COMPILED_CATEGORIES)) != 0u) {                  \
      if (::jpm::telemetry::category_enabled(                                 \
              ::jpm::telemetry::Category::cat)) {                             \
        ::jpm::telemetry::emit(::jpm::telemetry::Category::cat, (name),       \
                               (sim_time_s), {__VA_ARGS__});                  \
      }                                                                       \
    }                                                                         \
  } while (0)
