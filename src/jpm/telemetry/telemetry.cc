#include "jpm/telemetry/telemetry.h"

#include <chrono>
#include <memory>
#include <mutex>
#include <vector>

#include "jpm/telemetry/internal.h"
#include "jpm/telemetry/registry.h"
#include "jpm/util/check.h"

namespace jpm::telemetry {

namespace detail {
std::atomic<std::uint32_t> g_runtime_mask{0};
}  // namespace detail

const char* category_name(Category c) {
  switch (c) {
    case Category::kEngine: return "engine";
    case Category::kCache: return "cache";
    case Category::kDisk: return "disk";
    case Category::kManager: return "manager";
    case Category::kCluster: return "cluster";
    case Category::kFault: return "fault";
    case Category::kSweep: return "sweep";
    case Category::kBench: return "bench";
    case Category::kStream: return "stream";
  }
  return "?";
}

std::uint32_t category_mask_from_string(const std::string& spec) {
  if (spec.empty() || spec == "all") return 0xffffffffu;
  static constexpr Category kAll[] = {
      Category::kEngine, Category::kCache,   Category::kDisk,
      Category::kManager, Category::kCluster, Category::kFault,
      Category::kSweep,  Category::kBench,   Category::kStream};
  std::uint32_t mask = 0;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string token =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    for (Category c : kAll) {
      if (token == category_name(c)) mask |= static_cast<std::uint32_t>(c);
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return mask;
}

// ---- session --------------------------------------------------------------

namespace {

// The session pointer and a monotonically increasing epoch. Thread-local
// state stamps the epoch it was initialized under, so stale per-thread
// buffers from a previous session are discarded instead of flushed into
// the wrong recorder.
SessionState* g_session = nullptr;
std::atomic<std::uint64_t> g_epoch{0};
std::mutex g_lifecycle_mu;

struct ThreadState {
  std::uint64_t epoch = 0;
  std::uint32_t tid = 0;
  RunRecorder* run = nullptr;
  // Ring buffer: `ring` has session ring_capacity slots once first used;
  // `head` is the next write slot, `size` the live count, `dropped` the
  // overwritten-prefix length since the last flush.
  std::vector<Event> ring;
  std::size_t head = 0;
  std::size_t size = 0;
  std::uint64_t dropped = 0;

  void reset_ring() {
    head = 0;
    size = 0;
    dropped = 0;
  }
};

thread_local ThreadState t_state;

// Returns the calling thread's state synced to the active session (or
// nullptr when no session). Assigns the thread a stable small integer id
// for the Chrome trace.
ThreadState* state_for(SessionState* s) {
  ThreadState& ts = t_state;
  if (ts.epoch != s->epoch) {
    ts.epoch = s->epoch;
    ts.run = nullptr;
    ts.reset_ring();
    if (ts.ring.size() != s->options.ring_capacity) {
      ts.ring.assign(s->options.ring_capacity, Event{});
    }
    const std::lock_guard<std::mutex> lock(s->mu);
    ts.tid = s->next_tid++;
  }
  return &ts;
}

// Moves the ring's retained events (oldest first) into the thread's bound
// recorder, or the session orphan list when unbound. Runs on the owning
// thread only.
void flush_ring(SessionState* s, ThreadState* ts) {
  if (ts->size == 0 && ts->dropped == 0) return;
  const std::size_t cap = ts->ring.size();
  const std::size_t first = (ts->head + cap - ts->size) % cap;
  // Unwrap into a contiguous scratch; rings are small (default 4096).
  static thread_local std::vector<Event> scratch;
  scratch.clear();
  scratch.reserve(ts->size);
  for (std::size_t i = 0; i < ts->size; ++i) {
    scratch.push_back(ts->ring[(first + i) % cap]);
  }
  if (ts->run != nullptr) {
    ts->run->append_events(scratch.data(), scratch.size(), ts->dropped);
  } else {
    const std::lock_guard<std::mutex> lock(s->mu);
    s->orphans.insert(s->orphans.end(), scratch.begin(), scratch.end());
  }
  ts->reset_ring();
}

std::uint64_t now_ns(SessionState* s) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - s->t0)
          .count());
}

}  // namespace

namespace {
// Provenance lives outside SessionState: the scenario is a property of the
// process invocation, not of one telemetry session, and must survive
// start()/stop() cycles so an atexit export still sees it.
std::mutex g_scenario_mu;
std::string g_scenario_json;
std::string g_scenario_hash;
// Registered (path, content-hash) pairs of the file-backed traces the
// process has replayed, in registration order.
std::vector<std::pair<std::string, std::string>> g_traces;
}  // namespace

void set_scenario(const std::string& resolved_json,
                  const std::string& hash_hex) {
  const std::lock_guard<std::mutex> lock(g_scenario_mu);
  g_scenario_json = resolved_json;
  g_scenario_hash = hash_hex;
}

void clear_scenario() {
  const std::lock_guard<std::mutex> lock(g_scenario_mu);
  g_scenario_json.clear();
  g_scenario_hash.clear();
}

std::string scenario_json() {
  const std::lock_guard<std::mutex> lock(g_scenario_mu);
  return g_scenario_json;
}

std::string scenario_hash_hex() {
  const std::lock_guard<std::mutex> lock(g_scenario_mu);
  return g_scenario_hash;
}

void add_trace(const std::string& path, const std::string& hash_hex) {
  const std::lock_guard<std::mutex> lock(g_scenario_mu);
  for (auto& [p, h] : g_traces) {
    if (p == path) {
      h = hash_hex;
      return;
    }
  }
  g_traces.emplace_back(path, hash_hex);
}

void clear_traces() {
  const std::lock_guard<std::mutex> lock(g_scenario_mu);
  g_traces.clear();
}

namespace {
std::string join_traces(bool hashes) {
  const std::lock_guard<std::mutex> lock(g_scenario_mu);
  std::string out;
  for (const auto& [p, h] : g_traces) {
    if (!out.empty()) out += ';';
    out += hashes ? h : p;
  }
  return out;
}
}  // namespace

std::string trace_paths() { return join_traces(false); }
std::string trace_hashes() { return join_traces(true); }

void start(const Options& options) {
  const std::lock_guard<std::mutex> lock(g_lifecycle_mu);
  JPM_CHECK_MSG(g_session == nullptr,
                "telemetry session already active; stop() it first");
  auto* s = new SessionState();
  s->options = options;
  s->options.ring_capacity =
      options.ring_capacity == 0 ? 1 : options.ring_capacity;
  s->epoch = g_epoch.fetch_add(1, std::memory_order_relaxed) + 1;
  s->t0 = std::chrono::steady_clock::now();
  g_session = s;
  detail::g_runtime_mask.store(options.categories, std::memory_order_release);
}

void stop() {
  const std::lock_guard<std::mutex> lock(g_lifecycle_mu);
  detail::g_runtime_mask.store(0, std::memory_order_release);
  delete g_session;
  g_session = nullptr;
}

bool session_active() { return g_session != nullptr; }

const Options& session_options() {
  JPM_CHECK_MSG(g_session != nullptr, "no telemetry session");
  return g_session->options;
}

SessionState* session_state_for_export() { return g_session; }  // export.cc

RunRecorder* begin_run(std::string name) {
  SessionState* s = g_session;
  if (s == nullptr) return nullptr;
  const std::lock_guard<std::mutex> lock(s->mu);
  const auto stream = static_cast<std::uint32_t>(s->runs.size());
  s->runs.push_back(std::make_unique<RunRecorder>(std::move(name), stream));
  return s->runs.back().get();
}

RunRecorder* current_run() {
  SessionState* s = g_session;
  if (s == nullptr) return nullptr;
  ThreadState* ts = state_for(s);
  return ts->run;
}

ScopedRun::ScopedRun(RunRecorder* run) : prev_(nullptr) {
  SessionState* s = g_session;
  if (s == nullptr) return;
  ThreadState* ts = state_for(s);
  flush_ring(s, ts);
  prev_ = ts->run;
  ts->run = run;
}

ScopedRun::~ScopedRun() {
  SessionState* s = g_session;
  if (s == nullptr) return;
  ThreadState* ts = state_for(s);
  flush_ring(s, ts);
  ts->run = prev_;
}

void emit(Category c, const char* name, double sim_time_s,
          std::initializer_list<EventArg> args) {
  SessionState* s = g_session;
  if (s == nullptr) return;
  if ((s->options.categories & static_cast<std::uint32_t>(c)) == 0) return;
  ThreadState* ts = state_for(s);

  Event e;
  e.name = name;
  e.category = c;
  e.sim_time_s = sim_time_s;
  e.arg_count = 0;
  for (const EventArg& a : args) {
    if (e.arg_count == kMaxEventArgs) break;
    e.args[e.arg_count++] = a;
  }

  if (ts->run == nullptr) {
    // Outside any run: setup/teardown annotations. Rare — a mutex is fine.
    const std::lock_guard<std::mutex> lock(s->mu);
    s->orphans.push_back(e);
    return;
  }
  const std::size_t cap = ts->ring.size();
  ts->ring[ts->head] = e;
  ts->head = (ts->head + 1) % cap;
  if (ts->size < cap) {
    ++ts->size;
  } else {
    ++ts->dropped;  // overwrote the oldest retained event
  }
}

SpanTimer::SpanTimer(std::string name, std::string arg_label)
    : name_(std::move(name)), label_(std::move(arg_label)) {
  SessionState* s = g_session;
  if (s == nullptr || !s->options.capture_spans) return;
  epoch_ = s->epoch;
  start_ns_ = now_ns(s);
  armed_ = true;
}

SpanTimer::~SpanTimer() {
  if (!armed_) return;
  SessionState* s = g_session;
  if (s == nullptr || s->epoch != epoch_) return;  // session changed
  ThreadState* ts = state_for(s);
  Span span;
  span.name = std::move(name_);
  span.label = std::move(label_);
  span.tid = ts->tid;
  span.start_ns = start_ns_;
  const std::uint64_t end = now_ns(s);
  span.duration_ns = end > start_ns_ ? end - start_ns_ : 0;
  const std::lock_guard<std::mutex> lock(s->mu);
  s->spans.push_back(std::move(span));
}

}  // namespace jpm::telemetry
