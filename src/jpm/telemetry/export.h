// Exporters for the active telemetry session.
//
// Three artifacts, one audience each:
//   * report_json()  — the machine-readable run report: per-run counters,
//     gauges, fixed-bucket histograms (with p50/p95/p99), numeric tables
//     (period timeline, manager decisions), and the retained event stream.
//     Deterministic: contains only simulated time and structural order, so
//     it is byte-identical across JPM_THREADS settings.
//   * trace_json()   — Chrome trace_event format ("chrome://tracing" /
//     https://ui.perfetto.dev): wall-clock spans of the sweep runner's
//     per-policy tasks, trace synthesis, and cluster server pipelines.
//     Wall clock is inherently nondeterministic; never diff this file.
//   * periods_csv()  — the per-period timeline of every run that recorded
//     a "periods" table, one flat CSV for spreadsheets/pandas.
//
// All exporters snapshot under the session mutex but must not race active
// emitters (join parallel work first — the bench harness and the runner
// already order things this way).
#pragma once

#include <string>

namespace jpm::telemetry {

std::string report_json();  // "{}" (empty report) when no session is active
std::string trace_json();
std::string periods_csv();

// Writes <base>.report.json, <base>.trace.json, and <base>.periods.csv.
// Returns false (with `error` filled when non-null) on I/O failure or when
// no session is active.
bool export_files(const std::string& base_path, std::string* error = nullptr);

}  // namespace jpm::telemetry
