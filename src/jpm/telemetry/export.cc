#include "jpm/telemetry/export.h"

#include <cmath>
#include <fstream>
#include <mutex>

#include "jpm/telemetry/internal.h"
#include "jpm/util/check.h"
#include "jpm/util/json.h"

namespace jpm::telemetry {
namespace {

using util::json::Array;
using util::json::Object;
using util::json::Value;

// Report values must serialize deterministically and JSON has no Inf/NaN;
// non-finite simulated quantities (a "never" timeout is +inf) become
// strings. Schema: {"type": ["number", "string"]}.
Value num(double d) {
  if (std::isfinite(d)) return Value{d};
  if (std::isnan(d)) return Value{"nan"};
  return Value{d > 0 ? "inf" : "-inf"};
}

Value event_to_json(const Event& e, std::size_t seq) {
  Object o;
  o["seq"] = Value{static_cast<std::uint64_t>(seq)};
  o["category"] = Value{category_name(e.category)};
  o["name"] = Value{e.name};
  o["t_s"] = num(e.sim_time_s);
  Object args;
  for (int i = 0; i < e.arg_count; ++i) {
    args[e.args[i].key] = num(e.args[i].value);
  }
  o["args"] = Value{std::move(args)};
  return Value{std::move(o)};
}

Value histogram_to_json(const BucketHistogram& h) {
  Object o;
  Array bounds, counts;
  for (std::size_t i = 0; i < h.bucket_count(); ++i) {
    bounds.push_back(num(h.upper_bound(i)));
    counts.push_back(Value{h.count_in_bucket(i)});
  }
  o["upper_bounds"] = Value{std::move(bounds)};
  o["counts"] = Value{std::move(counts)};
  o["overflow"] = Value{h.overflow_count()};
  o["count"] = Value{h.count()};
  o["sum"] = num(h.sum());
  o["min"] = num(h.min());
  o["max"] = num(h.max());
  o["mean"] = num(h.mean());
  o["p50"] = num(h.p50());
  o["p95"] = num(h.p95());
  o["p99"] = num(h.p99());
  return Value{std::move(o)};
}

Value run_to_json(const RunRecorder& run) {
  Object o;
  o["name"] = Value{run.name()};
  o["stream"] = Value{static_cast<std::uint64_t>(run.stream())};

  Object counters;
  for (const auto& [name, c] : run.counters()) {
    counters[name] = Value{c.value};
  }
  o["counters"] = Value{std::move(counters)};

  Object gauges;
  for (const auto& [name, g] : run.gauges()) {
    Object gv;
    gv["last"] = num(g.value);
    gv["min"] = num(g.min);
    gv["max"] = num(g.max);
    gv["samples"] = Value{g.samples};
    gauges[name] = Value{std::move(gv)};
  }
  o["gauges"] = Value{std::move(gauges)};

  Object histograms;
  for (const auto& [name, h] : run.histograms()) {
    histograms[name] = histogram_to_json(h);
  }
  o["histograms"] = Value{std::move(histograms)};

  Object tables;
  for (const auto& [name, t] : run.tables()) {
    Object tv;
    Array columns;
    for (const auto& c : t.columns()) columns.push_back(Value{c});
    tv["columns"] = Value{std::move(columns)};
    Array rows;
    for (const auto& r : t.rows()) {
      Array row;
      for (double d : r) row.push_back(num(d));
      rows.push_back(Value{std::move(row)});
    }
    tv["rows"] = Value{std::move(rows)};
    tables[name] = Value{std::move(tv)};
  }
  o["tables"] = Value{std::move(tables)};

  Array events;
  for (std::size_t i = 0; i < run.events().size(); ++i) {
    events.push_back(event_to_json(run.events()[i], i));
  }
  o["events"] = Value{std::move(events)};
  o["dropped_events"] = Value{run.dropped_events()};
  return Value{std::move(o)};
}

}  // namespace

std::string report_json() {
  SessionState* s = session_state_for_export();
  if (s == nullptr) return "{}";
  const std::lock_guard<std::mutex> lock(s->mu);

  Object root;
  root["version"] = Value{1};
  root["generator"] = Value{"jpm-telemetry"};
  root["categories"] = Value{static_cast<std::uint64_t>(s->options.categories)};
  root["ring_capacity"] =
      Value{static_cast<std::uint64_t>(s->options.ring_capacity)};

  // Provenance: when a resolved scenario has been published (jpm::spec /
  // the bench harnesses), embed it plus its content hash so the report can
  // be re-run from its own spec.
  const std::string scenario = scenario_json();
  if (!scenario.empty()) {
    Value sv;
    std::string parse_error;
    JPM_CHECK_MSG(util::json::parse(scenario, &sv, &parse_error),
                  "published scenario provenance is not valid JSON");
    root["scenario"] = std::move(sv);
    root["scenario_hash"] = Value{scenario_hash_hex()};
  }
  // File-backed runs: the replayed JPMC trace file(s) and their content
  // hashes (";"-joined in sweep-point order when there are several).
  const std::string traces = trace_paths();
  if (!traces.empty()) {
    root["trace_path"] = Value{traces};
    root["trace_hash"] = Value{trace_hashes()};
  }

  Array runs;
  for (const auto& run : s->runs) {
    runs.push_back(run_to_json(*run));
  }
  root["runs"] = Value{std::move(runs)};

  Array orphans;
  for (std::size_t i = 0; i < s->orphans.size(); ++i) {
    orphans.push_back(event_to_json(s->orphans[i], i));
  }
  root["orphan_events"] = Value{std::move(orphans)};

  return util::json::dump(Value{std::move(root)}, 2) + "\n";
}

std::string trace_json() {
  SessionState* s = session_state_for_export();
  if (s == nullptr) return "{}";
  const std::lock_guard<std::mutex> lock(s->mu);

  Array events;
  for (const Span& span : s->spans) {
    Object e;
    e["name"] = Value{span.name};
    e["cat"] = Value{"jpm"};
    e["ph"] = Value{"X"};
    e["ts"] = Value{static_cast<double>(span.start_ns) / 1e3};   // micros
    e["dur"] = Value{static_cast<double>(span.duration_ns) / 1e3};
    e["pid"] = Value{1};
    e["tid"] = Value{static_cast<std::uint64_t>(span.tid)};
    if (!span.label.empty()) {
      Object args;
      args["label"] = Value{span.label};
      e["args"] = Value{std::move(args)};
    }
    events.push_back(Value{std::move(e)});
  }
  Object root;
  root["traceEvents"] = Value{std::move(events)};
  root["displayTimeUnit"] = Value{"ms"};
  return util::json::dump(Value{std::move(root)}, -1) + "\n";
}

std::string periods_csv() {
  SessionState* s = session_state_for_export();
  if (s == nullptr) return "";
  const std::lock_guard<std::mutex> lock(s->mu);

  std::string out;
  std::vector<std::string> header;  // columns the current header line covers
  const auto quote = [](const std::string& v) {
    if (v.find_first_of(",\"\n") == std::string::npos) return v;
    std::string q = "\"";
    for (char c : v) {
      if (c == '"') q += "\"\"";
      else q.push_back(c);
    }
    q.push_back('"');
    return q;
  };
  for (const auto& run : s->runs) {
    const auto it = run->tables().find("periods");
    if (it == run->tables().end()) continue;
    const TableRecorder& t = it->second;
    if (t.columns() != header) {
      header = t.columns();
      out += "run";
      for (const auto& c : header) out += "," + quote(c);
      out += "\n";
    }
    for (const auto& row : t.rows()) {
      out += quote(run->name());
      for (double d : row) {
        out += ",";
        out += std::isfinite(d) ? util::json::format_number(d)
                                : (std::isnan(d) ? "nan" : "inf");
      }
      out += "\n";
    }
  }
  return out;
}

bool export_files(const std::string& base_path, std::string* error) {
  if (session_state_for_export() == nullptr) {
    if (error) *error = "no active telemetry session";
    return false;
  }
  const auto write = [&](const std::string& path,
                         const std::string& content) {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f) {
      if (error) *error = "cannot open " + path;
      return false;
    }
    f << content;
    f.close();
    if (!f) {
      if (error) *error = "write failed for " + path;
      return false;
    }
    return true;
  };
  return write(base_path + ".report.json", report_json()) &&
         write(base_path + ".trace.json", trace_json()) &&
         write(base_path + ".periods.csv", periods_csv());
}

}  // namespace jpm::telemetry
