// Reusable metric registries attached to one telemetry stream (one
// simulation run): counters, gauges, fixed-bucket histograms, and numeric
// tables (the per-period timeline, the manager's decision log).
//
// A RunRecorder is single-writer: exactly one thread may mutate it at a
// time (the thread holding the ScopedRun). All containers are ordered maps
// keyed by name, so export order is alphabetical and deterministic
// regardless of creation order.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "jpm/telemetry/telemetry.h"
#include "jpm/util/stats.h"

namespace jpm::telemetry {

struct Counter {
  std::uint64_t value = 0;
  void add(std::uint64_t n = 1) { value += n; }
};

// Last-write-wins sample with running min/max (queue depth, memory size...).
struct Gauge {
  double value = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::uint64_t samples = 0;
  void set(double v) {
    if (samples == 0) {
      min = max = v;
    } else {
      if (v < min) min = v;
      if (v > max) max = v;
    }
    value = v;
    ++samples;
  }
};

// Fixed-column numeric table; rows append in simulation order.
class TableRecorder {
 public:
  explicit TableRecorder(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  void add_row(std::initializer_list<double> row) {
    rows_.emplace_back(row);
  }
  void add_row(std::vector<double> row) { rows_.push_back(std::move(row)); }

  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<std::vector<double>>& rows() const { return rows_; }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<double>> rows_;
};

// Shared bucket layouts so the same quantity uses the same histogram shape
// in every subsystem (and across threads — the layouts are closed-form).
namespace buckets {
// 1 ms .. 10 ks, 4 per decade: idle intervals and period-scale durations.
std::vector<double> idle_seconds();
// 0.1 ms .. 100 s, 4 per decade: request latency, queue backlog.
std::vector<double> latency_seconds();
// 0 .. 60 s linear-ish spin-up wait (retry storms land in overflow).
std::vector<double> spinup_seconds();
}  // namespace buckets

class RunRecorder {
 public:
  RunRecorder(std::string name, std::uint32_t stream)
      : name_(std::move(name)), stream_(stream) {}

  const std::string& name() const { return name_; }
  std::uint32_t stream() const { return stream_; }

  // All accessors get-or-create; pointers remain stable for the recorder's
  // lifetime (node-based maps), so hot paths can cache them.
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  BucketHistogram& histogram(const std::string& name,
                                   const std::vector<double>& bounds) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      it = histograms_.emplace(name, BucketHistogram(bounds)).first;
    }
    return it->second;
  }
  TableRecorder& table(const std::string& name,
                       std::vector<std::string> columns) {
    auto it = tables_.find(name);
    if (it == tables_.end()) {
      it = tables_.emplace(name, TableRecorder(std::move(columns))).first;
    }
    return it->second;
  }

  // Export access (deterministic: alphabetical by name).
  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, BucketHistogram>& histograms() const {
    return histograms_;
  }
  const std::map<std::string, TableRecorder>& tables() const {
    return tables_;
  }
  const std::vector<Event>& events() const { return events_; }
  std::uint64_t dropped_events() const { return dropped_events_; }

  // Ring-flush sink (telemetry.cc); callable directly for tests.
  void append_events(const Event* events, std::size_t n,
                     std::uint64_t dropped) {
    events_.insert(events_.end(), events, events + n);
    dropped_events_ += dropped;
  }

 private:
  std::string name_;
  std::uint32_t stream_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, BucketHistogram> histograms_;
  std::map<std::string, TableRecorder> tables_;
  std::vector<Event> events_;
  std::uint64_t dropped_events_ = 0;
};

}  // namespace jpm::telemetry
