#include "jpm/telemetry/registry.h"

namespace jpm::telemetry::buckets {

std::vector<double> idle_seconds() {
  return log_bucket_bounds(1e-3, 1e4, 4);
}

std::vector<double> latency_seconds() {
  return log_bucket_bounds(1e-4, 1e2, 4);
}

std::vector<double> spinup_seconds() {
  // Spin-up waits cluster around t_tr (10 s); fault-injected retry storms
  // stretch past 60 s into the overflow bucket.
  return {0.5, 1.0, 2.0, 4.0, 8.0, 10.0, 12.0, 16.0, 24.0, 32.0, 48.0, 60.0};
}

}  // namespace jpm::telemetry::buckets
