// Shared internals between the telemetry session (telemetry.cc) and the
// exporters (export.cc). Not part of the public surface — include
// telemetry.h / registry.h / export.h instead.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "jpm/telemetry/registry.h"

namespace jpm::telemetry {

// Wall-clock span for the Chrome trace exporter.
struct Span {
  std::string name;
  std::string label;
  std::uint32_t tid = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
};

struct SessionState {
  Options options;
  std::uint64_t epoch = 0;
  std::chrono::steady_clock::time_point t0;

  std::mutex mu;
  std::vector<std::unique_ptr<RunRecorder>> runs;  // registration order
  std::vector<Event> orphans;                      // events outside any run
  std::vector<Span> spans;
  std::uint32_t next_tid = 0;
};

// The active session, or nullptr. Exporters must only be called when no
// emitter is running concurrently (after parallel fan-outs joined).
SessionState* session_state_for_export();

}  // namespace jpm::telemetry
