// Disk idle-interval prediction across candidate memory sizes (paper
// Section IV-B, Fig. 4).
//
// Given one period's accesses annotated with LRU stack depths, the accesses
// that remain disk accesses at candidate size m are exactly those with depth
// beyond m (plus cold misses). Growing m removes accesses and merges the
// idle gaps around them. The sweep processes candidate sizes in ascending
// order over a doubly-linked list of events: every event is removed exactly
// once, so the whole sweep costs O(events + candidates) while maintaining the
// count and total length of idle intervals at least as long as the
// aggregation window w (intervals shorter than w "provide no opportunity for
// saving energy" and are ignored, per the paper).
#pragma once

#include <cstdint>
#include <vector>

#include "jpm/cache/stack_distance.h"

namespace jpm::cache {

struct IdleEvent {
  double time_s = 0.0;
  // LRU stack depth in frames, or kColdAccess for compulsory misses (which
  // no memory size can absorb).
  std::uint64_t depth_frames = kColdAccess;
};

// One period's accesses in structure-of-arrays layout: the sweep and the
// collector touch timestamps and depths in independent streaming passes, so
// splitting the lanes keeps each pass on densely packed cache lines. Both
// lanes always have equal length.
struct IdleSeries {
  std::vector<double> times;            // time-ordered
  std::vector<std::uint64_t> depths;    // kColdAccess for compulsory misses

  std::size_t size() const { return times.size(); }
  bool empty() const { return times.empty(); }
  void clear() {
    times.clear();
    depths.clear();
  }
  void reserve(std::size_t n) {
    times.reserve(n);
    depths.reserve(n);
  }
  void push_back(double t, std::uint64_t depth) {
    times.push_back(t);
    depths.push_back(depth);
  }
  void push_back(const IdleEvent& e) { push_back(e.time_s, e.depth_frames); }
  // By-value element view (keeps `series[i].depth_frames` working for
  // callers written against the AoS layout).
  IdleEvent operator[](std::size_t i) const {
    return IdleEvent{times[i], depths[i]};
  }
};

struct IdleEstimate {
  std::uint64_t memory_units = 0;  // candidate size, in enumeration units
  std::uint64_t disk_accesses = 0;
  std::uint64_t idle_intervals = 0;  // gaps >= window
  double idle_time_s = 0.0;          // total length of those gaps
  double mean_idle_s = 0.0;          // idle_time / intervals (0 if none)
  // Sum of ln(gap) over the counted gaps — enough for the Pareto
  // maximum-likelihood alpha estimate without retaining the samples.
  double log_idle_sum = 0.0;
};

// Sweeps the given candidate sizes (ascending, in enumeration units).
//
// events must be sorted by time and fall within [period_start, period_end];
// the period boundaries act as sentinels, so leading/trailing quiet stretches
// count as idle intervals. window_s is the paper's aggregation window w.
//
// The raw-lane form is the core (one call per period per run; its working
// vectors are thread-local scratch reused across calls); the IdleSeries and
// AoS overloads forward to it.
std::vector<IdleEstimate> sweep_idle_intervals(
    const double* times, const std::uint64_t* depths, std::size_t n,
    double period_start_s, double period_end_s, std::uint64_t unit_frames,
    double window_s, const std::vector<std::uint64_t>& candidate_units);

inline std::vector<IdleEstimate> sweep_idle_intervals(
    const IdleSeries& events, double period_start_s, double period_end_s,
    std::uint64_t unit_frames, double window_s,
    const std::vector<std::uint64_t>& candidate_units) {
  return sweep_idle_intervals(events.times.data(), events.depths.data(),
                              events.size(), period_start_s, period_end_s,
                              unit_frames, window_s, candidate_units);
}

std::vector<IdleEstimate> sweep_idle_intervals(
    const std::vector<IdleEvent>& events, double period_start_s,
    double period_end_s, std::uint64_t unit_frames, double window_s,
    const std::vector<std::uint64_t>& candidate_units);

}  // namespace jpm::cache
