// The shared page table behind the per-event hot loop.
//
// A joint-policy run resolves every accessed page twice: once in the LRU
// cache (page -> frame) and once in the stack-distance tracker
// (page -> slot). Both maps key on the same page id, so the engine fuses
// them into one PageTable whose entries carry both halves:
//
//   frame  — the resident frame index, or kNoFrame when not cached
//   slot   — the page's most recent slot in the extended LRU list, or
//            kNoSlot before its first tracked access
//
// One FlatMap probe per access hands the engine both the cache residency
// check and the stack-distance bookkeeping. LruCache and
// StackDistanceTracker each accept a shared PageTable (owning a private one
// otherwise), touching only their half of the entry; an entry is physically
// erased only when both halves are vacant, so a tracker that still holds a
// slot for an evicted page keeps its entry — and, in fused runs, entries
// are never erased at all, which keeps entry pointers stable across
// evictions within an event.
//
// Nothing here exposes iteration order to simulation results: every
// consumer either probes by key or sorts what it collects (see
// StackDistanceTracker::compact), so swapping the map implementation leaves
// all outputs byte-identical.
#pragma once

#include <cstdint>

#include "jpm/util/flat_map.h"

namespace jpm::cache {

using PageId = std::uint64_t;
using FrameIndex = std::uint32_t;

inline constexpr FrameIndex kNoFrame = ~FrameIndex{0};
inline constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

struct PageEntry {
  FrameIndex frame = kNoFrame;  // LruCache's half
  std::uint32_t slot = kNoSlot;  // StackDistanceTracker's half

  bool vacant() const { return frame == kNoFrame && slot == kNoSlot; }
};

class PageTable {
 public:
  PageEntry* find(PageId page) { return map_.find(page); }
  const PageEntry* find(PageId page) const { return map_.find(page); }

  // Returns the entry for `page`, creating a vacant one when absent. The
  // pointer stays valid until the next insert or physical erase.
  PageEntry* find_or_insert(PageId page) { return map_.find_or_insert(page); }

  // Physically removes the entry (backward-shift; may relocate other
  // entries). Callers must only erase entries that are vacant.
  void erase(PageId page) { map_.erase(page); }

  // Hints the page's home slot into cache ahead of a find/find_or_insert
  // (the batched replay loop resolves probes one batch ahead). Advisory.
  void prefetch(PageId page) const { map_.prefetch(page); }

  void reserve(std::size_t pages) { map_.reserve(pages); }
  std::size_t size() const { return map_.size(); }
  // Slot-array capacity; changes exactly when an insert rehashed the table
  // (batched resolution uses this to detect invalidated entry pointers).
  std::size_t capacity() const { return map_.capacity(); }

  // Unspecified order; callers needing determinism sort what they collect.
  template <typename F>
  void for_each(F&& f) {
    map_.for_each(static_cast<F&&>(f));
  }
  template <typename F>
  void for_each(F&& f) const {
    map_.for_each(static_cast<F&&>(f));
  }

 private:
  util::FlatMap<PageEntry> map_;
};

}  // namespace jpm::cache
