#include "jpm/cache/miss_curve.h"

#include "jpm/util/check.h"

namespace jpm::cache {

MissCurve::MissCurve(std::uint64_t unit_frames, std::uint64_t max_units)
    : unit_frames_(unit_frames), counters_(max_units, 0) {
  JPM_CHECK(unit_frames > 0);
  JPM_CHECK(max_units > 0);
  if ((unit_frames & (unit_frames - 1)) == 0) {
    unit_shift_ = 0;
    while ((std::uint64_t{1} << unit_shift_) < unit_frames) ++unit_shift_;
  }
}

std::uint64_t MissCurve::misses_at(std::uint64_t units) const {
  return total_ - hits_at(units);
}

std::uint64_t MissCurve::hits_at(std::uint64_t units) const {
  JPM_CHECK(units <= counters_.size());
  std::uint64_t hits = 0;
  for (std::uint64_t u = 0; u < units; ++u) hits += counters_[u];
  return hits;
}

std::uint64_t MissCurve::counter(std::uint64_t unit) const {
  JPM_CHECK(unit < counters_.size());
  return counters_[unit];
}

std::vector<std::uint64_t> MissCurve::distinct_sizes() const {
  std::vector<std::uint64_t> sizes;
  for (std::uint64_t u = 0; u < counters_.size(); ++u) {
    if (counters_[u] > 0) sizes.push_back(u + 1);
  }
  if (sizes.empty() || sizes.back() != counters_.size()) {
    sizes.push_back(counters_.size());
  }
  return sizes;
}

void MissCurve::reset() {
  counters_.assign(counters_.size(), 0);
  overflow_ = 0;
  cold_ = 0;
  total_ = 0;
}

}  // namespace jpm::cache
