// PB-LRU-style energy-aware cache partitioning (Zhu, Shankar & Zhou — the
// paper's reference [36]).
//
// For multi-disk storage, a single global LRU sizes each disk's cache share
// by recency pressure alone; PB-LRU instead gives every disk its own LRU
// partition and periodically re-solves the partition sizes to minimize
// predicted *energy*, not miss ratio: a miss on a disk that could otherwise
// sleep costs far more than a miss on a disk that is busy anyway.
//
// Implementation: each partition tracks its own miss curve (stack-distance
// histogram at enumeration-unit granularity, the same machinery the joint
// manager uses); at each epoch a dynamic program allocates units to
// partitions minimizing sum_d cost_d(misses_d(m_d)), where the caller
// supplies each disk's energy-per-miss estimate.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "jpm/cache/lru_cache.h"
#include "jpm/cache/miss_curve.h"
#include "jpm/cache/page_table.h"
#include "jpm/cache/stack_distance.h"

namespace jpm::cache {

// Minimum-cost allocation of `total_units` across partitions. The cost of
// giving partition d a size with predicted miss count m is
// cost(d, m) — an arbitrary (typically nonlinear) energy model: e.g. "p_d*T
// if the misses keep the disk awake, else a per-wake charge". Returns one
// size per partition (each >= 1 unit) summing to exactly total_units.
using PartitionCostFn = std::function<double(std::size_t, std::uint64_t)>;
std::vector<std::uint64_t> solve_partition_sizes(
    const std::vector<const MissCurve*>& curves, const PartitionCostFn& cost,
    std::uint64_t total_units);

// Linear special case: cost_per_miss[d] * misses.
std::vector<std::uint64_t> solve_partition_sizes(
    const std::vector<const MissCurve*>& curves,
    const std::vector<double>& cost_per_miss, std::uint64_t total_units);

struct PartitionedLruOptions {
  std::uint32_t partitions = 2;
  std::uint64_t total_frames = 0;   // cache frames shared by all partitions
  std::uint64_t unit_frames = 0;    // allocation granularity
};

class PartitionedLruCache {
 public:
  explicit PartitionedLruCache(const PartitionedLruOptions& options);

  // Looks up / installs a page in the given partition. The page id space may
  // overlap across partitions (they are independent caches).
  bool access(std::uint32_t partition, PageId page);

  // Re-solves partition sizes from the miss curves accumulated since the
  // last epoch, using the given per-partition cost per miss (or a full
  // energy model of the miss count); resets the epoch statistics. Shrinking
  // partitions evict immediately.
  void rebalance(const std::vector<double>& cost_per_miss);
  void rebalance(const PartitionCostFn& cost);

  // Clears the epoch statistics without resizing — call after a warm-up or
  // prefill pass whose compulsory misses would poison the first epoch's
  // curves (a cold miss looks unavoidable at every size, flattening the
  // solver's objective).
  void reset_epoch();

  std::uint64_t partition_units(std::uint32_t partition) const;
  std::uint64_t total_units() const { return total_units_; }
  // Misses observed in the current epoch.
  std::uint64_t epoch_misses(std::uint32_t partition) const;
  const MissCurve& epoch_curve(std::uint32_t partition) const;

 private:
  PartitionedLruOptions options_;
  std::uint64_t total_units_;
  // Each partition's cache and tracker share one page table, so access()
  // resolves a page with a single probe (the engine's fused hot path).
  std::vector<std::unique_ptr<PageTable>> tables_;
  std::vector<LruCache> caches_;
  std::vector<StackDistanceTracker> trackers_;
  std::vector<MissCurve> curves_;
  std::vector<std::uint64_t> units_;
  std::vector<std::uint64_t> misses_;
};

}  // namespace jpm::cache
