#include "jpm/cache/partitioned_lru.h"

#include <limits>

#include "jpm/util/check.h"

namespace jpm::cache {

std::vector<std::uint64_t> solve_partition_sizes(
    const std::vector<const MissCurve*>& curves, const PartitionCostFn& cost_fn,
    std::uint64_t total_units) {
  const std::size_t n = curves.size();
  JPM_CHECK(n > 0);
  JPM_CHECK(cost_fn != nullptr);
  JPM_CHECK(total_units >= n);  // every partition keeps at least one unit

  // dp[d][u]: minimum cost serving partitions [0, d] with u units total;
  // each partition receives at least 1 unit.
  const auto units = total_units;
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> dp(n, std::vector<double>(units + 1, inf));
  std::vector<std::vector<std::uint64_t>> pick(
      n, std::vector<std::uint64_t>(units + 1, 0));

  auto cost = [&](std::size_t d, std::uint64_t m) {
    return cost_fn(d, curves[d]->misses_at(m));
  };

  for (std::uint64_t m = 1; m <= units; ++m) {
    dp[0][m] = cost(0, m);
    pick[0][m] = m;
  }
  for (std::size_t d = 1; d < n; ++d) {
    for (std::uint64_t u = d + 1; u <= units; ++u) {
      for (std::uint64_t m = 1; m + d <= u; ++m) {
        const double c = dp[d - 1][u - m] + cost(d, m);
        if (c < dp[d][u]) {
          dp[d][u] = c;
          pick[d][u] = m;
        }
      }
    }
  }

  std::vector<std::uint64_t> sizes(n, 0);
  std::uint64_t remaining = units;
  for (std::size_t d = n; d-- > 0;) {
    sizes[d] = pick[d][remaining];
    JPM_CHECK(sizes[d] >= 1);
    remaining -= sizes[d];
  }
  JPM_CHECK(remaining == 0);
  return sizes;
}

std::vector<std::uint64_t> solve_partition_sizes(
    const std::vector<const MissCurve*>& curves,
    const std::vector<double>& cost_per_miss, std::uint64_t total_units) {
  JPM_CHECK(cost_per_miss.size() == curves.size());
  for (double c : cost_per_miss) JPM_CHECK(c >= 0.0);
  return solve_partition_sizes(
      curves,
      [&cost_per_miss](std::size_t d, std::uint64_t misses) {
        return cost_per_miss[d] * static_cast<double>(misses);
      },
      total_units);
}

PartitionedLruCache::PartitionedLruCache(const PartitionedLruOptions& options)
    : options_(options) {
  JPM_CHECK(options.partitions > 0);
  JPM_CHECK(options.unit_frames > 0);
  JPM_CHECK_MSG(options.total_frames % options.unit_frames == 0,
                "cache must be a whole number of units");
  total_units_ = options.total_frames / options.unit_frames;
  JPM_CHECK_MSG(total_units_ >= options.partitions,
                "need at least one unit per partition");

  // Equal initial split; the first rebalance corrects it.
  const std::uint64_t base = total_units_ / options.partitions;
  std::uint64_t leftover = total_units_ - base * options.partitions;
  for (std::uint32_t p = 0; p < options.partitions; ++p) {
    const std::uint64_t u = base + (leftover > 0 ? 1 : 0);
    if (leftover > 0) --leftover;
    units_.push_back(u);
    tables_.push_back(std::make_unique<PageTable>());
    caches_.emplace_back(
        LruCacheOptions{options.total_frames, options.unit_frames,
                        u * options.unit_frames},
        tables_.back().get());
    trackers_.emplace_back(tables_.back().get());
    curves_.emplace_back(options.unit_frames, total_units_);
    misses_.push_back(0);
  }
}

bool PartitionedLruCache::access(std::uint32_t partition, PageId page) {
  JPM_CHECK(partition < caches_.size());
  // One probe serves both the stack-distance update and the residency
  // check; the tracker always runs first, so every entry carries a slot and
  // evictions never physically erase (the entry pointer stays valid).
  PageEntry* entry = tables_[partition]->find_or_insert(page);
  curves_[partition].add(trackers_[partition].access_at(*entry));
  if (entry->frame != kNoFrame) {
    caches_[partition].touch(entry->frame);
    return true;
  }
  caches_[partition].insert(page);
  ++misses_[partition];
  return false;
}

void PartitionedLruCache::rebalance(const std::vector<double>& cost_per_miss) {
  JPM_CHECK(cost_per_miss.size() == caches_.size());
  rebalance([&cost_per_miss](std::size_t d, std::uint64_t misses) {
    return cost_per_miss[d] * static_cast<double>(misses);
  });
}

void PartitionedLruCache::rebalance(const PartitionCostFn& cost) {
  std::vector<const MissCurve*> curves;
  curves.reserve(curves_.size());
  for (const auto& c : curves_) curves.push_back(&c);
  const auto sizes = solve_partition_sizes(curves, cost, total_units_);
  for (std::uint32_t p = 0; p < caches_.size(); ++p) {
    units_[p] = sizes[p];
    caches_[p].set_capacity(sizes[p] * options_.unit_frames);
  }
  reset_epoch();
}

void PartitionedLruCache::reset_epoch() {
  for (auto& c : curves_) c.reset();
  for (auto& m : misses_) m = 0;
}

std::uint64_t PartitionedLruCache::partition_units(
    std::uint32_t partition) const {
  JPM_CHECK(partition < units_.size());
  return units_[partition];
}

std::uint64_t PartitionedLruCache::epoch_misses(
    std::uint32_t partition) const {
  JPM_CHECK(partition < misses_.size());
  return misses_[partition];
}

const MissCurve& PartitionedLruCache::epoch_curve(
    std::uint32_t partition) const {
  JPM_CHECK(partition < curves_.size());
  return curves_[partition];
}

}  // namespace jpm::cache
