// Resizable LRU disk cache with bank-structured frames.
//
// Mirrors the paper's setup: physical memory is an array of frames grouped
// into banks (16 MB each in the paper); the disk cache occupies frames and is
// managed LRU, like Linux's page cache. The cache supports
//   * capacity resizing (the joint method / fixed-memory methods), which
//     evicts LRU pages when shrinking, and
//   * bank invalidation (the "disable" memory policy), which drops every page
//     held in a bank's frames.
// Frame allocation prefers banks that already hold pages, so unused banks can
// stay in deep low-power modes.
//
// Residency (page -> frame) lives in a PageTable — an open-addressing flat
// map — as the `frame` half of each PageEntry. By default the cache owns a
// private table; the engine instead passes the table it shares with its
// stack-distance tracker, so one probe per access resolves both. In shared
// mode an evicted page whose entry still carries a tracker slot keeps its
// entry (with frame = kNoFrame); the entry is physically erased only when
// both halves are vacant.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "jpm/cache/page_table.h"
#include "jpm/util/arena.h"
#include "jpm/util/check.h"
#include "jpm/util/prefetch.h"

namespace jpm::cache {

using BankIndex = std::uint32_t;

struct LruCacheOptions {
  std::uint64_t total_frames = 0;     // physical memory, in frames
  std::uint64_t frames_per_bank = 0;  // bank granularity, in frames
  std::uint64_t capacity_frames = 0;  // initial logical capacity
  // Optional bump arena for the frame-indexed node array (util/arena.h);
  // null keeps the nodes on the global heap. The arena must outlive the
  // cache. Purely a layout choice — never observable in outputs.
  util::Arena* arena = nullptr;
};

struct AccessOutcome {
  bool hit = false;
  BankIndex bank = 0;  // bank of the touched/allocated frame
};

struct InsertOutcome {
  BankIndex bank = 0;       // bank that received the page
  FrameIndex frame = kNoFrame;  // frame that received the page
  bool evicted = false;     // an LRU victim was pushed out
  PageId evicted_page = 0;
  bool evicted_dirty = false;  // the victim needs writing back to disk
};

class LruCache {
 public:
  // A non-null `shared` table fuses residency with other per-page state;
  // otherwise the cache owns a private table.
  explicit LruCache(const LruCacheOptions& options,
                    PageTable* shared = nullptr);

  // Looks up a page; on hit moves it to the MRU position. Does NOT insert.
  std::optional<AccessOutcome> lookup(PageId page);

  // The fused hot path: promotes an already-resolved resident frame (a
  // PageEntry's non-kNoFrame `frame` half) to MRU. No hash probe happens;
  // inline so the list splice fuses into the engine's event loop.
  AccessOutcome touch(FrameIndex f) {
    JPM_DCHECK(nodes_[f].occupied);
    if (f != head_) {
      unlink(f);
      push_front(f);
    }
    return AccessOutcome{true, bank_of(f)};
  }

  // Hints a resolved frame's list node into cache ahead of touch().
  // Advisory only.
  void prefetch_frame(FrameIndex f) const { util::prefetch_write(&nodes_[f]); }

  // Inserts a page known to be absent, evicting the LRU page when the cache
  // is at capacity. The outcome reports the receiving bank/frame and any
  // victim (with its dirty state, so the caller can write it back).
  InsertOutcome insert(PageId page);

  // Changes the logical capacity; shrinking evicts LRU pages immediately.
  // Dirty victims are appended to `dirty_out` when provided.
  void set_capacity(std::uint64_t frames,
                    std::vector<PageId>* dirty_out = nullptr);

  // Drops every page resident in the given bank (the DS policy's disable).
  // Returns the number of pages invalidated; dirty victims are appended to
  // `dirty_out` when provided.
  std::uint64_t invalidate_bank(BankIndex bank,
                                std::vector<PageId>* dirty_out = nullptr);

  // Writeback bookkeeping: marks a resident page dirty / queries it / drains
  // every dirty page, clearing the flags — what a periodic flush daemon
  // does. take_dirty_pages fills the caller's scratch vector (cleared first,
  // ascending page order) instead of allocating, so the engine's periodic
  // flush reuses one buffer for the whole run.
  void mark_dirty(PageId page);
  // Same, for a caller that already resolved the page's frame; no probe.
  void mark_dirty_frame(FrameIndex frame);
  bool is_dirty(PageId page) const;
  void take_dirty_pages(std::vector<PageId>* out);
  std::uint64_t dirty_count() const { return dirty_count_; }

  std::uint64_t size() const { return size_; }
  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t total_frames() const { return static_cast<std::uint64_t>(nodes_.size()); }
  std::uint64_t bank_count() const { return bank_free_.size(); }
  std::uint64_t frames_per_bank() const { return frames_per_bank_; }
  // Number of pages currently resident in the given bank.
  std::uint64_t bank_population(BankIndex bank) const;
  bool contains(PageId page) const {
    const PageEntry* e = table_->find(page);
    return e != nullptr && e->frame != kNoFrame;
  }

  // LRU order from most to least recently used (test/diagnostic helper;
  // O(size)).
  std::vector<PageId> lru_order() const;

 private:
  struct Node {
    PageId page = 0;
    FrameIndex prev = kNoFrame;
    FrameIndex next = kNoFrame;
    bool occupied = false;
    bool dirty = false;
  };

  BankIndex bank_of(FrameIndex f) const {
    return static_cast<BankIndex>(f / frames_per_bank_);
  }
  void unlink(FrameIndex f) {
    Node& n = nodes_[f];
    if (n.prev != kNoFrame) nodes_[n.prev].next = n.next;
    if (n.next != kNoFrame) nodes_[n.next].prev = n.prev;
    if (head_ == f) head_ = n.next;
    if (tail_ == f) tail_ = n.prev;
    n.prev = n.next = kNoFrame;
  }
  void push_front(FrameIndex f) {
    Node& n = nodes_[f];
    n.prev = kNoFrame;
    n.next = head_;
    if (head_ != kNoFrame) nodes_[head_].prev = f;
    head_ = f;
    if (tail_ == kNoFrame) tail_ = f;
  }
  FrameIndex allocate_frame();
  // Removes the LRU page; reports the victim through the out-params.
  void evict_lru(PageId* page, bool* dirty);
  void remove_frame(FrameIndex f);

  std::uint64_t frames_per_bank_;
  std::uint64_t capacity_;
  std::uint64_t size_ = 0;
  FrameIndex head_ = kNoFrame;  // MRU
  FrameIndex tail_ = kNoFrame;  // LRU
  // Indexed by frame; optionally arena-backed (LruCacheOptions::arena).
  std::vector<Node, util::ArenaAllocator<Node>> nodes_;
  std::unique_ptr<PageTable> owned_table_;  // null when sharing
  PageTable* table_;  // page -> frame lives in each entry's `frame` half
  // Per-bank free-frame stacks plus the set of banks with both free frames
  // and at least one resident page ("warm" banks preferred for allocation).
  std::vector<std::vector<FrameIndex>> bank_free_;
  std::vector<std::uint64_t> bank_population_;
  std::vector<BankIndex> warm_banks_;       // stack of candidates (lazy)
  std::vector<BankIndex> cold_banks_;       // fully-free banks, ascending order
  // Frames that were dirty when pushed; entries go stale when the frame is
  // cleaned or recycled (the node's dirty flag is authoritative).
  std::vector<FrameIndex> dirty_frames_;
  std::uint64_t dirty_count_ = 0;
};

}  // namespace jpm::cache
