// Resizable LRU disk cache with bank-structured frames.
//
// Mirrors the paper's setup: physical memory is an array of frames grouped
// into banks (16 MB each in the paper); the disk cache occupies frames and is
// managed LRU, like Linux's page cache. The cache supports
//   * capacity resizing (the joint method / fixed-memory methods), which
//     evicts LRU pages when shrinking, and
//   * bank invalidation (the "disable" memory policy), which drops every page
//     held in a bank's frames.
// Frame allocation prefers banks that already hold pages, so unused banks can
// stay in deep low-power modes.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "jpm/util/check.h"

namespace jpm::cache {

using PageId = std::uint64_t;
using FrameIndex = std::uint32_t;
using BankIndex = std::uint32_t;

inline constexpr FrameIndex kNoFrame = ~FrameIndex{0};

struct LruCacheOptions {
  std::uint64_t total_frames = 0;     // physical memory, in frames
  std::uint64_t frames_per_bank = 0;  // bank granularity, in frames
  std::uint64_t capacity_frames = 0;  // initial logical capacity
};

struct AccessOutcome {
  bool hit = false;
  BankIndex bank = 0;  // bank of the touched/allocated frame
};

struct InsertOutcome {
  BankIndex bank = 0;       // bank that received the page
  bool evicted = false;     // an LRU victim was pushed out
  PageId evicted_page = 0;
  bool evicted_dirty = false;  // the victim needs writing back to disk
};

class LruCache {
 public:
  explicit LruCache(const LruCacheOptions& options);

  // Looks up a page; on hit moves it to the MRU position. Does NOT insert.
  std::optional<AccessOutcome> lookup(PageId page);

  // Inserts a page known to be absent, evicting the LRU page when the cache
  // is at capacity. The outcome reports the receiving bank and any victim
  // (with its dirty state, so the caller can write it back).
  InsertOutcome insert(PageId page);

  // Changes the logical capacity; shrinking evicts LRU pages immediately.
  // Dirty victims are appended to `dirty_out` when provided.
  void set_capacity(std::uint64_t frames,
                    std::vector<PageId>* dirty_out = nullptr);

  // Drops every page resident in the given bank (the DS policy's disable).
  // Returns the number of pages invalidated; dirty victims are appended to
  // `dirty_out` when provided.
  std::uint64_t invalidate_bank(BankIndex bank,
                                std::vector<PageId>* dirty_out = nullptr);

  // Writeback bookkeeping: marks a resident page dirty / queries it / drains
  // every dirty page (ascending page order), clearing the flags — what a
  // periodic flush daemon does.
  void mark_dirty(PageId page);
  bool is_dirty(PageId page) const;
  std::vector<PageId> take_dirty_pages();
  std::uint64_t dirty_count() const { return dirty_count_; }

  std::uint64_t size() const { return size_; }
  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t total_frames() const { return static_cast<std::uint64_t>(nodes_.size()); }
  std::uint64_t bank_count() const { return bank_free_.size(); }
  std::uint64_t frames_per_bank() const { return frames_per_bank_; }
  // Number of pages currently resident in the given bank.
  std::uint64_t bank_population(BankIndex bank) const;
  bool contains(PageId page) const { return map_.contains(page); }

  // LRU order from most to least recently used (test/diagnostic helper;
  // O(size)).
  std::vector<PageId> lru_order() const;

 private:
  struct Node {
    PageId page = 0;
    FrameIndex prev = kNoFrame;
    FrameIndex next = kNoFrame;
    bool occupied = false;
    bool dirty = false;
  };

  BankIndex bank_of(FrameIndex f) const {
    return static_cast<BankIndex>(f / frames_per_bank_);
  }
  void unlink(FrameIndex f);
  void push_front(FrameIndex f);
  FrameIndex allocate_frame();
  // Removes the LRU page; reports the victim through the out-params.
  void evict_lru(PageId* page, bool* dirty);
  void remove_frame(FrameIndex f);

  std::uint64_t frames_per_bank_;
  std::uint64_t capacity_;
  std::uint64_t size_ = 0;
  FrameIndex head_ = kNoFrame;  // MRU
  FrameIndex tail_ = kNoFrame;  // LRU
  std::vector<Node> nodes_;     // indexed by frame
  std::unordered_map<PageId, FrameIndex> map_;
  // Per-bank free-frame stacks plus the set of banks with both free frames
  // and at least one resident page ("warm" banks preferred for allocation).
  std::vector<std::vector<FrameIndex>> bank_free_;
  std::vector<std::uint64_t> bank_population_;
  std::vector<BankIndex> warm_banks_;       // stack of candidates (lazy)
  std::vector<BankIndex> cold_banks_;       // fully-free banks, ascending order
  // Frames that were dirty when pushed; entries go stale when the frame is
  // cleaned or recycled (the node's dirty flag is authoritative).
  std::vector<FrameIndex> dirty_frames_;
  std::uint64_t dirty_count_ = 0;
};

}  // namespace jpm::cache
