#include "jpm/cache/lru_cache.h"

#include <algorithm>

namespace jpm::cache {

LruCache::LruCache(const LruCacheOptions& options)
    : frames_per_bank_(options.frames_per_bank),
      capacity_(options.capacity_frames) {
  JPM_CHECK(options.total_frames > 0);
  JPM_CHECK(options.frames_per_bank > 0);
  JPM_CHECK(options.capacity_frames <= options.total_frames);
  JPM_CHECK_MSG(options.total_frames % options.frames_per_bank == 0,
                "total frames must be a whole number of banks");
  nodes_.resize(options.total_frames);
  const std::uint64_t banks = options.total_frames / options.frames_per_bank;
  bank_free_.resize(banks);
  bank_population_.assign(banks, 0);
  // Cold banks kept descending so pop_back() yields the lowest index first.
  cold_banks_.reserve(banks);
  for (std::uint64_t b = banks; b > 0; --b) {
    cold_banks_.push_back(static_cast<BankIndex>(b - 1));
  }
  map_.reserve(options.capacity_frames);
}

std::optional<AccessOutcome> LruCache::lookup(PageId page) {
  const auto it = map_.find(page);
  if (it == map_.end()) return std::nullopt;
  const FrameIndex f = it->second;
  if (f != head_) {
    unlink(f);
    push_front(f);
  }
  return AccessOutcome{true, bank_of(f)};
}

InsertOutcome LruCache::insert(PageId page) {
  JPM_DCHECK(!map_.contains(page));
  JPM_CHECK_MSG(capacity_ > 0, "insert into zero-capacity cache");
  InsertOutcome out;
  if (size_ >= capacity_) {
    out.evicted = true;
    evict_lru(&out.evicted_page, &out.evicted_dirty);
  }
  const FrameIndex f = allocate_frame();
  Node& n = nodes_[f];
  n.page = page;
  n.occupied = true;
  n.dirty = false;
  push_front(f);
  map_.emplace(page, f);
  ++size_;
  out.bank = bank_of(f);
  ++bank_population_[out.bank];
  return out;
}

void LruCache::set_capacity(std::uint64_t frames,
                            std::vector<PageId>* dirty_out) {
  JPM_CHECK(frames <= total_frames());
  capacity_ = frames;
  while (size_ > capacity_) {
    PageId page = 0;
    bool dirty = false;
    evict_lru(&page, &dirty);
    if (dirty && dirty_out != nullptr) dirty_out->push_back(page);
  }
}

std::uint64_t LruCache::invalidate_bank(BankIndex bank,
                                        std::vector<PageId>* dirty_out) {
  JPM_CHECK(bank < bank_count());
  std::uint64_t dropped = 0;
  const FrameIndex lo = static_cast<FrameIndex>(bank * frames_per_bank_);
  const FrameIndex hi = static_cast<FrameIndex>(lo + frames_per_bank_);
  for (FrameIndex f = lo; f < hi; ++f) {
    if (nodes_[f].occupied) {
      if (nodes_[f].dirty && dirty_out != nullptr) {
        dirty_out->push_back(nodes_[f].page);
      }
      remove_frame(f);
      ++dropped;
    }
  }
  return dropped;
}

void LruCache::mark_dirty(PageId page) {
  const auto it = map_.find(page);
  JPM_CHECK_MSG(it != map_.end(), "mark_dirty on a non-resident page");
  Node& n = nodes_[it->second];
  if (!n.dirty) {
    n.dirty = true;
    ++dirty_count_;
    dirty_frames_.push_back(it->second);
  }
}

bool LruCache::is_dirty(PageId page) const {
  const auto it = map_.find(page);
  return it != map_.end() && nodes_[it->second].dirty;
}

std::vector<PageId> LruCache::take_dirty_pages() {
  std::vector<PageId> pages;
  pages.reserve(dirty_count_);
  for (FrameIndex f : dirty_frames_) {
    Node& n = nodes_[f];
    if (n.occupied && n.dirty) {
      n.dirty = false;
      --dirty_count_;
      pages.push_back(n.page);
    }
  }
  dirty_frames_.clear();
  JPM_DCHECK(dirty_count_ == 0);
  std::sort(pages.begin(), pages.end());
  return pages;
}

std::uint64_t LruCache::bank_population(BankIndex bank) const {
  JPM_CHECK(bank < bank_count());
  return bank_population_[bank];
}

std::vector<PageId> LruCache::lru_order() const {
  std::vector<PageId> order;
  order.reserve(size_);
  for (FrameIndex f = head_; f != kNoFrame; f = nodes_[f].next) {
    order.push_back(nodes_[f].page);
  }
  return order;
}

void LruCache::unlink(FrameIndex f) {
  Node& n = nodes_[f];
  if (n.prev != kNoFrame) nodes_[n.prev].next = n.next;
  if (n.next != kNoFrame) nodes_[n.next].prev = n.prev;
  if (head_ == f) head_ = n.next;
  if (tail_ == f) tail_ = n.prev;
  n.prev = n.next = kNoFrame;
}

void LruCache::push_front(FrameIndex f) {
  Node& n = nodes_[f];
  n.prev = kNoFrame;
  n.next = head_;
  if (head_ != kNoFrame) nodes_[head_].prev = f;
  head_ = f;
  if (tail_ == kNoFrame) tail_ = f;
}

FrameIndex LruCache::allocate_frame() {
  // Prefer a warm bank (already holds pages) to concentrate residency;
  // fall back to the lowest-index cold bank.
  while (!warm_banks_.empty()) {
    const BankIndex b = warm_banks_.back();
    auto& free_list = bank_free_[b];
    if (free_list.empty() || bank_population_[b] == 0) {
      warm_banks_.pop_back();  // stale entry
      continue;
    }
    const FrameIndex f = free_list.back();
    free_list.pop_back();
    if (!free_list.empty()) {
      // keep b as a candidate
    } else {
      warm_banks_.pop_back();
    }
    return f;
  }
  JPM_CHECK_MSG(!cold_banks_.empty(), "no free frame available");
  const BankIndex b = cold_banks_.back();
  cold_banks_.pop_back();
  auto& free_list = bank_free_[b];
  if (free_list.empty()) {
    // Bank has never been used: seed its free list with all frames but one
    // (descending so lower frames are handed out first).
    const FrameIndex lo = static_cast<FrameIndex>(b * frames_per_bank_);
    for (std::uint64_t k = frames_per_bank_; k > 1; --k) {
      free_list.push_back(static_cast<FrameIndex>(lo + k - 1));
    }
    if (!free_list.empty()) warm_banks_.push_back(b);
    return lo;
  }
  const FrameIndex f = free_list.back();
  free_list.pop_back();
  if (!free_list.empty()) warm_banks_.push_back(b);
  return f;
}

void LruCache::evict_lru(PageId* page, bool* dirty) {
  JPM_CHECK_MSG(tail_ != kNoFrame, "evict from empty cache");
  const Node& victim = nodes_[tail_];
  *page = victim.page;
  *dirty = victim.dirty;
  remove_frame(tail_);
}

void LruCache::remove_frame(FrameIndex f) {
  Node& n = nodes_[f];
  JPM_DCHECK(n.occupied);
  unlink(f);
  map_.erase(n.page);
  n.occupied = false;
  if (n.dirty) {
    n.dirty = false;
    --dirty_count_;
  }
  --size_;
  const BankIndex b = bank_of(f);
  --bank_population_[b];
  const bool was_free_empty = bank_free_[b].empty();
  bank_free_[b].push_back(f);
  if (bank_population_[b] == 0) {
    // Fully drained bank becomes cold again; its free list stays populated so
    // a future allocation can reuse it directly.
    cold_banks_.push_back(b);
  } else if (was_free_empty) {
    warm_banks_.push_back(b);
  }
}

}  // namespace jpm::cache
