#include "jpm/cache/lru_cache.h"

#include <algorithm>

namespace jpm::cache {

LruCache::LruCache(const LruCacheOptions& options, PageTable* shared)
    : frames_per_bank_(options.frames_per_bank),
      capacity_(options.capacity_frames),
      nodes_(util::ArenaAllocator<Node>(options.arena)) {
  JPM_CHECK(options.total_frames > 0);
  JPM_CHECK(options.frames_per_bank > 0);
  JPM_CHECK(options.capacity_frames <= options.total_frames);
  JPM_CHECK_MSG(options.total_frames % options.frames_per_bank == 0,
                "total frames must be a whole number of banks");
  nodes_.resize(options.total_frames);
  const std::uint64_t banks = options.total_frames / options.frames_per_bank;
  bank_free_.resize(banks);
  bank_population_.assign(banks, 0);
  // Cold banks kept descending so pop_back() yields the lowest index first.
  cold_banks_.reserve(banks);
  for (std::uint64_t b = banks; b > 0; --b) {
    cold_banks_.push_back(static_cast<BankIndex>(b - 1));
  }
  if (shared != nullptr) {
    table_ = shared;
  } else {
    owned_table_ = std::make_unique<PageTable>();
    table_ = owned_table_.get();
  }
  table_->reserve(options.capacity_frames);
}

std::optional<AccessOutcome> LruCache::lookup(PageId page) {
  const PageEntry* e = table_->find(page);
  if (e == nullptr || e->frame == kNoFrame) return std::nullopt;
  return touch(e->frame);
}

InsertOutcome LruCache::insert(PageId page) {
  JPM_CHECK_MSG(capacity_ > 0, "insert into zero-capacity cache");
  InsertOutcome out;
  if (size_ >= capacity_) {
    out.evicted = true;
    // Evict before resolving `page`'s entry: a physical erase may relocate
    // entries within the flat table.
    evict_lru(&out.evicted_page, &out.evicted_dirty);
  }
  const FrameIndex f = allocate_frame();
  Node& n = nodes_[f];
  n.page = page;
  n.occupied = true;
  n.dirty = false;
  push_front(f);
  PageEntry* e = table_->find_or_insert(page);
  JPM_DCHECK(e->frame == kNoFrame);
  e->frame = f;
  ++size_;
  out.bank = bank_of(f);
  out.frame = f;
  ++bank_population_[out.bank];
  return out;
}

void LruCache::set_capacity(std::uint64_t frames,
                            std::vector<PageId>* dirty_out) {
  JPM_CHECK(frames <= total_frames());
  capacity_ = frames;
  while (size_ > capacity_) {
    PageId page = 0;
    bool dirty = false;
    evict_lru(&page, &dirty);
    if (dirty && dirty_out != nullptr) dirty_out->push_back(page);
  }
}

std::uint64_t LruCache::invalidate_bank(BankIndex bank,
                                        std::vector<PageId>* dirty_out) {
  JPM_CHECK(bank < bank_count());
  std::uint64_t dropped = 0;
  const FrameIndex lo = static_cast<FrameIndex>(bank * frames_per_bank_);
  const FrameIndex hi = static_cast<FrameIndex>(lo + frames_per_bank_);
  for (FrameIndex f = lo; f < hi; ++f) {
    if (nodes_[f].occupied) {
      if (nodes_[f].dirty && dirty_out != nullptr) {
        dirty_out->push_back(nodes_[f].page);
      }
      remove_frame(f);
      ++dropped;
    }
  }
  return dropped;
}

void LruCache::mark_dirty(PageId page) {
  const PageEntry* e = table_->find(page);
  JPM_CHECK_MSG(e != nullptr && e->frame != kNoFrame,
                "mark_dirty on a non-resident page");
  mark_dirty_frame(e->frame);
}

void LruCache::mark_dirty_frame(FrameIndex f) {
  Node& n = nodes_[f];
  JPM_DCHECK(n.occupied);
  if (!n.dirty) {
    n.dirty = true;
    ++dirty_count_;
    dirty_frames_.push_back(f);
  }
}

bool LruCache::is_dirty(PageId page) const {
  const PageEntry* e = table_->find(page);
  return e != nullptr && e->frame != kNoFrame && nodes_[e->frame].dirty;
}

void LruCache::take_dirty_pages(std::vector<PageId>* out) {
  out->clear();
  if (out->capacity() < dirty_count_) out->reserve(dirty_count_);
  for (FrameIndex f : dirty_frames_) {
    Node& n = nodes_[f];
    if (n.occupied && n.dirty) {
      n.dirty = false;
      --dirty_count_;
      out->push_back(n.page);
    }
  }
  dirty_frames_.clear();
  JPM_DCHECK(dirty_count_ == 0);
  std::sort(out->begin(), out->end());
}

std::uint64_t LruCache::bank_population(BankIndex bank) const {
  JPM_CHECK(bank < bank_count());
  return bank_population_[bank];
}

std::vector<PageId> LruCache::lru_order() const {
  std::vector<PageId> order;
  order.reserve(size_);
  for (FrameIndex f = head_; f != kNoFrame; f = nodes_[f].next) {
    order.push_back(nodes_[f].page);
  }
  return order;
}

FrameIndex LruCache::allocate_frame() {
  // Prefer a warm bank (already holds pages) to concentrate residency;
  // fall back to the lowest-index cold bank.
  while (!warm_banks_.empty()) {
    const BankIndex b = warm_banks_.back();
    auto& free_list = bank_free_[b];
    if (free_list.empty() || bank_population_[b] == 0) {
      warm_banks_.pop_back();  // stale entry
      continue;
    }
    const FrameIndex f = free_list.back();
    free_list.pop_back();
    if (!free_list.empty()) {
      // keep b as a candidate
    } else {
      warm_banks_.pop_back();
    }
    return f;
  }
  JPM_CHECK_MSG(!cold_banks_.empty(), "no free frame available");
  const BankIndex b = cold_banks_.back();
  cold_banks_.pop_back();
  auto& free_list = bank_free_[b];
  if (free_list.empty()) {
    // Bank has never been used: seed its free list with all frames but one
    // (descending so lower frames are handed out first).
    const FrameIndex lo = static_cast<FrameIndex>(b * frames_per_bank_);
    for (std::uint64_t k = frames_per_bank_; k > 1; --k) {
      free_list.push_back(static_cast<FrameIndex>(lo + k - 1));
    }
    if (!free_list.empty()) warm_banks_.push_back(b);
    return lo;
  }
  const FrameIndex f = free_list.back();
  free_list.pop_back();
  if (!free_list.empty()) warm_banks_.push_back(b);
  return f;
}

void LruCache::evict_lru(PageId* page, bool* dirty) {
  JPM_CHECK_MSG(tail_ != kNoFrame, "evict from empty cache");
  const Node& victim = nodes_[tail_];
  *page = victim.page;
  *dirty = victim.dirty;
  remove_frame(tail_);
}

void LruCache::remove_frame(FrameIndex f) {
  Node& n = nodes_[f];
  JPM_DCHECK(n.occupied);
  unlink(f);
  PageEntry* e = table_->find(n.page);
  JPM_DCHECK(e != nullptr && e->frame == f);
  if (e->slot == kNoSlot) {
    // No other half alive: drop the entry entirely (standalone caches keep
    // the table at resident-set size this way).
    table_->erase(n.page);
  } else {
    // A stack-distance slot still references this page; keep the entry and
    // vacate only the residency half.
    e->frame = kNoFrame;
  }
  n.occupied = false;
  if (n.dirty) {
    n.dirty = false;
    --dirty_count_;
  }
  --size_;
  const BankIndex b = bank_of(f);
  --bank_population_[b];
  const bool was_free_empty = bank_free_[b].empty();
  bank_free_[b].push_back(f);
  if (bank_population_[b] == 0) {
    // Fully drained bank becomes cold again; its free list stays populated so
    // a future allocation can reuse it directly.
    cold_banks_.push_back(b);
  } else if (was_free_empty) {
    warm_banks_.push_back(b);
  }
}

}  // namespace jpm::cache
