// O(log n) LRU stack-distance tracking (Bennett–Kruskal algorithm).
//
// This is the engine behind the paper's extended LRU list (Fig. 3): for every
// access it yields the page's depth in an unbounded LRU stack — the number of
// distinct pages referenced since the previous access to the same page, plus
// one. By LRU's inclusion property, the access would hit in any cache of
// capacity >= depth and miss in any smaller one, so a histogram of depths
// predicts the number of disk accesses at every candidate memory size without
// rerunning the workload.
//
// Implementation: each access occupies a time slot; a Fenwick tree marks the
// slots that are the *most recent* access of some page. The depth of a
// re-access equals the count of marked slots after the page's previous slot.
// Slots are compacted when the array grows past twice the live page count.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "jpm/util/fenwick.h"

namespace jpm::cache {

// Depth reported for the first access to a page (compulsory / cold miss).
inline constexpr std::uint64_t kColdAccess = ~std::uint64_t{0};

class StackDistanceTracker {
 public:
  StackDistanceTracker();

  // Records an access and returns the page's LRU stack depth (1 = MRU
  // re-access) or kColdAccess for a first-ever reference.
  std::uint64_t access(std::uint64_t page);

  // Number of distinct pages seen so far.
  std::uint64_t distinct_pages() const { return last_slot_.size(); }
  std::uint64_t total_accesses() const { return total_accesses_; }

 private:
  void compact();

  FenwickTree fenwick_;
  std::vector<std::uint64_t> slot_page_;               // slot -> page
  std::unordered_map<std::uint64_t, std::size_t> last_slot_;  // page -> slot
  std::size_t next_slot_ = 0;
  std::uint64_t total_accesses_ = 0;
};

}  // namespace jpm::cache
