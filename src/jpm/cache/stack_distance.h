// O(log n) LRU stack-distance tracking (Bennett–Kruskal algorithm).
//
// This is the engine behind the paper's extended LRU list (Fig. 3): for every
// access it yields the page's depth in an unbounded LRU stack — the number of
// distinct pages referenced since the previous access to the same page, plus
// one. By LRU's inclusion property, the access would hit in any cache of
// capacity >= depth and miss in any smaller one, so a histogram of depths
// predicts the number of disk accesses at every candidate memory size without
// rerunning the workload.
//
// Implementation: each access occupies a time slot; a wide-fanout counter
// tree (util/counter_tree.h) marks the slots that are the *most recent*
// access of some page. The depth of a re-access equals the count of marked
// slots after the page's previous slot, which is the number of live slots
// minus the rank through it — one fused rank-and-clear descent touching
// 3-4 cache lines, versus the ~20 scattered nodes of the binary Fenwick
// tree this replaced. Slots are compacted when the array grows past eight
// times the live page count.
//
// The page -> slot map lives in a PageTable (the `slot` half of each
// PageEntry). By default the tracker owns a private table; the engine
// instead passes the table it shares with the LRU cache and resolves each
// page once per access, calling access_at() with the entry in hand.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "jpm/cache/page_table.h"
#include "jpm/util/counter_tree.h"

namespace jpm::cache {

// Depth reported for the first access to a page (compulsory / cold miss).
inline constexpr std::uint64_t kColdAccess = ~std::uint64_t{0};

class StackDistanceTracker {
 public:
  // With no argument the tracker owns its page table; a non-null `shared`
  // table lets callers fuse the page lookup with other per-page state (the
  // engine shares one table between this tracker and its LruCache). A
  // non-null `arena` places the counter-tree slot storage on the caller's
  // bump arena (util/arena.h), keeping it adjacent to the rest of the
  // hot-path working set; it must outlive the tracker.
  explicit StackDistanceTracker(PageTable* shared = nullptr,
                                util::Arena* arena = nullptr);

  // Records an access and returns the page's LRU stack depth (1 = MRU
  // re-access) or kColdAccess for a first-ever reference.
  std::uint64_t access(std::uint64_t page);

  // Same, for a caller that already resolved the page's entry in the shared
  // table — the fused hot path; no hash probe happens here. Defined inline:
  // this plus the probe is the whole per-event cost of prediction, and the
  // counter-tree descent inlines into the engine loop.
  JPM_FORCE_INLINE std::uint64_t access_at(PageEntry& entry) {
    ++total_accesses_;
    if (next_slot_ == tree_.size()) compact();

    std::uint64_t depth = kColdAccess;
    const std::size_t slot = next_slot_++;
    if (entry.slot != kNoSlot) {
      // Marked slots strictly after prev are pages touched since; +1 for the
      // page itself (depth 1 == immediate re-access). Every live page has
      // exactly one marked slot, so the count after prev is the live total
      // minus the rank through prev — one fused descent (rank_move) that
      // consumes prev's mark and plants the new slot's in the same walk
      // (the append slot is always past every marked slot).
      depth = live_pages_ - tree_.rank_move(entry.slot, slot) + 1;
    } else {
      ++live_pages_;
      tree_.set(slot);
    }
    entry.slot = static_cast<std::uint32_t>(slot);
    return depth;
  }

  // Hints the counter-tree lines a future access_at(entry) will walk: the
  // previous slot's leaf word + counter node and the predicted append slot,
  // assuming `lanes_ahead` accesses happen first. Advisory — a compaction
  // between the hint and the access only makes the hint useless, never
  // wrong.
  void prefetch_access(const PageEntry& entry, std::size_t lanes_ahead) const {
    if (entry.slot != kNoSlot) tree_.prefetch(entry.slot);
    tree_.prefetch(next_slot_ + lanes_ahead);
  }

  // Same idea keyed by page, for callers on the owned-table access(page)
  // path: hints the table's home slot for the page plus the predicted
  // append-slot tree lines. With a large page table the probe line is the
  // long pole — issuing it a few accesses early lets several probe misses
  // be in flight at once instead of serializing. Advisory only.
  void prefetch_page(std::uint64_t page, std::size_t lanes_ahead) const {
    table_->prefetch(page);
    tree_.prefetch(next_slot_ + lanes_ahead);
  }

  // Number of distinct pages seen so far.
  std::uint64_t distinct_pages() const { return live_pages_; }
  std::uint64_t total_accesses() const { return total_accesses_; }

 private:
  void compact();

  CounterTree tree_;
  std::unique_ptr<PageTable> owned_table_;  // null when sharing
  PageTable* table_;  // page -> slot lives in each entry's `slot` half
  std::vector<PageEntry*> by_slot_;  // compact() scratch, reused across calls
  std::size_t next_slot_ = 0;
  std::uint64_t live_pages_ = 0;
  std::uint64_t total_accesses_ = 0;
};

}  // namespace jpm::cache
