#include "jpm/cache/idle_sweep.h"

#include <algorithm>
#include <cmath>

#include "jpm/util/check.h"
#include "jpm/util/prefetch.h"

namespace jpm::cache {
namespace {

// The sweep runs once per period per engine; its linked-list and bucket
// vectors are sized by the period's access count (often 10^5+). Reusing
// them across calls removes the dominant allocation churn of a period
// boundary. Every element is rewritten before use, so reuse is invisible
// in results; thread_local keeps concurrent sweep runners independent.
// 32-bit node ids: a period's event count is far below 2^32 (checked). The
// removal loop is bound by how many randomly-touched lines sit in cache,
// not by arithmetic.
// One 16-byte record per list node: the timestamp rides in the same line as
// the links, so a removal touches exactly three lines (victim, prev
// neighbour, next neighbour) — split prev/next/timestamp arrays touched up
// to six — and the baked-in sentinel times remove the two boundary
// compares from every neighbour lookup.
struct SweepNode {
  double time;
  std::uint32_t prev;
  std::uint32_t next;
};
static_assert(sizeof(SweepNode) == 16);

struct SweepScratch {
  std::vector<SweepNode> nodes;
  // by_unit flattened: nodes grouped by first-hit unit via counting sort
  // (unit_offset[u] .. unit_offset[u+1] are unit u's node ids, ascending —
  // the same order the nested-vector form produced).
  std::vector<std::uint32_t> unit_offset;
  std::vector<std::uint32_t> unit_nodes;
  std::vector<std::uint32_t> unit_fill;
  // Per-event first-hit unit, computed once in the counting pass and reused
  // by the fill pass (kSkip for cold / beyond-candidate events) — the fill
  // pass then streams 4-byte units instead of re-deriving from 8-byte
  // depths.
  std::vector<std::uint32_t> unit_of_event;
};

SweepScratch& scratch() {
  thread_local SweepScratch s;
  return s;
}

}  // namespace

std::vector<IdleEstimate> sweep_idle_intervals(
    const double* times, const std::uint64_t* depths, std::size_t n,
    double period_start_s, double period_end_s, std::uint64_t unit_frames,
    double window_s, const std::vector<std::uint64_t>& candidate_units) {
  JPM_CHECK(unit_frames > 0);
  JPM_CHECK(window_s >= 0.0);
  JPM_CHECK(period_end_s >= period_start_s);
  JPM_CHECK(std::is_sorted(candidate_units.begin(), candidate_units.end()));

  JPM_CHECK(n + 2 < ~std::uint32_t{0});

  SweepScratch& s = scratch();
  // Node layout: [0] start sentinel, [1..n] events, [n+1] end sentinel.
  // Sentinel timestamps are baked into their records, so neighbour lookups
  // in the removal loop are straight loads with no boundary branches.
  s.nodes.resize(n + 2);
  s.nodes[0] = {period_start_s, 0, 1};
  for (std::size_t i = 1; i <= n; ++i) {
    s.nodes[i] = {times[i - 1], static_cast<std::uint32_t>(i - 1),
                  static_cast<std::uint32_t>(i + 1)};
  }
  s.nodes[n + 1] = {period_end_s, static_cast<std::uint32_t>(n),
                    static_cast<std::uint32_t>(n + 1)};
#ifndef NDEBUG
  for (std::size_t i = 0; i < n; ++i) {
    JPM_DCHECK(times[i] >= period_start_s && times[i] <= period_end_s);
    JPM_DCHECK(i == 0 || times[i - 1] <= times[i]);
  }
#endif

  // Group removable events by the candidate unit at which they become hits:
  // an event with depth d frames hits once m >= ceil(d / unit_frames) units.
  // Counting sort into one flat array, ascending node id within each unit —
  // identical removal order to the nested-vector formulation.
  std::uint64_t live = n;
  std::size_t unit_count = 0;
  if (!candidate_units.empty()) {
    // Power-of-two unit sizes (the common configurations) bucket by shift.
    int unit_shift = -1;
    if ((unit_frames & (unit_frames - 1)) == 0) {
      unit_shift = 0;
      while ((std::uint64_t{1} << unit_shift) < unit_frames) ++unit_shift;
    }
    const auto unit_of = [unit_frames, unit_shift](std::uint64_t d) {
      return (unit_shift >= 0 ? (d - 1) >> unit_shift
                              : (d - 1) / unit_frames) +
             1;
    };
    unit_count = static_cast<std::size_t>(candidate_units.back()) + 1;
    constexpr std::uint32_t kSkip = ~std::uint32_t{0};
    s.unit_offset.assign(unit_count + 1, 0);
    s.unit_of_event.resize(n);
    std::size_t grouped = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t d = depths[i];
      std::uint32_t unit = kSkip;
      if (d != kColdAccess) {
        const std::uint64_t u = unit_of(d);
        if (u < unit_count) {
          unit = static_cast<std::uint32_t>(u);
          ++s.unit_offset[unit + 1];
          ++grouped;
        }
      }
      s.unit_of_event[i] = unit;
    }
    for (std::size_t u = 0; u < unit_count; ++u) {
      s.unit_offset[u + 1] += s.unit_offset[u];
    }
    s.unit_nodes.resize(grouped);
    s.unit_fill.assign(s.unit_offset.begin(), s.unit_offset.end() - 1);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t unit = s.unit_of_event[i];
      if (unit != kSkip) {
        s.unit_nodes[s.unit_fill[unit]++] = static_cast<std::uint32_t>(i + 1);
      }
    }
  }

  // Gap statistics over the current list.
  std::uint64_t gap_count = 0;
  double gap_sum = 0.0;
  double gap_log_sum = 0.0;
  auto gap_add = [&](double g) {
    if (g >= window_s && g > 0.0) {
      ++gap_count;
      gap_sum += g;
      gap_log_sum += std::log(g);
    }
  };
  auto gap_remove = [&](double g) {
    if (g >= window_s && g > 0.0) {
      JPM_DCHECK(gap_count > 0);
      --gap_count;
      gap_sum -= g;
      gap_log_sum -= std::log(g);
    }
  };
  {
    double prev_t = period_start_s;
    for (std::size_t i = 0; i < n; ++i) {
      gap_add(times[i] - prev_t);
      prev_t = times[i];
    }
    gap_add(period_end_s - prev_t);
  }

  std::vector<IdleEstimate> out;
  out.reserve(candidate_units.size());
  std::uint64_t done_unit = 0;
  for (std::uint64_t m : candidate_units) {
    // Remove every event that becomes a memory hit at size m.
    for (std::uint64_t u = done_unit + 1; u <= m && u < unit_count; ++u) {
      const std::size_t lo = s.unit_offset[u];
      const std::size_t hi = s.unit_offset[u + 1];
      for (std::size_t k = lo; k < hi; ++k) {
        // Node ids ascend within a unit but stride irregularly; hint the
        // link and timestamp lines a few removals ahead so the list surgery
        // below overlaps their fetches instead of serializing on them.
        if (k + 16 < hi) {
          util::prefetch_write(&s.nodes[s.unit_nodes[k + 16]]);
        }
        const std::size_t node = s.unit_nodes[k];
        const SweepNode nd = s.nodes[node];
        SweepNode& np = s.nodes[nd.prev];
        SweepNode& nq = s.nodes[nd.next];
        const double tp = np.time;
        const double tq = nq.time;
        gap_remove(nd.time - tp);
        gap_remove(tq - nd.time);
        gap_add(tq - tp);
        np.next = nd.next;
        nq.prev = nd.prev;
        --live;
      }
    }
    done_unit = std::max(done_unit, m);

    IdleEstimate est;
    est.memory_units = m;
    est.disk_accesses = live;
    est.idle_intervals = gap_count;
    est.idle_time_s = gap_sum;
    est.mean_idle_s =
        gap_count == 0 ? 0.0 : gap_sum / static_cast<double>(gap_count);
    est.log_idle_sum = gap_log_sum;
    out.push_back(est);
  }
  return out;
}

std::vector<IdleEstimate> sweep_idle_intervals(
    const std::vector<IdleEvent>& events, double period_start_s,
    double period_end_s, std::uint64_t unit_frames, double window_s,
    const std::vector<std::uint64_t>& candidate_units) {
  IdleSeries series;
  series.reserve(events.size());
  for (const auto& e : events) series.push_back(e);
  return sweep_idle_intervals(series, period_start_s, period_end_s,
                              unit_frames, window_s, candidate_units);
}

}  // namespace jpm::cache
