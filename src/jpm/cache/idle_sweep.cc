#include "jpm/cache/idle_sweep.h"

#include <algorithm>
#include <cmath>

#include "jpm/util/check.h"

namespace jpm::cache {

std::vector<IdleEstimate> sweep_idle_intervals(
    const std::vector<IdleEvent>& events, double period_start_s,
    double period_end_s, std::uint64_t unit_frames, double window_s,
    const std::vector<std::uint64_t>& candidate_units) {
  JPM_CHECK(unit_frames > 0);
  JPM_CHECK(window_s >= 0.0);
  JPM_CHECK(period_end_s >= period_start_s);
  JPM_CHECK(std::is_sorted(candidate_units.begin(), candidate_units.end()));

  const std::size_t n = events.size();
  // Node layout: [0] start sentinel, [1..n] events, [n+1] end sentinel.
  std::vector<std::size_t> prev(n + 2), next(n + 2);
  std::vector<double> time(n + 2);
  time[0] = period_start_s;
  time[n + 1] = period_end_s;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& e = events[i];
    JPM_DCHECK(e.time_s >= period_start_s && e.time_s <= period_end_s);
    JPM_DCHECK(i == 0 || events[i - 1].time_s <= e.time_s);
    time[i + 1] = e.time_s;
  }
  for (std::size_t i = 0; i < n + 2; ++i) {
    prev[i] = i == 0 ? 0 : i - 1;
    next[i] = i == n + 1 ? n + 1 : i + 1;
  }

  // Group removable events by the candidate unit at which they become hits:
  // an event with depth d frames hits once m >= ceil(d / unit_frames) units.
  std::vector<std::vector<std::size_t>> by_unit;  // unit -> node ids
  std::uint64_t live = n;
  if (!candidate_units.empty()) {
    by_unit.resize(candidate_units.back() + 1);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t d = events[i].depth_frames;
      if (d == kColdAccess) continue;
      const std::uint64_t unit = (d - 1) / unit_frames + 1;
      if (unit < by_unit.size()) by_unit[unit].push_back(i + 1);
    }
  }

  // Gap statistics over the current list.
  std::uint64_t gap_count = 0;
  double gap_sum = 0.0;
  double gap_log_sum = 0.0;
  auto gap_add = [&](double g) {
    if (g >= window_s && g > 0.0) {
      ++gap_count;
      gap_sum += g;
      gap_log_sum += std::log(g);
    }
  };
  auto gap_remove = [&](double g) {
    if (g >= window_s && g > 0.0) {
      JPM_DCHECK(gap_count > 0);
      --gap_count;
      gap_sum -= g;
      gap_log_sum -= std::log(g);
    }
  };
  for (std::size_t i = 0; i <= n; ++i) gap_add(time[i + 1] - time[i]);

  std::vector<IdleEstimate> out;
  out.reserve(candidate_units.size());
  std::uint64_t done_unit = 0;
  for (std::uint64_t m : candidate_units) {
    // Remove every event that becomes a memory hit at size m.
    for (std::uint64_t u = done_unit + 1; u <= m && u < by_unit.size(); ++u) {
      for (std::size_t node : by_unit[u]) {
        const std::size_t p = prev[node];
        const std::size_t q = next[node];
        gap_remove(time[node] - time[p]);
        gap_remove(time[q] - time[node]);
        gap_add(time[q] - time[p]);
        next[p] = q;
        prev[q] = p;
        --live;
      }
    }
    done_unit = std::max(done_unit, m);

    IdleEstimate est;
    est.memory_units = m;
    est.disk_accesses = live;
    est.idle_intervals = gap_count;
    est.idle_time_s = gap_sum;
    est.mean_idle_s = gap_count == 0 ? 0.0 : gap_sum / static_cast<double>(gap_count);
    est.log_idle_sum = gap_log_sum;
    out.push_back(est);
  }
  return out;
}

}  // namespace jpm::cache
