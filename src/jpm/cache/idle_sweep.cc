#include "jpm/cache/idle_sweep.h"

#include <algorithm>
#include <cmath>

#include "jpm/util/check.h"

namespace jpm::cache {
namespace {

// The sweep runs once per period per engine; its linked-list and bucket
// vectors are sized by the period's access count (often 10^5+). Reusing
// them across calls removes the dominant allocation churn of a period
// boundary. Every element is rewritten before use, so reuse is invisible
// in results; thread_local keeps concurrent sweep runners independent.
struct SweepScratch {
  std::vector<std::size_t> prev, next;
  std::vector<double> time;
  // by_unit flattened: nodes grouped by first-hit unit via counting sort
  // (unit_offset[u] .. unit_offset[u+1] are unit u's node ids, ascending —
  // the same order the nested-vector form produced).
  std::vector<std::size_t> unit_offset;
  std::vector<std::size_t> unit_nodes;
  std::vector<std::size_t> unit_fill;
};

SweepScratch& scratch() {
  thread_local SweepScratch s;
  return s;
}

}  // namespace

std::vector<IdleEstimate> sweep_idle_intervals(
    const double* times, const std::uint64_t* depths, std::size_t n,
    double period_start_s, double period_end_s, std::uint64_t unit_frames,
    double window_s, const std::vector<std::uint64_t>& candidate_units) {
  JPM_CHECK(unit_frames > 0);
  JPM_CHECK(window_s >= 0.0);
  JPM_CHECK(period_end_s >= period_start_s);
  JPM_CHECK(std::is_sorted(candidate_units.begin(), candidate_units.end()));

  SweepScratch& s = scratch();
  // Node layout: [0] start sentinel, [1..n] events, [n+1] end sentinel.
  s.prev.resize(n + 2);
  s.next.resize(n + 2);
  s.time.resize(n + 2);
  s.time[0] = period_start_s;
  s.time[n + 1] = period_end_s;
  for (std::size_t i = 0; i < n; ++i) {
    JPM_DCHECK(times[i] >= period_start_s && times[i] <= period_end_s);
    JPM_DCHECK(i == 0 || times[i - 1] <= times[i]);
    s.time[i + 1] = times[i];
  }
  for (std::size_t i = 0; i < n + 2; ++i) {
    s.prev[i] = i == 0 ? 0 : i - 1;
    s.next[i] = i == n + 1 ? n + 1 : i + 1;
  }

  // Group removable events by the candidate unit at which they become hits:
  // an event with depth d frames hits once m >= ceil(d / unit_frames) units.
  // Counting sort into one flat array, ascending node id within each unit —
  // identical removal order to the nested-vector formulation.
  std::uint64_t live = n;
  std::size_t unit_count = 0;
  if (!candidate_units.empty()) {
    // Power-of-two unit sizes (the common configurations) bucket by shift.
    int unit_shift = -1;
    if ((unit_frames & (unit_frames - 1)) == 0) {
      unit_shift = 0;
      while ((std::uint64_t{1} << unit_shift) < unit_frames) ++unit_shift;
    }
    const auto unit_of = [unit_frames, unit_shift](std::uint64_t d) {
      return (unit_shift >= 0 ? (d - 1) >> unit_shift
                              : (d - 1) / unit_frames) +
             1;
    };
    unit_count = static_cast<std::size_t>(candidate_units.back()) + 1;
    s.unit_offset.assign(unit_count + 1, 0);
    std::size_t grouped = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t d = depths[i];
      if (d == kColdAccess) continue;
      const std::uint64_t unit = unit_of(d);
      if (unit < unit_count) {
        ++s.unit_offset[unit + 1];
        ++grouped;
      }
    }
    for (std::size_t u = 0; u < unit_count; ++u) {
      s.unit_offset[u + 1] += s.unit_offset[u];
    }
    s.unit_nodes.resize(grouped);
    s.unit_fill.assign(s.unit_offset.begin(), s.unit_offset.end() - 1);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t d = depths[i];
      if (d == kColdAccess) continue;
      const std::uint64_t unit = unit_of(d);
      if (unit < unit_count) s.unit_nodes[s.unit_fill[unit]++] = i + 1;
    }
  }

  // Gap statistics over the current list.
  std::uint64_t gap_count = 0;
  double gap_sum = 0.0;
  double gap_log_sum = 0.0;
  auto gap_add = [&](double g) {
    if (g >= window_s && g > 0.0) {
      ++gap_count;
      gap_sum += g;
      gap_log_sum += std::log(g);
    }
  };
  auto gap_remove = [&](double g) {
    if (g >= window_s && g > 0.0) {
      JPM_DCHECK(gap_count > 0);
      --gap_count;
      gap_sum -= g;
      gap_log_sum -= std::log(g);
    }
  };
  for (std::size_t i = 0; i <= n; ++i) gap_add(s.time[i + 1] - s.time[i]);

  std::vector<IdleEstimate> out;
  out.reserve(candidate_units.size());
  std::uint64_t done_unit = 0;
  for (std::uint64_t m : candidate_units) {
    // Remove every event that becomes a memory hit at size m.
    for (std::uint64_t u = done_unit + 1; u <= m && u < unit_count; ++u) {
      const std::size_t lo = s.unit_offset[u];
      const std::size_t hi = s.unit_offset[u + 1];
      for (std::size_t k = lo; k < hi; ++k) {
        const std::size_t node = s.unit_nodes[k];
        const std::size_t p = s.prev[node];
        const std::size_t q = s.next[node];
        gap_remove(s.time[node] - s.time[p]);
        gap_remove(s.time[q] - s.time[node]);
        gap_add(s.time[q] - s.time[p]);
        s.next[p] = q;
        s.prev[q] = p;
        --live;
      }
    }
    done_unit = std::max(done_unit, m);

    IdleEstimate est;
    est.memory_units = m;
    est.disk_accesses = live;
    est.idle_intervals = gap_count;
    est.idle_time_s = gap_sum;
    est.mean_idle_s =
        gap_count == 0 ? 0.0 : gap_sum / static_cast<double>(gap_count);
    est.log_idle_sum = gap_log_sum;
    out.push_back(est);
  }
  return out;
}

std::vector<IdleEstimate> sweep_idle_intervals(
    const std::vector<IdleEvent>& events, double period_start_s,
    double period_end_s, std::uint64_t unit_frames, double window_s,
    const std::vector<std::uint64_t>& candidate_units) {
  IdleSeries series;
  series.reserve(events.size());
  for (const auto& e : events) series.push_back(e);
  return sweep_idle_intervals(series, period_start_s, period_end_s,
                              unit_frames, window_s, candidate_units);
}

}  // namespace jpm::cache
