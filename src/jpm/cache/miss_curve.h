// Miss curve: predicted disk accesses as a function of memory size.
//
// Reproduces the paper's per-depth counters (Fig. 3) at the enumeration-unit
// granularity (16 MB in the paper): counter[u] counts re-accesses whose LRU
// stack depth falls in unit u. The number of disk accesses with a cache of
// `u` units is then (total accesses) - (re-accesses with depth <= u units),
// cold misses included unconditionally — changing the memory size cannot
// avoid a first-ever reference.
#pragma once

#include <cstdint>
#include <vector>

#include "jpm/cache/stack_distance.h"

namespace jpm::cache {

class MissCurve {
 public:
  // unit_frames: frames per enumeration unit; max_units: physical memory in
  // units (depths beyond it land in an overflow bucket).
  MissCurve(std::uint64_t unit_frames, std::uint64_t max_units);

  // Records an access with the given stack depth (frames) or kColdAccess.
  // Inline: this runs once per cache access inside the engine's hot loop,
  // and the unit bucketing reduces to a shift for power-of-two unit sizes
  // (the common 16 MiB-unit / 64 KiB-page configurations).
  void add(std::uint64_t depth_frames) {
    ++total_;
    if (depth_frames == kColdAccess) {
      ++cold_;
      return;
    }
    // Debug-only: depth = live - rank + 1 with rank <= live, so the tracker
    // cannot produce 0; keeping a hard check here costs a branch per access
    // in the harvest fold.
    JPM_DCHECK(depth_frames >= 1);
    const std::uint64_t unit = unit_shift_ >= 0
                                   ? (depth_frames - 1) >> unit_shift_
                                   : (depth_frames - 1) / unit_frames_;
    if (unit >= counters_.size()) {
      ++overflow_;
    } else {
      ++counters_[unit];
    }
  }

  // Predicted disk accesses with `units` enumeration units of memory.
  std::uint64_t misses_at(std::uint64_t units) const;
  // Predicted hits with `units` units.
  std::uint64_t hits_at(std::uint64_t units) const;

  std::uint64_t total_accesses() const { return total_; }
  std::uint64_t cold_accesses() const { return cold_; }
  std::uint64_t max_units() const { return counters_.size(); }
  std::uint64_t counter(std::uint64_t unit) const;  // 0-based unit bucket

  // Unit sizes (ascending, in [1, max_units]) where the miss count changes —
  // the paper's "sizes causing different disk IOs"; between two consecutive
  // entries the smaller memory is always at least as good. Always contains
  // max_units so the full-memory point is evaluated.
  std::vector<std::uint64_t> distinct_sizes() const;

  void reset();

 private:
  std::uint64_t unit_frames_;
  int unit_shift_ = -1;  // log2(unit_frames_) when a power of two, else -1
  std::vector<std::uint64_t> counters_;  // [u] = depths in unit u
  std::uint64_t overflow_ = 0;           // depths beyond physical memory
  std::uint64_t cold_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace jpm::cache
