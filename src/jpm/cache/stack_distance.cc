#include "jpm/cache/stack_distance.h"

#include <algorithm>

#include "jpm/util/check.h"

namespace jpm::cache {
namespace {
constexpr std::size_t kInitialSlots = 1024;
}

StackDistanceTracker::StackDistanceTracker()
    : fenwick_(kInitialSlots), slot_page_(kInitialSlots, 0) {}

std::uint64_t StackDistanceTracker::access(std::uint64_t page) {
  ++total_accesses_;
  if (next_slot_ == fenwick_.size()) compact();

  std::uint64_t depth = kColdAccess;
  const auto it = last_slot_.find(page);
  if (it != last_slot_.end()) {
    const std::size_t prev = it->second;
    // Marked slots strictly after prev are pages touched since; +1 for the
    // page itself (depth 1 == immediate re-access).
    depth = static_cast<std::uint64_t>(
                fenwick_.range_sum(prev + 1, fenwick_.size() - 1)) +
            1;
    fenwick_.add(prev, -1);
  }

  const std::size_t slot = next_slot_++;
  fenwick_.add(slot, +1);
  slot_page_[slot] = page;
  last_slot_[page] = slot;
  return depth;
}

void StackDistanceTracker::compact() {
  // Rebuild with only the live (most recent per page) slots, preserving
  // relative order; size to 2x live so compactions are amortized O(1).
  std::vector<std::uint64_t> live;
  live.reserve(last_slot_.size());
  for (std::size_t s = 0; s < next_slot_; ++s) {
    const auto it = last_slot_.find(slot_page_[s]);
    if (it != last_slot_.end() && it->second == s) live.push_back(slot_page_[s]);
  }
  JPM_CHECK(live.size() == last_slot_.size());

  const std::size_t new_size =
      std::max<std::size_t>(kInitialSlots, live.size() * 2);
  fenwick_.reset(new_size);
  slot_page_.assign(new_size, 0);
  next_slot_ = 0;
  for (std::uint64_t page : live) {
    fenwick_.add(next_slot_, +1);
    slot_page_[next_slot_] = page;
    last_slot_[page] = next_slot_;
    ++next_slot_;
  }
}

}  // namespace jpm::cache
