#include "jpm/cache/stack_distance.h"

#include <algorithm>

#include "jpm/util/check.h"

namespace jpm::cache {
namespace {
constexpr std::size_t kInitialSlots = 1024;
}

StackDistanceTracker::StackDistanceTracker(PageTable* shared,
                                           util::Arena* arena)
    : tree_(kInitialSlots, arena) {
  if (shared != nullptr) {
    table_ = shared;
  } else {
    owned_table_ = std::make_unique<PageTable>();
    table_ = owned_table_.get();
  }
}

std::uint64_t StackDistanceTracker::access(std::uint64_t page) {
  // The append slot is known before the page is: hint its lines in so the
  // tree walk overlaps the table probe's miss instead of following it.
  tree_.prefetch(next_slot_);
  return access_at(*table_->find_or_insert(page));
}

void StackDistanceTracker::compact() {
  // Rebuild with only the live (most recent per page) slots, preserving
  // relative order; size to 4x live so compactions are amortized O(1). The
  // live set is read straight off the page table — every entry with a slot
  // is live by construction. The table iterates in unspecified order, so
  // entries are scattered into a slot-indexed array (old slots are unique
  // in [0, next_slot_)) and then renumbered in ascending slot order:
  // deterministic and comparison-free, unlike a sort.
  //
  // The ascending walk follows the tree's leaf bitmap, not the scatter
  // array: live entries and marked slots are in bijection, so every marked
  // slot's by_slot_ cell was just written and stale cells (dead slots from
  // earlier compactions) are never read. That makes clearing the scatter
  // array unnecessary — the old per-compact memset of next_slot_ pointers
  // was a measurable slice of the replay profile.
  by_slot_.resize(next_slot_);
  std::uint64_t live = 0;
  table_->for_each([&](PageId /*page*/, PageEntry& entry) {
    if (entry.slot != kNoSlot) {
      by_slot_[entry.slot] = &entry;
      ++live;
    }
  });
  JPM_CHECK(live == live_pages_);

  std::size_t fresh = 0;
  tree_.for_each_set([this, &fresh](std::size_t slot) {
    by_slot_[slot]->slot = static_cast<std::uint32_t>(fresh);
    ++fresh;
  });
  JPM_CHECK(fresh == live);
  next_slot_ = fresh;

  // 8x live: each rebuild buys 7x live accesses before the next one, and
  // compaction timing is invisible to results (depths depend only on the
  // relative order of marked slots, which renumbering preserves) — so the
  // factor is purely a cost knob: doubling it from 4x halved the compaction
  // share of the replay profile for a doubling of the (small) tree arrays.
  const std::size_t new_size =
      std::max<std::size_t>(kInitialSlots, static_cast<std::size_t>(live) * 8);
  JPM_CHECK_MSG(new_size < kNoSlot, "stack-distance slot space exhausted");
  // After renumbering, slots [0, live) are all marked — build that tree in
  // one O(new_size) pass rather than live individual set() walks.
  tree_.reset_ones_prefix(new_size, live);
}

}  // namespace jpm::cache
