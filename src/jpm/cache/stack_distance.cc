#include "jpm/cache/stack_distance.h"

#include <algorithm>

#include "jpm/util/check.h"

namespace jpm::cache {
namespace {
constexpr std::size_t kInitialSlots = 1024;
}

StackDistanceTracker::StackDistanceTracker(PageTable* shared,
                                           util::Arena* arena)
    : fenwick_(kInitialSlots, arena) {
  if (shared != nullptr) {
    table_ = shared;
  } else {
    owned_table_ = std::make_unique<PageTable>();
    table_ = owned_table_.get();
  }
}

std::uint64_t StackDistanceTracker::access(std::uint64_t page) {
  return access_at(*table_->find_or_insert(page));
}

void StackDistanceTracker::compact() {
  // Rebuild with only the live (most recent per page) slots, preserving
  // relative order; size to 4x live so compactions are amortized O(1). The
  // live set is read straight off the page table — every entry with a slot
  // is live by construction. The table iterates in unspecified order, so
  // entries are scattered into a slot-indexed array (old slots are unique
  // in [0, next_slot_)) and walked in ascending order: deterministic and
  // comparison-free, unlike a sort.
  by_slot_.assign(next_slot_, nullptr);
  std::uint64_t live = 0;
  table_->for_each([&](PageId /*page*/, PageEntry& entry) {
    if (entry.slot != kNoSlot) {
      by_slot_[entry.slot] = &entry;
      ++live;
    }
  });
  JPM_CHECK(live == live_pages_);

  // 4x live: each rebuild buys 3x live accesses before the next one, and
  // compaction timing is invisible to results (depths depend only on the
  // relative order of marked slots, which renumbering preserves).
  const std::size_t new_size =
      std::max<std::size_t>(kInitialSlots, static_cast<std::size_t>(live) * 4);
  JPM_CHECK_MSG(new_size < kNoSlot, "stack-distance slot space exhausted");
  // After renumbering, slots [0, live) are all marked — build that tree in
  // one O(new_size) pass rather than live * O(log) adds.
  fenwick_.reset_ones_prefix(new_size, live);
  next_slot_ = 0;
  for (PageEntry* entry : by_slot_) {
    if (entry == nullptr) continue;
    entry->slot = static_cast<std::uint32_t>(next_slot_);
    ++next_slot_;
  }
}

}  // namespace jpm::cache
