#include "jpm/spec/run.h"

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "jpm/telemetry/telemetry.h"
#include "jpm/util/check.h"
#include "jpm/util/table.h"

namespace jpm::spec {

bool fast_mode() {
  const char* v = std::getenv("JPM_BENCH_FAST");
  return v != nullptr && v[0] == '1';
}

std::string scenario_dir() {
  if (const char* dir = std::getenv("JPM_SCENARIO_DIR")) return dir;
#ifdef JPM_DEFAULT_SCENARIO_DIR
  return JPM_DEFAULT_SCENARIO_DIR;
#else
  return "scenarios";
#endif
}

std::string scenario_path(const std::string& name) {
  return scenario_dir() + "/" + name + ".json";
}

void apply_fast_mode(Scenario& sc) {
  const double warm = sc.engine.warm_up_s;
  const double new_warm = warm * 0.5;
  for (auto& point : sc.workloads) {
    const double measured = point.workload.duration_s - warm;
    JPM_CHECK_MSG(measured >= 0.0,
                  "workload duration shorter than the engine warm-up");
    point.workload.duration_s = new_warm + measured * 0.25;
  }
  sc.engine.warm_up_s = new_warm;
  // The expanded points no longer match the grid spec (durations were
  // rescaled, and a duration_s axis would diverge from re-expansion), so
  // provenance falls back to the resolved explicit array.
  sc.grid.reset();
}

Scenario load_for_run(const std::string& path) {
  Scenario sc = load_scenario_file(path);
  validate_scenario(sc);
  if (fast_mode()) apply_fast_mode(sc);
  return sc;
}

double measured_minutes(const Scenario& sc) {
  JPM_CHECK_MSG(!sc.workloads.empty(), "scenario has no workload points");
  return (sc.workloads.front().workload.duration_s - sc.engine.warm_up_s) /
         60.0;
}

std::string expand_header(const Scenario& sc) {
  std::string header = sc.output.header;
  const std::string token = "{measured_min}";
  std::size_t pos = header.find(token);
  if (pos == std::string::npos) return header;
  // Default ostream formatting, matching the harnesses' `<< minutes`.
  std::ostringstream minutes;
  minutes << measured_minutes(sc);
  do {
    header.replace(pos, token.size(), minutes.str());
    pos = header.find(token, pos + minutes.str().size());
  } while (pos != std::string::npos);
  return header;
}

std::string format_metric(Metric metric, const sim::RunOutcome& o) {
  switch (metric) {
    case Metric::kTotalPct:
      return pct(o.normalized.total);
    case Metric::kDiskPct:
      return pct(o.normalized.disk);
    case Metric::kMemoryPct:
      return pct(o.normalized.memory);
    case Metric::kMeanLatencyMs:
      return ms(o.metrics.mean_latency_s());
    case Metric::kUtilizationPct:
      return pct(o.metrics.utilization());
    case Metric::kLongLatencyPerS:
      return num(o.metrics.long_latency_per_s());
    case Metric::kDiskAccessesMillions:
      return num(static_cast<double>(o.metrics.disk_accesses) / 1e6, 3);
    case Metric::kTotalEnergyKj:
      return num(o.metrics.total_j() / 1e3, 1);
    case Metric::kDiskEnergyKj:
      return num(o.metrics.disk_energy.total_j() / 1e3, 1);
    case Metric::kMemoryEnergyKj:
      return num(o.metrics.mem_energy.total_j() / 1e3, 1);
    case Metric::kDiskShutdowns:
      return std::to_string(o.metrics.disk_shutdowns);
    case Metric::kHitPct:
      return pct(o.metrics.hit_ratio());
  }
  JPM_CHECK_MSG(false, "unknown metric");
  return {};
}

void print_metric_table(const std::string& title,
                        const std::vector<sim::SweepPoint>& points,
                        Metric metric) {
  std::vector<std::string> headers{"method"};
  for (const auto& p : points) headers.push_back(p.label);
  Table t(headers);
  const std::size_t n_policies = points.front().outcomes.size();
  for (std::size_t i = 0; i < n_policies; ++i) {
    t.row().cell(points.front().outcomes[i].spec.name);
    for (const auto& p : points) {
      t.cell(format_metric(metric, p.outcomes[i]));
    }
  }
  std::cout << "\n== " << title << " ==\n" << t.to_string();
}

void publish_provenance(const Scenario& sc) {
  telemetry::set_scenario(serialize_scenario(sc), scenario_hash(sc));
}

void print_cluster_table(
    const std::vector<cluster::ClusterSweepPoint>& points) {
  Table t({"point", "method", "pipeline_kj", "chassis_kj", "total_kj",
           "balance", "mean_lat_ms", "cycles", "failed_over"});
  for (const auto& p : points) {
    for (const auto& o : p.outcomes) {
      std::uint64_t cycles = 0;
      for (const auto& s : o.metrics.servers) cycles += s.power_cycles;
      t.row()
          .cell(p.label)
          .cell(o.spec.name)
          .cell(num(o.metrics.pipeline_energy_j() / 1e3, 1))
          .cell(num(o.metrics.chassis_energy_j() / 1e3, 1))
          .cell(num(o.metrics.total_j() / 1e3, 1))
          .cell(num(o.metrics.balance_index(), 3))
          .cell(ms(o.metrics.mean_latency_s()))
          .cell(std::to_string(cycles))
          .cell(std::to_string(o.metrics.reliability.failed_over_requests));
    }
  }
  std::cout << "\n== cluster sweep ==\n" << t.to_string();
}

std::vector<sim::SweepPoint> run_scenario(const Scenario& sc,
                                          const RunOptions& options) {
  publish_provenance(sc);
  const std::string header = expand_header(sc);
  if (!header.empty()) std::cout << header << "\n";

  std::vector<sim::SweepWorkload> workloads;
  workloads.reserve(sc.workloads.size());
  for (const auto& point : sc.workloads) {
    workloads.push_back(sim::SweepWorkload{point.label, point.workload,
                                           point.trace_path, point.axes});
  }

  if (sc.cluster.has_value()) {
    const auto points = cluster::run_cluster_sweep(
        cluster_config(sc), workloads, sc.roster, options.progress);
    print_cluster_table(points);
    return {};
  }

  const auto points =
      sim::run_sweep(workloads, sc.roster, sc.engine, options.progress);

  for (const auto& table : sc.output.tables) {
    print_metric_table(table.title, points, table.metric);
  }
  return points;
}

}  // namespace jpm::spec
