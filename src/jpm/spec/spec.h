// jpm::spec — the declarative scenario layer.
//
// Every configuration struct in the system round-trips through JSON built on
// jpm/util/json: workload synthesizer, engine (joint constants, RDRAM and
// disk parameters, fault plan), policy specs and rosters, and the cluster
// extension — composed into one Scenario{workloads, roster, engine, output}
// that `jpm run` and the bench harnesses execute. Configs become data: a new
// (dataset, rate, popularity, policy, fault) point is a JSON edit, not a
// recompile.
//
// Contracts:
//   * Round-trip is byte-identical: serialize(parse(serialize(x))) ==
//     serialize(x). Checked-in scenarios/*.json are canonical, i.e. equal to
//     serialize(parse(file)) byte for byte, so goldens double as format
//     documentation. Serialization is deterministic (insertion-order objects,
//     shortest-round-trip numbers) and independent of JPM_THREADS.
//   * Errors name the offending JSON path: unknown keys, wrong types,
//     out-of-range values all throw SpecError with messages like
//     "$.engine.joint.disk.idle_w: expected number, got string".
//   * Parsing fills omitted keys from the C++ defaults; serialization always
//     emits the fully resolved form (`jpm print` shows defaults filled in).
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "jpm/cluster/cluster.h"
#include "jpm/sim/engine.h"
#include "jpm/stream/stream_engine.h"
#include "jpm/util/json.h"

namespace jpm::spec {

// Parse/validation failure; the message starts with the JSON path of the
// offending value ("$" is the document root).
class SpecError : public std::runtime_error {
 public:
  explicit SpecError(const std::string& message)
      : std::runtime_error(message) {}
};

// One named sweep point: the label is the table column header ("16GB",
// "100MB/s", "0.05"). `trace_path`, when set (the "trace": {"path": ...}
// source), replays a JPMC chunked trace file (see jpm/tracefile/) instead of
// synthesizing the workload; the workload section still declares the
// geometry the scenario validates against (its page_bytes must match the
// file's) and labels the point. Relative paths resolve against the working
// directory at run time.
struct WorkloadPoint {
  std::string label;
  workload::SynthesizerConfig workload;
  std::string trace_path;  // empty = synthesize
  // Grid coordinates (axis name, value) in axis declaration order when the
  // point came from a sweep grid; empty for hand-listed points. Flows into
  // telemetry as `axis/<name>` gauges on the point's runs.
  std::vector<std::pair<std::string, double>> axes;
};

// Sweep-grid sugar: the cartesian product of named numeric axes over a base
// workload. `{"workloads": {"base": {...}, "grid": {"byte_rate": [2e6, 4e6],
// "seed": [1, 2, 3]}}}` declares 6 points; every axis name must be a
// workload key (unknown names fail by path, e.g. "$.workloads.grid.sed:
// unknown key"). The first declared axis varies slowest (outermost), and
// each point's label is its coordinates, "byte_rate=2000000,seed=1".
// Scenarios parsed from the grid form serialize back to it (canonical), and
// the expansion is deterministic, so one short file can declare a
// thousand-point fleet sweep.
struct WorkloadGrid {
  workload::SynthesizerConfig base;
  // Axis name -> values, in declaration order.
  std::vector<std::pair<std::string, std::vector<double>>> axes;
};

// One result table of a sweep run: rows = roster policies, columns = the
// workload points, cells = `metric` of each outcome (formatted exactly as
// the bench harnesses format it).
enum class Metric {
  kTotalPct,        // total energy, % of always-on
  kDiskPct,         // disk energy, % of always-on disk
  kMemoryPct,       // memory energy, % of always-on memory
  kMeanLatencyMs,   // mean request latency, ms
  kUtilizationPct,  // disk bandwidth utilization
  kLongLatencyPerS, // requests above the long-latency threshold, per second
  kDiskAccessesMillions,
  kTotalEnergyKj,
  kDiskEnergyKj,
  kMemoryEnergyKj,
  kDiskShutdowns,
  kHitPct,
};

struct TableSpec {
  std::string title;
  Metric metric = Metric::kTotalPct;
};

struct OutputSpec {
  // Printed before the sweep runs. The token "{measured_min}" expands to the
  // measured minutes (first workload duration minus engine warm-up), so one
  // header serves both full-scale and JPM_BENCH_FAST runs.
  std::string header;
  std::vector<TableSpec> tables;
};

// A complete declarative experiment. `cluster`, when present, carries the
// cluster-extension knobs; its engine is the scenario's engine (see
// cluster_config()). `stream`, when present, configures the push-mode
// daemon (`jpm serve`): ring capacity, overload policy, watermarks,
// watchdog — scenarios without it replay traces exactly as before.
struct Scenario {
  std::string name;         // short identifier ("fig7_dataset")
  std::string description;  // free text for humans
  std::vector<WorkloadPoint> workloads;
  // Set when `workloads` was declared as a sweep grid; `workloads` then
  // holds the expansion (expand_grid(*grid)) and serialization re-emits the
  // grid form, keeping grid scenarios canonical at any point count.
  std::optional<WorkloadGrid> grid;
  std::vector<sim::PolicySpec> roster;
  sim::EngineConfig engine;
  std::optional<cluster::ClusterConfig> cluster;
  std::optional<stream::StreamConfig> stream;
  OutputSpec output;
};

// ---- per-struct JSON round-trips -------------------------------------------
// from_json rejects unknown keys and wrong types with SpecError naming
// `path` + the key; omitted keys keep the struct's C++ default.

util::json::Value to_json(const workload::SynthesizerConfig& c);
workload::SynthesizerConfig workload_from_json(const util::json::Value& v,
                                               const std::string& path);

util::json::Value to_json(const mem::RdramParams& c);
mem::RdramParams rdram_from_json(const util::json::Value& v,
                                 const std::string& path);

util::json::Value to_json(const disk::DiskParams& c);
disk::DiskParams disk_from_json(const util::json::Value& v,
                                const std::string& path);

util::json::Value to_json(const core::JointConfig& c);
core::JointConfig joint_from_json(const util::json::Value& v,
                                  const std::string& path);

util::json::Value to_json(const fault::FaultPlan& c);
fault::FaultPlan fault_from_json(const util::json::Value& v,
                                 const std::string& path);

util::json::Value to_json(const sim::EngineConfig& c);
sim::EngineConfig engine_from_json(const util::json::Value& v,
                                   const std::string& path);

util::json::Value to_json(const sim::PolicySpec& c);
sim::PolicySpec policy_from_json(const util::json::Value& v,
                                 const std::string& path);

// Roster: an explicit array of policy objects, or the preset form
//   {"preset": "paper", "physical_bytes": ..., "fm_gib": [8, 16, ...]}
// which resolves to sim::paper_policies(...). Serialization always emits the
// resolved explicit array.
util::json::Value to_json(const std::vector<sim::PolicySpec>& roster);
std::vector<sim::PolicySpec> roster_from_json(const util::json::Value& v,
                                              const std::string& path);

// Cluster section: every ClusterConfig knob except the nested engine (the
// scenario's engine is the per-server engine; see cluster_config()).
util::json::Value to_json(const cluster::ClusterConfig& c);
cluster::ClusterConfig cluster_from_json(const util::json::Value& v,
                                         const std::string& path);

// Stream section: the jpm serve daemon's ring/overload/watchdog knobs.
util::json::Value to_json(const stream::StreamConfig& c);
stream::StreamConfig stream_from_json(const util::json::Value& v,
                                      const std::string& path);

// Workloads: an explicit array of {"label", "workload"} points, the sweep
// axis form {"base": {...}, "points": [{"label": ..., <overrides>}]} where
// each point overrides any subset of the base workload's keys, or the grid
// form {"base": {...}, "grid": {...}} (see WorkloadGrid; expanded on
// parse). Serialization emits the resolved explicit array — except grid
// scenarios, whose Scenario::grid re-serializes as the grid form.
util::json::Value to_json(const std::vector<WorkloadPoint>& points);
std::vector<WorkloadPoint> workloads_from_json(const util::json::Value& v,
                                               const std::string& path);

// Grid form round-trip and expansion. grid_from_json validates shape only
// (axes present, arrays of numbers); expand_grid applies each axis value
// through the workload binder, so unknown axis names and type/range
// mismatches fail with SpecError at `path`.grid.<axis>. The expansion is
// capped at 100000 points.
util::json::Value to_json(const WorkloadGrid& grid);
WorkloadGrid grid_from_json(const util::json::Value& v,
                            const std::string& path);
std::vector<WorkloadPoint> expand_grid(const WorkloadGrid& grid,
                                       const std::string& path);

// ---- scenario --------------------------------------------------------------

// Parses scenario JSON text. Throws SpecError on malformed JSON (byte
// offset), unknown keys, wrong types, or an unsupported version.
Scenario parse_scenario(const std::string& text);

// Deterministic, fully resolved serialization (2-space pretty print +
// trailing newline). serialize(parse(serialize(sc))) == serialize(sc).
std::string serialize_scenario(const Scenario& sc);

// Semantic validation with path-named errors: every workload point, the
// engine's disk/fault/joint geometry (against each workload's page size),
// every roster entry (joint halves must pair up; fixed sizes in range), and
// the cluster section when present.
void validate_scenario(const Scenario& sc);

// FNV-1a 64 content hash of the resolved serialization, as 16 hex digits.
// This is the provenance hash embedded in telemetry run reports.
std::uint64_t fnv1a64(std::string_view bytes);
std::string scenario_hash(const Scenario& sc);

// Reads and parses a scenario file; errors are prefixed with the file path.
Scenario load_scenario_file(const std::string& path);

// The cluster extension's full config: the scenario's cluster section with
// the scenario's engine as the per-server engine. JPM_CHECKs that the
// section is present.
cluster::ClusterConfig cluster_config(const Scenario& sc);

}  // namespace jpm::spec
